// Package iswitch's root benchmark harness: one testing.B benchmark per
// table and figure in the paper's evaluation, each regenerating its
// experiment through the packet-level simulation (and, for the training
// curves, real RL training). Run:
//
//	go test -bench=. -benchmem
//
// Custom metrics expose the headline numbers (e.g. speedup-vs-PS) so a
// benchmark run doubles as a regression check on the reproduction.
package iswitch

import (
	"strconv"
	"strings"
	"testing"

	"iswitch/internal/experiments"
	"iswitch/internal/perfmodel"
)

// run executes an experiment once per benchmark iteration, logging the
// regenerated table/figure on the first iteration.
func run(b *testing.B, f func() experiments.Result) experiments.Result {
	b.Helper()
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = f()
	}
	b.Logf("\n%s", res.String())
	return res
}

func BenchmarkTable1WorkloadStudy(b *testing.B) { run(b, experiments.Table1) }

func BenchmarkTable2ControlMessages(b *testing.B) { run(b, experiments.Table2) }

func BenchmarkFigure4Breakdown(b *testing.B) {
	res := run(b, experiments.Figure4)
	lo, hi := parseRange(res.Text)
	b.ReportMetric(lo, "agg-share-min-%")
	b.ReportMetric(hi, "agg-share-max-%")
}

func BenchmarkFigure5PacketFormats(b *testing.B) { run(b, experiments.Figure5) }

func BenchmarkFigure7Accelerator(b *testing.B) { run(b, experiments.Figure7) }

func BenchmarkFigure8OnTheFly(b *testing.B) { run(b, experiments.Figure8) }

func BenchmarkTable3Speedups(b *testing.B) {
	res := run(b, experiments.Table3)
	if v, ok := speedupFor(res.Text, "Sync  iSW", 0); ok {
		b.ReportMetric(v, "sync-iSW-DQN-speedup")
	}
	if v, ok := speedupFor(res.Text, "Async iSW", 0); ok {
		b.ReportMetric(v, "async-iSW-DQN-speedup")
	}
}

func BenchmarkFigure12PerIteration(b *testing.B) { run(b, experiments.Figure12) }

func BenchmarkFigure13SyncCurves(b *testing.B) {
	run(b, func() experiments.Result {
		return experiments.Figure13(experiments.QuickCurveOpts())
	})
}

func BenchmarkTable4Sync(b *testing.B) { run(b, experiments.Table4) }

func BenchmarkTable5Async(b *testing.B) { run(b, experiments.Table5) }

func BenchmarkFigure14AsyncCurves(b *testing.B) {
	run(b, func() experiments.Result {
		return experiments.Figure14(experiments.QuickCurveOpts())
	})
}

func BenchmarkFigure15Scalability(b *testing.B) { run(b, experiments.Figure15) }

func BenchmarkAblationStaleness(b *testing.B) { run(b, experiments.AblationStaleness) }

func BenchmarkAblationH(b *testing.B) { run(b, experiments.AblationH) }

func BenchmarkAblationHierarchical(b *testing.B) { run(b, experiments.AblationHierarchical) }

func BenchmarkAblationMTU(b *testing.B) { run(b, experiments.AblationMTU) }

func BenchmarkAblationFP16(b *testing.B) { run(b, experiments.AblationFP16) }

// BenchmarkAggregationRoundPerWorkload times one full synchronous
// in-switch aggregation round (simulated) per paper workload — the
// microbenchmark behind every table row.
func BenchmarkAggregationRoundPerWorkload(b *testing.B) {
	for _, w := range perfmodel.Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSyncRound(w)
			}
		})
	}
}

// parseRange extracts the measured "x% – y%" from the Figure 4 summary
// line (the first two percentages; the line also quotes the paper's).
func parseRange(text string) (lo, hi float64) {
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "aggregation share:") {
			continue
		}
		for _, f := range strings.Fields(line) {
			if !strings.HasSuffix(f, "%") {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSuffix(f, "%"), 64)
			if err != nil {
				continue
			}
			if lo == 0 {
				lo = v
			} else {
				hi = v
				return lo, hi
			}
		}
	}
	return lo, hi
}

// speedupFor pulls the idx-th speedup value from a Table 3 row.
func speedupFor(text, rowPrefix string, idx int) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, rowPrefix) {
			continue
		}
		fs := strings.Fields(line)
		vals := fs[len(fs)-4:]
		v, err := strconv.ParseFloat(vals[idx], 64)
		return v, err == nil
	}
	return 0, false
}
