package compress

import (
	"math"
	"testing"

	"iswitch/internal/protocol"
	"iswitch/internal/tensor/kernels"
)

func qCodec(n, per int) *Codec {
	return NewCodec(Config{Scheme: protocol.CompInt32Block}, n, per)
}

// TestEncodeDecodeRoundTrip: a value within the grid's range survives
// quantization with error at most half a grid step.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	const n, per = 64, 64
	c := qCodec(n, per)
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i-32) * 1e-4
	}
	q := c.EncodeQ(0, vals)
	dst := make([]float32, n)
	c.DecodeQ(0, q, 0, dst)
	step := scaleFor(c.Exp(0))
	for i := range vals {
		if d := math.Abs(float64(dst[i] - vals[i])); d > float64(step)/2 {
			t.Fatalf("elem %d: round-trip error %g exceeds half step %g", i, d, step/2)
		}
	}
}

// TestEncodeDeterministicWithinRound: re-encoding the same segment
// within a round (a retransmission) yields identical bits, and two
// codecs with the same history encode identically.
func TestEncodeDeterministicWithinRound(t *testing.T) {
	const n, per = 32, 32
	a, b := qCodec(n, per), qCodec(n, per)
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i))) * 0.01
	}
	q1 := append([]int32(nil), a.EncodeQ(0, vals)...)
	q2 := a.EncodeQ(0, vals)
	q3 := b.EncodeQ(0, vals)
	for i := range q1 {
		if q1[i] != q2[i] || q1[i] != q3[i] {
			t.Fatalf("elem %d: %d / %d / %d — encode not deterministic", i, q1[i], q2[i], q3[i])
		}
	}
}

// TestExponentAdaptation walks the speculative-scaling update: the
// next exponent is chosen so the observed aggregate magnitude lands
// near 2^(e'+gridBits), an all-zero round decays the exponent, and
// both ends clamp.
func TestExponentAdaptation(t *testing.T) {
	const n, per = 16, 16
	q := make([]int32, n)
	dst := make([]float32, n)

	cases := []struct {
		name  string
		maxq  int32
		shift uint8
		want  int // expected exp after DecodeQ+Advance, from DefaultInitExp
	}{
		// ilog2(8192)=13 ⇒ e' = e+shift+13-13 = e+shift.
		{"on-grid", 8192, 0, DefaultInitExp},
		{"on-grid-shifted", 8192, 5, DefaultInitExp + 5},
		// ilog2(1)=0 ⇒ e' = e - gridBits.
		{"tiny", 1, 0, DefaultInitExp - gridBits},
		// maxq=0 ⇒ decay.
		{"zero", 0, 0, DefaultInitExp - zeroDecay},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := qCodec(n, per)
			for i := range q {
				q[i] = 0
			}
			q[3] = tc.maxq
			c.DecodeQ(0, q, tc.shift, dst)
			c.Advance()
			if got := c.Exp(0); got != tc.want {
				t.Fatalf("exp after round: got %d want %d", got, tc.want)
			}
		})
	}

	t.Run("clamp-floor", func(t *testing.T) {
		c := qCodec(n, per)
		for i := range q {
			q[i] = 0
		}
		for r := 0; r < 100; r++ {
			c.DecodeQ(0, q, 0, dst)
			c.Advance()
		}
		if got := c.Exp(0); got != expFloor {
			t.Fatalf("exp after 100 silent rounds: got %d want floor %d", got, expFloor)
		}
	})
	t.Run("clamp-ceil", func(t *testing.T) {
		c := qCodec(n, per)
		for i := range q {
			q[i] = 0
		}
		q[0] = kernels.QuantMax
		for r := 0; r < 100; r++ {
			c.DecodeQ(0, q, 16, dst)
			c.Advance()
		}
		if got := c.Exp(0); got != expCeil {
			t.Fatalf("exp after 100 pegged rounds: got %d want ceil %d", got, expCeil)
		}
	})
}

// TestDecodeIdempotent: decoding the same segment twice (a re-served
// shadow copy after loss) yields the same floats and the same derived
// next exponent.
func TestDecodeIdempotent(t *testing.T) {
	const n, per = 16, 16
	c := qCodec(n, per)
	q := make([]int32, n)
	for i := range q {
		q[i] = int32(i*531 - 4000)
	}
	d1 := make([]float32, n)
	d2 := make([]float32, n)
	c.DecodeQ(0, q, 3, d1)
	next1 := c.nextExp[0]
	c.DecodeQ(0, q, 3, d2)
	if c.nextExp[0] != next1 {
		t.Fatalf("nextExp moved on re-decode: %d then %d", next1, c.nextExp[0])
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("elem %d: %v then %v — decode not idempotent", i, d1[i], d2[i])
		}
	}
}

// TestEncodeQPrevIdentity: after Advance, EncodeQPrev reproduces the
// bits the previous round's EncodeQ emitted — the property Help-driven
// retransmissions for a still-accumulating round rely on.
func TestEncodeQPrevIdentity(t *testing.T) {
	const n, per = 32, 32
	c := qCodec(n, per)
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i%11-5) * 3e-3
	}
	old := append([]int32(nil), c.EncodeQ(0, vals)...)

	// Complete the round with a decode whose shift moves the exponent,
	// then advance to the new grid.
	dst := make([]float32, n)
	c.DecodeQ(0, old, 8, dst)
	c.Advance()

	cur := c.EncodeQ(0, vals)
	moved := false
	for i := range cur {
		if cur[i] != old[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("exponent did not move; identity check would be vacuous")
	}
	prev := c.EncodeQPrev(0, vals)
	for i := range prev {
		if prev[i] != old[i] {
			t.Fatalf("elem %d: EncodeQPrev %d, original %d", i, prev[i], old[i])
		}
	}
}

// TestShiftFoldsExactly: decoding (q, shift) equals decoding the
// re-widened values (q<<shift, 0) — the narrowed sum has at most 15
// significand bits, so folding the shift into the scale is exact.
func TestShiftFoldsExactly(t *testing.T) {
	const n, per = 16, 16
	q := make([]int32, n)
	for i := range q {
		q[i] = int32(i*4001 - 30000)
	}
	wide := make([]int32, n)
	for i := range wide {
		wide[i] = q[i] << 6
	}
	a, b := qCodec(n, per), qCodec(n, per)
	d1 := make([]float32, n)
	d2 := make([]float32, n)
	a.DecodeQ(0, q, 6, d1)
	b.DecodeQ(0, wide, 0, d2)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("elem %d: shifted %v, widened %v", i, d1[i], d2[i])
		}
	}
}

// TestSelectTopKPartition: the selection holds exactly the k
// largest-magnitude elements, partitioned into per-segment ascending
// local indices with matching values.
func TestSelectTopKPartition(t *testing.T) {
	const n, per = 100, 32
	c := NewCodec(Config{Scheme: protocol.CompTopK, TopKFrac: 0.10}, n, per)
	grad := make([]float32, n)
	for i := range grad {
		grad[i] = float32((i*37)%101-50) * 0.01
	}
	c.SelectTopK(grad)

	segs := protocol.SegmentCountWith(n, per)
	total := 0
	var minKeptMag float32 = math.MaxFloat32
	selected := make(map[int]bool)
	for s := 0; s < segs; s++ {
		idx, vals := c.Sparse(uint64(s))
		if len(idx) != len(vals) {
			t.Fatalf("segment %d: %d indices, %d values", s, len(idx), len(vals))
		}
		for j, li := range idx {
			if j > 0 && idx[j-1] >= li {
				t.Fatalf("segment %d: local indices not ascending: %v", s, idx)
			}
			gi := s*per + int(li)
			if vals[j] != grad[gi] {
				t.Fatalf("segment %d entry %d: value %v, gradient[%d] %v", s, j, vals[j], gi, grad[gi])
			}
			selected[gi] = true
			if m := float32(math.Abs(float64(vals[j]))); m < minKeptMag {
				minKeptMag = m
			}
		}
		total += len(idx)
	}
	if want := 10; total != want {
		t.Fatalf("selected %d elements, want %d", total, want)
	}
	// No unselected element strictly exceeds the smallest kept magnitude.
	for i, v := range grad {
		if !selected[i] && float32(math.Abs(float64(v))) > minKeptMag {
			t.Fatalf("element %d (|%v|) skipped while smaller magnitude %v was kept", i, v, minKeptMag)
		}
	}
}

// TestSparsePrevRotation: after the next SelectTopK, SparsePrev serves
// the previous round's selection bit-identically.
func TestSparsePrevRotation(t *testing.T) {
	const n, per = 64, 32
	c := NewCodec(Config{Scheme: protocol.CompTopK, TopKFrac: 0.10}, n, per)
	g1 := make([]float32, n)
	g2 := make([]float32, n)
	for i := range g1 {
		g1[i] = float32(i) * 0.01
		g2[i] = float32(n-i) * 0.02
	}
	c.SelectTopK(g1)
	segs := protocol.SegmentCountWith(n, per)
	type sel struct {
		idx  []uint16
		vals []float32
	}
	first := make([]sel, segs)
	for s := range first {
		idx, vals := c.Sparse(uint64(s))
		first[s] = sel{append([]uint16(nil), idx...), append([]float32(nil), vals...)}
	}
	c.SelectTopK(g2)
	for s := range first {
		idx, vals := c.SparsePrev(uint64(s))
		if len(idx) != len(first[s].idx) {
			t.Fatalf("segment %d: prev has %d entries, original %d", s, len(idx), len(first[s].idx))
		}
		for j := range idx {
			if idx[j] != first[s].idx[j] || vals[j] != first[s].vals[j] {
				t.Fatalf("segment %d entry %d: prev (%d,%v), original (%d,%v)",
					s, j, idx[j], vals[j], first[s].idx[j], first[s].vals[j])
			}
		}
	}
}
