// Package compress implements the client-side gradient compression
// codecs behind the pluggable wire schemes in internal/protocol.
//
// Block-scaled int32 (CompInt32Block) works like SwitchML's speculative
// scaling: every worker derives the same per-segment power-of-two grid
// exponent from the previous round's reconstructed aggregate, so no
// scale factor travels on the wire and the switch can accumulate the
// quantized values as plain saturating int32 — an exactly associative
// sum, bit-identical under any packet arrival order. The switch narrows
// each completed sum back into the int16 wire range and advertises the
// narrowing as a per-packet Shift; decoding folds the shift into the
// scale exactly (the narrowed sum has at most 15 significand bits).
//
// Top-k (CompTopK) selects the k globally largest-magnitude gradient
// elements per round with a deterministic quickselect and partitions
// them into one (possibly empty) sparse packet per segment, so the
// switch's per-segment contribution counting works unchanged.
//
// The codec is deterministic: two workers holding the same previous
// aggregate encode and decode identically, which is what keeps the
// decentralized weight replicas bit-equal.
package compress

import (
	"fmt"
	"math"
	"math/bits"

	"iswitch/internal/protocol"
	"iswitch/internal/tensor/kernels"
)

// Exponent bounds and the grid target. A segment's exponent e means the
// quantization grid step is 2^e. After decoding a round's aggregate the
// next exponent is chosen so the observed maximum magnitude lands near
// 2^(e'+gridBits): gridBits = 13 leaves one headroom bit above the
// aggregate (a worker's own gradient can exceed the aggregate when
// contributions cancel) while keeping 13+ bits of resolution.
const (
	expFloor = -40
	expCeil  = 90
	gridBits = 13

	// DefaultInitExp is the round-0 grid exponent: step 2^-18, max
	// representable magnitude 32767·2^-18 ≈ 0.125. A gradient that
	// clips simply saturates for a round or two while the exponent
	// climbs to fit (the update below raises e by the emission shift
	// when the grid is pegged).
	DefaultInitExp = -18

	// DefaultTopKFrac is the fraction of gradient elements CompTopK
	// keeps per round.
	DefaultTopKFrac = 0.05

	// zeroDecay is how fast a segment's exponent drifts down when a
	// whole round aggregates to exactly zero, so a silent segment does
	// not stay stuck at a coarse grid forever.
	zeroDecay = 4
)

// Config parameterizes a codec.
type Config struct {
	// Scheme selects the compression algorithm.
	Scheme protocol.Compression
	// TopKFrac is the kept fraction for CompTopK (0 = DefaultTopKFrac).
	TopKFrac float64
	// InitExp is the round-0 grid exponent for CompInt32Block
	// (0 = DefaultInitExp; pass a nonzero value to override).
	InitExp int
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.TopKFrac <= 0 {
		c.TopKFrac = DefaultTopKFrac
	}
	if c.InitExp == 0 {
		c.InitExp = DefaultInitExp
	}
	return c
}

// Codec holds one worker's compression state for an n-element gradient
// split into perPacket-element segments. Not safe for concurrent use.
type Codec struct {
	cfg Config
	n   int
	per int

	// exp is the current per-segment grid exponent; nextExp accumulates
	// the exponents derived while decoding the in-flight round and is
	// applied by Advance. prevExp retains the exponents the previous
	// round encoded under, so a Help-triggered retransmission for a
	// round the switch is still accumulating re-encodes bit-identically.
	exp     []int16
	nextExp []int16
	prevExp []int16

	qOut []int32 // EncodeQ scratch, reused per call

	// Top-k selection cache for the current round (and, for prev-round
	// retransmissions, the previous one): global indices partitioned
	// into per-segment local indices and values, retained so
	// retransmissions resend the identical selection.
	keys        []uint64
	sel         []int32
	segIdx      [][]uint16
	segVals     [][]float32
	prevSegIdx  [][]uint16
	prevSegVals [][]float32
}

// NewCodec builds a codec for an n-element gradient and perPacket
// segment width.
func NewCodec(cfg Config, n, perPacket int) *Codec {
	cfg = cfg.WithDefaults()
	segs := protocol.SegmentCountWith(n, perPacket)
	c := &Codec{cfg: cfg, n: n, per: perPacket}
	if cfg.Scheme == protocol.CompInt32Block {
		c.exp = make([]int16, segs)
		c.nextExp = make([]int16, segs)
		c.prevExp = make([]int16, segs)
		for i := range c.exp {
			c.exp[i] = int16(cfg.InitExp)
			c.nextExp[i] = int16(cfg.InitExp)
			c.prevExp[i] = int16(cfg.InitExp)
		}
		c.qOut = make([]int32, perPacket)
	}
	if cfg.Scheme == protocol.CompTopK {
		c.segIdx = make([][]uint16, segs)
		c.segVals = make([][]float32, segs)
		c.prevSegIdx = make([][]uint16, segs)
		c.prevSegVals = make([][]float32, segs)
	}
	return c
}

// Scheme returns the configured scheme.
func (c *Codec) Scheme() protocol.Compression { return c.cfg.Scheme }

// Exp returns segment seg's current grid exponent (tests/experiments).
func (c *Codec) Exp(seg uint64) int { return int(c.exp[seg]) }

// scaleFor returns 2^e as a float32 — exact for e in [expFloor-16,
// expCeil+32], comfortably inside float32's exponent range.
func scaleFor(e int) float32 { return float32(math.Ldexp(1, e)) }

// EncodeQ quantizes one segment's values onto its current grid:
// q[i] = rne(vals[i]·2^-e), saturating at ±QuantMax. The returned slice
// is codec-owned scratch, valid until the next EncodeQ call — copy it
// into the packet (SetQDataCopy). Re-encoding the same values within a
// round (retransmission) yields identical bits: the exponent only moves
// at Advance.
func (c *Codec) EncodeQ(seg uint64, vals []float32) []int32 {
	dst := c.qOut[:len(vals)]
	kernels.Quantize(dst, vals, scaleFor(-int(c.exp[seg])))
	return dst
}

// EncodeQPrev is EncodeQ on the previous round's grid — what a
// retransmission for a round the switch is still accumulating must use,
// or the resent contribution would land on the wrong scale.
func (c *Codec) EncodeQPrev(seg uint64, vals []float32) []int32 {
	dst := c.qOut[:len(vals)]
	kernels.Quantize(dst, vals, scaleFor(-int(c.prevExp[seg])))
	return dst
}

// DecodeQ reconstructs one segment of the aggregate from the switch's
// narrowed sum: dst[i] = float32(q[i])·2^(e+shift). It also derives the
// segment's next-round exponent from the observed magnitude; every
// worker decodes the same (q, shift) and therefore lands on the same
// exponent. Decoding the same segment twice (a re-served shadow copy)
// is idempotent.
func (c *Codec) DecodeQ(seg uint64, q []int32, shift uint8, dst []float32) {
	if len(dst) != len(q) {
		panic(fmt.Sprintf("compress: DecodeQ segment %d: %d values into %d-element dst",
			seg, len(q), len(dst)))
	}
	e := int(c.exp[seg])
	kernels.Dequantize(dst, q, scaleFor(e+int(shift)))
	c.nextExp[seg] = int16(nextExp(e, shift, kernels.MaxAbsI32(q)))
}

// nextExp is the shared integer-exact exponent update: pick e' so the
// observed aggregate magnitude maxq·2^(e+shift) sits near 2^(e'+gridBits).
// An all-zero aggregate decays the exponent instead, down to expFloor.
func nextExp(e int, shift uint8, maxq int32) int {
	if maxq == 0 {
		return clampExp(e - zeroDecay)
	}
	k := 31 - bits.LeadingZeros32(uint32(maxq)) // ilog2, maxq > 0
	return clampExp(e + int(shift) + k - gridBits)
}

func clampExp(e int) int {
	if e < expFloor {
		return expFloor
	}
	if e > expCeil {
		return expCeil
	}
	return e
}

// Advance commits the exponents derived during the just-completed round
// so the next round encodes on the adapted grid. Call exactly once per
// fully decoded round, on every worker.
func (c *Codec) Advance() {
	copy(c.prevExp, c.exp)
	copy(c.exp, c.nextExp)
}

// SelectTopK computes the round's sparse selection: the k globally
// largest-magnitude elements of grad (k = TopKFrac·len, at least 1),
// partitioned into per-segment local indices and values. The selection
// is cached until the next SelectTopK call so retransmissions resend
// identical packets; read it back with Sparse.
func (c *Codec) SelectTopK(grad []float32) {
	if len(grad) != c.n {
		panic(fmt.Sprintf("compress: SelectTopK gradient length %d, want %d", len(grad), c.n))
	}
	k := int(c.cfg.TopKFrac * float64(c.n))
	if k < 1 {
		k = 1
	}
	c.sel, c.keys = kernels.TopKSelect(c.sel[:0], c.keys, grad, k)
	// Rotate the cache: the outgoing selection stays readable via
	// SparsePrev for prev-round retransmissions.
	c.segIdx, c.prevSegIdx = c.prevSegIdx, c.segIdx
	c.segVals, c.prevSegVals = c.prevSegVals, c.segVals
	for s := range c.segIdx {
		c.segIdx[s] = c.segIdx[s][:0]
		c.segVals[s] = c.segVals[s][:0]
	}
	for _, gi := range c.sel { // ascending global indices
		s := int(gi) / c.per
		c.segIdx[s] = append(c.segIdx[s], uint16(int(gi)-s*c.per))
		c.segVals[s] = append(c.segVals[s], grad[gi])
	}
}

// Sparse returns segment seg's cached selection (possibly empty — the
// segment still sends one empty sparse packet so the switch's
// contribution counter advances). Slices are codec-owned; copy into the
// packet.
func (c *Codec) Sparse(seg uint64) (idx []uint16, vals []float32) {
	return c.segIdx[seg], c.segVals[seg]
}

// SparsePrev returns the previous round's cached selection for seg.
func (c *Codec) SparsePrev(seg uint64) (idx []uint16, vals []float32) {
	return c.prevSegIdx[seg], c.prevSegVals[seg]
}
