package switchnet

import (
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

func testLink() netsim.LinkConfig {
	return netsim.LinkConfig{BitsPerSecond: 8e9, Propagation: time.Microsecond}
}

// join sends a Join from host h and waits for the Ack.
func join(p *sim.Proc, h *netsim.Host, swAddr protocol.Addr, modelFloats uint64, t *testing.T) {
	h.Send(protocol.NewControl(h.Addr, swAddr, protocol.ActionJoin, protocol.JoinValue(modelFloats)))
	ack := h.Recv(p)
	if !ack.IsControl() || ack.Action != protocol.ActionAck || ack.Value[0] != 1 {
		t.Errorf("worker %v: bad join ack %+v", h.Addr, ack)
	}
}

func TestMembershipTable(t *testing.T) {
	m := NewMembership()
	a := protocol.AddrFrom(10, 0, 0, 2, 9999)
	b := protocol.AddrFrom(10, 0, 0, 4, 9999)
	id0 := m.Join(a, MemberWorker, 4, 100)
	id1 := m.Join(b, MemberWorker, 4, 100)
	if id0 == id1 {
		t.Fatal("duplicate IDs")
	}
	if again := m.Join(a, MemberWorker, 4, 200); again != id0 {
		t.Fatalf("re-join changed ID %d → %d", id0, again)
	}
	if m.Count() != 2 {
		t.Fatalf("count = %d", m.Count())
	}
	e, ok := m.Lookup(a)
	if !ok || e.ModelFloats != 200 {
		t.Fatalf("lookup: %+v %v (re-join should refresh)", e, ok)
	}
	if !m.Leave(a) || m.Leave(a) {
		t.Fatal("leave not idempotent-correct")
	}
	if m.Count() != 1 || len(m.Workers()) != 1 {
		t.Fatalf("after leave: count=%d", m.Count())
	}
	if _, ok := m.Lookup(a); ok {
		t.Fatal("lookup found removed member")
	}
	if m.String() == "" {
		t.Fatal("empty render")
	}
}

func TestJoinAckAndAutoH(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 3, testLink())
	for _, w := range c.Workers {
		h := w
		k.Spawn("join", func(p *sim.Proc) { join(p, h, c.IS.Addr(), 10, t) })
	}
	k.Run()
	if c.IS.Membership().Count() != 3 {
		t.Fatalf("members = %d", c.IS.Membership().Count())
	}
	if c.IS.Accelerator().Threshold() != 3 {
		t.Fatalf("auto H = %d, want 3", c.IS.Accelerator().Threshold())
	}
}

// runAggregationRound has every worker send its segmented gradient and
// then collect the aggregated broadcast. Returns per-worker results.
func runAggregationRound(t *testing.T, k *sim.Kernel, workers []*netsim.Host,
	swAddr protocol.Addr, grads [][]float32) [][]float32 {
	t.Helper()
	n := len(grads[0])
	results := make([][]float32, len(workers))
	for i, w := range workers {
		i, w := i, w
		k.Spawn("worker", func(p *sim.Proc) {
			join(p, w, swAddr, uint64(n), t)
			p.Sleep(time.Millisecond) // let all joins land so H is final
			for _, pkt := range protocol.Segment(w.Addr, swAddr, grads[i]) {
				w.Send(pkt)
			}
			asm := protocol.NewAssembler(n)
			for !asm.Complete() {
				pkt := w.Recv(p)
				if !pkt.IsData() {
					continue
				}
				if err := asm.Add(pkt); err != nil {
					t.Errorf("worker %d: %v", i, err)
					return
				}
			}
			results[i] = append([]float32(nil), asm.Vector()...)
		})
	}
	k.Run()
	return results
}

func TestStarAggregationBroadcast(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 4, testLink())
	n := protocol.FloatsPerPacket*2 + 13 // 3 segments with a tail
	grads := make([][]float32, 4)
	for w := range grads {
		grads[w] = make([]float32, n)
		for i := range grads[w] {
			grads[w][i] = float32((w + 1) * (i%10 + 1))
		}
	}
	results := runAggregationRound(t, k, c.Workers, c.IS.Addr(), grads)
	for w, res := range results {
		if res == nil {
			t.Fatalf("worker %d got no aggregate", w)
		}
		for i := range res {
			want := float32((1 + 2 + 3 + 4) * (i%10 + 1))
			if res[i] != want {
				t.Fatalf("worker %d elem %d = %v, want %v", w, i, res[i], want)
			}
		}
	}
	if c.IS.Broadcasts != 3 {
		t.Fatalf("broadcasts = %d, want 3 segments", c.IS.Broadcasts)
	}
	if c.IS.Accelerator().Pending() != 0 {
		t.Fatal("partial segments left behind")
	}
}

func TestTreeHierarchicalAggregation(t *testing.T) {
	k := sim.NewKernel()
	c := BuildTree(k, 2, 3, testLink(), netsim.LinkConfig{BitsPerSecond: 32e9, Propagation: time.Microsecond})
	n := protocol.FloatsPerPacket + 5
	grads := make([][]float32, 6)
	for w := range grads {
		grads[w] = make([]float32, n)
		for i := range grads[w] {
			grads[w][i] = float32(w + 1)
		}
	}
	// Workers join their own ToR.
	results := make([][]float32, 6)
	for i, w := range c.Workers {
		i, w := i, w
		tor := c.ToROf(i)
		k.Spawn("worker", func(p *sim.Proc) {
			join(p, w, tor.Addr(), uint64(n), t)
			p.Sleep(time.Millisecond)
			for _, pkt := range protocol.Segment(w.Addr, tor.Addr(), grads[i]) {
				w.Send(pkt)
			}
			asm := protocol.NewAssembler(n)
			for !asm.Complete() {
				pkt := w.Recv(p)
				if pkt.IsData() {
					if err := asm.Add(pkt); err != nil {
						t.Errorf("worker %d: %v", i, err)
						return
					}
				}
			}
			results[i] = append([]float32(nil), asm.Vector()...)
		})
	}
	k.Run()
	want := float32(1 + 2 + 3 + 4 + 5 + 6)
	for w, res := range results {
		if res == nil {
			t.Fatalf("worker %d got no aggregate", w)
		}
		for i := range res {
			if res[i] != want {
				t.Fatalf("worker %d elem %d = %v, want %v", w, i, res[i], want)
			}
		}
	}
	// Each ToR forwarded its 2 segments up; root broadcast 2 segments.
	for r, tor := range c.ToRs {
		if tor.UpForwards != 2 {
			t.Fatalf("tor %d upforwards = %d, want 2", r, tor.UpForwards)
		}
	}
	if c.Root.Broadcasts != 2 {
		t.Fatalf("root broadcasts = %d, want 2", c.Root.Broadcasts)
	}
}

func TestSetHOverridesAutoThreshold(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 4, testLink())
	w0 := c.Workers[0]
	k.Spawn("ctl", func(p *sim.Proc) {
		join(p, w0, c.IS.Addr(), 10, t)
		w0.Send(protocol.NewControl(w0.Addr, c.IS.Addr(), protocol.ActionSetH, protocol.SetHValue(2)))
		ack := w0.Recv(p)
		if ack.Action != protocol.ActionAck || ack.Value[0] != 1 {
			t.Errorf("SetH nack: %+v", ack)
		}
	})
	for _, w := range c.Workers[1:] {
		h := w
		k.Spawn("join", func(p *sim.Proc) {
			p.Sleep(time.Millisecond)
			join(p, h, c.IS.Addr(), 10, t)
		})
	}
	k.Run()
	if got := c.IS.Accelerator().Threshold(); got != 2 {
		t.Fatalf("H = %d, want SetH override 2 (joins re-auto'd it?)", got)
	}
}

func TestResetClearsAccelerator(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 2, testLink())
	w := c.Workers[0]
	k.Spawn("w", func(p *sim.Proc) {
		join(p, w, c.IS.Addr(), 4, t)
		w.Send(protocol.NewData(w.Addr, c.IS.Addr(), 0, []float32{1, 2, 3, 4}))
		p.Sleep(time.Millisecond)
		w.Send(protocol.NewControl(w.Addr, c.IS.Addr(), protocol.ActionReset, nil))
		w.Recv(p) // ack
	})
	k.Run()
	if c.IS.Accelerator().Pending() != 0 {
		t.Fatal("reset did not clear partial segments")
	}
}

func TestFBcastFlushesPartials(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 3, testLink())
	var partial *protocol.Packet
	w0, w1 := c.Workers[0], c.Workers[1]
	k.Spawn("w0", func(p *sim.Proc) {
		join(p, w0, c.IS.Addr(), 4, t)
		p.Sleep(time.Millisecond)
		w0.Send(protocol.NewData(w0.Addr, c.IS.Addr(), 0, []float32{1, 1, 1, 1}))
		p.Sleep(time.Millisecond)
		w0.Send(protocol.NewControl(w0.Addr, c.IS.Addr(), protocol.ActionFBcast, nil))
		for {
			pkt := w0.Recv(p)
			if pkt.IsData() {
				partial = pkt
				return
			}
		}
	})
	k.Spawn("w1", func(p *sim.Proc) { join(p, w1, c.IS.Addr(), 4, t) })
	k.Spawn("w2", func(p *sim.Proc) { join(p, c.Workers[2], c.IS.Addr(), 4, t) })
	k.Run()
	if partial == nil {
		t.Fatal("FBcast produced no broadcast")
	}
	if partial.Seg != 0 || partial.Data[0] != 1 {
		t.Fatalf("partial = %+v", partial)
	}
}

func TestHelpRelayedToOtherWorkers(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 3, testLink())
	gotHelp := make([]bool, 3)
	for i, w := range c.Workers {
		i, w := i, w
		k.Spawn("w", func(p *sim.Proc) {
			join(p, w, c.IS.Addr(), 10, t)
			if i == 0 {
				p.Sleep(time.Millisecond)
				w.Send(protocol.NewControl(w.Addr, c.IS.Addr(), protocol.ActionHelp, protocol.HelpValue(7)))
				return
			}
			for {
				pkt, ok := w.RecvTimeout(p, 10*time.Millisecond)
				if !ok {
					return
				}
				if pkt.IsControl() && pkt.Action == protocol.ActionHelp {
					seg, err := protocol.ParseHelp(pkt.Value)
					if err != nil || seg != 7 {
						t.Errorf("worker %d: bad help %v %v", i, seg, err)
					}
					gotHelp[i] = true
					return
				}
			}
		})
	}
	k.Run()
	if gotHelp[0] {
		t.Fatal("requester received its own Help")
	}
	if !gotHelp[1] || !gotHelp[2] {
		t.Fatalf("help relay = %v", gotHelp)
	}
	if c.IS.HelpRelayed != 1 {
		t.Fatalf("HelpRelayed = %d", c.IS.HelpRelayed)
	}
}

func TestHaltBroadcast(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 2, testLink())
	halted := make([]bool, 2)
	for i, w := range c.Workers {
		i, w := i, w
		k.Spawn("w", func(p *sim.Proc) {
			join(p, w, c.IS.Addr(), 10, t)
			if i == 0 {
				p.Sleep(time.Millisecond)
				w.Send(protocol.NewControl(w.Addr, c.IS.Addr(), protocol.ActionHalt, nil))
			}
			for {
				pkt, ok := w.RecvTimeout(p, 10*time.Millisecond)
				if !ok {
					return
				}
				if pkt.IsControl() && pkt.Action == protocol.ActionHalt {
					halted[i] = true
					return
				}
			}
		})
	}
	k.Run()
	if !halted[0] || !halted[1] {
		t.Fatalf("halt reached %v", halted)
	}
}

func TestRegularTrafficUnaffected(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 2, testLink())
	src, dst := c.Workers[0], c.Workers[1]
	var got *protocol.Packet
	k.Spawn("recv", func(p *sim.Proc) { got = dst.Recv(p) })
	k.Spawn("send", func(p *sim.Proc) {
		src.Send(&protocol.Packet{Src: src.Addr, Dst: dst.Addr, ToS: protocol.ToSRegular})
	})
	k.Run()
	if got == nil || got.ToS != protocol.ToSRegular {
		t.Fatal("regular traffic blocked by iSwitch extension")
	}
	if c.IS.DataIn != 0 || c.IS.ControlIn != 0 {
		t.Fatal("regular traffic hit the accelerator path")
	}
}

func TestBadControlValuesNacked(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 1, testLink())
	w := c.Workers[0]
	var acks []byte
	k.Spawn("w", func(p *sim.Proc) {
		w.Send(protocol.NewControl(w.Addr, c.IS.Addr(), protocol.ActionJoin, []byte{1}))
		acks = append(acks, w.Recv(p).Value[0])
		w.Send(protocol.NewControl(w.Addr, c.IS.Addr(), protocol.ActionSetH, []byte{9, 9, 9}))
		acks = append(acks, w.Recv(p).Value[0])
		w.Send(protocol.NewControl(w.Addr, c.IS.Addr(), protocol.ActionSetH, protocol.SetHValue(0)))
		acks = append(acks, w.Recv(p).Value[0])
	})
	k.Run()
	for i, a := range acks {
		if a != 0 {
			t.Fatalf("bad control %d was acked OK", i)
		}
	}
}

func TestLossRecoveryViaHelp(t *testing.T) {
	// Worker 0's uplink drops its first data packet. After a timeout it
	// sends Help; the other workers retransmit their contribution for
	// that segment, worker 0 retransmits too, and the switch re-aggregates.
	k := sim.NewKernel()
	c := BuildStar(k, 2, testLink())
	n := 4
	grads := [][]float32{{1, 1, 1, 1}, {2, 2, 2, 2}}
	results := make([][]float32, 2)

	for i, w := range c.Workers {
		i, w := i, w
		k.Spawn("worker", func(p *sim.Proc) {
			join(p, w, c.IS.Addr(), uint64(n), t)
			p.Sleep(time.Millisecond)
			if i == 0 {
				w.Port().SetLoss(1.0, 1) // drop the first send
			}
			w.Send(protocol.NewData(w.Addr, c.IS.Addr(), 0, grads[i]))
			if i == 0 {
				w.Port().SetLoss(0, 1)
			}
			asm := protocol.NewAssembler(n)
			for !asm.Complete() {
				pkt, ok := w.RecvTimeout(p, 5*time.Millisecond)
				if !ok {
					// Timed out: request recovery and retransmit our own
					// contribution for the missing segment.
					w.Send(protocol.NewControl(w.Addr, c.IS.Addr(), protocol.ActionHelp, protocol.HelpValue(0)))
					w.Send(protocol.NewData(w.Addr, c.IS.Addr(), 0, grads[i]))
					continue
				}
				if pkt.IsControl() && pkt.Action == protocol.ActionHelp {
					seg, _ := protocol.ParseHelp(pkt.Value)
					lo, hi := protocol.SegmentRange(n, seg)
					w.Send(protocol.NewData(w.Addr, c.IS.Addr(), seg, grads[i][lo:hi]))
					continue
				}
				if pkt.IsData() {
					_ = asm.Add(pkt)
				}
			}
			results[i] = append([]float32(nil), asm.Vector()...)
		})
	}
	k.Run()
	for i, res := range results {
		if res == nil {
			t.Fatalf("worker %d never recovered", i)
		}
		if res[0] != 3 {
			t.Fatalf("worker %d aggregate = %v, want 3s", i, res)
		}
	}
}

func TestHelpServedFromEmissionCache(t *testing.T) {
	// After an aggregate is emitted, a Help for that segment must be
	// answered directly from the switch's emission cache rather than
	// relayed to peers (the requester merely lost its broadcast copy).
	k := sim.NewKernel()
	c := BuildStar(k, 2, testLink())
	var reAnswer *protocol.Packet
	for i := 0; i < 2; i++ {
		i := i
		w := c.Workers[i]
		k.Spawn("w", func(p *sim.Proc) {
			join(p, w, c.IS.Addr(), 4, t)
			p.Sleep(time.Millisecond)
			w.Send(protocol.NewData(w.Addr, c.IS.Addr(), 0, []float32{float32(i + 1), 0, 0, 0}))
			// Drain the broadcast.
			for {
				pkt, ok := w.RecvTimeout(p, 5*time.Millisecond)
				if !ok {
					break
				}
				_ = pkt
			}
			if i == 0 {
				// Pretend the broadcast was lost: ask again.
				w.Send(protocol.NewControl(w.Addr, c.IS.Addr(), protocol.ActionHelp, protocol.HelpValue(0)))
				pkt, ok := w.RecvTimeout(p, 10*time.Millisecond)
				if ok && pkt.IsData() {
					reAnswer = pkt
				}
			}
		})
	}
	k.Run()
	if reAnswer == nil {
		t.Fatal("Help not served from emission cache")
	}
	if reAnswer.Data[0] != 3 {
		t.Fatalf("cached aggregate = %v, want 3", reAnswer.Data[0])
	}
	if c.IS.HelpServed != 1 {
		t.Fatalf("HelpServed = %d", c.IS.HelpServed)
	}
	if c.IS.HelpRelayed != 0 {
		t.Fatalf("cache hit still relayed (%d)", c.IS.HelpRelayed)
	}
}
