// Package switchnet implements the iSwitch programmable-switch
// extensions (paper §3.2–3.4): a control plane holding a lightweight
// membership table, and a data plane that taps ToS-tagged packets out
// of the normal forwarding path into the aggregation accelerator,
// forwarding partial aggregates up the switch hierarchy and
// broadcasting completed aggregates back down — all without disturbing
// regular traffic.
package switchnet

import (
	"fmt"

	"iswitch/internal/protocol"
)

// MemberType distinguishes the two kinds of membership entries
// (Figure 9).
type MemberType int

const (
	// MemberWorker is a training worker attached below this switch.
	MemberWorker MemberType = iota
	// MemberSwitch is a lower-level switch whose aggregates feed this
	// switch (hierarchical aggregation).
	MemberSwitch
)

// String names the member type as the paper's table does.
func (t MemberType) String() string {
	if t == MemberSwitch {
		return "Switch"
	}
	return "Worker"
}

// Member is one row of the membership table: ID, IP address, UDP port,
// type, and the parent entry in the network topology.
type Member struct {
	ID     int
	Addr   protocol.Addr
	Type   MemberType
	Parent int // parent member ID, or -1 for the root entry
	// ModelFloats is the gradient length announced at Join.
	ModelFloats uint64
}

// Membership is the control plane's member table. Iteration order is
// join order, keeping simulations deterministic.
type Membership struct {
	members []Member
	byAddr  map[protocol.Addr]int // addr -> index in members
	nextID  int
}

// NewMembership returns an empty table.
func NewMembership() *Membership {
	return &Membership{byAddr: make(map[protocol.Addr]int)}
}

// Join adds (or refreshes) an entry and returns its ID. Joining twice
// from the same address updates the row instead of duplicating it.
func (m *Membership) Join(addr protocol.Addr, typ MemberType, parent int, modelFloats uint64) int {
	if i, ok := m.byAddr[addr]; ok {
		m.members[i].Type = typ
		m.members[i].Parent = parent
		m.members[i].ModelFloats = modelFloats
		return m.members[i].ID
	}
	id := m.nextID
	m.nextID++
	m.byAddr[addr] = len(m.members)
	m.members = append(m.members, Member{
		ID: id, Addr: addr, Type: typ, Parent: parent, ModelFloats: modelFloats,
	})
	return id
}

// Leave removes the entry for addr. It reports whether one existed.
func (m *Membership) Leave(addr protocol.Addr) bool {
	i, ok := m.byAddr[addr]
	if !ok {
		return false
	}
	delete(m.byAddr, addr)
	m.members = append(m.members[:i], m.members[i+1:]...)
	for j := i; j < len(m.members); j++ {
		m.byAddr[m.members[j].Addr] = j
	}
	return true
}

// Lookup returns the entry for addr.
func (m *Membership) Lookup(addr protocol.Addr) (Member, bool) {
	i, ok := m.byAddr[addr]
	if !ok {
		return Member{}, false
	}
	return m.members[i], true
}

// Members returns all entries in join order. The slice is shared; do
// not mutate.
func (m *Membership) Members() []Member { return m.members }

// Count returns the number of entries.
func (m *Membership) Count() int { return len(m.members) }

// Workers returns the entries of worker type, in join order.
func (m *Membership) Workers() []Member {
	var w []Member
	for _, e := range m.members {
		if e.Type == MemberWorker {
			w = append(w, e)
		}
	}
	return w
}

// String renders the table like the paper's Figure 9.
func (m *Membership) String() string {
	s := "ID\tIP:Port\tType\tParent\n"
	for _, e := range m.members {
		s += fmt.Sprintf("%d\t%s\t%s\t%d\n", e.ID, e.Addr, e.Type, e.Parent)
	}
	return s
}
