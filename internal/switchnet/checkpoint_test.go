package switchnet

import (
	"reflect"
	"testing"
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// Checkpoint/restore accounting and exactness, driven through the
// public control-plane API without a running simulation.
func TestCheckpointRestoreAccounting(t *testing.T) {
	k := sim.NewKernel()
	pool := accel.NewSRAMPool(1<<20, accel.PartitionDemand, 0)
	c := BuildStar(k, 2, testLink(), WithTenancy(pool, accel.NewSharedBus()))
	is := c.IS

	const floats = 1000
	if err := is.AdmitJob(1, floats); err != nil {
		t.Fatal(err)
	}
	is.SetDedupJob(1, true)
	is.SetCompression(1, protocol.CompNone, floats)
	mem := is.MembershipOf(1)
	a0 := protocol.AddrFrom(10, 0, 0, 1, 7000)
	a1 := protocol.AddrFrom(10, 0, 0, 2, 7000)
	mem.Join(a0, MemberWorker, 0, floats)
	mem.Join(a1, MemberWorker, 0, floats)
	mem.Leave(a0) // leaves an ID gap: restored nextID must preserve it
	acc := is.AcceleratorOf(1)
	if err := acc.SetThreshold(2); err != nil {
		t.Fatal(err)
	}
	acc.IngestFrom(protocol.TagSeg(3, 0), a1.String(), []float32{1, 2, 3})

	cp, err := is.CheckpointJob(1)
	if err != nil {
		t.Fatal(err)
	}
	if cp.SRAMDemand != pool.Reserved(1) || cp.SRAMDemand == 0 {
		t.Fatalf("checkpoint demand %d, pool reservation %d", cp.SRAMDemand, pool.Reserved(1))
	}
	if len(cp.Members) != 1 || cp.Members[0].ID != 1 || cp.NextID != 2 {
		t.Fatalf("member snapshot wrong: %+v nextID=%d", cp.Members, cp.NextID)
	}
	if len(cp.Acc.Segs) != 1 || cp.Acc.Segs[0].Count != 1 {
		t.Fatalf("accelerator snapshot wrong: %+v", cp.Acc)
	}

	// Binary round trip is exact.
	b, err := cp.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back JobCheckpoint
	if err := back.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, &back) {
		t.Fatalf("binary round trip diverged:\n got %+v\nwant %+v", &back, cp)
	}

	// Preempt frees the SRAM; restore re-reserves exactly it and the
	// re-checkpointed state matches the original.
	if _, err := is.PreemptJob(1); err != nil {
		t.Fatal(err)
	}
	if pool.Reserved(1) != 0 || pool.Jobs() != 0 {
		t.Fatalf("preempt left SRAM reserved: %d B, %d jobs", pool.Reserved(1), pool.Jobs())
	}
	if err := is.RestoreJob(&back); err != nil {
		t.Fatal(err)
	}
	if pool.Reserved(1) != cp.SRAMDemand {
		t.Fatalf("restore reserved %d B, want %d", pool.Reserved(1), cp.SRAMDemand)
	}
	again, err := is.CheckpointJob(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, cp) {
		t.Fatalf("restored context re-checkpoints differently:\n got %+v\nwant %+v", again, cp)
	}
	// The ID allocator continues past the gap: a new member gets ID 2.
	if id := is.MembershipOf(1).Join(a0, MemberWorker, 0, floats); id != 2 {
		t.Fatalf("post-restore join got ID %d, want 2", id)
	}

	// Error paths.
	if _, err := is.CheckpointJob(42); err == nil {
		t.Fatal("checkpointing an unadmitted job must fail")
	}
	if _, err := is.CheckpointJob(protocol.DefaultJob); err == nil {
		t.Fatal("checkpointing the default job must fail")
	}
	if err := is.RestoreJob(&back); err == nil {
		t.Fatal("restoring over an admitted job must fail")
	}
}

// Restore must fail cleanly (no context created) when the SRAM was
// given to someone else in the meantime.
func TestRestoreRefusedWhenSRAMTaken(t *testing.T) {
	k := sim.NewKernel()
	demand := accel.ContextDemand(1000, protocol.FloatsPerPacket)
	pool := accel.NewSRAMPool(demand+demand/2, accel.PartitionDemand, 0)
	c := BuildStar(k, 2, testLink(), WithTenancy(pool, nil))
	is := c.IS

	if err := is.AdmitJob(1, 1000); err != nil {
		t.Fatal(err)
	}
	cp, err := is.PreemptJob(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := is.AdmitJob(2, 1000); err != nil {
		t.Fatal(err)
	}
	if err := is.RestoreJob(cp); err == nil {
		t.Fatal("restore should fail while job 2 holds the SRAM")
	}
	if is.AcceleratorOf(1) != nil {
		t.Fatal("failed restore left a context behind")
	}
	is.EvictJob(2)
	if err := is.RestoreJob(cp); err != nil {
		t.Fatalf("restore after eviction: %v", err)
	}
}

// A job preempted mid-round and restored resumes exactly: the partial
// sum survives, the dedup bitmap still rejects the original
// contributor's retransmission, and the completed aggregate equals the
// never-preempted sum.
func TestPreemptRestoreMidRound(t *testing.T) {
	k := sim.NewKernel()
	pool := accel.NewSRAMPool(0, accel.PartitionDemand, 0)
	c := BuildStar(k, 2, testLink(), WithTenancy(pool, accel.NewSharedBus()))
	is := c.IS
	const job = protocol.JobID(5)
	const floats = 4
	if err := is.AdmitJob(job, floats); err != nil {
		t.Fatal(err)
	}
	is.SetDedupJob(job, true)

	seg := protocol.TagSeg(1, 0)
	var got [2][]float32
	for i, w := range c.Workers {
		i, w := i, w
		k.Spawn("worker", func(p *sim.Proc) {
			joinJob(p, w, is.Addr(), job, floats, t)
			if i == 0 {
				p.Sleep(time.Millisecond)
				pkt := protocol.NewData(w.Addr, is.Addr(), seg, []float32{1, 2, 3, 4})
				pkt.Job = job
				w.Send(pkt)
				// Retransmit after the restore: dedup must ignore it.
				p.Sleep(4 * time.Millisecond)
				dup := protocol.NewData(w.Addr, is.Addr(), seg, []float32{1, 2, 3, 4})
				dup.Job = job
				w.Send(dup)
			} else {
				p.Sleep(6 * time.Millisecond)
				pkt := protocol.NewData(w.Addr, is.Addr(), seg, []float32{10, 20, 30, 40})
				pkt.Job = job
				w.Send(pkt)
			}
			for got[i] == nil {
				pkt := w.Recv(p)
				if pkt.IsData() && pkt.Seg == seg {
					got[i] = append([]float32(nil), pkt.Data...)
				}
				pkt.Release()
			}
		})
	}

	var cp *JobCheckpoint
	k.After(2*time.Millisecond, func() {
		var err error
		if cp, err = is.PreemptJob(job); err != nil {
			t.Errorf("preempt: %v", err)
		}
	})
	k.After(3*time.Millisecond, func() {
		if err := is.RestoreJob(cp); err != nil {
			t.Errorf("restore: %v", err)
		}
	})
	k.Run()
	k.Shutdown()

	want := []float32{11, 22, 33, 44}
	for i := range got {
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("worker %d broadcast = %v, want %v (dup not ignored or partial lost)", i, got[i], want)
		}
	}
	if d := is.AcceleratorOf(job).Stats().DupDropped; d != 1 {
		t.Fatalf("DupDropped = %d, want 1", d)
	}
}
