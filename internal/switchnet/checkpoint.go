package switchnet

import (
	"encoding/binary"
	"fmt"

	"iswitch/internal/accel"
	"iswitch/internal/protocol"
)

// Job checkpoint/restore: the control-plane operation behind SRAM
// preemption. CheckpointJob serializes everything a job's context holds
// on this switch — membership rows (with their assigned IDs), the
// negotiated scheme, auto-H mode, the accelerator's pending segment
// state, and the shadow slots — so the scheduler can evict the job,
// hand its SRAM to another tenant, and later restore the context
// bit-identically. A restored job resumes mid-round: contributions that
// were already summed stay summed, the dedup bitmap still rejects
// retransmissions of them, and shadow slots keep re-serving the rounds
// they held.
//
// What is deliberately NOT checkpointed: liveness timestamps (lastSeen
// is re-learned from the first packets after restore — a preemption
// window must not age members toward eviction) and the activity
// counters (observability, not state).

// JobCheckpoint is one job's serialized context on one switch.
type JobCheckpoint struct {
	Job         protocol.JobID
	ModelFloats uint64
	// SRAMDemand is the pool reservation the job held at checkpoint
	// time (0 on unmetered switches); restore re-reserves exactly it.
	SRAMDemand int64
	Scheme     protocol.Compression
	AutoH      bool
	// HelpUpSince preserves the parent-path health counter so a restore
	// mid-recovery does not reset failover escalation.
	HelpUpSince int
	// Members are the membership rows in join order, IDs included.
	// NextID preserves the table's ID allocator so IDs assigned after
	// restore never collide with pre-checkpoint ones.
	Members []Member
	NextID  int
	Acc     *accel.AccSnapshot
	Shadow  *accel.ShadowSnapshot
}

// CheckpointJob serializes an admitted job's context. The context is
// left untouched; pair with EvictJob (or use PreemptJob) to free the
// SRAM. The default job cannot be checkpointed.
func (is *ISwitch) CheckpointJob(job protocol.JobID) (*JobCheckpoint, error) {
	if job == protocol.DefaultJob {
		return nil, fmt.Errorf("switchnet: the default job cannot be checkpointed")
	}
	ctx := is.jobs[job]
	if ctx == nil {
		return nil, fmt.Errorf("switchnet: job %d is not admitted on %s", job, is.addr)
	}
	cp := &JobCheckpoint{
		Job:         job,
		ModelFloats: ctx.modelFloats,
		Scheme:      ctx.scheme,
		AutoH:       ctx.autoH,
		HelpUpSince: ctx.helpUpSince,
		Members:     append([]Member(nil), ctx.mem.members...),
		NextID:      ctx.mem.nextID,
		Acc:         ctx.acc.Snapshot(),
		Shadow:      ctx.shadow.Snapshot(),
	}
	if is.pool != nil {
		cp.SRAMDemand = is.pool.Reserved(uint16(job))
	}
	return cp, nil
}

// PreemptJob checkpoints a job and evicts it in one step, freeing its
// SRAM for another tenant. The returned checkpoint restores the job
// bit-identically via RestoreJob.
func (is *ISwitch) PreemptJob(job protocol.JobID) (*JobCheckpoint, error) {
	cp, err := is.CheckpointJob(job)
	if err != nil {
		return nil, err
	}
	is.EvictJob(job)
	return cp, nil
}

// RestoreJob re-admits a previously checkpointed job, re-reserving its
// SRAM and rebuilding its context exactly as CheckpointJob saw it. It
// fails if the job is already admitted (a restore is not a merge) or if
// the SRAM no longer fits.
func (is *ISwitch) RestoreJob(cp *JobCheckpoint) error {
	if cp.Job == protocol.DefaultJob {
		return fmt.Errorf("switchnet: the default job cannot be restored")
	}
	if is.jobs[cp.Job] != nil {
		return fmt.Errorf("switchnet: job %d is already admitted on %s", cp.Job, is.addr)
	}
	if is.pool != nil {
		if err := is.pool.Reserve(uint16(cp.Job), cp.SRAMDemand); err != nil {
			return err
		}
	}
	ctx := newJobCtx(cp.Job)
	ctx.autoH = cp.AutoH
	ctx.helpUpSince = cp.HelpUpSince
	ctx.scheme = cp.Scheme
	ctx.modelFloats = cp.ModelFloats
	ctx.mem.members = append(ctx.mem.members[:0], cp.Members...)
	for i, m := range cp.Members {
		ctx.mem.byAddr[m.Addr] = i
	}
	ctx.mem.nextID = cp.NextID
	ctx.acc.Restore(cp.Acc)
	ctx.shadow.Restore(cp.Shadow)
	is.jobs[cp.Job] = ctx
	return nil
}

// --- Binary encoding -----------------------------------------------------

const jobCheckpointVersion = 1

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendAddr(b []byte, a protocol.Addr) []byte {
	b = append(b, a.IP[:]...)
	return appendU16(b, a.Port)
}

// MarshalBinary encodes the checkpoint as a versioned little-endian
// byte stream — the form a control plane would DMA off the switch.
func (cp *JobCheckpoint) MarshalBinary() ([]byte, error) {
	b := []byte{jobCheckpointVersion}
	b = appendU16(b, uint16(cp.Job))
	b = appendU64(b, cp.ModelFloats)
	b = appendU64(b, uint64(cp.SRAMDemand))
	b = append(b, uint8(cp.Scheme))
	if cp.AutoH {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU32(b, uint32(cp.HelpUpSince))
	b = appendU32(b, uint32(cp.NextID))
	b = appendU32(b, uint32(len(cp.Members)))
	for _, m := range cp.Members {
		b = appendU32(b, uint32(m.ID))
		b = appendAddr(b, m.Addr)
		b = append(b, uint8(m.Type))
		b = appendU32(b, uint32(int32(m.Parent)))
		b = appendU64(b, m.ModelFloats)
	}
	acc, err := cp.Acc.MarshalBinary()
	if err != nil {
		return nil, err
	}
	b = appendU32(b, uint32(len(acc)))
	b = append(b, acc...)
	shadow, err := cp.Shadow.MarshalBinary()
	if err != nil {
		return nil, err
	}
	b = appendU32(b, uint32(len(shadow)))
	b = append(b, shadow...)
	return b, nil
}

type cpReader struct {
	b   []byte
	err error
}

func (r *cpReader) need(n int, what string) bool {
	if r.err != nil {
		return false
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("switchnet: truncated checkpoint (%s)", what)
		return false
	}
	return true
}
func (r *cpReader) u8(what string) uint8 {
	if !r.need(1, what) {
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}
func (r *cpReader) u16(what string) uint16 {
	if !r.need(2, what) {
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}
func (r *cpReader) u32(what string) uint32 {
	if !r.need(4, what) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}
func (r *cpReader) u64(what string) uint64 {
	if !r.need(8, what) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}
func (r *cpReader) bytes(n int, what string) []byte {
	if !r.need(n, what) {
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// UnmarshalBinary decodes a checkpoint encoded by MarshalBinary.
func (cp *JobCheckpoint) UnmarshalBinary(b []byte) error {
	*cp = JobCheckpoint{}
	r := cpReader{b: b}
	if v := r.u8("version"); r.err == nil && v != jobCheckpointVersion {
		return fmt.Errorf("switchnet: JobCheckpoint version %d unsupported", v)
	}
	cp.Job = protocol.JobID(r.u16("job"))
	cp.ModelFloats = r.u64("modelFloats")
	cp.SRAMDemand = int64(r.u64("sramDemand"))
	cp.Scheme = protocol.Compression(r.u8("scheme"))
	cp.AutoH = r.u8("autoH") != 0
	cp.HelpUpSince = int(r.u32("helpUpSince"))
	cp.NextID = int(r.u32("nextID"))
	nm := int(r.u32("memberCount"))
	for i := 0; i < nm && r.err == nil; i++ {
		var m Member
		m.ID = int(r.u32("member.id"))
		var a protocol.Addr
		copy(a.IP[:], r.bytes(4, "member.ip"))
		a.Port = r.u16("member.port")
		m.Addr = a
		m.Type = MemberType(r.u8("member.type"))
		m.Parent = int(int32(r.u32("member.parent")))
		m.ModelFloats = r.u64("member.modelFloats")
		if r.err == nil {
			cp.Members = append(cp.Members, m)
		}
	}
	accLen := int(r.u32("accLen"))
	accBytes := r.bytes(accLen, "acc")
	shadowLen := int(r.u32("shadowLen"))
	shadowBytes := r.bytes(shadowLen, "shadow")
	if r.err != nil {
		return r.err
	}
	cp.Acc = &accel.AccSnapshot{}
	if err := cp.Acc.UnmarshalBinary(accBytes); err != nil {
		return err
	}
	cp.Shadow = &accel.ShadowSnapshot{}
	return cp.Shadow.UnmarshalBinary(shadowBytes)
}
