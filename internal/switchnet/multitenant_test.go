package switchnet

import (
	"testing"
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// joinJob sends a job-tagged Join from host h and waits for the Ack.
func joinJob(p *sim.Proc, h *netsim.Host, swAddr protocol.Addr, job protocol.JobID, modelFloats uint64, t *testing.T) {
	pkt := protocol.NewControl(h.Addr, swAddr, protocol.ActionJoin, protocol.JoinValue(modelFloats))
	pkt.Job = job
	h.Send(pkt)
	ack := h.Recv(p)
	if !ack.IsControl() || ack.Action != protocol.ActionAck || ack.Value[0] != 1 {
		t.Errorf("worker %v job %d: bad join ack %+v", h.Addr, job, ack)
	}
	if ack.Job != job {
		t.Errorf("worker %v: join ack carries job %d, want %d", h.Addr, ack.Job, job)
	}
}

// Three jobs share one switch; their packets interleave in time, and
// every job must still see exactly its own aggregate. This is the core
// isolation guarantee: per-job contexts mean job A's contributions can
// never land in job B's segment buffers, and an unadmitted job's
// packets are dropped rather than aggregated anywhere.
func TestCrossJobIsolationInterleaved(t *testing.T) {
	k := sim.NewKernel()
	pool := accel.NewSRAMPool(0, accel.PartitionDemand, 0)
	bus := accel.NewSharedBus()
	c := BuildStar(k, 6, testLink(), WithTenancy(pool, bus))

	const n = 4
	for job := protocol.JobID(1); job <= 3; job++ {
		if err := c.IS.AdmitJob(job, n); err != nil {
			t.Fatalf("admit job %d: %v", job, err)
		}
	}
	if c.IS.AdmitJob(2, n) != nil {
		t.Fatal("re-admitting an admitted job should be a no-op")
	}
	if pool.Jobs() != 3 {
		t.Fatalf("pool jobs = %d", pool.Jobs())
	}

	results := make([]*protocol.Packet, 6)
	for i, w := range c.Workers {
		i, w := i, w
		job := protocol.JobID(i/2 + 1) // workers {0,1}→job 1, {2,3}→2, {4,5}→3
		k.Spawn("worker", func(p *sim.Proc) {
			if i == 0 {
				// An unadmitted job gets a control refusal and its data
				// silently dropped — never aggregated.
				bad := protocol.NewControl(w.Addr, c.IS.Addr(), protocol.ActionJoin, protocol.JoinValue(n))
				bad.Job = 9
				w.Send(bad)
				if ack := w.Recv(p); ack.Value[0] != 0 || ack.Job != 9 {
					t.Errorf("unadmitted join ack = %+v, want refusal", ack)
				}
				stray := protocol.NewData(w.Addr, c.IS.Addr(), 0, []float32{100, 100, 100, 100})
				stray.Job = 9
				w.Send(stray)
			}
			joinJob(p, w, c.IS.Addr(), job, n, t)
			// Stagger sends so the three jobs' bursts interleave on the
			// shared datapath rather than arriving in job-sorted blocks.
			p.Sleep(time.Millisecond + time.Duration(i%2)*700*time.Microsecond +
				time.Duration((i*5)%3)*150*time.Microsecond)
			v := float32(job) * float32(i%2+1)
			pkt := protocol.NewData(w.Addr, c.IS.Addr(), 0, []float32{v, v, v, v})
			pkt.Job = job
			w.Send(pkt)
			for {
				got := w.Recv(p)
				if got.IsData() {
					results[i] = got
					return
				}
			}
		})
	}
	k.Run()

	for i, got := range results {
		job := protocol.JobID(i/2 + 1)
		if got == nil {
			t.Fatalf("worker %d (job %d) got no aggregate", i, job)
		}
		if got.Job != job {
			t.Fatalf("worker %d received job %d's broadcast, want %d", i, got.Job, job)
		}
		want := float32(job) * 3 // contributions 1v + 2v with v = job
		for e, x := range got.Data {
			if x != want {
				t.Fatalf("worker %d elem %d = %v, want %v (cross-job bleed?)", i, e, x, want)
			}
		}
	}
	if c.IS.UnknownJobDrops < 2 { // refused control + dropped data
		t.Fatalf("UnknownJobDrops = %d, want >= 2", c.IS.UnknownJobDrops)
	}
	for job := protocol.JobID(1); job <= 3; job++ {
		if got := c.IS.MembershipOf(job).Count(); got != 2 {
			t.Fatalf("job %d members = %d", job, got)
		}
		if c.IS.AcceleratorOf(job).Pending() != 0 {
			t.Fatalf("job %d left partial segments", job)
		}
	}
	if bus.Bursts != 6 {
		t.Fatalf("bus charged %d bursts, want 6 (one per admitted data packet)", bus.Bursts)
	}

	// Eviction releases the job's SRAM and drops its context; the freed
	// space is reusable and the evicted job's packets are now refused.
	if !c.IS.EvictJob(2) || c.IS.EvictJob(2) {
		t.Fatal("evict not idempotent-correct")
	}
	if pool.Jobs() != 2 || c.IS.AcceleratorOf(2) != nil {
		t.Fatalf("evict left state: pool jobs=%d", pool.Jobs())
	}
	if err := c.IS.AdmitJob(2, uint64(pool.Free())); err == nil {
		t.Fatal("over-demand re-admission accepted") // demand = floats*4 > free
	}
	if err := c.IS.AdmitJob(2, n); err != nil {
		t.Fatalf("re-admission after evict: %v", err)
	}
	if c.IS.EvictJob(protocol.DefaultJob) {
		t.Fatal("default job must not be evictable")
	}
}

// Satellite audit: a duplicate Join from an already-registered address
// must refresh the member's row without disturbing the member count or
// the aggregation threshold — in auto-H mode (H tracks membership) and
// after an explicit SetH override alike. A dup Join that bumped H would
// deadlock every in-flight round.
func TestDuplicateJoinKeepsThresholdStable(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 3, testLink())
	w0 := c.Workers[0]
	k.Spawn("ctl", func(p *sim.Proc) {
		for _, w := range c.Workers {
			join(p, w, c.IS.Addr(), 10, t)
		}
		if h := c.IS.Accelerator().Threshold(); h != 3 {
			t.Errorf("auto H = %d after 3 joins", h)
		}
		// Dup join in auto-H mode: count and H stay put, row refreshed.
		join(p, w0, c.IS.Addr(), 999, t)
		if got := c.IS.Membership().Count(); got != 3 {
			t.Errorf("dup join changed count to %d", got)
		}
		if h := c.IS.Accelerator().Threshold(); h != 3 {
			t.Errorf("dup join moved auto H to %d", h)
		}
		if e, ok := c.IS.Membership().Lookup(w0.Addr); !ok || e.ModelFloats != 999 {
			t.Errorf("dup join did not refresh row: %+v %v", e, ok)
		}
		// Dup join after a SetH override: the pinned H must survive.
		w0.Send(protocol.NewControl(w0.Addr, c.IS.Addr(), protocol.ActionSetH, protocol.SetHValue(2)))
		if ack := w0.Recv(p); ack.Value[0] != 1 {
			t.Errorf("SetH nack: %+v", ack)
		}
		join(p, w0, c.IS.Addr(), 10, t)
		if h := c.IS.Accelerator().Threshold(); h != 2 {
			t.Errorf("dup join after SetH re-auto'd H to %d", h)
		}
	})
	k.Run()
}

func threeTierTestCluster(k *sim.Kernel) *ThreeTierCluster {
	link := testLink()
	return BuildThreeTier(k, 2, 2, 2, link, link, link)
}

// Satellite: Help recovery on the three-tier hierarchy. After a full
// global round, every ToR holds the broadcast aggregate in its emission
// cache, so a worker that lost its copy is answered directly by its ToR
// (no relay storm up the fabric).
func TestThreeTierHelpServedFromToRCache(t *testing.T) {
	k := sim.NewKernel()
	c := threeTierTestCluster(k)
	const n = 4
	var recovered *protocol.Packet
	for i, w := range c.Workers {
		i, w := i, w
		tor := c.ToROf3(i)
		k.Spawn("worker", func(p *sim.Proc) {
			join(p, w, tor.Addr(), n, t)
			p.Sleep(time.Millisecond)
			v := float32(i + 1)
			w.Send(protocol.NewData(w.Addr, tor.Addr(), 0, []float32{v, v, v, v}))
			for {
				pkt := w.Recv(p)
				if pkt.IsData() {
					if pkt.Data[0] != 36 { // 1+2+...+8
						t.Errorf("worker %d aggregate = %v, want 36", i, pkt.Data[0])
					}
					break
				}
			}
			if i == 0 {
				// Pretend the broadcast was lost and ask the ToR again.
				w.Send(protocol.NewControl(w.Addr, tor.Addr(), protocol.ActionHelp, protocol.HelpValue(0)))
				for {
					pkt, ok := w.RecvTimeout(p, 10*time.Millisecond)
					if !ok {
						return
					}
					if pkt.IsData() {
						recovered = pkt
						return
					}
				}
			}
		})
	}
	k.Run()
	if recovered == nil || recovered.Data[0] != 36 {
		t.Fatalf("Help not re-served from ToR cache: %+v", recovered)
	}
	if c.ToRs[0].HelpServed != 1 || c.ToRs[0].HelpRelayed != 0 {
		t.Fatalf("ToR0 served=%d relayed=%d, want cache hit without relay",
			c.ToRs[0].HelpServed, c.ToRs[0].HelpRelayed)
	}
}

// Satellite: a Help for a segment the ToR has NOT emitted is relayed to
// the requester's rack peers only — recovery stays rack-local.
func TestThreeTierHelpRelayStaysInRack(t *testing.T) {
	k := sim.NewKernel()
	c := threeTierTestCluster(k)
	gotHelp := make([]bool, len(c.Workers))
	for i, w := range c.Workers {
		i, w := i, w
		tor := c.ToROf3(i)
		k.Spawn("worker", func(p *sim.Proc) {
			join(p, w, tor.Addr(), 16, t)
			if i == 0 {
				p.Sleep(time.Millisecond)
				w.Send(protocol.NewControl(w.Addr, tor.Addr(), protocol.ActionHelp, protocol.HelpValue(2)))
				return
			}
			for {
				pkt, ok := w.RecvTimeout(p, 10*time.Millisecond)
				if !ok {
					return
				}
				if pkt.IsControl() && pkt.Action == protocol.ActionHelp {
					gotHelp[i] = true
					return
				}
			}
		})
	}
	k.Run()
	if !gotHelp[1] {
		t.Fatal("rack peer did not receive the relayed Help")
	}
	for i := 2; i < len(gotHelp); i++ {
		if gotHelp[i] {
			t.Fatalf("worker %d outside rack 0 received the Help", i)
		}
	}
	if c.ToRs[0].HelpRelayed != 1 {
		t.Fatalf("ToR0 HelpRelayed = %d", c.ToRs[0].HelpRelayed)
	}
}

// Satellite: Halt addressed to the core is relayed down the whole
// hierarchy — core→AGGs→ToRs→workers — reaching all eight workers.
func TestThreeTierHaltRelaysDownHierarchy(t *testing.T) {
	k := sim.NewKernel()
	c := threeTierTestCluster(k)
	halted := make([]bool, len(c.Workers))
	for i, w := range c.Workers {
		i, w := i, w
		tor := c.ToROf3(i)
		k.Spawn("worker", func(p *sim.Proc) {
			join(p, w, tor.Addr(), 16, t)
			if i == 0 {
				p.Sleep(time.Millisecond)
				w.Send(protocol.NewControl(w.Addr, RootAddr(), protocol.ActionHalt, nil))
			}
			for {
				pkt, ok := w.RecvTimeout(p, 20*time.Millisecond)
				if !ok {
					return
				}
				if pkt.IsControl() && pkt.Action == protocol.ActionHalt {
					halted[i] = true
					return
				}
			}
		})
	}
	k.Run()
	for i, h := range halted {
		if !h {
			t.Fatalf("worker %d never received the relayed Halt (reached %v)", i, halted)
		}
	}
}
