package switchnet

import (
	"testing"

	"iswitch/internal/accel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// Per-job demux hot-path benchmarks. Every upstream data packet walks
// ctx(job) → accelerator ingest → shared-bus charge; with several
// tenants admitted this path runs once per gradient packet per switch,
// so it must stay allocation-free in steady state (the emission path
// allocates, but only once per completed segment, not per packet).

// benchDemuxSwitch builds a tenancy-armed star iSwitch with nJobs
// admitted contexts whose thresholds no burst ever reaches (pure
// ingest, no emissions), plus one reusable in-flight packet per job.
func benchDemuxSwitch(tb testing.TB, nJobs int) (*ISwitch, []*protocol.Packet) {
	tb.Helper()
	k := sim.NewKernel()
	c := BuildStar(k, 2, testLink(),
		WithTenancy(accel.NewSRAMPool(0, accel.PartitionDemand, 8), accel.NewSharedBus()))
	payload := make([]float32, protocol.FloatsPerPacket)
	pkts := make([]*protocol.Packet, 0, nJobs)
	for j := 1; j <= nJobs; j++ {
		job := protocol.JobID(j)
		if err := c.IS.AdmitJob(job, uint64(protocol.FloatsPerPacket)); err != nil {
			tb.Fatal(err)
		}
		if err := c.IS.AcceleratorOf(job).SetThreshold(1 << 30); err != nil {
			tb.Fatal(err)
		}
		pkt := protocol.NewData(c.Workers[0].Addr, c.IS.Addr(), uint64(j), payload)
		pkt.Job = job
		pkts = append(pkts, pkt)
	}
	return c.IS, pkts
}

// TestPerJobDemuxZeroAlloc is the allocation-regression gate: after
// first-touch segment allocation, demuxing packets across four tenant
// contexts must not allocate at all.
func TestPerJobDemuxZeroAlloc(t *testing.T) {
	is, pkts := benchDemuxSwitch(t, 4)
	for _, pkt := range pkts { // first touch: segment buffers
		is.tap(pkt, nil)
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, pkt := range pkts {
			is.tap(pkt, nil)
		}
	})
	if allocs != 0 {
		t.Fatalf("per-job demux allocated %.1f times per %d-packet round, want 0",
			allocs, len(pkts))
	}
	if is.UnknownJobDrops != 0 {
		t.Fatalf("benchmark packets were dropped: %d", is.UnknownJobDrops)
	}
}

// BenchmarkPerJobDemux measures the multi-tenant ingest path: packets
// round-robin across 4 admitted job contexts.
func BenchmarkPerJobDemux(b *testing.B) {
	is, pkts := benchDemuxSwitch(b, 4)
	for _, pkt := range pkts {
		is.tap(pkt, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		is.tap(pkts[i%len(pkts)], nil)
	}
}

// BenchmarkDefaultJobDemux is the single-tenant baseline (job 0, the
// legacy default context) for comparison against BenchmarkPerJobDemux.
func BenchmarkDefaultJobDemux(b *testing.B) {
	k := sim.NewKernel()
	c := BuildStar(k, 2, testLink())
	if err := c.IS.ForceThreshold(1 << 30); err != nil {
		b.Fatal(err)
	}
	payload := make([]float32, protocol.FloatsPerPacket)
	pkt := protocol.NewData(c.Workers[0].Addr, c.IS.Addr(), 0, payload)
	c.IS.tap(pkt, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.IS.tap(pkt, nil)
	}
}
