package switchnet

import (
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
)

// Egress shaping: the switch-side installation of per-job token
// buckets. The scheduler decides each job's weighted share of each
// port (which jobs actually contend there); this file just owns the
// per-port shaper instances and converts a fractional share into an
// absolute rate against the port's line speed.

// LimitJobEgressOn caps one job's share of one egress port of this
// switch: the job's frames on that port draw from a token bucket
// refilling at frac of the line rate with burstBytes of depth. Installs
// the port's shaper on first use; repeated calls replace the job's
// bucket. frac is clamped to (0, 1].
func (is *ISwitch) LimitJobEgressOn(port *netsim.Port, job protocol.JobID, frac, burstBytes float64) {
	if job == protocol.DefaultJob {
		return // the default job is never shaped
	}
	if frac <= 0 || burstBytes <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	if is.shapers == nil {
		is.shapers = make(map[*netsim.Port]*perfmodel.EgressShaper)
	}
	sh := is.shapers[port]
	if sh == nil {
		sh = perfmodel.NewEgressShaper()
		is.shapers[port] = sh
		port.SetShaper(sh)
	}
	sh.Limit(uint16(job), frac*port.Config().BitsPerSecond, burstBytes)
}

// LimitJobEgress caps a job's share on every egress port of this
// switch — the blunt form for callers without per-port contention
// knowledge.
func (is *ISwitch) LimitJobEgress(job protocol.JobID, frac, burstBytes float64) {
	for _, p := range is.sw.Ports() {
		is.LimitJobEgressOn(p, job, frac, burstBytes)
	}
}

// ShaperOn returns the shaper installed on one of this switch's ports
// (nil if the port is unshaped) — observability for experiments.
func (is *ISwitch) ShaperOn(port *netsim.Port) *perfmodel.EgressShaper {
	if is.shapers == nil {
		return nil
	}
	return is.shapers[port]
}
