package switchnet

import (
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
)

// ISwitch augments a netsim.Switch with the iSwitch control plane and
// the in-switch aggregation accelerator. The augmentation is a
// "bump-in-the-wire": it installs a data-plane tap that diverts only
// ToS-tagged packets; everything else follows the normal lookup tables.
//
// In a hierarchy, each switch aggregates the contributions of its
// children (workers and lower switches). When its local threshold H is
// reached for a segment, a non-root switch forwards one partially
// aggregated packet to its parent; the root broadcasts the globally
// aggregated segment back down, and lower switches replicate broadcasts
// to their children (paper §3.4).
type ISwitch struct {
	sw   *netsim.Switch
	acc  *accel.Accelerator
	mem  *Membership
	addr protocol.Addr

	parent     protocol.Addr // zero => root
	hasParent  bool
	uplink     *netsim.Port // ingress from the parent (broadcasts arrive here)
	autoH      bool         // H tracks member count until SetH overrides
	lastSender protocol.Addr

	// emitCache holds the most recently emitted aggregate per segment
	// key so a lost broadcast copy can be re-served directly to the
	// requester of a Help — without this, a worker that loses the last
	// broadcast of a job has no live peers left to recover through.
	// Bounded FIFO sized for one full model's worth of segments.
	emitCache    map[uint64][]float32
	emitOrder    []uint64
	emitCacheCap int
	// HelpServed counts Helps answered from the cache.
	HelpServed uint64

	// Stats
	ControlIn   uint64
	DataIn      uint64
	Broadcasts  uint64
	UpForwards  uint64
	HelpRelayed uint64
}

// Option configures an ISwitch.
type Option func(*ISwitch)

// WithParent makes the switch a non-root level that forwards completed
// local aggregates to parentAddr via uplink. Broadcast packets arriving
// on uplink are replicated to children.
func WithParent(parentAddr protocol.Addr, uplink *netsim.Port) Option {
	return func(is *ISwitch) {
		is.parent = parentAddr
		is.hasParent = true
		is.uplink = uplink
	}
}

// Attach builds the iSwitch extension on top of sw. addr is the
// switch's own protocol address (used as the source of aggregated
// packets and as the destination its children send to).
func Attach(sw *netsim.Switch, addr protocol.Addr, opts ...Option) *ISwitch {
	cfg := accel.DefaultConfig()
	is := &ISwitch{
		sw:           sw,
		acc:          accel.New(cfg),
		mem:          NewMembership(),
		addr:         addr,
		autoH:        true,
		emitCache:    make(map[uint64][]float32),
		emitCacheCap: 8192,
	}
	for _, o := range opts {
		o(is)
	}
	sw.SetTap(is.tap)
	return is
}

// Addr returns the switch's protocol address.
func (is *ISwitch) Addr() protocol.Addr { return is.addr }

// Accelerator exposes the aggregation unit (tests, experiments).
func (is *ISwitch) Accelerator() *accel.Accelerator { return is.acc }

// Membership exposes the control-plane table.
func (is *ISwitch) Membership() *Membership { return is.mem }

// Switch returns the underlying forwarding switch.
func (is *ISwitch) Switch() *netsim.Switch { return is.sw }

// IsRoot reports whether this switch performs the final (global)
// aggregation.
func (is *ISwitch) IsRoot() bool { return !is.hasParent }

// tap is the data-plane intercept. It runs in kernel context after the
// switch's forwarding-pipeline delay.
func (is *ISwitch) tap(pkt *protocol.Packet, in *netsim.Port) bool {
	switch {
	case pkt.IsControl():
		is.ControlIn++
		is.handleControl(pkt)
		return true
	case pkt.IsData():
		is.DataIn++
		is.handleData(pkt, in)
		return true
	default:
		return false // regular traffic: forward normally
	}
}

func (is *ISwitch) handleControl(pkt *protocol.Packet) {
	// Control packets not addressed to this switch are forwarded along
	// the normal path (e.g. Halt relayed down, Ack back to a worker).
	if pkt.Dst != is.addr {
		is.sw.Forward(pkt)
		return
	}
	switch pkt.Action {
	case protocol.ActionJoin:
		floats, err := protocol.ParseJoin(pkt.Value)
		if err != nil {
			is.ack(pkt.Src, false)
			return
		}
		is.mem.Join(pkt.Src, MemberWorker, 0, floats)
		is.refreshAutoH()
		is.ack(pkt.Src, true)
	case protocol.ActionLeave:
		ok := is.mem.Leave(pkt.Src)
		is.refreshAutoH()
		// Rounds that were only waiting on the departed worker are now
		// satisfied at the lowered H: emit them so nobody stalls.
		segs, sums := is.acc.DrainSatisfied()
		for i, seg := range segs {
			out := &protocol.Packet{Src: is.addr, ToS: protocol.ToSData, Seg: seg, Data: sums[i]}
			if is.hasParent {
				out.Dst = is.parent
				is.UpForwards++
				is.uplink.Send(out) // the packet retains the buffer
			} else {
				is.broadcast(out) // broadcast copies per child: buffer is free
				is.acc.Recycle(sums[i])
			}
		}
		is.ack(pkt.Src, ok)
	case protocol.ActionReset:
		is.acc.Reset()
		is.ack(pkt.Src, true)
	case protocol.ActionSetH:
		h, err := protocol.ParseSetH(pkt.Value)
		if err != nil || is.acc.SetThreshold(h) != nil {
			is.ack(pkt.Src, false)
			return
		}
		is.autoH = false
		is.ack(pkt.Src, true)
	case protocol.ActionFBcast:
		// Force-broadcast every partially aggregated segment downstream.
		for _, seg := range is.acc.PendingSegs() {
			is.FlushAndBroadcast(seg)
		}
		is.ack(pkt.Src, true)
	case protocol.ActionHelp:
		// Loss recovery. If the requested segment's aggregate was
		// already emitted, re-serve it from the emission cache — the
		// requester simply lost its broadcast copy. Otherwise relay the
		// Help to the other workers so they retransmit their
		// contributions (paper §3.3: the switch otherwise only
		// accepts/forwards such control messages).
		if seg, err := protocol.ParseHelp(pkt.Value); err == nil {
			if sum, ok := is.emitCache[seg]; ok {
				is.HelpServed++
				is.unicast(&protocol.Packet{Src: is.addr, Dst: pkt.Src,
					ToS: protocol.ToSData, Seg: seg, Data: sum})
				return
			}
		}
		is.HelpRelayed++
		for _, m := range is.mem.Workers() {
			if m.Addr == pkt.Src {
				continue
			}
			is.unicast(protocol.NewControl(is.addr, m.Addr, protocol.ActionHelp, pkt.Value))
		}
	case protocol.ActionHalt:
		for _, m := range is.mem.Members() {
			is.unicast(protocol.NewControl(is.addr, m.Addr, protocol.ActionHalt, nil))
		}
	default:
		is.ack(pkt.Src, false)
	}
}

// refreshAutoH keeps H equal to the number of children while in
// automatic mode (the paper's default: H = number of child nodes).
func (is *ISwitch) refreshAutoH() {
	if is.autoH && is.mem.Count() > 0 {
		_ = is.acc.SetThreshold(uint32(is.mem.Count()))
	}
}

// SetDedup toggles the accelerator's contributor bitmap (idempotent
// retransmissions for synchronous loss recovery).
func (is *ISwitch) SetDedup(on bool) { is.acc.SetDedup(on) }

// ForceThreshold pins the aggregation threshold H, disabling the
// auto-H that tracks membership — the programmatic equivalent of a SetH
// control message issued by the operator.
func (is *ISwitch) ForceThreshold(h uint32) error {
	if err := is.acc.SetThreshold(h); err != nil {
		return err
	}
	is.autoH = false
	return nil
}

// RegisterChildSwitch records a lower-level switch as a contributor
// (used by the hierarchical topology builder instead of a Join round
// trip, since switches are configured by the operator, not the job).
func (is *ISwitch) RegisterChildSwitch(addr protocol.Addr) {
	is.mem.Join(addr, MemberSwitch, 0, 0)
	is.refreshAutoH()
}

func (is *ISwitch) handleData(pkt *protocol.Packet, in *netsim.Port) {
	// A data packet arriving from the parent is a downstream broadcast
	// of a globally aggregated segment: replicate to children.
	if is.hasParent && in == is.uplink {
		is.broadcast(pkt)
		return
	}
	// Otherwise it is an upstream contribution: run it through the
	// accelerator (keyed by source for the optional dedup bitmap),
	// charging the datapath latency before any output.
	sum, done, lat := is.acc.IngestFrom(pkt.Seg, pkt.Src.String(), pkt.Data)
	if !done {
		return
	}
	seg := pkt.Seg
	is.sw.Kernel().After(lat, func() {
		out := &protocol.Packet{Src: is.addr, ToS: protocol.ToSData, Seg: seg, Data: sum}
		if is.hasParent {
			is.UpForwards++
			out.Dst = is.parent
			is.uplink.Send(out) // the packet retains the buffer
			return
		}
		// broadcast clones the payload per child and the emission cache
		// keeps its own copy, so the aggregate buffer can go back to the
		// accelerator's pool.
		is.broadcast(out)
		is.acc.Recycle(sum)
	})
}

// cacheEmission records an emitted aggregate for Help re-serving.
func (is *ISwitch) cacheEmission(seg uint64, sum []float32) {
	if _, exists := is.emitCache[seg]; !exists {
		if len(is.emitOrder) >= is.emitCacheCap {
			evict := is.emitOrder[0]
			is.emitOrder = is.emitOrder[1:]
			delete(is.emitCache, evict)
		}
		is.emitOrder = append(is.emitOrder, seg)
	}
	is.emitCache[seg] = append([]float32(nil), sum...)
}

// broadcast replicates a data packet to every member (workers and child
// switches), one unicast copy per child so each egress link serializes
// independently, exactly as port-replication hardware behaves.
func (is *ISwitch) broadcast(pkt *protocol.Packet) {
	is.Broadcasts++
	is.cacheEmission(pkt.Seg, pkt.Data)
	for _, m := range is.mem.Members() {
		cp := pkt.Clone()
		cp.Src = is.addr
		cp.Dst = m.Addr
		is.sw.Forward(cp)
	}
}

// unicast sends one packet along the normal forwarding path.
func (is *ISwitch) unicast(pkt *protocol.Packet) { is.sw.Forward(pkt) }

func (is *ISwitch) ack(dst protocol.Addr, ok bool) {
	v := protocol.AckOK
	if !ok {
		v = protocol.AckFail
	}
	is.unicast(protocol.NewControl(is.addr, dst, protocol.ActionAck, v))
}

// FlushAndBroadcast force-broadcasts one partial segment (FBcast data
// path), returning false if the segment held no contributions.
func (is *ISwitch) FlushAndBroadcast(seg uint64) bool {
	sum, _, ok := is.acc.Flush(seg)
	if !ok {
		return false
	}
	out := &protocol.Packet{Src: is.addr, ToS: protocol.ToSData, Seg: seg, Data: sum}
	if is.hasParent {
		out.Dst = is.parent
		is.uplink.Send(out) // the packet retains the buffer
		return true
	}
	is.broadcast(out)
	is.acc.Recycle(sum)
	return true
}

// AggregationLatency reports the accelerator's per-packet datapath time
// for a full-MTU gradient packet; exposed for the analytic timing model.
func (is *ISwitch) AggregationLatency() time.Duration {
	return is.acc.PacketLatency(protocol.FloatsPerPacket)
}
