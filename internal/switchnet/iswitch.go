package switchnet

import (
	"sort"
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
	"iswitch/internal/tensor/kernels"
)

// ISwitch augments a netsim.Switch with the iSwitch control plane and
// the in-switch aggregation accelerator. The augmentation is a
// "bump-in-the-wire": it installs a data-plane tap that diverts only
// ToS-tagged packets; everything else follows the normal lookup tables.
//
// In a hierarchy, each switch aggregates the contributions of its
// children (workers and lower switches). When its local threshold H is
// reached for a segment, a non-root switch forwards one partially
// aggregated packet to its parent; the root broadcasts the globally
// aggregated segment back down, and lower switches replicate broadcasts
// to their children (paper §3.4).
//
// Multi-tenancy: every membership table, accelerator, threshold, and
// emission cache is scoped to a job context keyed by the packet's
// JobID (carried in the IPv4 Identification field). Job 0 — the
// default context — always exists and is what the single-tenant
// accessors below operate on, so legacy single-job fabrics behave
// bit-identically. Additional jobs must be admitted (AdmitJob) before
// their packets are honoured; data for unknown jobs is dropped, never
// aggregated, so a queued or evicted job can not corrupt an admitted
// job's segment buffers. When a finite SRAM pool is attached
// (WithTenancy), admission reserves the job's worst-case segment-state
// demand; when a shared bus is attached, concurrent jobs' bursts
// contend for the 256-bit datapath.
type ISwitch struct {
	sw   *netsim.Switch
	addr protocol.Addr

	// def is job 0's context; jobs holds every admitted context
	// including def (keyed by job ID).
	def  *jobCtx
	jobs map[protocol.JobID]*jobCtx

	// pool meters per-job SRAM (nil: unmetered legacy switch). bus
	// models cross-job datapath contention (nil: none).
	pool *accel.SRAMPool
	bus  *accel.SharedBus

	// shapers holds the per-port egress shapers installed by
	// LimitJobEgressOn (nil until the first limit; see shaping.go).
	shapers map[*netsim.Port]*perfmodel.EgressShaper

	parent    protocol.Addr // zero => root
	hasParent bool
	uplink    *netsim.Port // ingress from the parent (broadcasts arrive here)

	// horizon, when positive, arms lazy liveness detection: a worker
	// whose contribution is blocking a segment and that has not been
	// heard from within horizon is evicted (Leave + SetH adjustment)
	// the next time a Help forces the switch to look at the segment.
	horizon sim.Time

	// failed marks a dead aggregation plane: the switch stops consuming
	// iSwitch traffic addressed to itself (control and data alike) while
	// plain L2/L3 forwarding keeps working — the failure model for
	// whole-switch failover to the backup software relay path.
	failed bool

	// HelpServed counts Helps answered from the shadow slots.
	HelpServed uint64

	// Stats
	ControlIn        uint64
	DataIn           uint64
	Broadcasts       uint64
	UpForwards       uint64
	HelpRelayed      uint64 // Helps relayed to every other member (storm path)
	HelpTargeted     uint64 // Helps relayed only to missing contributors
	HelpUpForwards   uint64 // Helps escalated to the parent switch
	Evicted          uint64 // workers removed by the liveness horizon
	FailDrops        uint64 // iSwitch frames discarded by a failed switch
	UnknownJobDrops  uint64 // packets for unadmitted jobs discarded
	EncMismatchDrops uint64 // contributions whose encoding defies the job's scheme
}

// jobCtx is one training job's slice of the switch: its accelerator
// (segment buffers + counters), membership table, auto-H mode, and the
// shadow aggregation slots that re-serve lost broadcasts.
type jobCtx struct {
	job   protocol.JobID
	acc   *accel.Accelerator
	mem   *Membership
	autoH bool // H tracks member count until SetH overrides

	// shadow holds each segment's most recently emitted aggregate
	// (keyed by round tag when the job runs tagged recovery) so a lost
	// broadcast copy can be re-served directly to the requester of a
	// Help while the next round is already accumulating in the primary
	// slot — without this, a worker that loses the last broadcast of a
	// job has no live peers left to recover through.
	shadow *accel.ShadowStore

	// lastSeen tracks when each member last transmitted anything, for
	// the liveness horizon. Only maintained when the horizon is armed.
	lastSeen map[protocol.Addr]sim.Time

	// helpUpSince counts Helps escalated to the parent with no parent
	// broadcast observed in between — the signal that the upstream
	// aggregation path is dead and worker acks must be withheld so
	// workers escalate to failover.
	helpUpSince int

	// scheme is the job's negotiated gradient compression, fixed at
	// Join time (or pinned by the fabric builder on parent levels that
	// never see a Join); every contribution is validated against it.
	// modelFloats sizes the dense buffer that top-k sparse
	// contributions scatter into.
	scheme      protocol.Compression
	modelFloats uint64
}

func newJobCtx(job protocol.JobID) *jobCtx {
	return &jobCtx{
		job:    job,
		acc:    accel.New(accel.DefaultConfig()),
		mem:    NewMembership(),
		autoH:  true,
		shadow: accel.NewShadowStore(),
	}
}

// Option configures an ISwitch.
type Option func(*ISwitch)

// WithParent makes the switch a non-root level that forwards completed
// local aggregates to parentAddr via uplink. Broadcast packets arriving
// on uplink are replicated to children.
func WithParent(parentAddr protocol.Addr, uplink *netsim.Port) Option {
	return func(is *ISwitch) {
		is.parent = parentAddr
		is.hasParent = true
		is.uplink = uplink
	}
}

// WithTenancy arms multi-tenant resource modeling: admitted jobs
// reserve segment-state SRAM from pool, and concurrent jobs' bursts
// contend on bus. Either may be nil to disable that dimension. The
// default job 0 context is never metered — a tenancy-armed switch
// carrying one job times identically to a legacy switch.
func WithTenancy(pool *accel.SRAMPool, bus *accel.SharedBus) Option {
	return func(is *ISwitch) { is.SetTenancy(pool, bus) }
}

// SetTenancy attaches the SRAM pool and shared bus after construction —
// used by fabric builders that create one pool per switch (SRAM is a
// per-switch resource, so sharing one pool across a hierarchy would
// double-charge a job admitted at several levels).
func (is *ISwitch) SetTenancy(pool *accel.SRAMPool, bus *accel.SharedBus) {
	is.pool = pool
	is.bus = bus
}

// Attach builds the iSwitch extension on top of sw. addr is the
// switch's own protocol address (used as the source of aggregated
// packets and as the destination its children send to).
func Attach(sw *netsim.Switch, addr protocol.Addr, opts ...Option) *ISwitch {
	def := newJobCtx(protocol.DefaultJob)
	is := &ISwitch{
		sw:   sw,
		addr: addr,
		def:  def,
		jobs: map[protocol.JobID]*jobCtx{protocol.DefaultJob: def},
	}
	for _, o := range opts {
		o(is)
	}
	sw.SetTap(is.tap)
	return is
}

// Addr returns the switch's protocol address.
func (is *ISwitch) Addr() protocol.Addr { return is.addr }

// Accelerator exposes the default job's aggregation unit (tests,
// experiments, single-tenant fabrics).
func (is *ISwitch) Accelerator() *accel.Accelerator { return is.def.acc }

// AcceleratorOf exposes an admitted job's aggregation unit (nil if the
// job is not admitted).
func (is *ISwitch) AcceleratorOf(job protocol.JobID) *accel.Accelerator {
	if ctx := is.ctx(job); ctx != nil {
		return ctx.acc
	}
	return nil
}

// Membership exposes the default job's control-plane table.
func (is *ISwitch) Membership() *Membership { return is.def.mem }

// MembershipOf exposes an admitted job's membership table (nil if the
// job is not admitted).
func (is *ISwitch) MembershipOf(job protocol.JobID) *Membership {
	if ctx := is.ctx(job); ctx != nil {
		return ctx.mem
	}
	return nil
}

// Switch returns the underlying forwarding switch.
func (is *ISwitch) Switch() *netsim.Switch { return is.sw }

// SRAMPool returns the attached SRAM pool (nil on unmetered switches).
func (is *ISwitch) SRAMPool() *accel.SRAMPool { return is.pool }

// Bus returns the attached shared bus (nil when contention modeling is
// off).
func (is *ISwitch) Bus() *accel.SharedBus { return is.bus }

// IsRoot reports whether this switch performs the final (global)
// aggregation.
func (is *ISwitch) IsRoot() bool { return !is.hasParent }

// ctx resolves a job's context; nil means the job is not admitted.
func (is *ISwitch) ctx(job protocol.JobID) *jobCtx {
	if job == protocol.DefaultJob {
		return is.def
	}
	return is.jobs[job]
}

// AdmitJob creates an aggregation context for a job, reserving its
// worst-case segment-state SRAM when a pool is attached. Admitting an
// already-admitted job is a no-op. Job 0 is always admitted.
func (is *ISwitch) AdmitJob(job protocol.JobID, modelFloats uint64) error {
	if job == protocol.DefaultJob {
		return nil // the default context always exists
	}
	if is.jobs[job] != nil {
		return nil
	}
	if is.pool != nil {
		demand := accel.ContextDemand(int(modelFloats), protocol.FloatsPerPacket)
		if err := is.pool.Reserve(uint16(job), demand); err != nil {
			return err
		}
	}
	is.jobs[job] = newJobCtx(job)
	return nil
}

// EvictJob tears down a job's context, releasing its SRAM and bus
// state. It reports whether a context existed. The default job can not
// be evicted.
func (is *ISwitch) EvictJob(job protocol.JobID) bool {
	if job == protocol.DefaultJob {
		return false
	}
	if is.jobs[job] == nil {
		return false
	}
	delete(is.jobs, job)
	if is.pool != nil {
		is.pool.Release(uint16(job))
	}
	if is.bus != nil {
		is.bus.Forget(uint16(job))
	}
	return true
}

// Jobs lists the admitted job IDs in ascending order (job 0 included).
func (is *ISwitch) Jobs() []protocol.JobID {
	out := make([]protocol.JobID, 0, len(is.jobs))
	for j := range is.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fail kills the switch's aggregation plane: from now on every iSwitch
// frame addressed to this switch (contributions, Joins, Helps) is
// discarded, while ordinary forwarding — including worker-to-worker
// relay traffic for the backup aggregation path — keeps working. This
// models an accelerator/control-plane death that leaves the L2/L3
// pipeline up; there is no un-fail.
func (is *ISwitch) Fail() { is.failed = true }

// Failed reports whether the aggregation plane has been killed.
func (is *ISwitch) Failed() bool { return is.failed }

// SetLivenessHorizon arms dead-contributor detection: when a Help forces
// the switch to inspect a stalled segment, any worker whose contribution
// is missing and that has been silent for longer than d is evicted from
// the membership (lowering auto-H) so the round completes with the
// survivors. Zero disables detection (the default): a crashed worker
// then stalls its job forever, exactly as before.
func (is *ISwitch) SetLivenessHorizon(d sim.Time) { is.horizon = d }

// LivenessHorizon returns the armed horizon (zero = off).
func (is *ISwitch) LivenessHorizon() sim.Time { return is.horizon }

// Shadow exposes the default job's shadow aggregation slots.
func (is *ISwitch) Shadow() *accel.ShadowStore { return is.def.shadow }

// SetCompression pins a job's negotiated compression scheme and model
// length on this switch. The fabric builder calls it on every level:
// parent switches never see a worker Join, yet must know how to
// interpret and re-emit the partials their children forward. No-op if
// the job is not admitted.
func (is *ISwitch) SetCompression(job protocol.JobID, scheme protocol.Compression, modelFloats uint64) {
	if ctx := is.ctx(job); ctx != nil {
		ctx.scheme = scheme
		ctx.modelFloats = modelFloats
	}
}

// Compression returns the default job's negotiated scheme.
func (is *ISwitch) Compression() protocol.Compression { return is.def.scheme }

// tap is the data-plane intercept. It runs in kernel context after the
// switch's forwarding-pipeline delay.
func (is *ISwitch) tap(pkt *protocol.Packet, in *netsim.Port) bool {
	if is.failed {
		if (pkt.IsControl() || pkt.IsData()) && pkt.Dst == is.addr {
			is.FailDrops++
			pkt.Release()
			return true
		}
		return false // plain forwarding survives the aggregation plane
	}
	switch {
	case pkt.IsControl():
		is.ControlIn++
		is.handleControl(pkt)
		return true
	case pkt.IsData():
		// Data not addressed to this switch and not arriving from the
		// parent is transit traffic (e.g. the backup relay path crossing
		// a healthy fabric): forward it, never aggregate it.
		if pkt.Dst != is.addr {
			return false
		}
		is.DataIn++
		is.handleData(pkt, in)
		return true
	default:
		return false // regular traffic: forward normally
	}
}

func (is *ISwitch) handleControl(pkt *protocol.Packet) {
	// Control packets not addressed to this switch are forwarded along
	// the normal path (e.g. Halt relayed down, Ack back to a worker).
	if pkt.Dst != is.addr {
		is.sw.Forward(pkt)
		return
	}
	ctx := is.ctx(pkt.Job)
	if ctx == nil {
		// Control for a job with no admitted context: a Join racing
		// admission, or a stale action after eviction. Refuse.
		is.UnknownJobDrops++
		is.ack(pkt.Src, pkt.Job, false)
		return
	}
	is.touch(ctx, pkt.Src)
	switch pkt.Action {
	case protocol.ActionJoin:
		floats, scheme, err := protocol.ParseJoinScheme(pkt.Value)
		if err != nil {
			is.ack(pkt.Src, pkt.Job, false)
			return
		}
		// A re-Join from an already-registered address updates the row
		// in place (Membership.Join), so the member count — and with it
		// the automatic threshold H — must not move.
		ctx.mem.Join(pkt.Src, MemberWorker, 0, floats)
		// Only a scheme-carrying Join (9 bytes) renegotiates the job's
		// compression: a legacy 8-byte Join must not reset a scheme the
		// fabric builder already pinned.
		if len(pkt.Value) == 9 {
			ctx.scheme = scheme
		}
		if floats > 0 {
			ctx.modelFloats = floats
		}
		is.refreshAutoH(ctx)
		is.ack(pkt.Src, pkt.Job, true)
	case protocol.ActionLeave:
		ok := ctx.mem.Leave(pkt.Src)
		is.refreshAutoH(ctx)
		// Rounds that were only waiting on the departed worker are now
		// satisfied at the lowered H: emit them so nobody stalls.
		is.emitDrained(ctx)
		is.ack(pkt.Src, pkt.Job, ok)
	case protocol.ActionReset:
		ctx.acc.Reset()
		is.ack(pkt.Src, pkt.Job, true)
	case protocol.ActionSetH:
		h, err := protocol.ParseSetH(pkt.Value)
		if err != nil || ctx.acc.SetThreshold(h) != nil {
			is.ack(pkt.Src, pkt.Job, false)
			return
		}
		ctx.autoH = false
		is.ack(pkt.Src, pkt.Job, true)
	case protocol.ActionFBcast:
		// Force-broadcast every partially aggregated segment downstream.
		for _, seg := range ctx.acc.PendingSegs() {
			is.flushAndBroadcast(ctx, seg)
		}
		is.ack(pkt.Src, pkt.Job, true)
	case protocol.ActionHelp:
		is.handleHelp(ctx, pkt)
	case protocol.ActionAck:
		// A liveness acknowledgement bounced off a peer switch (e.g. the
		// parent answering a forwarded Help): absorb, never re-ack, or
		// two switches would nack each other forever.
	case protocol.ActionHalt:
		for _, m := range ctx.mem.Members() {
			halt := protocol.NewControl(is.addr, m.Addr, protocol.ActionHalt, nil)
			halt.Job = ctx.job
			is.unicast(halt)
		}
	default:
		is.ack(pkt.Src, pkt.Job, false)
	}
}

// handleHelp implements loss recovery (paper §3.3 extended with
// SwitchML-style slot state). Resolution order:
//
//  1. Shadow slot hit — the aggregate was already emitted and the
//     requester lost its broadcast copy: re-serve it directly.
//  2. Without the dedup bitmap (async jobs, legacy fabrics) the switch
//     has no idea who contributed: relay the Help to every other worker
//     so they all retransmit (the storm path, unchanged).
//  3. With dedup armed and the segment holding partial state, relay the
//     Help only to the members whose contribution is missing — the
//     requester included, which is what re-gathers a rejoined worker.
//     Missing workers past the liveness horizon are evicted instead.
//  4. With no slot state at a non-root switch, escalate the Help to the
//     parent: the aggregate lives (or stalled) further up.
//  5. With no slot state at the root (or on a Help pushed down by the
//     parent), re-gather: ask every local member to retransmit.
//
// Helps from workers are acknowledged (when not answered with data) so
// a worker can distinguish "switch alive, peers slow" from "switch
// dead" — except when the switch's own parent path looks dead, in which
// case acks are withheld and the worker escalates to relay failover.
func (is *ISwitch) handleHelp(ctx *jobCtx, pkt *protocol.Packet) {
	seg, err := protocol.ParseHelp(pkt.Value)
	if err != nil {
		is.ack(pkt.Src, pkt.Job, false)
		return
	}
	if is.serveFromShadow(ctx, seg, pkt.Src) {
		return
	}
	if !ctx.acc.Dedup() {
		is.HelpRelayed++
		for _, m := range ctx.mem.Workers() {
			if m.Addr == pkt.Src {
				continue
			}
			relay := protocol.NewControl(is.addr, m.Addr, protocol.ActionHelp, pkt.Value)
			relay.Job = ctx.job
			is.unicast(relay)
		}
		return
	}
	if ctx.acc.CountOf(seg) > 0 {
		is.relayToMissing(ctx, seg, pkt.Value)
		is.maybeAckHelp(ctx, pkt.Src, false)
		return
	}
	if is.hasParent && pkt.Src != is.parent {
		up := protocol.NewControl(is.addr, is.parent, protocol.ActionHelp, pkt.Value)
		up.Job = ctx.job
		is.HelpUpForwards++
		ctx.helpUpSince++
		is.uplink.Send(up)
		is.maybeAckHelp(ctx, pkt.Src, true)
		return
	}
	// Root with no state, or a re-gather request from the parent: the
	// segment's every contribution was lost — including the requester's
	// own (a dropped upload, or a context checkpointed while data was in
	// flight). Ask ALL local members to resend, requester included: a
	// worker requester re-serves its retained gradient, and a child
	// switch requester recycled the segment's state when it emitted
	// upward, so the Help must go back down to make it re-gather from
	// its own subtree. Dedup filters any contribution that does arrive
	// twice.
	is.HelpRelayed++
	for _, m := range ctx.mem.Members() {
		relay := protocol.NewControl(is.addr, m.Addr, protocol.ActionHelp, pkt.Value)
		relay.Job = ctx.job
		is.unicast(relay)
	}
	is.maybeAckHelp(ctx, pkt.Src, false)
}

// serveFromShadow answers a Help from the segment's shadow slot, in the
// job's emission representation: quantized jobs re-serve the narrowed
// (q, shift) pair bit-identically, fp16 jobs re-serve the rounded floats
// tagged with their half-width encoding, everything else the raw
// aggregate. The response owns a pooled copy: the shadow slot's storage
// is reused on the next emission, possibly before delivery.
func (is *ISwitch) serveFromShadow(ctx *jobCtx, seg uint64, req protocol.Addr) bool {
	if ctx.scheme == protocol.CompInt32Block {
		q, shift, ok := ctx.shadow.GetQ(seg)
		if !ok {
			return false
		}
		is.HelpServed++
		resp := &protocol.Packet{Src: is.addr, Dst: req, ToS: protocol.ToSData,
			Job: ctx.job, Seg: seg, Enc: protocol.CompInt32Block, Shift: shift, QData: q}
		is.unicast(resp.PooledClone())
		return true
	}
	sum, ok := ctx.shadow.Get(seg)
	if !ok {
		return false
	}
	is.HelpServed++
	resp := &protocol.Packet{Src: is.addr, Dst: req,
		ToS: protocol.ToSData, Job: ctx.job, Seg: seg, Data: sum}
	if ctx.scheme == protocol.CompFP16 {
		resp.Enc = protocol.CompFP16
	}
	is.unicast(resp.PooledClone())
	return true
}

// relayToMissing forwards a Help only to the members whose contribution
// to seg has not been seen, evicting missing contributors that are past
// the liveness horizon — workers and child switches alike (a child
// switch whose only worker died goes silent exactly like a dead worker;
// hosts-per-edge=1 fat-trees hit this). If eviction lowers H enough to
// complete segments, they are emitted immediately.
func (is *ISwitch) relayToMissing(ctx *jobCtx, seg uint64, helpValue []byte) {
	seen := make(map[string]bool)
	for _, c := range ctx.acc.SeenBy(seg) {
		seen[c] = true
	}
	now := is.sw.Kernel().Now()
	var targets []protocol.Addr
	evicted := false
	for _, m := range ctx.mem.Members() {
		if seen[m.Addr.String()] {
			continue
		}
		if is.horizon > 0 {
			if last, ok := ctx.lastSeen[m.Addr]; ok && now-last > is.horizon {
				ctx.mem.Leave(m.Addr)
				delete(ctx.lastSeen, m.Addr)
				is.Evicted++
				evicted = true
				continue
			}
		}
		targets = append(targets, m.Addr)
	}
	if evicted {
		is.refreshAutoH(ctx)
		is.emitDrained(ctx)
	}
	if ctx.acc.CountOf(seg) == 0 {
		return // eviction completed and emitted the segment
	}
	is.HelpTargeted++
	for _, t := range targets {
		relay := protocol.NewControl(is.addr, t, protocol.ActionHelp, helpValue)
		relay.Job = ctx.job
		is.unicast(relay)
	}
	if is.hasParent {
		// Chasing missing members can outlast the parent's liveness
		// horizon (this switch is waiting out its own horizon before
		// evicting a dead contributor, and emits nothing upward in the
		// meantime). Refresh liveness with an Ack so an alive-but-stalled
		// switch is not itself evicted while it resolves the round; a
		// truly dead subtree sends nothing and ages out as intended.
		up := protocol.NewControl(is.addr, is.parent, protocol.ActionAck, protocol.AckOK)
		up.Job = ctx.job
		is.uplink.Send(up)
	}
}

// helpUpSuppressAfter is how many consecutive unanswered parent
// escalations a switch tolerates before it stops acking worker Helps,
// letting workers conclude the aggregation path is dead.
const helpUpSuppressAfter = 3

// maybeAckHelp acknowledges a worker's Help that was not answered with
// data, as proof the switch (and, transitively, the path it can still
// reach) is alive.
func (is *ISwitch) maybeAckHelp(ctx *jobCtx, req protocol.Addr, escalated bool) {
	m, ok := ctx.mem.Lookup(req)
	if !ok || m.Type != MemberWorker {
		return // peer switches judge liveness by broadcasts, not acks
	}
	if escalated && ctx.helpUpSince > helpUpSuppressAfter {
		return
	}
	is.ack(req, ctx.job, true)
}

// touch records member liveness when the horizon is armed.
func (is *ISwitch) touch(ctx *jobCtx, src protocol.Addr) {
	if is.horizon <= 0 {
		return
	}
	if ctx.lastSeen == nil {
		ctx.lastSeen = make(map[protocol.Addr]sim.Time)
	}
	ctx.lastSeen[src] = is.sw.Kernel().Now()
}

// emitDrained emits every segment whose counter satisfies the (possibly
// just lowered) threshold H — shared by Leave and liveness eviction.
func (is *ISwitch) emitDrained(ctx *jobCtx) {
	if ctx.scheme == protocol.CompInt32Block {
		segs, sums, shifts := ctx.acc.DrainSatisfiedQ()
		for i, seg := range segs {
			is.emitQ(ctx, seg, sums[i], shifts[i])
		}
		return
	}
	segs, sums := ctx.acc.DrainSatisfied()
	for i, seg := range segs {
		is.emitFloat(ctx, seg, sums[i])
	}
}

// emitFloat sends one completed float-datapath aggregate toward the
// parent (retaining the buffer in the packet) or broadcasts it to the
// children and recycles the buffer. An fp16 job's emission is rounded
// through half precision first — that is the representation the workers
// will apply, and tagging the packet halves its modeled wire bytes.
// Top-k aggregates emit dense (CompNone layout), matching the scheme's
// wire contract.
func (is *ISwitch) emitFloat(ctx *jobCtx, seg uint64, sum []float32) {
	out := &protocol.Packet{Src: is.addr, ToS: protocol.ToSData,
		Job: ctx.job, Seg: seg, Data: sum}
	if ctx.scheme == protocol.CompFP16 {
		kernels.F16RoundInPlace(sum)
		out.Enc = protocol.CompFP16
	}
	if is.hasParent {
		out.Dst = is.parent
		is.UpForwards++
		is.uplink.Send(out) // the packet retains the buffer
		return
	}
	is.broadcast(ctx, out) // broadcast copies per child: buffer is free
	ctx.acc.Recycle(sum)
}

// emitQ is emitFloat for the quantized integer datapath: the payload is
// the narrowed int32 sum plus its re-widening shift.
func (is *ISwitch) emitQ(ctx *jobCtx, seg uint64, q []int32, shift uint8) {
	out := &protocol.Packet{Src: is.addr, ToS: protocol.ToSData, Job: ctx.job,
		Seg: seg, Enc: protocol.CompInt32Block, Shift: shift, QData: q}
	if is.hasParent {
		out.Dst = is.parent
		is.UpForwards++
		is.uplink.Send(out) // the packet retains the buffer
		return
	}
	is.broadcast(ctx, out)
	ctx.acc.RecycleQ(q)
}

// refreshAutoH keeps H equal to the number of children while in
// automatic mode (the paper's default: H = number of child nodes).
func (is *ISwitch) refreshAutoH(ctx *jobCtx) {
	if ctx.autoH && ctx.mem.Count() > 0 {
		_ = ctx.acc.SetThreshold(uint32(ctx.mem.Count()))
	}
}

// SetDedup toggles the default job's contributor bitmap (idempotent
// retransmissions for synchronous loss recovery).
func (is *ISwitch) SetDedup(on bool) { is.def.acc.SetDedup(on) }

// SetDedupJob toggles an admitted job's contributor bitmap.
func (is *ISwitch) SetDedupJob(job protocol.JobID, on bool) {
	if ctx := is.ctx(job); ctx != nil {
		ctx.acc.SetDedup(on)
	}
}

// ForceThreshold pins the default job's aggregation threshold H,
// disabling the auto-H that tracks membership — the programmatic
// equivalent of a SetH control message issued by the operator.
func (is *ISwitch) ForceThreshold(h uint32) error {
	if err := is.def.acc.SetThreshold(h); err != nil {
		return err
	}
	is.def.autoH = false
	return nil
}

// RegisterChildSwitch records a lower-level switch as a contributor to
// the default job (used by the hierarchical topology builder instead
// of a Join round trip, since switches are configured by the operator,
// not the job).
func (is *ISwitch) RegisterChildSwitch(addr protocol.Addr) {
	is.RegisterChildSwitchJob(protocol.DefaultJob, addr)
}

// RegisterChildSwitchJob records a lower-level switch as a contributor
// to an admitted job's context — how a multi-tenant scheduler tells a
// parent switch which children will forward partial aggregates for the
// job. No-op if the job is not admitted here.
func (is *ISwitch) RegisterChildSwitchJob(job protocol.JobID, addr protocol.Addr) {
	ctx := is.ctx(job)
	if ctx == nil {
		return
	}
	ctx.mem.Join(addr, MemberSwitch, 0, 0)
	is.refreshAutoH(ctx)
}

// UnregisterChildSwitchJob removes a lower-level switch from an
// admitted job's membership — the inverse of RegisterChildSwitchJob,
// used when an elastic job shrinks out of a subtree and the parent must
// stop waiting for that child's partials. Segments the removal leaves
// satisfied at the lowered H are emitted immediately. No-op if the job
// is not admitted here.
func (is *ISwitch) UnregisterChildSwitchJob(job protocol.JobID, addr protocol.Addr) {
	ctx := is.ctx(job)
	if ctx == nil {
		return
	}
	if !ctx.mem.Leave(addr) {
		return
	}
	is.refreshAutoH(ctx)
	is.emitDrained(ctx)
}

func (is *ISwitch) handleData(pkt *protocol.Packet, in *netsim.Port) {
	ctx := is.ctx(pkt.Job)
	if ctx == nil {
		// Data for a job with no admitted context here: discard. This
		// is the isolation guarantee — a queued/evicted job's packets
		// can never reach another job's segment buffers.
		is.UnknownJobDrops++
		return
	}
	// A data packet arriving from the parent is a downstream broadcast
	// of a globally aggregated segment: replicate to the job's children
	// (each child gets its own pooled copy) and retire the frame. It is
	// also proof the upstream aggregation path is alive.
	if is.hasParent && in == is.uplink {
		ctx.helpUpSince = 0
		is.broadcast(ctx, pkt)
		pkt.Release()
		return
	}
	is.touch(ctx, pkt.Src)
	// Validate the contribution's encoding against the job's negotiated
	// scheme before it can touch a segment buffer: a packet framed under
	// the wrong scheme would corrupt the sum, so the switch trusts the
	// Join-time contract, never the packet.
	if !encOK(ctx.scheme, pkt) {
		is.EncMismatchDrops++
		pkt.Release()
		return
	}
	// Otherwise it is an upstream contribution: run it through the
	// job's accelerator (keyed by source for the optional dedup
	// bitmap), charging the datapath latency before any output. With a
	// shared bus attached, the burst train also queues behind other
	// jobs' in-flight bursts. The contributor key is only rendered when
	// dedup is armed — Addr.String costs an allocation per packet, and
	// the default datapath must stay allocation-free.
	var contributor string
	if ctx.acc.Dedup() {
		contributor = pkt.Src.String()
	}
	seg := pkt.Seg
	var (
		sum    []float32
		qsum   []int32
		oshift uint8
		done   bool
		lat    time.Duration
	)
	switch {
	case ctx.scheme == protocol.CompInt32Block:
		// Saturating int32 adders; child partials re-widened by their
		// narrowing shift onto the base grid.
		qsum, oshift, done, lat = ctx.acc.IngestQFrom(seg, contributor, pkt.QData, pkt.Shift)
	case pkt.Enc == protocol.CompTopK:
		// Sparse worker selection: scatter-add into the dense slot,
		// sized by the segment's span of the model vector.
		lo, hi := protocol.SegmentRange(int(ctx.modelFloats), protocol.SegIndex(seg))
		sum, done, lat = ctx.acc.IngestSparseFrom(seg, contributor, pkt.Idx, pkt.Data, hi-lo)
	case pkt.Enc == protocol.CompFP16:
		// Float adders on half-width wire payloads.
		sum, done, lat = ctx.acc.IngestFromBytes(seg, contributor, pkt.Data, 2*len(pkt.Data))
	default:
		sum, done, lat = ctx.acc.IngestFrom(seg, contributor, pkt.Data)
	}
	// The accelerator summed the payload into its own segment buffer;
	// the contribution frame is spent.
	pkt.Release()
	if is.bus != nil {
		lat = is.bus.Charge(is.sw.Kernel().Now(), uint16(ctx.job), lat)
	}
	if !done {
		return
	}
	is.sw.Kernel().After(lat, func() {
		if qsum != nil {
			is.emitQ(ctx, seg, qsum, oshift)
			return
		}
		is.emitFloat(ctx, seg, sum)
	})
}

// encOK validates a contribution's encoding against the job's scheme.
// Top-k jobs legitimately carry two layouts: sparse worker selections
// (CompTopK; an empty selection is a legal count-only packet) and dense
// partials forwarded by child switches (CompNone).
func encOK(scheme protocol.Compression, pkt *protocol.Packet) bool {
	if scheme == protocol.CompTopK {
		return pkt.Enc == protocol.CompTopK || pkt.Enc == protocol.CompNone
	}
	return pkt.Enc == scheme
}

// broadcast replicates a data packet to every member of the job
// (workers and child switches), one unicast copy per child so each
// egress link serializes independently, exactly as port-replication
// hardware behaves. The emitted aggregate moves into the segment's
// shadow slot on the way out, ready to re-serve lost copies.
func (is *ISwitch) broadcast(ctx *jobCtx, pkt *protocol.Packet) {
	is.Broadcasts++
	if pkt.QData != nil {
		ctx.shadow.PutQ(pkt.Seg, pkt.QData, pkt.Shift)
	} else {
		ctx.shadow.Put(pkt.Seg, pkt.Data)
	}
	for _, m := range ctx.mem.Members() {
		// Pooled flyweight copies: each receiver releases its own on
		// delivery, so a W-member fan-out recycles W frames per segment
		// instead of allocating them.
		cp := pkt.PooledClone()
		cp.Src = is.addr
		cp.Dst = m.Addr
		cp.Job = ctx.job
		is.sw.Forward(cp)
	}
}

// unicast sends one packet along the normal forwarding path.
func (is *ISwitch) unicast(pkt *protocol.Packet) { is.sw.Forward(pkt) }

func (is *ISwitch) ack(dst protocol.Addr, job protocol.JobID, ok bool) {
	v := protocol.AckOK
	if !ok {
		v = protocol.AckFail
	}
	ack := protocol.NewControl(is.addr, dst, protocol.ActionAck, v)
	ack.Job = job
	is.unicast(ack)
}

// FlushAndBroadcast force-broadcasts one partial segment of the default
// job (FBcast data path), returning false if the segment held no
// contributions.
func (is *ISwitch) FlushAndBroadcast(seg uint64) bool {
	return is.flushAndBroadcast(is.def, seg)
}

func (is *ISwitch) flushAndBroadcast(ctx *jobCtx, seg uint64) bool {
	if ctx.scheme == protocol.CompInt32Block {
		q, shift, _, ok := ctx.acc.FlushQ(seg)
		if !ok {
			return false
		}
		is.emitQ(ctx, seg, q, shift)
		return true
	}
	sum, _, ok := ctx.acc.Flush(seg)
	if !ok {
		return false
	}
	is.emitFloat(ctx, seg, sum)
	return true
}

// AggregationLatency reports the accelerator's per-packet datapath time
// for a full-MTU gradient packet; exposed for the analytic timing model.
func (is *ISwitch) AggregationLatency() time.Duration {
	return is.def.acc.PacketLatency(protocol.FloatsPerPacket)
}
