package switchnet

import (
	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// Cluster builders that pair the plain network topologies with iSwitch
// extensions on every switch.

// SwitchPort is the UDP port iSwitch control planes listen on.
const SwitchPort = 9990

// StarAddr returns the switch address used by single-switch clusters.
func StarAddr() protocol.Addr { return protocol.AddrFrom(10, 0, 0, 1, SwitchPort) }

// ToRAddr returns rack r's ToR switch address.
func ToRAddr(r int) protocol.Addr { return protocol.AddrFrom(10, 255, byte(r+1), 1, SwitchPort) }

// RootAddr returns the core switch address.
func RootAddr() protocol.Addr { return protocol.AddrFrom(10, 255, 0, 1, SwitchPort) }

// StarCluster is n workers under one iSwitch-enabled switch — the
// paper's main testbed shape (Figure 1c).
type StarCluster struct {
	Net     *netsim.Star
	IS      *ISwitch
	Workers []*netsim.Host
}

// BuildStar wires nWorkers hosts to one iSwitch over identical links.
// opts (e.g. WithTenancy) are applied to the switch.
func BuildStar(k *sim.Kernel, nWorkers int, link netsim.LinkConfig, opts ...Option) *StarCluster {
	star := netsim.BuildStar(k, nWorkers, link)
	is := Attach(star.Switch, StarAddr(), opts...)
	return &StarCluster{Net: star, IS: is, Workers: star.Hosts}
}

// TreeCluster is the rack-scale shape (Figure 10): a root iSwitch over
// per-rack ToR iSwitches, three (or so) workers per rack.
type TreeCluster struct {
	Net     *netsim.Tree
	Root    *ISwitch
	ToRs    []*ISwitch
	Workers []*netsim.Host
}

// BuildTree builds nRacks racks of perRack workers with iSwitch enabled
// at every level. ToRs forward completed local aggregates to the root;
// the root broadcasts global aggregates back down through the ToRs.
func BuildTree(k *sim.Kernel, nRacks, perRack int, edge, uplink netsim.LinkConfig, opts ...Option) *TreeCluster {
	return attachTree(netsim.BuildRacks(k, nRacks, perRack, edge, uplink), opts...)
}

// BuildTreeN builds a tree holding totalWorkers workers in racks of up
// to perRack (last rack may be partial), matching the paper's
// scalability emulation where a 4-node job spans two 3-port racks.
func BuildTreeN(k *sim.Kernel, totalWorkers, perRack int, edge, uplink netsim.LinkConfig, opts ...Option) *TreeCluster {
	return attachTree(netsim.BuildRacksN(k, totalWorkers, perRack, edge, uplink), opts...)
}

func attachTree(tr *netsim.Tree, opts ...Option) *TreeCluster {
	root := Attach(tr.Root, RootAddr(), opts...)
	tc := &TreeCluster{Net: tr, Root: root, Workers: tr.Hosts}
	for r, torSw := range tr.ToRs {
		tor := Attach(torSw, ToRAddr(r), append([]Option{WithParent(RootAddr(), tr.Uplinks[r])}, opts...)...)
		tc.ToRs = append(tc.ToRs, tor)
		root.RegisterChildSwitch(ToRAddr(r))
		// The root must be able to route broadcasts to each ToR address.
		rootDown := tr.Uplinks[r].Peer()
		tr.Root.AddRoute(protocol.Addr{IP: ToRAddr(r).IP}, rootDown)
	}
	return tc
}

// ToROf returns the ToR iSwitch responsible for worker index i.
func (tc *TreeCluster) ToROf(i int) *ISwitch { return tc.ToRs[tc.Net.RackOf[i]] }

// AGGAddr returns aggregation switch a's address.
func AGGAddr(a int) protocol.Addr { return protocol.AddrFrom(10, 254, byte(a+1), 1, SwitchPort) }

// ThreeTierCluster is the full ToR→AGG→Core hierarchy of Figure 10 with
// iSwitch enabled at all three levels: ToRs aggregate their rack
// (H = workers/rack), AGGs aggregate their pod (H = ToRs/AGG), and the
// core performs the global aggregation (H = number of AGGs) before
// broadcasting back down through the levels.
type ThreeTierCluster struct {
	Net     *netsim.ThreeTier
	Core    *ISwitch
	AGGs    []*ISwitch
	ToRs    []*ISwitch
	Workers []*netsim.Host
}

// BuildThreeTier enables iSwitch on every switch of a three-tier fabric.
func BuildThreeTier(k *sim.Kernel, nAGGs, torsPerAGG, hostsPerToR int, edge, aggLink, coreLink netsim.LinkConfig, opts ...Option) *ThreeTierCluster {
	net := netsim.BuildThreeTier(k, nAGGs, torsPerAGG, hostsPerToR, edge, aggLink, coreLink)
	core := Attach(net.Core, RootAddr(), opts...)
	tc := &ThreeTierCluster{Net: net, Core: core, Workers: net.Hosts}

	for a, aggSw := range net.AGGs {
		agg := Attach(aggSw, AGGAddr(a), append([]Option{WithParent(RootAddr(), net.AGGUplinks[a])}, opts...)...)
		tc.AGGs = append(tc.AGGs, agg)
		core.RegisterChildSwitch(AGGAddr(a))
		coreDown := net.AGGUplinks[a].Peer()
		net.Core.AddRoute(protocol.Addr{IP: AGGAddr(a).IP}, coreDown)
	}
	for t, torSw := range net.ToRs {
		a := net.AGGOf[t]
		tor := Attach(torSw, ToRAddr(t), append([]Option{WithParent(AGGAddr(a), net.ToRUplinks[t])}, opts...)...)
		tc.ToRs = append(tc.ToRs, tor)
		tc.AGGs[a].RegisterChildSwitch(ToRAddr(t))
		aggDown := net.ToRUplinks[t].Peer()
		net.AGGs[a].AddRoute(protocol.Addr{IP: ToRAddr(t).IP}, aggDown)
	}
	return tc
}

// ToROf3 returns the ToR iSwitch of worker i in a three-tier cluster.
func (tc *ThreeTierCluster) ToROf3(i int) *ISwitch { return tc.ToRs[tc.Net.ToROf[i]] }

// Fat-tree addresses live in 11.255.*.* — above the 11.pod.edge.host
// worker plan, mirroring how the other topologies reserve high octets
// for switch control planes.

// FatCoreAddr is the spine core switch's control address.
func FatCoreAddr() protocol.Addr { return protocol.AddrFrom(11, 255, 0, 1, SwitchPort) }

// FatAggAddr is pod p's spine aggregation switch (agg0) address.
func FatAggAddr(p int) protocol.Addr { return protocol.AddrFrom(11, 255, 1, byte(p+1), SwitchPort) }

// FatEdgeAddr is the control address of edge switch e in pod p.
func FatEdgeAddr(p, e int) protocol.Addr {
	return protocol.AddrFrom(11, 255, byte(2+p), byte(e+1), SwitchPort)
}

// FatTreeCluster is a k-ary fat-tree with iSwitch aggregation on the
// embedded spine tree: every edge switch aggregates its rack and
// forwards partials to its pod's agg0, which forwards to core0, which
// broadcasts the global aggregate back down.
type FatTreeCluster struct {
	Net     *netsim.FatTree
	Core    *ISwitch   // on Cores[0]
	Aggs    []*ISwitch // one per pod, on Aggs[pod][0]
	Edges   [][]*ISwitch
	Workers []*netsim.Host
}

// EdgeOfWorker returns the edge iSwitch worker i homes on.
func (fc *FatTreeCluster) EdgeOfWorker(i int) *ISwitch {
	return fc.Edges[fc.Net.PodOf[i]][fc.Net.EdgeOf[i]]
}

// BuildFatTree enables iSwitch on the spine of a k-ary fat-tree
// (every edge switch, each pod's agg0, and core0). kAry must be even;
// hostsPerEdge scales rack density (k=8 with 32 hosts/edge = 1024
// workers).
func BuildFatTree(k *sim.Kernel, kAry, hostsPerEdge int, edge, aggLink, coreLink netsim.LinkConfig, opts ...Option) *FatTreeCluster {
	net := netsim.BuildFatTree(k, kAry, hostsPerEdge, edge, aggLink, coreLink)
	core := Attach(net.Cores[0], FatCoreAddr(), opts...)
	fc := &FatTreeCluster{Net: net, Core: core, Workers: net.Hosts}

	for pod := 0; pod < kAry; pod++ {
		aggSw := net.Aggs[pod][0]
		agg := Attach(aggSw, FatAggAddr(pod), append([]Option{WithParent(FatCoreAddr(), net.AggUplinks[pod])}, opts...)...)
		fc.Aggs = append(fc.Aggs, agg)
		core.RegisterChildSwitch(FatAggAddr(pod))
		coreDown := net.AggUplinks[pod].Peer()
		net.Cores[0].AddRoute(protocol.Addr{IP: FatAggAddr(pod).IP}, coreDown)

		var podEdges []*ISwitch
		for e, edgeSw := range net.Edges[pod] {
			es := Attach(edgeSw, FatEdgeAddr(pod, e), append([]Option{WithParent(FatAggAddr(pod), net.EdgeUplinks[pod][e])}, opts...)...)
			podEdges = append(podEdges, es)
			agg.RegisterChildSwitch(FatEdgeAddr(pod, e))
			aggDown := net.EdgeUplinks[pod][e].Peer()
			aggSw.AddRoute(protocol.Addr{IP: FatEdgeAddr(pod, e).IP}, aggDown)
		}
		fc.Edges = append(fc.Edges, podEdges)
	}
	return fc
}
