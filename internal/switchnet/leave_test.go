package switchnet

import (
	"testing"
	"time"

	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// A worker leaving mid-round must not stall the survivors: the switch
// lowers H and immediately emits any round that was only waiting on the
// departed worker.
func TestLeaveReleasesPendingRound(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 3, testLink())
	var got *protocol.Packet

	// Workers 0 and 1 contribute; worker 2 joins then leaves without
	// contributing. The partial (count 2) must release once H drops to 2.
	for i := 0; i < 3; i++ {
		i := i
		w := c.Workers[i]
		k.Spawn("worker", func(p *sim.Proc) {
			join(p, w, c.IS.Addr(), 4, t)
			p.Sleep(time.Millisecond) // let all joins land (H=3)
			if i < 2 {
				w.Send(protocol.NewData(w.Addr, c.IS.Addr(), 0, []float32{float32(i + 1), 0, 0, 0}))
				for {
					pkt, ok := w.RecvTimeout(p, 20*time.Millisecond)
					if !ok {
						return
					}
					if pkt.IsData() {
						if i == 0 {
							got = pkt
						}
						return
					}
				}
			}
			p.Sleep(2 * time.Millisecond) // after the contributions
			w.Send(protocol.NewControl(w.Addr, c.IS.Addr(), protocol.ActionLeave, nil))
		})
	}
	k.Run()
	if got == nil {
		t.Fatal("survivors stalled after the leave")
	}
	if got.Data[0] != 3 { // 1 + 2
		t.Fatalf("released aggregate = %v, want 3", got.Data[0])
	}
	if h := c.IS.Accelerator().Threshold(); h != 2 {
		t.Fatalf("H after leave = %d, want 2", h)
	}
}

func TestLeaveWithNoPendingRounds(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 2, testLink())
	acked := false
	w0, w1 := c.Workers[0], c.Workers[1]
	k.Spawn("w0", func(p *sim.Proc) { join(p, w0, c.IS.Addr(), 4, t) })
	k.Spawn("w1", func(p *sim.Proc) {
		join(p, w1, c.IS.Addr(), 4, t)
		p.Sleep(time.Millisecond)
		w1.Send(protocol.NewControl(w1.Addr, c.IS.Addr(), protocol.ActionLeave, nil))
		pkt := w1.Recv(p)
		acked = pkt.IsControl() && pkt.Action == protocol.ActionAck && pkt.Value[0] == 1
	})
	k.Run()
	if !acked {
		t.Fatal("leave not acked")
	}
	if c.IS.Membership().Count() != 1 {
		t.Fatalf("members = %d", c.IS.Membership().Count())
	}
}
