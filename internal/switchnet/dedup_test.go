package switchnet

import (
	"testing"

	"iswitch/internal/sim"
)

func TestForceThresholdPinsH(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 4, testLink())
	if err := c.IS.ForceThreshold(2); err != nil {
		t.Fatal(err)
	}
	// Joins must no longer re-auto the threshold.
	for _, w := range c.Workers {
		h := w
		k.Spawn("join", func(p *sim.Proc) { join(p, h, c.IS.Addr(), 10, t) })
	}
	k.Run()
	if got := c.IS.Accelerator().Threshold(); got != 2 {
		t.Fatalf("H = %d after joins, want pinned 2", got)
	}
	if err := c.IS.ForceThreshold(0); err == nil {
		t.Fatal("H=0 accepted")
	}
}

func TestDedupDropsDuplicateContribution(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 2, testLink())
	c.IS.SetDedup(true)
	if !c.IS.Accelerator().Dedup() {
		t.Fatal("dedup not enabled")
	}
	acc := c.IS.Accelerator()
	_ = acc.SetThreshold(2)

	// Same contributor twice: second ingest must not advance the count.
	if _, done, _ := acc.IngestFrom(0, "w1", []float32{5}); done {
		t.Fatal("emitted after one contribution")
	}
	if _, done, _ := acc.IngestFrom(0, "w1", []float32{5}); done {
		t.Fatal("duplicate advanced the counter")
	}
	if acc.Stats().DupDropped != 1 {
		t.Fatalf("dup dropped = %d", acc.Stats().DupDropped)
	}
	sum, done, _ := acc.IngestFrom(0, "w2", []float32{7})
	if !done || sum[0] != 12 {
		t.Fatalf("sum = %v done = %v (w1's duplicate double-counted?)", sum, done)
	}
	// The bitmap clears with the emission: a new round accepts w1 again.
	if _, done, _ := acc.IngestFrom(0, "w1", []float32{1}); done {
		t.Fatal("stale bitmap blocked a new round")
	}
}

func TestDedupOffAllowsRepeatContributions(t *testing.T) {
	k := sim.NewKernel()
	c := BuildStar(k, 2, testLink())
	acc := c.IS.Accelerator() // dedup defaults off (async semantics)
	_ = acc.SetThreshold(2)
	acc.IngestFrom(0, "fast-worker", []float32{1})
	sum, done, _ := acc.IngestFrom(0, "fast-worker", []float32{2})
	if !done || sum[0] != 3 {
		t.Fatalf("async-style double contribution rejected: %v %v", sum, done)
	}
}
