package perfmodel

// Fair-share accounting for a multi-tenant fabric. When several
// training jobs run over one switch, each contended link's transmitted
// bytes can be attributed per job (netsim meters this); these helpers
// turn that ledger into the standard fairness summary reported by the
// job-sweep experiment.

// JainFairness computes Jain's fairness index over a set of per-job
// allocations: (Σx)² / (n·Σx²). It is 1.0 when every job receives an
// equal share and approaches 1/n when one job monopolizes the resource.
// An empty or all-zero input returns 1 (nothing to be unfair about).
func JainFairness(shares []float64) float64 {
	var sum, sumSq float64
	n := 0
	for _, x := range shares {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// FairShare normalizes a per-job byte ledger into fractional shares of
// the link (values summing to 1). Jobs with zero bytes keep share 0; an
// empty ledger returns an empty map.
func FairShare(byJob map[uint16]uint64) map[uint16]float64 {
	var total uint64
	for _, b := range byJob {
		total += b
	}
	out := make(map[uint16]float64, len(byJob))
	if total == 0 {
		for j := range byJob {
			out[j] = 0
		}
		return out
	}
	for j, b := range byJob {
		out[j] = float64(b) / float64(total)
	}
	return out
}
