package perfmodel

import "time"

// Token-bucket egress shaping: the enforcement half of the fairness
// story. JainFairness measures how wire bytes were shared; a TokenBucket
// bounds how they CAN be shared — a job whose weight entitles it to a
// fraction of a link is given a bucket refilling at that fraction of
// the line rate, and every frame it transmits must first draw its wire
// bytes from the bucket. The model is deterministic lazy virtual time
// (no randomness, no background refill process): tokens accrue from
// the elapsed time at each call. Two enforcement forms share the
// bucket state: ReleaseAt (shaping — a frame may overdraw and the
// overdraft converts to a release delay at the configured rate) and
// TakeAt (policing — an uncovered frame is refused and charged
// nothing). Called with monotonically non-decreasing timestamps (the
// DES guarantees this), releases are monotone per bucket, so shaped
// frames never reorder.

// TokenBucket is one job's budget on one egress port.
type TokenBucket struct {
	bytesPerSec float64
	burst       float64 // bucket depth in bytes
	tokens      float64 // current level; negative = debt already owed
	last        time.Duration
}

// NewTokenBucket creates a full bucket refilling at rateBitsPerSec with
// burstBytes of depth. Rate and burst must be positive.
func NewTokenBucket(rateBitsPerSec, burstBytes float64) *TokenBucket {
	if rateBitsPerSec <= 0 {
		panic("perfmodel: token bucket needs a positive rate")
	}
	if burstBytes <= 0 {
		panic("perfmodel: token bucket needs a positive burst")
	}
	return &TokenBucket{bytesPerSec: rateBitsPerSec / 8, burst: burstBytes, tokens: burstBytes}
}

// ReleaseAt draws n bytes at virtual time now and returns the earliest
// time the frame may start serializing: now when the bucket covers it,
// later when the frame ran the bucket into debt.
func (tb *TokenBucket) ReleaseAt(now time.Duration, n int) time.Duration {
	if elapsed := now - tb.last; elapsed > 0 {
		tb.tokens += tb.bytesPerSec * elapsed.Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	if now > tb.last {
		tb.last = now
	}
	tb.tokens -= float64(n)
	if tb.tokens >= 0 {
		return now
	}
	debt := -tb.tokens / tb.bytesPerSec // seconds until the debt refills
	return now + time.Duration(debt*float64(time.Second))
}

// TakeAt refills the bucket to virtual time now and consumes n bytes
// only if the level covers them, reporting whether it did — policer
// semantics: an over-rate frame is refused outright (and charged
// nothing) instead of being granted a delayed release. This is the
// form the switch egress uses: delaying an over-rate tenant's frames
// in the port's FIFO would head-of-line block every other tenant
// behind its backlog, while policing drops only the offender's excess.
func (tb *TokenBucket) TakeAt(now time.Duration, n int) bool {
	if elapsed := now - tb.last; elapsed > 0 {
		tb.tokens += tb.bytesPerSec * elapsed.Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	if now > tb.last {
		tb.last = now
	}
	if tb.tokens < float64(n) {
		return false
	}
	tb.tokens -= float64(n)
	return true
}

// Level reports the current token level in bytes (tests).
func (tb *TokenBucket) Level() float64 { return tb.tokens }

// EgressShaper maps jobs to token buckets on one egress port. Jobs
// without a bucket (the default job 0 included) are never delayed, so a
// shaper-armed port carrying only unshaped traffic behaves exactly like
// an unshaped port.
type EgressShaper struct {
	buckets map[uint16]*TokenBucket

	// Shaped counts frames delayed by a bucket; Delay accumulates the
	// total added release delay (observability of the delay-based
	// Release form).
	Shaped uint64
	Delay  time.Duration
	// Policed counts frames refused by Admit, per job and in total —
	// the enforcement evidence the isolation experiment gates on (a
	// compliant tenant must show zero).
	Policed      uint64
	PolicedByJob map[uint16]uint64
}

// NewEgressShaper returns a shaper with no buckets installed.
func NewEgressShaper() *EgressShaper {
	return &EgressShaper{buckets: make(map[uint16]*TokenBucket)}
}

// Limit installs (or replaces) a job's bucket: rateBitsPerSec of refill
// and burstBytes of depth.
func (s *EgressShaper) Limit(job uint16, rateBitsPerSec, burstBytes float64) {
	s.buckets[job] = NewTokenBucket(rateBitsPerSec, burstBytes)
}

// Forget removes a job's bucket (the job leaves the fabric).
func (s *EgressShaper) Forget(job uint16) { delete(s.buckets, job) }

// Limited reports whether a job has a bucket installed.
func (s *EgressShaper) Limited(job uint16) bool { return s.buckets[job] != nil }

// Release is the delay-based form: draw n bytes from the job's bucket
// at time now and return the frame's earliest start. Kept for callers
// with per-job queues; the switch egress uses Admit instead.
func (s *EgressShaper) Release(now time.Duration, job uint16, n int) time.Duration {
	tb := s.buckets[job]
	if tb == nil {
		return now
	}
	rel := tb.ReleaseAt(now, n)
	if rel > now {
		s.Shaped++
		s.Delay += rel - now
	}
	return rel
}

// Admit implements the netsim policer hook: true when the job's bucket
// covers the frame (or the job has no bucket), false when the frame
// must be dropped at egress.
func (s *EgressShaper) Admit(now time.Duration, job uint16, n int) bool {
	tb := s.buckets[job]
	if tb == nil {
		return true
	}
	if tb.TakeAt(now, n) {
		return true
	}
	s.Policed++
	if s.PolicedByJob == nil {
		s.PolicedByJob = make(map[uint16]uint64)
	}
	s.PolicedByJob[job]++
	return false
}
