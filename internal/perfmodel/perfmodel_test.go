package perfmodel

import (
	"testing"
	"time"
)

func TestWorkloadsMatchTable1(t *testing.T) {
	ws := Workloads()
	if len(ws) != 4 {
		t.Fatalf("workloads = %d, want 4", len(ws))
	}
	want := []struct {
		name  string
		bytes int
		iters int64
	}{
		{"DQN", 6_410_000, 200_000_000},
		{"A2C", 3_310_000, 2_000_000},
		{"PPO", 40_020, 150_000},
		{"DDPG", 157_520, 2_500_000},
	}
	for i, w := range ws {
		if w.Name != want[i].name || w.ModelBytes != want[i].bytes || w.TableIters != want[i].iters {
			t.Errorf("workload %d = %s/%d/%d, want %+v", i, w.Name, w.ModelBytes, w.TableIters, want[i])
		}
		if w.ModelBytes%4 != 0 {
			t.Errorf("%s: model bytes %d not float32-aligned", w.Name, w.ModelBytes)
		}
		if w.Floats() != w.ModelBytes/4 {
			t.Errorf("%s: Floats() inconsistent", w.Name)
		}
	}
}

func TestWorkloadTimingPositive(t *testing.T) {
	for _, w := range Workloads() {
		if w.LocalCompute <= 0 || w.WeightUpdate <= 0 {
			t.Errorf("%s: nonpositive stage times", w.Name)
		}
		if w.SyncIters <= 0 || w.AsyncItersPS <= 0 || w.AsyncItersISW <= 0 {
			t.Errorf("%s: nonpositive iteration counts", w.Name)
		}
		if w.AsyncItersISW >= w.AsyncItersPS {
			t.Errorf("%s: async iSW iterations should be below async PS", w.Name)
		}
		// Compute+update must fit inside the paper's fastest per-iteration
		// time for the workload (otherwise the calibration is impossible).
		if w.LocalCompute+w.WeightUpdate > w.PaperSyncPerIterISW {
			t.Errorf("%s: compute %v exceeds paper iSW per-iter %v",
				w.Name, w.LocalCompute+w.WeightUpdate, w.PaperSyncPerIterISW)
		}
	}
}

func TestComputeSharesSumToOne(t *testing.T) {
	for _, w := range Workloads() {
		cs := w.ComputeShares
		sum := cs.AgentAction + cs.EnvReact + cs.BufferSampling + cs.MemAlloc +
			cs.ForwardPass + cs.BackwardPass + cs.GPUCopy + cs.Others
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("%s: compute shares sum to %v", w.Name, sum)
		}
	}
}

func TestTensors(t *testing.T) {
	dqn, _ := WorkloadByName("DQN")
	if dqn.Tensors() != 1 {
		t.Errorf("DQN tensors = %d", dqn.Tensors())
	}
	ddpg, _ := WorkloadByName("DDPG")
	if ddpg.Tensors() != 2 {
		t.Errorf("DDPG dual model tensors = %d", ddpg.Tensors())
	}
}

func TestWorkloadByName(t *testing.T) {
	if _, err := WorkloadByName("PPO"); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadByName("SAC"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != 10 {
		t.Fatalf("stage names = %d, want 10 (Figure 4 legend)", len(names))
	}
	if names[8] != "Grad Aggregation" {
		t.Fatalf("names[8] = %s", names[8])
	}
}

func TestConstantsSane(t *testing.T) {
	if PSPerMessage <= 0 || ARPerStep <= 0 || ISWWorkerBase <= 0 {
		t.Fatal("nonpositive software constants")
	}
	if PSPerMessage > 10*time.Millisecond || ARPerStep > 10*time.Millisecond {
		t.Fatal("software constants implausibly large")
	}
	if PSSumRate < 1e8 || PSCopyRate < 1e8 || ARCopyRate < 1e8 {
		t.Fatal("rates implausibly small")
	}
}
