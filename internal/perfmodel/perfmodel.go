// Package perfmodel carries the paper-derived timing parameters that
// calibrate the simulation: the four benchmark workloads of Table 1
// (model sizes, iteration counts), the per-iteration stage durations
// implied by Table 4/5 and the Figure 4 breakdowns, and the software
// overhead constants of the reference PS/AllReduce implementations.
//
// Calibration policy (DESIGN.md §4): only the *baseline* synchronous
// parameter-server numbers are fitted — local compute and weight-update
// durations are chosen so that sync-PS per-iteration time matches
// Table 4 given the network model. Every other number (AllReduce,
// iSwitch, async, scalability) is produced by the simulator, so the
// reproduction genuinely tests whether in-switch aggregation yields the
// paper's shape.
package perfmodel

import (
	"fmt"
	"time"
)

// Workload describes one paper benchmark for the timing layer.
type Workload struct {
	// Name is the algorithm (DQN, A2C, PPO, DDPG).
	Name string
	// PaperEnv is the environment the paper trained on.
	PaperEnv string
	// StandInEnv is the environment this reproduction trains on.
	StandInEnv string
	// ModelBytes is the gradient/model size (Table 1).
	ModelBytes int
	// TableIters is the "Training Iteration" column of Table 1.
	TableIters int64
	// TensorMessages is how many framework-level tensor messages carry
	// one gradient (DDPG's "dual model" ships actor and critic
	// separately, so it pays the per-message software cost twice).
	TensorMessages int

	// SyncIters is the synchronous iteration count (Table 4; identical
	// for PS, AR, and iSwitch since they are mathematically equivalent).
	SyncIters int64
	// AsyncItersPS and AsyncItersISW are the Table 5 iteration counts.
	AsyncItersPS, AsyncItersISW int64

	// AsyncPSUpdateCost is extra server-side time per accepted update in
	// the asynchronous parameter-server baseline, fitted so async-PS
	// per-iteration time matches Table 5 (the async baseline is fitted
	// the same way the sync baseline is; iSwitch stays derived).
	AsyncPSUpdateCost time.Duration

	// LocalCompute is the per-iteration local-gradient-computing time
	// (agent action, environment reaction, buffer sampling, memory
	// allocation, forward pass, backward pass, GPU copy, others).
	LocalCompute time.Duration
	// WeightUpdate is the per-iteration optimizer-step time.
	WeightUpdate time.Duration

	// ComputeShares splits LocalCompute into Figure 4's named stages
	// (fractions of LocalCompute, summing to 1).
	ComputeShares ComputeShares

	// PaperSyncPerIter are Table 4's measured per-iteration times, kept
	// for paper-vs-measured reporting (they are outputs to compare
	// against, not inputs to the simulator).
	PaperSyncPerIterPS, PaperSyncPerIterAR, PaperSyncPerIterISW time.Duration
	// PaperAsyncPerIterPS/ISW are Table 5's per-iteration times.
	PaperAsyncPerIterPS, PaperAsyncPerIterISW time.Duration
	// FinalReward is the "Final Average Reward" the paper reports for
	// synchronous training (Table 4).
	FinalReward float64
}

// ComputeShares are the Figure 4 local-computation stage fractions.
type ComputeShares struct {
	AgentAction, EnvReact, BufferSampling, MemAlloc,
	ForwardPass, BackwardPass, GPUCopy, Others float64
}

// StageNames lists the Figure 4 stage labels in display order.
func StageNames() []string {
	return []string{"Agent Action", "Environ React", "Buffer Sampling", "Memory Alloc",
		"Forward Pass", "Backward Pass", "GPU Copy", "Weight Update", "Grad Aggregation", "Others"}
}

// Floats returns the model size in float32 elements.
func (w Workload) Floats() int { return w.ModelBytes / 4 }

// Tensors returns the framework-level tensor message count (≥ 1).
func (w Workload) Tensors() int {
	if w.TensorMessages < 1 {
		return 1
	}
	return w.TensorMessages
}

// defaultShares is a generic Figure 4-style split of local compute.
var defaultShares = ComputeShares{
	AgentAction: 0.10, EnvReact: 0.14, BufferSampling: 0.08, MemAlloc: 0.07,
	ForwardPass: 0.22, BackwardPass: 0.26, GPUCopy: 0.08, Others: 0.05,
}

// Workloads returns the four paper benchmarks with calibrated timing.
//
// Derivations (4 workers, Table 4): per-iteration sync-PS time =
// end-to-end hours / iterations: DQN 31.72 h/1.40 M = 81.6 ms, A2C
// 2.87 h/0.20 M = 51.7 ms, PPO 0.39 h/80 K = 17.6 ms, DDPG 8.07 h/0.75 M
// = 38.7 ms. Gradient aggregation occupies 49.9–83.2 % of an iteration
// (Figure 4), highest for the largest model (DQN) and lowest for the
// smallest (PPO); LocalCompute+WeightUpdate is the remainder.
func Workloads() []Workload {
	return []Workload{
		{
			Name: "DQN", PaperEnv: "Atari Pong", StandInEnv: "GridPong",
			ModelBytes: 6_410_000, TableIters: 200_000_000,
			SyncIters: 1_400_000, AsyncItersPS: 6_300_000, AsyncItersISW: 3_500_000,
			LocalCompute: 11700 * time.Microsecond, WeightUpdate: 2000 * time.Microsecond,
			AsyncPSUpdateCost:   21100 * time.Microsecond,
			ComputeShares:       defaultShares,
			PaperSyncPerIterPS:  81560 * time.Microsecond,
			PaperSyncPerIterAR:  41350 * time.Microsecond,
			PaperSyncPerIterISW: 22270 * time.Microsecond,
			PaperAsyncPerIterPS: 24880 * time.Microsecond, PaperAsyncPerIterISW: 12070 * time.Microsecond,
			FinalReward: 20.00,
		},
		{
			Name: "A2C", PaperEnv: "Atari Qbert", StandInEnv: "CartPole",
			ModelBytes: 3_310_000, TableIters: 2_000_000,
			SyncIters: 200_000, AsyncItersPS: 1_200_000, AsyncItersISW: 400_000,
			LocalCompute: 14800 * time.Microsecond, WeightUpdate: 1500 * time.Microsecond,
			AsyncPSUpdateCost:   9950 * time.Microsecond,
			ComputeShares:       defaultShares,
			PaperSyncPerIterPS:  51660 * time.Microsecond,
			PaperSyncPerIterAR:  32040 * time.Microsecond,
			PaperSyncPerIterISW: 20160 * time.Microsecond,
			PaperAsyncPerIterPS: 13130 * time.Microsecond, PaperAsyncPerIterISW: 12530 * time.Microsecond,
			FinalReward: 13491.73,
		},
		{
			Name: "PPO", PaperEnv: "MuJoCo Hopper", StandInEnv: "Pendulum",
			ModelBytes: 40_020, TableIters: 150_000,
			SyncIters: 80_000, AsyncItersPS: 540_000, AsyncItersISW: 120_000,
			LocalCompute: 8500 * time.Microsecond, WeightUpdate: 300 * time.Microsecond,
			AsyncPSUpdateCost:   720 * time.Microsecond,
			ComputeShares:       defaultShares,
			PaperSyncPerIterPS:  17550 * time.Microsecond,
			PaperSyncPerIterAR:  18900 * time.Microsecond,
			PaperSyncPerIterISW: 9900 * time.Microsecond,
			PaperAsyncPerIterPS: 3400 * time.Microsecond, PaperAsyncPerIterISW: 7990 * time.Microsecond,
			FinalReward: 3090.24,
		},
		{
			Name: "DDPG", PaperEnv: "MuJoCo HalfCheetah", StandInEnv: "PlanarCheetah",
			ModelBytes: 157_520, TableIters: 2_500_000,
			SyncIters: 750_000, AsyncItersPS: 3_000_000, AsyncItersISW: 1_500_000,
			TensorMessages: 2,
			LocalCompute:   14500 * time.Microsecond, WeightUpdate: 500 * time.Microsecond,
			AsyncPSUpdateCost:   9500 * time.Microsecond,
			ComputeShares:       defaultShares,
			PaperSyncPerIterPS:  38740 * time.Microsecond,
			PaperSyncPerIterAR:  43240 * time.Microsecond,
			PaperSyncPerIterISW: 21130 * time.Microsecond,
			PaperAsyncPerIterPS: 11580 * time.Microsecond, PaperAsyncPerIterISW: 14890 * time.Microsecond,
			FinalReward: 2476.75,
		},
	}
}

// WorkloadByName returns the named workload.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("perfmodel: unknown workload %q", name)
}

// Software-stack overhead constants for the reference designs, chosen
// once to land the PS baseline near Table 4 and then held fixed.
const (
	// PSPerMessage is the framework cost (PyTorch distributed + MPI +
	// GPU staging) the parameter server pays per whole-gradient message
	// it receives or sends.
	PSPerMessage = 1290 * time.Microsecond
	// PSWorkerBase is each worker's per-round client-side cost.
	PSWorkerBase = 500 * time.Microsecond
	// PSSumRate is the server's vectorized summation rate (float32
	// element-additions per second).
	PSSumRate = 2e9
	// PSCopyRate is the server's tensor staging throughput
	// (serialize/deserialize + host-GPU copies), charged per byte of
	// every whole-gradient message it receives or sends.
	PSCopyRate = 1.57e9
	// PSMessageFloor is the irreducible size-independent launch cost of
	// one PS framework message (send/recv posting without the staging
	// bytes). Sharded-PS slice costs that scale PerMessage by the
	// shard's share of the model bottom out here.
	PSMessageFloor = 150 * time.Microsecond

	// ARPerStep is the per-ring-step software cost (MPI send/recv pair
	// launch plus GPU staging) each worker pays.
	ARPerStep = 1500 * time.Microsecond
	// ARSumRate is each worker's chunk-reduction rate.
	ARSumRate = 2e9
	// ARCopyRate is each worker's per-step tensor staging throughput,
	// charged on the chunk it sends and the chunk it receives.
	ARCopyRate = 3e9

	// ISWWorkerBase is the per-round client cost of the iSwitch path:
	// raw UDP packetization without the framework stack.
	ISWWorkerBase = 500 * time.Microsecond
)

// ExpectedSyncRound estimates the duration of one healthy synchronous
// in-switch aggregation round for a workload: local gradient compute,
// the per-round client base cost, serializing the full model up and the
// aggregate back down at the access-link rate, and the optimizer step.
// Recovery machinery derives Help timers from this (see
// core.RecoveryTimeoutFor) so a slow-but-healthy peer is not mistaken
// for packet loss.
func ExpectedSyncRound(w Workload, linkBitsPerSec float64) time.Duration {
	wire := time.Duration(float64(w.ModelBytes*8*2) / linkBitsPerSec * float64(time.Second))
	return w.LocalCompute + w.WeightUpdate + ISWWorkerBase + wire
}
