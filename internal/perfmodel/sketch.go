package perfmodel

import (
	"math"
	"math/bits"
	"time"
)

// LatencySketch is a fixed-memory streaming quantile estimator for
// latency samples, in the HDR-histogram style: durations (in
// nanoseconds) land in logarithmic bucket groups subdivided into 2^6
// linear sub-buckets, so every bucket's width is at most 1/64 of its
// lower bound and any reported quantile carries a bounded ~1.6%
// relative error regardless of stream length or skew. Memory is
// constant (~29 KiB) whether the sketch holds ten samples or ten
// billion; sketches merge by bucket-wise addition, so per-generator
// sketches combine into fleet-wide percentiles exactly.
//
// The zero value is not ready; use NewLatencySketch.
type LatencySketch struct {
	counts []uint64
	n      uint64
	sum    float64 // nanoseconds
	min    int64
	max    int64
}

const (
	sketchSubBits = 6
	sketchSubs    = 1 << sketchSubBits // linear sub-buckets per group
	// Groups cover exponents sketchSubBits..62 (int64 nanoseconds ≈
	// 292 years), plus the exact linear range [0, sketchSubs).
	sketchGroups  = 63 - sketchSubBits
	sketchBuckets = sketchSubs + sketchGroups*sketchSubs
)

// NewLatencySketch returns an empty sketch.
func NewLatencySketch() *LatencySketch {
	return &LatencySketch{counts: make([]uint64, sketchBuckets)}
}

// bucketOf maps a non-negative nanosecond value to its bucket index.
// Values below sketchSubs are recorded exactly.
func bucketOf(v int64) int {
	if v < sketchSubs {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // 2^e <= v < 2^(e+1)
	sub := int(v>>(uint(e)-sketchSubBits)) - sketchSubs
	return (e-sketchSubBits+1)*sketchSubs + sub
}

// repOf returns a bucket's representative value (its midpoint; exact
// for the linear range).
func repOf(idx int) int64 {
	g, sub := idx>>sketchSubBits, int64(idx&(sketchSubs-1))
	if g == 0 {
		return sub
	}
	shift := uint(g - 1)
	lo := (sub + sketchSubs) << shift
	return lo + (int64(1)<<shift)/2
}

// Add records one latency sample. Negative durations clamp to zero.
func (s *LatencySketch) Add(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	s.counts[bucketOf(v)]++
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.n++
	s.sum += float64(v)
}

// Count returns the number of recorded samples.
func (s *LatencySketch) Count() uint64 { return s.n }

// Min and Max return the exact extremes of the stream (0 when empty).
func (s *LatencySketch) Min() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.min)
}
func (s *LatencySketch) Max() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.max)
}

// Mean returns the exact arithmetic mean (0 when empty).
func (s *LatencySketch) Mean() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.sum / float64(s.n))
}

// Quantile returns the nearest-rank q-quantile (q in [0,1]): the
// representative value of the bucket holding the ceil(q·n)-th smallest
// sample, clamped to the stream's exact [min, max]. Empty sketches
// return 0.
func (s *LatencySketch) Quantile(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.n)))
	if target < 1 {
		target = 1
	}
	if target > s.n {
		target = s.n
	}
	var cum uint64
	for idx, c := range s.counts {
		cum += c
		if cum >= target {
			v := repOf(idx)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(s.max) // unreachable: counts sum to n
}

// Merge folds o's samples into s (bucket-wise; exact).
func (s *LatencySketch) Merge(o *LatencySketch) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
}

// Reset empties the sketch, keeping its memory.
func (s *LatencySketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.n, s.sum, s.min, s.max = 0, 0, 0, 0
}
