package perfmodel

import (
	"testing"
	"time"
)

func TestTokenBucketBurstThenRate(t *testing.T) {
	// 8 Mbit/s = 1 MB/s, 1000 B burst.
	tb := NewTokenBucket(8e6, 1000)

	// The burst passes untouched.
	if rel := tb.ReleaseAt(0, 1000); rel != 0 {
		t.Fatalf("burst frame delayed to %v", rel)
	}
	// The next 1000 B overdraw an empty bucket: 1000 B at 1 MB/s = 1 ms.
	rel := tb.ReleaseAt(0, 1000)
	if rel != time.Millisecond {
		t.Fatalf("overdraft released at %v, want 1ms", rel)
	}
	// A third frame owes 2 ms total.
	if rel := tb.ReleaseAt(0, 1000); rel != 2*time.Millisecond {
		t.Fatalf("second overdraft released at %v, want 2ms", rel)
	}
	// After 10 ms the bucket has refilled to its 1000 B cap (not 10 kB):
	// a 1000 B frame passes, the next one waits again.
	if rel := tb.ReleaseAt(10*time.Millisecond, 1000); rel != 10*time.Millisecond {
		t.Fatalf("post-refill frame delayed to %v", rel)
	}
	if rel := tb.ReleaseAt(10*time.Millisecond, 500); rel != 10*time.Millisecond+500*time.Microsecond {
		t.Fatalf("capped-refill frame released at %v", rel)
	}
}

func TestTokenBucketMonotonicReleases(t *testing.T) {
	tb := NewTokenBucket(1e9, 1500)
	var prev time.Duration
	now := time.Duration(0)
	for i := 0; i < 1000; i++ {
		rel := tb.ReleaseAt(now, 1500)
		if rel < prev {
			t.Fatalf("release %d went backwards: %v < %v", i, rel, prev)
		}
		if rel < now {
			t.Fatalf("release %d precedes its call time", i)
		}
		prev = rel
		now += 3 * time.Microsecond
	}
}

func TestTokenBucketSustainedRate(t *testing.T) {
	// Long-run throughput must converge to the configured rate: push
	// 1000 frames of 1500 B through a 100 Mbit/s bucket back-to-back.
	tb := NewTokenBucket(100e6, 1500)
	var last time.Duration
	for i := 0; i < 1000; i++ {
		last = tb.ReleaseAt(last, 1500)
	}
	// 999 frames beyond the burst * 1500 B * 8 bits / 100e6 = 119.88 ms.
	want := time.Duration(float64(999*1500*8) / 100e6 * float64(time.Second))
	tol := want / 100
	if diff := last - want; diff < -tol || diff > tol {
		t.Fatalf("sustained release drift: got %v, want ~%v", last, want)
	}
}

func TestTokenBucketTakeAtPolices(t *testing.T) {
	// 8 Mbit/s = 1 MB/s, 1000 B burst.
	tb := NewTokenBucket(8e6, 1000)

	// The burst is admitted; the next frame is refused, not delayed.
	if !tb.TakeAt(0, 1000) {
		t.Fatal("burst frame refused")
	}
	if tb.TakeAt(0, 1000) {
		t.Fatal("over-rate frame admitted")
	}
	// A refusal charges nothing: after 0.5 ms the bucket holds 500 B,
	// so a 500 B frame passes but a 501 B frame does not.
	if !tb.TakeAt(500*time.Microsecond, 500) {
		t.Fatal("refill not credited after refusal")
	}
	if tb.TakeAt(500*time.Microsecond, 1) {
		t.Fatal("empty bucket admitted a frame")
	}
	// Refill caps at the burst: after a long idle only 1000 B fit.
	if !tb.TakeAt(time.Second, 1000) {
		t.Fatal("post-idle burst refused")
	}
	if tb.TakeAt(time.Second, 1) {
		t.Fatal("refill exceeded the burst cap")
	}
}

func TestEgressShaperAdmitPolices(t *testing.T) {
	s := NewEgressShaper()
	s.Limit(3, 8e6, 1000)

	// Jobs without buckets are always admitted and never counted.
	for _, job := range []uint16{0, 1, 7} {
		if !s.Admit(0, job, 1_000_000) {
			t.Fatalf("unbucketed job %d policed", job)
		}
	}
	if s.Policed != 0 {
		t.Fatalf("Policed = %d before any bucketed traffic", s.Policed)
	}

	// The bucketed job is refused once its burst is spent.
	if !s.Admit(0, 3, 1000) {
		t.Fatal("burst frame policed")
	}
	if s.Admit(0, 3, 1000) {
		t.Fatal("over-rate frame admitted")
	}
	if s.Policed != 1 || s.PolicedByJob[3] != 1 {
		t.Fatalf("policer stats = %d total / %v by job", s.Policed, s.PolicedByJob)
	}
}

func TestEgressShaperOnlyShapesBucketedJobs(t *testing.T) {
	s := NewEgressShaper()
	s.Limit(3, 8e6, 1000)

	// Jobs without buckets (job 0 included) are never delayed.
	for _, job := range []uint16{0, 1, 7} {
		if rel := s.Release(time.Millisecond, job, 1_000_000); rel != time.Millisecond {
			t.Fatalf("unbucketed job %d delayed to %v", job, rel)
		}
	}
	if s.Shaped != 0 {
		t.Fatalf("Shaped = %d before any bucketed traffic", s.Shaped)
	}

	// The bucketed job pays once its burst is spent.
	s.Release(0, 3, 1000)
	rel := s.Release(0, 3, 1000)
	if rel != time.Millisecond {
		t.Fatalf("bucketed overdraft released at %v", rel)
	}
	if s.Shaped != 1 || s.Delay != time.Millisecond {
		t.Fatalf("shaper stats = %d shaped / %v delay", s.Shaped, s.Delay)
	}

	if !s.Limited(3) || s.Limited(4) {
		t.Fatal("Limited misreports bucket presence")
	}
	s.Forget(3)
	if s.Limited(3) {
		t.Fatal("Forget left the bucket installed")
	}
}
