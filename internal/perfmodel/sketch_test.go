package perfmodel

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// exactQuantile is the sort-based nearest-rank oracle the sketch is
// differentially tested against.
func exactQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	k := int(float64(len(sorted))*q + 0.9999999)
	if k < 1 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1]
}

// sketchTol is the asserted relative error bound: bucket width is at
// most 1/64 of the value, the midpoint representative halves that, and
// a little slack covers rank-boundary straddling.
const sketchTol = 0.02

func checkQuantiles(t *testing.T, s *LatencySketch, samples []time.Duration, label string) {
	t.Helper()
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		want := exactQuantile(sorted, q)
		got := s.Quantile(q)
		diff := float64(got - want)
		if diff < 0 {
			diff = -diff
		}
		// Absolute slack of 1ns covers the exact linear range.
		if diff > 1 && diff > sketchTol*float64(want) {
			t.Fatalf("%s: q=%.3f sketch %v vs oracle %v (rel err %.4f > %.2f)",
				label, q, got, want, diff/float64(want), sketchTol)
		}
	}
}

// TestSketchDifferential runs randomized streams from several latency
// shapes against the exact oracle.
func TestSketchDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []struct {
		name string
		draw func() time.Duration
	}{
		{"uniform-us", func() time.Duration {
			return time.Duration(rng.Int63n(1_000_000))
		}},
		{"lognormal", func() time.Duration {
			return time.Duration(1e3 * rng.ExpFloat64() * rng.ExpFloat64() * 50)
		}},
		{"bimodal", func() time.Duration {
			if rng.Intn(10) == 0 {
				return time.Duration(5_000_000 + rng.Int63n(1_000_000)) // slow tail
			}
			return time.Duration(20_000 + rng.Int63n(5_000))
		}},
		{"tiny", func() time.Duration {
			return time.Duration(rng.Int63n(64)) // exact linear range
		}},
	}
	for _, sh := range shapes {
		for _, n := range []int{3, 100, 5000} {
			s := NewLatencySketch()
			samples := make([]time.Duration, n)
			for i := range samples {
				samples[i] = sh.draw()
				s.Add(samples[i])
			}
			if s.Count() != uint64(n) {
				t.Fatalf("%s: count %d, want %d", sh.name, s.Count(), n)
			}
			checkQuantiles(t, s, samples, sh.name)
		}
	}
}

// TestSketchMerge pins that merging per-generator sketches equals one
// sketch fed the concatenated stream (bucket-wise identical counts).
func TestSketchMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a, b, all := NewLatencySketch(), NewLatencySketch(), NewLatencySketch()
	var samples []time.Duration
	for i := 0; i < 2000; i++ {
		d := time.Duration(rng.Int63n(10_000_000))
		samples = append(samples, d)
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
		all.Add(d)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge stats diverge: count %d/%d min %v/%v max %v/%v",
			a.Count(), all.Count(), a.Min(), all.Min(), a.Max(), all.Max())
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q=%.2f merged %v != combined %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
	checkQuantiles(t, a, samples, "merged")
	// Merging an empty or nil sketch is a no-op.
	before := a.Quantile(0.5)
	a.Merge(NewLatencySketch())
	a.Merge(nil)
	if a.Quantile(0.5) != before || a.Count() != all.Count() {
		t.Fatal("merging an empty sketch changed the stream")
	}
}

// TestSketchEdgeCases: empty, single-sample, zero/negative durations,
// and Reset.
func TestSketchEdgeCases(t *testing.T) {
	s := NewLatencySketch()
	if s.Count() != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sketch must report zeros")
	}

	s.Add(1234567 * time.Nanosecond)
	for _, q := range []float64{0, 0.5, 1} {
		got := s.Quantile(q)
		// A single sample is clamped to the exact [min, max] = [v, v].
		if got != 1234567 {
			t.Fatalf("single sample q=%.1f = %v, want 1.234567ms", q, got)
		}
	}
	if s.Mean() != 1234567 {
		t.Fatalf("single-sample mean %v", s.Mean())
	}

	s.Reset()
	if s.Count() != 0 || s.Quantile(0.99) != 0 {
		t.Fatal("Reset did not empty the sketch")
	}

	s.Add(-5 * time.Second) // clamps to 0
	s.Add(0)
	if s.Min() != 0 || s.Max() != 0 || s.Quantile(1) != 0 {
		t.Fatalf("negative/zero handling: min %v max %v", s.Min(), s.Max())
	}
}

// TestSketchBucketGeometry pins the index/representative round trip:
// every value's bucket representative stays within the error bound.
func TestSketchBucketGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100000; i++ {
		v := rng.Int63() >> uint(rng.Intn(40))
		idx := bucketOf(v)
		if idx < 0 || idx >= sketchBuckets {
			t.Fatalf("value %d: bucket %d out of range", v, idx)
		}
		rep := repOf(idx)
		diff := float64(rep - v)
		if diff < 0 {
			diff = -diff
		}
		if v < sketchSubs {
			if rep != v {
				t.Fatalf("linear range value %d got representative %d", v, rep)
			}
		} else if diff > float64(v)/(2*sketchSubs)+1 {
			t.Fatalf("value %d: representative %d off by %.0f (> width/2)", v, rep, diff)
		}
	}
}
