package perfmodel

import (
	"math"
	"testing"
)

func TestJainFairness(t *testing.T) {
	if f := JainFairness([]float64{1, 1, 1, 1}); f != 1 {
		t.Fatalf("equal shares index = %v", f)
	}
	// One job hogging a 4-job link drives the index toward 1/4.
	if f := JainFairness([]float64{1, 0, 0, 0}); math.Abs(f-0.25) > 1e-12 {
		t.Fatalf("monopoly index = %v, want 0.25", f)
	}
	if f := JainFairness(nil); f != 1 {
		t.Fatalf("empty index = %v", f)
	}
	if f := JainFairness([]float64{0, 0}); f != 1 {
		t.Fatalf("all-zero index = %v", f)
	}
	mid := JainFairness([]float64{3, 1})
	if mid <= 0.5 || mid >= 1 {
		t.Fatalf("skewed index = %v, want in (0.5, 1)", mid)
	}
}

func TestFairShare(t *testing.T) {
	shares := FairShare(map[uint16]uint64{1: 300, 2: 100, 3: 0})
	if shares[1] != 0.75 || shares[2] != 0.25 || shares[3] != 0 {
		t.Fatalf("shares = %v", shares)
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares sum to %v", sum)
	}
	if got := FairShare(map[uint16]uint64{7: 0}); got[7] != 0 {
		t.Fatalf("zero ledger shares = %v", got)
	}
	if got := FairShare(nil); len(got) != 0 {
		t.Fatalf("nil ledger shares = %v", got)
	}
}
