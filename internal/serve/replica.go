package serve

import (
	"fmt"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/nn"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// ReplicaConfig parameterizes one policy replica server.
type ReplicaConfig struct {
	// MaxBatch closes a batch when this many requests are staged
	// (default 8; bounded by the forward pass's preallocated planes).
	MaxBatch int
	// BatchWindow closes a batch this long after its first request
	// arrived, however few requests are staged (default 20µs). The
	// adaptive tradeoff: low load pays at most BatchWindow extra
	// latency, high load fills MaxBatch before the window expires.
	BatchWindow time.Duration
	// ServiceBase + n×ServicePerItem is the modeled wall-clock cost of
	// one batched forward pass of n samples (defaults 4µs + 2µs/item:
	// per-batch launch overhead amortized across the batch). The
	// replica also runs the real nn.BatchForwarder pass for the
	// outputs; the model charges virtual time for it.
	ServiceBase    time.Duration
	ServicePerItem time.Duration
	// Job tags responses for multi-tenant metering and policing.
	Job protocol.JobID
}

func (c ReplicaConfig) withDefaults() ReplicaConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 20 * time.Microsecond
	}
	if c.ServiceBase <= 0 {
		c.ServiceBase = 4 * time.Microsecond
	}
	if c.ServicePerItem <= 0 {
		c.ServicePerItem = 2 * time.Microsecond
	}
	return c
}

// Replica is one policy server: a host on the fabric answering
// ToSServeReq frames with the loaded policy's outputs.
type Replica struct {
	Host *netsim.Host
	fw   *nn.BatchForwarder
	cfg  ReplicaConfig

	// Staged batch state (ids/srcs parallel the forwarder's rows).
	ids  []uint64
	srcs []protocol.Addr

	// Stats, read after the kernel drains.
	Served, Batches uint64
	// Rejected counts frames that were not well-formed requests
	// (wrong ToS or observation length).
	Rejected uint64
	// Busy accumulates modeled service time — Occupancy's numerator.
	Busy time.Duration
	// MaxBatchSeen is the largest batch the adaptive window closed.
	MaxBatchSeen int
}

// NewReplica builds a replica serving policy through a preallocated
// batched forwarder on host. The policy is typically loaded from a
// training checkpoint (nn.MLP.Load); the replica serves it by live
// view, so continued in-place training is immediately visible.
func NewReplica(host *netsim.Host, policy *nn.MLP, cfg ReplicaConfig) *Replica {
	cfg = cfg.withDefaults()
	return &Replica{
		Host: host,
		fw:   nn.NewBatchForwarder(policy, cfg.MaxBatch),
		cfg:  cfg,
		ids:  make([]uint64, cfg.MaxBatch),
		srcs: make([]protocol.Addr, cfg.MaxBatch),
	}
}

// Policy returns the served network (a live view).
func (r *Replica) Policy() *nn.MLP { return r.fw.Model() }

// Occupancy returns the fraction of elapsed the replica spent in
// forward passes.
func (r *Replica) Occupancy(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.Busy) / float64(elapsed)
}

// Start spawns the replica's serving proc. It parks forever once
// traffic drains; Kernel.Shutdown reclaims it.
func (r *Replica) Start(k *sim.Kernel) {
	k.Spawn(fmt.Sprintf("replica/%s", r.Host.Addr), r.run)
}

// stage validates and stages one frame into batch slot n, returning the
// new staged count. The frame is always released.
func (r *Replica) stage(pkt *protocol.Packet, n int) int {
	if !pkt.IsServeReq() || len(pkt.Data) != r.Policy().InDim() {
		r.Rejected++
		pkt.Release()
		return n
	}
	copy(r.fw.In(n), pkt.Data)
	r.ids[n] = pkt.ReqID()
	r.srcs[n] = pkt.Src
	pkt.Release()
	return n + 1
}

func (r *Replica) run(p *sim.Proc) {
	outDim := r.Policy().OutDim()
	for {
		// Block for the batch's first request, then fill until the
		// window closes or the batch is full.
		n := r.stage(r.Host.Recv(p), 0)
		deadline := p.Now() + r.cfg.BatchWindow
		for n < r.cfg.MaxBatch {
			wait := deadline - p.Now()
			if wait <= 0 {
				break
			}
			pkt, ok := r.Host.RecvTimeout(p, wait)
			if !ok {
				break
			}
			n = r.stage(pkt, n)
		}
		if n == 0 {
			continue
		}
		out := r.fw.Forward(n)
		svc := r.cfg.ServiceBase + time.Duration(n)*r.cfg.ServicePerItem
		p.Sleep(svc)
		r.Busy += svc
		r.Batches++
		r.Served += uint64(n)
		if n > r.MaxBatchSeen {
			r.MaxBatchSeen = n
		}
		for i := 0; i < n; i++ {
			r.Host.Send(protocol.NewServeResponse(r.Host.Addr, r.srcs[i],
				r.cfg.Job, r.ids[i], out[i*outDim:(i+1)*outDim]))
		}
	}
}
