package serve

import (
	"bytes"
	"fmt"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/nn"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// StarConfig sizes one measured serving cell: a star fabric with the
// replicas and generators as leaf hosts of one switch.
type StarConfig struct {
	Replicas   int
	Generators int
	// Dims is the served policy architecture (Dims[0] = observation
	// size, last = output size).
	Dims []int
	// Seed drives policy init and the generators' arrival streams.
	Seed int64
	Link netsim.LinkConfig
	Rep  ReplicaConfig
	// Gen carries the arrival process; Gen.Rate is the AGGREGATE
	// offered load, split evenly across the generators.
	Gen GenConfig
}

func (c StarConfig) withDefaults() StarConfig {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.Generators <= 0 {
		c.Generators = 2
	}
	if len(c.Dims) == 0 {
		c.Dims = []int{16, 32, 32, 4}
	}
	if c.Link.BitsPerSecond == 0 {
		c.Link = netsim.TenGbE()
	}
	if c.Gen.Duration <= 0 {
		c.Gen.Duration = 5 * time.Millisecond
	}
	return c
}

// Metrics summarizes one serving run.
type Metrics struct {
	// Offered is the configured aggregate arrival rate (req/s);
	// Achieved is responses over the measured window (first send to
	// last response) — it tracks Offered until the fleet saturates.
	Offered, Achieved float64
	Sent, Done, Lost  uint64
	// Latency percentiles from the merged generator sketches.
	P50, P90, P99, Max time.Duration
	Mean               time.Duration
	// Occupancy is the mean replica busy fraction over the measured
	// window; PerReplica is each replica's served count (the balance
	// the selection policy achieved).
	Occupancy  float64
	PerReplica []uint64
	// MaxBatch is the largest adaptive batch any replica closed.
	MaxBatch int
	// Sketch is the merged latency sketch (for further quantiles).
	Sketch *perfmodel.LatencySketch
}

// checkpointRoundTrip moves a policy through its wire checkpoint format
// — replicas genuinely load what a trainer saved.
func checkpointRoundTrip(master *nn.MLP, dims []int) *nn.MLP {
	var buf bytes.Buffer
	if err := master.Save(&buf); err != nil {
		panic(fmt.Sprintf("serve: checkpoint save: %v", err))
	}
	m := nn.NewMLP(dims, nn.ActTanh, nn.ActNone, 0)
	if err := m.Load(&buf); err != nil {
		panic(fmt.Sprintf("serve: checkpoint load: %v", err))
	}
	return m
}

// deployFleet stands replicas and generators up on the given hosts:
// each replica loads the master policy via a checkpoint round trip,
// each generator gets a derived seed and an even share of the
// aggregate rate. Callers then drive the kernel.
func deployFleet(k *sim.Kernel, repHosts, genHosts []*netsim.Host,
	dims []int, seed int64, repCfg ReplicaConfig, genCfg GenConfig) ([]*Replica, []*Generator) {
	master := nn.NewMLP(dims, nn.ActTanh, nn.ActNone, seed)
	repAddrs := make([]protocol.Addr, len(repHosts))
	replicas := make([]*Replica, len(repHosts))
	for i, h := range repHosts {
		replicas[i] = NewReplica(h, checkpointRoundTrip(master, dims), repCfg)
		repAddrs[i] = h.Addr
		replicas[i].Start(k)
	}
	obs := make([]float32, dims[0])
	for i := range obs {
		obs[i] = float32(i%5) * 0.2
	}
	perGen := genCfg
	perGen.Rate = genCfg.Rate / float64(len(genHosts))
	gens := make([]*Generator, len(genHosts))
	for i, h := range genHosts {
		gc := perGen
		gc.Seed = genCfg.Seed + int64(i)*7919
		gens[i] = NewGenerator(h, repAddrs, obs, gc)
		gens[i].Start(k)
	}
	return replicas, gens
}

// collect merges per-generator and per-replica stats into Metrics.
func collect(offered float64, replicas []*Replica, gens []*Generator) Metrics {
	m := Metrics{Offered: offered, Sketch: perfmodel.NewLatencySketch()}
	var first, last time.Duration
	for i, g := range gens {
		m.Sketch.Merge(g.Lat)
		m.Sent += g.Sent
		m.Done += g.Done
		if i == 0 || g.FirstSendAt < first {
			first = g.FirstSendAt
		}
		if g.LastDoneAt > last {
			last = g.LastDoneAt
		}
	}
	m.Lost = m.Sent - m.Done
	window := last - first
	if window > 0 {
		m.Achieved = float64(m.Done) / window.Seconds()
	}
	m.P50 = m.Sketch.Quantile(0.50)
	m.P90 = m.Sketch.Quantile(0.90)
	m.P99 = m.Sketch.Quantile(0.99)
	m.Max = m.Sketch.Max()
	m.Mean = m.Sketch.Mean()
	for _, r := range replicas {
		m.PerReplica = append(m.PerReplica, r.Served)
		if window > 0 {
			m.Occupancy += r.Occupancy(window)
		}
		if r.MaxBatchSeen > m.MaxBatch {
			m.MaxBatch = r.MaxBatchSeen
		}
	}
	if len(replicas) > 0 {
		m.Occupancy /= float64(len(replicas))
	}
	return m
}

// RunStar builds a fresh kernel and star fabric, runs one serving cell
// to completion (arrivals stop at Gen.Duration; the kernel drains every
// in-flight request), and returns its metrics. Deterministic for a
// given config.
func RunStar(cfg StarConfig) Metrics {
	cfg = cfg.withDefaults()
	k := sim.NewKernel()
	star := netsim.BuildStar(k, cfg.Replicas+cfg.Generators, cfg.Link)
	replicas, gens := deployFleet(k,
		star.Hosts[:cfg.Replicas], star.Hosts[cfg.Replicas:],
		cfg.Dims, cfg.Seed, cfg.Rep, cfg.Gen)
	k.Run()
	k.Shutdown()
	return collect(cfg.Gen.Rate, replicas, gens)
}

// SweepConfig drives RunUntilSaturation.
type SweepConfig struct {
	// Start is the first aggregate rate (req/s); each step multiplies
	// by Growth (default 50k × 2).
	Start, Growth float64
	// MaxSteps bounds the walk (default 8).
	MaxSteps int
	// P99SLO declares saturation when p99 exceeds it (default 400µs).
	P99SLO time.Duration
	// GoodputFloor declares saturation when achieved throughput falls
	// below this fraction of offered (default 0.85).
	GoodputFloor float64
}

func (c SweepConfig) withDefaults() SweepConfig {
	if c.Start <= 0 {
		c.Start = 50_000
	}
	if c.Growth <= 1 {
		c.Growth = 2
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 8
	}
	if c.P99SLO <= 0 {
		c.P99SLO = 400 * time.Microsecond
	}
	if c.GoodputFloor <= 0 {
		c.GoodputFloor = 0.85
	}
	return c
}

// SweepPoint is one measured rate on the latency-vs-load curve.
type SweepPoint struct {
	Rate float64
	M    Metrics
	// Saturated marks the point that tripped the sweep's stop rule;
	// Reason is "p99" or "goodput".
	Saturated bool
	Reason    string
}

// RunUntilSaturation walks the aggregate arrival rate geometrically,
// running one isolated cell per step, until p99 blows through the SLO
// or goodput collapses below the floor (schedsim's run_until_saturation
// shape). The saturated point is included in the returned curve.
func RunUntilSaturation(base StarConfig, sw SweepConfig) []SweepPoint {
	sw = sw.withDefaults()
	var curve []SweepPoint
	rate := sw.Start
	for step := 0; step < sw.MaxSteps; step++ {
		cfg := base
		cfg.Gen.Rate = rate
		m := RunStar(cfg)
		pt := SweepPoint{Rate: rate, M: m}
		if m.P99 > sw.P99SLO {
			pt.Saturated, pt.Reason = true, "p99"
		} else if m.Achieved < sw.GoodputFloor*m.Offered {
			pt.Saturated, pt.Reason = true, "goodput"
		}
		curve = append(curve, pt)
		if pt.Saturated {
			break
		}
		rate *= sw.Growth
	}
	return curve
}
