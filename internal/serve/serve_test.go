package serve

import (
	"sort"
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/nn"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

func smallStar() StarConfig {
	return StarConfig{
		Replicas: 2, Generators: 2, Seed: 1,
		Gen: GenConfig{Rate: 200_000, Arrival: ArrivalPoisson,
			Duration: 2 * time.Millisecond, Select: SelectRoundRobin},
	}
}

// TestRunStarDeterministic pins that a cell replays bit-identically:
// same config, same kernel schedule, same percentiles and counts.
func TestRunStarDeterministic(t *testing.T) {
	a, b := RunStar(smallStar()), RunStar(smallStar())
	if a.Sent != b.Sent || a.Done != b.Done || a.P50 != b.P50 || a.P99 != b.P99 ||
		a.Max != b.Max || a.Occupancy != b.Occupancy {
		t.Fatalf("nondeterministic cells:\n%+v\n%+v", a, b)
	}
	for i := range a.PerReplica {
		if a.PerReplica[i] != b.PerReplica[i] {
			t.Fatalf("replica %d served %d vs %d", i, a.PerReplica[i], b.PerReplica[i])
		}
	}
}

// TestStarCompletes pins the basic contract: every request emitted in
// the window is answered once the kernel drains, and latency is at
// least the physical floor (two switch hops + the batch service).
func TestStarCompletes(t *testing.T) {
	m := RunStar(smallStar())
	if m.Sent == 0 {
		t.Fatal("generator sent nothing")
	}
	if m.Lost != 0 || m.Done != m.Sent {
		t.Fatalf("lost %d of %d requests on an unpoliced star", m.Lost, m.Sent)
	}
	if m.P50 < 5*time.Microsecond {
		t.Fatalf("p50 %v below the physical round-trip floor", m.P50)
	}
	if m.MaxBatch < 1 {
		t.Fatal("no batch ever closed")
	}
	var served uint64
	for _, s := range m.PerReplica {
		served += s
	}
	if served != m.Done {
		t.Fatalf("replicas served %d but generators matched %d", served, m.Done)
	}
}

// TestSketchMatchesExactOracle runs a cell with exact recording on and
// differentially checks the streamed sketch against the sorted oracle.
func TestSketchMatchesExactOracle(t *testing.T) {
	cfg := smallStar().withDefaults()
	k := sim.NewKernel()
	star := netsim.BuildStar(k, cfg.Replicas+cfg.Generators, cfg.Link)
	replicas, gens := deployFleet(k,
		star.Hosts[:cfg.Replicas], star.Hosts[cfg.Replicas:],
		cfg.Dims, cfg.Seed, cfg.Rep, cfg.Gen)
	for _, g := range gens {
		g.RecordExact = true
	}
	k.Run()
	k.Shutdown()
	m := collect(cfg.Gen.Rate, replicas, gens)

	var exact []time.Duration
	for _, g := range gens {
		exact = append(exact, g.Exact...)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	if uint64(len(exact)) != m.Done {
		t.Fatalf("oracle holds %d samples, sketch %d", len(exact), m.Done)
	}
	for _, tc := range []struct {
		q   float64
		got time.Duration
	}{{0.50, m.P50}, {0.90, m.P90}, {0.99, m.P99}} {
		k := int(float64(len(exact))*tc.q + 0.9999999)
		if k < 1 {
			k = 1
		}
		want := exact[k-1]
		diff := float64(tc.got - want)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.02*float64(want) {
			t.Fatalf("q=%.2f sketch %v vs oracle %v (>2%%)", tc.q, tc.got, want)
		}
	}
	if m.Max != exact[len(exact)-1] {
		t.Fatalf("sketch max %v vs oracle %v", m.Max, exact[len(exact)-1])
	}
}

// TestSelectionPolicies pins each balancer's distribution shape.
func TestSelectionPolicies(t *testing.T) {
	base := smallStar()
	base.Replicas = 4
	base.Generators = 1
	base.Gen.Arrival = ArrivalDeterministic

	for _, tc := range []struct {
		sel SelectPolicy
		// maxImbalance bounds max/min served per replica.
		maxImbalance float64
	}{
		{SelectRoundRobin, 1.02},
		{SelectLeastOutstanding, 1.5},
		{SelectRandom, 3.0},
	} {
		cfg := base
		cfg.Gen.Select = tc.sel
		m := RunStar(cfg)
		if m.Lost != 0 {
			t.Fatalf("%v: lost %d", tc.sel, m.Lost)
		}
		minS, maxS := m.PerReplica[0], m.PerReplica[0]
		for _, s := range m.PerReplica {
			if s < minS {
				minS = s
			}
			if s > maxS {
				maxS = s
			}
		}
		if minS == 0 {
			t.Fatalf("%v: a replica served nothing (%v)", tc.sel, m.PerReplica)
		}
		if r := float64(maxS) / float64(minS); r > tc.maxImbalance {
			t.Fatalf("%v: imbalance %.2f > %.2f (%v)", tc.sel, r, tc.maxImbalance, m.PerReplica)
		}
	}
}

// TestAdaptiveBatching pins the window-vs-size control: sparse arrivals
// close single-request batches after the window; saturating arrivals
// fill MaxBatch.
func TestAdaptiveBatching(t *testing.T) {
	sparse := smallStar()
	sparse.Replicas, sparse.Generators = 1, 1
	sparse.Gen.Rate = 5_000 // 200µs apart ≫ 20µs window
	sparse.Gen.Arrival = ArrivalDeterministic
	m := RunStar(sparse)
	if m.MaxBatch != 1 {
		t.Fatalf("sparse arrivals built batches of %d, want 1", m.MaxBatch)
	}
	// Low load pays the full batch window: latency sits just above it.
	if m.P50 < 20*time.Microsecond {
		t.Fatalf("sparse p50 %v below the batch window", m.P50)
	}

	dense := sparse
	dense.Gen.Rate = 2_000_000
	dense.Gen.Duration = 500 * time.Microsecond
	md := RunStar(dense)
	if md.MaxBatch != 8 {
		t.Fatalf("saturating arrivals peaked at batch %d, want MaxBatch=8", md.MaxBatch)
	}
}

// TestReplicaServesCheckpointedPolicy drives one request by hand and
// checks the response is exactly the master policy's forward pass —
// the checkpoint round trip and batched forward serve the same
// function the trainer saved.
func TestReplicaServesCheckpointedPolicy(t *testing.T) {
	k := sim.NewKernel()
	star := netsim.BuildStar(k, 2, netsim.TenGbE())
	dims := []int{4, 8, 2}
	master := nn.NewMLP(dims, nn.ActTanh, nn.ActNone, 42)
	rep := NewReplica(star.Hosts[0], checkpointRoundTrip(master, dims), ReplicaConfig{})
	rep.Start(k)

	obs := []float32{0.5, -1, 2, 0}
	want := append([]float32(nil), master.Forward(obs)...)
	client := star.Hosts[1]
	var got []float32
	k.Spawn("client", func(p *sim.Proc) {
		client.Send(protocol.NewServeRequest(client.Addr, star.Hosts[0].Addr, 0, 7, obs))
		resp := client.Recv(p)
		if !resp.IsServeResp() || resp.ReqID() != 7 {
			t.Errorf("bad response: ToS=%#x id=%d", resp.ToS, resp.ReqID())
		}
		got = append([]float32(nil), resp.Data...)
		resp.Release()
	})
	k.Run()
	k.Shutdown()
	if len(got) != len(want) {
		t.Fatalf("response dim %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %v, want %v (checkpoint or batch path diverged)", i, got[i], want[i])
		}
	}
	if rep.Served != 1 || rep.Batches != 1 {
		t.Fatalf("replica stats served=%d batches=%d", rep.Served, rep.Batches)
	}
}

// TestReplicaRejectsMalformed: wrong observation length and stray
// training frames are dropped, counted, and never answered.
func TestReplicaRejectsMalformed(t *testing.T) {
	k := sim.NewKernel()
	star := netsim.BuildStar(k, 2, netsim.TenGbE())
	dims := []int{4, 8, 2}
	rep := NewReplica(star.Hosts[0], nn.NewMLP(dims, nn.ActTanh, nn.ActNone, 1), ReplicaConfig{})
	rep.Start(k)
	client := star.Hosts[1]
	var responses int
	k.Spawn("client", func(p *sim.Proc) {
		client.Send(protocol.NewServeRequest(client.Addr, star.Hosts[0].Addr, 0, 1, []float32{1, 2})) // short obs
		client.Send(protocol.NewData(client.Addr, star.Hosts[0].Addr, 0, []float32{1}))               // training frame
		for {
			pkt, ok := client.RecvTimeout(p, time.Millisecond)
			if !ok {
				return
			}
			responses++
			pkt.Release()
		}
	})
	k.Run()
	k.Shutdown()
	if responses != 0 {
		t.Fatalf("malformed requests drew %d responses", responses)
	}
	if rep.Rejected != 2 || rep.Served != 0 {
		t.Fatalf("rejected=%d served=%d, want 2/0", rep.Rejected, rep.Served)
	}
}

// TestRunUntilSaturation pins the sweep shape: pre-saturation points
// achieve their offered load, the walk ends on a tripped rule, and the
// saturated point really violates it.
func TestRunUntilSaturation(t *testing.T) {
	base := StarConfig{Replicas: 2, Generators: 2, Seed: 3,
		Gen: GenConfig{Duration: 2 * time.Millisecond, Arrival: ArrivalPoisson}}
	sw := SweepConfig{Start: 100_000, Growth: 4, MaxSteps: 6,
		P99SLO: 300 * time.Microsecond, GoodputFloor: 0.85}
	curve := RunUntilSaturation(base, sw)
	if len(curve) < 2 {
		t.Fatalf("sweep produced %d points", len(curve))
	}
	last := curve[len(curve)-1]
	if !last.Saturated {
		t.Fatalf("sweep ended unsaturated after %d points (p99 %v)", len(curve), last.M.P99)
	}
	switch last.Reason {
	case "p99":
		if last.M.P99 <= sw.P99SLO {
			t.Fatalf("saturated on p99 but %v <= SLO %v", last.M.P99, sw.P99SLO)
		}
	case "goodput":
		if last.M.Achieved >= sw.GoodputFloor*last.M.Offered {
			t.Fatalf("saturated on goodput but %.0f >= floor", last.M.Achieved)
		}
	default:
		t.Fatalf("unknown saturation reason %q", last.Reason)
	}
	for _, pt := range curve[:len(curve)-1] {
		if pt.M.Achieved < 0.9*pt.M.Offered {
			t.Fatalf("pre-saturation point %.0f achieved only %.0f", pt.Rate, pt.M.Achieved)
		}
		if pt.M.Lost != 0 {
			t.Fatalf("pre-saturation point lost %d requests", pt.M.Lost)
		}
	}
}

// TestCoResidencyIsolation is the always-on reduced gate of the
// headline claim (the full sweep is CI-gated against BENCH_serve.json):
// FIFO co-residency inflates inference p99 well past the unimpeded
// baseline, weighted-fair + policing pulls it back inside a fixed
// factor, no inference frame is ever policed or lost, and the policer
// actually worked (training frames refused, then recovered — training
// still completes).
func TestCoResidencyIsolation(t *testing.T) {
	r := RunCoResidency(CoResConfig{Seed: 1})
	off, fifo, fair := r.Off, r.FIFO, r.Fair
	for _, c := range []CoResCell{off, fifo, fair} {
		if c.Serve.Sent == 0 || c.Serve.Lost != 0 {
			t.Fatalf("%s: sent=%d lost=%d", c.Label, c.Serve.Sent, c.Serve.Lost)
		}
		if c.ServePoliced != 0 {
			t.Fatalf("%s: %d compliant inference frames policed", c.Label, c.ServePoliced)
		}
	}
	if fifo.TrainRound == 0 || fair.TrainRound == 0 {
		t.Fatal("training job produced no rounds")
	}
	if fifo.Serve.P99 < 2*off.Serve.P99 {
		t.Fatalf("FIFO co-residency shows no contention: p99 %v vs unimpeded %v",
			fifo.Serve.P99, off.Serve.P99)
	}
	if fair.Serve.P99 > 5*off.Serve.P99/2 {
		t.Fatalf("isolation failed: fair p99 %v > 2.5x unimpeded %v",
			fair.Serve.P99, off.Serve.P99)
	}
	if fair.Serve.P99 >= fifo.Serve.P99 {
		t.Fatalf("policing did not improve p99: fair %v vs fifo %v",
			fair.Serve.P99, fifo.Serve.P99)
	}
	if fair.TrainPoliced == 0 {
		t.Fatal("fair cell policed no training frames — the isolation mechanism never engaged")
	}
}
