// Package serve is the inference-fleet subsystem: trained nn policies
// replicated across serving hosts behind the simulated switch fabric,
// answering observation packets with batched forward passes while
// open-loop generators drive them with Poisson (or deterministic)
// arrivals — the production half of the RL story the training fabric
// feeds.
//
// The pieces:
//
//   - Replica (replica.go): a DES proc that loads a trained MLP
//     checkpoint and serves it through an nn.BatchForwarder. Batching
//     is adaptive: the first queued request opens a batch window, and
//     the batch closes at the earlier of the window expiring or
//     MaxBatch requests staged — low load pays at most the window in
//     added latency, high load amortizes the per-batch cost over full
//     batches.
//   - Generator (generator.go): an open-loop client. Arrivals are
//     seeded and independent of service progress (requests keep coming
//     when the fleet falls behind — the saturation signal), spread over
//     the replica set by a selection policy (round-robin / random /
//     least-outstanding). Latencies stream into a
//     perfmodel.LatencySketch; generators merge into fleet percentiles.
//   - RunStar / RunUntilSaturation (scenario.go): one measured cell on
//     a star fabric, and the arrival-rate sweep that walks offered load
//     by a growth factor until p99 blows through the SLO or goodput
//     collapses.
//   - RunCoResidency (coresidency.go): the headline experiment —
//     inference tenants and a gradient-training job sharing one
//     multi-tenant switch fabric, FIFO vs weighted-fair + egress
//     policing.
//
// Serve traffic rides protocol.ToSServeReq/Resp frames (request ID in
// the Seg slot, observation/output floats in Data) tagged with a serve
// JobID, so switches forward it as ordinary routed traffic while the
// multi-tenant machinery meters and polices it like any tenant.
package serve

import "fmt"

// SelectPolicy chooses which replica a generator sends each request to.
type SelectPolicy int

const (
	// SelectRoundRobin cycles the replica list.
	SelectRoundRobin SelectPolicy = iota
	// SelectRandom picks uniformly (seeded).
	SelectRandom
	// SelectLeastOutstanding picks the replica with the fewest
	// unanswered requests from this generator (ties to the lowest
	// index), the classic load-aware client-side balancer.
	SelectLeastOutstanding
)

func (s SelectPolicy) String() string {
	switch s {
	case SelectRoundRobin:
		return "round-robin"
	case SelectRandom:
		return "random"
	case SelectLeastOutstanding:
		return "least-outstanding"
	}
	return fmt.Sprintf("SelectPolicy(%d)", int(s))
}

// Arrival selects the generator's interarrival process.
type Arrival int

const (
	// ArrivalPoisson draws exponential interarrivals (open-loop M/·).
	ArrivalPoisson Arrival = iota
	// ArrivalDeterministic spaces requests exactly 1/rate apart.
	ArrivalDeterministic
)

func (a Arrival) String() string {
	if a == ArrivalDeterministic {
		return "deterministic"
	}
	return "poisson"
}
