package serve

import (
	"fmt"
	"math/rand"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// GenConfig parameterizes one open-loop generator.
type GenConfig struct {
	// Rate is this generator's offered load in requests/second.
	Rate float64
	// Arrival selects Poisson or deterministic interarrivals.
	Arrival Arrival
	// Duration is the emission window; arrivals stop after it, but the
	// simulation keeps draining in-flight requests.
	Duration time.Duration
	// Seed drives the interarrival and random-selection stream.
	Seed int64
	// Select is the replica-selection policy.
	Select SelectPolicy
	// Job tags requests for multi-tenant metering and policing.
	Job protocol.JobID
}

// Generator emits observation requests at the configured open-loop rate
// and matches responses by request ID, streaming latencies into a
// fixed-memory sketch.
type Generator struct {
	Host     *netsim.Host
	replicas []protocol.Addr
	cfg      GenConfig
	obs      []float32

	rng         *rand.Rand
	rr          int
	nextID      uint64
	outstanding []int
	inflight    map[uint64]sent

	// Lat holds this generator's response latencies.
	Lat *perfmodel.LatencySketch
	// Sent / Done count requests emitted and responses matched; Stray
	// counts frames that matched no in-flight request.
	Sent, Done, Stray uint64
	// FirstSendAt / LastDoneAt bound the measured interval (virtual
	// time), the denominator for achieved throughput.
	FirstSendAt, LastDoneAt time.Duration

	// RecordExact, when set before Start, keeps every latency sample in
	// Exact — the tests' oracle; production sweeps leave it off and pay
	// only the sketch's fixed memory.
	RecordExact bool
	Exact       []time.Duration
}

type sent struct {
	at  sim.Time
	rep int
}

// NewGenerator builds a generator on host driving the given replicas
// with copies of the observation template obs.
func NewGenerator(host *netsim.Host, replicas []protocol.Addr, obs []float32, cfg GenConfig) *Generator {
	if len(replicas) == 0 {
		panic("serve: generator needs at least one replica")
	}
	if cfg.Rate <= 0 {
		panic("serve: generator rate must be positive")
	}
	return &Generator{
		Host:        host,
		replicas:    append([]protocol.Addr(nil), replicas...),
		cfg:         cfg,
		obs:         append([]float32(nil), obs...),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		outstanding: make([]int, len(replicas)),
		inflight:    make(map[uint64]sent),
		Lat:         perfmodel.NewLatencySketch(),
	}
}

// Start spawns the sender and receiver procs.
func (g *Generator) Start(k *sim.Kernel) {
	k.Spawn(fmt.Sprintf("gen/%s/send", g.Host.Addr), g.send)
	k.Spawn(fmt.Sprintf("gen/%s/recv", g.Host.Addr), g.recv)
}

func (g *Generator) interarrival() time.Duration {
	sec := 1 / g.cfg.Rate
	if g.cfg.Arrival == ArrivalPoisson {
		sec = g.rng.ExpFloat64() / g.cfg.Rate
	}
	return time.Duration(sec * float64(time.Second))
}

func (g *Generator) pick() int {
	switch g.cfg.Select {
	case SelectRandom:
		return g.rng.Intn(len(g.replicas))
	case SelectLeastOutstanding:
		best := 0
		for i, o := range g.outstanding {
			if o < g.outstanding[best] {
				best = i
			}
		}
		return best
	default: // round-robin
		i := g.rr
		g.rr = (g.rr + 1) % len(g.replicas)
		return i
	}
}

func (g *Generator) send(p *sim.Proc) {
	end := p.Now() + g.cfg.Duration
	for {
		p.Sleep(g.interarrival())
		if p.Now() >= end {
			return
		}
		rep := g.pick()
		id := g.nextID
		g.nextID++
		if g.Sent == 0 {
			g.FirstSendAt = p.Now()
		}
		g.inflight[id] = sent{at: p.Now(), rep: rep}
		g.outstanding[rep]++
		g.Host.Send(protocol.NewServeRequest(g.Host.Addr, g.replicas[rep],
			g.cfg.Job, id, g.obs))
		g.Sent++
	}
}

func (g *Generator) recv(p *sim.Proc) {
	for {
		pkt := g.Host.Recv(p)
		if !pkt.IsServeResp() {
			g.Stray++
			pkt.Release()
			continue
		}
		id := pkt.ReqID()
		pkt.Release()
		rec, ok := g.inflight[id]
		if !ok {
			g.Stray++
			continue
		}
		delete(g.inflight, id)
		g.outstanding[rec.rep]--
		lat := p.Now() - rec.at
		g.Lat.Add(lat)
		if g.RecordExact {
			g.Exact = append(g.Exact, lat)
		}
		g.Done++
		g.LastDoneAt = p.Now()
	}
}

// Lost returns requests that never got a response (e.g. policed frames)
// once the kernel has drained.
func (g *Generator) Lost() uint64 { return g.Sent - g.Done }
