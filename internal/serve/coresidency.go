package serve

import (
	"fmt"
	"time"

	"iswitch/internal/multijob"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// Co-residency: inference tenants and a gradient-training job sharing
// one multi-tenant switch fabric. The training job's rack straddles the
// replicas' rack, so its per-round gradient bursts (partials up,
// broadcasts down) and the inference request/response path contend for
// the same oversubscribed ToR↔root link. Three cells on identical
// topology and seeds:
//
//	off  — inference only: the unimpeded latency baseline.
//	fifo — plus the training job under FIFO admission, no shaping: each
//	       training round parks a full model's worth of back-to-back
//	       frames in the contended port FIFOs, and inference requests
//	       queue behind them (head-of-line p99 blowup).
//	fair — same tenants under WeightedFair admission with per-job
//	       egress policing on the contended link, a deliberately small
//	       burst: the port backlog a training round can build is capped
//	       at the bucket burst, so inference head-of-line delay is
//	       bounded; the training frames the policer refuses are
//	       recovered by the reliability layer (Help → shadow re-serve /
//	       re-gather), which shows up as train-round inflation — the
//	       measured price of isolation. Compliant inference traffic
//	       stays far inside its own share and must never be policed.
type CoResConfig struct {
	// Dims is the served policy; Rate the aggregate offered load
	// (req/s) over the generators; Duration the emission window.
	Dims     []int
	Rate     float64
	Duration time.Duration
	Seed     int64
	Rep      ReplicaConfig

	// TrainFloats / TrainIters size the co-resident gradient job.
	TrainFloats int
	TrainIters  int
	// UplinkBps oversubscribes the ToR↔root links (edge stays 10GbE).
	UplinkBps float64
	// TrainShare / TrainBurstBytes shape the training tenant on the
	// contended link in the fair cell; ServeShare / ServeBurstBytes
	// shape the inference tenant (generous: compliance means zero
	// policed frames).
	TrainShare, ServeShare           float64
	TrainBurstBytes, ServeBurstBytes float64
}

// ServeJob is the JobID tagging inference traffic in the co-residency
// cells (the training job is admitted first and gets JobID 1).
const ServeJob = protocol.JobID(1000)

func (c CoResConfig) withDefaults() CoResConfig {
	if len(c.Dims) == 0 {
		c.Dims = []int{16, 32, 32, 4}
	}
	if c.Rate <= 0 {
		c.Rate = 150_000
	}
	if c.Duration <= 0 {
		c.Duration = 4 * time.Millisecond
	}
	if c.TrainFloats <= 0 {
		c.TrainFloats = 20_000 // 80 KB: wire-bound rounds
	}
	if c.TrainIters <= 0 {
		c.TrainIters = 10
	}
	if c.UplinkBps <= 0 {
		c.UplinkBps = 2.5e9
	}
	if c.TrainShare <= 0 {
		c.TrainShare = 0.9
	}
	if c.ServeShare <= 0 {
		c.ServeShare = 0.5
	}
	if c.TrainBurstBytes <= 0 {
		c.TrainBurstBytes = 16 << 10
	}
	if c.ServeBurstBytes <= 0 {
		c.ServeBurstBytes = 16 << 10
	}
	return c
}

// coResWorkload is the wire-bound training tenant (small local compute,
// 80 KB gradients by default: uplink serialization dominates the
// round). ModelBytes is set so perfmodel.ExpectedSyncRound — and the
// recovery timeout derived from it — sees the true gradient size.
func coResWorkload(floats int) perfmodel.Workload {
	return perfmodel.Workload{
		Name:         "wire",
		ModelBytes:   4 * floats,
		LocalCompute: 100 * time.Microsecond,
		WeightUpdate: 20 * time.Microsecond,
	}
}

// CoResCell is one cell's outcome.
type CoResCell struct {
	Label string
	Serve Metrics
	// TrainRound is the training job's mean round time (0 in off).
	TrainRound time.Duration
	// TrainPoliced / ServePoliced count frames the contended link's
	// egress policers refused, by tenant.
	TrainPoliced, ServePoliced uint64
}

// CoResResult bundles the three cells.
type CoResResult struct {
	Cfg             CoResConfig
	Off, FIFO, Fair CoResCell
}

// uplinkBetween finds the transmit port from ToR switch index tor
// toward the root (multijob fabric switch order: root first).
func uplinkBetween(f *multijob.Fabric, tor, root int) *netsim.Port {
	rootPorts := make(map[*netsim.Port]bool)
	for _, p := range f.Switches[root].Switch().Ports() {
		rootPorts[p] = true
	}
	for _, p := range f.Switches[tor].Switch().Ports() {
		if rootPorts[p.Peer()] {
			return p
		}
	}
	panic("serve: fabric has no ToR→root uplink")
}

// runCoResCell runs one cell. withTrain adds the gradient job; policed
// additionally selects WeightedFair admission and arms the contended
// link's per-job egress policers.
func runCoResCell(cfg CoResConfig, label string, withTrain, policed bool) CoResCell {
	k := sim.NewKernel()
	fabCfg := multijob.FabricConfig{}
	if policed {
		fabCfg.Admission = multijob.WeightedFair(0)
	}
	uplink := netsim.TenGbE()
	uplink.BitsPerSecond = cfg.UplinkBps
	// 3 racks of 4: training workers on hosts 0–5 (racks 0 and 1),
	// replicas on 6–7 (rack 1, beside workers 4–5), generators on 8–9
	// (rack 2) — requests and responses cross the same ToR1↔root link
	// as rack 1's gradient partials and broadcasts.
	f := multijob.NewTreeFabric(k, 12, 4, netsim.TenGbE(), uplink, fabCfg)

	genCfg := GenConfig{Rate: cfg.Rate, Arrival: ArrivalPoisson,
		Duration: cfg.Duration, Seed: cfg.Seed + 101,
		Select: SelectLeastOutstanding, Job: ServeJob}
	repCfg := cfg.Rep
	repCfg.Job = ServeJob
	replicas, gens := deployFleet(k, f.Hosts[6:8], f.Hosts[8:10],
		cfg.Dims, cfg.Seed, repCfg, genCfg)

	wl := coResWorkload(cfg.TrainFloats)
	const trainJob = protocol.JobID(1)
	var up *netsim.Port
	if policed {
		// Switches order is [root, tor0, tor1, tor2]; the contended
		// link is ToR1↔root, both directions (partials + responses up,
		// broadcasts + requests down).
		root, tor1 := 0, 2
		up = uplinkBetween(f, tor1, root)
		for _, dir := range []struct {
			sw   int
			port *netsim.Port
		}{{tor1, up}, {root, up.Peer()}} {
			f.Switches[dir.sw].LimitJobEgressOn(dir.port, trainJob,
				cfg.TrainShare, cfg.TrainBurstBytes)
			f.Switches[dir.sw].LimitJobEgressOn(dir.port, ServeJob,
				cfg.ServeShare, cfg.ServeBurstBytes)
		}
	}

	cell := CoResCell{Label: label}
	if withTrain {
		spec := multijob.JobSpec{
			Name: "train", Workload: wl, Workers: 6,
			Mode: multijob.ModeSync, Iterations: cfg.TrainIters,
			ModelFloats: cfg.TrainFloats, Weight: 1,
			// Policed drops ride the loss-recovery path; the timeout
			// also arms switch dedup so retransmissions stay idempotent.
			RecoveryTimeout: 2 * perfmodel.ExpectedSyncRound(wl, cfg.UplinkBps),
		}
		res, err := multijob.Run(f, []multijob.JobSpec{spec})
		if err != nil {
			panic(fmt.Sprintf("serve: co-residency cell %s: %v", label, err))
		}
		cell.TrainRound = res[0].MeanRound
	} else {
		k.Run()
		k.Shutdown()
	}
	cell.Serve = collect(cfg.Rate, replicas, gens)
	if policed {
		for _, pp := range []*netsim.Port{up, up.Peer()} {
			for _, is := range f.Switches {
				if sh := is.ShaperOn(pp); sh != nil {
					cell.TrainPoliced += sh.PolicedByJob[uint16(trainJob)]
					cell.ServePoliced += sh.PolicedByJob[uint16(ServeJob)]
				}
			}
		}
	}
	return cell
}

// RunCoResidency runs the three co-residency cells on identical
// topology and seeds. Deterministic for a given config.
func RunCoResidency(cfg CoResConfig) CoResResult {
	cfg = cfg.withDefaults()
	return CoResResult{
		Cfg:  cfg,
		Off:  runCoResCell(cfg, "off", false, false),
		FIFO: runCoResCell(cfg, "fifo", true, false),
		Fair: runCoResCell(cfg, "fair", true, true),
	}
}
