package transport

import (
	"math/rand"
	"sync"
	"testing"

	"iswitch/internal/protocol"
)

func startSwitch(t *testing.T) *Switch {
	t.Helper()
	sw, err := ListenSwitch("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = sw.Serve() }()
	t.Cleanup(func() { sw.Close() })
	return sw
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	pkts := []*protocol.Packet{
		{ToS: protocol.ToSControl, Action: protocol.ActionJoin, Value: protocol.JoinValue(100)},
		{ToS: protocol.ToSData, Seg: 3, Data: []float32{1.5, -2.5}},
	}
	for _, p := range pkts {
		buf, err := Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		q, err := Decode(protocol.Addr{}, protocol.Addr{}, buf)
		if err != nil {
			t.Fatal(err)
		}
		if q.ToS != p.ToS {
			t.Fatalf("ToS %#02x vs %#02x", q.ToS, p.ToS)
		}
		if p.IsData() && (q.Seg != p.Seg || q.Data[1] != p.Data[1]) {
			t.Fatalf("data mismatch %+v", q)
		}
	}
	if _, err := Decode(protocol.Addr{}, protocol.Addr{}, nil); err == nil {
		t.Fatal("empty datagram accepted")
	}
}

func TestJoinAndMembership(t *testing.T) {
	sw := startSwitch(t)
	const n = 50
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(sw.Addr(), n)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	if got := sw.Members(); got != 3 {
		t.Fatalf("members = %d", got)
	}
	// Re-join is idempotent.
	if err := clients[0].Join(); err != nil {
		t.Fatal(err)
	}
	if got := sw.Members(); got != 3 {
		t.Fatalf("members after re-join = %d", got)
	}
}

func TestAggregateOverRealUDP(t *testing.T) {
	sw := startSwitch(t)
	const workers = 3
	const n = protocol.FloatsPerPacket*2 + 17 // multi-packet with tail

	grads := make([][]float32, workers)
	rng := rand.New(rand.NewSource(1))
	want := make([]float32, n)
	for w := range grads {
		grads[w] = make([]float32, n)
		for i := range grads[w] {
			grads[w][i] = float32(rng.Intn(100))
			want[i] += grads[w][i]
		}
	}

	clients := make([]*Client, workers)
	for i := range clients {
		c, err := Dial(sw.Addr(), n)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}

	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		results := make([][]float32, workers)
		errs := make([]error, workers)
		for i := range clients {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = clients[i].Aggregate(grads[i])
			}(i)
		}
		wg.Wait()
		for i := range clients {
			if errs[i] != nil {
				t.Fatalf("round %d worker %d: %v", round, i, errs[i])
			}
			for j := range want {
				if results[i][j] != want[j] {
					t.Fatalf("round %d worker %d elem %d: %v want %v",
						round, i, j, results[i][j], want[j])
				}
			}
		}
	}
	dataIn, broadcasts, _ := sw.Counters()
	if broadcasts == 0 || dataIn == 0 {
		t.Fatalf("switch stats empty: dataIn=%d broadcasts=%d", dataIn, broadcasts)
	}
}

func TestSetHOverUDP(t *testing.T) {
	sw := startSwitch(t)
	const n = 8
	a, err := Dial(sw.Addr(), n)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Join(); err != nil {
		t.Fatal(err)
	}
	// With H pinned to 1, a single worker's contribution aggregates
	// immediately.
	if err := a.SetH(1); err != nil {
		t.Fatal(err)
	}
	grad := []float32{1, 2, 3, 4, 5, 6, 7, 8}
	sum, err := a.Aggregate(grad)
	if err != nil {
		t.Fatal(err)
	}
	for i := range grad {
		if sum[i] != grad[i] {
			t.Fatalf("H=1 aggregate = %v", sum)
		}
	}
}

func TestAggregateWrongLengthRejected(t *testing.T) {
	sw := startSwitch(t)
	c, err := Dial(sw.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Aggregate(make([]float32, 5)); err == nil {
		t.Fatal("wrong-length gradient accepted")
	}
}

func TestRealTrainingOverUDP(t *testing.T) {
	// End-to-end: the switch emulator aggregates genuine float math and
	// replicas stay in lockstep over real sockets.
	sw := startSwitch(t)
	const workers = 2
	const n = 200
	clients := make([]*Client, workers)
	params := make([][]float32, workers)
	for i := range clients {
		c, err := Dial(sw.Addr(), n)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
		params[i] = make([]float32, n)
	}
	for iter := 0; iter < 5; iter++ {
		var wg sync.WaitGroup
		for i := range clients {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				grad := make([]float32, n)
				for j := range grad {
					grad[j] = float32((i + 1) * (iter + 1) % 7)
				}
				sum, err := clients[i].Aggregate(grad)
				if err != nil {
					t.Errorf("worker %d: %v", i, err)
					return
				}
				for j := range params[i] {
					params[i][j] -= 0.1 * sum[j] / workers
				}
			}(i)
		}
		wg.Wait()
	}
	for j := range params[0] {
		if params[0][j] != params[1][j] {
			t.Fatalf("replicas diverged at %d: %v vs %v", j, params[0][j], params[1][j])
		}
	}
}

// TestAggregateMultiReader runs the same multi-round aggregation through
// ServeN's concurrent socket readers: results must stay exact and the
// switch must terminate cleanly on Close.
func TestAggregateMultiReader(t *testing.T) {
	sw, err := ListenSwitch("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- sw.ServeN(4) }()
	t.Cleanup(func() { sw.Close(); <-served })

	const workers = 3
	const n = protocol.FloatsPerPacket + 9
	grads := make([][]float32, workers)
	want := make([]float32, n)
	for w := range grads {
		grads[w] = make([]float32, n)
		for i := range grads[w] {
			grads[w][i] = float32((w+1)*(i%7) + 1)
			want[i] += grads[w][i]
		}
	}
	clients := make([]*Client, workers)
	for i := range clients {
		c, err := Dial(sw.Addr(), n)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Join(); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		results := make([][]float32, workers)
		errs := make([]error, workers)
		for i := range clients {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = clients[i].Aggregate(grads[i])
			}(i)
		}
		wg.Wait()
		for i := range clients {
			if errs[i] != nil {
				t.Fatalf("round %d worker %d: %v", round, i, errs[i])
			}
			for j := range want {
				if results[i][j] != want[j] {
					t.Fatalf("round %d worker %d elem %d: %v want %v",
						round, i, j, results[i][j], want[j])
				}
			}
		}
	}
}
