// Package transport runs the iSwitch protocol over real UDP sockets.
//
// The discrete-event simulation (internal/netsim, internal/switchnet)
// produces the paper's timing results; this package proves the protocol
// is wire-real: cmd/iswitchd is a software emulation of the in-switch
// aggregator that sums genuine UDP datagrams from worker processes,
// exactly as the NetFPGA data plane does in hardware.
//
// Because a portable UDP socket cannot set the IP ToS byte per packet,
// the ToS tag travels as the first byte of the UDP payload; the rest of
// the payload is the standard iSwitch framing (protocol.MarshalPayload).
package transport

import (
	"fmt"
	"net"
	"sync"
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/protocol"
)

// maxDatagram bounds a received datagram: ToS byte + Seg + full payload.
const maxDatagram = 1 + protocol.SegFieldLen + 4*protocol.FloatsPerPacket + 64

// Encode frames a packet for UDP transport: [ToS][payload].
func Encode(p *protocol.Packet) ([]byte, error) {
	return appendEncoded(nil, p)
}

// appendEncoded appends the UDP framing of p to dst, so per-packet send
// paths can reuse one scratch buffer instead of allocating.
func appendEncoded(dst []byte, p *protocol.Packet) ([]byte, error) {
	dst = append(dst, p.ToS)
	return protocol.AppendPayload(dst, p)
}

// Decode parses a UDP datagram produced by Encode. src/dst describe the
// UDP endpoints (the kernel owns the real headers).
func Decode(src, dst protocol.Addr, datagram []byte) (*protocol.Packet, error) {
	if len(datagram) < 1 {
		return nil, fmt.Errorf("transport: empty datagram")
	}
	return protocol.UnmarshalPayload(src, dst, datagram[0], datagram[1:])
}

// udpToAddr converts a net.UDPAddr into the protocol's 4-byte address.
func udpToAddr(a *net.UDPAddr) protocol.Addr {
	var out protocol.Addr
	if ip4 := a.IP.To4(); ip4 != nil {
		copy(out.IP[:], ip4)
	}
	out.Port = uint16(a.Port)
	return out
}

// Switch is the software in-switch aggregator: a UDP server that runs
// the same control-plane actions and data-plane aggregation as the
// simulated iSwitch.
type Switch struct {
	conn *net.UDPConn
	acc  *accel.Accelerator

	mu      sync.Mutex
	members map[string]*net.UDPAddr // key: addr.String()
	order   []string                // join order for deterministic broadcast
	autoH   bool
	encBuf  []byte // sendLocked scratch, guarded by mu

	// Stats (read under mu).
	DataIn, Broadcasts, ControlIn uint64
}

// switchRecvBuf asks the kernel for a deep socket receive queue: a full
// fan-in of gradient bursts arrives back-to-back, and the default buffer
// (often 208 KiB) drops the tail of even one 4 MB model's worth.
const switchRecvBuf = 4 << 20

// ListenSwitch starts an aggregator on addr (e.g. "127.0.0.1:0").
func ListenSwitch(addr string) (*Switch, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	// Best-effort: the OS clamps to its rmem limit; the clamped value
	// still beats the default.
	_ = conn.SetReadBuffer(switchRecvBuf)
	cfg := accel.DefaultConfig()
	acc := accel.New(cfg)
	// UDP workers retransmit on loss; dedup keeps that idempotent.
	acc.SetDedup(true)
	return &Switch{
		conn:    conn,
		acc:     acc,
		members: make(map[string]*net.UDPAddr),
		autoH:   true,
	}, nil
}

// Addr returns the bound UDP address.
func (s *Switch) Addr() string { return s.conn.LocalAddr().String() }

// Close shuts the socket down, terminating Serve.
func (s *Switch) Close() error { return s.conn.Close() }

// Serve processes datagrams until the socket closes. Run it on its own
// goroutine; it returns nil after Close.
func (s *Switch) Serve() error { return s.ServeN(1) }

// ServeN drains the socket with workers reader goroutines sharing the
// bound socket (ReadFromUDP is safe for concurrent use; the kernel hands
// each datagram to exactly one reader). Extra readers keep the socket
// queue short while a handler holds the switch mutex for an aggregation.
// Blocks until the socket closes, then returns nil.
func (s *Switch) ServeN(workers int) error {
	if workers <= 1 {
		s.serveLoop(make([]byte, maxDatagram))
		return nil
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable receive buffer per reader: the handlers copy
			// what they keep, so reads never allocate.
			s.serveLoop(make([]byte, maxDatagram))
		}()
	}
	wg.Wait()
	return nil
}

func (s *Switch) serveLoop(buf []byte) {
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return // closed
		}
		// Decode copies Value/Data out of the datagram, so buf can be
		// reused for the next read without a defensive copy.
		pkt, err := Decode(udpToAddr(peer), protocol.Addr{}, buf[:n])
		if err != nil {
			continue
		}
		switch {
		case pkt.IsControl():
			s.handleControl(pkt, peer)
		case pkt.IsData():
			s.handleData(pkt, peer)
		}
	}
}

func (s *Switch) handleControl(pkt *protocol.Packet, peer *net.UDPAddr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ControlIn++
	switch pkt.Action {
	case protocol.ActionJoin:
		if _, err := protocol.ParseJoin(pkt.Value); err != nil {
			s.ackLocked(peer, false)
			return
		}
		key := peer.String()
		if _, ok := s.members[key]; !ok {
			s.members[key] = peer
			s.order = append(s.order, key)
		}
		if s.autoH {
			_ = s.acc.SetThreshold(uint32(len(s.members)))
		}
		s.ackLocked(peer, true)
	case protocol.ActionLeave:
		key := peer.String()
		if _, ok := s.members[key]; ok {
			delete(s.members, key)
			for i, k := range s.order {
				if k == key {
					s.order = append(s.order[:i], s.order[i+1:]...)
					break
				}
			}
			if s.autoH && len(s.members) > 0 {
				_ = s.acc.SetThreshold(uint32(len(s.members)))
			}
			s.ackLocked(peer, true)
			return
		}
		s.ackLocked(peer, false)
	case protocol.ActionReset:
		s.acc.Reset()
		s.ackLocked(peer, true)
	case protocol.ActionSetH:
		h, err := protocol.ParseSetH(pkt.Value)
		if err != nil || s.acc.SetThreshold(h) != nil {
			s.ackLocked(peer, false)
			return
		}
		s.autoH = false
		s.ackLocked(peer, true)
	case protocol.ActionFBcast:
		for _, seg := range s.acc.PendingSegs() {
			if sum, _, ok := s.acc.Flush(seg); ok {
				s.broadcastLocked(seg, sum)
				s.acc.Recycle(sum)
			}
		}
		s.ackLocked(peer, true)
	case protocol.ActionHelp:
		// Relay to every other member; they retransmit their segment.
		for _, key := range s.order {
			if key == peer.String() {
				continue
			}
			out := &protocol.Packet{ToS: protocol.ToSControl,
				Action: protocol.ActionHelp, Value: pkt.Value}
			s.sendLocked(s.members[key], out)
		}
	case protocol.ActionHalt:
		for _, key := range s.order {
			out := &protocol.Packet{ToS: protocol.ToSControl, Action: protocol.ActionHalt}
			s.sendLocked(s.members[key], out)
		}
	default:
		s.ackLocked(peer, false)
	}
}

func (s *Switch) handleData(pkt *protocol.Packet, peer *net.UDPAddr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.DataIn++
	sum, done, _ := s.acc.IngestFrom(pkt.Seg, peer.String(), pkt.Data)
	if done {
		s.broadcastLocked(pkt.Seg, sum)
		// The broadcast serialized sum onto the wire; hand the buffer
		// back to the accelerator's pool.
		s.acc.Recycle(sum)
	}
}

func (s *Switch) broadcastLocked(seg uint64, sum []float32) {
	s.Broadcasts++
	out := &protocol.Packet{ToS: protocol.ToSData, Seg: seg, Data: sum}
	for _, key := range s.order {
		s.sendLocked(s.members[key], out)
	}
}

func (s *Switch) ackLocked(peer *net.UDPAddr, ok bool) {
	v := protocol.AckOK
	if !ok {
		v = protocol.AckFail
	}
	s.sendLocked(peer, &protocol.Packet{ToS: protocol.ToSControl,
		Action: protocol.ActionAck, Value: v})
}

func (s *Switch) sendLocked(peer *net.UDPAddr, pkt *protocol.Packet) {
	buf, err := appendEncoded(s.encBuf[:0], pkt)
	if err != nil {
		return
	}
	s.encBuf = buf[:0]
	_, _ = s.conn.WriteToUDP(buf, peer)
}

// Members reports the current membership size.
func (s *Switch) Members() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.members)
}

// Counters returns a consistent snapshot of the activity counters
// (safe to call while Serve is running).
func (s *Switch) Counters() (dataIn, broadcasts, controlIn uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.DataIn, s.Broadcasts, s.ControlIn
}

// Client is a worker-side handle: it joins a switch and aggregates
// gradient vectors through it. A Client is single-goroutine: send and
// recv share scratch buffers.
type Client struct {
	conn    *net.UDPConn
	n       int
	asm     *protocol.Assembler
	encBuf  []byte
	recvBuf []byte
	// Timeout bounds each receive while collecting an aggregate.
	Timeout time.Duration
}

// Dial connects to a switch for vectors of modelFloats elements.
func Dial(switchAddr string, modelFloats int) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", switchAddr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, n: modelFloats,
		asm:     protocol.NewAssembler(modelFloats),
		recvBuf: make([]byte, maxDatagram),
		Timeout: 5 * time.Second}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// send frames and writes one packet.
func (c *Client) send(pkt *protocol.Packet) error {
	buf, err := appendEncoded(c.encBuf[:0], pkt)
	if err != nil {
		return err
	}
	c.encBuf = buf[:0]
	_, err = c.conn.Write(buf)
	return err
}

// recv reads one packet with the client timeout.
func (c *Client) recv() (*protocol.Packet, error) {
	if err := c.conn.SetReadDeadline(time.Now().Add(c.Timeout)); err != nil {
		return nil, err
	}
	n, err := c.conn.Read(c.recvBuf)
	if err != nil {
		return nil, err
	}
	return Decode(protocol.Addr{}, protocol.Addr{}, c.recvBuf[:n])
}

// Join registers with the switch and waits for the Ack.
func (c *Client) Join() error {
	if err := c.send(&protocol.Packet{ToS: protocol.ToSControl,
		Action: protocol.ActionJoin, Value: protocol.JoinValue(uint64(c.n))}); err != nil {
		return err
	}
	for {
		pkt, err := c.recv()
		if err != nil {
			return fmt.Errorf("transport: join: %w", err)
		}
		if pkt.IsControl() && pkt.Action == protocol.ActionAck {
			if len(pkt.Value) != 1 || pkt.Value[0] != 1 {
				return fmt.Errorf("transport: join rejected")
			}
			return nil
		}
	}
}

// SetH issues a SetH control action and waits for the Ack.
func (c *Client) SetH(h uint32) error {
	if err := c.send(&protocol.Packet{ToS: protocol.ToSControl,
		Action: protocol.ActionSetH, Value: protocol.SetHValue(h)}); err != nil {
		return err
	}
	pkt, err := c.recv()
	if err != nil {
		return err
	}
	if !pkt.IsControl() || pkt.Action != protocol.ActionAck || pkt.Value[0] != 1 {
		return fmt.Errorf("transport: SetH rejected")
	}
	return nil
}

// Aggregate contributes grad and blocks until the aggregated sum
// arrives. Lost broadcasts trigger one Help-based retransmission round
// before failing.
func (c *Client) Aggregate(grad []float32) ([]float32, error) {
	if len(grad) != c.n {
		return nil, fmt.Errorf("transport: gradient len %d, want %d", len(grad), c.n)
	}
	for _, pkt := range protocol.Segment(protocol.Addr{}, protocol.Addr{}, grad) {
		if err := c.send(pkt); err != nil {
			return nil, err
		}
	}
	c.asm.Reset()
	helped := false
	for !c.asm.Complete() {
		pkt, err := c.recv()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && !helped {
				// Request recovery: peers (and we) retransmit the
				// missing segments' contributions.
				helped = true
				for _, seg := range c.asm.Missing() {
					if err := c.send(&protocol.Packet{ToS: protocol.ToSControl,
						Action: protocol.ActionHelp, Value: protocol.HelpValue(seg)}); err != nil {
						return nil, err
					}
					lo, hi := protocol.SegmentRange(c.n, seg)
					if err := c.send(protocol.NewData(protocol.Addr{}, protocol.Addr{}, seg, grad[lo:hi])); err != nil {
						return nil, err
					}
				}
				continue
			}
			return nil, fmt.Errorf("transport: aggregate: %w", err)
		}
		switch {
		case pkt.IsData():
			if err := c.asm.Add(pkt); err != nil {
				continue
			}
		case pkt.IsControl() && pkt.Action == protocol.ActionHelp:
			seg, err := protocol.ParseHelp(pkt.Value)
			if err != nil || seg >= uint64(protocol.SegmentCount(c.n)) {
				continue
			}
			lo, hi := protocol.SegmentRange(c.n, seg)
			if err := c.send(protocol.NewData(protocol.Addr{}, protocol.Addr{}, seg, grad[lo:hi])); err != nil {
				return nil, err
			}
		}
	}
	return append([]float32(nil), c.asm.Vector()...), nil
}
