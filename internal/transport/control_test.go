package transport

import (
	"testing"
	"time"

	"iswitch/internal/protocol"
)

// sendControl fires a raw control packet from a client's socket.
func sendControl(t *testing.T, c *Client, action protocol.Action, value []byte) {
	t.Helper()
	if err := c.send(&protocol.Packet{ToS: protocol.ToSControl, Action: action, Value: value}); err != nil {
		t.Fatal(err)
	}
}

func TestLeaveOverUDP(t *testing.T) {
	sw := startSwitch(t)
	a, _ := Dial(sw.Addr(), 10)
	defer a.Close()
	b, _ := Dial(sw.Addr(), 10)
	defer b.Close()
	if err := a.Join(); err != nil {
		t.Fatal(err)
	}
	if err := b.Join(); err != nil {
		t.Fatal(err)
	}
	if sw.Members() != 2 {
		t.Fatalf("members = %d", sw.Members())
	}
	sendControl(t, b, protocol.ActionLeave, nil)
	ack, err := b.recv()
	if err != nil || ack.Action != protocol.ActionAck || ack.Value[0] != 1 {
		t.Fatalf("leave ack: %+v %v", ack, err)
	}
	if sw.Members() != 1 {
		t.Fatalf("members after leave = %d", sw.Members())
	}
	// Leaving twice is refused.
	sendControl(t, b, protocol.ActionLeave, nil)
	ack, err = b.recv()
	if err != nil || ack.Value[0] != 0 {
		t.Fatalf("second leave should nack: %+v %v", ack, err)
	}
	// The remaining worker aggregates alone (auto-H followed the leave).
	sum, err := a.Aggregate(make([]float32, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != 10 {
		t.Fatalf("aggregate len %d", len(sum))
	}
}

func TestHaltOverUDP(t *testing.T) {
	sw := startSwitch(t)
	a, _ := Dial(sw.Addr(), 10)
	defer a.Close()
	b, _ := Dial(sw.Addr(), 10)
	defer b.Close()
	_ = a.Join()
	_ = b.Join()
	sendControl(t, a, protocol.ActionHalt, nil)

	gotHalt := func(c *Client) bool {
		c.Timeout = 2 * time.Second
		for {
			pkt, err := c.recv()
			if err != nil {
				return false
			}
			if pkt.IsControl() && pkt.Action == protocol.ActionHalt {
				return true
			}
		}
	}
	if !gotHalt(a) || !gotHalt(b) {
		t.Fatal("halt not delivered to all members")
	}
}

func TestFBcastOverUDP(t *testing.T) {
	sw := startSwitch(t)
	a, _ := Dial(sw.Addr(), 4)
	defer a.Close()
	b, _ := Dial(sw.Addr(), 4)
	defer b.Close()
	_ = a.Join()
	_ = b.Join()
	// One partial contribution, then force-broadcast.
	if err := a.send(protocol.NewData(protocol.Addr{}, protocol.Addr{}, 0, []float32{1, 2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	sendControl(t, b, protocol.ActionFBcast, nil)

	a.Timeout = 2 * time.Second
	for {
		pkt, err := a.recv()
		if err != nil {
			t.Fatal("partial broadcast never arrived")
		}
		if pkt.IsData() {
			if pkt.Seg != 0 || pkt.Data[0] != 1 {
				t.Fatalf("partial = %+v", pkt)
			}
			return
		}
	}
}

func TestResetOverUDP(t *testing.T) {
	sw := startSwitch(t)
	a, _ := Dial(sw.Addr(), 4)
	defer a.Close()
	b, _ := Dial(sw.Addr(), 4)
	defer b.Close()
	_ = a.Join()
	_ = b.Join() // H=2, so one contribution stays partial
	_ = a.send(protocol.NewData(protocol.Addr{}, protocol.Addr{}, 0, []float32{9, 9, 9, 9}))
	time.Sleep(100 * time.Millisecond)
	sendControl(t, a, protocol.ActionReset, nil)
	ack, err := a.recv()
	if err != nil || ack.Action != protocol.ActionAck || ack.Value[0] != 1 {
		t.Fatalf("reset ack: %+v %v", ack, err)
	}
	// After the wipe, a full H=2 round must produce a clean sum with no
	// trace of the 9s.
	done := make(chan []float32, 1)
	go func() {
		sum, err := b.Aggregate([]float32{2, 2, 2, 2})
		if err != nil {
			t.Error(err)
		}
		done <- sum
	}()
	sumA, err := a.Aggregate([]float32{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	for _, v := range sumA {
		if v != 3 {
			t.Fatalf("stale state after reset: %v", sumA)
		}
	}
}

func TestBadJoinRejectedOverUDP(t *testing.T) {
	sw := startSwitch(t)
	c, _ := Dial(sw.Addr(), 10)
	defer c.Close()
	sendControl(t, c, protocol.ActionJoin, []byte{1, 2}) // malformed
	ack, err := c.recv()
	if err != nil || ack.Action != protocol.ActionAck || ack.Value[0] != 0 {
		t.Fatalf("malformed join should nack: %+v %v", ack, err)
	}
	if sw.Members() != 0 {
		t.Fatalf("members = %d", sw.Members())
	}
}
