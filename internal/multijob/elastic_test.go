package multijob

import (
	"reflect"
	"testing"
	"time"

	"iswitch/internal/sim"
)

// TestElasticSinglePhaseMatchesStatic pins that a one-phase elastic
// plan is just a static job: same virtual clock, same rounds.
func TestElasticSinglePhaseMatchesStatic(t *testing.T) {
	const nW, floats, iters = 4, 800, 3
	wl := ppoWorkload(t)

	k1 := sim.NewKernel()
	f1 := NewTreeFabric(k1, nW, 2, testLink(), testLink(), FabricConfig{})
	ref, err := Run(f1, []JobSpec{{
		Workload: wl, Workers: nW, Mode: ModeSync, Iterations: iters, ModelFloats: floats,
	}})
	if err != nil {
		t.Fatal(err)
	}

	k2 := sim.NewKernel()
	f2 := NewTreeFabric(k2, nW, 2, testLink(), testLink(), FabricConfig{})
	res, err := Run(f2, []JobSpec{{
		Workload: wl, Workers: nW, Mode: ModeSync, ModelFloats: floats,
		Elastic: &ElasticPlan{Phases: []ElasticPhase{{Workers: nW, Iterations: iters}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Finished != ref[0].Finished {
		t.Fatalf("one-phase elastic clock %v, static %v", res[0].Finished, ref[0].Finished)
	}
	if res[0].Rounds != iters || res[0].GradBytes != ref[0].GradBytes {
		t.Fatalf("elastic accounting: rounds=%d grad=%d, static rounds=%d grad=%d",
			res[0].Rounds, res[0].GradBytes, ref[0].Rounds, ref[0].GradBytes)
	}
}

// TestElasticGrowShrink flexes a job across the rack boundary of a
// two-rack tree: 4 workers, down to 2 (emptying rack 1, whose ToR must
// be unwired from the root), back up to 4 (re-wired). Every phase must
// complete its iterations and the fabric must come out clean.
func TestElasticGrowShrink(t *testing.T) {
	const floats = 600
	wl := ppoWorkload(t)
	phases := []ElasticPhase{
		{Workers: 4, Iterations: 2},
		{Workers: 2, Iterations: 2}, // rack 1 empties: unregister its ToR
		{Workers: 3, Iterations: 1}, // rack 1 refills: re-register
	}
	k := sim.NewKernel()
	f := NewTreeFabric(k, 4, 2, testLink(), testLink(), FabricConfig{})
	res, err := Run(f, []JobSpec{{
		Name: "flex", Workload: wl, Workers: 4, Mode: ModeSync, ModelFloats: floats,
		Elastic: &ElasticPlan{Phases: phases},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Rounds != 5 {
		t.Fatalf("Rounds = %d, want 5 (2+2+1)", r.Rounds)
	}
	wantGrad := uint64(2*4+2*2+1*3) * floats * 4
	if r.GradBytes != wantGrad {
		t.Fatalf("GradBytes = %d, want %d", r.GradBytes, wantGrad)
	}
	if r.MeanRound <= 0 || r.Finished <= r.Started {
		t.Fatalf("degenerate timing: mean=%v started=%v finished=%v", r.MeanRound, r.Started, r.Finished)
	}
	for _, is := range f.Switches {
		if pool := is.SRAMPool(); pool != nil && (pool.Jobs() != 0 || pool.Used() != 0) {
			t.Fatalf("switch %v leaked SRAM after elastic run", is.Addr())
		}
		if mem := is.MembershipOf(r.Job); mem != nil {
			t.Fatalf("switch %v still holds job context after evict", is.Addr())
		}
	}
}

// TestElasticSharesFabric co-runs an elastic job with a static tenant:
// both finish their schedules, and the elastic job's Leave/Join churn
// never corrupts the neighbor (its rounds all complete).
func TestElasticSharesFabric(t *testing.T) {
	wl := ppoWorkload(t)
	k := sim.NewKernel()
	f := NewStarFabric(k, 6, testLink(), FabricConfig{})
	res, err := Run(f, []JobSpec{
		{Name: "flex", Workload: wl, Workers: 4, Mode: ModeSync, ModelFloats: 500,
			Elastic: &ElasticPlan{Phases: []ElasticPhase{
				{Workers: 4, Iterations: 2}, {Workers: 2, Iterations: 2},
			}}},
		{Name: "steady", Workload: wl, Workers: 2, Mode: ModeSync, Iterations: 4, ModelFloats: 700},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rounds != 4 || res[1].Rounds != 4 {
		t.Fatalf("rounds: flex=%d steady=%d, want 4 and 4", res[0].Rounds, res[1].Rounds)
	}
}

// TestAutoscalePlanDeterministic pins the autoscale agent: the seeded
// walk reproduces exactly and respects its bounds; and an autoscaled
// job actually runs under the scheduler.
func TestAutoscalePlanDeterministic(t *testing.T) {
	a := AutoscalePlan(42, 6, 1, 4, 2)
	b := AutoscalePlan(42, 6, 1, 4, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if len(a.Phases) != 6 {
		t.Fatalf("phases = %d, want 6", len(a.Phases))
	}
	changed := false
	for i, ph := range a.Phases {
		if ph.Workers < 1 || ph.Workers > 4 || ph.Iterations != 2 {
			t.Fatalf("phase %d out of bounds: %+v", i, ph)
		}
		if i > 0 && ph.Workers != a.Phases[i-1].Workers {
			changed = true
		}
	}
	if !changed {
		t.Fatal("autoscale walk never flexed the worker count")
	}
	if reflect.DeepEqual(a, AutoscalePlan(43, 6, 1, 4, 2)) {
		t.Fatal("different seeds produced identical plans")
	}

	wl := ppoWorkload(t)
	k := sim.NewKernel()
	f := NewStarFabric(k, 4, testLink(), FabricConfig{})
	res, err := Run(f, []JobSpec{{
		Name: "autoscaled", Workload: wl, Workers: a.MaxWorkers(), Mode: ModeSync,
		ModelFloats: 400, Elastic: a,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Rounds != 12 {
		t.Fatalf("autoscaled rounds = %d, want 12", res[0].Rounds)
	}
}

// TestAdversarySmoke runs an adversarial tenant beside a compliant one
// with no shaping: both must terminate, the adversary must move real
// traffic and report no training rounds.
func TestAdversarySmoke(t *testing.T) {
	wl := ppoWorkload(t)
	k := sim.NewKernel()
	f := NewTreeFabric(k, 4, 2, testLink(), testLink(), FabricConfig{})
	res, err := Run(f, []JobSpec{
		{Name: "tenant", Workload: wl, Workers: 2, Mode: ModeSync, Iterations: 3, ModelFloats: 600},
		{Name: "adv", Workload: wl, Workers: 2, ModelFloats: 600,
			Adversary: &AdversaryPlan{Duration: 40 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tenant, adv := res[0], res[1]
	if !adv.Adversary || adv.Rounds != 0 || adv.Sync != nil {
		t.Fatalf("adversary result malformed: %+v", adv)
	}
	if adv.WireBytes == 0 {
		t.Fatal("adversary moved no traffic")
	}
	if adv.Finished < 40*time.Millisecond {
		t.Fatalf("adversary quit early at %v", adv.Finished)
	}
	if tenant.Rounds != 3 {
		t.Fatalf("compliant tenant rounds = %d, want 3", tenant.Rounds)
	}
	for _, is := range f.Switches {
		if pool := is.SRAMPool(); pool != nil && pool.Jobs() != 0 {
			t.Fatal("adversary run leaked SRAM contexts")
		}
	}
}
