package multijob

import (
	"testing"
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// intAgent is a deterministic integer-gradient agent that records
// every aggregate it applied — the bit-identity witness for the
// preemption property tests (small integers sum exactly in float32,
// so any divergence is a real protocol bug, not rounding).
type intAgent struct {
	id, iter int
	n        int
	params   []float32
	applied  [][]float32
}

func newIntAgent(id, n int) *intAgent {
	return &intAgent{id: id, n: n, params: make([]float32, n)}
}

func (a *intAgent) Name() string { return "int" }
func (a *intAgent) GradLen() int { return a.n }
func (a *intAgent) ComputeGradient(dst []float32) {
	for i := range dst {
		dst[i] = float32((a.id + 1) * (a.iter + i%7) % 50)
	}
	a.iter++
}
func (a *intAgent) ApplyAggregated(sum []float32, h int) {
	a.applied = append(a.applied, append([]float32(nil), sum...))
	for i := range a.params {
		a.params[i] += sum[i] / float32(h)
	}
}
func (a *intAgent) ReadParams(dst []float32)  { copy(dst, a.params) }
func (a *intAgent) WriteParams(src []float32) { copy(a.params, src) }
func (a *intAgent) DrainEpisodes() []float64  { return nil }

// runPreemptScenario runs job A (preemptible) alone as the reference,
// then again with a higher-priority job B arriving mid-run on a fabric
// whose SRAM only fits one context, forcing A's checkpoint/restore.
// It asserts A was actually preempted and that A's applied aggregates
// and final parameters are bit-identical to the unpreempted run.
func runPreemptScenario(t *testing.T, newFabric func(k *sim.Kernel, cfg FabricConfig) *Fabric,
	nW int, faults *netsim.FaultPlan) {
	t.Helper()
	const floats, iters = 900, 6
	wl := ppoWorkload(t)
	demand := accel.ContextDemand(floats, protocol.FloatsPerPacket)

	specA := func(agents []*intAgent) JobSpec {
		return JobSpec{
			Name: "victim", Workload: wl, Workers: nW, Mode: ModeSync,
			Iterations: iters, ModelFloats: floats,
			Preemptible: true, RecoveryTimeout: 12 * time.Millisecond,
			Faults:   faults,
			NewAgent: func(i int) rl.Agent { return agents[i] },
		}
	}
	newAgents := func() []*intAgent {
		agents := make([]*intAgent, nW)
		for i := range agents {
			agents[i] = newIntAgent(i, floats)
		}
		return agents
	}

	// Reference: A alone (same fabric shape, same pool, no competitor).
	refAgents := newAgents()
	k1 := sim.NewKernel()
	f1 := newFabric(k1, FabricConfig{
		SRAMBytes: demand + demand/2, Policy: accel.PartitionDemand,
		Admission: PriorityPreempt(),
	})
	if _, err := Run(f1, []JobSpec{specA(refAgents)}); err != nil {
		t.Fatal(err)
	}

	// Contended: B (higher priority, non-preemptible) lands mid-run.
	agents := newAgents()
	k2 := sim.NewKernel()
	f2 := newFabric(k2, FabricConfig{
		SRAMBytes: demand + demand/2, Policy: accel.PartitionDemand,
		Admission: PriorityPreempt(),
	})
	res, err := Run(f2, []JobSpec{
		specA(agents),
		{Name: "urgent", Workload: wl, Workers: nW, Mode: ModeSync,
			Iterations: 3, ModelFloats: floats, Priority: 5,
			SubmitAt: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res[0], res[1]
	if a.Preemptions == 0 {
		t.Fatal("job A was never preempted — the scenario did not exercise checkpoint/restore")
	}
	if b.Queued || b.Preemptions != 0 {
		t.Fatalf("urgent job queued=%v preemptions=%d, want immediate admission via preemption", b.Queued, b.Preemptions)
	}
	if a.Rounds != iters || b.Rounds != 3 {
		t.Fatalf("rounds: A=%d (want %d) B=%d (want 3)", a.Rounds, iters, b.Rounds)
	}
	// A finished strictly later than in the reference (it lost the
	// switch for B's whole run) — but computed exactly the same thing.
	for w := range agents {
		if len(agents[w].applied) != len(refAgents[w].applied) {
			t.Fatalf("worker %d applied %d aggregates, reference %d",
				w, len(agents[w].applied), len(refAgents[w].applied))
		}
		for it := range agents[w].applied {
			got, want := agents[w].applied[it], refAgents[w].applied[it]
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("worker %d iter %d aggregate[%d]: preempted run %v, reference %v",
						w, it, i, got[i], want[i])
				}
			}
		}
		for i := range agents[w].params {
			if agents[w].params[i] != refAgents[w].params[i] {
				t.Fatalf("worker %d param[%d]: preempted run %v, reference %v",
					w, i, agents[w].params[i], refAgents[w].params[i])
			}
		}
	}
	// No SRAM leaked across preempt/restore/evict cycles.
	for _, is := range f2.Switches {
		if pool := is.SRAMPool(); pool != nil && (pool.Jobs() != 0 || pool.Used() != 0) {
			t.Fatalf("switch %v leaked SRAM: %d jobs, %d bytes", is.Addr(), pool.Jobs(), pool.Used())
		}
	}
}

// TestPreemptRestoreBitIdenticalStar is the checkpoint/restore
// property pin on the single-switch fabric.
func TestPreemptRestoreBitIdenticalStar(t *testing.T) {
	runPreemptScenario(t, func(k *sim.Kernel, cfg FabricConfig) *Fabric {
		return NewStarFabric(k, 4, testLink(), cfg)
	}, 2, nil)
}

// TestPreemptRestoreBitIdenticalFatTree extends the pin to the fat-
// tree: the victim's contexts are checkpointed and restored coherently
// across its whole edge→agg→core chain.
func TestPreemptRestoreBitIdenticalFatTree(t *testing.T) {
	uplink := netsim.LinkConfig{BitsPerSecond: 40e9, Propagation: 4 * time.Microsecond}
	runPreemptScenario(t, func(k *sim.Kernel, cfg FabricConfig) *Fabric {
		return NewFatTreeFabric(k, 2, 2, testLink(), uplink, uplink, cfg)
	}, 2, nil)
}

// TestPreemptRestoreBitIdenticalUnderFaults layers a lossy worker NIC
// (PR 7 FaultPlan) on top of the preemption: retransmissions, the
// dedup bitmap, and checkpoint/restore must compose without changing a
// single bit of the aggregates.
func TestPreemptRestoreBitIdenticalUnderFaults(t *testing.T) {
	fp := &netsim.FaultPlan{
		Seed:  7,
		Links: []netsim.LinkFault{{Worker: 0, Dir: netsim.DirBoth, Loss: 0.05}},
	}
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
	runPreemptScenario(t, func(k *sim.Kernel, cfg FabricConfig) *Fabric {
		return NewStarFabric(k, 4, testLink(), cfg)
	}, 2, fp)
}
