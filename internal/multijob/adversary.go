package multijob

import (
	"fmt"
	"time"

	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// The adversarial agent: a tenant that joins the fabric legitimately
// and then tries to hurt its neighbors — an open-loop, line-rate flood
// of tagged gradient traffic that completes aggregation rounds as fast
// as the switches will take them, saturating shared uplinks with
// partial-aggregate forwards and broadcast storms. SRAM it cannot
// steal (admission reserved its context up front and rejects demands
// above capacity), so bandwidth is its weapon; the isolation
// experiment shows egress shaping caps it at its weight's share.

// AdversaryPlan turns a JobSpec into an adversarial tenant.
type AdversaryPlan struct {
	// Duration bounds the flood, measured from the job's admission.
	Duration time.Duration
}

// startAdversary spawns one open-loop flooder per host. Each worker
// joins through the normal control plane, then blasts full-size data
// packets round after round, paced only by its own NIC, draining (and
// discarding) every broadcast the switch returns.
func (s *scheduler) startAdversary(jr *jobRun) {
	plan := jr.spec.Adversary
	segs := uint64(protocol.SegmentCountWith(jr.spec.floats(), protocol.FloatsPerPacket))
	if segs == 0 {
		segs = 1
	}
	remaining := len(jr.hosts)
	for i := range jr.hosts {
		h, target := jr.hosts[i], jr.targets[i]
		s.f.K.Spawn(fmt.Sprintf("adversary-%d-%d", jr.id, i), func(p *sim.Proc) {
			// Join and wait for the ack like any honest worker.
			join := protocol.NewControl(h.Addr, target, protocol.ActionJoin,
				protocol.JoinValue(uint64(len(jr.hosts))))
			join.Job = jr.id
			h.Send(join)
			for {
				rx := h.Recv(p)
				acked := rx.IsControl() && rx.Action == protocol.ActionAck
				rx.Release()
				if acked {
					break
				}
			}

			payload := make([]float32, protocol.FloatsPerPacket)
			for j := range payload {
				payload[j] = 1
			}
			nic := h.Port().Config()
			deadline := p.Now() + plan.Duration
			for round := uint64(1); p.Now() < deadline; round++ {
				for seg := uint64(0); seg < segs && p.Now() < deadline; seg++ {
					pkt := protocol.NewData(h.Addr, target, protocol.TagSeg(round, seg), payload)
					pkt.Job = jr.id
					wire := pkt.WireLen()
					h.Send(pkt)
					// Open loop: pace at the NIC's line rate, never wait
					// for the aggregate. Drop whatever came back.
					p.Sleep(nic.SerializationTime(wire))
					for {
						rx, ok := h.RX.TryRecv()
						if !ok {
							break
						}
						rx.Release()
					}
				}
			}
			if remaining--; remaining == 0 {
				s.finish(jr)
			}
		})
	}
}
