package multijob

import (
	"testing"
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

func testLink() netsim.LinkConfig {
	return netsim.LinkConfig{BitsPerSecond: 10e9, Propagation: 2 * time.Microsecond}
}

func ppoWorkload(t *testing.T) perfmodel.Workload {
	t.Helper()
	wl, err := perfmodel.WorkloadByName("PPO")
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

// newPPOAgents builds a deterministic worker set: fixed model seed (all
// replicas start identical), per-worker experience seeds.
func newPPOAgents(t *testing.T, n int) []rl.Agent {
	t.Helper()
	agents := make([]rl.Agent, n)
	for i := range agents {
		a, err := rl.NewWorkloadAgent("PPO", 42, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
	}
	return agents
}

// TestSingleJobEquivalenceStarSync pins the package's core claim: a
// fabric carrying exactly one job is bit- and clock-identical to the
// single-tenant path. Real seeded PPO agents run 3 synchronous
// iterations both ways; final parameters must match bit-for-bit and the
// virtual clock must agree exactly.
func TestSingleJobEquivalenceStarSync(t *testing.T) {
	const nW, iters = 3, 3
	wl := ppoWorkload(t)
	floats := newPPOAgents(t, 1)[0].GradLen()
	syncCfg := core.SyncConfig{
		Iterations: iters, LocalCompute: wl.LocalCompute, WeightUpdate: wl.WeightUpdate,
	}

	// Reference: the single-tenant star cluster.
	refAgents := newPPOAgents(t, nW)
	k1 := sim.NewKernel()
	cl := core.NewISWStar(k1, nW, floats, testLink(), core.DefaultISWConfig())
	svcs := make([]core.Service, nW)
	for i := range svcs {
		svcs[i] = cl.Client(i)
	}
	ref := core.RunSync(k1, refAgents, svcs, syncCfg)

	// Same training through the multi-tenant scheduler, one job.
	mjAgents := newPPOAgents(t, nW)
	k2 := sim.NewKernel()
	f := NewStarFabric(k2, nW, testLink(), FabricConfig{})
	res, err := Run(f, []JobSpec{{
		Workload: wl, Workers: nW, Mode: ModeSync, Iterations: iters,
		ModelFloats: floats,
		NewAgent:    func(i int) rl.Agent { return mjAgents[i] },
	}})
	if err != nil {
		t.Fatal(err)
	}
	job := res[0]
	if job.Rejected || job.Queued {
		t.Fatalf("lone job rejected=%v queued=%v", job.Rejected, job.Queued)
	}
	if job.Sync == nil {
		t.Fatal("sync stats missing")
	}
	if job.Sync.Total != ref.Total {
		t.Fatalf("virtual-clock divergence: multijob %v, single-tenant %v",
			job.Sync.Total, ref.Total)
	}
	if job.Started != 0 || job.Finished != ref.Total {
		t.Fatalf("Started=%v Finished=%v, want 0 and %v", job.Started, job.Finished, ref.Total)
	}
	want := make([]float32, floats)
	got := make([]float32, floats)
	for w := 0; w < nW; w++ {
		refAgents[w].ReadParams(want)
		mjAgents[w].ReadParams(got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("worker %d param[%d]: multijob %v, single-tenant %v",
					w, i, got[i], want[i])
			}
		}
	}
	if job.Rounds != iters {
		t.Fatalf("Rounds = %d, want %d", job.Rounds, iters)
	}
	if wantGrad := uint64(iters) * nW * uint64(floats) * 4; job.GradBytes != wantGrad {
		t.Fatalf("GradBytes = %d, want %d", job.GradBytes, wantGrad)
	}
	if job.WireBytes == 0 {
		t.Fatal("job-tagged wire accounting recorded nothing")
	}
}

// TestSingleJobEquivalenceStarAsync pins the same claim for the
// asynchronous LGC/LWU pipeline (timing-only synthetic agents).
func TestSingleJobEquivalenceStarAsync(t *testing.T) {
	const nW, floats = 3, 800
	const updates, bound = 5, 2
	wl := ppoWorkload(t)
	acfg := core.AsyncConfig{
		Updates: updates, StalenessBound: bound,
		LocalCompute: wl.LocalCompute, WeightUpdate: wl.WeightUpdate,
	}

	k1 := sim.NewKernel()
	cl := core.NewISWStar(k1, nW, floats, testLink(), core.DefaultISWConfig())
	refAgents := make([]rl.Agent, nW)
	for i := range refAgents {
		refAgents[i] = core.NewSyntheticAgent(floats)
	}
	ref := core.RunAsyncISW(k1, refAgents, cl, acfg)

	k2 := sim.NewKernel()
	f := NewStarFabric(k2, nW, testLink(), FabricConfig{})
	res, err := Run(f, []JobSpec{{
		Workload: wl, Workers: nW, Mode: ModeAsync,
		Updates: updates, StalenessBound: bound, ModelFloats: floats,
	}})
	if err != nil {
		t.Fatal(err)
	}
	job := res[0]
	if job.Async == nil {
		t.Fatal("async stats missing")
	}
	if job.Async.Total != ref.Total {
		t.Fatalf("async virtual-clock divergence: multijob %v, single-tenant %v",
			job.Async.Total, ref.Total)
	}
	if job.Async.Committed != ref.Committed || job.Async.Discarded != ref.Discarded {
		t.Fatalf("staleness accounting diverged: %d/%d vs %d/%d",
			job.Async.Committed, job.Async.Discarded, ref.Committed, ref.Discarded)
	}
}

// TestSingleJobEquivalenceTreeSync extends the equivalence pin to the
// two-level rack hierarchy.
func TestSingleJobEquivalenceTreeSync(t *testing.T) {
	const nRacks, perRack, floats, iters = 2, 2, 900, 2
	nW := nRacks * perRack
	wl := ppoWorkload(t)
	syncCfg := core.SyncConfig{
		Iterations: iters, LocalCompute: wl.LocalCompute, WeightUpdate: wl.WeightUpdate,
	}
	edge, uplink := testLink(), netsim.LinkConfig{BitsPerSecond: 32e9, Propagation: 4 * time.Microsecond}

	k1 := sim.NewKernel()
	cl := core.NewISWTree(k1, nRacks, perRack, floats, edge, uplink, core.DefaultISWConfig())
	refAgents := make([]rl.Agent, nW)
	svcs := make([]core.Service, nW)
	for i := range refAgents {
		refAgents[i] = core.NewSyntheticAgent(floats)
		svcs[i] = cl.Client(i)
	}
	ref := core.RunSync(k1, refAgents, svcs, syncCfg)

	k2 := sim.NewKernel()
	f := NewTreeFabric(k2, nW, perRack, edge, uplink, FabricConfig{})
	res, err := Run(f, []JobSpec{{
		Workload: wl, Workers: nW, Mode: ModeSync, Iterations: iters, ModelFloats: floats,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Sync.Total != ref.Total {
		t.Fatalf("tree virtual-clock divergence: multijob %v, single-tenant %v",
			res[0].Sync.Total, ref.Total)
	}
}

// TestAdmissionQueueing pins FIFO admission: with SRAM for only one
// tenant, the second job waits for the first to finish and release its
// context, then runs to completion.
func TestAdmissionQueueing(t *testing.T) {
	const floats, iters = 1000, 2
	wl := ppoWorkload(t)
	demand := accel.ContextDemand(floats, protocol.FloatsPerPacket)

	k := sim.NewKernel()
	f := NewStarFabric(k, 4, testLink(), FabricConfig{
		SRAMBytes: demand + demand/2, // one context fits, two do not
		Policy:    accel.PartitionDemand,
	})
	spec := JobSpec{Workload: wl, Workers: 2, Mode: ModeSync, Iterations: iters, ModelFloats: floats}
	a, b := spec, spec
	a.Name, b.Name = "first", "second"
	res, err := Run(f, []JobSpec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Queued {
		t.Fatal("first job should start immediately")
	}
	if !res[1].Queued {
		t.Fatal("second job should have been queued behind the first")
	}
	if res[0].Started != 0 {
		t.Fatalf("first job Started = %v, want 0", res[0].Started)
	}
	if res[1].Started < res[0].Finished {
		t.Fatalf("second job started at %v, before the first finished at %v",
			res[1].Started, res[0].Finished)
	}
	for i, r := range res {
		if r.Rounds != iters || r.Finished == 0 {
			t.Fatalf("job %d incomplete: rounds=%d finished=%v", i, r.Rounds, r.Finished)
		}
	}
	if rej := f.Switches[0].SRAMPool().Rejections; rej == 0 {
		t.Fatal("queued admission should have registered SRAM pressure")
	}
}

// TestStaticPartitionQueueing pins the static policy's slot count: two
// slots, three jobs — the third waits for a slot to free.
func TestStaticPartitionQueueing(t *testing.T) {
	const floats, iters = 500, 2
	wl := ppoWorkload(t)
	k := sim.NewKernel()
	f := NewStarFabric(k, 6, testLink(), FabricConfig{
		SRAMBytes: 1 << 20, Policy: accel.PartitionStatic, MaxJobs: 2,
	})
	spec := JobSpec{Workload: wl, Workers: 2, Mode: ModeSync, Iterations: iters, ModelFloats: floats}
	res, err := Run(f, []JobSpec{spec, spec, spec})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Queued || res[1].Queued {
		t.Fatal("two static slots should admit the first two jobs immediately")
	}
	if !res[2].Queued {
		t.Fatal("third job should have waited for a static slot")
	}
	firstDone := res[0].Finished
	if res[1].Finished < firstDone {
		firstDone = res[1].Finished
	}
	if res[2].Started < firstDone {
		t.Fatalf("third job started at %v before any slot freed at %v",
			res[2].Started, firstDone)
	}
	for i, r := range res {
		if r.Rounds != iters {
			t.Fatalf("job %d rounds = %d, want %d", i, r.Rounds, iters)
		}
	}
}

// TestInfeasibleJobRejected pins outright rejection: a job whose demand
// exceeds switch capacity is rejected (not queued — it would head-block
// the FIFO forever) and consumes no hosts; later jobs still run.
func TestInfeasibleJobRejected(t *testing.T) {
	wl := ppoWorkload(t)
	smallDemand := accel.ContextDemand(500, protocol.FloatsPerPacket)
	k := sim.NewKernel()
	f := NewStarFabric(k, 2, testLink(), FabricConfig{
		SRAMBytes: smallDemand + smallDemand/2, Policy: accel.PartitionDemand,
	})
	res, err := Run(f, []JobSpec{
		{Name: "huge", Workload: wl, Workers: 2, Mode: ModeSync, Iterations: 1, ModelFloats: 100_000},
		{Name: "small", Workload: wl, Workers: 2, Mode: ModeSync, Iterations: 1, ModelFloats: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Rejected {
		t.Fatal("over-capacity job should have been rejected")
	}
	if res[0].Started != 0 || res[0].Finished != 0 || res[0].Sync != nil {
		t.Fatal("rejected job should not have run")
	}
	// The fabric has exactly 2 hosts: the small job only fits if the
	// rejected job consumed none.
	if res[1].Rejected || res[1].Rounds != 1 {
		t.Fatalf("small job should have run: %+v", res[1])
	}
}

// TestMixedModeJobs co-runs two synchronous jobs and one asynchronous
// job on one star fabric and checks cross-job accounting: every job
// completes its own schedule, per-job wire bytes are disjointly
// metered, and Jain fairness over them is well-formed.
func TestMixedModeJobs(t *testing.T) {
	wl := ppoWorkload(t)
	k := sim.NewKernel()
	f := NewStarFabric(k, 6, testLink(), FabricConfig{})
	res, err := Run(f, []JobSpec{
		{Name: "sync-a", Workload: wl, Workers: 2, Mode: ModeSync, Iterations: 3, ModelFloats: 700},
		{Name: "async-b", Workload: wl, Workers: 2, Mode: ModeAsync, Updates: 4, StalenessBound: 2, ModelFloats: 500},
		{Name: "sync-c", Workload: wl, Workers: 2, Mode: ModeSync, Iterations: 2, ModelFloats: 900},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Sync == nil || res[1].Async == nil || res[2].Sync == nil {
		t.Fatal("mode-specific stats missing")
	}
	wantRounds := []int64{3, 4, 2}
	for i, r := range res {
		if r.Queued || r.Rejected {
			t.Fatalf("job %d should have been admitted immediately", i)
		}
		if r.Rounds != wantRounds[i] {
			t.Fatalf("job %d rounds = %d, want %d", i, r.Rounds, wantRounds[i])
		}
		if r.WireBytes == 0 {
			t.Fatalf("job %d moved no metered bytes", i)
		}
	}
	// Bigger models move more bytes per round; check the ledger ranks
	// jobs by gradient volume, not arrival order.
	vol := func(r *JobResult) uint64 { return r.GradBytes }
	if (vol(res[0]) > vol(res[2])) != (res[0].WireBytes > res[2].WireBytes) {
		t.Fatalf("wire ledger disagrees with gradient volume: grad %d vs %d, wire %d vs %d",
			vol(res[0]), vol(res[2]), res[0].WireBytes, res[2].WireBytes)
	}

	sum := Summarize(res)
	if sum.Jobs != 3 || sum.Ran != 3 || sum.Rejected != 0 || sum.Queued != 0 {
		t.Fatalf("summary counts wrong: %+v", sum)
	}
	if sum.Fairness <= 0 || sum.Fairness > 1 {
		t.Fatalf("fairness out of range: %v", sum.Fairness)
	}
	maxFin := res[0].Finished
	for _, r := range res[1:] {
		if r.Finished > maxFin {
			maxFin = r.Finished
		}
	}
	if sum.Makespan != maxFin {
		t.Fatalf("makespan %v, want %v", sum.Makespan, maxFin)
	}
	if sum.AggThroughputBps <= 0 {
		t.Fatal("aggregate throughput should be positive")
	}
}

// TestThreeTierSingleJobMatchesUntenantedFabric pins that arming
// tenancy (SRAM pool + shared bus) on the full three-tier hierarchy
// costs a lone job nothing: same virtual-clock total as the same
// cluster without pools.
func TestThreeTierSingleJobMatchesUntenantedFabric(t *testing.T) {
	const floats, iters = 600, 2
	wl := ppoWorkload(t)
	syncCfg := core.SyncConfig{
		Iterations: iters, LocalCompute: wl.LocalCompute, WeightUpdate: wl.WeightUpdate,
	}
	edge := testLink()
	aggL := netsim.LinkConfig{BitsPerSecond: 32e9, Propagation: 4 * time.Microsecond}
	coreL := netsim.LinkConfig{BitsPerSecond: 64e9, Propagation: 6 * time.Microsecond}

	// Reference: untenanted fabric (no pools, no bus), default job 0.
	k1 := sim.NewKernel()
	ref := NewThreeTierFabric(k1, 2, 2, 2, edge, aggL, coreL, FabricConfig{})
	for _, is := range ref.Switches { // strip tenancy again: plain hierarchy
		is.SetTenancy(nil, nil)
	}
	nW := len(ref.Hosts)
	refAgents := make([]rl.Agent, nW)
	svcs := make([]core.Service, nW)
	refCl := core.NewISWOnFabric(ref.Hosts, ref.target, floats, nW, core.DefaultISWConfig())
	for i := range refAgents {
		refAgents[i] = core.NewSyntheticAgent(floats)
		svcs[i] = refCl.Client(i)
	}
	refStats := core.RunSync(k1, refAgents, svcs, syncCfg)

	k2 := sim.NewKernel()
	f := NewThreeTierFabric(k2, 2, 2, 2, edge, aggL, coreL, FabricConfig{})
	res, err := Run(f, []JobSpec{{
		Workload: wl, Workers: nW, Mode: ModeSync, Iterations: iters, ModelFloats: floats,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Sync.Total != refStats.Total {
		t.Fatalf("three-tier virtual-clock divergence: multijob %v, untenanted %v",
			res[0].Sync.Total, refStats.Total)
	}
	// The job crossed every tier: its context must have been reserved
	// and released on ToR, AGG and core switches alike.
	for _, is := range f.Switches {
		if got := is.SRAMPool().Jobs(); got != 0 {
			t.Fatalf("switch %v still holds %d job contexts after the run", is.Addr(), got)
		}
	}
}

// TestFabricHostExhaustion pins the allocation error path.
func TestFabricHostExhaustion(t *testing.T) {
	wl := ppoWorkload(t)
	k := sim.NewKernel()
	f := NewStarFabric(k, 2, testLink(), FabricConfig{})
	_, err := Run(f, []JobSpec{
		{Workload: wl, Workers: 2, Mode: ModeSync, Iterations: 1, ModelFloats: 100},
		{Workload: wl, Workers: 1, Mode: ModeSync, Iterations: 1, ModelFloats: 100},
	})
	if err == nil {
		t.Fatal("want host-exhaustion error")
	}
}

// TestFabricFromSpec pins the declarative entry point: a fabric built
// from a core.ClusterSpec runs a two-tenant mix clock-identically to
// one built by the matching legacy constructor, and malformed specs
// are rejected rather than panicking downstream.
func TestFabricFromSpec(t *testing.T) {
	wl := ppoWorkload(t)
	specs := []JobSpec{
		{Name: "j0", Workload: wl, Workers: 2, Mode: ModeSync, Iterations: 2, ModelFloats: 400},
		{Name: "j1", Workload: wl, Workers: 2, Mode: ModeSync, Iterations: 2, ModelFloats: 300},
	}
	run := func(f *Fabric) Summary {
		res, err := Run(f, specs)
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(res)
	}

	k1 := sim.NewKernel()
	want := run(NewTreeFabric(k1, 4, 2, testLink(), testLink(), FabricConfig{}))

	k2 := sim.NewKernel()
	f, err := NewFabricFromSpec(k2, core.ClusterSpec{
		Topology: core.TopoTree, Workers: 4, PerRack: 2,
		Link: testLink(),
	}, FabricConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := run(f); got != want {
		t.Fatalf("spec-built fabric diverged:\n got %+v\nwant %+v", got, want)
	}

	for _, bad := range []core.ClusterSpec{
		{Topology: core.TopoStar},                 // missing Workers
		{Topology: core.TopoTree, Workers: 4},     // missing PerRack
		{Topology: core.TopoThreeTier, AGGs: 2},   // missing tiers
		{Topology: core.TopoFatTree, KAry: 4},     // missing HostsPerEdge
		{Topology: core.Topology(99), Workers: 2}, // unknown shape
	} {
		if _, err := NewFabricFromSpec(sim.NewKernel(), bad, FabricConfig{}); err == nil {
			t.Errorf("spec %+v: want error", bad)
		}
	}
}
