package multijob

import (
	"time"

	"iswitch/internal/perfmodel"
)

// Summary condenses a multi-job run into the sweep-level metrics the
// job-sweep experiment reports.
type Summary struct {
	// Jobs counts submitted jobs; Ran counts those that completed;
	// Rejected/Queued count admission outcomes (a queued job still ran,
	// just later).
	Jobs, Ran, Rejected, Queued int
	// Makespan is the finish time of the last job (virtual clock).
	Makespan time.Duration
	// MeanRound averages per-round time across jobs that ran.
	MeanRound time.Duration
	// AggThroughputBps is the fabric-wide aggregated-gradient
	// throughput: total gradient bits the switches reduced, divided by
	// the makespan.
	AggThroughputBps float64
	// Fairness is Jain's index over per-job wire bytes (1 = all jobs
	// moved equal traffic).
	Fairness float64
	// CompliantFairness is Jain's index over the achieved wire
	// throughput of the non-adversary jobs (see JainOver) — the
	// isolation metric the adversarial experiments gate on.
	CompliantFairness float64
}

// Summarize condenses per-job results.
func Summarize(results []*JobResult) Summary {
	s := Summary{Jobs: len(results)}
	var roundSum time.Duration
	var gradBytes uint64
	var shares []float64
	for _, r := range results {
		if r.Rejected {
			s.Rejected++
			continue
		}
		if r.Queued {
			s.Queued++
		}
		s.Ran++
		if r.Finished > s.Makespan {
			s.Makespan = r.Finished
		}
		roundSum += r.MeanRound
		gradBytes += r.GradBytes
		shares = append(shares, float64(r.WireBytes))
	}
	if s.Ran > 0 {
		s.MeanRound = roundSum / time.Duration(s.Ran)
	}
	if s.Makespan > 0 {
		s.AggThroughputBps = float64(gradBytes) * 8 / s.Makespan.Seconds()
	}
	s.Fairness = perfmodel.JainFairness(shares)
	s.CompliantFairness = JainOver(results, func(r *JobResult) bool { return !r.Adversary })
	return s
}
