package multijob

import (
	"fmt"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
	"iswitch/internal/switchnet"
)

// Elastic jobs grow and shrink their worker count mid-run. The job
// admits once with SRAM for its full model (demand does not depend on
// worker count), allocates hosts for its largest phase, and runs each
// phase as a synchronous training segment over a prefix of those
// hosts. Between phases, departing workers Leave the control plane
// (shrinking the switch thresholds) and the per-job switch hierarchy
// is re-wired so parents only wait on subtrees that still hold active
// workers; arriving workers Join through the normal Setup path.

// ElasticPhase is one steady-state interval of an elastic job.
type ElasticPhase struct {
	// Workers is the active worker count for this phase (a prefix of
	// the job's allocated hosts).
	Workers int
	// Iterations is how many synchronous iterations the phase runs.
	Iterations int
}

// ElasticPlan schedules worker-count changes mid-run.
type ElasticPlan struct {
	Phases []ElasticPhase
}

// MaxWorkers returns the largest phase's worker count — the host
// allocation an elastic spec needs.
func (e *ElasticPlan) MaxWorkers() int {
	max := 0
	for _, ph := range e.Phases {
		if ph.Workers > max {
			max = ph.Workers
		}
	}
	return max
}

// AutoscalePlan is the autoscale agent: it derives a deterministic
// elastic schedule a demand-driven autoscaler would produce, flexing
// the worker count between minW and maxW across phases. The walk is
// seeded (splitmix64) so runs reproduce exactly under the DES.
func AutoscalePlan(seed uint64, phases, minW, maxW, itersPerPhase int) *ElasticPlan {
	if minW < 1 {
		minW = 1
	}
	if maxW < minW {
		maxW = minW
	}
	plan := &ElasticPlan{}
	x := seed
	w := minW
	for i := 0; i < phases; i++ {
		// splitmix64 step
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		span := maxW - minW + 1
		// Random walk biased toward staying put: ±1 step or a jump.
		switch z % 4 {
		case 0:
			if w < maxW {
				w++
			}
		case 1:
			if w > minW {
				w--
			}
		case 2:
			w = minW + int((z>>8)%uint64(span))
		}
		plan.Phases = append(plan.Phases, ElasticPhase{Workers: w, Iterations: itersPerPhase})
	}
	return plan
}

// wireEdge is one parent-learns-of-child registration in the per-job
// aggregation hierarchy.
type wireEdge struct {
	parent *switchnet.ISwitch
	child  protocol.Addr
}

// wiringFor collects the registrations the given chains need.
func wiringFor(chains [][]*switchnet.ISwitch) map[wireEdge]bool {
	out := make(map[wireEdge]bool)
	for _, chain := range chains {
		for lvl := 0; lvl+1 < len(chain); lvl++ {
			out[wireEdge{chain[lvl+1], chain[lvl].Addr()}] = true
		}
	}
	return out
}

// startElastic runs the job's phases back to back, reconciling switch
// membership between them.
func (s *scheduler) startElastic(jr *jobRun) {
	spec := jr.spec
	agents := s.agents(jr, spec.Workers) // persist across phases
	registered := wiringFor(jr.chains)   // admit wired every chain
	prevWorkers := 0

	var runPhase func(ph int)
	runPhase = func(ph int) {
		if ph >= len(spec.Elastic.Phases) {
			s.finish(jr)
			return
		}
		phase := spec.Elastic.Phases[ph]
		n := phase.Workers

		beginPhase := func() {
			// Re-wire parents to exactly the subtrees with active
			// workers (an unregistered empty subtree would otherwise
			// stall every round at its parent's threshold).
			want := wiringFor(jr.chains[:n])
			for e := range want {
				if !registered[e] {
					e.parent.RegisterChildSwitchJob(jr.id, e.child)
					registered[e] = true
				}
			}
			for e := range registered {
				if !want[e] {
					e.parent.UnregisterChildSwitchJob(jr.id, e.child)
					delete(registered, e)
				}
			}
			prevWorkers = n

			cfg := core.DefaultISWConfig()
			cfg.Job = jr.id
			cfg.RecoveryTimeout = spec.RecoveryTimeout
			cluster := core.NewISWOnFabric(jr.hosts[:n], jr.targets[:n], spec.floats(), n, cfg)
			var stats *core.RunStats
			stats = core.SpawnSync(s.f.K, agents[:n], services(cluster, n), core.SyncConfig{
				Iterations:   phase.Iterations,
				LocalCompute: spec.Workload.LocalCompute,
				WeightUpdate: spec.Workload.WeightUpdate,
			}, func() {
				// Fires when the phase's last worker finishes its final
				// iteration — every IterRecord is in by then.
				jr.elRounds += int64(phase.Iterations)
				jr.elRoundSum += stats.MeanIter() * time.Duration(phase.Iterations)
				jr.elGrad += uint64(phase.Iterations) * uint64(n) * uint64(spec.floats()) * 4
				runPhase(ph + 1)
			})
		}

		if departing := prevWorkers - n; departing > 0 {
			s.leaveAll(jr, jr.hosts[n:prevWorkers], jr.targets[n:prevWorkers], beginPhase)
		} else {
			beginPhase()
		}
	}
	runPhase(0)
}

// leaveAll spawns a Leave handshake for each departing host and calls
// then once every ack has arrived (the fabric is quiescent between
// phases, so the only traffic is these handshakes).
func (s *scheduler) leaveAll(jr *jobRun, hosts []*netsim.Host, targets []protocol.Addr, then func()) {
	remaining := len(hosts)
	if remaining == 0 {
		then()
		return
	}
	for i := range hosts {
		h, target := hosts[i], targets[i]
		s.f.K.Spawn(fmt.Sprintf("elastic-leave-%d", jr.id), func(p *sim.Proc) {
			pkt := protocol.NewControl(h.Addr, target, protocol.ActionLeave, nil)
			pkt.Job = jr.id
			h.Send(pkt)
			for {
				rx := h.Recv(p)
				acked := rx.IsControl() && rx.Action == protocol.ActionAck
				rx.Release()
				if acked {
					break
				}
			}
			if remaining--; remaining == 0 {
				then()
			}
		})
	}
}
