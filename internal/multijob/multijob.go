// Package multijob runs several distributed RL training jobs
// concurrently over one simulated in-switch-aggregation fabric.
//
// The paper evaluates iSwitch with one job owning the switch; a
// production rack is shared. This package models that sharing end to
// end: every job gets its own aggregation context on each switch it
// touches (segment buffers carved from a finite SRAM pool, its own
// membership table and threshold), data packets are demultiplexed by
// the JobID carried in the IPv4 Identification field, concurrent jobs'
// bursts contend on the accelerator's 256-bit bus, and an admission
// controller queues jobs whose SRAM demand does not fit. Admission
// order is a pluggable Policy (FabricConfig.Admission): the default is
// strict FIFO, so a large job is never starved by small latecomers;
// WeightedFair backfills small jobs into the gaps with a bounded
// bypass count, and PriorityPreempt checkpoints lower-priority
// preemptible tenants out of the switches to admit urgent work (the
// contract is DESIGN.md §10).
//
// A fabric carrying exactly one admitted job is bit- and clock-
// identical to the single-tenant path (pinned by tests): the job tag
// costs zero wire bytes, a lone job never waits on the shared bus, and
// SRAM reservation is control-plane-only.
package multijob

import (
	"fmt"
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
	"iswitch/internal/switchnet"
)

// Mode selects a job's training discipline.
type Mode int

const (
	// ModeSync is synchronous training (global barrier per iteration).
	ModeSync Mode = iota
	// ModeAsync is the asynchronous LGC/LWU pipeline (Algorithm 1).
	ModeAsync
)

// String names the mode for reports.
func (m Mode) String() string {
	if m == ModeAsync {
		return "async"
	}
	return "sync"
}

// JobSpec describes one training job submitted to a shared fabric.
type JobSpec struct {
	// Name labels the job in reports (defaults to the workload name).
	Name string
	// Workload supplies the model size and calibrated compute/update
	// times (perfmodel Table 1).
	Workload perfmodel.Workload
	// Workers is how many fabric hosts the job occupies.
	Workers int
	// Mode selects sync or async training.
	Mode Mode
	// Iterations is the synchronous iteration count (ModeSync).
	Iterations int
	// Updates and StalenessBound drive the asynchronous pipeline
	// (ModeAsync).
	Updates        int64
	StalenessBound int64
	// ModelFloats overrides the gradient length (0 selects the
	// workload's full model — tests use small overrides to keep
	// simulations fast without changing the code path).
	ModelFloats int
	// NewAgent, when non-nil, constructs worker i's agent (equivalence
	// tests inject seeded real agents); nil selects timing-only
	// synthetic agents.
	NewAgent func(worker int) rl.Agent

	// SubmitAt delays the job's submission to the admission queue
	// (virtual time; 0 submits at simulation start).
	SubmitAt time.Duration
	// Weight is the job's fair share under WeightedFair admission and
	// egress shaping (<= 0 counts as 1). When any job in a multi-job
	// run sets a positive weight, per-job token buckets are installed
	// on every contended switch port so a job's share of an
	// oversubscribed link is bounded by its weight fraction.
	Weight float64
	// Priority orders admission under PriorityPreempt (higher wins).
	Priority int
	// Preemptible consents to checkpoint/restore: the scheduler may
	// serialize this job's switch contexts (partial aggregates, dedup
	// bitmaps, membership) to make room for another tenant and restore
	// them later, bit-identically. Requires ModeSync and a positive
	// RecoveryTimeout — preempted workers ride the loss-recovery path
	// (retransmission + switch dedup) across the gap.
	Preemptible bool
	// RecoveryTimeout arms worker-side loss recovery (core.ISWConfig);
	// it also enables the switch dedup bitmap for this job, which
	// checkpoint/restore and link-fault tolerance both require.
	RecoveryTimeout time.Duration
	// Elastic, when non-nil, flexes the job's worker count mid-run
	// (ModeSync only). Workers must cover the largest phase.
	Elastic *ElasticPlan
	// Adversary, when non-nil, runs the job as an open-loop adversarial
	// tenant (no training: a tagged data flood for Duration) used by
	// the isolation experiments.
	Adversary *AdversaryPlan
	// Faults injects link faults (loss, down windows) on this job's
	// worker NICs; Worker indices are job-local. Crash and switch
	// faults are not supported here — use core.ClusterSpec for those.
	Faults *netsim.FaultPlan
}

func (s JobSpec) name() string {
	if s.Name != "" {
		return s.Name
	}
	return s.Workload.Name
}

func (s JobSpec) floats() int {
	if s.ModelFloats > 0 {
		return s.ModelFloats
	}
	return s.Workload.Floats()
}

// FabricConfig parameterizes the shared-resource model of every switch
// in a fabric.
type FabricConfig struct {
	// SRAMBytes is each switch's aggregation SRAM (0 selects
	// accel.DefaultSRAMBytes).
	SRAMBytes int64
	// Policy selects how SRAM is carved between jobs.
	Policy accel.Partition
	// MaxJobs bounds the static partition's slot count (0 selects 8).
	MaxJobs int
	// Admission selects the queue policy (nil selects strict FIFO).
	Admission Policy
}

// Fabric is a built multi-tenant topology: hosts, iSwitch-enabled
// switches with per-switch SRAM pools and shared buses, and the
// per-host aggregation path (contributing switch up to the root) that
// admission walks.
type Fabric struct {
	K     *sim.Kernel
	Hosts []*netsim.Host

	// target[i] is the switch address host i's gradients go to; path[i]
	// is host i's aggregation chain, leaf switch first, root last.
	target []protocol.Addr
	path   [][]*switchnet.ISwitch

	// Switches lists every iSwitch in the fabric (deduped).
	Switches []*switchnet.ISwitch

	cfg  FabricConfig
	next int // host-allocation cursor
}

func (f *Fabric) arm(cfg FabricConfig) {
	f.cfg = cfg
	for _, is := range f.Switches {
		is.SetTenancy(accel.NewSRAMPool(cfg.SRAMBytes, cfg.Policy, cfg.MaxJobs),
			accel.NewSharedBus())
	}
}

// NewStarFabric builds a single-switch fabric with nHosts workers.
func NewStarFabric(k *sim.Kernel, nHosts int, link netsim.LinkConfig, cfg FabricConfig) *Fabric {
	c := switchnet.BuildStar(k, nHosts, link)
	f := &Fabric{K: k, Hosts: c.Workers, Switches: []*switchnet.ISwitch{c.IS}}
	for range c.Workers {
		f.target = append(f.target, c.IS.Addr())
		f.path = append(f.path, []*switchnet.ISwitch{c.IS})
	}
	f.arm(cfg)
	return f
}

// NewTreeFabric builds the rack-scale two-level fabric: nHosts workers
// in racks of perRack under ToR switches beneath one root.
func NewTreeFabric(k *sim.Kernel, nHosts, perRack int, edge, uplink netsim.LinkConfig, cfg FabricConfig) *Fabric {
	c := switchnet.BuildTreeN(k, nHosts, perRack, edge, uplink)
	f := &Fabric{K: k, Hosts: c.Workers}
	f.Switches = append(f.Switches, c.Root)
	f.Switches = append(f.Switches, c.ToRs...)
	for i := range c.Workers {
		tor := c.ToROf(i)
		f.target = append(f.target, tor.Addr())
		f.path = append(f.path, []*switchnet.ISwitch{tor, c.Root})
	}
	f.arm(cfg)
	return f
}

// NewThreeTierFabric builds the full ToR→AGG→core fabric.
func NewThreeTierFabric(k *sim.Kernel, nAGGs, torsPerAGG, hostsPerToR int,
	edge, aggLink, coreLink netsim.LinkConfig, cfg FabricConfig) *Fabric {
	c := switchnet.BuildThreeTier(k, nAGGs, torsPerAGG, hostsPerToR, edge, aggLink, coreLink)
	f := &Fabric{K: k, Hosts: c.Workers}
	f.Switches = append(f.Switches, c.Core)
	f.Switches = append(f.Switches, c.AGGs...)
	f.Switches = append(f.Switches, c.ToRs...)
	for i := range c.Workers {
		tor := c.ToROf3(i)
		agg := c.AGGs[c.Net.AGGOf[c.Net.ToROf[i]]]
		f.target = append(f.target, tor.Addr())
		f.path = append(f.path, []*switchnet.ISwitch{tor, agg, c.Core})
	}
	f.arm(cfg)
	return f
}

// NewFatTreeFabric builds a k-ary fat-tree (kAry pods, kAry/2 edge and
// aggregation switches per pod, hostsPerEdge workers per edge switch)
// with iSwitch aggregation on the embedded spine tree: each worker's
// chain is edge → pod agg0 → core0. kAry=8 with hostsPerEdge=32 is the
// 1024-worker rackscale shape the calendar-queue kernel is sized for.
func NewFatTreeFabric(k *sim.Kernel, kAry, hostsPerEdge int,
	edge, aggLink, coreLink netsim.LinkConfig, cfg FabricConfig) *Fabric {
	c := switchnet.BuildFatTree(k, kAry, hostsPerEdge, edge, aggLink, coreLink)
	f := &Fabric{K: k, Hosts: c.Workers}
	f.Switches = append(f.Switches, c.Core)
	for pod := range c.Edges {
		f.Switches = append(f.Switches, c.Aggs[pod])
		f.Switches = append(f.Switches, c.Edges[pod]...)
	}
	for i := range c.Workers {
		es := c.EdgeOfWorker(i)
		agg := c.Aggs[c.Net.PodOf[i]]
		f.target = append(f.target, es.Addr())
		f.path = append(f.path, []*switchnet.ISwitch{es, agg, c.Core})
	}
	f.arm(cfg)
	return f
}

// NewFabricFromSpec builds a multi-tenant fabric from the same
// declarative core.ClusterSpec the single-job Build consumes: the
// spec's topology shape and link tiers pick the constructor, cfg
// supplies the tenancy model (SRAM partition, admission policy). The
// spec's Mode and per-mode configs are ignored — every tenant names
// its own workload in its JobSpec.
func NewFabricFromSpec(k *sim.Kernel, spec core.ClusterSpec, cfg FabricConfig) (*Fabric, error) {
	link := spec.Link
	if link == (netsim.LinkConfig{}) {
		link = netsim.TenGbE()
	}
	uplink := spec.Uplink
	if uplink == (netsim.LinkConfig{}) {
		uplink = link
	}
	coreLink := spec.CoreLink
	if coreLink == (netsim.LinkConfig{}) {
		coreLink = uplink
	}
	switch spec.Topology {
	case core.TopoStar:
		if spec.Workers <= 0 {
			return nil, fmt.Errorf("multijob: star fabric needs Workers > 0")
		}
		return NewStarFabric(k, spec.Workers, link, cfg), nil
	case core.TopoTree:
		if spec.Workers <= 0 || spec.PerRack <= 0 {
			return nil, fmt.Errorf("multijob: tree fabric needs Workers and PerRack > 0")
		}
		return NewTreeFabric(k, spec.Workers, spec.PerRack, link, uplink, cfg), nil
	case core.TopoThreeTier:
		if spec.AGGs <= 0 || spec.ToRsPerAGG <= 0 || spec.HostsPerToR <= 0 {
			return nil, fmt.Errorf("multijob: three-tier fabric needs AGGs, ToRsPerAGG, HostsPerToR > 0")
		}
		return NewThreeTierFabric(k, spec.AGGs, spec.ToRsPerAGG, spec.HostsPerToR,
			link, uplink, coreLink, cfg), nil
	case core.TopoFatTree:
		if spec.KAry <= 0 || spec.HostsPerEdge <= 0 {
			return nil, fmt.Errorf("multijob: fat-tree fabric needs KAry and HostsPerEdge > 0")
		}
		return NewFatTreeFabric(k, spec.KAry, spec.HostsPerEdge,
			link, uplink, coreLink, cfg), nil
	default:
		return nil, fmt.Errorf("multijob: unsupported fabric topology %v", spec.Topology)
	}
}

// FreeHosts reports how many fabric hosts are still unassigned.
func (f *Fabric) FreeHosts() int { return len(f.Hosts) - f.next }

// allocHosts claims the next n hosts for a job.
func (f *Fabric) allocHosts(n int) ([]*netsim.Host, []protocol.Addr, [][]*switchnet.ISwitch, error) {
	if n <= 0 {
		return nil, nil, nil, fmt.Errorf("multijob: job needs at least one worker")
	}
	if f.next+n > len(f.Hosts) {
		return nil, nil, nil, fmt.Errorf("multijob: fabric has %d free hosts, job wants %d",
			f.FreeHosts(), n)
	}
	lo := f.next
	f.next += n
	return f.Hosts[lo : lo+n], f.target[lo : lo+n], f.path[lo : lo+n], nil
}

// switchesFor dedupes the switches on a set of aggregation chains,
// leaf levels first (admission order does not matter; eviction walks
// the same list).
func switchesFor(chains [][]*switchnet.ISwitch) []*switchnet.ISwitch {
	seen := make(map[*switchnet.ISwitch]bool)
	var out []*switchnet.ISwitch
	for level := 0; ; level++ {
		any := false
		for _, chain := range chains {
			if level >= len(chain) {
				continue
			}
			any = true
			if is := chain[level]; !seen[is] {
				seen[is] = true
				out = append(out, is)
			}
		}
		if !any {
			return out
		}
	}
}

// admit reserves job contexts on every switch of the job's chains,
// rolling back on partial failure, then wires the per-job hierarchy
// membership (each parent learns which child switches forward the
// job's partial aggregates).
func (f *Fabric) admit(job protocol.JobID, modelFloats int, chains [][]*switchnet.ISwitch) error {
	sws := switchesFor(chains)
	for i, is := range sws {
		if err := is.AdmitJob(job, uint64(modelFloats)); err != nil {
			for _, done := range sws[:i] {
				done.EvictJob(job)
			}
			return err
		}
	}
	for _, chain := range chains {
		for level := 0; level+1 < len(chain); level++ {
			chain[level+1].RegisterChildSwitchJob(job, chain[level].Addr())
		}
	}
	return nil
}

// evict tears the job's contexts down on every involved switch,
// releasing SRAM for queued jobs.
func (f *Fabric) evict(job protocol.JobID, chains [][]*switchnet.ISwitch) {
	for _, is := range switchesFor(chains) {
		is.EvictJob(job)
	}
}

// feasible reports whether a job of the given model size could ever be
// admitted, even on an otherwise-empty fabric. Infeasible jobs are
// rejected outright rather than queued (a queued infeasible job would
// head-block the FIFO forever).
func (f *Fabric) feasible(modelFloats int) bool {
	demand := accel.ContextDemand(modelFloats, protocol.FloatsPerPacket)
	for _, is := range f.Switches {
		pool := is.SRAMPool()
		if pool == nil {
			continue
		}
		limit := pool.Capacity()
		if pool.Policy() == accel.PartitionStatic {
			// Static partitioning caps every context at one slot; a
			// demand above that can never be reserved, even on an
			// otherwise empty switch.
			limit = pool.Capacity() / int64(pool.MaxJobs())
		}
		if demand > limit {
			return false
		}
	}
	return true
}

// WireBytesFor sums the job-tagged bytes transmitted on every link of
// the fabric (each packet counted once per hop, so this is a
// byte·hops bandwidth-usage measure, the input to fair-share
// accounting).
func (f *Fabric) WireBytesFor(job protocol.JobID) uint64 {
	var total uint64
	for _, is := range f.Switches {
		for _, port := range is.Switch().Ports() {
			total += port.TxBytesByJob(job)
		}
	}
	for _, h := range f.Hosts {
		total += h.Port().TxBytesByJob(job)
	}
	return total
}
