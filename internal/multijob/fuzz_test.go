package multijob

import (
	"testing"
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// FuzzScheduler feeds randomized job mixes — policies, partitions,
// weights, priorities, staggered arrivals, preemptible and async jobs
// — through a real simulated fabric and checks the scheduler's
// invariants against what amounts to a reference reservation model:
//
//   - no SRAM leak: every pool ends with zero contexts and zero bytes
//     (pool bookkeeping is exact across admit/preempt/restore/evict);
//   - no double admit / lost job: Run itself errors if a job is ever
//     admitted twice (Reserve rejects the duplicate and the job
//     deadlocks) or never admitted;
//   - no permanent starvation: every feasible job finishes, queued or
//     not, and sync jobs complete exactly their iteration count.
func FuzzScheduler(f *testing.F) {
	f.Add([]byte{0, 0, 0, 2, 0x00, 0x10, 0x21, 0x05})
	f.Add([]byte{1, 0, 1, 3, 0x13, 0x02, 0xff, 0x30, 0x44, 0x01})
	f.Add([]byte{2, 1, 0, 3, 0x81, 0x92, 0x00, 0x07, 0xa3, 0x55})
	f.Add([]byte{1, 1, 2, 4, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			t.Skip()
		}
		wl, err := perfmodel.WorkloadByName("PPO")
		if err != nil {
			t.Fatal(err)
		}
		var policy Policy
		switch data[0] % 3 {
		case 1:
			policy = WeightedFair(2) // tight bypass bound: force the starvation path
		case 2:
			policy = PriorityPreempt()
		}
		partition := accel.PartitionDemand
		if data[1]%2 == 1 {
			partition = accel.PartitionStatic
		}
		// Pool sizes chosen around the demand of the largest model below
		// so admission, queueing and rejection all get exercised.
		demand := accel.ContextDemand(1200, protocol.FloatsPerPacket)
		pools := []int64{demand + demand/2, 3 * demand, accel.DefaultSRAMBytes}
		sram := pools[int(data[2])%len(pools)]

		nJobs := 1 + int(data[3])%4
		if len(data) < 4+nJobs {
			t.Skip()
		}
		floatsChoices := []int{300, 500, 800, 1200}
		var specs []JobSpec
		hosts := 0
		for j := 0; j < nJobs; j++ {
			b := data[4+j]
			spec := JobSpec{
				Workload:    wl,
				Workers:     1 + int(b>>7),              // 1..2
				ModelFloats: floatsChoices[int(b>>5)&3], // 300..1200
				Iterations:  1 + int(b>>4)&1,            // 1..2
				Weight:      float64(int(b>>2)&3) / 2,   // 0, .5, 1, 1.5
				Priority:    int(b >> 6),
			}
			switch b & 3 {
			case 1:
				spec.Mode = ModeAsync
				spec.Updates, spec.StalenessBound = 2, 1
			case 2:
				spec.Preemptible = true
				spec.RecoveryTimeout = 3 * time.Millisecond
			case 3:
				spec.SubmitAt = time.Duration(1+int(b>>3)&3) * 5 * time.Millisecond
			}
			hosts += spec.Workers
			specs = append(specs, spec)
		}

		k := sim.NewKernel()
		fab := NewStarFabric(k, hosts, testLink(), FabricConfig{
			SRAMBytes: sram, Policy: partition, MaxJobs: 2, Admission: policy,
		})
		res, err := Run(fab, specs)
		if err != nil {
			t.Fatalf("scheduler invariant broken (deadlock/double-admit/lost job): %v", err)
		}
		for i, r := range res {
			if r.Rejected {
				if r.Started != 0 || r.Finished != 0 {
					t.Fatalf("job %d rejected but ran: %+v", i, r)
				}
				continue
			}
			if r.Finished == 0 {
				t.Fatalf("job %d never finished (starved): %+v", i, r)
			}
			want := int64(specs[i].Iterations)
			if specs[i].Mode == ModeAsync {
				want = specs[i].Updates
			}
			if r.Rounds != want {
				t.Fatalf("job %d completed %d rounds, want %d", i, r.Rounds, want)
			}
		}
		for _, is := range fab.Switches {
			pool := is.SRAMPool()
			if pool == nil {
				continue
			}
			if pool.Jobs() != 0 || pool.Used() != 0 {
				t.Fatalf("SRAM leak: %d contexts, %d bytes still reserved", pool.Jobs(), pool.Used())
			}
		}
	})
}
