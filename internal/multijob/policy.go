package multijob

import (
	"sort"

	"iswitch/internal/protocol"
)

// Admission policies. The scheduler delegates two decisions to a
// pluggable Policy: in what order queued jobs are offered the freed
// SRAM (Order), and which running tenants may be checkpointed out of
// the switches to make room for a job that does not fit (Victims).
// FIFO — the historical behavior — is the zero-config default and is
// pinned bit-identical by the equivalence tests.

// JobInfo is the scheduler's read-only view of a job for policy
// decisions.
type JobInfo struct {
	ID   protocol.JobID
	Name string
	// Arrival is the submission index (spec order), the FIFO key.
	Arrival int
	// Weight is the job's fair share (<= 0 counts as 1).
	Weight float64
	// Priority orders jobs under the priority policy (higher wins).
	Priority int
	// DemandBytes is the per-switch SRAM the job reserves.
	DemandBytes int64
	// Bypassed counts how many times a later-arriving job was admitted
	// while this one stayed queued (the starvation signal).
	Bypassed int
	// Preemptible marks jobs that consented to checkpoint/restore.
	Preemptible bool
	// Preempted marks queued jobs holding a checkpoint awaiting
	// restore (they re-enter through RestoreJob, not AdmitJob).
	Preempted bool
}

// Policy decides admission order and preemption victims.
type Policy interface {
	// Name labels the policy in reports and bench tables.
	Name() string
	// Order returns indices into queue in the order admission should be
	// attempted this pass. Returning a prefix (fewer indices than
	// queued jobs) hard-blocks the rest of the queue this pass.
	Order(queue []JobInfo) []int
	// Victims nominates running jobs the scheduler may preempt to make
	// room for cand, best victim first. The scheduler preempts the
	// shortest prefix that actually frees enough SRAM, and only when
	// that prediction says cand then fits. Nil means never preempt.
	Victims(cand JobInfo, running []JobInfo) []protocol.JobID
	// Strict reports head-of-line blocking: when true, the first job in
	// Order that fails admission ends the pass (no backfilling).
	Strict() bool
}

// weightOr1 treats unset weights as 1 so unweighted specs share
// equally under the weighted-fair policy.
func weightOr1(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return w
}

// fifo is the historical strict-FIFO admission order.
type fifo struct{}

// FIFO returns the default policy: strictly first-come-first-served,
// head-of-line blocking, never preempting. A large job is never
// starved by small latecomers, at the cost of idling SRAM behind a
// blocked head.
func FIFO() Policy { return fifo{} }

func (fifo) Name() string { return "fifo" }

func (fifo) Order(queue []JobInfo) []int {
	order := make([]int, len(queue))
	for i := range order {
		order[i] = i
	}
	return order
}

func (fifo) Victims(JobInfo, []JobInfo) []protocol.JobID { return nil }

func (fifo) Strict() bool { return true }

// weightedFair backfills in credit order, with an anti-starvation
// bypass bound.
type weightedFair struct {
	maxBypass int
	credit    map[protocol.JobID]float64
}

// WeightedFair returns a backfilling policy: each admission pass every
// queued job earns credit proportional to its weight and jobs are
// offered SRAM in credit order, so small jobs start in the gaps a
// blocked large job leaves. Starvation is bounded: a job bypassed
// maxBypass times (<= 0 selects 8) hard-blocks the queue until it
// starts, and running preemptible tenants become eviction candidates
// (lightest weight first) to force the issue.
func WeightedFair(maxBypass int) Policy {
	if maxBypass <= 0 {
		maxBypass = 8
	}
	return &weightedFair{maxBypass: maxBypass, credit: make(map[protocol.JobID]float64)}
}

func (w *weightedFair) Name() string { return "weighted-fair" }

func (w *weightedFair) Order(queue []JobInfo) []int {
	// A starved job freezes the queue: it alone may be tried until it
	// fits (its Victims call can preempt to make that happen).
	for i, j := range queue {
		if j.Bypassed >= w.maxBypass {
			return []int{i}
		}
	}
	order := make([]int, len(queue))
	for i, j := range queue {
		order[i] = i
		w.credit[j.ID] += weightOr1(j.Weight)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := w.credit[queue[order[a]].ID], w.credit[queue[order[b]].ID]
		if ca != cb {
			return ca > cb
		}
		return queue[order[a]].Arrival < queue[order[b]].Arrival
	})
	return order
}

func (w *weightedFair) Victims(cand JobInfo, running []JobInfo) []protocol.JobID {
	if cand.Bypassed < w.maxBypass {
		return nil // preemption is the anti-starvation backstop only
	}
	return victimsBy(running, func(a, b JobInfo) bool {
		wa, wb := weightOr1(a.Weight), weightOr1(b.Weight)
		if wa != wb {
			return wa < wb // evict the lightest share first
		}
		return a.Arrival > b.Arrival // then the latest arrival
	})
}

func (w *weightedFair) Strict() bool { return false }

// priorityPreempt runs strictly by priority and preempts lower-
// priority preemptible tenants to admit a higher-priority job.
type priorityPreempt struct{}

// PriorityPreempt returns the priority policy: the queue is ordered by
// descending JobSpec.Priority (FIFO within a priority), head-of-line
// blocking within that order, and a job that does not fit may
// checkpoint out running preemptible tenants of strictly lower
// priority (lowest first). Equal or higher priorities are never
// victims, so the policy cannot livelock two jobs preempting each
// other.
func PriorityPreempt() Policy { return priorityPreempt{} }

func (priorityPreempt) Name() string { return "priority" }

func (priorityPreempt) Order(queue []JobInfo) []int {
	order := make([]int, len(queue))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := queue[order[a]].Priority, queue[order[b]].Priority
		if pa != pb {
			return pa > pb
		}
		return queue[order[a]].Arrival < queue[order[b]].Arrival
	})
	return order
}

func (priorityPreempt) Victims(cand JobInfo, running []JobInfo) []protocol.JobID {
	lower := make([]JobInfo, 0, len(running))
	for _, r := range running {
		if r.Priority < cand.Priority {
			lower = append(lower, r)
		}
	}
	return victimsBy(lower, func(a, b JobInfo) bool {
		if a.Priority != b.Priority {
			return a.Priority < b.Priority // evict the lowest priority first
		}
		return a.Arrival > b.Arrival
	})
}

func (priorityPreempt) Strict() bool { return true }

// victimsBy filters running jobs to the preemptible ones and sorts
// them by the given preference.
func victimsBy(running []JobInfo, less func(a, b JobInfo) bool) []protocol.JobID {
	cands := make([]JobInfo, 0, len(running))
	for _, r := range running {
		if r.Preemptible {
			cands = append(cands, r)
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return less(cands[a], cands[b]) })
	out := make([]protocol.JobID, len(cands))
	for i, c := range cands {
		out[i] = c.ID
	}
	return out
}
