package multijob

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/sim"
)

// Benchmarks for the multi-tenant scheduler: wall-clock cost of
// simulating J co-running jobs, plus the sweep metrics recorded into
// BENCH_multijob.json (env-gated, see TestWriteBenchJSON).

// benchSpecs builds J small jobs cycling the four paper workloads
// (model sizes scaled down so a bench sweep stays sub-second).
func benchSpecs(j int) []JobSpec {
	wls := perfmodel.Workloads()
	floats := []int{2000, 1600, 1000, 1300} // keeps the DQN>A2C>DDPG>PPO size ordering
	specs := make([]JobSpec, j)
	for i := range specs {
		wl := wls[i%len(wls)]
		specs[i] = JobSpec{
			Name: fmt.Sprintf("%s-%d", wl.Name, i), Workload: wl,
			Workers: 2, Mode: ModeSync, Iterations: 2,
			ModelFloats: floats[i%len(floats)],
		}
	}
	return specs
}

func runBenchSweep(tb testing.TB, j int) Summary {
	tb.Helper()
	k := sim.NewKernel()
	f := NewStarFabric(k, 2*j, testLink(), FabricConfig{})
	res, err := Run(f, benchSpecs(j))
	if err != nil {
		tb.Fatal(err)
	}
	return Summarize(res)
}

// benchAdversarialSummary runs the adversarial fairness scenario the
// regression gate and the bench JSON both record: two racks of four on
// oversubscribed uplinks, three weighted wire-bound tenants, and an
// open-loop flood adversary sharing a rack with one of them, under
// weighted-fair admission with egress policing armed.
func benchAdversarialSummary(tb testing.TB) Summary {
	tb.Helper()
	wl := perfmodel.Workload{
		Name:         "wire",
		LocalCompute: 100 * time.Microsecond,
		WeightUpdate: 20 * time.Microsecond,
	}
	k := sim.NewKernel()
	uplink := netsim.TenGbE()
	uplink.BitsPerSecond = 2.5e9
	f := NewTreeFabric(k, 8, 4, netsim.TenGbE(), uplink,
		FabricConfig{Admission: WeightedFair(0)})
	specs := make([]JobSpec, 0, 4)
	for _, name := range []string{"a", "b", "c"} {
		specs = append(specs, JobSpec{
			Name: name, Workload: wl, Workers: 2, Mode: ModeSync,
			Iterations: 12, ModelFloats: 20000, Weight: 1,
		})
	}
	specs = append(specs, JobSpec{
		Name: "adv", Workload: wl, Workers: 2, ModelFloats: 20000, Weight: 1,
		Adversary: &AdversaryPlan{Duration: 10 * time.Millisecond},
	})
	res, err := Run(f, specs)
	if err != nil {
		tb.Fatal(err)
	}
	return Summarize(res)
}

// TestAdversarialFairnessRegression is the always-on ratio gate for the
// isolation headline: compliant tenants' Jain fairness under an active
// adversary must stay at or above 0.9. It runs on every `go test`, not
// just the env-gated JSON emission, so a scheduler or policer
// regression fails CI directly.
func TestAdversarialFairnessRegression(t *testing.T) {
	sum := benchAdversarialSummary(t)
	if sum.CompliantFairness < 0.9 {
		t.Errorf("adversarial compliant Jain = %.3f, want >= 0.9", sum.CompliantFairness)
	}
	if sum.Ran != 4 {
		t.Errorf("ran %d of 4 jobs", sum.Ran)
	}
}

// BenchmarkMultiJobSweep measures the wall-clock cost of a full
// J-tenant simulated sweep (scheduler + fabric + training processes).
func BenchmarkMultiJobSweep(b *testing.B) {
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs-%d", j), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runBenchSweep(b, j)
			}
		})
	}
}

// --- BENCH_multijob.json emission --------------------------------------

type benchRow struct {
	Jobs              int     `json:"jobs"`
	MakespanMs        float64 `json:"makespan_ms"`
	MeanRoundMs       float64 `json:"mean_round_ms"`
	AggThroughputGbps float64 `json:"agg_throughput_gbps"`
	Fairness          float64 `json:"fairness"`
	WallMs            float64 `json:"wall_ms"`
}

// benchAdvRow records the adversarial fairness scenario (see
// benchAdversarialSummary): the compliant Jain figure is the one the
// always-on regression test gates at >= 0.9.
type benchAdvRow struct {
	Jobs          int     `json:"jobs"`
	CompliantJain float64 `json:"compliant_jain"`
	Fairness      float64 `json:"fairness"`
	MakespanMs    float64 `json:"makespan_ms"`
	WallMs        float64 `json:"wall_ms"`
}

type benchDoc struct {
	GOARCH      string      `json:"goarch"`
	NumCPU      int         `json:"num_cpu"`
	Rows        []benchRow  `json:"sweeps"`
	Adversarial benchAdvRow `json:"adversarial"`
}

// TestWriteBenchJSON records the multi-tenant sweep trajectory to the
// file named by BENCH_MULTIJOB_JSON (skipped when unset, so a plain
// `go test ./...` never writes files). CI uses:
//
//	BENCH_MULTIJOB_JSON=BENCH_multijob.json go test -run WriteBenchJSON ./internal/multijob
func TestWriteBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_MULTIJOB_JSON")
	if out == "" {
		t.Skip("BENCH_MULTIJOB_JSON not set")
	}
	doc := benchDoc{GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	for _, j := range []int{1, 2, 4, 8} {
		start := time.Now()
		sum := runBenchSweep(t, j)
		wall := time.Since(start)
		doc.Rows = append(doc.Rows, benchRow{
			Jobs:              j,
			MakespanMs:        float64(sum.Makespan) / 1e6,
			MeanRoundMs:       float64(sum.MeanRound) / 1e6,
			AggThroughputGbps: sum.AggThroughputBps / 1e9,
			Fairness:          sum.Fairness,
			WallMs:            float64(wall.Nanoseconds()) / 1e6,
		})
	}
	advStart := time.Now()
	advSum := benchAdversarialSummary(t)
	doc.Adversarial = benchAdvRow{
		Jobs:          advSum.Jobs,
		CompliantJain: advSum.CompliantFairness,
		Fairness:      advSum.Fairness,
		MakespanMs:    float64(advSum.Makespan) / 1e6,
		WallMs:        float64(time.Since(advStart).Nanoseconds()) / 1e6,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
