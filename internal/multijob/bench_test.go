package multijob

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"iswitch/internal/perfmodel"
	"iswitch/internal/sim"
)

// Benchmarks for the multi-tenant scheduler: wall-clock cost of
// simulating J co-running jobs, plus the sweep metrics recorded into
// BENCH_multijob.json (env-gated, see TestWriteBenchJSON).

// benchSpecs builds J small jobs cycling the four paper workloads
// (model sizes scaled down so a bench sweep stays sub-second).
func benchSpecs(j int) []JobSpec {
	wls := perfmodel.Workloads()
	floats := []int{2000, 1600, 1000, 1300} // keeps the DQN>A2C>DDPG>PPO size ordering
	specs := make([]JobSpec, j)
	for i := range specs {
		wl := wls[i%len(wls)]
		specs[i] = JobSpec{
			Name: fmt.Sprintf("%s-%d", wl.Name, i), Workload: wl,
			Workers: 2, Mode: ModeSync, Iterations: 2,
			ModelFloats: floats[i%len(floats)],
		}
	}
	return specs
}

func runBenchSweep(tb testing.TB, j int) Summary {
	tb.Helper()
	k := sim.NewKernel()
	f := NewStarFabric(k, 2*j, testLink(), FabricConfig{})
	res, err := Run(f, benchSpecs(j))
	if err != nil {
		tb.Fatal(err)
	}
	return Summarize(res)
}

// BenchmarkMultiJobSweep measures the wall-clock cost of a full
// J-tenant simulated sweep (scheduler + fabric + training processes).
func BenchmarkMultiJobSweep(b *testing.B) {
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("jobs-%d", j), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runBenchSweep(b, j)
			}
		})
	}
}

// --- BENCH_multijob.json emission --------------------------------------

type benchRow struct {
	Jobs              int     `json:"jobs"`
	MakespanMs        float64 `json:"makespan_ms"`
	MeanRoundMs       float64 `json:"mean_round_ms"`
	AggThroughputGbps float64 `json:"agg_throughput_gbps"`
	Fairness          float64 `json:"fairness"`
	WallMs            float64 `json:"wall_ms"`
}

type benchDoc struct {
	GOARCH string     `json:"goarch"`
	NumCPU int        `json:"num_cpu"`
	Rows   []benchRow `json:"sweeps"`
}

// TestWriteBenchJSON records the multi-tenant sweep trajectory to the
// file named by BENCH_MULTIJOB_JSON (skipped when unset, so a plain
// `go test ./...` never writes files). CI uses:
//
//	BENCH_MULTIJOB_JSON=BENCH_multijob.json go test -run WriteBenchJSON ./internal/multijob
func TestWriteBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_MULTIJOB_JSON")
	if out == "" {
		t.Skip("BENCH_MULTIJOB_JSON not set")
	}
	doc := benchDoc{GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	for _, j := range []int{1, 2, 4, 8} {
		start := time.Now()
		sum := runBenchSweep(t, j)
		wall := time.Since(start)
		doc.Rows = append(doc.Rows, benchRow{
			Jobs:              j,
			MakespanMs:        float64(sum.Makespan) / 1e6,
			MeanRoundMs:       float64(sum.MeanRound) / 1e6,
			AggThroughputGbps: sum.AggThroughputBps / 1e9,
			Fairness:          sum.Fairness,
			WallMs:            float64(wall.Nanoseconds()) / 1e6,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
