package multijob

import (
	"fmt"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/switchnet"
)

// JobResult is one job's outcome on the shared fabric.
type JobResult struct {
	Job      protocol.JobID
	Name     string
	Workload string
	Mode     Mode
	Workers  int
	// ModelFloats is the gradient length the job actually ran with.
	ModelFloats int

	// Rejected jobs can never fit the fabric (demand above a switch's
	// SRAM capacity) and did not run at all.
	Rejected bool
	// Queued reports whether admission control deferred the job behind
	// earlier tenants before it started.
	Queued bool

	// Started and Finished are virtual-clock bounds of the job's run
	// (Started > 0 for jobs that waited in the admission queue).
	Started, Finished time.Duration
	// MeanRound is the mean per-iteration (sync) or inter-update
	// (async) time across the job's workers.
	MeanRound time.Duration
	// Rounds is iterations (sync) or weight updates (async) completed.
	Rounds int64
	// GradBytes is the gradient volume the fabric aggregated for this
	// job: rounds × workers × model bytes.
	GradBytes uint64
	// WireBytes is the job-tagged traffic summed over every fabric link
	// (byte·hops), the fair-share accounting input.
	WireBytes uint64

	// Sync/Async expose the underlying run statistics (exactly one is
	// non-nil for jobs that ran).
	Sync  *core.RunStats
	Async *core.AsyncStats
}

type jobRun struct {
	spec    JobSpec
	id      protocol.JobID
	hosts   []*netsim.Host
	targets []protocol.Addr
	chains  [][]*switchnet.ISwitch
	res     *JobResult
	started bool
}

type scheduler struct {
	f *Fabric
	// queue holds jobs awaiting admission, FIFO.
	queue   []*jobRun
	running int
	all     []*jobRun
}

// Run submits specs to the fabric in order and simulates until every
// admitted job completes. Admission is strictly FIFO: a job that does
// not fit waits for running tenants to finish and release SRAM, and no
// later job may jump the queue — the deliberate anti-starvation choice
// (a backfilling scheduler would start small jobs opportunistically but
// could starve a large one indefinitely). Jobs whose demand exceeds a
// switch's SRAM capacity outright are marked Rejected and never run.
// Results are returned in spec order.
func Run(f *Fabric, specs []JobSpec) ([]*JobResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("multijob: no jobs submitted")
	}
	s := &scheduler{f: f}
	for i, spec := range specs {
		jr := &jobRun{
			spec: spec,
			id:   protocol.JobID(i + 1),
			res: &JobResult{
				Job: protocol.JobID(i + 1), Name: spec.name(),
				Workload: spec.Workload.Name, Mode: spec.Mode,
				Workers: spec.Workers, ModelFloats: spec.floats(),
			},
		}
		s.all = append(s.all, jr)
		if !f.feasible(spec.floats()) {
			jr.res.Rejected = true
			continue
		}
		hosts, targets, chains, err := f.allocHosts(spec.Workers)
		if err != nil {
			return nil, fmt.Errorf("multijob: job %q: %w", spec.name(), err)
		}
		jr.hosts, jr.targets, jr.chains = hosts, targets, chains
		s.queue = append(s.queue, jr)
	}
	s.tryAdmit()
	f.K.Run()
	// Release switch/server processes still parked on their RX channels
	// so a sweep over many fabrics does not accumulate goroutines.
	f.K.Shutdown()

	results := make([]*JobResult, len(s.all))
	for i, jr := range s.all {
		if !jr.res.Rejected && !jr.started {
			return nil, fmt.Errorf("multijob: job %q was never admitted (queue deadlock?)", jr.spec.name())
		}
		if jr.started && jr.res.Finished == 0 && jr.res.Rounds == 0 && jr.res.Sync == nil && jr.res.Async == nil {
			return nil, fmt.Errorf("multijob: job %q never completed", jr.spec.name())
		}
		results[i] = jr.res
	}
	return results, nil
}

// tryAdmit starts jobs from the queue head while they fit. Strict FIFO:
// the first job that does not fit blocks the rest of the queue.
func (s *scheduler) tryAdmit() {
	for len(s.queue) > 0 {
		jr := s.queue[0]
		// Reserve (inside admit) is the authoritative admission check; a
		// refusal leaves the head queued and counts SRAM pressure on the
		// refusing switch's pool.
		if err := s.f.admit(jr.id, jr.spec.floats(), jr.chains); err != nil {
			// Everything behind the head is deferred too.
			for _, waiting := range s.queue {
				waiting.res.Queued = true
			}
			return
		}
		s.queue = s.queue[1:]
		s.start(jr)
	}
}

// start spawns the job's training processes at the current virtual
// time.
func (s *scheduler) start(jr *jobRun) {
	jr.started = true
	s.running++
	jr.res.Started = s.f.K.Now()

	spec := jr.spec
	agents := make([]rl.Agent, spec.Workers)
	for i := range agents {
		if spec.NewAgent != nil {
			agents[i] = spec.NewAgent(i)
		} else {
			agents[i] = core.NewSyntheticAgent(spec.floats())
		}
	}
	cfg := core.DefaultISWConfig()
	cfg.Job = jr.id
	cluster := core.NewISWOnFabric(jr.hosts, jr.targets, spec.floats(), spec.Workers, cfg)

	done := func() { s.finish(jr) }
	switch spec.Mode {
	case ModeAsync:
		jr.res.Async = core.SpawnAsyncISW(s.f.K, agents, cluster, core.AsyncConfig{
			Updates: spec.Updates, StalenessBound: spec.StalenessBound,
			LocalCompute: spec.Workload.LocalCompute, WeightUpdate: spec.Workload.WeightUpdate,
		}, done)
	default:
		jr.res.Sync = core.SpawnSync(s.f.K, agents, services(cluster, spec.Workers), core.SyncConfig{
			Iterations:   spec.Iterations,
			LocalCompute: spec.Workload.LocalCompute,
			WeightUpdate: spec.Workload.WeightUpdate,
		}, done)
	}
}

func services(c *core.ISWCluster, n int) []core.Service {
	out := make([]core.Service, n)
	for i := range out {
		out[i] = c.Client(i)
	}
	return out
}

// finish runs in kernel context when the job's last worker completes:
// record its outcome, release its switch contexts, and admit queued
// jobs into the freed SRAM.
func (s *scheduler) finish(jr *jobRun) {
	s.running--
	jr.res.Finished = s.f.K.Now()
	s.f.evict(jr.id, jr.chains)

	spec := jr.spec
	if jr.res.Sync != nil {
		jr.res.MeanRound = jr.res.Sync.MeanIter()
		jr.res.Rounds = jr.res.Sync.Updates
	} else if jr.res.Async != nil {
		jr.res.MeanRound = jr.res.Async.MeanIter()
		jr.res.Rounds = jr.res.Async.Updates
	}
	jr.res.GradBytes = uint64(jr.res.Rounds) * uint64(spec.Workers) * uint64(spec.floats()) * 4
	jr.res.WireBytes = s.f.WireBytesFor(jr.id)

	s.tryAdmit()
}
