package multijob

import (
	"fmt"
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/switchnet"
)

// JobResult is one job's outcome on the shared fabric.
type JobResult struct {
	Job      protocol.JobID
	Name     string
	Workload string
	Mode     Mode
	Workers  int
	// ModelFloats is the gradient length the job actually ran with.
	ModelFloats int
	// Weight and Priority echo the spec (fair-share accounting inputs).
	Weight   float64
	Priority int
	// Adversary marks non-training flood tenants.
	Adversary bool

	// Rejected jobs can never fit the fabric (demand above a switch's
	// SRAM capacity) and did not run at all.
	Rejected bool
	// Queued reports whether admission control deferred the job behind
	// earlier tenants before it started.
	Queued bool
	// Preemptions counts how many times the job was checkpointed out of
	// the switches mid-run to make room for another tenant.
	Preemptions int

	// Started and Finished are virtual-clock bounds of the job's run
	// (Started > 0 for jobs that waited in the admission queue).
	Started, Finished time.Duration
	// MeanRound is the mean per-iteration (sync) or inter-update
	// (async) time across the job's workers.
	MeanRound time.Duration
	// Rounds is iterations (sync) or weight updates (async) completed.
	Rounds int64
	// GradBytes is the gradient volume the fabric aggregated for this
	// job: rounds × workers × model bytes.
	GradBytes uint64
	// WireBytes is the job-tagged traffic summed over every fabric link
	// (byte·hops), the fair-share accounting input.
	WireBytes uint64

	// Sync/Async expose the underlying run statistics (exactly one is
	// non-nil for non-elastic training jobs that ran).
	Sync  *core.RunStats
	Async *core.AsyncStats
}

type jobRun struct {
	spec    JobSpec
	id      protocol.JobID
	arrival int
	demand  int64 // per-switch SRAM the job reserves
	hosts   []*netsim.Host
	targets []protocol.Addr
	chains  [][]*switchnet.ISwitch
	res     *JobResult
	started bool
	// bypassed counts later arrivals admitted past this queued job.
	bypassed int
	// cps holds the per-switch checkpoints while the job is preempted,
	// aligned with switchesFor(chains); non-nil means re-admission goes
	// through RestoreJob instead of AdmitJob.
	cps []*switchnet.JobCheckpoint

	// Elastic accumulators (per-phase stats summed by finish).
	elRounds   int64
	elRoundSum time.Duration
	elGrad     uint64
}

type scheduler struct {
	f       *Fabric
	policy  Policy
	queue   []*jobRun
	running []*jobRun
	all     []*jobRun
}

// shaperBurstBytes is the floor of the per-job egress token-bucket
// depth: a few MTUs, so tiny-model jobs never hit an empty bucket.
// The actual depth is the larger of this and twice one round's
// gradient (see shaperBurst) — a closed-loop tenant's per-round
// partial burst is admitted unpoliced while a sustained over-rate
// flood drains the bucket and has its excess dropped at egress. A
// weighted job that nonetheless overdrives its share loses frames and
// must recover via its RecoveryTimeout, so weighted specs should arm
// one (see DESIGN.md §10).
const shaperBurstBytes = 6144

// shaperBurst sizes a job's token-bucket depth: twice its per-round
// gradient volume on any one link, floored at shaperBurstBytes.
func shaperBurst(spec JobSpec) float64 {
	if b := float64(2 * spec.floats() * 4); b > shaperBurstBytes {
		return b
	}
	return shaperBurstBytes
}

// Run submits specs to the fabric and simulates until every admitted
// job completes. Queued jobs are offered freed SRAM in the order the
// fabric's admission Policy dictates — strict FIFO by default (no job
// is ever starved, at the cost of head-of-line blocking), weighted-
// fair backfilling or priority preemption when configured. Jobs whose
// demand exceeds a switch's SRAM capacity outright are marked Rejected
// and never run. Results are returned in spec order.
func Run(f *Fabric, specs []JobSpec) ([]*JobResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("multijob: no jobs submitted")
	}
	s := &scheduler{f: f, policy: f.cfg.Admission}
	if s.policy == nil {
		s.policy = FIFO()
	}
	weighted := false
	for i, spec := range specs {
		if err := validateSpec(spec); err != nil {
			return nil, fmt.Errorf("multijob: job %q: %w", spec.name(), err)
		}
		if spec.Weight > 0 {
			weighted = true
		}
		jr := &jobRun{
			spec: spec, arrival: i,
			id:     protocol.JobID(i + 1),
			demand: accel.ContextDemand(spec.floats(), protocol.FloatsPerPacket),
			res: &JobResult{
				Job: protocol.JobID(i + 1), Name: spec.name(),
				Workload: spec.Workload.Name, Mode: spec.Mode,
				Workers: spec.Workers, ModelFloats: spec.floats(),
				Weight: spec.Weight, Priority: spec.Priority,
				Adversary: spec.Adversary != nil,
			},
		}
		s.all = append(s.all, jr)
		if !f.feasible(spec.floats()) {
			jr.res.Rejected = true
			continue
		}
		hosts, targets, chains, err := f.allocHosts(spec.Workers)
		if err != nil {
			return nil, fmt.Errorf("multijob: job %q: %w", spec.name(), err)
		}
		jr.hosts, jr.targets, jr.chains = hosts, targets, chains
		if at := spec.SubmitAt; at > 0 {
			jr := jr
			f.K.After(at, func() {
				s.queue = append(s.queue, jr)
				s.tryAdmit()
			})
		} else {
			s.queue = append(s.queue, jr)
		}
	}
	if weighted && len(specs) > 1 {
		s.armShaping()
	}
	s.tryAdmit()
	f.K.Run()
	// Release switch/server processes still parked on their RX channels
	// so a sweep over many fabrics does not accumulate goroutines.
	f.K.Shutdown()

	results := make([]*JobResult, len(s.all))
	for i, jr := range s.all {
		if !jr.res.Rejected && !jr.started {
			return nil, fmt.Errorf("multijob: job %q was never admitted (queue deadlock?)", jr.spec.name())
		}
		if jr.started && jr.res.Finished == 0 {
			return nil, fmt.Errorf("multijob: job %q never completed", jr.spec.name())
		}
		results[i] = jr.res
	}
	return results, nil
}

// validateSpec rejects spec combinations the scheduler cannot honor.
func validateSpec(spec JobSpec) error {
	if spec.Preemptible {
		if spec.Mode != ModeSync {
			return fmt.Errorf("preemptible jobs must be synchronous")
		}
		if spec.RecoveryTimeout <= 0 {
			return fmt.Errorf("preemptible jobs need RecoveryTimeout > 0 (workers ride loss recovery across the preemption gap)")
		}
		if spec.Elastic != nil || spec.Adversary != nil {
			return fmt.Errorf("preemptible jobs cannot be elastic or adversarial")
		}
	}
	if spec.Adversary != nil {
		if spec.Elastic != nil {
			return fmt.Errorf("a job cannot be both adversarial and elastic")
		}
		if spec.Adversary.Duration <= 0 {
			return fmt.Errorf("adversary needs a positive Duration")
		}
	}
	if el := spec.Elastic; el != nil {
		if spec.Mode != ModeSync {
			return fmt.Errorf("elastic jobs must be synchronous")
		}
		if len(el.Phases) == 0 {
			return fmt.Errorf("elastic plan has no phases")
		}
		for i, ph := range el.Phases {
			if ph.Workers < 1 || ph.Workers > spec.Workers {
				return fmt.Errorf("elastic phase %d wants %d workers, spec allocates %d", i, ph.Workers, spec.Workers)
			}
			if ph.Iterations < 1 {
				return fmt.Errorf("elastic phase %d has no iterations", i)
			}
		}
	}
	if fp := spec.Faults; fp != nil {
		if len(fp.Crashes) > 0 || len(fp.Switches) > 0 {
			return fmt.Errorf("multijob fault injection supports link faults only")
		}
		for _, lf := range fp.Links {
			if lf.Worker < 0 || lf.Worker >= spec.Workers {
				return fmt.Errorf("link fault names worker %d of %d", lf.Worker, spec.Workers)
			}
		}
		if spec.RecoveryTimeout <= 0 {
			return fmt.Errorf("link faults need RecoveryTimeout > 0 to recover")
		}
	}
	return nil
}

// info is the policy's view of a job.
func (s *scheduler) info(jr *jobRun) JobInfo {
	return JobInfo{
		ID: jr.id, Name: jr.spec.name(), Arrival: jr.arrival,
		Weight: jr.spec.Weight, Priority: jr.spec.Priority,
		DemandBytes: jr.demand, Bypassed: jr.bypassed,
		Preemptible: jr.spec.Preemptible, Preempted: jr.cps != nil,
	}
}

func (s *scheduler) infos(runs []*jobRun) []JobInfo {
	out := make([]JobInfo, len(runs))
	for i, jr := range runs {
		out[i] = s.info(jr)
	}
	return out
}

// tryAdmit offers freed SRAM to queued jobs in policy order until a
// full pass admits nobody. Reserve (inside admit/restore) stays the
// authoritative check; a refusal counts SRAM pressure on the refusing
// switch's pool.
func (s *scheduler) tryAdmit() {
	for len(s.queue) > 0 {
		admitted := -1
		order := s.policy.Order(s.infos(s.queue))
		for _, qi := range order {
			if qi < 0 || qi >= len(s.queue) {
				continue // defensive against misbehaving policies
			}
			jr := s.queue[qi]
			ok := s.admitOne(jr)
			if !ok {
				if victims := s.policy.Victims(s.info(jr), s.infos(s.running)); len(victims) > 0 {
					if s.preemptFor(jr, victims) {
						ok = s.admitOne(jr)
					}
				}
			}
			if ok {
				admitted = qi
				break // queue indices shifted; restart the pass
			}
			if s.policy.Strict() {
				break
			}
		}
		if admitted < 0 {
			// No progress: everything still queued is deferred.
			for _, waiting := range s.queue {
				waiting.res.Queued = true
			}
			return
		}
		jr := s.queue[admitted]
		s.queue = append(s.queue[:admitted], s.queue[admitted+1:]...)
		for _, q := range s.queue {
			if q.arrival < jr.arrival {
				q.bypassed++
			}
		}
	}
}

// admitOne reserves the job's switch contexts (fresh admission) or
// restores its checkpoints (re-admission after preemption). On success
// the job is running.
func (s *scheduler) admitOne(jr *jobRun) bool {
	if jr.cps != nil {
		return s.restoreOne(jr)
	}
	if err := s.f.admit(jr.id, jr.spec.floats(), jr.chains); err != nil {
		return false
	}
	if jr.spec.RecoveryTimeout > 0 {
		// Loss recovery (and preemption, which rides it) needs the
		// switch dedup bitmap so retransmissions stay idempotent.
		for _, is := range switchesFor(jr.chains) {
			is.SetDedupJob(jr.id, true)
		}
	}
	s.running = append(s.running, jr)
	s.start(jr)
	return true
}

// restoreOne re-installs a preempted job's contexts, all or nothing:
// a refusal on any switch rolls the restored prefix back and keeps the
// checkpoints for the next attempt.
func (s *scheduler) restoreOne(jr *jobRun) bool {
	sws := switchesFor(jr.chains)
	for i, is := range sws {
		if err := is.RestoreJob(jr.cps[i]); err != nil {
			for _, done := range sws[:i] {
				done.EvictJob(jr.id)
			}
			return false
		}
	}
	jr.cps = nil
	s.running = append(s.running, jr)
	return true
}

// preemptFor checkpoints out the shortest prefix of the policy's
// victim list predicted to make jr fit. Without that prediction a
// too-small victim set would be evicted for nothing (and an evict/
// restore ping-pong could livelock); with it, preemption only happens
// when it provably frees enough SRAM.
func (s *scheduler) preemptFor(jr *jobRun, victims []protocol.JobID) bool {
	byID := make(map[protocol.JobID]*jobRun, len(s.running))
	for _, r := range s.running {
		byID[r.id] = r
	}
	var prefix []*jobRun
	for _, v := range victims {
		vr := byID[v]
		if vr == nil || !vr.spec.Preemptible {
			continue
		}
		prefix = append(prefix, vr)
		if !s.fitsAfterEvicting(jr, prefix) {
			continue
		}
		for _, vr := range prefix {
			if !s.preempt(vr) {
				return false
			}
		}
		return true
	}
	return false
}

// fitsAfterEvicting predicts whether jr's reservation would succeed on
// every switch of its chains once the given victims release theirs.
// It mirrors accel.SRAMPool.Reserve exactly.
func (s *scheduler) fitsAfterEvicting(jr *jobRun, victims []*jobRun) bool {
	victimHolds := func(vr *jobRun, is *switchnet.ISwitch) bool {
		for _, vs := range switchesFor(vr.chains) {
			if vs == is {
				return true
			}
		}
		return false
	}
	sws := switchesFor(jr.chains)
	for i, is := range sws {
		pool := is.SRAMPool()
		if pool == nil {
			continue
		}
		demand := jr.demand
		if jr.cps != nil {
			demand = jr.cps[i].SRAMDemand
		}
		var freedBytes int64
		freedSlots := 0
		for _, vr := range victims {
			if victimHolds(vr, is) {
				freedBytes += pool.Reserved(uint16(vr.id))
				freedSlots++
			}
		}
		if pool.Policy() == accel.PartitionStatic {
			slot := pool.Capacity() / int64(pool.MaxJobs())
			if demand > slot || pool.Jobs()-freedSlots >= pool.MaxJobs() {
				return false
			}
		} else if demand > pool.Free()+freedBytes {
			return false
		}
	}
	return true
}

// preempt checkpoints a running job out of every switch it occupies
// and re-queues it. The job's workers keep running: their uploads fall
// on deaf switches until the restore, then the loss-recovery path
// (retransmission + dedup) resumes the round exactly.
func (s *scheduler) preempt(vr *jobRun) bool {
	sws := switchesFor(vr.chains)
	cps := make([]*switchnet.JobCheckpoint, len(sws))
	for i, is := range sws {
		cp, err := is.PreemptJob(vr.id)
		if err != nil {
			for j := 0; j < i; j++ { // roll the checkpointed prefix back
				_ = sws[j].RestoreJob(cps[j])
			}
			return false
		}
		cps[i] = cp
	}
	vr.cps = cps
	vr.bypassed = 0 // the evicted job must not instantly freeze the queue
	vr.res.Preemptions++
	s.removeRunning(vr)
	s.queue = append(s.queue, vr)
	return true
}

func (s *scheduler) removeRunning(jr *jobRun) {
	for i, r := range s.running {
		if r == jr {
			s.running = append(s.running[:i], s.running[i+1:]...)
			return
		}
	}
}

// armShaping installs per-job egress policers on every switch port
// where two or more weighted jobs' aggregation chains contend, each
// job's token bucket refilling at its weight fraction of the line rate
// (over-rate frames drop at egress, see netsim.Shaper). Host-facing
// ports have a single tenant and stay unpoliced, as does every port in
// a single-job run — the legacy byte-identity path.
func (s *scheduler) armShaping() {
	owner := make(map[*netsim.Port]*switchnet.ISwitch)
	for _, is := range s.f.Switches {
		for _, p := range is.Switch().Ports() {
			owner[p] = is
		}
	}
	type portKey struct {
		is   *switchnet.ISwitch
		port *netsim.Port
	}
	jobsOn := make(map[portKey]map[*jobRun]bool)
	note := func(k portKey, jr *jobRun) {
		if jobsOn[k] == nil {
			jobsOn[k] = make(map[*jobRun]bool)
		}
		jobsOn[k][jr] = true
	}
	for _, jr := range s.all {
		if jr.res.Rejected {
			continue
		}
		for _, chain := range jr.chains {
			for lvl := 0; lvl+1 < len(chain); lvl++ {
				child, parent := chain[lvl], chain[lvl+1]
				for _, p := range child.Switch().Ports() {
					if owner[p.Peer()] == parent {
						note(portKey{child, p}, jr)         // partials up
						note(portKey{parent, p.Peer()}, jr) // broadcasts down
					}
				}
			}
		}
	}
	for k, jobs := range jobsOn {
		if len(jobs) < 2 {
			continue // uncontended: never shape a lone tenant
		}
		var sum float64
		for jr := range jobs {
			sum += weightOr1(jr.spec.Weight)
		}
		for jr := range jobs {
			k.is.LimitJobEgressOn(k.port, jr.id, weightOr1(jr.spec.Weight)/sum, shaperBurst(jr.spec))
		}
	}
}

// start spawns the job's training processes at the current virtual
// time.
func (s *scheduler) start(jr *jobRun) {
	jr.started = true
	jr.res.Started = s.f.K.Now()

	if fp := jr.spec.Faults; fp != nil {
		for _, lf := range fp.Links {
			up := jr.hosts[lf.Worker].Port()
			fp.ApplyLink(lf, up, up.Peer())
		}
	}
	if jr.spec.Adversary != nil {
		s.startAdversary(jr)
		return
	}
	if jr.spec.Elastic != nil {
		s.startElastic(jr)
		return
	}

	spec := jr.spec
	agents := s.agents(jr, spec.Workers)
	cfg := core.DefaultISWConfig()
	cfg.Job = jr.id
	cfg.RecoveryTimeout = spec.RecoveryTimeout
	cluster := core.NewISWOnFabric(jr.hosts, jr.targets, spec.floats(), spec.Workers, cfg)

	done := func() { s.finish(jr) }
	switch spec.Mode {
	case ModeAsync:
		jr.res.Async = core.SpawnAsyncISW(s.f.K, agents, cluster, core.AsyncConfig{
			Updates: spec.Updates, StalenessBound: spec.StalenessBound,
			LocalCompute: spec.Workload.LocalCompute, WeightUpdate: spec.Workload.WeightUpdate,
		}, done)
	default:
		jr.res.Sync = core.SpawnSync(s.f.K, agents, services(cluster, spec.Workers), core.SyncConfig{
			Iterations:   spec.Iterations,
			LocalCompute: spec.Workload.LocalCompute,
			WeightUpdate: spec.Workload.WeightUpdate,
		}, done)
	}
}

func (s *scheduler) agents(jr *jobRun, n int) []rl.Agent {
	agents := make([]rl.Agent, n)
	for i := range agents {
		if jr.spec.NewAgent != nil {
			agents[i] = jr.spec.NewAgent(i)
		} else {
			agents[i] = core.NewSyntheticAgent(jr.spec.floats())
		}
	}
	return agents
}

func services(c *core.ISWCluster, n int) []core.Service {
	out := make([]core.Service, n)
	for i := range out {
		out[i] = c.Client(i)
	}
	return out
}

// finish runs in kernel context when the job's last worker completes:
// record its outcome, release its switch contexts, and admit queued
// jobs into the freed SRAM.
func (s *scheduler) finish(jr *jobRun) {
	s.removeRunning(jr)
	if jr.cps != nil {
		// The job completed while preempted (checkpointed after its
		// final broadcast had already left the switches): drop the
		// checkpoints and pull it off the queue.
		jr.cps = nil
		for i, q := range s.queue {
			if q == jr {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
	}
	jr.res.Finished = s.f.K.Now()
	s.f.evict(jr.id, jr.chains)

	spec := jr.spec
	switch {
	case spec.Elastic != nil:
		jr.res.Rounds = jr.elRounds
		if jr.elRounds > 0 {
			jr.res.MeanRound = jr.elRoundSum / time.Duration(jr.elRounds)
		}
		jr.res.GradBytes = jr.elGrad
	case jr.res.Sync != nil:
		jr.res.MeanRound = jr.res.Sync.MeanIter()
		jr.res.Rounds = jr.res.Sync.Updates
	case jr.res.Async != nil:
		jr.res.MeanRound = jr.res.Async.MeanIter()
		jr.res.Rounds = jr.res.Async.Updates
	}
	if spec.Elastic == nil {
		jr.res.GradBytes = uint64(jr.res.Rounds) * uint64(spec.Workers) * uint64(spec.floats()) * 4
	}
	jr.res.WireBytes = s.f.WireBytesFor(jr.id)

	s.tryAdmit()
}

// JainOver computes Jain's fairness index over the achieved wire
// throughput (bytes per active second) of the results selected by
// keep — compliant tenants, typically; the isolation experiments
// exclude the adversary. Rate, not volume: iteration-bounded jobs all
// move the same bytes eventually, so volume shares are trivially fair
// even when one tenant was starved to a crawl. Throughput shares are
// what an adversary actually distorts.
func JainOver(results []*JobResult, keep func(*JobResult) bool) float64 {
	var shares []float64
	for _, r := range results {
		if r.Rejected || (keep != nil && !keep(r)) {
			continue
		}
		active := (r.Finished - r.Started).Seconds()
		if active <= 0 {
			continue
		}
		shares = append(shares, float64(r.WireBytes)/active)
	}
	return perfmodel.JainFairness(shares)
}
