package multijob

import (
	"testing"
	"time"

	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// TestSingleJobPolicyEquivalence pins that every admission policy
// degenerates to the legacy FIFO path for a lone job: same final
// parameters bit-for-bit and the same virtual clock. A single job
// never waits, never preempts, and (even with a weight set) is never
// shaped, so the policies must be indistinguishable.
func TestSingleJobPolicyEquivalence(t *testing.T) {
	const nW, iters = 3, 2
	wl := ppoWorkload(t)
	floats := newPPOAgents(t, 1)[0].GradLen()

	run := func(name string, cfg FabricConfig, spec func(*JobSpec)) (time.Duration, []float32) {
		t.Helper()
		agents := newPPOAgents(t, nW)
		k := sim.NewKernel()
		f := NewStarFabric(k, nW, testLink(), cfg)
		js := JobSpec{
			Workload: wl, Workers: nW, Mode: ModeSync, Iterations: iters,
			ModelFloats: floats,
			NewAgent:    func(i int) rl.Agent { return agents[i] },
		}
		if spec != nil {
			spec(&js)
		}
		res, err := Run(f, []JobSpec{js})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res[0].Queued || res[0].Preemptions != 0 {
			t.Fatalf("%s: lone job queued=%v preemptions=%d", name, res[0].Queued, res[0].Preemptions)
		}
		params := make([]float32, floats)
		agents[0].ReadParams(params)
		return res[0].Sync.Total, params
	}

	baseClock, baseParams := run("fifo-default", FabricConfig{}, nil)
	cases := []struct {
		name string
		cfg  FabricConfig
		spec func(*JobSpec)
	}{
		{"fifo-explicit", FabricConfig{Admission: FIFO()}, nil},
		{"weighted-fair", FabricConfig{Admission: WeightedFair(0)}, nil},
		{"priority", FabricConfig{Admission: PriorityPreempt()}, nil},
		{"weighted-fair+weight", FabricConfig{Admission: WeightedFair(0)},
			func(js *JobSpec) { js.Weight = 2.5 }},
		{"priority+fields", FabricConfig{Admission: PriorityPreempt()},
			// RecoveryTimeout far above the run length: recovery armed
			// but never triggered, so the clock must not move.
			func(js *JobSpec) { js.Priority = 7; js.Preemptible = true; js.RecoveryTimeout = time.Hour }},
	}
	for _, tc := range cases {
		clock, params := run(tc.name, tc.cfg, tc.spec)
		if clock != baseClock {
			t.Fatalf("%s: virtual-clock divergence: %v, fifo %v", tc.name, clock, baseClock)
		}
		for i := range params {
			if params[i] != baseParams[i] {
				t.Fatalf("%s: param[%d] = %v, fifo %v", tc.name, i, params[i], baseParams[i])
			}
		}
	}
}
