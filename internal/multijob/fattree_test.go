package multijob

import (
	"fmt"
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/sim"
)

func fatTreeLinks() (edge, agg, core netsim.LinkConfig) {
	edge = testLink()
	agg = netsim.LinkConfig{BitsPerSecond: 32e9, Propagation: 4 * time.Microsecond}
	core = netsim.LinkConfig{BitsPerSecond: 64e9, Propagation: 6 * time.Microsecond}
	return
}

// TestFatTreeFabricSmall runs two jobs on a k=4 fat-tree and checks the
// spine aggregation hierarchy works end to end under tenancy.
func TestFatTreeFabricSmall(t *testing.T) {
	wl := ppoWorkload(t)
	edge, aggL, coreL := fatTreeLinks()
	k := sim.NewKernel()
	f := NewFatTreeFabric(k, 4, 2, edge, aggL, coreL, FabricConfig{})
	if len(f.Hosts) != 16 {
		t.Fatalf("k=4 fat-tree with 2 hosts/edge has %d hosts, want 16", len(f.Hosts))
	}
	res, err := Run(f, []JobSpec{
		{Workload: wl, Workers: 8, Mode: ModeSync, Iterations: 2, ModelFloats: 500},
		{Workload: wl, Workers: 8, Mode: ModeSync, Iterations: 2, ModelFloats: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Rejected || r.Rounds != 2 {
			t.Fatalf("job %d: rejected=%v rounds=%d, want 2 rounds", i, r.Rejected, r.Rounds)
		}
	}
	for _, is := range f.Switches {
		if got := is.SRAMPool().Jobs(); got != 0 {
			t.Fatalf("switch %v still holds %d job contexts after the run", is.Addr(), got)
		}
	}
}

// TestFatTreeRackscale64Jobs is the tentpole scenario: a k=8 fat-tree
// with 32 hosts per edge switch (1024 workers) running 64 concurrent
// 16-worker jobs through the multijob scheduler. Before the
// calendar-queue kernel this scale was out of tier-1 reach; the test
// pins both that it completes and that the fabric stays consistent.
func TestFatTreeRackscale64Jobs(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-worker fat-tree scenario skipped in -short")
	}
	wl := ppoWorkload(t)
	edge, aggL, coreL := fatTreeLinks()
	k := sim.NewKernel()
	f := NewFatTreeFabric(k, 8, 32, edge, aggL, coreL, FabricConfig{})
	if len(f.Hosts) != 1024 {
		t.Fatalf("fabric has %d hosts, want 1024", len(f.Hosts))
	}

	const jobs = 64
	specs := make([]JobSpec, jobs)
	for j := range specs {
		specs[j] = JobSpec{
			Name:     fmt.Sprintf("job%02d", j),
			Workload: wl, Workers: 16, Mode: ModeSync,
			Iterations: 2, ModelFloats: 400,
		}
	}
	res, err := Run(f, specs)
	if err != nil {
		t.Fatal(err)
	}
	queued := 0
	for i, r := range res {
		if r.Rejected {
			t.Fatalf("job %d rejected; demand-partitioned SRAM should fit all 64", i)
		}
		if r.Rounds != 2 {
			t.Fatalf("job %d completed %d rounds, want 2", i, r.Rounds)
		}
		if r.Queued {
			queued++
		}
	}
	// 64 x 16 = 1024 workers exactly fill the fabric, so every job
	// must have been admitted concurrently, none queued.
	if queued != 0 {
		t.Fatalf("%d jobs queued; all 64 should run concurrently", queued)
	}
	for _, is := range f.Switches {
		if got := is.SRAMPool().Jobs(); got != 0 {
			t.Fatalf("switch %v still holds %d job contexts", is.Addr(), got)
		}
	}
	if k.Procs() != 0 {
		t.Fatalf("%d processes still live after Run+Shutdown", k.Procs())
	}
}
