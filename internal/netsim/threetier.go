package netsim

import (
	"fmt"
	"time"

	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// ThreeTier is the full datacenter shape of the paper's Figure 10:
// workers under ToR switches, ToRs under aggregation (AGG) switches,
// AGGs under one core switch.
type ThreeTier struct {
	Core  *Switch
	AGGs  []*Switch
	ToRs  []*Switch
	Hosts []*Host

	// ToROf[i] is the ToR index of Hosts[i]; AGGOf[t] the AGG index of
	// ToR t.
	ToROf []int
	AGGOf []int
	// ToRUplinks[t] is ToR t's port toward its AGG; AGGUplinks[a] is
	// AGG a's port toward the core.
	ToRUplinks []*Port
	AGGUplinks []*Port
}

// BuildThreeTier wires nAGGs aggregation switches, each over torsPerAGG
// ToR switches, each over hostsPerToR workers. Edge links join workers
// to ToRs; aggLink joins ToRs to AGGs; coreLink joins AGGs to the core.
func BuildThreeTier(k *sim.Kernel, nAGGs, torsPerAGG, hostsPerToR int, edge, aggLink, coreLink LinkConfig) *ThreeTier {
	core := NewSwitch(k, "core", DefaultSwitchDelay)
	tt := &ThreeTier{Core: core}

	torIdx := 0
	for a := 0; a < nAGGs; a++ {
		agg := NewSwitch(k, fmt.Sprintf("agg%d", a), DefaultSwitchDelay)
		aggUp, coreDown := Connect(k, coreLink,
			agg, fmt.Sprintf("agg%d/up", a),
			core, fmt.Sprintf("core/p%d", a))
		agg.AddPort(aggUp)
		core.AddPort(coreDown)
		agg.SetDefault(aggUp)
		tt.AGGs = append(tt.AGGs, agg)
		tt.AGGUplinks = append(tt.AGGUplinks, aggUp)

		for tor := 0; tor < torsPerAGG; tor++ {
			t := NewSwitch(k, fmt.Sprintf("tor%d", torIdx), DefaultSwitchDelay)
			torUp, aggDown := Connect(k, aggLink,
				t, fmt.Sprintf("tor%d/up", torIdx),
				agg, fmt.Sprintf("agg%d/p%d", a, tor))
			t.AddPort(torUp)
			agg.AddPort(aggDown)
			t.SetDefault(torUp)
			tt.ToRs = append(tt.ToRs, t)
			tt.ToRUplinks = append(tt.ToRUplinks, torUp)
			tt.AGGOf = append(tt.AGGOf, a)

			for h := 0; h < hostsPerToR; h++ {
				addr := threeTierAddr(torIdx, h)
				host := NewHost(k, addr)
				torPort, hostPort := Connect(k, edge,
					t, fmt.Sprintf("tor%d/p%d", torIdx, h),
					host, addr.String())
				t.AddPort(torPort)
				host.SetPort(hostPort)
				t.AddRoute(protocol.Addr{IP: addr.IP}, torPort)
				agg.AddRoute(protocol.Addr{IP: addr.IP}, aggDown)
				core.AddRoute(protocol.Addr{IP: addr.IP}, coreDown)
				tt.Hosts = append(tt.Hosts, host)
				tt.ToROf = append(tt.ToROf, torIdx)
			}
			torIdx++
		}
	}
	return tt
}

// threeTierAddr places workers in 10.32+tor.0.x to avoid colliding with
// the star (10.0.*) and two-level (10.1..31.*) address plans.
func threeTierAddr(tor, host int) protocol.Addr {
	return protocol.AddrFrom(10, byte(32+tor), 0, byte(2+2*host), WorkerPort)
}

// DefaultThreeTierLinks returns the paper's link speeds per layer: 10GbE
// edge, 40GbE ToR→AGG, 100GbE AGG→core (§3.4: "40Gb to 100Gb").
func DefaultThreeTierLinks() (edge, agg, core LinkConfig) {
	edge = TenGbE()
	agg = FortyGbE()
	core = LinkConfig{BitsPerSecond: 100e9, Propagation: 500 * time.Nanosecond,
		PerPacketOverhead: 300 * time.Nanosecond}
	return edge, agg, core
}
