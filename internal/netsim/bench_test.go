package netsim

import (
	"testing"
	"time"

	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// BenchmarkStarDelivery measures forwarding packets through a switch.
func BenchmarkStarDelivery(b *testing.B) {
	k := sim.NewKernel()
	star := BuildStar(k, 2, LinkConfig{BitsPerSecond: 10e9, Propagation: time.Microsecond})
	src, dst := star.Hosts[0], star.Hosts[1]
	pkt := protocol.NewData(src.Addr, dst.Addr, 0, make([]float32, protocol.FloatsPerPacket))
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			dst.Recv(p)
		}
	})
	k.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			src.Send(pkt)
			p.Sleep(2 * time.Microsecond)
		}
	})
	b.SetBytes(int64(pkt.WireLen()))
	b.ResetTimer()
	k.Run()
}

// BenchmarkTreeCrossRack measures inter-rack forwarding (4 hops).
func BenchmarkTreeCrossRack(b *testing.B) {
	k := sim.NewKernel()
	tr := BuildRacks(k, 2, 3, TenGbE(), FortyGbE())
	src, dst := tr.Hosts[0], tr.Hosts[5]
	pkt := protocol.NewData(src.Addr, dst.Addr, 0, make([]float32, 100))
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			dst.Recv(p)
		}
	})
	k.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			src.Send(pkt)
			p.Sleep(2 * time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}
