package netsim

import (
	"fmt"
	"time"

	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// Topology builders for the two cluster shapes in the paper: a single
// switch with directly attached workers (the main 4-node testbed,
// Figure 1) and the two-level rack-scale hierarchy (Figure 10: a root
// switch over multiple ToR switches with three workers per rack).

// DefaultSwitchDelay is the per-packet forwarding pipeline of a
// commodity 10GbE ToR switch.
const DefaultSwitchDelay = 1 * time.Microsecond

// WorkerPort is the UDP port workers bind, matching the paper's
// membership-table example.
const WorkerPort = 9999

// HostAddr returns the canonical address of host h in rack r.
func HostAddr(rack, host int) protocol.Addr {
	return protocol.AddrFrom(10, byte(rack), 0, byte(2+2*host), WorkerPort)
}

// Star is a single switch with n directly attached hosts.
type Star struct {
	Switch *Switch
	Hosts  []*Host
}

// BuildStar wires n hosts to one switch over identical links and
// installs host routes.
func BuildStar(k *sim.Kernel, n int, link LinkConfig) *Star {
	sw := NewSwitch(k, "sw0", DefaultSwitchDelay)
	st := &Star{Switch: sw}
	for i := 0; i < n; i++ {
		addr := HostAddr(0, i)
		h := NewHost(k, addr)
		swPort, hostPort := Connect(k, link,
			sw, fmt.Sprintf("sw0/p%d", i),
			h, addr.String())
		sw.AddPort(swPort)
		h.SetPort(hostPort)
		sw.AddRoute(protocol.Addr{IP: addr.IP}, swPort)
		st.Hosts = append(st.Hosts, h)
	}
	return st
}

// AttachHost adds one more host (e.g. a parameter server) to the star.
func (s *Star) AttachHost(k *sim.Kernel, addr protocol.Addr, link LinkConfig) *Host {
	h := NewHost(k, addr)
	i := len(s.Switch.ports)
	swPort, hostPort := Connect(k, link,
		s.Switch, fmt.Sprintf("%s/p%d", s.Switch.name, i),
		h, addr.String())
	s.Switch.AddPort(swPort)
	h.SetPort(hostPort)
	s.Switch.AddRoute(protocol.Addr{IP: addr.IP}, swPort)
	s.Hosts = append(s.Hosts, h)
	return h
}

// Tree is the two-level rack-scale topology: Root over ToRs over hosts.
type Tree struct {
	Root  *Switch
	ToRs  []*Switch
	Hosts []*Host // rack-major order
	// RackOf[i] is the rack index of Hosts[i].
	RackOf []int
	// Uplinks[r] is the ToR-side port of rack r's uplink to the root.
	Uplinks []*Port
}

// BuildRacksN builds enough racks of up to hostsPerRack workers to hold
// totalHosts (the last rack may be partial) — how a 4-node job sits in
// a 3-port-per-rack cluster.
func BuildRacksN(k *sim.Kernel, totalHosts, hostsPerRack int, edge, uplink LinkConfig) *Tree {
	nRacks := (totalHosts + hostsPerRack - 1) / hostsPerRack
	tr := BuildRacks(k, nRacks, hostsPerRack, edge, uplink)
	return tr.trim(totalHosts)
}

// trim drops hosts beyond n (they remain wired but unused).
func (t *Tree) trim(n int) *Tree {
	if n < len(t.Hosts) {
		t.Hosts = t.Hosts[:n]
		t.RackOf = t.RackOf[:n]
	}
	return t
}

// AttachRootHost connects an extra host (e.g. a parameter server)
// directly to the root switch and installs routes everywhere.
func (t *Tree) AttachRootHost(k *sim.Kernel, addr protocol.Addr, link LinkConfig) *Host {
	h := NewHost(k, addr)
	i := len(t.Root.ports)
	rootPort, hostPort := Connect(k, link,
		t.Root, fmt.Sprintf("core/ps%d", i),
		h, addr.String())
	t.Root.AddPort(rootPort)
	h.SetPort(hostPort)
	t.Root.AddRoute(protocol.Addr{IP: addr.IP}, rootPort)
	// ToRs reach it via their default (uplink) route already.
	return h
}

// BuildRacks builds nRacks racks of hostsPerRack workers. Edge links
// connect hosts to their ToR; uplink links connect ToRs to the root.
func BuildRacks(k *sim.Kernel, nRacks, hostsPerRack int, edge, uplink LinkConfig) *Tree {
	root := NewSwitch(k, "core", DefaultSwitchDelay)
	tr := &Tree{Root: root}
	for r := 0; r < nRacks; r++ {
		tor := NewSwitch(k, fmt.Sprintf("tor%d", r), DefaultSwitchDelay)
		torUp, rootDown := Connect(k, uplink,
			tor, fmt.Sprintf("tor%d/up", r),
			root, fmt.Sprintf("core/p%d", r))
		tor.AddPort(torUp)
		root.AddPort(rootDown)
		tor.SetDefault(torUp)
		tr.ToRs = append(tr.ToRs, tor)
		tr.Uplinks = append(tr.Uplinks, torUp)

		for hIdx := 0; hIdx < hostsPerRack; hIdx++ {
			addr := HostAddr(r+1, hIdx) // rack byte 1-based; 10.0.* is the star
			h := NewHost(k, addr)
			torPort, hostPort := Connect(k, edge,
				tor, fmt.Sprintf("tor%d/p%d", r, hIdx),
				h, addr.String())
			tor.AddPort(torPort)
			h.SetPort(hostPort)
			tor.AddRoute(protocol.Addr{IP: addr.IP}, torPort)
			root.AddRoute(protocol.Addr{IP: addr.IP}, rootDown)
			tr.Hosts = append(tr.Hosts, h)
			tr.RackOf = append(tr.RackOf, r)
		}
	}
	return tr
}
