// Package netsim is a packet-level network simulator built on the
// discrete-event kernel in internal/sim.
//
// It models hosts with NICs, full-duplex point-to-point links with
// bandwidth, propagation delay and per-packet overhead, and
// store-and-forward switches with per-direction egress serialization —
// enough fidelity that the iSwitch paper's hop-count and contention
// arguments (central parameter-server bottleneck, AllReduce's 4N−4
// hops, iSwitch's 2 hops) emerge from the model rather than being
// asserted.
package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// LinkConfig describes one full-duplex link.
type LinkConfig struct {
	// BitsPerSecond is the line rate (e.g. 10e9 for 10GbE).
	BitsPerSecond float64
	// Propagation is the one-way signal delay.
	Propagation time.Duration
	// PerPacketOverhead is added to each packet's serialization time to
	// model NIC/DMA/kernel per-packet cost on the transmitting side.
	PerPacketOverhead time.Duration
}

// TenGbE returns the paper's worker-link configuration: 10 Gb/s with
// sub-microsecond propagation and a small per-packet host cost.
func TenGbE() LinkConfig {
	return LinkConfig{BitsPerSecond: 10e9, Propagation: 500 * time.Nanosecond,
		PerPacketOverhead: 300 * time.Nanosecond}
}

// FortyGbE returns an aggregation/core uplink configuration (paper §3.4:
// higher levels run 40–100 Gb/s).
func FortyGbE() LinkConfig {
	return LinkConfig{BitsPerSecond: 40e9, Propagation: 500 * time.Nanosecond,
		PerPacketOverhead: 300 * time.Nanosecond}
}

// SerializationTime returns how long a frame of n bytes occupies the
// transmitter.
func (c LinkConfig) SerializationTime(bytes int) time.Duration {
	return time.Duration(float64(bytes*8)/c.BitsPerSecond*float64(time.Second)) +
		c.PerPacketOverhead
}

// Deliverable receives fully arrived frames from a port.
type Deliverable interface {
	// Deliver is called in kernel context when a frame has completely
	// arrived on port.
	Deliver(pkt *protocol.Packet, on *Port)
}

// Port is one endpoint of a link: it owns the egress serialization state
// for its transmit direction.
type Port struct {
	k     *sim.Kernel
	name  string
	cfg   LinkConfig
	owner Deliverable
	peer  *Port

	busyUntil sim.Time
	lossRate  float64
	lossRNG   *rand.Rand

	// Fault-injection state (FaultPlan): outage windows during which
	// every frame serialized on this direction is discarded, and one-shot
	// ordinal drops (the Nth transmitted frame vanishes — a surgical way
	// to lose exactly one contribution or broadcast).
	downWindows []downWindow
	dropNth     map[uint64]struct{}

	// shaper, when set, gates job-tagged frames through per-job token
	// buckets before they may start serializing — how a tenant's weight
	// bounds its share of this egress direction. Job 0 frames bypass the
	// shaper entirely, so legacy single-tenant traffic is untouched.
	shaper Shaper

	// Trace, when set, observes this port's traffic: called with "tx"
	// when serialization starts, "rx" on delivery to the peer, and
	// "drop" when loss injection discards a frame.
	Trace func(at sim.Time, kind string, pkt *protocol.Packet)

	// Stats
	TxPackets, RxPackets uint64
	TxBytes, RxBytes     uint64
	Dropped              uint64
	// Policed counts frames refused by the egress shaper — dropped
	// before serialization, so they appear in no Tx counter.
	Policed uint64

	// txByJob attributes transmitted bytes to the training job tagged on
	// each frame. Only nonzero job IDs are metered (job 0 is the
	// unmetered single-tenant default), so legacy ports never allocate
	// the map and the hot path stays untouched.
	txByJob map[protocol.JobID]uint64
}

// TxBytesByJob returns the bytes this port transmitted for one job
// (nonzero IDs only; job 0 traffic is not metered per job).
func (p *Port) TxBytesByJob(job protocol.JobID) uint64 { return p.txByJob[job] }

// TxJobShares returns a copy of the per-job transmitted-byte ledger,
// the raw material for fair-share analysis of a contended link.
func (p *Port) TxJobShares() map[protocol.JobID]uint64 {
	out := make(map[protocol.JobID]uint64, len(p.txByJob))
	for j, b := range p.txByJob {
		out[j] = b
	}
	return out
}

// Name returns the port's diagnostic name.
func (p *Port) Name() string { return p.name }

// Peer returns the port at the other end of the link.
func (p *Port) Peer() *Port { return p.peer }

// SetLoss makes this transmit direction drop packets at the given rate,
// deterministically for a given seed. Used to exercise the Help/FBcast
// recovery path.
func (p *Port) SetLoss(rate float64, seed int64) {
	p.lossRate = rate
	p.lossRNG = rand.New(rand.NewSource(seed))
}

// SetDownWindow schedules a link outage on this transmit direction:
// frames whose serialization starts in [from, until) are dropped.
// Multiple windows may be stacked.
func (p *Port) SetDownWindow(from, until sim.Time) {
	p.downWindows = append(p.downWindows, downWindow{from, until})
}

// DropNth marks one-shot drops by transmit ordinal: the nth frame
// (1-based, counted by TxPackets) ever sent on this direction is lost.
func (p *Port) DropNth(ns ...uint64) {
	if p.dropNth == nil {
		p.dropNth = make(map[uint64]struct{}, len(ns))
	}
	for _, n := range ns {
		p.dropNth[n] = struct{}{}
	}
}

// Shaper is the egress rate-limiting hook (perfmodel.EgressShaper
// implements it): Admit decides at virtual time now whether a frame of
// n wire bytes from job may transmit. A refusal polices the frame — it
// is dropped at egress before consuming any link time, exactly like a
// hardware policer. Policing rather than delaying matters because the
// port has a single FIFO: queuing an over-rate tenant's backlog would
// head-of-line block every compliant tenant behind it.
type Shaper interface {
	Admit(now sim.Time, job uint16, n int) bool
}

// SetShaper installs (or clears, with nil) the egress shaper on this
// transmit direction.
func (p *Port) SetShaper(s Shaper) { p.shaper = s }

// Config returns the link configuration this port serializes under —
// what a shaper needs to convert a weight into an absolute rate.
func (p *Port) Config() LinkConfig { return p.cfg }

type downWindow struct{ from, until sim.Time }

func (p *Port) isDown(at sim.Time) bool {
	for _, w := range p.downWindows {
		if at >= w.from && at < w.until {
			return true
		}
	}
	return false
}

// Send serializes pkt onto the link. If the transmitter is busy the
// packet queues behind in-flight frames (FIFO), which is how contention
// at a hot link (e.g. the parameter server's downlink) manifests.
func (p *Port) Send(pkt *protocol.Packet) {
	if p.peer == nil {
		panic(fmt.Sprintf("netsim: port %s is not connected", p.name))
	}
	now := p.k.Now()
	start := now
	if p.shaper != nil && pkt.Job != protocol.DefaultJob &&
		!p.shaper.Admit(now, uint16(pkt.Job), pkt.WireLen()) {
		// Policed before any accounting: the frame never reaches the
		// wire, so Tx counters keep reflecting actual link usage.
		p.Policed++
		if p.Trace != nil {
			p.Trace(now, "police", pkt)
		}
		pkt.Release()
		return
	}
	if p.busyUntil > start {
		start = p.busyUntil
	}
	txEnd := start + p.cfg.SerializationTime(pkt.WireLen())
	p.busyUntil = txEnd
	p.TxPackets++
	p.TxBytes += uint64(pkt.WireLen())
	if pkt.Job != protocol.DefaultJob {
		if p.txByJob == nil {
			p.txByJob = make(map[protocol.JobID]uint64)
		}
		p.txByJob[pkt.Job] += uint64(pkt.WireLen())
	}
	if p.Trace != nil {
		p.Trace(start, "tx", pkt)
	}

	drop := p.lossRate > 0 && p.lossRNG.Float64() < p.lossRate
	if !drop && p.dropNth != nil {
		if _, hit := p.dropNth[p.TxPackets]; hit {
			delete(p.dropNth, p.TxPackets)
			drop = true
		}
	}
	if !drop && p.downWindows != nil && p.isDown(start) {
		drop = true
	}
	if drop {
		p.Dropped++
		if p.Trace != nil {
			p.Trace(txEnd, "drop", pkt)
		}
		pkt.Release() // dropped frames go straight back to the pool
		return
	}
	peer := p.peer
	arrive := txEnd + p.cfg.Propagation - now
	p.k.After(arrive, func() {
		peer.RxPackets++
		peer.RxBytes += uint64(pkt.WireLen())
		if peer.Trace != nil {
			peer.Trace(peer.k.Now(), "rx", pkt)
		}
		peer.owner.Deliver(pkt, peer)
	})
}

// BusyUntil exposes the egress serialization horizon, for tests.
func (p *Port) BusyUntil() sim.Time { return p.busyUntil }

// Connect creates a full-duplex link between two deliverables and
// returns the two ports (a's side first).
func Connect(k *sim.Kernel, cfg LinkConfig, a Deliverable, aName string, b Deliverable, bName string) (*Port, *Port) {
	pa := &Port{k: k, name: aName, cfg: cfg, owner: a}
	pb := &Port{k: k, name: bName, cfg: cfg, owner: b}
	pa.peer = pb
	pb.peer = pa
	return pa, pb
}

// Host is an end node with one NIC. Received frames are queued on RX in
// arrival order; worker processes block on RX in virtual time.
type Host struct {
	Addr protocol.Addr
	RX   *sim.Chan[*protocol.Packet]
	port *Port
}

// NewHost creates a host with the given address. Attach it with Connect
// via its Deliver method, then call SetPort.
func NewHost(k *sim.Kernel, addr protocol.Addr) *Host {
	return &Host{Addr: addr, RX: sim.NewChan[*protocol.Packet](k, addr.String()+"/rx")}
}

// SetPort attaches the NIC created by Connect.
func (h *Host) SetPort(p *Port) { h.port = p }

// Port returns the host's NIC port.
func (h *Host) Port() *Port { return h.port }

// Deliver implements Deliverable.
func (h *Host) Deliver(pkt *protocol.Packet, _ *Port) { h.RX.Send(pkt) }

// Send transmits a packet from this host.
func (h *Host) Send(pkt *protocol.Packet) { h.port.Send(pkt) }

// Recv blocks the calling process until a frame arrives.
func (h *Host) Recv(p *sim.Proc) *protocol.Packet { return h.RX.Recv(p) }

// RecvTimeout blocks up to d for a frame.
func (h *Host) RecvTimeout(p *sim.Proc, d time.Duration) (*protocol.Packet, bool) {
	return h.RX.RecvTimeout(p, d)
}

// Switch is a store-and-forward L2/L3 switch with static routes. A tap
// function may intercept packets before forwarding — this is the hook
// the iSwitch data-plane extension (input arbiter → accelerator) plugs
// into, leaving regular traffic untouched.
type Switch struct {
	k     *sim.Kernel
	name  string
	proc  time.Duration // per-packet pipeline (lookup + crossbar) delay
	ports []*Port
	route map[protocol.Addr]*Port
	def   *Port // default route (uplink) when no table entry matches
	tap   func(pkt *protocol.Packet, in *Port) bool

	Forwarded uint64
	NoRoute   uint64
}

// NewSwitch creates a switch. procDelay models the lookup/forwarding
// pipeline per packet (a production ToR cuts through in ~1µs).
func NewSwitch(k *sim.Kernel, name string, procDelay time.Duration) *Switch {
	return &Switch{k: k, name: name, proc: procDelay, route: make(map[protocol.Addr]*Port)}
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Kernel returns the owning simulation kernel.
func (s *Switch) Kernel() *sim.Kernel { return s.k }

// AddPort registers a port created by Connect as belonging to this
// switch and returns it.
func (s *Switch) AddPort(p *Port) *Port {
	s.ports = append(s.ports, p)
	return p
}

// Ports lists the switch's ports in attachment order.
func (s *Switch) Ports() []*Port { return s.ports }

// AddRoute installs a forwarding-table entry: frames for addr exit via
// port. Route entries for whole hosts use their full Addr; lookup falls
// back to IP-only matching so replies to any port of a host route too.
func (s *Switch) AddRoute(addr protocol.Addr, port *Port) { s.route[addr] = port }

// SetDefault installs the default (uplink) route used when no table
// entry matches.
func (s *Switch) SetDefault(p *Port) { s.def = p }

// RouteFor resolves the egress port for a destination, trying the exact
// address, then an IP-wildcard (port 0) entry, then the default route.
func (s *Switch) RouteFor(dst protocol.Addr) (*Port, bool) {
	if p, ok := s.route[dst]; ok {
		return p, true
	}
	if p, ok := s.route[protocol.Addr{IP: dst.IP}]; ok {
		return p, true
	}
	if s.def != nil {
		return s.def, true
	}
	return nil, false
}

// SetTap installs the data-plane intercept. tap returns true when it
// consumed the packet (it will not be forwarded normally).
func (s *Switch) SetTap(tap func(pkt *protocol.Packet, in *Port) bool) { s.tap = tap }

// Deliver implements Deliverable: store-and-forward then route.
func (s *Switch) Deliver(pkt *protocol.Packet, in *Port) {
	s.k.After(s.proc, func() {
		if s.tap != nil && s.tap(pkt, in) {
			return
		}
		s.Forward(pkt)
	})
}

// Forward routes pkt out the port its destination maps to.
func (s *Switch) Forward(pkt *protocol.Packet) {
	out, ok := s.RouteFor(pkt.Dst)
	if !ok {
		s.NoRoute++
		pkt.Release() // unroutable frames are dropped
		return
	}
	s.Forwarded++
	out.Send(pkt)
}
