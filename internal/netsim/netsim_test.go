package netsim

import (
	"testing"
	"time"

	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// testLink has easy arithmetic: 8 Gb/s = 1 byte/ns, 1µs propagation,
// no per-packet overhead.
func testLink() LinkConfig {
	return LinkConfig{BitsPerSecond: 8e9, Propagation: time.Microsecond}
}

func dataPkt(src, dst protocol.Addr, seg uint64, n int) *protocol.Packet {
	return protocol.NewData(src, dst, seg, make([]float32, n))
}

func TestSerializationTime(t *testing.T) {
	c := testLink()
	if got := c.SerializationTime(1000); got != time.Microsecond {
		t.Fatalf("1000 bytes at 1B/ns = %v, want 1µs", got)
	}
	c.PerPacketOverhead = 100 * time.Nanosecond
	if got := c.SerializationTime(1000); got != 1100*time.Nanosecond {
		t.Fatalf("with overhead = %v, want 1.1µs", got)
	}
}

func TestHostToHostDelivery(t *testing.T) {
	k := sim.NewKernel()
	a := NewHost(k, HostAddr(0, 0))
	b := NewHost(k, HostAddr(0, 1))
	pa, pb := Connect(k, testLink(), a, "a", b, "b")
	a.SetPort(pa)
	b.SetPort(pb)

	pkt := dataPkt(a.Addr, b.Addr, 0, 100) // wire = 14+20+8+8+400 = 450B
	var at sim.Time
	var got *protocol.Packet
	k.Spawn("recv", func(p *sim.Proc) {
		got = b.Recv(p)
		at = p.Now()
	})
	k.Spawn("send", func(p *sim.Proc) { a.Send(pkt) })
	k.Run()
	if got == nil || got.Seg != 0 {
		t.Fatal("packet not delivered")
	}
	want := 450*time.Nanosecond + time.Microsecond
	if at != want {
		t.Fatalf("arrival at %v, want %v", at, want)
	}
}

func TestEgressSerializationQueues(t *testing.T) {
	k := sim.NewKernel()
	a := NewHost(k, HostAddr(0, 0))
	b := NewHost(k, HostAddr(0, 1))
	pa, pb := Connect(k, testLink(), a, "a", b, "b")
	a.SetPort(pa)
	b.SetPort(pb)

	var arrivals []sim.Time
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			b.Recv(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	k.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			a.Send(dataPkt(a.Addr, b.Addr, uint64(i), 100)) // 450ns each
		}
	})
	k.Run()
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d, want 3", len(arrivals))
	}
	// Back-to-back: 450ns, 900ns, 1350ns serialization ends + 1µs prop.
	want := []sim.Time{1450 * time.Nanosecond, 1900 * time.Nanosecond, 2350 * time.Nanosecond}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrival[%d] = %v, want %v", i, arrivals[i], want[i])
		}
	}
}

func TestFullDuplexDirectionsIndependent(t *testing.T) {
	k := sim.NewKernel()
	a := NewHost(k, HostAddr(0, 0))
	b := NewHost(k, HostAddr(0, 1))
	pa, pb := Connect(k, testLink(), a, "a", b, "b")
	a.SetPort(pa)
	b.SetPort(pb)

	var atA, atB sim.Time
	k.Spawn("a", func(p *sim.Proc) {
		a.Send(dataPkt(a.Addr, b.Addr, 0, 100))
		a.Recv(p)
		atA = p.Now()
	})
	k.Spawn("b", func(p *sim.Proc) {
		b.Send(dataPkt(b.Addr, a.Addr, 0, 100))
		b.Recv(p)
		atB = p.Now()
	})
	k.Run()
	want := 450*time.Nanosecond + time.Microsecond
	if atA != want || atB != want {
		t.Fatalf("duplex arrivals %v/%v, want both %v", atA, atB, want)
	}
}

func TestStarForwarding(t *testing.T) {
	k := sim.NewKernel()
	star := BuildStar(k, 4, testLink())
	src, dst := star.Hosts[0], star.Hosts[3]
	var at sim.Time
	k.Spawn("recv", func(p *sim.Proc) {
		pkt := dst.Recv(p)
		at = p.Now()
		if pkt.Src != src.Addr {
			t.Errorf("src = %v", pkt.Src)
		}
	})
	k.Spawn("send", func(p *sim.Proc) { src.Send(dataPkt(src.Addr, dst.Addr, 0, 100)) })
	k.Run()
	// Two link traversals (450ns + 1µs each) + 1µs switch pipeline.
	want := 2*(450*time.Nanosecond+time.Microsecond) + DefaultSwitchDelay
	if at != want {
		t.Fatalf("arrival %v, want %v", at, want)
	}
	if star.Switch.Forwarded != 1 {
		t.Fatalf("forwarded = %d", star.Switch.Forwarded)
	}
}

func TestCentralLinkContention(t *testing.T) {
	// Three hosts blast one destination through a star: the switch→dst
	// link must serialize, so total time ≈ 3 packets back to back.
	k := sim.NewKernel()
	star := BuildStar(k, 4, testLink())
	dst := star.Hosts[3]
	var last sim.Time
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			dst.Recv(p)
			last = p.Now()
		}
	})
	for i := 0; i < 3; i++ {
		h := star.Hosts[i]
		k.Spawn("send", func(p *sim.Proc) { h.Send(dataPkt(h.Addr, dst.Addr, 0, 300)) })
	}
	k.Run()
	// Each packet: 14+20+8+8+1200 = 1250B → 1250ns at 1B/ns.
	// Uplinks run in parallel; switch→dst serializes 3×1250ns.
	want := 1250*time.Nanosecond + time.Microsecond + DefaultSwitchDelay +
		3*1250*time.Nanosecond + time.Microsecond
	if last != want {
		t.Fatalf("last arrival %v, want %v", last, want)
	}
}

func TestSwitchNoRouteCounted(t *testing.T) {
	k := sim.NewKernel()
	star := BuildStar(k, 2, testLink())
	h := star.Hosts[0]
	k.Spawn("send", func(p *sim.Proc) {
		h.Send(dataPkt(h.Addr, protocol.AddrFrom(99, 9, 9, 9, 1), 0, 10))
	})
	k.Run()
	if star.Switch.NoRoute != 1 {
		t.Fatalf("NoRoute = %d, want 1", star.Switch.NoRoute)
	}
}

func TestTapInterceptsTaggedTraffic(t *testing.T) {
	k := sim.NewKernel()
	star := BuildStar(k, 2, testLink())
	var tapped []*protocol.Packet
	star.Switch.SetTap(func(pkt *protocol.Packet, in *Port) bool {
		if pkt.IsISwitch() {
			tapped = append(tapped, pkt)
			return true
		}
		return false
	})
	src, dst := star.Hosts[0], star.Hosts[1]
	var regular *protocol.Packet
	k.Spawn("recv", func(p *sim.Proc) { regular = dst.Recv(p) })
	k.Spawn("send", func(p *sim.Proc) {
		src.Send(dataPkt(src.Addr, dst.Addr, 0, 10)) // tagged: consumed
		src.Send(&protocol.Packet{Src: src.Addr, Dst: dst.Addr, ToS: protocol.ToSRegular})
	})
	k.Run()
	if len(tapped) != 1 {
		t.Fatalf("tapped %d, want 1", len(tapped))
	}
	if regular == nil || regular.ToS != protocol.ToSRegular {
		t.Fatal("regular traffic did not pass through")
	}
}

func TestLossInjection(t *testing.T) {
	k := sim.NewKernel()
	a := NewHost(k, HostAddr(0, 0))
	b := NewHost(k, HostAddr(0, 1))
	pa, pb := Connect(k, testLink(), a, "a", b, "b")
	a.SetPort(pa)
	b.SetPort(pb)
	pa.SetLoss(1.0, 1) // drop everything

	got := false
	k.Spawn("recv", func(p *sim.Proc) {
		_, ok := b.RecvTimeout(p, 10*time.Millisecond)
		got = ok
	})
	k.Spawn("send", func(p *sim.Proc) { a.Send(dataPkt(a.Addr, b.Addr, 0, 10)) })
	k.Run()
	if got {
		t.Fatal("packet delivered despite 100% loss")
	}
	if pa.Dropped != 1 {
		t.Fatalf("dropped = %d", pa.Dropped)
	}
}

func TestRackTopologyRouting(t *testing.T) {
	k := sim.NewKernel()
	tr := BuildRacks(k, 3, 3, testLink(), testLink())
	if len(tr.Hosts) != 9 || len(tr.ToRs) != 3 {
		t.Fatalf("hosts=%d tors=%d", len(tr.Hosts), len(tr.ToRs))
	}
	// Intra-rack: host 0 → host 1 (same rack) must not touch the root.
	src, dst := tr.Hosts[0], tr.Hosts[1]
	var gotIntra *protocol.Packet
	k.Spawn("recv", func(p *sim.Proc) { gotIntra = dst.Recv(p) })
	k.Spawn("send", func(p *sim.Proc) { src.Send(dataPkt(src.Addr, dst.Addr, 0, 10)) })
	k.Run()
	if gotIntra == nil {
		t.Fatal("intra-rack packet lost")
	}
	if tr.Root.Forwarded != 0 {
		t.Fatalf("intra-rack traffic crossed the root (%d)", tr.Root.Forwarded)
	}
	// Inter-rack: host 0 (rack 0) → host 8 (rack 2) goes via the root.
	far := tr.Hosts[8]
	var gotInter *protocol.Packet
	k.Spawn("recv2", func(p *sim.Proc) { gotInter = far.Recv(p) })
	k.Spawn("send2", func(p *sim.Proc) { src.Send(dataPkt(src.Addr, far.Addr, 0, 10)) })
	k.Run()
	if gotInter == nil {
		t.Fatal("inter-rack packet lost")
	}
	if tr.Root.Forwarded != 1 {
		t.Fatalf("root forwarded = %d, want 1", tr.Root.Forwarded)
	}
}

func TestRackOfMapping(t *testing.T) {
	k := sim.NewKernel()
	tr := BuildRacks(k, 4, 3, testLink(), testLink())
	for i, r := range tr.RackOf {
		if want := i / 3; r != want {
			t.Fatalf("RackOf[%d] = %d, want %d", i, r, want)
		}
	}
	if len(tr.Uplinks) != 4 {
		t.Fatalf("uplinks = %d", len(tr.Uplinks))
	}
}

func TestAttachHost(t *testing.T) {
	k := sim.NewKernel()
	star := BuildStar(k, 2, testLink())
	ps := star.AttachHost(k, protocol.AddrFrom(10, 0, 0, 10, 9990), testLink())
	var got *protocol.Packet
	k.Spawn("recv", func(p *sim.Proc) { got = ps.Recv(p) })
	h := star.Hosts[0]
	k.Spawn("send", func(p *sim.Proc) { h.Send(dataPkt(h.Addr, ps.Addr, 0, 10)) })
	k.Run()
	if got == nil {
		t.Fatal("attached host unreachable")
	}
}

func TestPortStats(t *testing.T) {
	k := sim.NewKernel()
	a := NewHost(k, HostAddr(0, 0))
	b := NewHost(k, HostAddr(0, 1))
	pa, pb := Connect(k, testLink(), a, "a", b, "b")
	a.SetPort(pa)
	b.SetPort(pb)
	pkt := dataPkt(a.Addr, b.Addr, 0, 25) // 150 bytes on the wire
	k.Spawn("recv", func(p *sim.Proc) { b.Recv(p) })
	k.Spawn("send", func(p *sim.Proc) { a.Send(pkt) })
	k.Run()
	if pa.TxPackets != 1 || pa.TxBytes != 150 {
		t.Fatalf("tx stats %d/%d", pa.TxPackets, pa.TxBytes)
	}
	if pb.RxPackets != 1 || pb.RxBytes != 150 {
		t.Fatalf("rx stats %d/%d", pb.RxPackets, pb.RxBytes)
	}
}

func TestPortTraceHook(t *testing.T) {
	k := sim.NewKernel()
	a := NewHost(k, HostAddr(0, 0))
	b := NewHost(k, HostAddr(0, 1))
	pa, pb := Connect(k, testLink(), a, "a", b, "b")
	a.SetPort(pa)
	b.SetPort(pb)
	type ev struct {
		kind string
		at   sim.Time
	}
	var events []ev
	hook := func(at sim.Time, kind string, pkt *protocol.Packet) {
		events = append(events, ev{kind, at})
	}
	pa.Trace = hook
	pb.Trace = hook
	k.Spawn("recv", func(p *sim.Proc) { b.Recv(p) })
	k.Spawn("send", func(p *sim.Proc) { a.Send(dataPkt(a.Addr, b.Addr, 0, 10)) })
	k.Run()
	if len(events) != 2 || events[0].kind != "tx" || events[1].kind != "rx" {
		t.Fatalf("events = %+v", events)
	}
	if events[1].at <= events[0].at {
		t.Fatalf("rx not after tx: %+v", events)
	}
	// Drops are traced too.
	events = nil
	pa.SetLoss(1.0, 1)
	k.Spawn("send2", func(p *sim.Proc) { a.Send(dataPkt(a.Addr, b.Addr, 1, 10)) })
	k.Run()
	if len(events) != 2 || events[1].kind != "drop" {
		t.Fatalf("drop not traced: %+v", events)
	}
}

func TestPerJobTxAccounting(t *testing.T) {
	k := sim.NewKernel()
	a := NewHost(k, HostAddr(0, 0))
	b := NewHost(k, HostAddr(0, 1))
	pa, pb := Connect(k, testLink(), a, "a", b, "b")
	a.SetPort(pa)
	b.SetPort(pb)

	mk := func(job protocol.JobID, n int) *protocol.Packet {
		p := dataPkt(a.Addr, b.Addr, 0, n)
		p.Job = job
		return p
	}
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			b.Recv(p)
		}
	})
	k.Spawn("send", func(p *sim.Proc) {
		a.Send(mk(1, 100))
		a.Send(mk(2, 100))
		a.Send(mk(1, 100))
		a.Send(mk(0, 100)) // untagged legacy traffic: not metered per job
	})
	k.Run()

	per := uint64(dataPkt(a.Addr, b.Addr, 0, 100).WireLen())
	if got := pa.TxBytesByJob(1); got != 2*per {
		t.Fatalf("job 1 bytes = %d, want %d", got, 2*per)
	}
	if got := pa.TxBytesByJob(2); got != per {
		t.Fatalf("job 2 bytes = %d, want %d", got, per)
	}
	if got := pa.TxBytesByJob(0); got != 0 {
		t.Fatalf("job 0 metered: %d", got)
	}
	if pa.TxBytes != 4*per {
		t.Fatalf("total TxBytes = %d, want %d", pa.TxBytes, 4*per)
	}
	shares := pa.TxJobShares()
	if len(shares) != 2 || shares[1] != 2*per || shares[2] != per {
		t.Fatalf("ledger = %v", shares)
	}
}
