// Declarative fault injection. A FaultPlan is the single description of
// everything that goes wrong in a run — per-link loss rates, surgical
// one-shot drops, link outage windows, worker crash/rejoin schedules,
// and switch failures — so an experiment states its fault model as data
// instead of scattering imperative Port.SetLoss calls across setup
// code. The plan is applied to a built cluster in one call
// (core.Cluster.ApplyFaults), which resolves worker/switch indices to
// concrete ports and switches for the chosen topology.
package netsim

import (
	"fmt"

	"iswitch/internal/sim"
)

// LinkDir selects which transmit direction(s) of a worker's access link
// a LinkFault applies to.
type LinkDir int

const (
	// DirBoth faults the worker's uplink and downlink.
	DirBoth LinkDir = iota
	// DirUp faults only worker → switch transmissions.
	DirUp
	// DirDown faults only switch → worker transmissions.
	DirDown
)

func (d LinkDir) String() string {
	switch d {
	case DirUp:
		return "up"
	case DirDown:
		return "down"
	default:
		return "both"
	}
}

// LinkFault describes impairments on one worker's access link.
type LinkFault struct {
	// Worker is the worker index the link belongs to.
	Worker int
	// Dir selects the faulted direction(s).
	Dir LinkDir
	// Loss is an i.i.d. per-packet drop probability in [0, 1).
	Loss float64
	// DropTx lists one-shot drops by transmit ordinal (1-based TxPackets
	// count on the faulted direction).
	DropTx []uint64
	// DownAt/DownUntil, when DownUntil > DownAt, take the direction(s)
	// down for the window [DownAt, DownUntil).
	DownAt, DownUntil sim.Time
}

// CrashFault schedules a worker process crash.
type CrashFault struct {
	// Worker is the crashing worker's index.
	Worker int
	// AtRound is the 1-based aggregation round during which the worker
	// dies (after sending PartialSegs of its contribution segments).
	AtRound int
	// PartialSegs is how many contribution segments escape before the
	// crash (0: the worker dies before transmitting anything).
	PartialSegs int
	// Rejoin, when true, restarts the worker after Outage of dead time;
	// otherwise the crash is permanent and the round can only complete
	// if the fabric's liveness horizon evicts the corpse.
	Rejoin bool
	// Outage is how long the worker stays dead before rejoining.
	Outage sim.Time
}

// SwitchFault schedules an aggregation-plane failure.
type SwitchFault struct {
	// Switch indexes the cluster's Switches() list (root/core first).
	// -1 fails every aggregation switch — the whole in-network
	// aggregation plane dies and workers must fail over to the backup
	// software relay path. Plain L2/L3 forwarding survives.
	Switch int
	// At is the virtual time of the failure.
	At sim.Time
}

// FaultPlan is the full declarative fault model for one run.
type FaultPlan struct {
	// Seed derives the per-link loss RNG streams (so one scalar
	// reproduces the whole plan deterministically). A LinkFault's stream
	// is seeded from Seed, the worker index, and the direction.
	Seed int64
	// Links lists access-link impairments.
	Links []LinkFault
	// Crashes lists worker crash/rejoin events (in-switch modes only).
	Crashes []CrashFault
	// Switches lists aggregation-switch failures (in-switch modes only).
	Switches []SwitchFault
}

// Validate checks plan-internal consistency (index bounds are checked
// at apply time, when the cluster's size is known).
func (fp *FaultPlan) Validate() error {
	for _, lf := range fp.Links {
		if lf.Worker < 0 {
			return fmt.Errorf("faultplan: link fault worker %d < 0", lf.Worker)
		}
		if lf.Loss < 0 || lf.Loss >= 1 {
			return fmt.Errorf("faultplan: worker %d loss %v outside [0,1)", lf.Worker, lf.Loss)
		}
		if lf.DownUntil < lf.DownAt {
			return fmt.Errorf("faultplan: worker %d down window ends before it starts", lf.Worker)
		}
	}
	for _, cf := range fp.Crashes {
		if cf.Worker < 0 {
			return fmt.Errorf("faultplan: crash worker %d < 0", cf.Worker)
		}
		if cf.AtRound < 1 {
			return fmt.Errorf("faultplan: crash at round %d (rounds are 1-based)", cf.AtRound)
		}
		if cf.PartialSegs < 0 {
			return fmt.Errorf("faultplan: crash partial segs %d < 0", cf.PartialSegs)
		}
		if cf.Rejoin && cf.Outage <= 0 {
			return fmt.Errorf("faultplan: worker %d rejoin needs a positive outage", cf.Worker)
		}
	}
	for _, sf := range fp.Switches {
		if sf.Switch < -1 {
			return fmt.Errorf("faultplan: switch index %d < -1", sf.Switch)
		}
	}
	return nil
}

// LinkSeed derives the deterministic loss-RNG seed for one faulted
// direction, mixing the plan seed, worker index, and direction so every
// stream is independent but reproducible from the one plan seed.
func (fp *FaultPlan) LinkSeed(worker int, dir LinkDir) int64 {
	return fp.Seed*1_000_003 + int64(worker)*7 + int64(dir) + 1
}

// ApplyLink installs one link fault onto a worker's NIC port pair:
// up is the worker's transmit side, down the switch's transmit side.
func (fp *FaultPlan) ApplyLink(lf LinkFault, up, down *Port) {
	apply := func(p *Port, dir LinkDir) {
		if lf.Loss > 0 {
			p.SetLoss(lf.Loss, fp.LinkSeed(lf.Worker, dir))
		}
		if len(lf.DropTx) > 0 {
			p.DropNth(lf.DropTx...)
		}
		if lf.DownUntil > lf.DownAt {
			p.SetDownWindow(lf.DownAt, lf.DownUntil)
		}
	}
	if lf.Dir == DirUp || lf.Dir == DirBoth {
		apply(up, DirUp)
	}
	if lf.Dir == DirDown || lf.Dir == DirBoth {
		apply(down, DirDown)
	}
}
