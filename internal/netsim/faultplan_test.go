package netsim

import (
	"strings"
	"testing"
	"time"

	"iswitch/internal/sim"
)

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		want string // substring of the error; "" = valid
	}{
		{"empty", FaultPlan{}, ""},
		{"valid", FaultPlan{
			Links:    []LinkFault{{Worker: 0, Dir: DirBoth, Loss: 0.05, DropTx: []uint64{3}}},
			Crashes:  []CrashFault{{Worker: 1, AtRound: 2, Rejoin: true, Outage: time.Millisecond}},
			Switches: []SwitchFault{{Switch: -1, At: time.Millisecond}},
		}, ""},
		{"negative-link-worker", FaultPlan{Links: []LinkFault{{Worker: -1}}}, "worker -1"},
		{"loss-too-high", FaultPlan{Links: []LinkFault{{Worker: 0, Loss: 1.0}}}, "outside [0,1)"},
		{"inverted-down-window", FaultPlan{Links: []LinkFault{
			{Worker: 0, DownAt: 2 * time.Millisecond, DownUntil: time.Millisecond}}}, "down window"},
		{"negative-crash-worker", FaultPlan{Crashes: []CrashFault{{Worker: -2, AtRound: 1}}}, "worker -2"},
		{"crash-round-zero", FaultPlan{Crashes: []CrashFault{{Worker: 0, AtRound: 0}}}, "1-based"},
		{"negative-partial-segs", FaultPlan{Crashes: []CrashFault{
			{Worker: 0, AtRound: 1, PartialSegs: -1}}}, "partial segs"},
		{"rejoin-without-outage", FaultPlan{Crashes: []CrashFault{
			{Worker: 0, AtRound: 1, Rejoin: true}}}, "positive outage"},
		{"switch-below-minus-one", FaultPlan{Switches: []SwitchFault{{Switch: -2}}}, "-2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid plan rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got error %v, want one containing %q", err, tc.want)
			}
		})
	}
}

// TestFaultPlanLinkSeedsIndependent pins the determinism contract: one
// plan seed derives a distinct stream per (worker, direction), and the
// same plan seed always derives the same streams.
func TestFaultPlanLinkSeedsIndependent(t *testing.T) {
	fp := FaultPlan{Seed: 7}
	seen := map[int64]string{}
	for w := 0; w < 4; w++ {
		for _, dir := range []LinkDir{DirUp, DirDown} {
			s := fp.LinkSeed(w, dir)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: worker %d %v and %s both derive %d", w, dir, prev, s)
			}
			seen[s] = dir.String()
		}
	}
	if fp.LinkSeed(2, DirUp) != (&FaultPlan{Seed: 7}).LinkSeed(2, DirUp) {
		t.Fatal("same plan seed derived different link seeds")
	}
}

// faultPair wires two hosts together and returns them with their ports.
func faultPair(k *sim.Kernel) (a, b *Host, pa, pb *Port) {
	a = NewHost(k, HostAddr(0, 0))
	b = NewHost(k, HostAddr(0, 1))
	pa, pb = Connect(k, testLink(), a, "a", b, "b")
	a.SetPort(pa)
	b.SetPort(pb)
	return
}

// TestFaultPlanApplyLinkDropTx: a one-shot DropTx fault applied through
// the plan must drop exactly the named transmit ordinal, in the faulted
// direction only.
func TestFaultPlanApplyLinkDropTx(t *testing.T) {
	k := sim.NewKernel()
	a, b, pa, pb := faultPair(k)
	fp := &FaultPlan{Links: []LinkFault{{Worker: 0, Dir: DirUp, DropTx: []uint64{2}}}}
	fp.ApplyLink(fp.Links[0], pa, pb)

	var got []uint64
	k.Spawn("recv", func(p *sim.Proc) {
		for {
			pkt, ok := b.RecvTimeout(p, 10*time.Millisecond)
			if !ok {
				return
			}
			got = append(got, pkt.Seg)
		}
	})
	k.Spawn("send", func(p *sim.Proc) {
		for seg := uint64(1); seg <= 3; seg++ {
			a.Send(dataPkt(a.Addr, b.Addr, seg, 10))
			p.Sleep(time.Millisecond)
		}
	})
	k.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("delivered segs %v, want [1 3] (ordinal 2 dropped)", got)
	}
	if pa.Dropped != 1 || pb.Dropped != 0 {
		t.Fatalf("dropped up=%d down=%d, want 1/0 (DirUp only)", pa.Dropped, pb.Dropped)
	}
}

// TestFaultPlanApplyLinkDownWindow: an outage window kills frames whose
// serialization starts inside it and lets later traffic through.
func TestFaultPlanApplyLinkDownWindow(t *testing.T) {
	k := sim.NewKernel()
	a, b, pa, pb := faultPair(k)
	fp := &FaultPlan{Links: []LinkFault{{
		Worker: 0, Dir: DirBoth,
		DownAt: 500 * time.Microsecond, DownUntil: 1500 * time.Microsecond,
	}}}
	fp.ApplyLink(fp.Links[0], pa, pb)

	var got []uint64
	k.Spawn("recv", func(p *sim.Proc) {
		for {
			pkt, ok := b.RecvTimeout(p, 10*time.Millisecond)
			if !ok {
				return
			}
			got = append(got, pkt.Seg)
		}
	})
	k.Spawn("send", func(p *sim.Proc) {
		for seg := uint64(1); seg <= 3; seg++ {
			// Sends at t=0, 1ms, 2ms: the second lands inside the window.
			a.Send(dataPkt(a.Addr, b.Addr, seg, 10))
			p.Sleep(time.Millisecond)
		}
	})
	k.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("delivered segs %v, want [1 3] (window swallowed the middle send)", got)
	}
}
