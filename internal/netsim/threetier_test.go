package netsim

import (
	"testing"
	"time"

	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

func TestThreeTierShape(t *testing.T) {
	k := sim.NewKernel()
	tt := BuildThreeTier(k, 2, 2, 3, testLink(), testLink(), testLink())
	if len(tt.Hosts) != 12 || len(tt.ToRs) != 4 || len(tt.AGGs) != 2 {
		t.Fatalf("hosts=%d tors=%d aggs=%d", len(tt.Hosts), len(tt.ToRs), len(tt.AGGs))
	}
	for i, tor := range tt.ToROf {
		if want := i / 3; tor != want {
			t.Fatalf("ToROf[%d] = %d, want %d", i, tor, want)
		}
	}
	for tor, agg := range tt.AGGOf {
		if want := tor / 2; agg != want {
			t.Fatalf("AGGOf[%d] = %d, want %d", tor, agg, want)
		}
	}
}

func TestThreeTierRoutingLevels(t *testing.T) {
	k := sim.NewKernel()
	tt := BuildThreeTier(k, 2, 2, 3, testLink(), testLink(), testLink())

	deliver := func(src, dst *Host) {
		t.Helper()
		var got *protocol.Packet
		k.Spawn("recv", func(p *sim.Proc) {
			pkt, ok := dst.RecvTimeout(p, 10*time.Millisecond)
			if ok {
				got = pkt
			}
		})
		k.Spawn("send", func(p *sim.Proc) {
			src.Send(protocol.NewData(src.Addr, dst.Addr, 0, []float32{1}))
		})
		k.Run()
		if got == nil {
			t.Fatalf("no delivery %v → %v", src.Addr, dst.Addr)
		}
	}

	// Same ToR: no AGG/core involvement.
	deliver(tt.Hosts[0], tt.Hosts[1])
	if tt.AGGs[0].Forwarded != 0 || tt.Core.Forwarded != 0 {
		t.Fatal("intra-ToR traffic escalated")
	}
	// Same AGG, different ToR: through the AGG, not the core.
	deliver(tt.Hosts[0], tt.Hosts[3])
	if tt.AGGs[0].Forwarded == 0 {
		t.Fatal("inter-ToR traffic skipped the AGG")
	}
	if tt.Core.Forwarded != 0 {
		t.Fatal("intra-pod traffic crossed the core")
	}
	// Different AGGs: through the core.
	deliver(tt.Hosts[0], tt.Hosts[11])
	if tt.Core.Forwarded == 0 {
		t.Fatal("inter-pod traffic skipped the core")
	}
}

func TestDefaultThreeTierLinkSpeeds(t *testing.T) {
	edge, agg, core := DefaultThreeTierLinks()
	if edge.BitsPerSecond != 10e9 || agg.BitsPerSecond != 40e9 || core.BitsPerSecond != 100e9 {
		t.Fatalf("link plan %v/%v/%v", edge.BitsPerSecond, agg.BitsPerSecond, core.BitsPerSecond)
	}
}

func TestThreeTierAddressesDistinct(t *testing.T) {
	k := sim.NewKernel()
	tt := BuildThreeTier(k, 2, 2, 3, testLink(), testLink(), testLink())
	seen := map[string]bool{}
	for _, h := range tt.Hosts {
		if seen[h.Addr.String()] {
			t.Fatalf("duplicate address %v", h.Addr)
		}
		seen[h.Addr.String()] = true
	}
}
