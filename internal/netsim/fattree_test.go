package netsim

import (
	"testing"

	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

func TestFatTreeShape(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	ft := BuildFatTree(k, 4, 2, TenGbE(), FortyGbE(), FortyGbE())
	if len(ft.Cores) != 4 {
		t.Fatalf("cores = %d, want (k/2)^2 = 4", len(ft.Cores))
	}
	if len(ft.Aggs) != 4 || len(ft.Aggs[0]) != 2 || len(ft.Edges[0]) != 2 {
		t.Fatalf("pod shape wrong: %d pods, %d aggs, %d edges",
			len(ft.Aggs), len(ft.Aggs[0]), len(ft.Edges[0]))
	}
	if ft.NumWorkers() != 4*2*2 {
		t.Fatalf("workers = %d, want 16", ft.NumWorkers())
	}
	// Port budget on the spine core: one link per pod.
	if got := len(ft.Cores[0].Ports()); got != 4 {
		t.Fatalf("core0 ports = %d, want k = 4", got)
	}
	// Every agg has k/2 core uplinks + k/2 edge downlinks.
	if got := len(ft.Aggs[1][0].Ports()); got != 4 {
		t.Fatalf("agg ports = %d, want k = 4", got)
	}
}

func TestFatTreeK8Has1024WorkersWithDenseRacks(t *testing.T) {
	k := sim.NewKernel()
	defer k.Shutdown()
	ft := BuildFatTree(k, 8, 32, TenGbE(), FortyGbE(), FortyGbE())
	if ft.NumWorkers() != 1024 {
		t.Fatalf("workers = %d, want 1024 (8 pods x 4 edges x 32 hosts)", ft.NumWorkers())
	}
	if len(ft.Cores) != 16 {
		t.Fatalf("cores = %d, want 16", len(ft.Cores))
	}
	// Address plan must be collision-free.
	seen := make(map[protocol.Addr]bool, ft.NumWorkers())
	for _, h := range ft.Hosts {
		if seen[h.Addr] {
			t.Fatalf("duplicate host address %v", h.Addr)
		}
		seen[h.Addr] = true
		if h.Addr.IP[0] != 11 {
			t.Fatalf("host %v outside the 11.0.0.0/8 fat-tree plan", h.Addr)
		}
	}
}

// TestFatTreeCrossPodDelivery sends host→host across pods and within a
// pod, exercising the full spine (edge → agg0 → core0 → agg0 → edge).
func TestFatTreeCrossPodDelivery(t *testing.T) {
	k := sim.NewKernel()
	ft := BuildFatTree(k, 4, 2, TenGbE(), FortyGbE(), FortyGbE())
	src := ft.Hosts[0]                      // pod 0
	crossDst := ft.Hosts[ft.NumWorkers()-1] // pod 3
	sameDst := ft.Hosts[1]                  // pod 0, same edge

	got := make(map[protocol.Addr]int)
	recv := func(h *Host) {
		k.Spawn("recv", func(p *sim.Proc) {
			pkt := h.Recv(p)
			got[h.Addr] += len(pkt.Data)
			pkt.Release()
		})
	}
	recv(crossDst)
	recv(sameDst)
	k.Spawn("send", func(p *sim.Proc) {
		src.Send(protocol.NewData(src.Addr, crossDst.Addr, 1, []float32{1, 2, 3}))
		src.Send(protocol.NewData(src.Addr, sameDst.Addr, 2, []float32{4}))
	})
	k.Run()
	k.Shutdown()
	if got[crossDst.Addr] != 3 {
		t.Fatalf("cross-pod delivery got %d floats, want 3", got[crossDst.Addr])
	}
	if got[sameDst.Addr] != 1 {
		t.Fatalf("same-edge delivery got %d floats, want 1", got[sameDst.Addr])
	}
}

func TestFatTreeRejectsBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BuildFatTree accepted odd k")
		}
	}()
	BuildFatTree(sim.NewKernel(), 3, 1, TenGbE(), FortyGbE(), FortyGbE())
}
