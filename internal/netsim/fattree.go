package netsim

import (
	"fmt"

	"iswitch/internal/protocol"
	"iswitch/internal/sim"
)

// FatTree is a k-ary fat-tree (Al-Fares et al.): k pods, each with k/2
// edge switches and k/2 aggregation switches, plus (k/2)² core
// switches. The classic construction attaches k/2 hosts to each edge
// switch; hostsPerEdge generalizes that so rack density and pod count
// scale independently — k=8 with hostsPerEdge=32 yields the
// 1024-worker topology the calendar-queue kernel is sized for.
//
// Routing is deterministic single-path: every flow follows the embedded
// aggregation tree edge → agg0(pod) → core0 (no ECMP hashing — path
// choice would otherwise depend on map iteration or flow hashing and
// break the simulator's bit-for-bit reproducibility). The remaining
// aggs and cores are built and cabled so port counts and link budgets
// match a real fat-tree, but the default routes steer through the
// spine of the embedded tree, which is also where the in-switch
// aggregation hierarchy lives.
type FatTree struct {
	K            int
	HostsPerEdge int

	Cores []*Switch   // (k/2)² core switches; Cores[0] is the spine root
	Aggs  [][]*Switch // Aggs[pod][i], i < k/2; Aggs[pod][0] is on the spine
	Edges [][]*Switch // Edges[pod][i], i < k/2
	Hosts []*Host     // all workers, pod-major then edge-major order

	// PodOf[h] and EdgeOf[h] locate Hosts[h]'s pod and edge switch
	// (EdgeOf is the index within the pod).
	PodOf  []int
	EdgeOf []int

	// EdgeUplinks[pod][e] is edge e's port toward Aggs[pod][0];
	// AggUplinks[pod] is Aggs[pod][0]'s port toward Cores[0].
	EdgeUplinks [][]*Port
	AggUplinks  []*Port
}

// NumWorkers returns the host count: k pods × k/2 edges × hostsPerEdge.
func (ft *FatTree) NumWorkers() int { return len(ft.Hosts) }

// BuildFatTree wires a k-ary fat-tree. k must be even and ≥ 2;
// hostsPerEdge ≥ 1 (pass k/2 for the classic construction). edge is
// the host↔edge link, aggLink the edge↔agg link, coreLink the agg↔core
// link.
func BuildFatTree(k *sim.Kernel, kAry, hostsPerEdge int, edge, aggLink, coreLink LinkConfig) *FatTree {
	if kAry < 2 || kAry%2 != 0 {
		panic(fmt.Sprintf("netsim: fat-tree k must be even and >= 2, got %d", kAry))
	}
	if hostsPerEdge < 1 {
		panic(fmt.Sprintf("netsim: fat-tree hostsPerEdge must be >= 1, got %d", hostsPerEdge))
	}
	half := kAry / 2
	ft := &FatTree{K: kAry, HostsPerEdge: hostsPerEdge}

	for c := 0; c < half*half; c++ {
		ft.Cores = append(ft.Cores, NewSwitch(k, fmt.Sprintf("core%d", c), DefaultSwitchDelay))
	}
	spineCore := ft.Cores[0]

	for pod := 0; pod < kAry; pod++ {
		var aggs, edges []*Switch
		var edgeUps []*Port

		for a := 0; a < half; a++ {
			agg := NewSwitch(k, fmt.Sprintf("pod%d/agg%d", pod, a), DefaultSwitchDelay)
			aggs = append(aggs, agg)
			// Each agg a connects to cores [a*half, (a+1)*half) — the
			// standard k-ary wiring, so every core sees every pod once.
			for i := 0; i < half; i++ {
				core := ft.Cores[a*half+i]
				aggUp, coreDown := Connect(k, coreLink,
					agg, fmt.Sprintf("pod%d/agg%d/up%d", pod, a, i),
					core, fmt.Sprintf("core%d/p%d", a*half+i, pod))
				agg.AddPort(aggUp)
				core.AddPort(coreDown)
				if a == 0 && i == 0 {
					// Spine uplink: agg0 defaults toward core0.
					agg.SetDefault(aggUp)
					ft.AggUplinks = append(ft.AggUplinks, aggUp)
				}
			}
		}

		for e := 0; e < half; e++ {
			edgeSw := NewSwitch(k, fmt.Sprintf("pod%d/edge%d", pod, e), DefaultSwitchDelay)
			edges = append(edges, edgeSw)
			// Cable edge e to every agg in the pod; the port toward
			// agg0 is the spine uplink and default route.
			var spineUp *Port
			var agg0Down *Port
			for a := 0; a < half; a++ {
				up, down := Connect(k, aggLink,
					edgeSw, fmt.Sprintf("pod%d/edge%d/up%d", pod, e, a),
					aggs[a], fmt.Sprintf("pod%d/agg%d/p%d", pod, a, e))
				edgeSw.AddPort(up)
				aggs[a].AddPort(down)
				if a == 0 {
					spineUp, agg0Down = up, down
				}
			}
			edgeSw.SetDefault(spineUp)
			edgeUps = append(edgeUps, spineUp)

			for h := 0; h < hostsPerEdge; h++ {
				addr := fatTreeAddr(pod, e, h)
				host := NewHost(k, addr)
				swPort, hostPort := Connect(k, edge,
					edgeSw, fmt.Sprintf("pod%d/edge%d/p%d", pod, e, h),
					host, addr.String())
				edgeSw.AddPort(swPort)
				host.SetPort(hostPort)
				// Downward routes on the spine: edge knows its hosts;
				// agg0 knows the pod's hosts via the edge; core0 knows
				// every host via the pod's agg0.
				edgeSw.AddRoute(protocol.Addr{IP: addr.IP}, swPort)
				aggs[0].AddRoute(protocol.Addr{IP: addr.IP}, agg0Down)
				ft.Hosts = append(ft.Hosts, host)
				ft.PodOf = append(ft.PodOf, pod)
				ft.EdgeOf = append(ft.EdgeOf, e)
			}
		}
		ft.Aggs = append(ft.Aggs, aggs)
		ft.Edges = append(ft.Edges, edges)
		ft.EdgeUplinks = append(ft.EdgeUplinks, edgeUps)
	}

	// Core0 downward routes: one prefix route per pod would need masked
	// routing; the route table is exact-IP, so add one entry per host,
	// steering down the pod's agg0 link. Core0's port toward pod p's
	// agg0 is its p-th port (cores connect pods in pod order).
	for h, host := range ft.Hosts {
		pod := ft.PodOf[h]
		spineCore.AddRoute(protocol.Addr{IP: host.Addr.IP}, spineCore.Ports()[pod])
	}
	return ft
}

// fatTreeAddr places fat-tree workers in 11.pod.edge.host — a separate
// /8 from the star (10.0.*), tree (10.1..31.*), and three-tier
// (10.32+.*) plans so topologies can never collide in route tables.
func fatTreeAddr(pod, edge, host int) protocol.Addr {
	return protocol.AddrFrom(11, byte(pod), byte(edge), byte(2+host), WorkerPort)
}
