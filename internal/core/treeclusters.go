package core

import (
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/sim"
	"iswitch/internal/switchnet"
)

// Rack-scale (two-level) variants of the three strategies for the
// scalability experiments (Figure 15). Workers sit in racks of up to
// perRack nodes under plain or iSwitch-enabled ToR switches; the PS
// server hangs off the root switch; the AllReduce ring crosses rack
// boundaries (paying the extra root hops the paper's hop-count analysis
// predicts).

// NewISWTreeN is NewISWTree for a worker count that may not fill its
// last rack.
func NewISWTreeN(k *sim.Kernel, totalWorkers, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg ISWConfig) *ISWCluster {
	tc := switchnet.BuildTreeN(k, totalWorkers, perRack, edge, uplink)
	c := &ISWCluster{
		workers: tc.Workers, n: modelFloats, h: len(tc.Workers), cfg: cfg,
		Tree: tc,
	}
	for i := range tc.Workers {
		c.target = append(c.target, tc.ToROf(i).Addr())
	}
	return c
}

// NewPSClusterTree builds a PS cluster over a two-level topology with
// the server attached to the root switch.
func NewPSClusterTree(k *sim.Kernel, totalWorkers, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg PSConfig) *PSCluster {
	tr := netsim.BuildRacksN(k, totalWorkers, perRack, edge, uplink)
	server := tr.AttachRootHost(k, PSServerAddr(), uplink)
	c := &PSCluster{Server: server, workers: tr.Hosts, n: modelFloats, cfg: cfg}
	c.startServer(k)
	return c
}

// NewAsyncPSClusterTree is NewPSClusterTree without the synchronous
// server (RunAsyncPS provides its own).
func NewAsyncPSClusterTree(k *sim.Kernel, totalWorkers, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg PSConfig) *PSCluster {
	tr := netsim.BuildRacksN(k, totalWorkers, perRack, edge, uplink)
	server := tr.AttachRootHost(k, PSServerAddr(), uplink)
	return &PSCluster{Server: server, workers: tr.Hosts, n: modelFloats, cfg: cfg}
}

// NewARClusterTree builds an AllReduce cluster over a two-level
// topology; the ring follows worker index order, so rack boundaries
// add root-switch crossings.
func NewARClusterTree(k *sim.Kernel, totalWorkers, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg ARConfig) *ARCluster {
	tr := netsim.BuildRacksN(k, totalWorkers, perRack, edge, uplink)
	return &ARCluster{workers: tr.Hosts, n: modelFloats, cfg: cfg}
}

// NewISWThreeTier builds an iSwitch cluster over the full three-tier
// ToR→AGG→Core fabric of Figure 10.
func NewISWThreeTier(k *sim.Kernel, nAGGs, torsPerAGG, hostsPerToR, modelFloats int, edge, aggLink, coreLink netsim.LinkConfig, cfg ISWConfig) *ISWCluster {
	tc := switchnet.BuildThreeTier(k, nAGGs, torsPerAGG, hostsPerToR, edge, aggLink, coreLink)
	c := &ISWCluster{
		workers: tc.Workers, n: modelFloats, h: len(tc.Workers), cfg: cfg,
		ThreeTier: tc,
	}
	for i := range tc.Workers {
		c.target = append(c.target, tc.ToROf3(i).Addr())
	}
	return c
}

// ISWConfigFor adapts the default iSwitch config to a workload (kept
// for symmetry with PSConfigFor/ARConfigFor; the raw-UDP client path
// has no per-workload software costs).
func ISWConfigFor(perfmodel.Workload) ISWConfig { return DefaultISWConfig() }
