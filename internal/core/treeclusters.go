package core

import (
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/sim"
)

// Rack-scale (two-level) variants of the three strategies for the
// scalability experiments (Figure 15). Workers sit in racks of up to
// perRack nodes under plain or iSwitch-enabled ToR switches; the PS
// server hangs off the root switch; the AllReduce ring crosses rack
// boundaries (paying the extra root hops the paper's hop-count analysis
// predicts).

// NewISWTreeN is NewISWTree for a worker count that may not fill its
// last rack.
//
// Deprecated: use Build with ClusterSpec{Topology: TopoTree, Mode: ModeISW}.
func NewISWTreeN(k *sim.Kernel, totalWorkers, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg ISWConfig) *ISWCluster {
	return Build(k, ClusterSpec{Topology: TopoTree, Mode: ModeISW, Workers: totalWorkers, PerRack: perRack, ModelFloats: modelFloats, Link: edge, Uplink: uplink, ISW: &cfg}).ISW
}

// NewPSClusterTree builds a PS cluster over a two-level topology with
// the server attached to the root switch.
//
// Deprecated: use Build with ClusterSpec{Topology: TopoTree, Mode: ModePS}.
func NewPSClusterTree(k *sim.Kernel, totalWorkers, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg PSConfig) *PSCluster {
	return Build(k, ClusterSpec{Topology: TopoTree, Mode: ModePS, Workers: totalWorkers, PerRack: perRack, ModelFloats: modelFloats, Link: edge, Uplink: uplink, PS: &cfg}).PS
}

// NewAsyncPSClusterTree is NewPSClusterTree without the synchronous
// server (RunAsyncPS provides its own).
//
// Deprecated: use Build with ClusterSpec{Topology: TopoTree, Mode: ModeAsyncPS}.
func NewAsyncPSClusterTree(k *sim.Kernel, totalWorkers, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg PSConfig) *PSCluster {
	return Build(k, ClusterSpec{Topology: TopoTree, Mode: ModeAsyncPS, Workers: totalWorkers, PerRack: perRack, ModelFloats: modelFloats, Link: edge, Uplink: uplink, PS: &cfg}).PS
}

// NewARClusterTree builds an AllReduce cluster over a two-level
// topology; the ring follows worker index order, so rack boundaries
// add root-switch crossings.
//
// Deprecated: use Build with ClusterSpec{Topology: TopoTree, Mode: ModeAllReduce}.
func NewARClusterTree(k *sim.Kernel, totalWorkers, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg ARConfig) *ARCluster {
	return Build(k, ClusterSpec{Topology: TopoTree, Mode: ModeAllReduce, Workers: totalWorkers, PerRack: perRack, ModelFloats: modelFloats, Link: edge, Uplink: uplink, AR: &cfg}).AR
}

// NewISWThreeTier builds an iSwitch cluster over the full three-tier
// ToR→AGG→Core fabric of Figure 10.
//
// Deprecated: use Build with ClusterSpec{Topology: TopoThreeTier, Mode: ModeISW}.
func NewISWThreeTier(k *sim.Kernel, nAGGs, torsPerAGG, hostsPerToR, modelFloats int, edge, aggLink, coreLink netsim.LinkConfig, cfg ISWConfig) *ISWCluster {
	return Build(k, ClusterSpec{Topology: TopoThreeTier, Mode: ModeISW, AGGs: nAGGs, ToRsPerAGG: torsPerAGG, HostsPerToR: hostsPerToR, ModelFloats: modelFloats, Link: edge, Uplink: aggLink, CoreLink: coreLink, ISW: &cfg}).ISW
}

// ISWConfigFor adapts the default iSwitch config to a workload (kept
// for symmetry with PSConfigFor/ARConfigFor; the raw-UDP client path
// has no per-workload software costs).
func ISWConfigFor(perfmodel.Workload) ISWConfig { return DefaultISWConfig() }
