package core

import (
	"testing"
	"time"

	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// seededJitter returns a deterministic per-(worker,iter) compute-jitter
// function: an xorshift-mixed hash of the seed and indices mapped into
// [0, spread). Same seed ⇒ same schedule, so stress runs reproduce.
func seededJitter(seed uint64, spread sim.Time) func(worker, iter int) sim.Time {
	return func(worker, iter int) sim.Time {
		x := seed ^ uint64(worker)*0x9e3779b97f4a7c15 ^ uint64(iter)*0xbf58476d1ce4e5b9
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		return sim.Time(x % uint64(spread))
	}
}

// Async iSwitch under randomized (seeded) compute jitter: the
// decentralized replicas must stay bitwise identical, the staleness
// bound must hold, and the whole run must be reproducible.
func TestAsyncISWJitterStress(t *testing.T) {
	const nWorkers, nFloats = 5, 800
	run := func(seed uint64) (*AsyncStats, []*intAgent) {
		k := sim.NewKernel()
		c := NewISWStar(k, nWorkers, nFloats, testLink(), DefaultISWConfig())
		agents := make([]rl.Agent, nWorkers)
		ints := make([]*intAgent, nWorkers)
		for i := range agents {
			ints[i] = newIntAgent(i, nFloats)
			agents[i] = ints[i]
		}
		cfg := AsyncConfig{Updates: 25, StalenessBound: 2,
			LocalCompute: 50 * time.Microsecond, WeightUpdate: 10 * time.Microsecond,
			ComputeJitter: seededJitter(seed, 500*time.Microsecond)}
		return RunAsyncISW(k, agents, c, cfg), ints
	}
	stats, ints := run(42)

	if stats.Committed == 0 {
		t.Fatal("no gradients committed under jitter")
	}
	if s := stats.MeanStaleness(); s > 2 {
		t.Fatalf("mean staleness %v exceeds bound", s)
	}
	// Jittered workers fall out of lockstep, yet the decentralized
	// replicas must never diverge: every LWU applies the same broadcast
	// sums in the same order.
	for w, a := range ints {
		if int64(len(a.applied)) != stats.Updates {
			t.Fatalf("worker %d applied %d updates, want %d", w, len(a.applied), stats.Updates)
		}
		for i := range a.params {
			if a.params[i] != ints[0].params[i] {
				t.Fatalf("worker %d param %d diverged under jitter", w, i)
			}
		}
	}
	// Same seed reproduces the run exactly; a different seed perturbs it.
	again, _ := run(42)
	if again.Total != stats.Total || again.Committed != stats.Committed ||
		again.StalenessSum != stats.StalenessSum {
		t.Fatalf("same seed not reproducible: %v/%d vs %v/%d",
			again.Total, again.Committed, stats.Total, stats.Committed)
	}
	other, _ := run(1337)
	if other.Total == stats.Total && other.StalenessSum == stats.StalenessSum {
		t.Fatal("different seed produced an identical run; jitter is not wired in")
	}
}

// Sharded async PS under seeded jitter: every shard must reach its
// update target, respect the staleness bound per shard, and keep the
// master weights consistent with the per-shard slice updates — all
// reproducibly.
func TestAsyncShardedPSJitterStress(t *testing.T) {
	const nWorkers, nFloats, shards = 4, 1500, 3
	run := func(seed uint64) (*AsyncStats, *intAgent) {
		k := sim.NewKernel()
		c := NewAsyncShardedPSCluster(k, nWorkers, nFloats, shards, testLink(), DefaultPSConfig())
		agents := make([]rl.Agent, nWorkers)
		for i := range agents {
			agents[i] = newIntAgent(i, nFloats)
		}
		master := newIntAgent(99, nFloats)
		cfg := AsyncConfig{Updates: 12, StalenessBound: 3,
			LocalCompute: 120 * time.Microsecond, WeightUpdate: 15 * time.Microsecond,
			ComputeJitter: seededJitter(seed, 400*time.Microsecond)}
		return RunAsyncShardedPS(k, agents, master, c, cfg), master
	}
	stats, master := run(7)

	for s, ps := range stats.PerShard {
		if ps.Committed != stats.Updates {
			t.Fatalf("shard %d committed %d, want %d", s, ps.Committed, stats.Updates)
		}
		if ps.MaxStaleness > 3 {
			t.Fatalf("shard %d max staleness %d exceeds bound", s, ps.MaxStaleness)
		}
		if m := ps.MeanStaleness(); m > 3 {
			t.Fatalf("shard %d mean staleness %v exceeds bound", s, m)
		}
	}
	if m := stats.MeanStaleness(); m > 3 {
		t.Fatalf("global mean staleness %v exceeds bound", m)
	}
	// The master's weights must be exactly the fold of the applied slice
	// updates: replaying master.applied onto fresh params reproduces
	// master.params (no slice update leaked outside its shard, none was
	// lost, none was double-applied).
	replay := newIntAgent(99, nFloats)
	for _, vec := range master.applied {
		replay.ApplyAggregated(vec, 1)
	}
	for i := range replay.params {
		if replay.params[i] != master.params[i] {
			t.Fatalf("replayed weights diverge at %d: %v vs %v", i, replay.params[i], master.params[i])
		}
	}
	// Reproducibility under the same seed; sensitivity to the seed.
	again, _ := run(7)
	if again.Total != stats.Total || again.Committed != stats.Committed ||
		again.Discarded != stats.Discarded {
		t.Fatal("same seed not reproducible")
	}
	other, _ := run(8)
	if other.Total == stats.Total && other.StalenessSum == stats.StalenessSum {
		t.Fatal("different seed produced an identical run; jitter is not wired in")
	}
}
