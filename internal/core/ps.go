package core

import (
	"iswitch/internal/accel"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
	"iswitch/internal/tensor/kernels"
)

// Parameter-server aggregation (Figure 1a): every worker ships its full
// gradient to one central server host behind the switch; the server
// sums them and ships the result back to every worker. Four network
// hops per round, and the server's single link serializes N gradient
// vectors in each direction — the central bottleneck the paper
// measures.
//
// The reference PS design updates weights at the server and returns
// them; returning the summed gradient instead is byte-identical on the
// wire (weights and gradients have the same size) and mathematically
// equivalent since every worker applies the same deterministic
// optimizer step. Keeping the optimizer at the workers lets the PS,
// AR, and iSwitch strategies share one Agent implementation.

// PSConfig carries the software-stack costs of the PS reference design.
type PSConfig struct {
	// PerMessage is charged by the server for each whole-gradient
	// message it receives or sends.
	PerMessage sim.Time
	// WorkerBase is charged by each worker per aggregation round.
	WorkerBase sim.Time
	// SumRate is the server's float32 element-additions per second.
	SumRate float64
	// CopyRate is the server's tensor-staging throughput in bytes/sec,
	// charged on every whole-gradient message in either direction.
	CopyRate float64
	// Tensors is the framework-level tensor messages per gradient
	// (DDPG's dual model ships two); PerMessage is paid per tensor.
	Tensors int
	// MessageFloor is the irreducible size-independent launch cost of a
	// PS message, the lower bound on sharded-PS per-slice costs that
	// scale PerMessage by the shard's share of the model.
	MessageFloor sim.Time
	// AsyncUpdateExtra is the additional server time per accepted update
	// in the asynchronous variant (perfmodel.Workload.AsyncPSUpdateCost).
	AsyncUpdateExtra sim.Time
}

// DefaultPSConfig mirrors the measured reference implementation.
func DefaultPSConfig() PSConfig {
	return PSConfig{
		PerMessage:   perfmodel.PSPerMessage,
		WorkerBase:   perfmodel.PSWorkerBase,
		SumRate:      perfmodel.PSSumRate,
		CopyRate:     perfmodel.PSCopyRate,
		Tensors:      1,
		MessageFloor: perfmodel.PSMessageFloor,
	}
}

// PSConfigFor adapts the default PS config to a paper workload.
func PSConfigFor(w perfmodel.Workload) PSConfig {
	cfg := DefaultPSConfig()
	cfg.Tensors = w.Tensors()
	cfg.AsyncUpdateExtra = w.AsyncPSUpdateCost
	return cfg
}

// msgCost is the server's software cost for one whole-gradient message.
func (c PSConfig) msgCost(floats int) sim.Time {
	t := c.Tensors
	if t < 1 {
		t = 1
	}
	return sim.Time(t)*c.PerMessage + sim.Time(float64(floats*4)/c.CopyRate*1e9)
}

// PSCluster is a star network with an extra parameter-server host.
type PSCluster struct {
	Star    *netsim.Star
	Server  *netsim.Host
	workers []*netsim.Host
	n       int
	cfg     PSConfig

	// scheme is the job's gradient wire format. The PS path supports
	// CompNone and CompFP16 (gradients and sync replies rounded through
	// half precision and carried at 2 B/element; async weight pulls stay
	// raw float32 so the authoritative weights never lose precision).
	scheme protocol.Compression
}

// Compression returns the cluster's gradient wire scheme.
func (c *PSCluster) Compression() protocol.Compression { return c.scheme }

// PSServerAddr is the parameter server's address.
func PSServerAddr() protocol.Addr { return protocol.AddrFrom(10, 0, 0, 10, 9990) }

// Workers exposes the worker hosts (the server is separate).
func (c *PSCluster) Workers() []*netsim.Host { return c.workers }

// NewPSCluster builds nWorkers workers plus a server on one plain
// (non-programmable) switch. modelFloats is the gradient length.
//
// Deprecated: use Build with ClusterSpec{Topology: TopoStar, Mode: ModePS}.
func NewPSCluster(k *sim.Kernel, nWorkers, modelFloats int, link netsim.LinkConfig, cfg PSConfig) *PSCluster {
	return Build(k, ClusterSpec{Topology: TopoStar, Mode: ModePS, Workers: nWorkers, ModelFloats: modelFloats, Link: link, PS: &cfg}).PS
}

// startServer spawns the synchronous aggregation server process.
func (c *PSCluster) startServer(k *sim.Kernel) {
	k.Spawn("ps-server", func(p *sim.Proc) {
		asm := make(map[protocol.Addr]*protocol.Assembler)
		for {
			// Gather one full gradient vector from each worker.
			var round []protocol.Addr
			sum := make([]float32, c.n)
			for len(round) < len(c.workers) {
				pkt := c.Server.Recv(p)
				if !pkt.IsData() {
					continue
				}
				a := asm[pkt.Src]
				if a == nil {
					a = protocol.NewAssembler(c.n)
					asm[pkt.Src] = a
				}
				if err := a.Add(pkt); err != nil {
					continue
				}
				if a.Complete() {
					p.Sleep(c.cfg.msgCost(c.n)) // framework receive cost
					for i, v := range a.Vector() {
						sum[i] += v
					}
					a.Reset()
					round = append(round, pkt.Src)
				}
			}
			// Deferred whole-vector summation happened above per arrival
			// order; charge the vectorized add cost once per round.
			p.Sleep(accel.SumLatency(c.n, len(round), c.cfg.SumRate))
			// Reply to each worker of the round; the server NIC
			// serializes these N vectors back-to-back. Under fp16 the
			// reply is rounded through the wire precision once — every
			// worker then applies identical values.
			if c.scheme == protocol.CompFP16 {
				kernels.F16RoundInPlace(sum)
			}
			for _, dst := range round {
				p.Sleep(c.cfg.msgCost(c.n))
				for _, pkt := range protocol.Segment(c.Server.Addr, dst, sum) {
					if c.scheme == protocol.CompFP16 {
						pkt.Enc = protocol.CompFP16
					}
					c.Server.Send(pkt)
				}
			}
		}
	})
}

// Client returns worker i's aggregation handle.
func (c *PSCluster) Client(i int) Service {
	return &psClient{cluster: c, host: c.workers[i]}
}

type psClient struct {
	cluster *PSCluster
	host    *netsim.Host
	asm     *protocol.Assembler
	fpGrad  []float32 // fp16 rounding scratch
}

// Setup implements Service (the PS design has no handshake).
func (pc *psClient) Setup(*sim.Proc) {}

// H implements Service.
func (pc *psClient) H() int { return len(pc.cluster.workers) }

// Aggregate implements Service. The returned slice is the client's
// reusable assembler buffer (valid until the next Aggregate call) — a
// fresh per-round copy here was the datapath's last per-iteration
// whole-vector allocation.
func (pc *psClient) Aggregate(p *sim.Proc, grad []float32) []float32 {
	p.Sleep(pc.cluster.cfg.WorkerBase)
	fp16 := pc.cluster.scheme == protocol.CompFP16
	if fp16 {
		pc.fpGrad = append(pc.fpGrad[:0], grad...)
		kernels.F16RoundInPlace(pc.fpGrad)
		grad = pc.fpGrad
	}
	for _, pkt := range protocol.Segment(pc.host.Addr, pc.cluster.Server.Addr, grad) {
		if fp16 {
			pkt.Enc = protocol.CompFP16
		}
		pc.host.Send(pkt)
	}
	if pc.asm == nil {
		pc.asm = protocol.NewAssembler(pc.cluster.n)
	} else {
		pc.asm.Reset()
	}
	for !pc.asm.Complete() {
		pkt := pc.host.Recv(p)
		if pkt.IsData() {
			if err := pc.asm.Add(pkt); err != nil {
				continue
			}
		}
	}
	return pc.asm.Vector()
}
