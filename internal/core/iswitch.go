package core

import (
	"fmt"

	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
	"iswitch/internal/switchnet"
)

// iSwitch aggregation (Figure 1c): workers send their gradient packets
// to the programmable switch, whose data-plane accelerator sums each
// segment on the fly and broadcasts the completed aggregate back —
// two network hops, on-the-fly packet-granular aggregation, and a
// dedicated link per worker.

// ISWConfig carries the (small) client-side cost of the iSwitch path.
type ISWConfig struct {
	// WorkerBase is charged per aggregation round per worker.
	WorkerBase sim.Time
	// FloatsPerPacket overrides the gradient payload per packet
	// (0 selects the MTU-filling protocol default). Exposed for the
	// packet-size ablation.
	FloatsPerPacket int
	// Job tags every packet this client sends (data and control) with a
	// training-job ID so a multi-tenant switch demultiplexes it into the
	// right aggregation context. Zero — the default — is the unmetered
	// single-tenant job, preserving legacy behavior exactly.
	Job protocol.JobID
	// RecoveryTimeout, when nonzero, arms worker-side loss recovery
	// during synchronous aggregation: a worker whose broadcast stalls
	// for this long sends Help for its missing segments and retransmits
	// its own contributions; peers answer relayed Helps by
	// retransmitting theirs. Requires the switch's dedup bitmap so
	// retransmissions stay idempotent (paper §3.3 loss handling).
	//
	// Choose it comfortably above one iteration's compute+aggregation
	// time: with a too-small timeout, a worker whose peers are merely
	// still computing mistakes the silence for loss and floods the
	// fabric with Help/retransmission traffic (harmless to correctness
	// — the bitmap absorbs duplicates — but costly to throughput).
	RecoveryTimeout sim.Time
}

// DefaultISWConfig mirrors the raw-UDP client implementation.
func DefaultISWConfig() ISWConfig {
	return ISWConfig{WorkerBase: perfmodel.ISWWorkerBase}
}

// perPacket resolves the payload size in use.
func (c ISWConfig) perPacket() int {
	if c.FloatsPerPacket > 0 {
		return c.FloatsPerPacket
	}
	return protocol.FloatsPerPacket
}

// ISWCluster is a cluster whose switches run the iSwitch extension:
// either a star (single switch) or the rack-scale ToR/root hierarchy.
type ISWCluster struct {
	workers []*netsim.Host
	// target[i] is the switch address worker i contributes to (its ToR
	// in a hierarchy, the single switch in a star).
	target []protocol.Addr
	n      int
	h      int
	cfg    ISWConfig

	// Exposed for experiments/tests.
	StarSwitch *switchnet.ISwitch
	Tree       *switchnet.TreeCluster
	ThreeTier  *switchnet.ThreeTierCluster
}

// NewISWStar builds nWorkers workers under one iSwitch.
func NewISWStar(k *sim.Kernel, nWorkers, modelFloats int, link netsim.LinkConfig, cfg ISWConfig) *ISWCluster {
	sc := switchnet.BuildStar(k, nWorkers, link)
	c := &ISWCluster{
		workers: sc.Workers, n: modelFloats, h: nWorkers, cfg: cfg,
		StarSwitch: sc.IS,
	}
	for range sc.Workers {
		c.target = append(c.target, sc.IS.Addr())
	}
	return c
}

// NewISWTree builds the rack-scale hierarchy (§3.4): nRacks racks of
// perRack workers, ToR switches aggregating locally (H = perRack) and a
// root switch aggregating across racks (H = nRacks).
func NewISWTree(k *sim.Kernel, nRacks, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg ISWConfig) *ISWCluster {
	tc := switchnet.BuildTree(k, nRacks, perRack, edge, uplink)
	c := &ISWCluster{
		workers: tc.Workers, n: modelFloats, h: nRacks * perRack, cfg: cfg,
		Tree: tc,
	}
	for i := range tc.Workers {
		c.target = append(c.target, tc.ToROf(i).Addr())
	}
	return c
}

// NewISWOnFabric builds an ISWCluster over hosts of an already-built
// shared fabric: workers[i] contributes to the switch at targets[i]
// (its ToR in a hierarchy, the single switch in a star). h is the
// job-wide aggregation divisor — the total number of workers in the
// job. This is the multi-tenant entry point: several clusters, each
// tagged with a distinct cfg.Job, can cohabit one fabric.
func NewISWOnFabric(workers []*netsim.Host, targets []protocol.Addr, modelFloats, h int, cfg ISWConfig) *ISWCluster {
	if len(workers) == 0 || len(workers) != len(targets) {
		panic("core: NewISWOnFabric workers/targets mismatch")
	}
	return &ISWCluster{
		workers: workers,
		target:  append([]protocol.Addr(nil), targets...),
		n:       modelFloats, h: h, cfg: cfg,
	}
}

// Workers exposes the worker hosts.
func (c *ISWCluster) Workers() []*netsim.Host { return c.workers }

// Client returns worker i's aggregation handle.
func (c *ISWCluster) Client(i int) Service {
	return &iswClient{cluster: c, host: c.workers[i], sw: c.target[i]}
}

// roundShift places the recovery-mode round tag in the Seg field's high
// 16 bits, leaving 48 bits of segment index. Tagging keeps switch state
// of adjacent rounds disjoint so retransmitted segments can never mix
// iterations; rounds wrap mod 2^16 (any stale switch partial from 65536
// rounds ago would be a lost-cause leak, not a correctness hazard,
// because its contributors' dedup entries still block completion).
const (
	roundShift = 48
	segMask    = (uint64(1) << roundShift) - 1
)

type iswClient struct {
	cluster *ISWCluster
	host    *netsim.Host
	sw      protocol.Addr
	asm     *protocol.Assembler

	// Recovery-mode state: the current round number and the gradients
	// of the current and previous rounds, retained so relayed Help
	// requests for either round can be answered.
	round    uint64
	curGrad  []float32
	prevGrad []float32
}

// roundTag returns the Seg-field tag for the current round (0 when
// recovery mode is off, preserving plain segment numbering for the
// asynchronous pipeline where worker rounds do not align).
func (ic *iswClient) roundTag() uint64 {
	if ic.cluster.cfg.RecoveryTimeout <= 0 {
		return 0
	}
	return (ic.round % (1 << 16)) << roundShift
}

// Setup implements Service: Join the training job and wait for the Ack
// (Table 2), retrying on timeout when loss recovery is armed.
func (ic *iswClient) Setup(p *sim.Proc) {
	join := func() {
		pkt := protocol.NewControl(ic.host.Addr, ic.sw, protocol.ActionJoin,
			protocol.JoinValue(uint64(ic.cluster.n)))
		pkt.Job = ic.cluster.cfg.Job
		ic.host.Send(pkt)
	}
	join()
	for {
		var pkt *protocol.Packet
		if to := ic.cluster.cfg.RecoveryTimeout; to > 0 {
			var ok bool
			pkt, ok = ic.host.RecvTimeout(p, to)
			if !ok {
				join() // Join or its Ack was lost; retry (idempotent)
				continue
			}
		} else {
			pkt = ic.host.Recv(p)
		}
		if pkt.IsControl() && pkt.Action == protocol.ActionAck {
			if len(pkt.Value) != 1 || pkt.Value[0] != 1 {
				panic(fmt.Sprintf("core: worker %v join rejected", ic.host.Addr))
			}
			pkt.Release()
			return
		}
		// Anything else (e.g. an early data broadcast from a previous
		// tenant of this address) is dropped; recycle pooled frames.
		pkt.Release()
	}
}

// H implements Service.
func (ic *iswClient) H() int { return ic.cluster.h }

// Aggregate implements Service: stream the gradient as tagged data
// packets and reassemble the broadcast aggregate.
func (ic *iswClient) Aggregate(p *sim.Proc, grad []float32) []float32 {
	p.Sleep(ic.cluster.cfg.WorkerBase)
	ic.SendGradient(grad)
	return ic.CollectAggregate(p)
}

// SendGradient is the non-blocking upload half of Aggregate — the
// asynchronous pipeline's LGC thread uses it alone (Algorithm 1's
// "nonblocking send g_w to switch").
func (ic *iswClient) SendGradient(grad []float32) {
	if ic.cluster.cfg.RecoveryTimeout > 0 {
		ic.round++
		ic.prevGrad = ic.curGrad
		ic.curGrad = append(ic.curGrad[:0:0], grad...) // copy: caller reuses grad
	}
	tag := ic.roundTag()
	for _, pkt := range protocol.SegmentWith(ic.host.Addr, ic.sw, grad, ic.cluster.cfg.perPacket()) {
		pkt.Seg |= tag
		pkt.Job = ic.cluster.cfg.Job
		ic.host.Send(pkt)
	}
}

// retransmit resends this worker's contribution for one (possibly
// round-tagged) segment, if the matching round's gradient is retained.
func (ic *iswClient) retransmit(taggedSeg uint64) {
	var grad []float32
	switch taggedSeg >> roundShift {
	case (ic.round) % (1 << 16):
		grad = ic.curGrad
	case (ic.round - 1) % (1 << 16):
		grad = ic.prevGrad
	default:
		return // too old to serve
	}
	if grad == nil {
		return
	}
	seg := taggedSeg & segMask
	lo, hi := protocol.SegmentRangeWith(ic.cluster.n, seg, ic.cluster.cfg.perPacket())
	if lo >= hi {
		return
	}
	pkt := protocol.NewData(ic.host.Addr, ic.sw, taggedSeg, grad[lo:hi])
	pkt.Job = ic.cluster.cfg.Job
	ic.host.Send(pkt)
}

// CollectAggregate is the blocking download half of Aggregate — the
// asynchronous pipeline's LWU thread uses it alone (Algorithm 1's "wait
// until g_sum received").
func (ic *iswClient) CollectAggregate(p *sim.Proc) []float32 {
	if ic.asm == nil {
		ic.asm = protocol.NewAssemblerWith(ic.cluster.n, ic.cluster.cfg.perPacket())
	} else {
		ic.asm.Reset()
	}
	tag := ic.roundTag()
	for !ic.asm.Complete() {
		var pkt *protocol.Packet
		if to := ic.cluster.cfg.RecoveryTimeout; to > 0 {
			var ok bool
			pkt, ok = ic.host.RecvTimeout(p, to)
			if !ok {
				// Stalled: request recovery for every missing segment
				// and retransmit our own contributions (the switch's
				// dedup bitmap drops any that were not actually lost).
				for _, seg := range ic.asm.Missing() {
					help := protocol.NewControl(ic.host.Addr, ic.sw,
						protocol.ActionHelp, protocol.HelpValue(seg|tag))
					help.Job = ic.cluster.cfg.Job
					ic.host.Send(help)
					ic.retransmit(seg | tag)
				}
				continue
			}
		} else {
			pkt = ic.host.Recv(p)
		}
		// The switch broadcasts pooled frames; this loop takes delivery,
		// so it owns each frame and releases it once the assembler has
		// copied the payload (or the packet is rejected). Ownership also
		// means the round tag can be stripped by mutating Seg in place —
		// no shallow copy that would alias pooled payload.
		switch {
		case pkt.IsData():
			if pkt.Job != ic.cluster.cfg.Job {
				pkt.Release()
				continue // another tenant's broadcast (shared host)
			}
			if pkt.Seg>>roundShift != tag>>roundShift {
				pkt.Release()
				continue // stale re-broadcast from a completed round
			}
			pkt.Seg &= segMask
			err := ic.asm.Add(pkt)
			pkt.Release()
			if err != nil {
				continue
			}
		case pkt.IsControl() && pkt.Action == protocol.ActionHelp:
			if seg, err := protocol.ParseHelp(pkt.Value); err == nil {
				ic.retransmit(seg)
			}
			pkt.Release()
		default:
			pkt.Release()
		}
	}
	return append([]float32(nil), ic.asm.Vector()...)
}
