package core

import (
	"fmt"

	"iswitch/internal/compress"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
	"iswitch/internal/switchnet"
	"iswitch/internal/tensor/kernels"
)

// iSwitch aggregation (Figure 1c): workers send their gradient packets
// to the programmable switch, whose data-plane accelerator sums each
// segment on the fly and broadcasts the completed aggregate back —
// two network hops, on-the-fly packet-granular aggregation, and a
// dedicated link per worker.

// ISWConfig carries the (small) client-side cost of the iSwitch path.
type ISWConfig struct {
	// WorkerBase is charged per aggregation round per worker.
	WorkerBase sim.Time
	// FloatsPerPacket overrides the gradient payload per packet
	// (0 selects the MTU-filling protocol default). Exposed for the
	// packet-size ablation.
	FloatsPerPacket int
	// Compression selects the job's gradient wire scheme (CompNone: the
	// paper's raw float32). Negotiated with the switch at Join time and
	// fixed for the job's lifetime. CompInt32Block and CompTopK are
	// synchronous-only (SpawnAsyncISW rejects them); the software relay
	// failover path always runs raw float32 regardless of scheme.
	Compression protocol.Compression
	// Job tags every packet this client sends (data and control) with a
	// training-job ID so a multi-tenant switch demultiplexes it into the
	// right aggregation context. Zero — the default — is the unmetered
	// single-tenant job, preserving legacy behavior exactly.
	Job protocol.JobID
	// RecoveryTimeout, when nonzero, arms worker-side loss recovery
	// during synchronous aggregation: a worker whose broadcast stalls
	// for this long sends Help for its missing segments and retransmits
	// its own contributions; peers answer relayed Helps by
	// retransmitting theirs. Requires the switch's dedup bitmap so
	// retransmissions stay idempotent (paper §3.3 loss handling).
	//
	// Choose it comfortably above one iteration's compute+aggregation
	// time (RecoveryTimeoutFor derives it from the perfmodel): with a
	// too-small timeout, a worker whose peers are merely still computing
	// mistakes the silence for loss and floods the fabric with
	// Help/retransmission traffic (harmless to correctness — the bitmap
	// absorbs duplicates — but costly to throughput). Consecutive
	// fruitless timeouts back off exponentially with deterministic
	// jitter, capped at MaxBackoff.
	RecoveryTimeout sim.Time
	// MaxBackoff caps the backed-off Help timer (0: 16× RecoveryTimeout).
	MaxBackoff sim.Time
	// Untagged runs recovery without round tags: Help timers and blind
	// self-retransmission only, no per-round switch state. This is the
	// asynchronous pipeline's mode (worker rounds do not align, so a
	// shared round tag is meaningless); SpawnAsyncISW sets it
	// automatically when recovery is armed.
	Untagged bool
	// FailoverAfter, when positive, arms whole-switch failover: a worker
	// whose Help timer fires this many consecutive times with neither
	// data nor a switch ack concludes the aggregation plane is dead and
	// falls back to the software relay path (contributions unicast to
	// the relay worker, which sums at H and re-broadcasts). Failover is
	// sticky and synchronous-only.
	FailoverAfter int
	// Relay is the backup software aggregator's address (zero: worker 0).
	Relay protocol.Addr
}

// DefaultISWConfig mirrors the raw-UDP client implementation.
func DefaultISWConfig() ISWConfig {
	return ISWConfig{WorkerBase: perfmodel.ISWWorkerBase}
}

// perPacket resolves the payload size in use.
func (c ISWConfig) perPacket() int {
	if c.FloatsPerPacket > 0 {
		return c.FloatsPerPacket
	}
	return protocol.FloatsPerPacket
}

// ISWCluster is a cluster whose switches run the iSwitch extension:
// either a star (single switch) or the rack-scale ToR/root hierarchy.
type ISWCluster struct {
	workers []*netsim.Host
	// target[i] is the switch address worker i contributes to (its ToR
	// in a hierarchy, the single switch in a star).
	target []protocol.Addr
	n      int
	h      int
	cfg    ISWConfig

	// Exposed for experiments/tests.
	StarSwitch *switchnet.ISwitch
	Tree       *switchnet.TreeCluster
	ThreeTier  *switchnet.ThreeTierCluster
	FatTree    *switchnet.FatTreeCluster

	// crashes holds the per-worker crash schedule (ScheduleCrash).
	crashes map[int][]netsim.CrashFault

	// workerIdx maps worker addresses to indices, for the relay path.
	workerIdx map[protocol.Addr]int

	// Recovery accounting (single-threaded kernel: plain counters).
	HelpsSent   uint64 // Help controls sent by stalled workers
	Retransmits uint64 // contribution segments resent on relayed Helps
	Failovers   uint64 // workers that switched to the relay path
	Rejoins     uint64 // crashed workers re-admitted
}

// NewISWStar builds nWorkers workers under one iSwitch.
//
// Deprecated: use Build with ClusterSpec{Topology: TopoStar, Mode: ModeISW}.
func NewISWStar(k *sim.Kernel, nWorkers, modelFloats int, link netsim.LinkConfig, cfg ISWConfig) *ISWCluster {
	return Build(k, ClusterSpec{Topology: TopoStar, Mode: ModeISW, Workers: nWorkers, ModelFloats: modelFloats, Link: link, ISW: &cfg}).ISW
}

// NewISWTree builds the rack-scale hierarchy (§3.4): nRacks racks of
// perRack workers, ToR switches aggregating locally (H = perRack) and a
// root switch aggregating across racks (H = nRacks).
//
// Deprecated: use Build with ClusterSpec{Topology: TopoTree, Mode: ModeISW}.
func NewISWTree(k *sim.Kernel, nRacks, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg ISWConfig) *ISWCluster {
	return Build(k, ClusterSpec{Topology: TopoTree, Mode: ModeISW, Workers: nRacks * perRack, PerRack: perRack, ModelFloats: modelFloats, Link: edge, Uplink: uplink, ISW: &cfg}).ISW
}

// NewISWOnFabric builds an ISWCluster over hosts of an already-built
// shared fabric: workers[i] contributes to the switch at targets[i]
// (its ToR in a hierarchy, the single switch in a star). h is the
// job-wide aggregation divisor — the total number of workers in the
// job. This is the multi-tenant entry point: several clusters, each
// tagged with a distinct cfg.Job, can cohabit one fabric.
func NewISWOnFabric(workers []*netsim.Host, targets []protocol.Addr, modelFloats, h int, cfg ISWConfig) *ISWCluster {
	if len(workers) == 0 || len(workers) != len(targets) {
		panic("core: NewISWOnFabric workers/targets mismatch")
	}
	return &ISWCluster{
		workers: workers,
		target:  append([]protocol.Addr(nil), targets...),
		n:       modelFloats, h: h, cfg: cfg,
	}
}

// Workers exposes the worker hosts.
func (c *ISWCluster) Workers() []*netsim.Host { return c.workers }

// Client returns worker i's aggregation handle.
func (c *ISWCluster) Client(i int) Service {
	return &iswClient{cluster: c, host: c.workers[i], sw: c.target[i], idx: i}
}

// The round-tag layout lives in protocol (RoundShift and friends);
// these aliases keep the client code terse.
const (
	roundShift = protocol.RoundShift
	segMask    = protocol.SegIndexMask
)

type iswClient struct {
	cluster *ISWCluster
	host    *netsim.Host
	sw      protocol.Addr
	idx     int
	asm     *protocol.Assembler

	// Recovery-mode state: the current round number and the gradients
	// of the current and previous rounds, retained so relayed Help
	// requests for either round can be answered.
	round    uint64
	curGrad  []float32
	prevGrad []float32

	// level is the exponential-backoff level of the Help timer;
	// fruitless counts consecutive timeouts with neither data nor a
	// switch ack (the failover trigger).
	level     int
	fruitless int

	// failedOver marks the sticky switch-to-relay failover; relay holds
	// the software aggregation engine when this worker is the relay.
	failedOver bool
	relay      *relayState

	// codec holds the compression state (lazily built when the job's
	// scheme needs one); fpGrad is the fp16 rounding scratch and decBuf
	// the per-segment dequantization scratch.
	codec  *compress.Codec
	fpGrad []float32
	decBuf []float32
}

// ensureCodec lazily builds the worker's compression codec.
func (ic *iswClient) ensureCodec() *compress.Codec {
	if ic.codec == nil {
		ic.codec = compress.NewCodec(compress.Config{Scheme: ic.cluster.cfg.Compression},
			ic.cluster.n, ic.cluster.cfg.perPacket())
	}
	return ic.codec
}

// roundTag returns the Seg-field tag for the current round (0 when
// recovery mode is off or running untagged, preserving plain segment
// numbering for the asynchronous pipeline where worker rounds do not
// align).
func (ic *iswClient) roundTag() uint64 {
	if ic.cluster.cfg.RecoveryTimeout <= 0 || ic.cluster.cfg.Untagged {
		return 0
	}
	return protocol.RoundTag(ic.round)
}

// Setup implements Service: Join the training job and wait for the Ack
// (Table 2), retrying on timeout when loss recovery is armed. When
// failover is armed and the switch never answers (a rejoin after the
// aggregation plane died), Setup escalates to the relay path instead of
// retrying forever.
func (ic *iswClient) Setup(p *sim.Proc) {
	if ic.failedOver {
		return // the relay path has no admission protocol
	}
	join := func() {
		value := protocol.JoinValue(uint64(ic.cluster.n))
		if s := ic.cluster.cfg.Compression; s != protocol.CompNone {
			value = protocol.JoinValueScheme(uint64(ic.cluster.n), s)
		}
		pkt := protocol.NewControl(ic.host.Addr, ic.sw, protocol.ActionJoin, value)
		pkt.Job = ic.cluster.cfg.Job
		ic.host.Send(pkt)
	}
	join()
	retries := 0
	for {
		var pkt *protocol.Packet
		if to := ic.cluster.cfg.RecoveryTimeout; to > 0 {
			var ok bool
			pkt, ok = ic.host.RecvTimeout(p, to)
			if !ok {
				retries++
				if fa := ic.cluster.cfg.FailoverAfter; fa > 0 && retries >= fa && !ic.cluster.cfg.Untagged {
					ic.enterFailover()
					return
				}
				join() // Join or its Ack was lost; retry (idempotent)
				continue
			}
		} else {
			pkt = ic.host.Recv(p)
		}
		if pkt.IsControl() && pkt.Action == protocol.ActionAck {
			admitted := len(pkt.Value) == 1 && pkt.Value[0] == 1
			pkt.Release()
			if admitted {
				return
			}
			if to := ic.cluster.cfg.RecoveryTimeout; to > 0 {
				// An explicit refusal with recovery armed means the job's
				// switch context is gone right now (preempted or not yet
				// restored after a failure). Back off and re-Join: the
				// scheduler restores the context when SRAM frees up.
				p.Sleep(to)
				join()
				continue
			}
			panic(fmt.Sprintf("core: worker %v join rejected", ic.host.Addr))
		}
		// Anything else (e.g. an early data broadcast from a previous
		// tenant of this address) is dropped; recycle pooled frames.
		pkt.Release()
	}
}

// H implements Service.
func (ic *iswClient) H() int { return ic.cluster.h }

// Aggregate implements Service: stream the gradient as tagged data
// packets and reassemble the broadcast aggregate. A scheduled crash
// (ScheduleCrash / FaultPlan) fires here, at the round it names.
func (ic *iswClient) Aggregate(p *sim.Proc, grad []float32) []float32 {
	if f, ok := ic.takeCrash(); ok {
		return ic.crashedAggregate(p, grad, f)
	}
	p.Sleep(ic.cluster.cfg.WorkerBase)
	ic.SendGradient(grad)
	return ic.CollectAggregate(p)
}

// SendGradient is the non-blocking upload half of Aggregate — the
// asynchronous pipeline's LGC thread uses it alone (Algorithm 1's
// "nonblocking send g_w to switch").
func (ic *iswClient) SendGradient(grad []float32) { ic.sendGradient(grad, -1) }

// sendGradient uploads the gradient, optionally truncated to the first
// limit segments (how a scheduled crash models dying mid-upload).
func (ic *iswClient) sendGradient(grad []float32, limit int) {
	cfg := &ic.cluster.cfg
	switch cfg.Compression {
	case protocol.CompFP16:
		// Round through the wire precision up front: the retained
		// recovery copy and the relay fallback then hold exactly the
		// values the switch will sum, so retransmissions are
		// bit-identical to the original upload.
		ic.fpGrad = append(ic.fpGrad[:0], grad...)
		kernels.F16RoundInPlace(ic.fpGrad)
		grad = ic.fpGrad
	case protocol.CompTopK:
		// One global selection per round, cached for retransmissions.
		ic.ensureCodec().SelectTopK(grad)
	}
	if cfg.RecoveryTimeout > 0 {
		ic.round++
		ic.prevGrad = ic.curGrad
		ic.curGrad = append(ic.curGrad[:0:0], grad...) // copy: caller reuses grad
	}
	if ic.failedOver {
		// The software relay path aggregates raw float32 regardless of
		// the job's wire scheme.
		ic.relayContribute(ic.round%protocol.RoundTagMod, ic.curGrad, limit)
		return
	}
	tag := ic.roundTag()
	per := cfg.perPacket()
	sent := 0
	switch cfg.Compression {
	case protocol.CompInt32Block:
		codec := ic.ensureCodec()
		for s := uint64(0); int(s) < protocol.SegmentCountWith(len(grad), per); s++ {
			if limit >= 0 && sent >= limit {
				break
			}
			lo, hi := protocol.SegmentRangeWith(len(grad), s, per)
			q := codec.EncodeQ(s, grad[lo:hi])
			tmp := protocol.NewQData(ic.host.Addr, ic.sw, s|tag, q, 0)
			tmp.Job = cfg.Job
			ic.host.Send(tmp.PooledClone()) // clone owns a copy of the codec scratch
			sent++
		}
	case protocol.CompTopK:
		codec := ic.codec
		for s := uint64(0); int(s) < protocol.SegmentCountWith(len(grad), per); s++ {
			if limit >= 0 && sent >= limit {
				break
			}
			idx, vals := codec.Sparse(s)
			tmp := protocol.NewSparseData(ic.host.Addr, ic.sw, s|tag, idx, vals)
			tmp.Job = cfg.Job
			ic.host.Send(tmp.PooledClone())
			sent++
		}
	default:
		for _, pkt := range protocol.SegmentWith(ic.host.Addr, ic.sw, grad, per) {
			if limit >= 0 && sent >= limit {
				break
			}
			pkt.Seg |= tag
			pkt.Job = cfg.Job
			if cfg.Compression == protocol.CompFP16 {
				pkt.Enc = protocol.CompFP16
			}
			ic.host.Send(pkt)
			sent++
		}
	}
}

// retransmit resends this worker's contribution for one (possibly
// round-tagged) segment, if the matching round's gradient is retained.
// The resend is bit-identical to the original upload under every
// scheme: fp16 gradients were rounded before retention, quantized
// segments re-encode on the grid their round used (current or
// previous — the codec retains both), and sparse segments replay the
// cached selection.
func (ic *iswClient) retransmit(taggedSeg uint64) {
	cfg := &ic.cluster.cfg
	var grad []float32
	prevRound := false
	if cfg.Untagged {
		grad = ic.curGrad // untagged: only the latest gradient is held
	} else {
		switch taggedSeg >> roundShift {
		case (ic.round) % protocol.RoundTagMod:
			grad = ic.curGrad
		case (ic.round - 1) % protocol.RoundTagMod:
			grad = ic.prevGrad
			prevRound = true
		default:
			return // too old to serve
		}
	}
	if grad == nil {
		return
	}
	seg := taggedSeg & segMask
	lo, hi := protocol.SegmentRangeWith(len(grad), seg, cfg.perPacket())
	if lo >= hi {
		return
	}
	var pkt *protocol.Packet
	switch cfg.Compression {
	case protocol.CompInt32Block:
		codec := ic.ensureCodec()
		var q []int32
		if prevRound {
			q = codec.EncodeQPrev(seg, grad[lo:hi])
		} else {
			q = codec.EncodeQ(seg, grad[lo:hi])
		}
		pkt = protocol.NewQData(ic.host.Addr, ic.sw, taggedSeg, q, 0).PooledClone()
	case protocol.CompTopK:
		codec := ic.ensureCodec()
		var idx []uint16
		var vals []float32
		if prevRound {
			idx, vals = codec.SparsePrev(seg)
		} else {
			idx, vals = codec.Sparse(seg)
		}
		pkt = protocol.NewSparseData(ic.host.Addr, ic.sw, taggedSeg, idx, vals).PooledClone()
	default:
		pkt = protocol.NewData(ic.host.Addr, ic.sw, taggedSeg, grad[lo:hi])
		if cfg.Compression == protocol.CompFP16 {
			pkt.Enc = protocol.CompFP16 // grad already holds rounded values
		}
	}
	pkt.Job = cfg.Job
	ic.host.Send(pkt)
	ic.cluster.Retransmits++
}

// CollectAggregate is the blocking download half of Aggregate — the
// asynchronous pipeline's LWU thread uses it alone (Algorithm 1's "wait
// until g_sum received").
//
// Recovery behaviour when RecoveryTimeout is armed: a stall sends Help
// for each missing segment (and, in untagged/async mode, blindly
// retransmits the worker's own contributions — with round tags the
// switch instead relays the Help to exactly the contributors it is
// missing, so only the lost data moves again). Consecutive fruitless
// stalls back the timer off exponentially; with failover armed, enough
// of them with no sign of switch life (no data, no ack) trips the
// sticky switch-to-relay failover.
func (ic *iswClient) CollectAggregate(p *sim.Proc) []float32 {
	if ic.asm == nil {
		ic.asm = protocol.NewAssemblerWith(ic.cluster.n, ic.cluster.cfg.perPacket())
	} else {
		ic.asm.Reset()
	}
	if ic.failedOver {
		return ic.collectViaRelay(p)
	}
	cfg := &ic.cluster.cfg
	tag := ic.roundTag()
	for !ic.asm.Complete() {
		var pkt *protocol.Packet
		if cfg.RecoveryTimeout > 0 {
			var ok bool
			pkt, ok = ic.host.RecvTimeout(p, ic.backoffTimeout())
			if !ok {
				ic.level++
				ic.fruitless++
				if cfg.FailoverAfter > 0 && !cfg.Untagged && ic.fruitless >= cfg.FailoverAfter {
					ic.enterFailover()
					return ic.collectViaRelay(p)
				}
				// Stalled: request recovery for every missing segment.
				for _, seg := range ic.asm.Missing() {
					help := protocol.NewControl(ic.host.Addr, ic.sw,
						protocol.ActionHelp, protocol.HelpValue(seg|tag))
					help.Job = cfg.Job
					ic.host.Send(help)
					ic.cluster.HelpsSent++
					if cfg.Untagged {
						// No switch-side bitmap to target retransmission
						// with: resend our own contribution blindly.
						ic.retransmit(seg | tag)
					}
				}
				continue
			}
		} else {
			pkt = ic.host.Recv(p)
		}
		// The switch broadcasts pooled frames; this loop takes delivery,
		// so it owns each frame and releases it once the assembler has
		// copied the payload (or the packet is rejected). Ownership also
		// means the round tag can be stripped by mutating Seg in place —
		// no shallow copy that would alias pooled payload.
		switch {
		case pkt.IsData():
			if pkt.Job != cfg.Job {
				pkt.Release()
				continue // another tenant's broadcast (shared host)
			}
			if cfg.FailoverAfter > 0 && pkt.Src != ic.sw {
				// Relay-path traffic reaching a worker still on the
				// switch path: peers have already failed over.
				ic.relaySidecar(pkt, tag)
				if ic.failedOver {
					// A relay-served aggregate for our round arrived: the
					// sidecar flipped us; finish the round on the relay path.
					return ic.collectViaRelay(p)
				}
				continue
			}
			if pkt.Seg>>roundShift != tag>>roundShift {
				pkt.Release()
				continue // stale re-broadcast from a completed round
			}
			pkt.Seg &= segMask
			var err error
			if pkt.Enc == protocol.CompInt32Block {
				err = ic.addQuantized(pkt)
			} else {
				err = ic.asm.Add(pkt)
			}
			pkt.Release()
			if err != nil {
				continue
			}
			ic.level, ic.fruitless = 0, 0 // progress: the path is alive
		case pkt.IsControl() && pkt.Action == protocol.ActionHelp:
			if ic.cluster.relayArmed() && pkt.Src != ic.sw {
				ic.relayHelpSidecar(pkt)
				continue
			}
			if seg, err := protocol.ParseHelp(pkt.Value); err == nil {
				ic.retransmit(seg)
			}
			pkt.Release()
		case pkt.IsControl() && pkt.Action == protocol.ActionAck:
			ic.fruitless = 0 // the switch is alive; peers are just slow
			pkt.Release()
		default:
			pkt.Release()
		}
	}
	if ic.codec != nil && ic.codec.Scheme() == protocol.CompInt32Block {
		// Commit the grid exponents derived from this round's aggregate;
		// every worker decoded identical (q, shift) pairs, so every
		// worker advances to identical exponents.
		ic.codec.Advance()
	}
	return append([]float32(nil), ic.asm.Vector()...)
}

// addQuantized decodes one quantized aggregate segment through the
// codec and places it in the assembler. Re-decoding a re-served shadow
// copy is idempotent.
func (ic *iswClient) addQuantized(pkt *protocol.Packet) error {
	lo, hi := protocol.SegmentRangeWith(ic.cluster.n, pkt.Seg, ic.cluster.cfg.perPacket())
	if len(pkt.QData) != hi-lo {
		return fmt.Errorf("core: quantized segment %d carries %d values, want %d",
			pkt.Seg, len(pkt.QData), hi-lo)
	}
	if cap(ic.decBuf) < hi-lo {
		ic.decBuf = make([]float32, ic.cluster.cfg.perPacket())
	}
	dst := ic.decBuf[:hi-lo]
	ic.ensureCodec().DecodeQ(pkt.Seg, pkt.QData, pkt.Shift, dst)
	return ic.asm.AddFloats(pkt.Seg, dst)
}
