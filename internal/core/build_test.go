package core

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// runSyncCluster trains integer agents over the given per-worker client
// factory and returns every worker's applied-aggregate history plus the
// virtual makespan.
func runSyncCluster(t *testing.T, k *sim.Kernel, n, nFloats, iters int, client func(int) Service) ([][][]float32, sim.Time) {
	t.Helper()
	agents := make([]rl.Agent, n)
	ints := make([]*intAgent, n)
	services := make([]Service, n)
	for i := range agents {
		ints[i] = newIntAgent(i, nFloats)
		agents[i] = ints[i]
		services[i] = client(i)
	}
	stats := RunSync(k, agents, services, fastTiming(iters))
	k.Shutdown()
	out := make([][][]float32, n)
	for i, a := range ints {
		out[i] = a.applied
	}
	return out, stats.Total
}

// TestBuildMatchesLegacyConstructors pins the builder redesign's
// equivalence guarantee: for every legacy constructor, the explicit
// ClusterSpec produces a byte-identical simulation — same virtual
// makespan, same aggregate sums at every worker and iteration.
func TestBuildMatchesLegacyConstructors(t *testing.T) {
	const nFloats = protocolFloats + 13
	const iters = 4
	edge, uplink := testLink(), netsim.FortyGbE()
	isw, ps, ar := DefaultISWConfig(), DefaultPSConfig(), DefaultARConfig()

	cases := []struct {
		name   string
		n      int
		legacy func(k *sim.Kernel) func(int) Service
		spec   ClusterSpec
	}{
		{"isw-star", 6,
			func(k *sim.Kernel) func(int) Service { return NewISWStar(k, 6, nFloats, edge, isw).Client },
			ClusterSpec{Topology: TopoStar, Mode: ModeISW, Workers: 6, ModelFloats: nFloats, Link: edge, ISW: &isw}},
		{"isw-tree", 6,
			func(k *sim.Kernel) func(int) Service { return NewISWTreeN(k, 6, 3, nFloats, edge, uplink, isw).Client },
			ClusterSpec{Topology: TopoTree, Mode: ModeISW, Workers: 6, PerRack: 3, ModelFloats: nFloats, Link: edge, Uplink: uplink, ISW: &isw}},
		{"isw-tree-racks", 6,
			func(k *sim.Kernel) func(int) Service { return NewISWTree(k, 2, 3, nFloats, edge, uplink, isw).Client },
			ClusterSpec{Topology: TopoTree, Mode: ModeISW, Workers: 6, PerRack: 3, ModelFloats: nFloats, Link: edge, Uplink: uplink, ISW: &isw}},
		{"isw-3tier", 8,
			func(k *sim.Kernel) func(int) Service {
				return NewISWThreeTier(k, 2, 2, 2, nFloats, edge, uplink, uplink, isw).Client
			},
			ClusterSpec{Topology: TopoThreeTier, Mode: ModeISW, AGGs: 2, ToRsPerAGG: 2, HostsPerToR: 2,
				ModelFloats: nFloats, Link: edge, Uplink: uplink, CoreLink: uplink, ISW: &isw}},
		{"ps-star", 4,
			func(k *sim.Kernel) func(int) Service { return NewPSCluster(k, 4, nFloats, edge, ps).Client },
			ClusterSpec{Topology: TopoStar, Mode: ModePS, Workers: 4, ModelFloats: nFloats, Link: edge, PS: &ps}},
		{"ps-tree", 6,
			func(k *sim.Kernel) func(int) Service { return NewPSClusterTree(k, 6, 3, nFloats, edge, uplink, ps).Client },
			ClusterSpec{Topology: TopoTree, Mode: ModePS, Workers: 6, PerRack: 3, ModelFloats: nFloats, Link: edge, Uplink: uplink, PS: &ps}},
		{"sharded-ps", 4,
			func(k *sim.Kernel) func(int) Service { return NewShardedPSCluster(k, 4, nFloats, 2, edge, ps).Client },
			ClusterSpec{Topology: TopoStar, Mode: ModeShardedPS, Workers: 4, Shards: 2, ModelFloats: nFloats, Link: edge, PS: &ps}},
		{"ar-star", 4,
			func(k *sim.Kernel) func(int) Service { return NewARCluster(k, 4, nFloats, edge, ar).Client },
			ClusterSpec{Topology: TopoStar, Mode: ModeAllReduce, Workers: 4, ModelFloats: nFloats, Link: edge, AR: &ar}},
		{"ar-tree", 6,
			func(k *sim.Kernel) func(int) Service { return NewARClusterTree(k, 6, 3, nFloats, edge, uplink, ar).Client },
			ClusterSpec{Topology: TopoTree, Mode: ModeAllReduce, Workers: 6, PerRack: 3, ModelFloats: nFloats, Link: edge, Uplink: uplink, AR: &ar}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kA := sim.NewKernel()
			gotA, totalA := runSyncCluster(t, kA, tc.n, nFloats, iters, tc.legacy(kA))
			kB := sim.NewKernel()
			cl := Build(kB, tc.spec)
			gotB, totalB := runSyncCluster(t, kB, tc.n, nFloats, iters, cl.Client)

			if totalA != totalB {
				t.Fatalf("virtual makespan differs: legacy %v, Build %v", totalA, totalB)
			}
			for w := range gotA {
				if len(gotA[w]) != len(gotB[w]) {
					t.Fatalf("worker %d: legacy applied %d rounds, Build %d", w, len(gotA[w]), len(gotB[w]))
				}
				for it := range gotA[w] {
					for i := range gotA[w][it] {
						if gotA[w][it][i] != gotB[w][it][i] {
							t.Fatalf("worker %d iter %d elem %d: legacy %v, Build %v",
								w, it, i, gotA[w][it][i], gotB[w][it][i])
						}
					}
				}
			}
		})
	}
}

// TestBuildMatchesLegacyAsync covers the asynchronous constructors; the
// traces compared are the async stats (makespan, commit/discard split,
// staleness), which pin the packet-level schedule.
func TestBuildMatchesLegacyAsync(t *testing.T) {
	const n, nFloats = 4, protocolFloats + 13
	edge, uplink := testLink(), netsim.FortyGbE()
	ps := DefaultPSConfig()
	acfg := AsyncConfig{Updates: 30, StalenessBound: 3,
		LocalCompute: 50 * time.Microsecond, WeightUpdate: 10 * time.Microsecond}

	runPS := func(build func(k *sim.Kernel) *PSCluster) *AsyncStats {
		k := sim.NewKernel()
		defer k.Shutdown()
		agents := make([]rl.Agent, n)
		for i := range agents {
			agents[i] = NewSyntheticAgent(nFloats)
		}
		return RunAsyncPS(k, agents, NewSyntheticAgent(nFloats), build(k), acfg)
	}
	runSharded := func(build func(k *sim.Kernel) *ShardedPSCluster) *AsyncStats {
		k := sim.NewKernel()
		defer k.Shutdown()
		agents := make([]rl.Agent, n)
		for i := range agents {
			agents[i] = NewSyntheticAgent(nFloats)
		}
		return RunAsyncShardedPS(k, agents, NewSyntheticAgent(nFloats), build(k), acfg)
	}

	cases := []struct {
		name   string
		legacy func() *AsyncStats
		spec   func() *AsyncStats
	}{
		{"async-ps-star",
			func() *AsyncStats {
				return runPS(func(k *sim.Kernel) *PSCluster { return NewAsyncPSCluster(k, n, nFloats, edge, ps) })
			},
			func() *AsyncStats {
				return runPS(func(k *sim.Kernel) *PSCluster {
					return Build(k, ClusterSpec{Topology: TopoStar, Mode: ModeAsyncPS, Workers: n, ModelFloats: nFloats, Link: edge, PS: &ps}).PS
				})
			}},
		{"async-ps-tree",
			func() *AsyncStats {
				return runPS(func(k *sim.Kernel) *PSCluster { return NewAsyncPSClusterTree(k, n, 2, nFloats, edge, uplink, ps) })
			},
			func() *AsyncStats {
				return runPS(func(k *sim.Kernel) *PSCluster {
					return Build(k, ClusterSpec{Topology: TopoTree, Mode: ModeAsyncPS, Workers: n, PerRack: 2, ModelFloats: nFloats, Link: edge, Uplink: uplink, PS: &ps}).PS
				})
			}},
		{"async-sharded-ps",
			func() *AsyncStats {
				return runSharded(func(k *sim.Kernel) *ShardedPSCluster { return NewAsyncShardedPSCluster(k, n, nFloats, 2, edge, ps) })
			},
			func() *AsyncStats {
				return runSharded(func(k *sim.Kernel) *ShardedPSCluster {
					return Build(k, ClusterSpec{Topology: TopoStar, Mode: ModeAsyncShardedPS, Workers: n, Shards: 2, ModelFloats: nFloats, Link: edge, PS: &ps}).Sharded
				})
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.legacy(), tc.spec()
			if a.Total != b.Total || a.Committed != b.Committed || a.Discarded != b.Discarded {
				t.Fatalf("legacy (total %v, committed %d, discarded %d) != Build (total %v, committed %d, discarded %d)",
					a.Total, a.Committed, a.Discarded, b.Total, b.Committed, b.Discarded)
			}
		})
	}
}

// TestDeprecatedConstructorsOnlyWrapped scans the repository for calls
// to the deprecated per-topology constructors outside internal/core:
// production code must go through Build (tests may keep exercising the
// wrappers — that is how the equivalence guarantee stays pinned).
func TestDeprecatedConstructorsOnlyWrapped(t *testing.T) {
	deprecated := regexp.MustCompile(`\bcore\.New(ISWStar|ISWTreeN|ISWTree|ISWThreeTier|PSClusterTree|PSCluster|AsyncPSClusterTree|AsyncPSCluster|ShardedPSCluster|AsyncShardedPSCluster|ARClusterTree|ARCluster)\s*\(`)
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	var offenders []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || path == filepath.Join(root, "internal", "core") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(src), "\n") {
			if deprecated.MatchString(line) {
				rel, _ := filepath.Rel(root, path)
				offenders = append(offenders, rel+": "+strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range offenders {
		t.Errorf("deprecated constructor call (use core.Build): %s", o)
	}
}

// TestNoSpuriousHelpsAtZeroLoss pins the Help-timer calibration: with
// RecoveryTimeoutFor deriving the timeout from the performance model's
// expected round time, a clean (zero-loss, zero-fault) run must never
// time out into the Help path — on any topology. A miscalibrated timer
// shows up here as spurious Helps and blind retransmissions.
func TestNoSpuriousHelpsAtZeroLoss(t *testing.T) {
	const iters = 8
	nFloats := 3*protocolFloats + 5
	link := testLink()
	wl := perfmodel.Workload{
		ModelBytes:   nFloats * 4,
		LocalCompute: 500 * time.Microsecond,
		WeightUpdate: 100 * time.Microsecond,
	}
	for _, spec := range []ClusterSpec{
		{Topology: TopoStar, Workers: 8},
		{Topology: TopoTree, Workers: 8, PerRack: 4},
		{Topology: TopoFatTree, KAry: 4, HostsPerEdge: 1},
	} {
		t.Run(spec.Topology.String(), func(t *testing.T) {
			cfg := DefaultISWConfig()
			cfg.RecoveryTimeout = RecoveryTimeoutFor(wl, link)
			spec.Mode = ModeISW
			spec.ModelFloats = nFloats
			spec.Link = link
			spec.ISW = &cfg
			spec.Dedup = true
			k := sim.NewKernel()
			c := Build(k, spec).ISW
			n := len(c.Workers())

			agents := make([]rl.Agent, n)
			services := make([]Service, n)
			for i := range agents {
				agents[i] = newIntAgent(i, nFloats)
				services[i] = c.Client(i)
			}
			RunSync(k, agents, services, SyncConfig{Iterations: iters,
				LocalCompute: wl.LocalCompute, WeightUpdate: wl.WeightUpdate})
			if c.HelpsSent != 0 || c.Retransmits != 0 {
				t.Fatalf("clean run sent %d Helps and %d retransmits; RecoveryTimeoutFor is miscalibrated",
					c.HelpsSent, c.Retransmits)
			}
		})
	}
}
