package core

import (
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// TestCalibrationSweep logs simulated vs paper per-iteration times for
// all four workloads under PS, AR, and iSwitch (4 workers).
func TestCalibrationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	for _, w := range perfmodel.Workloads() {
		run := func(strategy string) time.Duration {
			k := sim.NewKernel()
			agents := make([]rl.Agent, 4)
			var services []Service
			switch strategy {
			case "PS":
				c := NewPSCluster(k, 4, w.Floats(), netsim.TenGbE(), PSConfigFor(w))
				for i := range agents {
					agents[i] = NewSyntheticAgent(w.Floats())
					services = append(services, c.Client(i))
				}
			case "AR":
				c := NewARCluster(k, 4, w.Floats(), netsim.TenGbE(), ARConfigFor(w))
				for i := range agents {
					agents[i] = NewSyntheticAgent(w.Floats())
					services = append(services, c.Client(i))
				}
			case "ISW":
				c := NewISWStar(k, 4, w.Floats(), netsim.TenGbE(), DefaultISWConfig())
				for i := range agents {
					agents[i] = NewSyntheticAgent(w.Floats())
					services = append(services, c.Client(i))
				}
			}
			stats := RunSync(k, agents, services, SyncConfig{Iterations: 3,
				LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate})
			return stats.MeanIter()
		}
		ps, ar, isw := run("PS"), run("AR"), run("ISW")
		t.Logf("%-5s PS %8.2fms (paper %6.2f)  AR %8.2fms (paper %6.2f)  iSW %8.2fms (paper %6.2f)",
			w.Name,
			float64(ps)/1e6, float64(w.PaperSyncPerIterPS)/1e6,
			float64(ar)/1e6, float64(w.PaperSyncPerIterAR)/1e6,
			float64(isw)/1e6, float64(w.PaperSyncPerIterISW)/1e6)
	}
}
