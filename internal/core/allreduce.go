package core

import (
	"iswitch/internal/accel"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
	"iswitch/internal/tensor"
)

// Ring-AllReduce aggregation (Figure 1b): the N workers form a logical
// ring; a reduce-scatter phase (N−1 steps) leaves each worker holding
// the full sum of one 1/N chunk, and an allgather phase (N−1 steps)
// circulates the reduced chunks. Every step crosses the switch twice,
// so one aggregation costs 4(N−1) network hops — linear in cluster
// size, the scalability weakness the paper measures (§2.3).

// ARConfig carries the software costs of the AllReduce reference design.
type ARConfig struct {
	// PerStep is each worker's per-ring-step cost (MPI send/recv launch
	// and GPU staging).
	PerStep sim.Time
	// SumRate is each worker's chunk-reduction rate (float32 adds/s).
	SumRate float64
	// CopyRate is each worker's tensor-staging throughput in bytes/sec,
	// charged per step on the chunk sent and the chunk received.
	CopyRate float64
	// Tensors is the framework-level tensor messages per gradient;
	// AllReduce launches once per tensor, paying PerStep each time.
	Tensors int
}

// DefaultARConfig mirrors the measured reference implementation.
func DefaultARConfig() ARConfig {
	return ARConfig{PerStep: perfmodel.ARPerStep, SumRate: perfmodel.ARSumRate,
		CopyRate: perfmodel.ARCopyRate, Tensors: 1}
}

// ARConfigFor adapts the default AR config to a paper workload.
func ARConfigFor(w perfmodel.Workload) ARConfig {
	cfg := DefaultARConfig()
	cfg.Tensors = w.Tensors()
	return cfg
}

// stepCost is one ring step's software cost for a chunk of the given
// float32 length.
func (c ARConfig) stepCost(chunkFloats int) sim.Time {
	t := c.Tensors
	if t < 1 {
		t = 1
	}
	return sim.Time(t)*c.PerStep + sim.Time(float64(2*chunkFloats*4)/c.CopyRate*1e9)
}

// ARCluster is a star network whose workers run Ring-AllReduce.
type ARCluster struct {
	Star    *netsim.Star
	workers []*netsim.Host
	n       int
	cfg     ARConfig
}

// NewARCluster builds nWorkers workers on one plain switch.
//
// Deprecated: use Build with ClusterSpec{Topology: TopoStar, Mode: ModeAllReduce}.
func NewARCluster(k *sim.Kernel, nWorkers, modelFloats int, link netsim.LinkConfig, cfg ARConfig) *ARCluster {
	return Build(k, ClusterSpec{Topology: TopoStar, Mode: ModeAllReduce, Workers: nWorkers, ModelFloats: modelFloats, Link: link, AR: &cfg}).AR
}

func newARCluster(k *sim.Kernel, nWorkers, modelFloats int, link netsim.LinkConfig, cfg ARConfig) *ARCluster {
	if nWorkers < 2 {
		panic("core: Ring-AllReduce needs at least 2 workers")
	}
	star := netsim.BuildStar(k, nWorkers, link)
	return &ARCluster{Star: star, workers: star.Hosts, n: modelFloats, cfg: cfg}
}

// Workers exposes the worker hosts.
func (c *ARCluster) Workers() []*netsim.Host { return c.workers }

// Client returns worker i's aggregation handle.
func (c *ARCluster) Client(i int) Service {
	return &arClient{cluster: c, rank: i, host: c.workers[i]}
}

// chunkRange returns the element range [lo, hi) of ring chunk ci for an
// n-element vector split across nw workers.
func chunkRange(n, nw, ci int) (lo, hi int) {
	base := n / nw
	rem := n % nw
	lo = ci*base + minInt(ci, rem)
	size := base
	if ci < rem {
		size++
	}
	return lo, lo + size
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

type arClient struct {
	cluster *ARCluster
	rank    int
	host    *netsim.Host
}

// Setup implements Service.
func (ac *arClient) Setup(*sim.Proc) {}

// H implements Service.
func (ac *arClient) H() int { return len(ac.cluster.workers) }

// sendChunk ships one chunk of vec to the ring successor as data
// packets whose Seg numbers are chunk-relative.
func (ac *arClient) sendChunk(vec []float32, ci int) {
	n, nw := ac.cluster.n, len(ac.cluster.workers)
	lo, hi := chunkRange(n, nw, ci)
	next := ac.cluster.workers[(ac.rank+1)%nw]
	for _, pkt := range protocol.Segment(ac.host.Addr, next.Addr, vec[lo:hi]) {
		ac.host.Send(pkt)
	}
}

// recvChunk collects one chunk-sized message from the ring predecessor.
func (ac *arClient) recvChunk(p *sim.Proc, ci int) []float32 {
	n, nw := ac.cluster.n, len(ac.cluster.workers)
	lo, hi := chunkRange(n, nw, ci)
	asm := protocol.NewAssembler(hi - lo)
	for !asm.Complete() {
		pkt := ac.host.Recv(p)
		if !pkt.IsData() {
			continue
		}
		if err := asm.Add(pkt); err != nil {
			continue
		}
	}
	return asm.Vector()
}

// Aggregate implements Service with the classic two-phase ring.
func (ac *arClient) Aggregate(p *sim.Proc, grad []float32) []float32 {
	nw := len(ac.cluster.workers)
	vec := append([]float32(nil), grad...)

	// Reduce-scatter: after step s, worker i holds the running sum of
	// chunk (i−s−1 mod nw) over s+2 contributors.
	for s := 0; s < nw-1; s++ {
		sendCi := mod(ac.rank-s, nw)
		recvCi := mod(ac.rank-s-1, nw)
		lo0, hi0 := chunkRange(ac.cluster.n, nw, sendCi)
		p.Sleep(ac.cluster.cfg.stepCost(hi0 - lo0))
		ac.sendChunk(vec, sendCi)
		in := ac.recvChunk(p, recvCi)
		lo, _ := chunkRange(ac.cluster.n, nw, recvCi)
		p.Sleep(accel.SumLatency(len(in), 1, ac.cluster.cfg.SumRate))
		tensor.Add(vec[lo:lo+len(in)], in)
	}
	// Allgather: circulate the fully reduced chunks.
	for s := 0; s < nw-1; s++ {
		sendCi := mod(ac.rank+1-s, nw)
		recvCi := mod(ac.rank-s, nw)
		lo0, hi0 := chunkRange(ac.cluster.n, nw, sendCi)
		p.Sleep(ac.cluster.cfg.stepCost(hi0 - lo0))
		ac.sendChunk(vec, sendCi)
		in := ac.recvChunk(p, recvCi)
		lo, _ := chunkRange(ac.cluster.n, nw, recvCi)
		copy(vec[lo:lo+len(in)], in)
	}
	return vec
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
