package core

import (
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// Three-level hierarchical aggregation (ToR → AGG → Core, Figure 10):
// 2 AGGs × 2 ToRs × 3 workers = 12 workers; sums must match the direct
// element-wise reference at every level of the hierarchy.
func TestThreeTierAggregation(t *testing.T) {
	const nAGGs, torsPerAGG, hostsPerToR = 2, 2, 3
	const nWorkers = nAGGs * torsPerAGG * hostsPerToR
	const nFloats = 900
	const iters = 2

	k := sim.NewKernel()
	edge, agg, coreLink := netsim.DefaultThreeTierLinks()
	c := NewISWThreeTier(k, nAGGs, torsPerAGG, hostsPerToR, nFloats, edge, agg, coreLink, DefaultISWConfig())

	agents := make([]rl.Agent, nWorkers)
	ints := make([]*intAgent, nWorkers)
	services := make([]Service, nWorkers)
	for i := range agents {
		ints[i] = newIntAgent(i, nFloats)
		agents[i] = ints[i]
		services[i] = c.Client(i)
	}
	stats := RunSync(k, agents, services, SyncConfig{Iterations: iters,
		LocalCompute: 100 * time.Microsecond, WeightUpdate: 20 * time.Microsecond})

	// Reference.
	ref := make([]*intAgent, nWorkers)
	for i := range ref {
		ref[i] = newIntAgent(i, nFloats)
	}
	g := make([]float32, nFloats)
	for it := 0; it < iters; it++ {
		want := make([]float32, nFloats)
		for _, a := range ref {
			a.ComputeGradient(g)
			for i := range want {
				want[i] += g[i]
			}
		}
		for w, a := range ints {
			if len(a.applied) != iters {
				t.Fatalf("worker %d applied %d updates", w, len(a.applied))
			}
			for i := range want {
				if a.applied[it][i] != want[i] {
					t.Fatalf("iter %d worker %d elem %d: got %v want %v",
						it, w, i, a.applied[it][i], want[i])
				}
			}
		}
	}

	// Each level forwarded/aggregated the expected volumes.
	segs := uint64((nFloats + 365) / 366)
	for i, tor := range c.ThreeTier.ToRs {
		if tor.UpForwards != segs*iters {
			t.Errorf("tor %d upforwards = %d, want %d", i, tor.UpForwards, segs*iters)
		}
	}
	for i, aggSW := range c.ThreeTier.AGGs {
		if aggSW.UpForwards != segs*iters {
			t.Errorf("agg %d upforwards = %d, want %d", i, aggSW.UpForwards, segs*iters)
		}
	}
	if c.ThreeTier.Core.Broadcasts != segs*iters {
		t.Errorf("core broadcasts = %d, want %d", c.ThreeTier.Core.Broadcasts, segs*iters)
	}
	if stats.MeanIter() <= 0 {
		t.Fatal("no timing recorded")
	}
	t.Logf("three-tier per-iteration %v (agg %v)", stats.MeanIter(), stats.MeanAgg())
}

// The three-tier fabric must also carry asynchronous training: the
// hierarchy aggregates H=12 contributions per update end-to-end.
func TestThreeTierAsync(t *testing.T) {
	const nWorkers, nFloats = 12, 300
	k := sim.NewKernel()
	edge, agg, coreLink := netsim.DefaultThreeTierLinks()
	c := NewISWThreeTier(k, 2, 2, 3, nFloats, edge, agg, coreLink, DefaultISWConfig())
	agents := make([]rl.Agent, nWorkers)
	ints := make([]*intAgent, nWorkers)
	for i := range agents {
		ints[i] = newIntAgent(i, nFloats)
		agents[i] = ints[i]
	}
	cfg := AsyncConfig{Updates: 8, StalenessBound: 4,
		LocalCompute: 100 * time.Microsecond, WeightUpdate: 20 * time.Microsecond}
	stats := RunAsyncISW(k, agents, c, cfg)
	if stats.Committed == 0 {
		t.Fatal("nothing committed")
	}
	for w, a := range ints {
		if int64(len(a.applied)) != cfg.Updates {
			t.Fatalf("worker %d applied %d updates, want %d", w, len(a.applied), cfg.Updates)
		}
		for i := range a.params {
			if a.params[i] != ints[0].params[i] {
				t.Fatalf("worker %d replica diverged", w)
			}
		}
	}
}
