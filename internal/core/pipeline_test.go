package core

import (
	"testing"
	"time"

	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// The three-stage pipeline (Figure 11): in asynchronous iSwitch
// training, local gradient computing overlaps aggregation and weight
// updates, so the time per update approaches the LGC time alone rather
// than the serial sum of all three stages.
func TestAsyncPipelineOverlapsStages(t *testing.T) {
	const nWorkers, nFloats = 4, 200_000 // big enough that agg time is visible
	const updates = 30
	compute := 3 * time.Millisecond
	update := 500 * time.Microsecond

	k := sim.NewKernel()
	c := NewISWStar(k, nWorkers, nFloats, testLink(), DefaultISWConfig())
	agents := make([]rl.Agent, nWorkers)
	for i := range agents {
		agents[i] = newIntAgent(i, nFloats)
	}
	stats := RunAsyncISW(k, agents, c, AsyncConfig{
		Updates: updates, StalenessBound: 4,
		LocalCompute: compute, WeightUpdate: update,
	})

	perUpdate := stats.MeanIter()
	// Serial execution would cost compute + aggregation + update per
	// iteration; the pipeline must land well under that and near the
	// LGC stage (the longest stage).
	syncRef := runISWSyncOnce(t, nWorkers, nFloats, compute, update)
	if perUpdate >= syncRef {
		t.Fatalf("pipeline gave %v per update, not faster than serial %v", perUpdate, syncRef)
	}
	if perUpdate > compute+compute/2 {
		t.Fatalf("pipeline per-update %v should approach LGC time %v", perUpdate, compute)
	}
	t.Logf("pipelined %v/update vs serial %v (LGC alone %v)", perUpdate, syncRef, compute)
}

// runISWSyncOnce measures the serial (synchronous) per-iteration time
// of the same cluster shape.
func runISWSyncOnce(t *testing.T, nWorkers, nFloats int, compute, update time.Duration) time.Duration {
	t.Helper()
	k := sim.NewKernel()
	c := NewISWStar(k, nWorkers, nFloats, testLink(), DefaultISWConfig())
	agents := make([]rl.Agent, nWorkers)
	services := make([]Service, nWorkers)
	for i := range agents {
		agents[i] = newIntAgent(i, nFloats)
		services[i] = c.Client(i)
	}
	stats := RunSync(k, agents, services, SyncConfig{Iterations: 4,
		LocalCompute: compute, WeightUpdate: update})
	return stats.MeanIter()
}

// Empirical check of the paper's §4.2 convergence argument: the
// asynchronous iSwitch run is equivalent to a virtual parameter server
// applying the same aggregated gradients in sequence. Replaying worker
// 0's applied aggregates through a fresh replica must reproduce every
// worker's final parameters exactly.
func TestAlgorithm1VirtualPSEquivalence(t *testing.T) {
	const nWorkers, nFloats = 4, 500
	k := sim.NewKernel()
	c := NewISWStar(k, nWorkers, nFloats, testLink(), DefaultISWConfig())
	agents := make([]rl.Agent, nWorkers)
	ints := make([]*intAgent, nWorkers)
	for i := range agents {
		ints[i] = newIntAgent(i, nFloats)
		agents[i] = ints[i]
	}
	RunAsyncISW(k, agents, c, AsyncConfig{Updates: 15, StalenessBound: 3,
		LocalCompute: 100 * time.Microsecond, WeightUpdate: 10 * time.Microsecond})

	// Virtual parameter server: one centralized replica applying the
	// same aggregate sequence.
	virtual := newIntAgent(0, nFloats)
	for _, sum := range ints[0].applied {
		virtual.ApplyAggregated(sum, nWorkers)
	}
	for w, a := range ints {
		for i := range a.params {
			if a.params[i] != virtual.params[i] {
				t.Fatalf("worker %d param %d diverged from the virtual PS", w, i)
			}
		}
	}
}
