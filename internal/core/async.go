package core

import (
	"fmt"

	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
	"iswitch/internal/tensor/kernels"
)

// Asynchronous distributed training, two designs:
//
//   - Async PS (Figure 3): a central parameter server holds the
//     authoritative weights; each worker loops pull → compute → push,
//     and the server applies each accepted (non-stale) gradient.
//   - Async iSwitch (Algorithm 1): fully decentralized. Each worker
//     runs a Local-Gradient-Computing thread and a Local-Weight-Update
//     thread; the switch aggregates any H gradient vectors on the fly
//     and broadcasts the sum, which every LWU applies identically — so
//     the decentralized weight replicas never diverge.

// AsyncConfig parameterizes an asynchronous run.
type AsyncConfig struct {
	// Updates is the target number of weight updates ("Number of
	// Iterations" in Table 5: weight updates at the PS, or LWU updates
	// for iSwitch).
	Updates int64
	// StalenessBound is Algorithm 1's S: a local gradient computed
	// against weights more than S updates old is discarded.
	StalenessBound int64
	// LocalCompute and WeightUpdate as in SyncConfig.
	LocalCompute sim.Time
	WeightUpdate sim.Time
	// ComputeJitter, when non-nil, returns extra local-compute time for
	// worker w's iter-th gradient. Deterministic (seeded) jitter lets
	// stress tests skew the workers without losing reproducibility; nil
	// means no jitter.
	ComputeJitter func(worker, iter int) sim.Time
}

// jitterFor resolves the per-gradient compute jitter (zero when unset).
func (c AsyncConfig) jitterFor(worker, iter int) sim.Time {
	if c.ComputeJitter == nil {
		return 0
	}
	return c.ComputeJitter(worker, iter)
}

// AsyncStats extends RunStats with staleness accounting.
type AsyncStats struct {
	RunStats
	// Committed and Discarded count gradients that passed / failed the
	// staleness check.
	Committed, Discarded int64
	// StalenessSum accumulates the staleness of committed gradients;
	// StalenessSum/Committed is the run's average staleness.
	StalenessSum int64
	// PerShard holds per-shard commit/discard/staleness accounting for
	// sharded parameter-server runs (nil for single-server and iSwitch
	// runs); PerShard[s] belongs to shard s.
	PerShard []ShardStats
}

// ShardStats is one parameter-server shard's asynchronous accounting.
type ShardStats struct {
	// Committed and Discarded count gradient slices that passed / failed
	// this shard's staleness check.
	Committed, Discarded int64
	// StalenessSum accumulates committed staleness against this shard's
	// update counter; MaxStaleness is the largest committed staleness.
	StalenessSum, MaxStaleness int64
}

// MeanStaleness returns the shard's average committed staleness.
func (s ShardStats) MeanStaleness() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.StalenessSum) / float64(s.Committed)
}

// MeanStaleness returns the average staleness of committed gradients.
func (s *AsyncStats) MeanStaleness() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.StalenessSum) / float64(s.Committed)
}

// RunAsyncISW trains agents with the asynchronous iSwitch pipeline
// (Algorithm 1) on an iSwitch cluster. agents[i] runs on cluster
// worker i.
func RunAsyncISW(k *sim.Kernel, agents []rl.Agent, cluster *ISWCluster, cfg AsyncConfig) *AsyncStats {
	stats := SpawnAsyncISW(k, agents, cluster, cfg, nil)
	k.Run()
	return stats
}

// SpawnAsyncISW spawns the asynchronous pipeline's LGC/LWU threads
// without running the kernel, for multi-tenant fabrics where several
// jobs' processes share one simulation. The returned stats are complete
// only after the kernel drains; done, when non-nil, fires in kernel
// context when this job's last LWU thread reaches cfg.Updates.
func SpawnAsyncISW(k *sim.Kernel, agents []rl.Agent, cluster *ISWCluster, cfg AsyncConfig, done func()) *AsyncStats {
	n := len(agents)
	if n != len(cluster.Workers()) {
		panic("core: agents/cluster size mismatch")
	}
	stats := &AsyncStats{RunStats: RunStats{Updates: cfg.Updates}}
	switch cluster.cfg.Compression {
	case protocol.CompInt32Block, protocol.CompTopK:
		// Both schemes carry per-round state (shared grid exponents,
		// cached selections) that only makes sense when every worker's
		// round r is the same round — the asynchronous pipeline has no
		// such alignment, so the job must run CompNone or CompFP16
		// (stateless).
		panic(fmt.Sprintf("core: SpawnAsyncISW: %v compression is synchronous-only", cluster.cfg.Compression))
	}
	if cluster.cfg.RecoveryTimeout > 0 {
		// Worker rounds never align in the asynchronous pipeline, so a
		// shared round tag is meaningless: run recovery untagged (Help
		// timers plus blind self-retransmission).
		cluster.cfg.Untagged = true
	}
	for range agents {
		stats.Workers = append(stats.Workers, &WorkerStats{})
	}
	start := sim.NewBarrier(k, 2*n) // every LGC and LWU thread
	stop := false
	lwuLeft := n

	for i := range agents {
		agent, ws := agents[i], stats.Workers[i]
		client := cluster.Client(i).(*iswClient)
		// Shared per-worker state: ts (LWU's update counter) in
		// Algorithm 1's shared/global memory.
		var ts int64

		// LWU thread: wait for g_sum, update the local replica.
		k.Spawn(fmt.Sprintf("async-lwu-%d", i), func(p *sim.Proc) {
			client.Setup(p)
			start.Wait(p)
			prev := p.Now()
			for ts < cfg.Updates {
				sum := client.CollectAggregate(p)
				rec := IterRecord{Start: prev, ComputeEnd: prev, AggEnd: p.Now()}
				p.Sleep(cfg.WeightUpdate)
				agent.ApplyAggregated(sum, client.H())
				ts++
				rec.UpdateEnd = p.Now()
				prev = rec.UpdateEnd
				ws.Iters = append(ws.Iters, rec)
				if rec.UpdateEnd > stats.Total {
					stats.Total = rec.UpdateEnd
				}
			}
			stop = true
			if lwuLeft--; lwuLeft == 0 && done != nil {
				done()
			}
		})

		// LGC thread: compute, staleness-check, nonblocking send.
		worker := i
		k.Spawn(fmt.Sprintf("async-lgc-%d", i), func(p *sim.Proc) {
			start.Wait(p)
			grad := make([]float32, agent.GradLen())
			for iter := 0; !stop && ts < cfg.Updates; iter++ {
				tw := ts // copy iteration index (and implicitly weights)
				agent.ComputeGradient(grad)
				p.Sleep(cfg.LocalCompute + cfg.jitterFor(worker, iter))
				for _, r := range agent.DrainEpisodes() {
					ws.Rewards = append(ws.Rewards, RewardPoint{Time: p.Now(), Reward: r})
				}
				staleness := ts - tw
				if staleness <= cfg.StalenessBound {
					stats.Committed++
					stats.StalenessSum += staleness
					client.SendGradient(grad) // nonblocking: NIC queues it
				} else {
					stats.Discarded++
				}
			}
		})
	}
	return stats
}

// pullRequest is the async-PS application message a worker sends to
// fetch the current weights. It reuses the control-packet framing with
// the Help action ("request data") — PS traffic crosses only plain
// switches, so the iSwitch data plane never interprets it.
func pullRequest(src, dst protocol.Addr) *protocol.Packet {
	return protocol.NewControl(src, dst, protocol.ActionHelp, nil)
}

// RunAsyncPS trains agents with the asynchronous parameter-server
// baseline. masterAgent supplies the server's authoritative weights and
// optimizer; it must be constructed with the same model seed as the
// workers (its environment is never stepped).
func RunAsyncPS(k *sim.Kernel, agents []rl.Agent, masterAgent rl.Agent, cluster *PSCluster, cfg AsyncConfig) *AsyncStats {
	nWorkers := len(agents)
	stats := &AsyncStats{}
	for i := 0; i <= nWorkers; i++ { // last entry holds server updates
		stats.Workers = append(stats.Workers, &WorkerStats{})
	}
	serverStats := stats.Workers[nWorkers]
	stop := false

	// The synchronous server spawned by NewPSCluster must be replaced;
	// build async clusters with NewAsyncPSCluster instead.
	server, workers := cluster.Server, cluster.workers
	nFloats := cluster.n

	// Pull requests are served by a dedicated reply thread so weight
	// reads never block the push/update path (real parameter servers
	// serve reads concurrently; only writes serialize).
	pulls := sim.NewChan[protocol.Addr](k, "ps-pulls")
	var version int64
	lastSent := make(map[protocol.Addr]int64)

	k.Spawn("async-ps-pull-server", func(p *sim.Proc) {
		params := make([]float32, masterAgent.GradLen())
		for {
			src := pulls.Recv(p)
			p.Sleep(cluster.cfg.PerMessage)
			masterAgent.ReadParams(params)
			lastSent[src] = version
			for _, out := range protocol.Segment(server.Addr, src, params) {
				server.Send(out)
			}
		}
	})

	k.Spawn("async-ps-server", func(p *sim.Proc) {
		asm := make(map[protocol.Addr]*protocol.Assembler)
		prev := p.Now()
		for version < cfg.Updates {
			pkt := server.Recv(p)
			switch {
			case pkt.IsControl() && pkt.Action == protocol.ActionHelp:
				pulls.Send(pkt.Src)
			case pkt.IsData():
				a := asm[pkt.Src]
				if a == nil {
					a = protocol.NewAssembler(nFloats)
					asm[pkt.Src] = a
				}
				if err := a.Add(pkt); err != nil {
					continue
				}
				if !a.Complete() {
					continue
				}
				// Push: apply if within the staleness bound.
				p.Sleep(cluster.cfg.PerMessage)
				staleness := version - lastSent[pkt.Src]
				if staleness <= cfg.StalenessBound {
					stats.Committed++
					stats.StalenessSum += staleness
					p.Sleep(cfg.WeightUpdate + cluster.cfg.AsyncUpdateExtra)
					masterAgent.ApplyAggregated(a.Vector(), 1)
					version++
					now := p.Now()
					serverStats.Iters = append(serverStats.Iters, IterRecord{
						Start: prev, ComputeEnd: prev, AggEnd: now, UpdateEnd: now,
					})
					prev = now
					if now > stats.Total {
						stats.Total = now
					}
				} else {
					stats.Discarded++
				}
				a.Reset()
			}
		}
		stop = true
	})

	for i := range agents {
		agent, ws, host := agents[i], stats.Workers[i], workers[i]
		worker := i
		k.Spawn(fmt.Sprintf("async-ps-worker-%d", i), func(p *sim.Proc) {
			weights := protocol.NewAssembler(nFloats)
			grad := make([]float32, agent.GradLen())
			fp16 := cluster.scheme == protocol.CompFP16
			for iter := 0; !stop; iter++ {
				// Pull the latest weights.
				p.Sleep(cluster.cfg.WorkerBase)
				host.Send(pullRequest(host.Addr, server.Addr))
				weights.Reset()
				for !weights.Complete() {
					pkt, ok := host.RecvTimeout(p, 200*cfg.LocalCompute+sim.Time(1e9))
					if !ok {
						return // server stopped mid-reply
					}
					if pkt.IsData() {
						if err := weights.Add(pkt); err != nil {
							continue
						}
					}
				}
				agent.WriteParams(weights.Vector())
				// Local gradient computing.
				agent.ComputeGradient(grad)
				p.Sleep(cfg.LocalCompute + cfg.jitterFor(worker, iter))
				for _, r := range agent.DrainEpisodes() {
					ws.Rewards = append(ws.Rewards, RewardPoint{Time: p.Now(), Reward: r})
				}
				// Push. Under fp16 the gradient is rounded through the
				// wire precision (the server applies what the wire
				// carried); weight pulls stay raw float32 so the
				// authoritative weights never lose precision.
				if fp16 {
					kernels.F16RoundInPlace(grad)
				}
				for _, pkt := range protocol.Segment(host.Addr, server.Addr, grad) {
					if fp16 {
						pkt.Enc = protocol.CompFP16
					}
					host.Send(pkt)
				}
			}
		})
	}
	k.Run()
	stats.Updates = cfg.Updates
	return stats
}

// NewAsyncPSCluster builds a PS cluster without spawning the
// synchronous server (RunAsyncPS provides its own).
//
// Deprecated: use Build with ClusterSpec{Topology: TopoStar, Mode: ModeAsyncPS}.
func NewAsyncPSCluster(k *sim.Kernel, nWorkers, modelFloats int, link netsim.LinkConfig, cfg PSConfig) *PSCluster {
	return Build(k, ClusterSpec{Topology: TopoStar, Mode: ModeAsyncPS, Workers: nWorkers, ModelFloats: modelFloats, Link: link, PS: &cfg}).PS
}
