package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// intAgent produces deterministic integer-valued gradients (exact in
// float32 regardless of summation order) and records what was applied.
type intAgent struct {
	id      int
	n       int
	iter    int
	applied [][]float32
	params  []float32
}

func newIntAgent(id, n int) *intAgent {
	return &intAgent{id: id, n: n, params: make([]float32, n)}
}

func (a *intAgent) Name() string { return "int" }
func (a *intAgent) GradLen() int { return a.n }
func (a *intAgent) ComputeGradient(dst []float32) {
	a.iter++
	for i := range dst {
		dst[i] = float32((a.id + 1) * (a.iter + i%7) % 50)
	}
}
func (a *intAgent) ApplyAggregated(sum []float32, h int) {
	a.applied = append(a.applied, append([]float32(nil), sum...))
	for i := range a.params {
		a.params[i] -= sum[i] / float32(h) * 0.01
	}
}
func (a *intAgent) ReadParams(dst []float32)  { copy(dst, a.params) }
func (a *intAgent) WriteParams(src []float32) { copy(a.params, src) }
func (a *intAgent) DrainEpisodes() []float64  { return nil }

func testLink() netsim.LinkConfig {
	return netsim.LinkConfig{BitsPerSecond: 10e9, Propagation: 500 * time.Nanosecond,
		PerPacketOverhead: 300 * time.Nanosecond}
}

// fastTiming keeps unit-test runs quick.
func fastTiming(iters int) SyncConfig {
	return SyncConfig{Iterations: iters,
		LocalCompute: 50 * time.Microsecond, WeightUpdate: 10 * time.Microsecond}
}

// runStrategy trains integer agents for iters rounds under the named
// strategy and returns the applied aggregate history of worker 0 plus
// the run stats.
func runStrategy(t *testing.T, strategy string, nWorkers, nFloats, iters int) ([][]float32, *RunStats) {
	return runStrategyTimed(t, strategy, nWorkers, nFloats, fastTiming(iters))
}

func runStrategyTimed(t *testing.T, strategy string, nWorkers, nFloats int, cfg SyncConfig) ([][]float32, *RunStats) {
	t.Helper()
	k := sim.NewKernel()
	agents := make([]rl.Agent, nWorkers)
	ints := make([]*intAgent, nWorkers)
	for i := range agents {
		ints[i] = newIntAgent(i, nFloats)
		agents[i] = ints[i]
	}
	var services []Service
	switch strategy {
	case "PS":
		c := NewPSCluster(k, nWorkers, nFloats, testLink(), DefaultPSConfig())
		for i := range agents {
			services = append(services, c.Client(i))
		}
	case "AR":
		c := NewARCluster(k, nWorkers, nFloats, testLink(), DefaultARConfig())
		for i := range agents {
			services = append(services, c.Client(i))
		}
	case "ISW":
		c := NewISWStar(k, nWorkers, nFloats, testLink(), DefaultISWConfig())
		for i := range agents {
			services = append(services, c.Client(i))
		}
	default:
		t.Fatalf("unknown strategy %s", strategy)
	}
	stats := RunSync(k, agents, services, cfg)
	return ints[0].applied, stats
}

// All three aggregation strategies must deliver identical sums: the
// paper's premise that PS, AllReduce, and in-switch aggregation are
// mathematically equivalent for synchronous training.
func TestStrategiesAggregateIdentically(t *testing.T) {
	const nWorkers, nFloats, iters = 4, 1000, 3
	ps, _ := runStrategy(t, "PS", nWorkers, nFloats, iters)
	ar, _ := runStrategy(t, "AR", nWorkers, nFloats, iters)
	isw, _ := runStrategy(t, "ISW", nWorkers, nFloats, iters)
	if len(ps) != iters || len(ar) != iters || len(isw) != iters {
		t.Fatalf("iterations: ps=%d ar=%d isw=%d", len(ps), len(ar), len(isw))
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < nFloats; i++ {
			if ps[it][i] != ar[it][i] || ps[it][i] != isw[it][i] {
				t.Fatalf("iter %d elem %d: ps=%v ar=%v isw=%v",
					it, i, ps[it][i], ar[it][i], isw[it][i])
			}
		}
	}
}

// The aggregated value must equal the element-wise sum of the workers'
// gradients as computed directly.
func TestAggregateMatchesDirectSum(t *testing.T) {
	const nWorkers, nFloats = 3, 500
	ref := make([]*intAgent, nWorkers)
	for i := range ref {
		ref[i] = newIntAgent(i, nFloats)
	}
	want := make([]float32, nFloats)
	g := make([]float32, nFloats)
	for _, a := range ref {
		a.ComputeGradient(g)
		for i := range want {
			want[i] += g[i]
		}
	}
	got, _ := runStrategy(t, "ISW", nWorkers, nFloats, 1)
	for i := range want {
		if got[0][i] != want[i] {
			t.Fatalf("elem %d: got %v want %v", i, got[0][i], want[i])
		}
	}
}

func TestSyncTimingOrderingLargeModel(t *testing.T) {
	// DQN-sized gradients: iSW must beat AR must beat PS (Figure 12).
	n := perfmodel.Workloads()[0].Floats() // DQN 1.6M floats
	_, ps := runStrategy(t, "PS", 4, n, 2)
	_, ar := runStrategy(t, "AR", 4, n, 2)
	_, isw := runStrategy(t, "ISW", 4, n, 2)
	t.Logf("DQN-sized agg: PS=%v AR=%v iSW=%v", ps.MeanAgg(), ar.MeanAgg(), isw.MeanAgg())
	if !(isw.MeanAgg() < ar.MeanAgg() && ar.MeanAgg() < ps.MeanAgg()) {
		t.Fatalf("ordering violated: PS=%v AR=%v iSW=%v", ps.MeanAgg(), ar.MeanAgg(), isw.MeanAgg())
	}
}

func TestSyncTimingOrderingSmallModel(t *testing.T) {
	// PPO-sized gradients at PPO's real compute cadence: AR loses to PS
	// (too many per-step overheads), iSW still wins — the paper's
	// crossover. Realistic compute time matters: with back-to-back
	// rounds the PS server queues and the ordering blurs.
	n := 10005 // PPO 40.02KB
	cfg := SyncConfig{Iterations: 2,
		LocalCompute: 8500 * time.Microsecond, WeightUpdate: 300 * time.Microsecond}
	_, ps := runStrategyTimed(t, "PS", 4, n, cfg)
	_, ar := runStrategyTimed(t, "AR", 4, n, cfg)
	_, isw := runStrategyTimed(t, "ISW", 4, n, cfg)
	t.Logf("PPO-sized iter: PS=%v AR=%v iSW=%v", ps.MeanIter(), ar.MeanIter(), isw.MeanIter())
	if !(isw.MeanIter() < ps.MeanIter() && ps.MeanIter() < ar.MeanIter()) {
		t.Fatalf("crossover violated: PS=%v AR=%v iSW=%v", ps.MeanIter(), ar.MeanIter(), isw.MeanIter())
	}
}

func TestIterRecordPhases(t *testing.T) {
	_, stats := runStrategy(t, "ISW", 2, 100, 3)
	for _, w := range stats.Workers {
		if len(w.Iters) != 3 {
			t.Fatalf("iters = %d", len(w.Iters))
		}
		for _, it := range w.Iters {
			if it.Compute() != 50*time.Microsecond {
				t.Fatalf("compute = %v", it.Compute())
			}
			if it.Update() != 10*time.Microsecond {
				t.Fatalf("update = %v", it.Update())
			}
			if it.Agg() <= 0 || it.Total() <= 0 {
				t.Fatalf("bad record %+v", it)
			}
		}
	}
	if stats.MeanIter() <= 0 || stats.Total <= 0 {
		t.Fatal("empty aggregate stats")
	}
}

func TestHierarchicalISWAggregates(t *testing.T) {
	const nRacks, perRack, nFloats = 2, 3, 800
	k := sim.NewKernel()
	c := NewISWTree(k, nRacks, perRack, nFloats, testLink(), netsim.FortyGbE(), DefaultISWConfig())
	nWorkers := nRacks * perRack
	agents := make([]rl.Agent, nWorkers)
	ints := make([]*intAgent, nWorkers)
	var services []Service
	for i := range agents {
		ints[i] = newIntAgent(i, nFloats)
		agents[i] = ints[i]
		services = append(services, c.Client(i))
	}
	RunSync(k, agents, services, fastTiming(2))

	// Reference: direct sum across all six workers.
	refAgents := make([]*intAgent, nWorkers)
	for i := range refAgents {
		refAgents[i] = newIntAgent(i, nFloats)
	}
	g := make([]float32, nFloats)
	for it := 0; it < 2; it++ {
		want := make([]float32, nFloats)
		for _, a := range refAgents {
			a.ComputeGradient(g)
			for i := range want {
				want[i] += g[i]
			}
		}
		for w, a := range ints {
			for i := range want {
				if a.applied[it][i] != want[i] {
					t.Fatalf("iter %d worker %d elem %d: got %v want %v",
						it, w, i, a.applied[it][i], want[i])
				}
			}
		}
	}
}

func TestAsyncISWRespectsStalenessAndConverges(t *testing.T) {
	const nWorkers, nFloats = 4, 400
	k := sim.NewKernel()
	c := NewISWStar(k, nWorkers, nFloats, testLink(), DefaultISWConfig())
	agents := make([]rl.Agent, nWorkers)
	ints := make([]*intAgent, nWorkers)
	for i := range agents {
		ints[i] = newIntAgent(i, nFloats)
		agents[i] = ints[i]
	}
	cfg := AsyncConfig{Updates: 20, StalenessBound: 3,
		LocalCompute: 50 * time.Microsecond, WeightUpdate: 10 * time.Microsecond}
	stats := RunAsyncISW(k, agents, c, cfg)

	if stats.Committed == 0 {
		t.Fatal("no gradients committed")
	}
	if s := stats.MeanStaleness(); s > float64(cfg.StalenessBound) {
		t.Fatalf("mean staleness %v exceeds bound %d", s, cfg.StalenessBound)
	}
	// Every worker's LWU applied the same number of updates and the
	// replicas agree exactly (decentralized weight storage, §4.1).
	for w, a := range ints {
		if int64(len(a.applied)) != cfg.Updates {
			t.Fatalf("worker %d applied %d updates, want %d", w, len(a.applied), cfg.Updates)
		}
		for i := range a.params {
			if a.params[i] != ints[0].params[i] {
				t.Fatalf("worker %d param %d diverged", w, i)
			}
		}
	}
	// Update sequences must be identical across workers.
	for w := 1; w < nWorkers; w++ {
		for u := range ints[0].applied {
			for i := range ints[0].applied[u] {
				if ints[w].applied[u][i] != ints[0].applied[u][i] {
					t.Fatalf("worker %d update %d differs", w, u)
				}
			}
		}
	}
	if stats.MeanIter() <= 0 {
		t.Fatal("no iteration timing recorded")
	}
}

func TestAsyncPSAppliesUpdates(t *testing.T) {
	const nWorkers, nFloats = 3, 300
	k := sim.NewKernel()
	c := NewAsyncPSCluster(k, nWorkers, nFloats, testLink(), DefaultPSConfig())
	agents := make([]rl.Agent, nWorkers)
	for i := range agents {
		agents[i] = newIntAgent(i, nFloats)
	}
	master := newIntAgent(99, nFloats)
	cfg := AsyncConfig{Updates: 15, StalenessBound: 3,
		LocalCompute: 50 * time.Microsecond, WeightUpdate: 10 * time.Microsecond}
	stats := RunAsyncPS(k, agents, master, c, cfg)

	if int64(len(master.applied)) != cfg.Updates {
		t.Fatalf("server applied %d, want %d", len(master.applied), cfg.Updates)
	}
	if stats.Committed != cfg.Updates {
		t.Fatalf("committed %d, want %d", stats.Committed, cfg.Updates)
	}
	server := stats.Workers[nWorkers]
	if int64(len(server.Iters)) != cfg.Updates {
		t.Fatalf("server iter records %d", len(server.Iters))
	}
	if stats.MeanIter() <= 0 {
		t.Fatal("per-iteration time not measured")
	}
}

func TestAsyncStalenessBoundZeroDiscardsStale(t *testing.T) {
	// With S=0 and slow compute relative to update rate, some gradients
	// must be discarded once multiple workers race.
	const nWorkers, nFloats = 4, 200
	k := sim.NewKernel()
	c := NewISWStar(k, nWorkers, nFloats, testLink(), DefaultISWConfig())
	agents := make([]rl.Agent, nWorkers)
	for i := range agents {
		agents[i] = newIntAgent(i, nFloats)
	}
	cfg := AsyncConfig{Updates: 10, StalenessBound: 0,
		LocalCompute: 500 * time.Microsecond, WeightUpdate: 10 * time.Microsecond}
	stats := RunAsyncISW(k, agents, c, cfg)
	if stats.MeanStaleness() != 0 {
		t.Fatalf("S=0 but mean staleness %v", stats.MeanStaleness())
	}
	t.Logf("S=0: committed=%d discarded=%d", stats.Committed, stats.Discarded)
}

// Functional end-to-end: real A2C agents training CartPole through the
// simulated iSwitch still learn (sync).
func TestFunctionalSyncTrainingLearns(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test")
	}
	const nWorkers = 4
	k := sim.NewKernel()
	agents := make([]rl.Agent, nWorkers)
	for i := range agents {
		a, err := rl.NewWorkloadAgent(rl.WorkloadA2C, 42, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
	}
	c := NewISWStar(k, nWorkers, agents[0].GradLen(), testLink(), DefaultISWConfig())
	var services []Service
	for i := range agents {
		services = append(services, c.Client(i))
	}
	stats := RunSync(k, agents, services, SyncConfig{Iterations: 3000,
		LocalCompute: 9900 * time.Microsecond, WeightUpdate: 1500 * time.Microsecond})

	rewards := stats.AllRewards()
	if len(rewards) < 50 {
		t.Fatalf("only %d episodes", len(rewards))
	}
	k5 := len(rewards) / 5
	var early, late float64
	for _, r := range rewards[:k5] {
		early += r.Reward
	}
	for _, r := range rewards[len(rewards)-k5:] {
		late += r.Reward
	}
	early /= float64(k5)
	late /= float64(k5)
	t.Logf("sync iSW A2C: early %.1f late %.1f total %v", early, late, stats.Total)
	if late < early+40 {
		t.Fatalf("distributed training did not learn: early %.1f late %.1f", early, late)
	}
}

func TestRunStatsHelpers(t *testing.T) {
	s := &RunStats{Workers: []*WorkerStats{{
		Iters:   []IterRecord{{Start: 0, ComputeEnd: 10, AggEnd: 30, UpdateEnd: 35}},
		Rewards: []RewardPoint{{Time: 20, Reward: 5}, {Time: 10, Reward: 3}},
	}}}
	if s.MeanIter() != 35 || s.MeanAgg() != 20 {
		t.Fatalf("means %v %v", s.MeanIter(), s.MeanAgg())
	}
	all := s.AllRewards()
	if all[0].Time != 10 || all[1].Time != 20 {
		t.Fatalf("rewards not sorted: %v", all)
	}
	var empty RunStats
	if empty.MeanIter() != 0 || empty.MeanAgg() != 0 {
		t.Fatal("empty stats nonzero")
	}
}

func TestSyntheticAgent(t *testing.T) {
	a := NewSyntheticAgent(100)
	g := make([]float32, 100)
	a.ComputeGradient(g)
	if g[0] != 1e-3 || g[99] != 1e-3 {
		t.Fatalf("fill = %v", g[0])
	}
	if a.GradLen() != 100 || a.Name() != "synthetic" {
		t.Fatal("metadata wrong")
	}
	if a.DrainEpisodes() != nil {
		t.Fatal("synthetic agent has episodes")
	}
}

func TestChunkRangeCoversVector(t *testing.T) {
	for _, tc := range []struct{ n, nw int }{{10, 3}, {1000, 4}, {7, 7}, {5, 2}} {
		covered := 0
		prevHi := 0
		for ci := 0; ci < tc.nw; ci++ {
			lo, hi := chunkRange(tc.n, tc.nw, ci)
			if lo != prevHi {
				t.Fatalf("n=%d nw=%d chunk %d: gap at %d", tc.n, tc.nw, ci, lo)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n {
			t.Fatalf("n=%d nw=%d covered %d", tc.n, tc.nw, covered)
		}
	}
}

// The measured per-iteration time for the calibrated DQN workload under
// sync PS should land near the paper's 81.6 ms (the one fitted number —
// this guards the calibration itself).
func TestCalibrationAnchorsDQNSyncPS(t *testing.T) {
	w := perfmodel.Workloads()[0]
	k := sim.NewKernel()
	c := NewPSCluster(k, 4, w.Floats(), netsim.TenGbE(), DefaultPSConfig())
	agents := make([]rl.Agent, 4)
	var services []Service
	for i := range agents {
		agents[i] = NewSyntheticAgent(w.Floats())
		services = append(services, c.Client(i))
	}
	stats := RunSync(k, agents, services, SyncConfig{Iterations: 3,
		LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate})
	got := stats.MeanIter()
	want := w.PaperSyncPerIterPS
	ratio := float64(got) / float64(want)
	t.Logf("DQN sync PS per-iteration: simulated %v vs paper %v (ratio %.2f)", got, want, ratio)
	if math.Abs(ratio-1) > 0.35 {
		t.Fatalf("calibration drifted: simulated %v vs paper %v", got, want)
	}
}

func TestServiceInterfacesExposed(t *testing.T) {
	k := sim.NewKernel()
	c := NewISWStar(k, 2, 100, testLink(), DefaultISWConfig())
	if c.StarSwitch == nil {
		t.Fatal("star switch not exposed")
	}
	if got := c.Client(0).H(); got != 2 {
		t.Fatalf("H = %d", got)
	}
	tree := NewISWTree(k, 2, 3, 100, testLink(), netsim.FortyGbE(), DefaultISWConfig())
	if tree.Tree == nil || len(tree.Workers()) != 6 {
		t.Fatal("tree cluster malformed")
	}
	if got := tree.Client(5).H(); got != 6 {
		t.Fatalf("tree H = %d", got)
	}
}

func BenchmarkSyncISWRoundDQN(b *testing.B) {
	// One full DQN-sized aggregation round through the simulated switch.
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		n := perfmodel.Workloads()[0].Floats()
		c := NewISWStar(k, 4, n, netsim.TenGbE(), DefaultISWConfig())
		agents := make([]rl.Agent, 4)
		var services []Service
		for j := range agents {
			agents[j] = NewSyntheticAgent(n)
			services = append(services, c.Client(j))
		}
		RunSync(k, agents, services, SyncConfig{Iterations: 1,
			LocalCompute: time.Millisecond, WeightUpdate: time.Millisecond})
	}
}

var _ = fmt.Sprintf // placeholder to keep fmt when benchmarks change
