package core

import (
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
	"iswitch/internal/switchnet"
	"iswitch/internal/tensor"
)

// Reliability layer for the in-switch path: Help-timer backoff, worker
// crash/rejoin, and whole-switch failover to a software relay.
//
// Failover state machine (per worker):
//
//	healthy --(FailoverAfter consecutive Help timeouts with no data
//	           and no switch ack)--> failed over (sticky)
//	healthy --(a relay-served aggregate arrives for the current
//	           round)--> failed over (a peer tripped first; follow)
//
// Once failed over, a worker unicasts its round-tagged contributions to
// the relay worker (cfg.Relay, worker 0 by default) instead of the
// switch. The relay accumulates per-(round, contributor) assemblers,
// and when all H contributions of a round are complete it sums them in
// worker-index order — one deterministic order, so every replica
// applies the identical float sequence — and unicasts the segmented sum
// to every other worker, keeping the last few served rounds to answer
// per-segment Helps. Workers behind by one round are healed by each
// failing-over worker offering its previous round's gradient too.

// RecoveryTimeoutFor derives a safe Help timer from the perfmodel's
// expected synchronous round for the workload: twice the healthy round
// time, so a slow-but-alive peer never looks like packet loss.
func RecoveryTimeoutFor(w perfmodel.Workload, link netsim.LinkConfig) sim.Time {
	return 2 * perfmodel.ExpectedSyncRound(w, link.BitsPerSecond)
}

// ScheduleCrash registers a worker crash (netsim.CrashFault) to fire at
// the aggregation round it names. Applied by Cluster.ApplyFaults;
// exposed for tests that drive an ISWCluster directly.
func (c *ISWCluster) ScheduleCrash(f netsim.CrashFault) {
	if c.crashes == nil {
		c.crashes = make(map[int][]netsim.CrashFault)
	}
	c.crashes[f.Worker] = append(c.crashes[f.Worker], f)
}

// Switches lists the cluster's aggregation switches, root/core first —
// the index space netsim.SwitchFault.Switch names.
func (c *ISWCluster) Switches() []*switchnet.ISwitch {
	var out []*switchnet.ISwitch
	switch {
	case c.StarSwitch != nil:
		out = append(out, c.StarSwitch)
	case c.Tree != nil:
		out = append(out, c.Tree.Root)
		out = append(out, c.Tree.ToRs...)
	case c.ThreeTier != nil:
		out = append(out, c.ThreeTier.Core)
		out = append(out, c.ThreeTier.AGGs...)
		out = append(out, c.ThreeTier.ToRs...)
	case c.FatTree != nil:
		out = append(out, c.FatTree.Core)
		out = append(out, c.FatTree.Aggs...)
		for _, row := range c.FatTree.Edges {
			out = append(out, row...)
		}
	}
	return out
}

// relayArmed reports whether the switch-to-relay failover is in play.
func (c *ISWCluster) relayArmed() bool {
	return c.cfg.FailoverAfter > 0 && !c.cfg.Untagged
}

// relayAddr resolves the backup software aggregator's address.
func (c *ISWCluster) relayAddr() protocol.Addr {
	if c.cfg.Relay != (protocol.Addr{}) {
		return c.cfg.Relay
	}
	return c.workers[0].Addr
}

// isWorkerAddr reports whether a is one of the cluster's workers.
func (c *ISWCluster) isWorkerAddr(a protocol.Addr) bool {
	if c.workerIdx == nil {
		c.workerIdx = make(map[protocol.Addr]int, len(c.workers))
		for i, w := range c.workers {
			c.workerIdx[w.Addr] = i
		}
	}
	_, ok := c.workerIdx[a]
	return ok
}

// backoffTimeout returns the Help timer for the current backoff level:
// RecoveryTimeout doubled per fruitless timeout (capped at MaxBackoff,
// default 16× base) plus deterministic per-worker jitter so the fleet's
// timers decorrelate without a shared RNG.
func (ic *iswClient) backoffTimeout() sim.Time {
	cfg := &ic.cluster.cfg
	base := cfg.RecoveryTimeout
	lvl := ic.level
	if lvl > 6 {
		lvl = 6
	}
	to := base << uint(lvl)
	max := cfg.MaxBackoff
	if max <= 0 {
		max = 16 * base
	}
	if to > max {
		to = max
	}
	h := (uint64(ic.idx)+1)*0x9e3779b97f4a7c15 ^ ic.round*0xbf58476d1ce4e5b9 ^ uint64(lvl)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return to + sim.Time(h%uint64(to/4+1))
}

// takeCrash consumes a scheduled crash for the round about to start.
func (ic *iswClient) takeCrash() (netsim.CrashFault, bool) {
	list := ic.cluster.crashes[ic.idx]
	for j, f := range list {
		if f.AtRound == int(ic.round)+1 {
			ic.cluster.crashes[ic.idx] = append(list[:j:j], list[j+1:]...)
			return f, true
		}
	}
	return netsim.CrashFault{}, false
}

// crashedAggregate models the scheduled crash: the worker sends at most
// PartialSegs contribution segments, then its NIC goes dark. A
// permanent crash parks the process draining (and dropping) everything
// until the kernel shuts down; a rejoin drains for the outage, then
// re-admits itself and recovers the interrupted round — the switch's
// shadow slots serve what completed, targeted Helps re-gather what its
// own missing segments stalled.
func (ic *iswClient) crashedAggregate(p *sim.Proc, grad []float32, f netsim.CrashFault) []float32 {
	p.Sleep(ic.cluster.cfg.WorkerBase)
	ic.sendGradient(grad, f.PartialSegs)
	if !f.Rejoin {
		for {
			ic.host.Recv(p).Release()
		}
	}
	deadline := p.Now() + f.Outage
	for {
		remain := deadline - p.Now()
		if remain <= 0 {
			break
		}
		if pkt, ok := ic.host.RecvTimeout(p, remain); ok {
			pkt.Release()
		}
	}
	ic.level, ic.fruitless = 0, 0
	ic.cluster.Rejoins++
	ic.Setup(p) // re-Join is idempotent: membership and H do not move
	return ic.CollectAggregate(p)
}

// enterFailover flips the sticky switch-to-relay failover and offers
// the previous round's gradient (a peer one round behind needs every
// worker's contribution for it; the relay ignores rounds already
// served).
func (ic *iswClient) enterFailover() {
	if ic.failedOver {
		return
	}
	ic.failedOver = true
	ic.cluster.Failovers++
	ic.level, ic.fruitless = 0, 0
	if ic.prevGrad != nil {
		ic.relayContribute((ic.round-1)%protocol.RoundTagMod, ic.prevGrad, -1)
	}
}

// relayDoneDepth is how many served rounds the relay retains to answer
// per-segment Helps from workers that lost sum packets.
const relayDoneDepth = 8

// relayState is the software aggregation engine run by the relay worker.
type relayState struct {
	// rounds accumulates per-(round tag, contributor) reassembly.
	rounds map[uint64]map[protocol.Addr]*protocol.Assembler
	// done holds the last relayDoneDepth served sums, keyed by round tag.
	done  map[uint64][]float32
	order []uint64
}

func (ic *iswClient) relayEngine() *relayState {
	if ic.relay == nil {
		ic.relay = &relayState{
			rounds: make(map[uint64]map[protocol.Addr]*protocol.Assembler),
			done:   make(map[uint64][]float32),
		}
	}
	return ic.relay
}

// isRelay reports whether this worker hosts the relay engine.
func (ic *iswClient) isRelay() bool { return ic.host.Addr == ic.cluster.relayAddr() }

// relayContribute delivers this worker's gradient for round tag rt to
// the relay — over the wire for ordinary workers, directly into the
// engine when this worker is the relay. limit truncates to the first
// limit segments (crash modeling); -1 sends all.
func (ic *iswClient) relayContribute(rt uint64, grad []float32, limit int) {
	if grad == nil {
		return
	}
	if ic.isRelay() {
		if limit < 0 {
			ic.relayLocalContribution(rt, grad)
		}
		return
	}
	sent := 0
	for _, pkt := range protocol.SegmentWith(ic.host.Addr, ic.cluster.relayAddr(), grad, ic.cluster.cfg.perPacket()) {
		if limit >= 0 && sent >= limit {
			break
		}
		pkt.Seg |= rt << roundShift
		pkt.Job = ic.cluster.cfg.Job
		ic.host.Send(pkt)
		sent++
	}
}

// relayLocalContribution injects the relay's own gradient into its
// engine without touching the wire.
func (ic *iswClient) relayLocalContribution(rt uint64, grad []float32) {
	st := ic.relayEngine()
	if _, served := st.done[rt]; served {
		return
	}
	a := ic.relayAsmFor(rt, ic.host.Addr)
	if a.Complete() {
		return
	}
	for _, pkt := range protocol.SegmentWith(ic.host.Addr, ic.host.Addr, grad, ic.cluster.cfg.perPacket()) {
		_ = a.Add(pkt)
	}
	ic.relayTryComplete(rt)
}

func (ic *iswClient) relayAsmFor(rt uint64, src protocol.Addr) *protocol.Assembler {
	st := ic.relayEngine()
	byW := st.rounds[rt]
	if byW == nil {
		byW = make(map[protocol.Addr]*protocol.Assembler)
		st.rounds[rt] = byW
	}
	a := byW[src]
	if a == nil {
		a = protocol.NewAssemblerWith(ic.cluster.n, ic.cluster.cfg.perPacket())
		byW[src] = a
	}
	return a
}

// relayDispatch routes one received frame through the relay engine.
// Takes ownership of pkt.
func (ic *iswClient) relayDispatch(pkt *protocol.Packet) {
	cfg := &ic.cluster.cfg
	switch {
	case pkt.IsData() && pkt.Job == cfg.Job && ic.cluster.isWorkerAddr(pkt.Src):
		ic.relayIngest(pkt)
	case pkt.IsControl() && pkt.Action == protocol.ActionHelp:
		ic.relayHandleHelp(pkt)
		pkt.Release()
	default:
		pkt.Release()
	}
}

// relayIngest accumulates one wire contribution. Duplicate
// contributions for already-served rounds are dropped — the sender
// recovers lost sum packets with Helps, not by re-contributing.
// Takes ownership of pkt.
func (ic *iswClient) relayIngest(pkt *protocol.Packet) {
	st := ic.relayEngine()
	rt := pkt.Seg >> roundShift
	if _, served := st.done[rt]; served {
		pkt.Release()
		return
	}
	a := ic.relayAsmFor(rt, pkt.Src)
	pkt.Seg &= segMask
	_ = a.Add(pkt) // duplicates overwrite idempotently
	pkt.Release()
	ic.relayTryComplete(rt)
}

// relayTryComplete serves round rt if all H contributions are complete:
// sum in worker-index order (the one deterministic order every replica
// sees) and unicast the segmented sum to every other worker.
func (ic *iswClient) relayTryComplete(rt uint64) {
	st := ic.relay
	byW := st.rounds[rt]
	if len(byW) < ic.cluster.h {
		return
	}
	for _, a := range byW {
		if !a.Complete() {
			return
		}
	}
	total := make([]float32, ic.cluster.n)
	for _, w := range ic.cluster.workers {
		if a, ok := byW[w.Addr]; ok {
			tensor.Add(total, a.Vector())
		}
	}
	delete(st.rounds, rt)
	st.done[rt] = total
	st.order = append(st.order, rt)
	for len(st.order) > relayDoneDepth {
		old := st.order[0]
		st.order = st.order[1:]
		delete(st.done, old)
	}
	// In-progress state more than a round older than what was just
	// served can never complete (its contributors have moved on): drop
	// it so a long failover run does not accrete assemblers.
	for k := range st.rounds {
		if d := (rt - k) % protocol.RoundTagMod; d >= 2 && d < protocol.RoundTagMod/2 {
			delete(st.rounds, k)
		}
	}
	for _, w := range ic.cluster.workers {
		if w.Addr == ic.host.Addr {
			continue
		}
		for _, pkt := range protocol.SegmentWith(ic.host.Addr, w.Addr, total, ic.cluster.cfg.perPacket()) {
			pkt.Seg |= rt << roundShift
			pkt.Job = ic.cluster.cfg.Job
			ic.host.Send(pkt)
		}
	}
}

// relayHandleHelp answers a Help addressed to the relay: served rounds
// re-serve the one requested segment; unserved rounds chase exactly the
// workers whose contributions are missing. Does not take ownership.
func (ic *iswClient) relayHandleHelp(pkt *protocol.Packet) {
	seg, err := protocol.ParseHelp(pkt.Value)
	if err != nil {
		return
	}
	st := ic.relayEngine()
	rt := seg >> roundShift
	if sum, ok := st.done[rt]; ok {
		lo, hi := protocol.SegmentRangeWith(ic.cluster.n, seg&segMask, ic.cluster.cfg.perPacket())
		if lo >= hi {
			return
		}
		out := protocol.NewData(ic.host.Addr, pkt.Src, seg, sum[lo:hi])
		out.Job = ic.cluster.cfg.Job
		ic.host.Send(out)
		return
	}
	ic.relayChase(rt, pkt.Value)
}

// relayChase asks every worker whose contribution for round tag rt is
// incomplete to (re)send it.
func (ic *iswClient) relayChase(rt uint64, helpValue []byte) {
	byW := ic.relayEngine().rounds[rt]
	for _, w := range ic.cluster.workers {
		if w.Addr == ic.host.Addr {
			continue
		}
		if byW != nil {
			if a, ok := byW[w.Addr]; ok && a.Complete() {
				continue
			}
		}
		help := protocol.NewControl(ic.host.Addr, w.Addr, protocol.ActionHelp, helpValue)
		help.Job = ic.cluster.cfg.Job
		ic.host.Send(help)
	}
}

// answerRelayHelp re-sends this worker's contribution for the round the
// relay is chasing, if it still holds that round's gradient.
func (ic *iswClient) answerRelayHelp(rt uint64) {
	switch rt {
	case ic.round % protocol.RoundTagMod:
		ic.relayContribute(rt, ic.curGrad, -1)
	case (ic.round - 1) % protocol.RoundTagMod:
		ic.relayContribute(rt, ic.prevGrad, -1)
	}
}

// relaySidecar handles relay-path data arriving while this worker is
// still on the switch path: the relay worker runs its engine for peers
// that tripped failover first; an ordinary worker receiving a
// relay-served aggregate for its current round concludes the switch
// path is dead and follows. Takes ownership of pkt.
func (ic *iswClient) relaySidecar(pkt *protocol.Packet, tag uint64) {
	if ic.isRelay() {
		ic.relayDispatch(pkt)
		return
	}
	if pkt.Src == ic.cluster.relayAddr() && pkt.Seg>>roundShift == tag>>roundShift {
		ic.enterFailover()
		pkt.Seg &= segMask
		if ic.asm.Add(pkt) == nil {
			ic.level, ic.fruitless = 0, 0
		}
	}
	pkt.Release()
}

// relayHelpSidecar handles relay-path Helps arriving while this worker
// is still on the switch path. Takes ownership of pkt.
func (ic *iswClient) relayHelpSidecar(pkt *protocol.Packet) {
	if ic.isRelay() {
		ic.relayHandleHelp(pkt)
	} else if pkt.Src == ic.cluster.relayAddr() {
		if seg, err := protocol.ParseHelp(pkt.Value); err == nil {
			ic.answerRelayHelp(seg >> roundShift)
		}
	}
	pkt.Release()
}

// collectViaRelay is CollectAggregate's failed-over path.
func (ic *iswClient) collectViaRelay(p *sim.Proc) []float32 {
	cfg := &ic.cluster.cfg
	rt := ic.round % protocol.RoundTagMod
	if ic.isRelay() {
		st := ic.relayEngine()
		ic.relayLocalContribution(rt, ic.curGrad)
		for {
			if sum, ok := st.done[rt]; ok {
				return append([]float32(nil), sum...)
			}
			pkt, ok := ic.host.RecvTimeout(p, ic.backoffTimeout())
			if !ok {
				ic.level++
				ic.relayChase(rt, protocol.HelpValue(rt<<roundShift))
				ic.cluster.HelpsSent++
				continue
			}
			ic.level = 0
			ic.relayDispatch(pkt)
		}
	}
	ic.relayContribute(rt, ic.curGrad, -1)
	for !ic.asm.Complete() {
		pkt, ok := ic.host.RecvTimeout(p, ic.backoffTimeout())
		if !ok {
			ic.level++
			// Loss on either leg: re-offer the contribution (the relay's
			// assemblers absorb duplicates) and Help for missing sums.
			ic.relayContribute(rt, ic.curGrad, -1)
			for _, seg := range ic.asm.Missing() {
				help := protocol.NewControl(ic.host.Addr, ic.cluster.relayAddr(),
					protocol.ActionHelp, protocol.HelpValue(seg|rt<<roundShift))
				help.Job = cfg.Job
				ic.host.Send(help)
				ic.cluster.HelpsSent++
			}
			continue
		}
		switch {
		case pkt.IsData() && pkt.Job == cfg.Job && pkt.Src == ic.cluster.relayAddr() &&
			pkt.Seg>>roundShift == rt:
			pkt.Seg &= segMask
			if ic.asm.Add(pkt) == nil {
				ic.level = 0
			}
			pkt.Release()
		case pkt.IsControl() && pkt.Action == protocol.ActionHelp:
			if pkt.Src == ic.cluster.relayAddr() {
				if seg, err := protocol.ParseHelp(pkt.Value); err == nil {
					ic.answerRelayHelp(seg >> roundShift)
				}
			}
			pkt.Release()
		default:
			pkt.Release()
		}
	}
	return append([]float32(nil), ic.asm.Vector()...)
}
