package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
	"iswitch/internal/tensor/kernels"
)

// Compression datapath tests: the block-scaled int32 scheme must be
// bit-identical under any packet arrival order (integer addition is
// exactly associative), the top-k scatter-add must equal a direct
// scatter of every worker's selection, and the shadow slots must
// re-serve quantized and sparse rounds bit-identically under the PR 7
// fault plans.

// fracAgent produces deterministic *fractional* gradients — values a
// float32 summation would reorder-sensitively, so any order dependence
// in the quantized path shows up as a bit difference.
type fracAgent struct {
	id      int
	n       int
	iter    int
	applied [][]float32
}

func (a *fracAgent) gradient(dst []float32) {
	a.iter++
	for i := range dst {
		dst[i] = float32(math.Sin(float64((a.id+1)*1013+a.iter*131+i))) * 0.01
	}
}

// gradientAt recomputes the round-it gradient without touching state
// (reference computations).
func (a fracAgent) gradientAt(it int, dst []float32) {
	for i := range dst {
		dst[i] = float32(math.Sin(float64((a.id+1)*1013+it*131+i))) * 0.01
	}
}

// runCompStaggered trains fracAgents over Build(spec).ISW with a
// per-worker compute stagger, which permutes every round's packet
// arrival order at the switch. Returns the agents with their applied
// aggregate history.
func runCompStaggered(t *testing.T, spec ClusterSpec, delays []time.Duration, iters int) []*fracAgent {
	t.Helper()
	k := sim.NewKernel()
	c := Build(k, spec).ISW
	n := len(c.Workers())
	agents := make([]*fracAgent, n)
	bar := sim.NewBarrier(k, n)
	for i := 0; i < n; i++ {
		a := &fracAgent{id: i, n: spec.ModelFloats}
		agents[i] = a
		svc := c.Client(i)
		d := delays[i%len(delays)]
		k.Spawn(fmt.Sprintf("comp-worker-%d", i), func(p *sim.Proc) {
			svc.Setup(p)
			bar.Wait(p)
			grad := make([]float32, a.n)
			for it := 0; it < iters; it++ {
				a.gradient(grad)
				p.Sleep(20*time.Microsecond + d)
				sum := svc.Aggregate(p, grad)
				a.applied = append(a.applied, append([]float32(nil), sum...))
			}
		})
	}
	done := make(chan struct{})
	go func() { k.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("simulation hung")
	}
	return agents
}

// requireSameApplied asserts every agent applied identical aggregates
// in every round, and that agent histories match across two runs.
func requireSameApplied(t *testing.T, label string, a, b []*fracAgent, iters int) {
	t.Helper()
	for w := range a {
		if len(a[w].applied) != iters || len(b[w].applied) != iters {
			t.Fatalf("%s: worker %d applied %d/%d rounds, want %d",
				label, w, len(a[w].applied), len(b[w].applied), iters)
		}
		for it := 0; it < iters; it++ {
			for i := range a[w].applied[it] {
				if x, y := a[w].applied[it][i], b[w].applied[it][i]; x != y {
					t.Fatalf("%s: worker %d iter %d elem %d: %v vs %v",
						label, w, it, i, x, y)
				}
				if w > 0 {
					if x, y := a[w].applied[it][i], a[0].applied[it][i]; x != y {
						t.Fatalf("%s: iter %d elem %d: worker %d applied %v, worker 0 %v",
							label, it, i, w, x, y)
					}
				}
			}
		}
	}
}

func compSpec(topo ClusterSpec, scheme protocol.Compression, nFloats int) ClusterSpec {
	topo.Mode = ModeISW
	topo.ModelFloats = nFloats
	topo.Link = testLink()
	topo.Uplink = netsim.FortyGbE()
	topo.Compression = scheme
	return topo
}

// TestInt32BlockOrderInvariance: the acceptance property — quantized
// aggregation is bit-identical under any arrival order. Two runs with
// opposite per-worker staggering (worker 0 slowest vs fastest) reorder
// every round's contributions; the applied aggregates must not move by
// a single bit, on a star and on a multi-level fat-tree.
func TestInt32BlockOrderInvariance(t *testing.T) {
	nFloats := 2*protocolFloats + 9
	const iters = 6
	forward := []time.Duration{0, 7 * time.Microsecond, 23 * time.Microsecond, 41 * time.Microsecond}
	backward := []time.Duration{41 * time.Microsecond, 23 * time.Microsecond, 7 * time.Microsecond, 0}
	for _, topo := range []ClusterSpec{
		{Topology: TopoStar, Workers: 6},
		{Topology: TopoFatTree, KAry: 4, HostsPerEdge: 1},
	} {
		t.Run(topo.Topology.String(), func(t *testing.T) {
			spec := compSpec(topo, protocol.CompInt32Block, nFloats)
			a := runCompStaggered(t, spec, forward, iters)
			b := runCompStaggered(t, spec, backward, iters)
			requireSameApplied(t, "int32block", a, b, iters)
		})
	}
}

// TestTopKMatchesDirectScatter: the switch's sparse scatter-add must
// equal a direct scatter of every worker's deterministic top-k
// selection — no element lost, duplicated, or misplaced across the
// segment grid.
func TestTopKMatchesDirectScatter(t *testing.T) {
	nFloats := 2*protocolFloats + 9
	const nWorkers, iters = 5, 4
	spec := compSpec(ClusterSpec{Topology: TopoStar, Workers: nWorkers}, protocol.CompTopK, nFloats)
	agents := runCompStaggered(t, spec, []time.Duration{0, 11 * time.Microsecond, 29 * time.Microsecond}, iters)

	k := int(0.05 * float64(nFloats)) // compress.DefaultTopKFrac
	if k < 1 {
		k = 1
	}
	grad := make([]float32, nFloats)
	var sel []int32
	var keys []uint64
	for it := 1; it <= iters; it++ {
		want := make([]float32, nFloats)
		for w := range agents {
			agents[w].gradientAt(it, grad)
			sel, keys = kernels.TopKSelect(sel[:0], keys, grad, k)
			if len(sel) != k {
				t.Fatalf("iter %d worker %d: selected %d of %d", it, w, len(sel), k)
			}
			for _, gi := range sel {
				want[gi] += grad[gi]
			}
		}
		for w := range agents {
			got := agents[w].applied[it-1]
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("iter %d worker %d elem %d: switch %v, direct scatter %v",
						it, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFP16ExactOnSmallIntegers: half precision represents integers up
// to 2048 exactly, so an fp16 run over integer-valued gradients must be
// bit-identical to the raw float32 run — on the in-switch path and the
// parameter-server path alike.
func TestFP16ExactOnSmallIntegers(t *testing.T) {
	const nWorkers, iters = 4, 5
	nFloats := protocolFloats + 13
	for _, mode := range []Mode{ModeISW, ModePS} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(scheme protocol.Compression) []*intAgent {
				k := sim.NewKernel()
				spec := ClusterSpec{Topology: TopoStar, Mode: mode, Workers: nWorkers,
					ModelFloats: nFloats, Link: testLink(), Compression: scheme}
				c := Build(k, spec)
				agents := make([]rl.Agent, nWorkers)
				ints := make([]*intAgent, nWorkers)
				services := make([]Service, nWorkers)
				for i := range agents {
					ints[i] = newIntAgent(i, nFloats)
					agents[i] = ints[i]
					services[i] = c.Client(i)
				}
				RunSync(k, agents, services, fastTiming(iters))
				return ints
			}
			raw := run(protocol.CompNone)
			half := run(protocol.CompFP16)
			for w := range raw {
				for it := range raw[w].applied {
					for i := range raw[w].applied[it] {
						if x, y := raw[w].applied[it][i], half[w].applied[it][i]; x != y {
							t.Fatalf("worker %d iter %d elem %d: raw %v, fp16 %v", w, it, i, x, y)
						}
					}
				}
			}
		})
	}
}

// --- Shadow re-serve under the PR 7 fault plans (satellite 3) ---

// compRelSpec arms the recovery machinery on a compression spec.
func compRelSpec(topo ClusterSpec, scheme protocol.Compression, nFloats int, cfg *ISWConfig, plan *netsim.FaultPlan) ClusterSpec {
	spec := compSpec(topo, scheme, nFloats)
	spec.ISW = cfg
	spec.Dedup = true
	spec.Faults = plan
	return spec
}

// runCompReliability is runCompStaggered without stagger, under a
// watchdog, returning the cluster for stats inspection and the
// virtual makespan.
func runCompReliability(t *testing.T, spec ClusterSpec, iters int) ([]*fracAgent, *ISWCluster, sim.Time) {
	t.Helper()
	k := sim.NewKernel()
	c := Build(k, spec).ISW
	n := len(c.Workers())
	agents := make([]*fracAgent, n)
	bar := sim.NewBarrier(k, n)
	for i := 0; i < n; i++ {
		a := &fracAgent{id: i, n: spec.ModelFloats}
		agents[i] = a
		svc := c.Client(i)
		k.Spawn(fmt.Sprintf("rel-worker-%d", i), func(p *sim.Proc) {
			svc.Setup(p)
			bar.Wait(p)
			grad := make([]float32, a.n)
			for it := 0; it < iters; it++ {
				a.gradient(grad)
				p.Sleep(100 * time.Microsecond)
				sum := svc.Aggregate(p, grad)
				a.applied = append(a.applied, append([]float32(nil), sum...))
			}
		})
	}
	done := make(chan struct{})
	go func() { k.Run(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("simulation hung: compressed recovery failed to terminate")
	}
	return agents, c, k.Now()
}

// TestCompressedLossReserveBitIdentical: under heavy per-link loss, the
// shadow slots re-serve quantized (and sparse jobs' dense) emissions
// and workers retransmit re-encoded contributions; the run must stay
// bit-identical to the clean run — the quantized grid timeline included
// — on a star and a fat-tree.
func TestCompressedLossReserveBitIdentical(t *testing.T) {
	nFloats := 2*protocolFloats + 9
	const iters = 8
	topos := []ClusterSpec{
		{Topology: TopoStar, Workers: 6},
		{Topology: TopoFatTree, KAry: 4, HostsPerEdge: 1},
	}
	for _, scheme := range []protocol.Compression{protocol.CompInt32Block, protocol.CompTopK} {
		for _, topo := range topos {
			t.Run(fmt.Sprintf("%s-%s", scheme, topo.Topology), func(t *testing.T) {
				cfg := DefaultISWConfig()
				cfg.RecoveryTimeout = 2 * time.Millisecond
				clean, _, _ := runCompReliability(t, compRelSpec(topo, scheme, nFloats, &cfg, nil), iters)

				plan := &netsim.FaultPlan{
					Seed: 42,
					Links: []netsim.LinkFault{
						{Worker: 0, Dir: netsim.DirBoth, Loss: 0.10},
						{Worker: 1, Dir: netsim.DirUp, Loss: 0.05},
						{Worker: 2, Dir: netsim.DirDown, Loss: 0.05},
					},
				}
				faulted, c, _ := runCompReliability(t, compRelSpec(topo, scheme, nFloats, &cfg, plan), iters)

				var drops uint64
				for _, h := range c.Workers() {
					drops += h.Port().Dropped + h.Port().Peer().Dropped
				}
				if drops == 0 {
					t.Fatal("loss injection did not fire; test proves nothing")
				}
				var served uint64
				for _, is := range c.Switches() {
					served += is.HelpServed
				}
				if served == 0 {
					t.Fatal("no Help was answered from the shadow slots; re-serve path untested")
				}
				requireSameApplied(t, scheme.String(), clean, faulted, iters)
			})
		}
	}
}

// TestCompressedCrashRejoin: a worker that dies mid-upload under a
// quantized scheme rejoins and re-contributes on the round's original
// grid (EncodeQPrev / the cached sparse selection); the dedup bitmap
// absorbs duplicates and the run stays bit-identical to a crash-free
// one.
func TestCompressedCrashRejoin(t *testing.T) {
	nFloats := 2*protocolFloats + 9
	const iters = 8
	for _, scheme := range []protocol.Compression{protocol.CompInt32Block, protocol.CompTopK} {
		t.Run(scheme.String(), func(t *testing.T) {
			topo := ClusterSpec{Topology: TopoStar, Workers: 6}
			cfg := DefaultISWConfig()
			cfg.RecoveryTimeout = 2 * time.Millisecond
			clean, _, _ := runCompReliability(t, compRelSpec(topo, scheme, nFloats, &cfg, nil), iters)

			plan := &netsim.FaultPlan{Crashes: []netsim.CrashFault{
				{Worker: 2, AtRound: 4, PartialSegs: 2, Rejoin: true, Outage: 5 * time.Millisecond},
			}}
			faulted, c, _ := runCompReliability(t, compRelSpec(topo, scheme, nFloats, &cfg, plan), iters)
			if c.Rejoins != 1 {
				t.Fatalf("expected 1 rejoin, got %d", c.Rejoins)
			}
			requireSameApplied(t, scheme.String(), clean, faulted, iters)
		})
	}
}

// TestQuantizedFailoverConsistency: when the aggregation plane dies
// under int32block, workers fall back to the software relay, which
// sums raw float32 — precision changes by design, so the property
// pinned here is replica consistency: every worker of the faulted run
// applies identical post-failover aggregates and the run terminates.
func TestQuantizedFailoverConsistency(t *testing.T) {
	nFloats := 2*protocolFloats + 9
	const iters = 8
	topo := ClusterSpec{Topology: TopoStar, Workers: 6}
	cfg := DefaultISWConfig()
	cfg.RecoveryTimeout = 2 * time.Millisecond

	_, _, cleanTotal := runCompReliability(t, compRelSpec(topo, protocol.CompInt32Block, nFloats, &cfg, nil), iters)

	cfg2 := cfg
	cfg2.FailoverAfter = 3
	plan := &netsim.FaultPlan{Switches: []netsim.SwitchFault{{Switch: -1, At: cleanTotal / 2}}}
	faulted, c, _ := runCompReliability(t, compRelSpec(topo, protocol.CompInt32Block, nFloats, &cfg2, plan), iters)
	if int(c.Failovers) != len(faulted) {
		t.Fatalf("expected all %d workers to fail over, got %d", len(faulted), c.Failovers)
	}
	for w := 1; w < len(faulted); w++ {
		for it := 0; it < iters; it++ {
			for i := range faulted[w].applied[it] {
				if x, y := faulted[w].applied[it][i], faulted[0].applied[it][i]; x != y {
					t.Fatalf("iter %d elem %d: worker %d applied %v, worker 0 %v", it, i, w, x, y)
				}
			}
		}
	}
}
