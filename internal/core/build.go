package core

import (
	"fmt"

	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/sim"
	"iswitch/internal/switchnet"
)

// The unified builder API. A ClusterSpec names a topology and an
// aggregation mode as data; Build turns it into a running cluster. The
// fourteen per-topology-per-mode constructors (NewISWStar, NewPSCluster,
// NewARClusterTree, ...) remain as one-line wrappers over Build, so a
// spec and its legacy constructor produce byte-identical simulations.

// Topology selects the physical fabric.
type Topology int

const (
	// TopoStar is one switch with every worker (and any server) on it.
	TopoStar Topology = iota
	// TopoTree is the two-level rack hierarchy: ToRs under one root.
	TopoTree
	// TopoThreeTier is the ToR → AGG → Core hierarchy of Figure 10.
	TopoThreeTier
	// TopoFatTree is the k-ary fat-tree (in-switch mode only).
	TopoFatTree
)

func (t Topology) String() string {
	switch t {
	case TopoStar:
		return "star"
	case TopoTree:
		return "tree"
	case TopoThreeTier:
		return "3tier"
	case TopoFatTree:
		return "fattree"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Mode selects the aggregation strategy running over the fabric.
type Mode int

const (
	// ModeISW is in-switch aggregation (the paper's system).
	ModeISW Mode = iota
	// ModePS is the synchronous parameter server baseline.
	ModePS
	// ModeAsyncPS is the asynchronous parameter server baseline.
	ModeAsyncPS
	// ModeShardedPS is the sharded synchronous parameter server.
	ModeShardedPS
	// ModeAsyncShardedPS is the sharded asynchronous parameter server.
	ModeAsyncShardedPS
	// ModeAllReduce is the Ring-AllReduce baseline.
	ModeAllReduce
)

func (m Mode) String() string {
	switch m {
	case ModeISW:
		return "isw"
	case ModePS:
		return "ps"
	case ModeAsyncPS:
		return "async-ps"
	case ModeShardedPS:
		return "sharded-ps"
	case ModeAsyncShardedPS:
		return "async-sharded-ps"
	case ModeAllReduce:
		return "allreduce"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ClusterSpec is the declarative description Build consumes.
type ClusterSpec struct {
	Topology Topology
	Mode     Mode

	// Workers is the worker count (star and tree topologies; tree pairs
	// it with PerRack and tolerates a partial last rack). Three-tier and
	// fat-tree derive their count from the fabric shape instead.
	Workers int
	// PerRack is the rack width for TopoTree.
	PerRack int
	// AGGs, ToRsPerAGG, HostsPerToR shape TopoThreeTier.
	AGGs, ToRsPerAGG, HostsPerToR int
	// KAry, HostsPerEdge shape TopoFatTree (k pods of k/2 edge switches).
	KAry, HostsPerEdge int

	// ModelFloats is the gradient length.
	ModelFloats int
	// Shards is the server count for the sharded-PS modes.
	Shards int

	// Compression selects the gradient wire scheme for the whole job
	// (CompNone: the paper's raw float32). Validate documents which
	// mode×scheme pairings are supported; Build rejects the rest. For
	// ModeISW the value is copied into the ISW config (and a non-zero
	// ISWConfig.Compression on a spec with CompNone is honoured), so
	// either field may name the scheme.
	Compression protocol.Compression

	// Link is the worker access link (zero value: 10 GbE). Uplink feeds
	// ToR→root / ToR→AGG / edge→AGG tiers and CoreLink the AGG→core tier;
	// each zero value inherits the next-lower tier's config (so a spec
	// naming only Link runs a uniform fabric — note the legacy tree
	// constructors always named their uplink explicitly, typically 40 GbE).
	Link, Uplink, CoreLink netsim.LinkConfig

	// Exactly the config matching Mode is consulted; nil selects the
	// defaults (DefaultISWConfig and friends).
	ISW *ISWConfig
	PS  *PSConfig
	AR  *ARConfig

	// Dedup arms the contributor bitmap on every aggregation switch —
	// the prerequisite for targeted (non-storm) loss recovery, shadow
	// slots notwithstanding. In-switch mode only.
	Dedup bool
	// LivenessHorizon, when positive, lets a switch evict a contributor
	// not heard from for this long while resolving a Help — how a round
	// completes over the survivors after a permanent worker crash.
	// In-switch mode only; implies Dedup.
	LivenessHorizon sim.Time

	// Faults, when non-nil, is applied to the built cluster
	// (Cluster.ApplyFaults) before Build returns.
	Faults *netsim.FaultPlan
}

// Cluster is Build's result: the spec, the kernel, and exactly one of
// the mode-specific cluster handles populated.
type Cluster struct {
	Spec ClusterSpec
	k    *sim.Kernel

	ISW     *ISWCluster
	PS      *PSCluster
	Sharded *ShardedPSCluster
	AR      *ARCluster
}

// Kernel returns the simulation kernel the cluster was built on.
func (c *Cluster) Kernel() *sim.Kernel { return c.k }

// Client returns worker i's aggregation handle, whichever mode is live.
func (c *Cluster) Client(i int) Service {
	switch {
	case c.ISW != nil:
		return c.ISW.Client(i)
	case c.PS != nil:
		return c.PS.Client(i)
	case c.Sharded != nil:
		return c.Sharded.Client(i)
	case c.AR != nil:
		return c.AR.Client(i)
	}
	panic("core: empty Cluster")
}

// Workers returns the worker hosts, whichever mode is live.
func (c *Cluster) Workers() []*netsim.Host {
	switch {
	case c.ISW != nil:
		return c.ISW.Workers()
	case c.PS != nil:
		return c.PS.Workers()
	case c.Sharded != nil:
		return c.Sharded.Workers()
	case c.AR != nil:
		return c.AR.Workers()
	}
	panic("core: empty Cluster")
}

// Switches returns the aggregation switches (in-switch mode; empty for
// the baselines, which run over plain forwarding switches).
func (c *Cluster) Switches() []*switchnet.ISwitch {
	if c.ISW != nil {
		return c.ISW.Switches()
	}
	return nil
}

// scheme resolves the spec's effective compression: the spec-level
// field wins; a ModeISW spec may instead name it on the ISW config.
func (s ClusterSpec) scheme() protocol.Compression {
	if s.Compression != protocol.CompNone {
		return s.Compression
	}
	if s.Mode == ModeISW && s.ISW != nil {
		return s.ISW.Compression
	}
	return protocol.CompNone
}

// Validate checks the spec's compression scheme against its aggregation
// mode, returning a descriptive error for unsupported pairings. Build
// calls it and panics on failure; tests and experiment drivers may call
// it directly to probe support.
func (s ClusterSpec) Validate() error {
	scheme := s.scheme()
	if !scheme.Valid() {
		return fmt.Errorf("core: unknown compression scheme Compression(%d)", uint8(scheme))
	}
	switch scheme {
	case protocol.CompFP16:
		switch s.Mode {
		case ModeISW, ModePS, ModeAsyncPS:
			// Supported: one aggregation point that re-rounds emissions.
		default:
			return fmt.Errorf("core: fp16 compression is not supported under %v: the scheme needs a single aggregation point that re-rounds emissions (in-switch or parameter server); sharded and ring strategies splice raw float32 chunks between peers", s.Mode)
		}
	case protocol.CompInt32Block:
		if s.Mode != ModeISW {
			return fmt.Errorf("core: int32block compression requires ModeISW (got %v): only the in-switch integer datapath has the saturating adders and emission narrowing the wire format assumes", s.Mode)
		}
	case protocol.CompTopK:
		if s.Mode != ModeISW {
			return fmt.Errorf("core: topk compression requires ModeISW (got %v): the sparse scatter-add lives in the switch accelerator", s.Mode)
		}
		if s.ISW != nil && s.ISW.FloatsPerPacket != 0 && s.ISW.FloatsPerPacket != protocol.FloatsPerPacket {
			return fmt.Errorf("core: topk compression requires the default per-packet payload (%d floats): block-local sparse indices are sized to the MTU segment grid, got %d", protocol.FloatsPerPacket, s.ISW.FloatsPerPacket)
		}
	}
	return nil
}

// Build constructs the cluster a spec describes. It panics on a
// malformed spec or an unsupported topology×mode pairing (construction
// is test/experiment setup; errors there are programming mistakes).
func Build(k *sim.Kernel, spec ClusterSpec) *Cluster {
	if err := spec.Validate(); err != nil {
		panic("core: Build: " + err.Error())
	}
	link := spec.Link
	if link == (netsim.LinkConfig{}) {
		link = netsim.TenGbE()
	}
	uplink := spec.Uplink
	if uplink == (netsim.LinkConfig{}) {
		uplink = link
	}
	coreLink := spec.CoreLink
	if coreLink == (netsim.LinkConfig{}) {
		coreLink = uplink
	}
	if spec.ModelFloats <= 0 {
		panic("core: Build needs ModelFloats > 0")
	}

	c := &Cluster{Spec: spec, k: k}
	switch spec.Mode {
	case ModeISW:
		c.ISW = buildISW(k, spec, link, uplink, coreLink)
	case ModePS, ModeAsyncPS:
		c.PS = buildPS(k, spec, link, uplink)
	case ModeShardedPS, ModeAsyncShardedPS:
		if spec.Topology != TopoStar {
			panic(fmt.Sprintf("core: Build: %v over %v is not supported", spec.Mode, spec.Topology))
		}
		cfg := DefaultPSConfig()
		if spec.PS != nil {
			cfg = *spec.PS
		}
		if spec.Mode == ModeShardedPS {
			c.Sharded = newSyncShardedPSCluster(k, spec.Workers, spec.ModelFloats, spec.Shards, link, cfg)
		} else {
			c.Sharded = newShardedPSCluster(k, spec.Workers, spec.ModelFloats, spec.Shards, link, cfg)
		}
	case ModeAllReduce:
		cfg := DefaultARConfig()
		if spec.AR != nil {
			cfg = *spec.AR
		}
		switch spec.Topology {
		case TopoStar:
			c.AR = newARCluster(k, spec.Workers, spec.ModelFloats, link, cfg)
		case TopoTree:
			c.AR = newARClusterTree(k, spec.Workers, rackWidth(spec), spec.ModelFloats, link, uplink, cfg)
		default:
			panic(fmt.Sprintf("core: Build: allreduce over %v is not supported", spec.Topology))
		}
	default:
		panic(fmt.Sprintf("core: Build: unknown mode %v", spec.Mode))
	}

	if spec.Faults != nil {
		if err := c.ApplyFaults(spec.Faults); err != nil {
			panic("core: Build: " + err.Error())
		}
	}
	return c
}

func rackWidth(spec ClusterSpec) int {
	if spec.PerRack > 0 {
		return spec.PerRack
	}
	return spec.Workers // one rack
}

func buildISW(k *sim.Kernel, spec ClusterSpec, link, uplink, coreLink netsim.LinkConfig) *ISWCluster {
	cfg := DefaultISWConfig()
	if spec.ISW != nil {
		cfg = *spec.ISW
	}
	cfg.Compression = spec.scheme()
	var c *ISWCluster
	switch spec.Topology {
	case TopoStar:
		sc := switchnet.BuildStar(k, spec.Workers, link)
		c = &ISWCluster{
			workers: sc.Workers, n: spec.ModelFloats, h: spec.Workers, cfg: cfg,
			StarSwitch: sc.IS,
		}
		for range sc.Workers {
			c.target = append(c.target, sc.IS.Addr())
		}
	case TopoTree:
		tc := switchnet.BuildTreeN(k, spec.Workers, rackWidth(spec), link, uplink)
		c = &ISWCluster{
			workers: tc.Workers, n: spec.ModelFloats, h: len(tc.Workers), cfg: cfg,
			Tree: tc,
		}
		for i := range tc.Workers {
			c.target = append(c.target, tc.ToROf(i).Addr())
		}
	case TopoThreeTier:
		tc := switchnet.BuildThreeTier(k, spec.AGGs, spec.ToRsPerAGG, spec.HostsPerToR, link, uplink, coreLink)
		c = &ISWCluster{
			workers: tc.Workers, n: spec.ModelFloats, h: len(tc.Workers), cfg: cfg,
			ThreeTier: tc,
		}
		for i := range tc.Workers {
			c.target = append(c.target, tc.ToROf3(i).Addr())
		}
	case TopoFatTree:
		fc := switchnet.BuildFatTree(k, spec.KAry, spec.HostsPerEdge, link, uplink, coreLink)
		c = &ISWCluster{
			workers: fc.Workers, n: spec.ModelFloats, h: len(fc.Workers), cfg: cfg,
			FatTree: fc,
		}
		for i := range fc.Workers {
			c.target = append(c.target, fc.EdgeOfWorker(i).Addr())
		}
	default:
		panic(fmt.Sprintf("core: Build: unknown topology %v", spec.Topology))
	}
	if spec.Dedup || spec.LivenessHorizon > 0 {
		for _, is := range c.Switches() {
			is.SetDedup(true)
			if spec.LivenessHorizon > 0 {
				is.SetLivenessHorizon(spec.LivenessHorizon)
			}
		}
	}
	if cfg.Compression != protocol.CompNone {
		// Pin the scheme on every aggregation level: parent switches
		// never see a worker Join, yet must interpret and re-emit their
		// children's partials under the job's wire format.
		for _, is := range c.Switches() {
			is.SetCompression(cfg.Job, cfg.Compression, uint64(spec.ModelFloats))
		}
	}
	return c
}

func buildPS(k *sim.Kernel, spec ClusterSpec, link, uplink netsim.LinkConfig) *PSCluster {
	cfg := DefaultPSConfig()
	if spec.PS != nil {
		cfg = *spec.PS
	}
	sync := spec.Mode == ModePS
	switch spec.Topology {
	case TopoStar:
		star := netsim.BuildStar(k, spec.Workers, link)
		server := star.AttachHost(k, PSServerAddr(), link)
		c := &PSCluster{Star: star, Server: server, workers: star.Hosts[:spec.Workers], n: spec.ModelFloats, cfg: cfg, scheme: spec.scheme()}
		if sync {
			c.startServer(k)
		}
		return c
	case TopoTree:
		tr := netsim.BuildRacksN(k, spec.Workers, rackWidth(spec), link, uplink)
		server := tr.AttachRootHost(k, PSServerAddr(), uplink)
		c := &PSCluster{Server: server, workers: tr.Hosts, n: spec.ModelFloats, cfg: cfg, scheme: spec.scheme()}
		if sync {
			c.startServer(k)
		}
		return c
	default:
		panic(fmt.Sprintf("core: Build: %v over %v is not supported", spec.Mode, spec.Topology))
	}
}

func newARClusterTree(k *sim.Kernel, totalWorkers, perRack, modelFloats int, edge, uplink netsim.LinkConfig, cfg ARConfig) *ARCluster {
	tr := netsim.BuildRacksN(k, totalWorkers, perRack, edge, uplink)
	return &ARCluster{workers: tr.Hosts, n: modelFloats, cfg: cfg}
}

// ApplyFaults installs a declarative fault plan onto the built cluster:
// link faults resolve worker indices to NIC port pairs, crash schedules
// attach to the in-switch clients, and switch failures are timed onto
// the kernel. Call before Run (fault times are absolute virtual times;
// the kernel is at 0 during setup).
func (c *Cluster) ApplyFaults(fp *netsim.FaultPlan) error {
	if err := fp.Validate(); err != nil {
		return err
	}
	workers := c.Workers()
	for _, lf := range fp.Links {
		if lf.Worker >= len(workers) {
			return fmt.Errorf("core: link fault worker %d out of range (%d workers)", lf.Worker, len(workers))
		}
		up := workers[lf.Worker].Port()
		fp.ApplyLink(lf, up, up.Peer())
	}
	if len(fp.Crashes) > 0 || len(fp.Switches) > 0 {
		if c.ISW == nil {
			return fmt.Errorf("core: crash/switch faults need the in-switch mode")
		}
	}
	for _, cf := range fp.Crashes {
		if cf.Worker >= len(workers) {
			return fmt.Errorf("core: crash fault worker %d out of range (%d workers)", cf.Worker, len(workers))
		}
		if c.ISW.cfg.RecoveryTimeout <= 0 {
			return fmt.Errorf("core: crash faults need ISWConfig.RecoveryTimeout armed")
		}
		c.ISW.ScheduleCrash(cf)
	}
	if len(fp.Switches) > 0 {
		switches := c.ISW.Switches()
		if c.ISW.cfg.FailoverAfter <= 0 {
			return fmt.Errorf("core: switch faults need ISWConfig.FailoverAfter armed")
		}
		for _, sf := range fp.Switches {
			if sf.Switch >= len(switches) {
				return fmt.Errorf("core: switch fault index %d out of range (%d switches)", sf.Switch, len(switches))
			}
			targets := switches
			if sf.Switch >= 0 {
				targets = switches[sf.Switch : sf.Switch+1]
			}
			for _, is := range targets {
				is := is
				c.k.After(sf.At, is.Fail)
			}
		}
	}
	return nil
}

// --- Legacy constructors as Build wrappers -------------------------------
//
// Deprecated in favor of Build(k, ClusterSpec{...}); each remains as a
// one-line wrapper so existing call sites and the byte-identical
// equivalence guarantee both hold. New code should use Build.
