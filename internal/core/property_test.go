package core

import (
	"testing"
	"testing/quick"
	"time"

	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// Property: Ring-AllReduce matches the direct element-wise sum for any
// worker count (2–6) and vector length, including lengths that do not
// divide evenly into ring chunks.
func TestAllReduceEquivalenceQuick(t *testing.T) {
	f := func(workers8, nFloats16 uint16) bool {
		nWorkers := int(workers8%5) + 2   // 2..6
		nFloats := int(nFloats16%700) + 1 // 1..700

		k := sim.NewKernel()
		c := NewARCluster(k, nWorkers, nFloats, testLink(), DefaultARConfig())
		agents := make([]rl.Agent, nWorkers)
		ints := make([]*intAgent, nWorkers)
		services := make([]Service, nWorkers)
		for i := range agents {
			ints[i] = newIntAgent(i, nFloats)
			agents[i] = ints[i]
			services[i] = c.Client(i)
		}
		RunSync(k, agents, services, SyncConfig{Iterations: 1,
			LocalCompute: 10 * time.Microsecond, WeightUpdate: time.Microsecond})

		ref := make([]*intAgent, nWorkers)
		for i := range ref {
			ref[i] = newIntAgent(i, nFloats)
		}
		want := make([]float32, nFloats)
		g := make([]float32, nFloats)
		for _, a := range ref {
			a.ComputeGradient(g)
			for i := range want {
				want[i] += g[i]
			}
		}
		for _, a := range ints {
			if len(a.applied) != 1 {
				return false
			}
			for i := range want {
				if a.applied[0][i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the iSwitch path matches the direct sum for any worker
// count and custom packet payload size.
func TestISWEquivalenceQuick(t *testing.T) {
	f := func(workers8, nFloats16, perPkt16 uint16) bool {
		nWorkers := int(workers8%5) + 2
		nFloats := int(nFloats16%700) + 1
		perPkt := int(perPkt16%300) + 1

		k := sim.NewKernel()
		cfg := DefaultISWConfig()
		cfg.FloatsPerPacket = perPkt
		c := NewISWStar(k, nWorkers, nFloats, testLink(), cfg)
		agents := make([]rl.Agent, nWorkers)
		ints := make([]*intAgent, nWorkers)
		services := make([]Service, nWorkers)
		for i := range agents {
			ints[i] = newIntAgent(i, nFloats)
			agents[i] = ints[i]
			services[i] = c.Client(i)
		}
		RunSync(k, agents, services, SyncConfig{Iterations: 1,
			LocalCompute: 10 * time.Microsecond, WeightUpdate: time.Microsecond})

		ref := make([]*intAgent, nWorkers)
		for i := range ref {
			ref[i] = newIntAgent(i, nFloats)
		}
		want := make([]float32, nFloats)
		g := make([]float32, nFloats)
		for _, a := range ref {
			a.ComputeGradient(g)
			for i := range want {
				want[i] += g[i]
			}
		}
		for _, a := range ints {
			if len(a.applied) != 1 {
				return false
			}
			for i := range want {
				if a.applied[0][i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: two identical simulations produce identical timing.
func TestSimulationDeterministic(t *testing.T) {
	run := func() (time.Duration, time.Duration) {
		k := sim.NewKernel()
		c := NewISWStar(k, 4, 5000, testLink(), DefaultISWConfig())
		agents := make([]rl.Agent, 4)
		services := make([]Service, 4)
		for i := range agents {
			agents[i] = newIntAgent(i, 5000)
			services[i] = c.Client(i)
		}
		stats := RunSync(k, agents, services, fastTiming(4))
		return stats.Total, stats.MeanAgg()
	}
	t1, a1 := run()
	t2, a2 := run()
	if t1 != t2 || a1 != a2 {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", t1, a1, t2, a2)
	}
}

// The asynchronous PS baseline must discard gradients beyond the bound
// when the server races ahead of slow workers.
func TestAsyncPSDiscardsStale(t *testing.T) {
	const nWorkers, nFloats = 4, 200
	k := sim.NewKernel()
	c := NewAsyncPSCluster(k, nWorkers, nFloats, testLink(), DefaultPSConfig())
	agents := make([]rl.Agent, nWorkers)
	for i := range agents {
		agents[i] = newIntAgent(i, nFloats)
	}
	// S=0: only gradients computed against the very latest weights
	// commit; with 4 racing workers many must be stale.
	cfg := AsyncConfig{Updates: 12, StalenessBound: 0,
		LocalCompute: 300 * time.Microsecond, WeightUpdate: 20 * time.Microsecond}
	stats := RunAsyncPS(k, agents, newIntAgent(99, nFloats), c, cfg)
	if stats.Discarded == 0 {
		t.Fatalf("S=0 with %d racing workers discarded nothing (committed %d)",
			nWorkers, stats.Committed)
	}
	if stats.MeanStaleness() != 0 {
		t.Fatalf("committed staleness %v under S=0", stats.MeanStaleness())
	}
}
