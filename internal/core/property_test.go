package core

import (
	"testing"
	"testing/quick"
	"time"

	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// Property: Ring-AllReduce matches the direct element-wise sum for any
// worker count (2–6) and vector length, including lengths that do not
// divide evenly into ring chunks.
func TestAllReduceEquivalenceQuick(t *testing.T) {
	f := func(workers8, nFloats16 uint16) bool {
		nWorkers := int(workers8%5) + 2   // 2..6
		nFloats := int(nFloats16%700) + 1 // 1..700

		k := sim.NewKernel()
		c := NewARCluster(k, nWorkers, nFloats, testLink(), DefaultARConfig())
		agents := make([]rl.Agent, nWorkers)
		ints := make([]*intAgent, nWorkers)
		services := make([]Service, nWorkers)
		for i := range agents {
			ints[i] = newIntAgent(i, nFloats)
			agents[i] = ints[i]
			services[i] = c.Client(i)
		}
		RunSync(k, agents, services, SyncConfig{Iterations: 1,
			LocalCompute: 10 * time.Microsecond, WeightUpdate: time.Microsecond})

		ref := make([]*intAgent, nWorkers)
		for i := range ref {
			ref[i] = newIntAgent(i, nFloats)
		}
		want := make([]float32, nFloats)
		g := make([]float32, nFloats)
		for _, a := range ref {
			a.ComputeGradient(g)
			for i := range want {
				want[i] += g[i]
			}
		}
		for _, a := range ints {
			if len(a.applied) != 1 {
				return false
			}
			for i := range want {
				if a.applied[0][i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the iSwitch path matches the direct sum for any worker
// count and custom packet payload size.
func TestISWEquivalenceQuick(t *testing.T) {
	f := func(workers8, nFloats16, perPkt16 uint16) bool {
		nWorkers := int(workers8%5) + 2
		nFloats := int(nFloats16%700) + 1
		perPkt := int(perPkt16%300) + 1

		k := sim.NewKernel()
		cfg := DefaultISWConfig()
		cfg.FloatsPerPacket = perPkt
		c := NewISWStar(k, nWorkers, nFloats, testLink(), cfg)
		agents := make([]rl.Agent, nWorkers)
		ints := make([]*intAgent, nWorkers)
		services := make([]Service, nWorkers)
		for i := range agents {
			ints[i] = newIntAgent(i, nFloats)
			agents[i] = ints[i]
			services[i] = c.Client(i)
		}
		RunSync(k, agents, services, SyncConfig{Iterations: 1,
			LocalCompute: 10 * time.Microsecond, WeightUpdate: time.Microsecond})

		ref := make([]*intAgent, nWorkers)
		for i := range ref {
			ref[i] = newIntAgent(i, nFloats)
		}
		want := make([]float32, nFloats)
		g := make([]float32, nFloats)
		for _, a := range ref {
			a.ComputeGradient(g)
			for i := range want {
				want[i] += g[i]
			}
		}
		for _, a := range ints {
			if len(a.applied) != 1 {
				return false
			}
			for i := range want {
				if a.applied[0][i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: two identical simulations produce identical timing.
func TestSimulationDeterministic(t *testing.T) {
	run := func() (time.Duration, time.Duration) {
		k := sim.NewKernel()
		c := NewISWStar(k, 4, 5000, testLink(), DefaultISWConfig())
		agents := make([]rl.Agent, 4)
		services := make([]Service, 4)
		for i := range agents {
			agents[i] = newIntAgent(i, 5000)
			services[i] = c.Client(i)
		}
		stats := RunSync(k, agents, services, fastTiming(4))
		return stats.Total, stats.MeanAgg()
	}
	t1, a1 := run()
	t2, a2 := run()
	if t1 != t2 || a1 != a2 {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", t1, a1, t2, a2)
	}
}

// The asynchronous PS baseline must discard gradients beyond the bound
// when the server races ahead of slow workers.
func TestAsyncPSDiscardsStale(t *testing.T) {
	const nWorkers, nFloats = 4, 200
	k := sim.NewKernel()
	c := NewAsyncPSCluster(k, nWorkers, nFloats, testLink(), DefaultPSConfig())
	agents := make([]rl.Agent, nWorkers)
	for i := range agents {
		agents[i] = newIntAgent(i, nFloats)
	}
	// S=0: only gradients computed against the very latest weights
	// commit; with 4 racing workers many must be stale.
	cfg := AsyncConfig{Updates: 12, StalenessBound: 0,
		LocalCompute: 300 * time.Microsecond, WeightUpdate: 20 * time.Microsecond}
	stats := RunAsyncPS(k, agents, newIntAgent(99, nFloats), c, cfg)
	if stats.Discarded == 0 {
		t.Fatalf("S=0 with %d racing workers discarded nothing (committed %d)",
			nWorkers, stats.Committed)
	}
	if stats.MeanStaleness() != 0 {
		t.Fatalf("committed staleness %v under S=0", stats.MeanStaleness())
	}
}

// Property: a one-shard sharded PS is the single-server PS — bitwise
// identical applied sums AND identical virtual-clock timing — across
// worker counts, model sizes (including non-whole-packet sizes), and
// iteration counts.
func TestShardedPSOneShardSyncEquivalenceQuick(t *testing.T) {
	f := func(workers8, nFloats16, iters8 uint16) bool {
		nWorkers := int(workers8%3) + 2   // 2..4 (PSServerAddr collides with worker subnet beyond)
		nFloats := int(nFloats16%900) + 1 // 1..900, mostly not 366-aligned
		iters := int(iters8%3) + 1        // 1..3

		run := func(sharded bool) ([]*intAgent, *RunStats) {
			k := sim.NewKernel()
			var client func(int) Service
			if sharded {
				client = NewShardedPSCluster(k, nWorkers, nFloats, 1, testLink(), DefaultPSConfig()).Client
			} else {
				client = NewPSCluster(k, nWorkers, nFloats, testLink(), DefaultPSConfig()).Client
			}
			agents := make([]rl.Agent, nWorkers)
			ints := make([]*intAgent, nWorkers)
			services := make([]Service, nWorkers)
			for i := range agents {
				ints[i] = newIntAgent(i, nFloats)
				agents[i] = ints[i]
				services[i] = client(i)
			}
			return ints, RunSync(k, agents, services, fastTiming(iters))
		}
		base, bstats := run(false)
		shrd, sstats := run(true)

		if bstats.Total != sstats.Total || bstats.MeanIter() != sstats.MeanIter() ||
			bstats.MeanAgg() != sstats.MeanAgg() {
			return false
		}
		for w := range base {
			if len(base[w].applied) != len(shrd[w].applied) {
				return false
			}
			for it := range base[w].applied {
				for i := range base[w].applied[it] {
					if base[w].applied[it][i] != shrd[w].applied[it][i] {
						return false
					}
				}
			}
			for i := range base[w].params {
				if base[w].params[i] != shrd[w].params[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the one-shard asynchronous sharded PS reproduces the async
// single-server baseline exactly — same commits, discards, staleness
// accounting, virtual-clock totals, and bitwise-identical master
// weights — across worker counts, model sizes, and staleness bounds.
func TestShardedPSOneShardAsyncEquivalenceQuick(t *testing.T) {
	f := func(workers8, nFloats16, bound8 uint16) bool {
		nWorkers := int(workers8%3) + 2
		nFloats := int(nFloats16%900) + 1
		bound := int64(bound8 % 4) // 0..3
		cfg := AsyncConfig{Updates: 8, StalenessBound: bound,
			LocalCompute: 120 * time.Microsecond, WeightUpdate: 15 * time.Microsecond}

		type out struct {
			stats  *AsyncStats
			master *intAgent
		}
		run := func(sharded bool) out {
			k := sim.NewKernel()
			agents := make([]rl.Agent, nWorkers)
			for i := range agents {
				agents[i] = newIntAgent(i, nFloats)
			}
			master := newIntAgent(99, nFloats)
			var stats *AsyncStats
			if sharded {
				c := NewAsyncShardedPSCluster(k, nWorkers, nFloats, 1, testLink(), DefaultPSConfig())
				stats = RunAsyncShardedPS(k, agents, master, c, cfg)
			} else {
				c := NewAsyncPSCluster(k, nWorkers, nFloats, testLink(), DefaultPSConfig())
				stats = RunAsyncPS(k, agents, master, c, cfg)
			}
			return out{stats, master}
		}
		b, s := run(false), run(true)

		if b.stats.Committed != s.stats.Committed ||
			b.stats.Discarded != s.stats.Discarded ||
			b.stats.StalenessSum != s.stats.StalenessSum ||
			b.stats.Total != s.stats.Total ||
			b.stats.MeanIter() != s.stats.MeanIter() {
			return false
		}
		// The single shard's counters are the global counters.
		if len(s.stats.PerShard) != 1 {
			return false
		}
		ps := s.stats.PerShard[0]
		if ps.Committed != s.stats.Committed || ps.Discarded != s.stats.Discarded ||
			ps.StalenessSum != s.stats.StalenessSum {
			return false
		}
		// Master weights bitwise identical.
		if len(b.master.applied) != len(s.master.applied) {
			return false
		}
		for i := range b.master.params {
			if b.master.params[i] != s.master.params[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
