package core

import (
	"fmt"

	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// SyncConfig parameterizes a synchronous distributed training run.
type SyncConfig struct {
	// Iterations is the number of training iterations to run.
	Iterations int
	// LocalCompute is the virtual time charged per iteration for local
	// gradient computing (perfmodel calibration).
	LocalCompute sim.Time
	// WeightUpdate is the virtual time charged per optimizer step.
	WeightUpdate sim.Time
}

// RunSync trains agents synchronously: every iteration each worker
// computes a local gradient, blocks on the aggregation service, and
// applies the averaged gradient — the global barrier is implicit in
// the aggregation itself (a worker cannot receive the sum before every
// worker contributed). agents[i] pairs with services[i].
func RunSync(k *sim.Kernel, agents []rl.Agent, services []Service, cfg SyncConfig) *RunStats {
	stats := SpawnSync(k, agents, services, cfg, nil)
	k.Run()
	return stats
}

// SpawnSync spawns the synchronous training processes without running
// the kernel, so several jobs can cohabit one simulation (the
// multi-tenant fabric runs every job's workers on one kernel and calls
// k.Run once). The returned stats are complete only after the kernel
// has drained; done, when non-nil, fires in kernel context the moment
// this job's last worker finishes its final iteration.
func SpawnSync(k *sim.Kernel, agents []rl.Agent, services []Service, cfg SyncConfig, done func()) *RunStats {
	if len(agents) != len(services) || len(agents) == 0 {
		panic("core: agents/services mismatch")
	}
	stats := &RunStats{Updates: int64(cfg.Iterations)}
	for range agents {
		stats.Workers = append(stats.Workers, &WorkerStats{})
	}
	start := sim.NewBarrier(k, len(agents))
	remaining := len(agents)

	for i := range agents {
		agent, svc, ws := agents[i], services[i], stats.Workers[i]
		k.Spawn(fmt.Sprintf("sync-worker-%d", i), func(p *sim.Proc) {
			defer func() {
				if remaining--; remaining == 0 && done != nil {
					done()
				}
			}()
			svc.Setup(p)
			start.Wait(p) // all workers begin iteration 0 together
			grad := make([]float32, agent.GradLen())
			for it := 0; it < cfg.Iterations; it++ {
				rec := IterRecord{Start: p.Now()}
				agent.ComputeGradient(grad)
				p.Sleep(cfg.LocalCompute)
				rec.ComputeEnd = p.Now()

				sum := svc.Aggregate(p, grad)
				rec.AggEnd = p.Now()

				p.Sleep(cfg.WeightUpdate)
				agent.ApplyAggregated(sum, svc.H())
				rec.UpdateEnd = p.Now()

				ws.Iters = append(ws.Iters, rec)
				for _, r := range agent.DrainEpisodes() {
					ws.Rewards = append(ws.Rewards, RewardPoint{Time: p.Now(), Reward: r})
				}
				if rec.UpdateEnd > stats.Total {
					stats.Total = rec.UpdateEnd
				}
			}
		})
	}
	return stats
}
