package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// Reliability property tests: every recovery path — loss retransmission,
// crash/rejoin, whole-plane switch failover — must leave the training
// math untouched. Integer-valued gradients are exact in float32
// regardless of summation order, so "untouched" is testable as
// bit-identical applied aggregates against a clean run.

const relIters = 8
const relCrashRound = 4

// relTopoSpecs returns the three fabric shapes under test. Worker
// counts differ (6, 6, 8) because fat-trees derive theirs from KAry.
func relTopoSpecs() []ClusterSpec {
	return []ClusterSpec{
		{Topology: TopoStar, Workers: 6},
		{Topology: TopoTree, Workers: 6, PerRack: 3},
		{Topology: TopoFatTree, KAry: 4, HostsPerEdge: 1},
	}
}

// relSpec fills in the shared fields of a reliability-test spec.
func relSpec(topo ClusterSpec, nFloats int, cfg *ISWConfig, plan *netsim.FaultPlan, horizon sim.Time) ClusterSpec {
	topo.Mode = ModeISW
	topo.ModelFloats = nFloats
	topo.Link = testLink()
	topo.Uplink = netsim.FortyGbE()
	topo.ISW = cfg
	topo.Dedup = true
	topo.LivenessHorizon = horizon
	topo.Faults = plan
	return topo
}

// runReliability trains integer agents over Build(spec) under a
// wall-clock watchdog (a recovery bug shows up as a hang) and returns
// the agents, the cluster, and the virtual makespan.
func runReliability(t *testing.T, spec ClusterSpec, iters int) ([]*intAgent, *ISWCluster, sim.Time) {
	t.Helper()
	k := sim.NewKernel()
	c := Build(k, spec).ISW
	n := len(c.Workers())
	agents := make([]rl.Agent, n)
	ints := make([]*intAgent, n)
	services := make([]Service, n)
	for i := range agents {
		ints[i] = newIntAgent(i, spec.ModelFloats)
		agents[i] = ints[i]
		services[i] = c.Client(i)
	}
	var stats *RunStats
	done := make(chan struct{})
	go func() {
		stats = RunSync(k, agents, services, SyncConfig{Iterations: iters,
			LocalCompute: 200 * time.Microsecond, WeightUpdate: 50 * time.Microsecond})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("simulation hung: recovery failed to terminate")
	}
	return ints, c, stats.Total
}

// requireBitIdentical checks that every worker of the faulted run
// applied exactly the clean run's aggregates and reached the clean
// run's final weights.
func requireBitIdentical(t *testing.T, clean, faulted []*intAgent, iters int) {
	t.Helper()
	for w := range faulted {
		if len(faulted[w].applied) != iters {
			t.Fatalf("worker %d applied %d of %d rounds", w, len(faulted[w].applied), iters)
		}
		for it := range faulted[w].applied {
			for i, got := range faulted[w].applied[it] {
				if want := clean[w].applied[it][i]; got != want {
					t.Fatalf("worker %d iter %d elem %d: faulted %v, clean %v (recovery corrupted the sum)",
						w, it, i, got, want)
				}
			}
		}
		for i, got := range faulted[w].params {
			if want := clean[w].params[i]; got != want {
				t.Fatalf("worker %d final weight %d: faulted %v, clean %v", w, i, got, want)
			}
		}
	}
}

// TestLossRecoveryBitIdentical: under heavy per-link loss, Help-driven
// retransmission with shadow slots and the contributor bitmap must
// reproduce the clean run exactly on every topology.
func TestLossRecoveryBitIdentical(t *testing.T) {
	nFloats := 2*protocolFloats + 9
	for _, topo := range relTopoSpecs() {
		t.Run(topo.Topology.String(), func(t *testing.T) {
			cfg := DefaultISWConfig()
			cfg.RecoveryTimeout = 2 * time.Millisecond
			clean, _, _ := runReliability(t, relSpec(topo, nFloats, &cfg, nil, 0), relIters)

			plan := &netsim.FaultPlan{
				Seed: 42,
				Links: []netsim.LinkFault{
					{Worker: 0, Dir: netsim.DirBoth, Loss: 0.10},
					{Worker: 1, Dir: netsim.DirUp, Loss: 0.05},
					{Worker: 2, Dir: netsim.DirDown, Loss: 0.05},
				},
			}
			faulted, c, _ := runReliability(t, relSpec(topo, nFloats, &cfg, plan, 0), relIters)
			var drops uint64
			for _, h := range c.Workers() {
				drops += h.Port().Dropped + h.Port().Peer().Dropped
			}
			if drops == 0 {
				t.Fatal("loss injection did not fire; test proves nothing")
			}
			requireBitIdentical(t, clean, faulted, relIters)
		})
	}
}

// TestCrashRejoinBitIdentical: a worker that dies mid-upload and
// rejoins re-contributes its round; duplicates are absorbed by the
// bitmap, so the whole run stays bit-identical to a crash-free one.
func TestCrashRejoinBitIdentical(t *testing.T) {
	nFloats := 2*protocolFloats + 9
	for _, topo := range relTopoSpecs() {
		t.Run(topo.Topology.String(), func(t *testing.T) {
			cfg := DefaultISWConfig()
			cfg.RecoveryTimeout = 2 * time.Millisecond
			clean, _, _ := runReliability(t, relSpec(topo, nFloats, &cfg, nil, 0), relIters)

			plan := &netsim.FaultPlan{Crashes: []netsim.CrashFault{
				{Worker: 2, AtRound: relCrashRound, PartialSegs: 2, Rejoin: true, Outage: 5 * time.Millisecond},
			}}
			faulted, c, _ := runReliability(t, relSpec(topo, nFloats, &cfg, plan, 0), relIters)
			if c.Rejoins != 1 {
				t.Fatalf("expected 1 rejoin, got %d", c.Rejoins)
			}
			requireBitIdentical(t, clean, faulted, relIters)
		})
	}
}

// TestSwitchFailoverBitIdentical: when the whole aggregation plane dies
// mid-run, every worker fails over to the software relay path, and the
// relay's worker-index-order summation reproduces the in-switch sums
// exactly (integer gradients make any order exact; the property pinned
// here is that no contribution is lost or double-counted).
func TestSwitchFailoverBitIdentical(t *testing.T) {
	nFloats := 2*protocolFloats + 9
	for _, topo := range relTopoSpecs() {
		t.Run(topo.Topology.String(), func(t *testing.T) {
			cleanCfg := DefaultISWConfig()
			cleanCfg.RecoveryTimeout = 2 * time.Millisecond
			clean, _, cleanTotal := runReliability(t, relSpec(topo, nFloats, &cleanCfg, nil, 0), relIters)

			cfg := cleanCfg
			cfg.FailoverAfter = 3
			plan := &netsim.FaultPlan{Switches: []netsim.SwitchFault{{Switch: -1, At: cleanTotal / 2}}}
			faulted, c, _ := runReliability(t, relSpec(topo, nFloats, &cfg, plan, 0), relIters)
			if int(c.Failovers) != len(clean) {
				t.Fatalf("expected all %d workers to fail over, got %d", len(clean), c.Failovers)
			}
			requireBitIdentical(t, clean, faulted, relIters)
		})
	}
}

// TestPermanentCrashEvictionSurvivors: a permanent crash leaves the
// round incomplete until the liveness horizon evicts the corpse; after
// that every surviving replica must apply identical survivor-only sums
// — exactly the direct-computation reference, before and after the
// crash round.
func TestPermanentCrashEvictionSurvivors(t *testing.T) {
	nFloats := 2*protocolFloats + 9
	const crashed = 2
	for _, topo := range relTopoSpecs() {
		t.Run(topo.Topology.String(), func(t *testing.T) {
			cfg := DefaultISWConfig()
			cfg.RecoveryTimeout = 2 * time.Millisecond
			plan := &netsim.FaultPlan{Crashes: []netsim.CrashFault{
				{Worker: crashed, AtRound: relCrashRound, PartialSegs: 0},
			}}
			faulted, c, _ := runReliability(t, relSpec(topo, nFloats, &cfg, plan, 4*cfg.RecoveryTimeout), relIters)

			var evicted uint64
			for _, is := range c.Switches() {
				evicted += is.Evicted
			}
			if evicted == 0 {
				t.Fatal("no eviction recorded; the dead worker was never removed")
			}
			if got := len(faulted[crashed].applied); got >= relIters {
				t.Fatalf("crashed worker applied %d rounds; wanted fewer than %d", got, relIters)
			}

			// Direct-computation reference: all workers contribute before
			// the crash round, survivors only from it on (the corpse died
			// before transmitting anything).
			n := len(faulted)
			ref := make([]*intAgent, n)
			for i := range ref {
				ref[i] = newIntAgent(i, nFloats)
			}
			g := make([]float32, nFloats)
			for it := 1; it <= relIters; it++ {
				want := make([]float32, nFloats)
				for w, a := range ref {
					if w == crashed && it >= relCrashRound {
						continue
					}
					a.ComputeGradient(g)
					for i := range want {
						want[i] += g[i]
					}
				}
				for w, a := range faulted {
					if w == crashed {
						continue
					}
					if len(a.applied) != relIters {
						t.Fatalf("survivor %d applied %d of %d rounds", w, len(a.applied), relIters)
					}
					for i := range want {
						if a.applied[it-1][i] != want[i] {
							t.Fatalf("round %d survivor %d elem %d: got %v want %v",
								it, w, i, a.applied[it-1][i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestChaosRandomFaultPlans: randomized fault plans — loss up to 5% on
// arbitrary links, up to two crash/rejoin events, an optional
// whole-plane failover — over several seeds and all topologies. Every
// run must terminate in bounded rounds and stay bit-identical to the
// clean run (rejoining crashes and failover preserve exactness; only
// permanent crashes, excluded here, change the sums by design).
func TestChaosRandomFaultPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many simulations")
	}
	nFloats := 2*protocolFloats + 9
	topos := relTopoSpecs()
	for seed := int64(0); seed < 4; seed++ {
		for ti, topo := range topos {
			t.Run(fmt.Sprintf("seed%d-%s", seed, topo.Topology.String()), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*97 + int64(ti)))

				cleanCfg := DefaultISWConfig()
				cleanCfg.RecoveryTimeout = 2 * time.Millisecond
				clean, cleanC, cleanTotal := runReliability(t, relSpec(topo, nFloats, &cleanCfg, nil, 0), relIters)
				nWorkers := len(cleanC.Workers())

				plan := &netsim.FaultPlan{Seed: seed + 1}
				for w := 0; w < nWorkers; w++ {
					if rng.Float64() < 0.5 {
						plan.Links = append(plan.Links, netsim.LinkFault{
							Worker: w,
							Dir:    netsim.LinkDir(rng.Intn(3)),
							Loss:   rng.Float64() * 0.05,
						})
					}
				}
				crashers := rng.Perm(nWorkers)[:rng.Intn(3)] // 0..2 distinct workers
				for _, w := range crashers {
					plan.Crashes = append(plan.Crashes, netsim.CrashFault{
						Worker:      w,
						AtRound:     1 + rng.Intn(relIters),
						PartialSegs: rng.Intn(3),
						Rejoin:      true,
						Outage:      time.Duration(1+rng.Intn(8)) * time.Millisecond,
					})
				}
				cfg := cleanCfg
				if rng.Float64() < 0.5 {
					cfg.FailoverAfter = 3
					at := cleanTotal/4 + sim.Time(rng.Int63n(int64(cleanTotal/2)))
					plan.Switches = []netsim.SwitchFault{{Switch: -1, At: at}}
				}
				if err := plan.Validate(); err != nil {
					t.Fatalf("generated an invalid plan: %v", err)
				}

				faulted, _, total := runReliability(t, relSpec(topo, nFloats, &cfg, plan, 0), relIters)
				requireBitIdentical(t, clean, faulted, relIters)
				// Bounded recovery. The generous factor accommodates the
				// worst composition drawn here — a crash outage spanning the
				// failover instant forces the rejoiner through several
				// exponential-backoff escalation levels — while still
				// catching unbounded retry loops (a true livelock never
				// terminates at all and trips the wall-clock watchdog).
				if total > 500*cleanTotal {
					t.Fatalf("faulted run took %v vs clean %v — recovery livelock", total, cleanTotal)
				}
			})
		}
	}
}
