package core

import (
	"fmt"

	"iswitch/internal/accel"
	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// Sharded parameter server (production PS designs à la MXNet/SwitchML
// baselines): the model vector is partitioned into S contiguous shards,
// each owned by its own server host attached to the star. Workers
// scatter per-shard gradient segments (a data packet's Seg index picks
// its shard by range check), each shard sums and replies with its slice,
// and workers reassemble the full vector from all shards' replies.
//
// Sharding splits the central bottleneck link of the single-host PS
// across S NICs and parallelizes the server-side summation/update work,
// which tightens the baseline the iSwitch speedups are measured
// against: the comparison is no longer "one NIC vs the switch" but
// "S NICs vs the switch".
//
// Shard boundaries align to packet-segment boundaries so that one data
// packet never straddles two shards; with S=1 the cluster is
// behaviourally identical (bit-identical values and virtual-clock
// timing) to PSCluster / RunAsyncPS — the property tests enforce this.

// MaxPSShards bounds the shard count (shard addresses live in one
// /24-style subnet byte).
const MaxPSShards = 128

// PSShardAddr returns shard s's server address. Shards live on the
// 10.0.1.x subnet, clear of worker addresses (10.0.0.x) at any worker
// count.
func PSShardAddr(s int) protocol.Addr {
	if s < 0 || s >= MaxPSShards {
		panic(fmt.Sprintf("core: shard index %d out of range [0,%d)", s, MaxPSShards))
	}
	return protocol.AddrFrom(10, 0, 1, byte(10+s), 9990)
}

// ShardedPSCluster is a star network with S parameter-server shard
// hosts, each owning a contiguous slice of the model vector.
type ShardedPSCluster struct {
	Star    *netsim.Star
	Servers []*netsim.Host // shard s's host is Servers[s]
	workers []*netsim.Host
	n       int
	cfg     PSConfig
	// segLo[s] .. segLo[s+1] is the half-open packet-segment range of
	// shard s; len(segLo) == NumShards()+1.
	segLo []int
}

// NewShardedPSCluster builds nWorkers workers plus nShards shard
// servers on one plain switch and spawns the synchronous shard-server
// processes. The effective shard count is clamped to the model's
// packet-segment count (a shard must own at least one segment).
//
// Deprecated: use Build with ClusterSpec{Topology: TopoStar, Mode: ModeShardedPS}.
func NewShardedPSCluster(k *sim.Kernel, nWorkers, modelFloats, nShards int, link netsim.LinkConfig, cfg PSConfig) *ShardedPSCluster {
	return Build(k, ClusterSpec{Topology: TopoStar, Mode: ModeShardedPS, Workers: nWorkers, ModelFloats: modelFloats, Shards: nShards, Link: link, PS: &cfg}).Sharded
}

// NewAsyncShardedPSCluster builds the same topology without spawning
// the synchronous servers (RunAsyncShardedPS provides its own).
//
// Deprecated: use Build with ClusterSpec{Topology: TopoStar, Mode: ModeAsyncShardedPS}.
func NewAsyncShardedPSCluster(k *sim.Kernel, nWorkers, modelFloats, nShards int, link netsim.LinkConfig, cfg PSConfig) *ShardedPSCluster {
	return Build(k, ClusterSpec{Topology: TopoStar, Mode: ModeAsyncShardedPS, Workers: nWorkers, ModelFloats: modelFloats, Shards: nShards, Link: link, PS: &cfg}).Sharded
}

func newSyncShardedPSCluster(k *sim.Kernel, nWorkers, modelFloats, nShards int, link netsim.LinkConfig, cfg PSConfig) *ShardedPSCluster {
	c := newShardedPSCluster(k, nWorkers, modelFloats, nShards, link, cfg)
	for s := range c.Servers {
		c.startShardServer(k, s)
	}
	return c
}

func newShardedPSCluster(k *sim.Kernel, nWorkers, modelFloats, nShards int, link netsim.LinkConfig, cfg PSConfig) *ShardedPSCluster {
	if nShards < 1 {
		panic("core: sharded PS needs at least one shard")
	}
	totalSegs := protocol.SegmentCount(modelFloats)
	if totalSegs < 1 {
		totalSegs = 1
	}
	if nShards > totalSegs {
		nShards = totalSegs // a shard must own at least one whole segment
	}
	if nShards > MaxPSShards {
		panic(fmt.Sprintf("core: %d shards exceeds MaxPSShards %d", nShards, MaxPSShards))
	}
	star := netsim.BuildStar(k, nWorkers, link)
	c := &ShardedPSCluster{Star: star, workers: star.Hosts[:nWorkers], n: modelFloats, cfg: cfg}
	for s := 0; s < nShards; s++ {
		c.segLo = append(c.segLo, s*totalSegs/nShards)
		c.Servers = append(c.Servers, star.AttachHost(k, PSShardAddr(s), link))
	}
	c.segLo = append(c.segLo, totalSegs)
	return c
}

// NumShards returns the effective shard count.
func (c *ShardedPSCluster) NumShards() int { return len(c.Servers) }

// ShardElems returns the element range [lo, hi) owned by shard s.
func (c *ShardedPSCluster) ShardElems(s int) (lo, hi int) {
	lo, _ = protocol.SegmentRange(c.n, uint64(c.segLo[s]))
	if c.segLo[s+1] > 0 {
		_, hi = protocol.SegmentRange(c.n, uint64(c.segLo[s+1]-1))
	}
	return lo, hi
}

// ShardOf returns the shard owning packet-segment seg (an index-range
// check over the contiguous partition).
func (c *ShardedPSCluster) ShardOf(seg uint64) int {
	for s := 1; s < len(c.segLo)-1; s++ {
		if int(seg) < c.segLo[s] {
			return s - 1
		}
	}
	return len(c.Servers) - 1
}

// Workers exposes the worker hosts.
func (c *ShardedPSCluster) Workers() []*netsim.Host { return c.workers }

// scatter sends grad from h as data packets, each segment routed to its
// owning shard server with its global Seg index. Packets alias grad.
func (c *ShardedPSCluster) scatter(h *netsim.Host, grad []float32) {
	for s, srv := range c.Servers {
		lo, hi := c.ShardElems(s)
		for _, pkt := range protocol.Segment(h.Addr, srv.Addr, grad[lo:hi]) {
			pkt.Seg += uint64(c.segLo[s])
			h.Send(pkt)
		}
	}
}

// startShardServer spawns shard s's synchronous aggregation process —
// the per-shard mirror of PSCluster.startServer: gather every worker's
// shard slice, sum, reply to each worker of the round.
func (c *ShardedPSCluster) startShardServer(k *sim.Kernel, s int) {
	srv := c.Servers[s]
	lo, hi := c.ShardElems(s)
	nShard := hi - lo
	segBase := uint64(c.segLo[s])
	k.Spawn(fmt.Sprintf("ps-shard-%d", s), func(p *sim.Proc) {
		asm := make(map[protocol.Addr]*protocol.Assembler)
		for {
			var round []protocol.Addr
			sum := make([]float32, nShard)
			for len(round) < len(c.workers) {
				pkt := srv.Recv(p)
				if !pkt.IsData() {
					continue
				}
				a := asm[pkt.Src]
				if a == nil {
					a = protocol.NewAssembler(nShard)
					asm[pkt.Src] = a
				}
				// Remap the global segment index into shard-local space
				// (misrouted segments wrap out of range and are dropped).
				local := *pkt
				local.Seg = pkt.Seg - segBase
				if err := a.Add(&local); err != nil {
					continue
				}
				if a.Complete() {
					p.Sleep(c.cfg.msgCost(nShard)) // framework receive cost
					for i, v := range a.Vector() {
						sum[i] += v
					}
					a.Reset()
					round = append(round, pkt.Src)
				}
			}
			p.Sleep(accel.SumLatency(nShard, len(round), c.cfg.SumRate))
			for _, dst := range round {
				p.Sleep(c.cfg.msgCost(nShard))
				for _, out := range protocol.Segment(srv.Addr, dst, sum) {
					out.Seg += segBase
					srv.Send(out)
				}
			}
		}
	})
}

// Client returns worker i's aggregation handle.
func (c *ShardedPSCluster) Client(i int) Service {
	return &shardedPSClient{cluster: c, host: c.workers[i]}
}

type shardedPSClient struct {
	cluster *ShardedPSCluster
	host    *netsim.Host
	asm     *protocol.Assembler
}

// Setup implements Service (no handshake).
func (sc *shardedPSClient) Setup(*sim.Proc) {}

// H implements Service.
func (sc *shardedPSClient) H() int { return len(sc.cluster.workers) }

// Aggregate implements Service: scatter per-shard segments, then gather
// every shard's reply into one full-model assembler. The returned slice
// is the client's reusable buffer, valid until the next Aggregate call.
func (sc *shardedPSClient) Aggregate(p *sim.Proc, grad []float32) []float32 {
	p.Sleep(sc.cluster.cfg.WorkerBase)
	sc.cluster.scatter(sc.host, grad)
	if sc.asm == nil {
		sc.asm = protocol.NewAssembler(sc.cluster.n)
	} else {
		sc.asm.Reset()
	}
	for !sc.asm.Complete() {
		pkt := sc.host.Recv(p)
		if pkt.IsData() {
			if err := sc.asm.Add(pkt); err != nil {
				continue
			}
		}
	}
	return sc.asm.Vector()
}

// RunAsyncShardedPS trains agents against S asynchronous shard servers.
// Each shard holds its slice of the authoritative weights with its own
// update counter; Algorithm 1's staleness bound is enforced per shard
// (a gradient slice computed against weights more than S updates behind
// that shard's counter is discarded). The run ends when every shard has
// applied cfg.Updates updates; AsyncStats.PerShard reports each shard's
// commit/discard/staleness accounting.
//
// masterAgent supplies the authoritative weights and optimizer exactly
// as in RunAsyncPS. With more than one shard, each accepted update is
// applied through a full-length gradient that is zero outside the
// shard's slice — identical to a per-slice update for SGD-style
// optimizers (the timing layer's concern); with one shard the call is
// bit-identical to RunAsyncPS's.
func RunAsyncShardedPS(k *sim.Kernel, agents []rl.Agent, masterAgent rl.Agent, cluster *ShardedPSCluster, cfg AsyncConfig) *AsyncStats {
	nWorkers := len(agents)
	nShards := cluster.NumShards()
	stats := &AsyncStats{PerShard: make([]ShardStats, nShards)}
	for i := 0; i < nWorkers+nShards; i++ { // shard s's records at nWorkers+s
		stats.Workers = append(stats.Workers, &WorkerStats{})
	}
	stop := false
	remaining := nShards

	for s := 0; s < nShards; s++ {
		srv := cluster.Servers[s]
		lo, hi := cluster.ShardElems(s)
		nShard := hi - lo
		segBase := uint64(cluster.segLo[s])
		shardStats := stats.Workers[nWorkers+s]
		perShard := &stats.PerShard[s]
		shardUpdate := scaleByShare(cfg.WeightUpdate+cluster.cfg.AsyncUpdateExtra, nShard, cluster.n)

		// Per-shard state shared by the pull and push/update threads.
		pulls := sim.NewChan[protocol.Addr](k, fmt.Sprintf("sps-pulls-%d", s))
		var version int64
		lastSent := make(map[protocol.Addr]int64)

		// Pull thread: serve weight reads without blocking the update
		// path (mirrors RunAsyncPS; the reply cost scales with the slice
		// staged, floored at the irreducible per-message launch cost).
		k.Spawn(fmt.Sprintf("async-sps-pull-%d", s), func(p *sim.Proc) {
			params := make([]float32, masterAgent.GradLen())
			for {
				src := pulls.Recv(p)
				p.Sleep(cluster.cfg.shardMsgCost(nShard, cluster.n))
				masterAgent.ReadParams(params)
				lastSent[src] = version
				for _, out := range protocol.Segment(srv.Addr, src, params[lo:hi]) {
					out.Seg += segBase
					srv.Send(out)
				}
			}
		})

		// Push/update thread: the per-shard mirror of RunAsyncPS's server.
		k.Spawn(fmt.Sprintf("async-sps-server-%d", s), func(p *sim.Proc) {
			asm := make(map[protocol.Addr]*protocol.Assembler)
			var applyBuf []float32 // zero outside [lo,hi); lazily built for S>1
			prev := p.Now()
			for version < cfg.Updates {
				pkt := srv.Recv(p)
				switch {
				case pkt.IsControl() && pkt.Action == protocol.ActionHelp:
					pulls.Send(pkt.Src)
				case pkt.IsData():
					a := asm[pkt.Src]
					if a == nil {
						a = protocol.NewAssembler(nShard)
						asm[pkt.Src] = a
					}
					local := *pkt
					local.Seg = pkt.Seg - segBase
					if err := a.Add(&local); err != nil {
						continue
					}
					if !a.Complete() {
						continue
					}
					p.Sleep(cluster.cfg.shardMsgCost(nShard, cluster.n))
					staleness := version - lastSent[pkt.Src]
					if staleness <= cfg.StalenessBound {
						stats.Committed++
						stats.StalenessSum += staleness
						perShard.Committed++
						perShard.StalenessSum += staleness
						if staleness > perShard.MaxStaleness {
							perShard.MaxStaleness = staleness
						}
						p.Sleep(shardUpdate)
						if nShards == 1 {
							masterAgent.ApplyAggregated(a.Vector(), 1)
						} else {
							if applyBuf == nil {
								applyBuf = make([]float32, cluster.n)
							}
							copy(applyBuf[lo:hi], a.Vector())
							masterAgent.ApplyAggregated(applyBuf, 1)
						}
						version++
						now := p.Now()
						shardStats.Iters = append(shardStats.Iters, IterRecord{
							Start: prev, ComputeEnd: prev, AggEnd: now, UpdateEnd: now,
						})
						prev = now
						if now > stats.Total {
							stats.Total = now
						}
					} else {
						stats.Discarded++
						perShard.Discarded++
					}
					a.Reset()
				}
			}
			remaining--
			if remaining == 0 {
				stop = true
			}
		})
	}

	for i := range agents {
		agent, ws, host := agents[i], stats.Workers[i], cluster.workers[i]
		worker := i
		k.Spawn(fmt.Sprintf("async-sps-worker-%d", i), func(p *sim.Proc) {
			weights := protocol.NewAssembler(cluster.n)
			grad := make([]float32, agent.GradLen())
			for iter := 0; !stop; iter++ {
				// Pull the latest weights from every shard (scatter the
				// requests; replies arrive concurrently on S server NICs).
				p.Sleep(cluster.cfg.WorkerBase)
				for _, srv := range cluster.Servers {
					host.Send(pullRequest(host.Addr, srv.Addr))
				}
				weights.Reset()
				for !weights.Complete() {
					pkt, ok := host.RecvTimeout(p, 200*cfg.LocalCompute+sim.Time(1e9))
					if !ok {
						return // servers stopped mid-reply
					}
					if pkt.IsData() {
						if err := weights.Add(pkt); err != nil {
							continue
						}
					}
				}
				agent.WriteParams(weights.Vector())
				// Local gradient computing.
				agent.ComputeGradient(grad)
				p.Sleep(cfg.LocalCompute + cfg.jitterFor(worker, iter))
				for _, r := range agent.DrainEpisodes() {
					ws.Rewards = append(ws.Rewards, RewardPoint{Time: p.Now(), Reward: r})
				}
				// Push: scatter per-shard gradient segments.
				cluster.scatter(host, grad)
			}
		})
	}
	k.Run()
	stats.Updates = cfg.Updates
	return stats
}

// scaleByShare scales a full-model cost by a shard's element share
// (exact at share 1, so the one-shard cluster charges the baseline's
// cost bit-identically).
func scaleByShare(d sim.Time, shardFloats, modelFloats int) sim.Time {
	if shardFloats >= modelFloats {
		return d
	}
	return sim.Time(float64(d) * float64(shardFloats) / float64(modelFloats))
}

// shardMsgCost is the server-side software cost of one async framework
// message (a pull reply or a push receive) for a shard of shardFloats
// elements: the per-message cost scaled by the slice share (both paths
// are dominated by staging the slice), floored at MessageFloor (the
// size-independent launch cost). At one shard this is exactly
// PerMessage — the async baseline's message cost.
func (c PSConfig) shardMsgCost(shardFloats, modelFloats int) sim.Time {
	cost := scaleByShare(c.PerMessage, shardFloats, modelFloats)
	if cost < c.MessageFloor {
		cost = c.MessageFloor
	}
	return cost
}
