package core

import (
	"testing"
	"time"

	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

const protocolFloats = protocol.FloatsPerPacket

// Synchronous training must survive packet loss: workers detect stalled
// broadcasts, send Help, and everyone retransmits; the switch's dedup
// bitmap keeps the sums exact.
func TestSyncSurvivesPacketLoss(t *testing.T) {
	const nWorkers, nFloats, iters = 4, protocolFloats*3 + 11, 6
	k := sim.NewKernel()
	cfg := DefaultISWConfig()
	cfg.RecoveryTimeout = 2 * time.Millisecond
	c := NewISWStar(k, nWorkers, nFloats, testLink(), cfg)
	c.StarSwitch.SetDedup(true)
	// Worker 0's uplink loses 20% of packets; worker 1's downlink 10%.
	c.Workers()[0].Port().SetLoss(0.20, 7)
	c.StarSwitch.Switch().Ports()[1].SetLoss(0.10, 9)

	agents := make([]rl.Agent, nWorkers)
	ints := make([]*intAgent, nWorkers)
	services := make([]Service, nWorkers)
	for i := range agents {
		ints[i] = newIntAgent(i, nFloats)
		agents[i] = ints[i]
		services[i] = c.Client(i)
	}
	stats := RunSync(k, agents, services, SyncConfig{Iterations: iters,
		LocalCompute: 200 * time.Microsecond, WeightUpdate: 50 * time.Microsecond})

	// Reference sums from loss-free direct computation.
	ref := make([]*intAgent, nWorkers)
	for i := range ref {
		ref[i] = newIntAgent(i, nFloats)
	}
	g := make([]float32, nFloats)
	for it := 0; it < iters; it++ {
		want := make([]float32, nFloats)
		for _, a := range ref {
			a.ComputeGradient(g)
			for i := range want {
				want[i] += g[i]
			}
		}
		for w, a := range ints {
			if len(a.applied) != iters {
				t.Fatalf("worker %d applied %d of %d updates", w, len(a.applied), iters)
			}
			for i := range want {
				if a.applied[it][i] != want[i] {
					t.Fatalf("iter %d worker %d elem %d: got %v want %v (loss corrupted the sum)",
						it, w, i, a.applied[it][i], want[i])
				}
			}
		}
	}
	dropped := c.Workers()[0].Port().Dropped + c.StarSwitch.Switch().Ports()[1].Dropped
	if dropped == 0 {
		t.Fatal("loss injection did not fire; test proves nothing")
	}
	if c.StarSwitch.Accelerator().Stats().DupDropped == 0 {
		t.Log("note: no duplicate retransmissions were needed this run")
	}
	t.Logf("survived %d dropped packets (%d duplicate retransmits absorbed, %d help relays) in %v",
		dropped, c.StarSwitch.Accelerator().Stats().DupDropped, c.StarSwitch.HelpRelayed, stats.Total)
}

// With recovery disabled and loss present, training must stall rather
// than silently mis-aggregate — the simulation ends with workers parked.
func TestSyncWithoutRecoveryStallsOnLoss(t *testing.T) {
	const nWorkers, nFloats = 2, 100
	k := sim.NewKernel()
	c := NewISWStar(k, nWorkers, nFloats, testLink(), DefaultISWConfig())
	c.Workers()[0].Port().SetLoss(1.0, 3) // lose everything from worker 0

	agents := make([]rl.Agent, nWorkers)
	ints := make([]*intAgent, nWorkers)
	services := make([]Service, nWorkers)
	for i := range agents {
		ints[i] = newIntAgent(i, nFloats)
		agents[i] = ints[i]
		services[i] = c.Client(i)
	}
	done := make(chan struct{})
	go func() {
		RunSync(k, agents, services, SyncConfig{Iterations: 2,
			LocalCompute: 100 * time.Microsecond, WeightUpdate: 10 * time.Microsecond})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("simulation did not terminate")
	}
	for w, a := range ints {
		if len(a.applied) != 0 {
			t.Fatalf("worker %d applied %d updates despite total loss", w, len(a.applied))
		}
	}
}

// Regression: a worker that loses the broadcast of the FINAL iteration
// has no active peers left to answer its Help — the switch's emission
// cache must re-serve the aggregate, or the worker (and the simulation)
// hangs forever.
func TestRecoverySurvivesFinalRoundDownlinkLoss(t *testing.T) {
	const nWorkers, nFloats, iters = 4, 2*protocolFloats + 9, 12
	k := sim.NewKernel()
	cfg := DefaultISWConfig()
	cfg.RecoveryTimeout = 3 * time.Millisecond
	c := NewISWStar(k, nWorkers, nFloats, testLink(), cfg)
	c.StarSwitch.SetDedup(true)
	// Heavy downlink loss toward worker 0 makes a lost final-round
	// broadcast overwhelmingly likely across 12 iterations.
	c.StarSwitch.Switch().Ports()[0].SetLoss(0.30, 5)

	agents := make([]rl.Agent, nWorkers)
	ints := make([]*intAgent, nWorkers)
	services := make([]Service, nWorkers)
	for i := range agents {
		ints[i] = newIntAgent(i, nFloats)
		agents[i] = ints[i]
		services[i] = c.Client(i)
	}
	done := make(chan struct{})
	go func() {
		RunSync(k, agents, services, SyncConfig{Iterations: iters,
			LocalCompute: 500 * time.Microsecond, WeightUpdate: 50 * time.Microsecond})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("simulation hung: final-round loss not recoverable")
	}
	for w, a := range ints {
		if len(a.applied) != iters {
			t.Fatalf("worker %d completed %d of %d iterations", w, len(a.applied), iters)
		}
	}
	if c.StarSwitch.Switch().Ports()[0].Dropped == 0 {
		t.Fatal("loss injection did not fire")
	}
	t.Logf("dropped %d, help served from cache %d, relayed %d",
		c.StarSwitch.Switch().Ports()[0].Dropped, c.StarSwitch.HelpServed, c.StarSwitch.HelpRelayed)
}
