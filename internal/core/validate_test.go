package core

import (
	"strings"
	"testing"

	"iswitch/internal/protocol"
)

// ClusterSpec.Validate must accept every supported compression×mode
// pairing and reject the rest with an error that names the scheme and
// explains the architectural reason.
func TestValidateCompressionMatrix(t *testing.T) {
	allModes := []Mode{ModeISW, ModePS, ModeAsyncPS, ModeShardedPS, ModeAsyncShardedPS, ModeAllReduce}

	okFor := map[protocol.Compression]map[Mode]bool{
		protocol.CompNone: {ModeISW: true, ModePS: true, ModeAsyncPS: true,
			ModeShardedPS: true, ModeAsyncShardedPS: true, ModeAllReduce: true},
		protocol.CompFP16:       {ModeISW: true, ModePS: true, ModeAsyncPS: true},
		protocol.CompInt32Block: {ModeISW: true},
		protocol.CompTopK:       {ModeISW: true},
	}
	// The rejection message must carry the scheme name and a reason.
	reason := map[protocol.Compression]string{
		protocol.CompFP16:       "single aggregation point",
		protocol.CompInt32Block: "saturating adders",
		protocol.CompTopK:       "sparse scatter-add",
	}

	for _, scheme := range protocol.Compressions() {
		for _, mode := range allModes {
			t.Run(scheme.String()+"-"+mode.String(), func(t *testing.T) {
				spec := ClusterSpec{Topology: TopoStar, Mode: mode, Workers: 4,
					ModelFloats: 100, Compression: scheme}
				err := spec.Validate()
				if okFor[scheme][mode] {
					if err != nil {
						t.Fatalf("supported pairing rejected: %v", err)
					}
					return
				}
				if err == nil {
					t.Fatalf("unsupported pairing %v × %v accepted", scheme, mode)
				}
				if !strings.Contains(err.Error(), scheme.String()) {
					t.Fatalf("error does not name the scheme %q: %v", scheme, err)
				}
				if !strings.Contains(err.Error(), reason[scheme]) {
					t.Fatalf("error does not explain the restriction (%q): %v", reason[scheme], err)
				}
			})
		}
	}
}

// Unknown scheme bytes and top-k over a non-default segment grid are
// rejected with descriptive errors.
func TestValidateCompressionEdgeCases(t *testing.T) {
	t.Run("unknown-scheme", func(t *testing.T) {
		spec := ClusterSpec{Topology: TopoStar, Mode: ModeISW, Workers: 4,
			ModelFloats: 100, Compression: protocol.Compression(99)}
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), "unknown compression scheme") {
			t.Fatalf("want unknown-scheme error, got %v", err)
		}
	})
	t.Run("topk-nondefault-segment", func(t *testing.T) {
		cfg := DefaultISWConfig()
		cfg.FloatsPerPacket = 64
		spec := ClusterSpec{Topology: TopoStar, Mode: ModeISW, Workers: 4,
			ModelFloats: 100, Compression: protocol.CompTopK, ISW: &cfg}
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), "per-packet payload") {
			t.Fatalf("want per-packet payload error, got %v", err)
		}
	})
	t.Run("isw-config-scheme", func(t *testing.T) {
		// The scheme may come from the ISW config instead of the spec
		// field; the support matrix still applies.
		cfg := DefaultISWConfig()
		cfg.Compression = protocol.CompInt32Block
		spec := ClusterSpec{Topology: TopoStar, Mode: ModeISW, Workers: 4,
			ModelFloats: 100, ISW: &cfg}
		if err := spec.Validate(); err != nil {
			t.Fatalf("config-carried scheme rejected: %v", err)
		}
	})
}
