// Package core implements the paper's contribution: distributed RL
// training with gradient aggregation performed by a centralized
// parameter server (PS), decentralized Ring-AllReduce (AR), or the
// in-switch accelerator (iSwitch) — in both synchronous (global
// barrier) and asynchronous (three-stage pipeline with a staleness
// bound, Algorithm 1) forms.
//
// Everything runs inside the deterministic discrete-event simulation:
// workers are sim processes attached to netsim hosts, gradients travel
// as real iSwitch-protocol packets over simulated 10GbE, and the
// switches either just forward (PS, AR) or aggregate in the data plane
// (iSwitch). Per-iteration times are read off the virtual clock.
package core

import (
	"time"

	"iswitch/internal/sim"
)

// Service is one worker's handle to a gradient-aggregation strategy.
type Service interface {
	// Setup performs any per-worker handshake (e.g. the iSwitch Join)
	// before training starts.
	Setup(p *sim.Proc)
	// Aggregate contributes grad and blocks in virtual time until the
	// element-wise sum of H contributions is available. The returned
	// slice remains valid until this worker's next Aggregate call;
	// callers that retain it across rounds must copy.
	Aggregate(p *sim.Proc, grad []float32) []float32
	// H is the number of gradient vectors per aggregate (the paper's
	// aggregation threshold; by default the worker count).
	H() int
}

// RewardPoint is one completed episode: when it finished (virtual time)
// and its total reward.
type RewardPoint struct {
	Time   time.Duration
	Reward float64
}

// IterRecord captures one training iteration's phase boundaries on the
// virtual clock.
type IterRecord struct {
	Start      time.Duration
	ComputeEnd time.Duration
	AggEnd     time.Duration
	UpdateEnd  time.Duration
}

// Compute returns the local-gradient-computing phase duration.
func (r IterRecord) Compute() time.Duration { return r.ComputeEnd - r.Start }

// Agg returns the gradient-aggregation phase duration.
func (r IterRecord) Agg() time.Duration { return r.AggEnd - r.ComputeEnd }

// Update returns the weight-update phase duration.
func (r IterRecord) Update() time.Duration { return r.UpdateEnd - r.AggEnd }

// Total returns the full iteration duration.
func (r IterRecord) Total() time.Duration { return r.UpdateEnd - r.Start }

// WorkerStats is one worker's record of a run.
type WorkerStats struct {
	Iters   []IterRecord
	Rewards []RewardPoint
}

// MeanIter returns the mean per-iteration time.
func (w *WorkerStats) MeanIter() time.Duration { return meanOf(w.Iters, IterRecord.Total) }

// MeanAgg returns the mean aggregation time per iteration.
func (w *WorkerStats) MeanAgg() time.Duration { return meanOf(w.Iters, IterRecord.Agg) }

// MeanCompute returns the mean local-compute time per iteration.
func (w *WorkerStats) MeanCompute() time.Duration { return meanOf(w.Iters, IterRecord.Compute) }

// MeanUpdate returns the mean weight-update time per iteration.
func (w *WorkerStats) MeanUpdate() time.Duration { return meanOf(w.Iters, IterRecord.Update) }

func meanOf(iters []IterRecord, f func(IterRecord) time.Duration) time.Duration {
	if len(iters) == 0 {
		return 0
	}
	var sum time.Duration
	for _, it := range iters {
		sum += f(it)
	}
	return sum / time.Duration(len(iters))
}

// RunStats aggregates a whole run.
type RunStats struct {
	Workers []*WorkerStats
	// Total is the virtual time the run took (slowest worker).
	Total time.Duration
	// Updates is the number of weight updates performed (asynchronous
	// runs; equals Iterations for synchronous runs).
	Updates int64
}

// MeanIter averages per-iteration time across workers.
func (s *RunStats) MeanIter() time.Duration {
	var sum time.Duration
	n := 0
	for _, w := range s.Workers {
		if len(w.Iters) > 0 {
			sum += w.MeanIter()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// MeanAgg averages aggregation time across workers.
func (s *RunStats) MeanAgg() time.Duration {
	var sum time.Duration
	n := 0
	for _, w := range s.Workers {
		if len(w.Iters) > 0 {
			sum += w.MeanAgg()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// AllRewards merges every worker's reward points, ordered by time.
func (s *RunStats) AllRewards() []RewardPoint {
	var all []RewardPoint
	for _, w := range s.Workers {
		all = append(all, w.Rewards...)
	}
	// Insertion sort by time: reward streams are nearly sorted already.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].Time < all[j-1].Time; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	return all
}

// SyntheticAgent is an rl.Agent stand-in for timing-only simulations:
// it carries a gradient of the paper's exact model size (e.g. DQN's
// 6.41 MB) without doing neural-network math, so the DES measures pure
// communication/aggregation behaviour at full scale.
type SyntheticAgent struct {
	n      int
	filled bool
}

// NewSyntheticAgent creates a timing agent with an n-float gradient.
func NewSyntheticAgent(n int) *SyntheticAgent { return &SyntheticAgent{n: n} }

// Name implements rl.Agent.
func (s *SyntheticAgent) Name() string { return "synthetic" }

// GradLen implements rl.Agent.
func (s *SyntheticAgent) GradLen() int { return s.n }

// ComputeGradient implements rl.Agent: a constant payload (filled once;
// the trainer reuses the buffer).
func (s *SyntheticAgent) ComputeGradient(dst []float32) {
	if s.filled {
		return
	}
	for i := range dst {
		dst[i] = 1e-3
	}
	s.filled = true
}

// ApplyAggregated implements rl.Agent (no-op).
func (s *SyntheticAgent) ApplyAggregated([]float32, int) {}

// ReadParams implements rl.Agent (no-op).
func (s *SyntheticAgent) ReadParams([]float32) {}

// WriteParams implements rl.Agent (no-op).
func (s *SyntheticAgent) WriteParams([]float32) {}

// DrainEpisodes implements rl.Agent.
func (s *SyntheticAgent) DrainEpisodes() []float64 { return nil }
