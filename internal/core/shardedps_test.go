package core

import (
	"testing"
	"time"

	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// The shard partition must cover the vector exactly: contiguous,
// gap-free, segment-aligned, every shard non-empty.
func TestShardPartitionCoversVector(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{1, 1}, {100, 2}, {366, 4}, {367, 2}, {1000, 3}, {5000, 8},
		{366 * 7, 7}, {366*7 + 1, 7}, {50, 9} /* clamps to 1 segment */, {1_602_500, 16},
	} {
		k := sim.NewKernel()
		c := NewAsyncShardedPSCluster(k, 2, tc.n, tc.shards, testLink(), DefaultPSConfig())
		prevHi := 0
		for s := 0; s < c.NumShards(); s++ {
			lo, hi := c.ShardElems(s)
			if lo != prevHi {
				t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", tc.n, tc.shards, s, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("n=%d shards=%d: shard %d empty [%d,%d)", tc.n, tc.shards, s, lo, hi)
			}
			if lo%protocol.FloatsPerPacket != 0 {
				t.Fatalf("n=%d shards=%d: shard %d not segment-aligned (lo=%d)", tc.n, tc.shards, s, lo)
			}
			prevHi = hi
		}
		if prevHi != tc.n {
			t.Fatalf("n=%d shards=%d: covered %d", tc.n, tc.shards, prevHi)
		}
		// Segment ownership is the contiguous index-range check.
		for seg := 0; seg < protocol.SegmentCount(tc.n); seg++ {
			s := c.ShardOf(uint64(seg))
			lo, hi := c.ShardElems(s)
			elo, ehi := protocol.SegmentRange(tc.n, uint64(seg))
			if elo < lo || ehi > hi {
				t.Fatalf("n=%d shards=%d: seg %d ([%d,%d)) assigned to shard %d ([%d,%d))",
					tc.n, tc.shards, seg, elo, ehi, s, lo, hi)
			}
		}
	}
}

// Synchronous sharded aggregation must equal the direct element-wise
// sum at any shard count, including models whose length does not divide
// into whole packets.
func TestShardedPSMatchesDirectSum(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5} {
		const nWorkers, nFloats, iters = 3, 1500, 2
		k := sim.NewKernel()
		c := NewShardedPSCluster(k, nWorkers, nFloats, shards, testLink(), DefaultPSConfig())
		agents := make([]rl.Agent, nWorkers)
		ints := make([]*intAgent, nWorkers)
		services := make([]Service, nWorkers)
		for i := range agents {
			ints[i] = newIntAgent(i, nFloats)
			agents[i] = ints[i]
			services[i] = c.Client(i)
		}
		RunSync(k, agents, services, fastTiming(iters))

		ref := make([]*intAgent, nWorkers)
		for i := range ref {
			ref[i] = newIntAgent(i, nFloats)
		}
		g := make([]float32, nFloats)
		for it := 0; it < iters; it++ {
			want := make([]float32, nFloats)
			for _, a := range ref {
				a.ComputeGradient(g)
				for i := range want {
					want[i] += g[i]
				}
			}
			for w, a := range ints {
				if len(a.applied) != iters {
					t.Fatalf("shards=%d worker %d applied %d", shards, w, len(a.applied))
				}
				for i := range want {
					if a.applied[it][i] != want[i] {
						t.Fatalf("shards=%d iter %d worker %d elem %d: got %v want %v",
							shards, it, w, i, a.applied[it][i], want[i])
					}
				}
			}
		}
	}
}

// Sharding must shorten the synchronous aggregation phase: the central
// link splits across S server NICs and the summation parallelizes.
func TestShardedPSSyncAggDecreases(t *testing.T) {
	const nWorkers, nFloats = 4, 400_000
	agg := func(shards int) time.Duration {
		k := sim.NewKernel()
		c := NewShardedPSCluster(k, nWorkers, nFloats, shards, testLink(), DefaultPSConfig())
		agents := make([]rl.Agent, nWorkers)
		services := make([]Service, nWorkers)
		for i := range agents {
			agents[i] = NewSyntheticAgent(nFloats)
			services[i] = c.Client(i)
		}
		return RunSync(k, agents, services, fastTiming(2)).MeanAgg()
	}
	prev := agg(1)
	for _, s := range []int{2, 4, 8} {
		cur := agg(s)
		if cur >= prev {
			t.Fatalf("sync agg not decreasing: S=%d %v vs previous %v", s, cur, prev)
		}
		prev = cur
	}
}

// The async sharded PS applies exactly Updates updates per shard and
// accounts commits/discards per shard, with the global counters being
// the per-shard sums.
func TestAsyncShardedPSAppliesPerShardUpdates(t *testing.T) {
	const nWorkers, nFloats, shards = 3, 1200, 3
	k := sim.NewKernel()
	c := NewAsyncShardedPSCluster(k, nWorkers, nFloats, shards, testLink(), DefaultPSConfig())
	agents := make([]rl.Agent, nWorkers)
	for i := range agents {
		agents[i] = newIntAgent(i, nFloats)
	}
	master := newIntAgent(99, nFloats)
	cfg := AsyncConfig{Updates: 10, StalenessBound: 3,
		LocalCompute: 50 * time.Microsecond, WeightUpdate: 10 * time.Microsecond}
	stats := RunAsyncShardedPS(k, agents, master, c, cfg)

	if len(stats.PerShard) != shards {
		t.Fatalf("PerShard has %d entries, want %d", len(stats.PerShard), shards)
	}
	var commit, discard, stale int64
	for s, ps := range stats.PerShard {
		if ps.Committed != cfg.Updates {
			t.Fatalf("shard %d committed %d, want %d", s, ps.Committed, cfg.Updates)
		}
		if ps.MaxStaleness > cfg.StalenessBound {
			t.Fatalf("shard %d max staleness %d exceeds bound %d", s, ps.MaxStaleness, cfg.StalenessBound)
		}
		server := stats.Workers[nWorkers+s]
		if int64(len(server.Iters)) != cfg.Updates {
			t.Fatalf("shard %d iter records %d", s, len(server.Iters))
		}
		commit += ps.Committed
		discard += ps.Discarded
		stale += ps.StalenessSum
	}
	if commit != stats.Committed || discard != stats.Discarded || stale != stats.StalenessSum {
		t.Fatalf("per-shard sums %d/%d/%d != global %d/%d/%d",
			commit, discard, stale, stats.Committed, stats.Discarded, stats.StalenessSum)
	}
	// S shard updates each touching 1/S of the model == Updates
	// full-model-equivalent updates.
	if int64(len(master.applied)) != int64(shards)*cfg.Updates {
		t.Fatalf("master applied %d slices, want %d", len(master.applied), int64(shards)*cfg.Updates)
	}
	if stats.MeanStaleness() > float64(cfg.StalenessBound) {
		t.Fatalf("mean staleness %v exceeds bound", stats.MeanStaleness())
	}
}

// An accepted shard update must touch only that shard's slice of the
// master weights (the apply path zero-pads outside the shard).
func TestAsyncShardedPSUpdatesAreSliceLocal(t *testing.T) {
	const nWorkers, nFloats, shards = 2, 1100, 3
	k := sim.NewKernel()
	c := NewAsyncShardedPSCluster(k, nWorkers, nFloats, shards, testLink(), DefaultPSConfig())
	agents := make([]rl.Agent, nWorkers)
	for i := range agents {
		agents[i] = newIntAgent(i, nFloats)
	}
	master := newIntAgent(99, nFloats)
	cfg := AsyncConfig{Updates: 4, StalenessBound: 2,
		LocalCompute: 50 * time.Microsecond, WeightUpdate: 10 * time.Microsecond}
	RunAsyncShardedPS(k, agents, master, c, cfg)

	bounds := make([][2]int, shards)
	for s := 0; s < shards; s++ {
		lo, hi := c.ShardElems(s)
		bounds[s] = [2]int{lo, hi}
	}
	for u, vec := range master.applied {
		// Each applied vector must be non-zero inside exactly one shard.
		touched := -1
		for s, b := range bounds {
			nz := false
			for i := b[0]; i < b[1]; i++ {
				if vec[i] != 0 {
					nz = true
					break
				}
			}
			if nz {
				if touched >= 0 {
					t.Fatalf("update %d touches shards %d and %d", u, touched, s)
				}
				touched = s
			}
		}
		if touched < 0 {
			t.Fatalf("update %d touches no shard", u)
		}
	}
}

// scratchAgent records the backing-array pointer of every aggregate it
// is handed, to pin the zero-copy Aggregate contract.
type scratchAgent struct {
	intAgent
	ptrs []*float32
}

func (a *scratchAgent) ApplyAggregated(sum []float32, h int) {
	a.ptrs = append(a.ptrs, &sum[0])
	a.intAgent.ApplyAggregated(sum, h)
}

// psClient.Aggregate must return its reusable assembler buffer instead
// of a fresh per-round copy (the alloc-regression guard for the fix).
func TestPSAggregateReusesScratchBuffer(t *testing.T) {
	for _, strategy := range []string{"ps", "sharded"} {
		const nWorkers, nFloats, iters = 2, 2000, 3
		k := sim.NewKernel()
		agents := make([]rl.Agent, nWorkers)
		scratch := make([]*scratchAgent, nWorkers)
		services := make([]Service, nWorkers)
		var client func(int) Service
		if strategy == "ps" {
			client = NewPSCluster(k, nWorkers, nFloats, testLink(), DefaultPSConfig()).Client
		} else {
			client = NewShardedPSCluster(k, nWorkers, nFloats, 2, testLink(), DefaultPSConfig()).Client
		}
		for i := range agents {
			scratch[i] = &scratchAgent{intAgent: *newIntAgent(i, nFloats)}
			agents[i] = scratch[i]
			services[i] = client(i)
		}
		RunSync(k, agents, services, fastTiming(iters))
		for w, a := range scratch {
			if len(a.ptrs) != iters {
				t.Fatalf("%s worker %d saw %d aggregates", strategy, w, len(a.ptrs))
			}
			for it := 1; it < iters; it++ {
				if a.ptrs[it] != a.ptrs[0] {
					t.Fatalf("%s worker %d: aggregate buffer reallocated at iter %d", strategy, w, it)
				}
			}
		}
	}
}

// BenchmarkPSAggregateRoundPPO tracks the per-round allocation profile
// of the PS sync datapath (PPO-sized model). The zero-copy Aggregate
// fix removed the last per-round whole-vector allocation; a regression
// shows up here as allocs/op growing by a gradient-sized copy per
// worker per round.
func BenchmarkPSAggregateRoundPPO(b *testing.B) {
	n := perfmodel.Workloads()[2].Floats() // PPO, 10005 floats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		c := NewPSCluster(k, 4, n, netsim.TenGbE(), DefaultPSConfig())
		agents := make([]rl.Agent, 4)
		services := make([]Service, 4)
		for j := range agents {
			agents[j] = NewSyntheticAgent(n)
			services[j] = c.Client(j)
		}
		RunSync(k, agents, services, fastTiming(4))
	}
}
