package sim

import "container/heap"

// heapQueue is the original binary-heap event scheduler, retained as
// the reference implementation: the differential suite pins the
// calendar queue's pop order byte-identical to it, and the hold-model
// benchmarks measure the calendar queue's speedup against it. It
// deliberately keeps the seed kernel's allocation behavior — one heap
// allocation per scheduled event (pooled() returns false) — so
// old-vs-new benchmark numbers reflect the seed implementation.
type heapQueue struct {
	q eventQueue
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (h *heapQueue) push(e *event) { heap.Push(&h.q, e) }

func (h *heapQueue) peek() *event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

func (h *heapQueue) pop() *event {
	if len(h.q) == 0 {
		return nil
	}
	return heap.Pop(&h.q).(*event)
}

func (h *heapQueue) len() int { return len(h.q) }

// pooled reports false: the reference scheduler allocates per event,
// exactly like the seed kernel it preserves.
func (h *heapQueue) pooled() bool { return false }
