// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel multiplexes cooperative processes (goroutines that hold a
// scheduler token one at a time) over a virtual clock. Exactly one
// goroutine — either the kernel itself or a single process — runs at any
// moment, so simulation state needs no locking and runs are bit-for-bit
// reproducible for a given spawn order and seed.
//
// Processes advance virtual time with Proc.Sleep and communicate through
// virtual-time channels (Chan). Network links, switches, and training
// workers in the iSwitch reproduction are all sim processes.
//
// The event queue behind the kernel is an O(1) calendar queue with a
// binary-heap fallback for far-future events (calqueue.go); the seed's
// binary heap survives as the reference scheduler (heapQueue) behind
// NewHeapKernel, with pop order pinned byte-identical by the
// differential suite. Events are pool-allocated through a free list, so
// the steady-state hot path — After callbacks and process wakes —
// performs no heap allocation. Pure-callback events (After) execute
// inline in the kernel loop with no goroutine handoff; only waking a
// parked process pays the two channel operations of the token exchange.
package sim

import (
	"fmt"
	"time"
)

// Time is virtual time measured as an offset from the start of the run.
type Time = time.Duration

// event is a scheduled occurrence: at time t, run fn (kernel context)
// and/or resume proc. seq breaks ties so ordering is deterministic.
// Events are pooled: next links both a bucket chain inside the calendar
// queue and the kernel's free list.
type event struct {
	t    Time
	seq  uint64
	fn   func()
	proc *Proc
	next *event
}

// before reports whether e precedes o in the kernel's total (t, seq)
// event order.
func (e *event) before(o *event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// scheduler is the priority-queue implementation behind a Kernel. Both
// implementations pop in exactly (t, seq) order; pooled reports whether
// popped events may be recycled through the kernel's free list.
type scheduler interface {
	push(*event)
	peek() *event
	pop() *event
	len() int
	pooled() bool
}

// Kernel owns the virtual clock and the event queue.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now      Time
	seq      uint64
	sched    scheduler
	cal      *calQueue     // sched devirtualized, nil for other schedulers
	pool     bool          // sched.pooled(), cached off the hot path
	free     *event        // recycled events (calendar scheduler only)
	parkCh   chan struct{} // processes signal "parked or finished"
	stopped  bool
	down     bool // Shutdown has begun; parked processes must unwind
	panicVal any
	procs    int     // live (spawned, unfinished) processes
	live     []*Proc // the live processes themselves (Shutdown resumes them)
	events   uint64  // total events processed
}

// NewKernel returns a kernel with the clock at zero, scheduled by the
// calendar queue.
func NewKernel() *Kernel {
	if useHeapScheduler {
		return NewHeapKernel()
	}
	return newKernel(newCalQueue())
}

// NewHeapKernel returns a kernel scheduled by the reference binary
// heap — the seed implementation, kept for differential tests and
// old-vs-new benchmarks. Event order is byte-identical to NewKernel.
func NewHeapKernel() *Kernel { return newKernel(newHeapQueue()) }

func newKernel(s scheduler) *Kernel {
	k := &Kernel{parkCh: make(chan struct{}), sched: s, pool: s.pooled()}
	// Devirtualize the hot path: push/peek/pop run a few times per
	// event, and the calendar queue is the production scheduler.
	k.cal, _ = s.(*calQueue)
	return k
}

// useHeapScheduler, when set, makes NewKernel produce heap-scheduled
// kernels. Differential tests flip it to run unmodified experiment code
// on the reference scheduler.
var useHeapScheduler bool

// UseHeapScheduler forces every subsequent NewKernel to use the
// reference binary-heap scheduler (true) or the calendar queue (false,
// the default). It exists for differential testing: toggle, rerun an
// unmodified workload, and compare. Not safe to flip while kernels are
// running in other goroutines.
func UseHeapScheduler(on bool) { useHeapScheduler = on }

// Now reports the current virtual time. Valid from kernel callbacks and
// between Run calls; processes should use Proc.Now.
func (k *Kernel) Now() Time { return k.now }

// Stop halts the run loop after the current event completes. Pending
// events are retained, so a later Run resumes where the clock stopped.
func (k *Kernel) Stop() { k.stopped = true }

// Procs reports the number of live (spawned, unfinished) processes.
func (k *Kernel) Procs() int { return k.procs }

// Events reports the total number of events the kernel has processed —
// the numerator of every events/sec measurement.
func (k *Kernel) Events() uint64 { return k.events }

// QueueLen reports the number of pending events.
func (k *Kernel) QueueLen() int { return k.sched.len() }

// schedule allocates an event (from the free list when the scheduler
// pools) and enqueues it, returning its seq.
func (k *Kernel) schedule(t Time, fn func(), proc *Proc) uint64 {
	k.seq++
	var e *event
	if k.free != nil {
		e = k.free
		k.free = e.next
		e.next = nil
	} else {
		e = &event{}
	}
	e.t, e.seq, e.fn, e.proc = t, k.seq, fn, proc
	if k.cal != nil {
		k.cal.push(e)
	} else {
		k.sched.push(e)
	}
	return k.seq
}

// recycle returns a popped event to the free list once its payload has
// been captured. The reference heap scheduler opts out to preserve the
// seed's allocation behavior.
func (k *Kernel) recycle(e *event) {
	if !k.pool {
		return
	}
	e.fn, e.proc = nil, nil
	e.next = k.free
	k.free = e
}

// After schedules fn to run in kernel context d from now. fn must not
// block; it may schedule further events and send on channels.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now+d, fn, nil)
}

// Spawn creates a process named name running fn, starting at the current
// virtual time. It may be called before Run or from kernel callbacks and
// other processes.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{k: k, name: name, resumeCh: make(chan struct{})}
	k.procs++
	p.liveIdx = len(k.live)
	k.live = append(k.live, p)
	go func() {
		<-p.resumeCh // wait for the start event
		defer func() {
			if r := recover(); r != nil && r != errShutdown {
				p.k.panicVal = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
			}
			p.done = true
			p.k.procs--
			p.k.unlive(p)
			p.k.parkCh <- struct{}{}
		}()
		if !p.k.down {
			fn(p)
		}
	}()
	p.wakeSeq = k.schedule(k.now, nil, p)
	return p
}

// unlive removes a finished process from the live list (swap-remove).
func (k *Kernel) unlive(p *Proc) {
	last := len(k.live) - 1
	k.live[p.liveIdx] = k.live[last]
	k.live[p.liveIdx].liveIdx = p.liveIdx
	k.live[last] = nil
	k.live = k.live[:last]
}

// Run processes events until the queue is empty or Stop is called.
// Processes still parked on channels when the queue drains do not
// resume (this is how long-lived server loops end a simulation); call
// Shutdown to release them and reclaim their goroutines.
func (k *Kernel) Run() { k.run(-1) }

// RunUntil processes events with timestamps <= t, then sets the clock to
// t. Events after t stay queued for a subsequent Run/RunUntil.
func (k *Kernel) RunUntil(t Time) { k.run(t) }

func (k *Kernel) run(limit Time) {
	k.stopped = false
	for !k.stopped {
		var e *event
		if k.cal != nil {
			e = k.cal.peek()
		} else {
			e = k.sched.peek()
		}
		if e == nil {
			break
		}
		if limit >= 0 && e.t > limit {
			k.now = limit
			return
		}
		if k.cal != nil {
			k.cal.pop()
		} else {
			k.sched.pop()
		}
		if e.t > k.now {
			k.now = e.t
		}
		k.events++
		// Capture the payload and recycle before running it: the
		// callback may schedule new events, and the freed slot lets the
		// hot fn-chain path run allocation-free.
		fn, proc, seq := e.fn, e.proc, e.seq
		k.recycle(e)
		if fn != nil {
			fn()
		}
		if proc != nil && !proc.done && !proc.cancelWake(seq) {
			proc.resumeCh <- struct{}{}
			<-k.parkCh
		}
		if k.panicVal != nil {
			panic(k.panicVal)
		}
	}
	if limit >= 0 && limit > k.now {
		k.now = limit
	}
}

// errShutdown is the sentinel a parked process panics with when the
// kernel shuts down; the Spawn wrapper swallows it so the goroutine
// unwinds (running its defers) without reporting a failure.
var errShutdown = &struct{ s string }{"sim: kernel shut down"}

// Shutdown releases every parked process so its goroutine unwinds and
// exits. Without it, processes still blocked on Chan.Recv when the
// event queue drains — long-lived server loops — leak one goroutine
// each for the life of the Go process, which across the thousands of
// kernels a sweep runs adds up to real memory and scheduler pressure.
//
// Call it after Run returns (never from inside a running process). A
// parked process observes shutdown as a panic with an internal sentinel
// from inside its blocking call (Sleep, Recv, Barrier.Wait, ...): its
// deferred functions still run, but the process can not block again —
// any further blocking call re-panics. Recovering the sentinel and
// parking anyway is unsupported. Pending events are discarded; the
// kernel must not be used afterwards. Shutdown is idempotent.
func (k *Kernel) Shutdown() {
	k.down = true
	for len(k.live) > 0 {
		p := k.live[len(k.live)-1]
		p.resumeCh <- struct{}{}
		<-k.parkCh
	}
	for k.sched.pop() != nil {
	}
	k.free = nil
}

// Proc is a simulated process. All methods must be called from the
// process's own goroutine while it holds the scheduler token (i.e., from
// inside the fn passed to Spawn).
type Proc struct {
	k        *Kernel
	name     string
	resumeCh chan struct{}
	done     bool
	liveIdx  int // index in k.live while live

	// wakeSeq, when nonzero, identifies the single event allowed to wake
	// this proc; events carrying any other seq are stale (for example a
	// timeout that lost the race against a channel delivery).
	wakeSeq uint64
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Kernel returns the kernel this process runs under.
func (p *Proc) Kernel() *Kernel { return p.k }

// Spawn starts a sibling process at the current virtual time.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc { return p.k.Spawn(name, fn) }

// park yields the token to the kernel and blocks until resumed.
func (p *Proc) park() {
	p.k.parkCh <- struct{}{}
	<-p.resumeCh
	if p.k.down {
		panic(errShutdown)
	}
}

// scheduleWake arranges for this proc to resume at now+d and records the
// event's seq so stale wakes can be cancelled.
func (p *Proc) scheduleWake(d Time) uint64 {
	if d < 0 {
		d = 0
	}
	seq := p.k.schedule(p.k.now+d, nil, p)
	p.wakeSeq = seq
	return seq
}

// cancelWake reports whether the wake identified by seq is stale. Only
// the most recently armed wake may resume the process.
func (p *Proc) cancelWake(seq uint64) bool {
	if p.wakeSeq == seq && seq != 0 {
		p.wakeSeq = 0
		return false
	}
	return true
}

// Sleep advances this process's local time by d.
func (p *Proc) Sleep(d Time) {
	p.scheduleWake(d)
	p.park()
}

// Chan is an unbounded virtual-time channel. Senders never block;
// receivers block in virtual time until a value is available. Delivery
// order is FIFO and deterministic. Buffers and waiter lists are ring
// buffers, and waiter records are recycled through a per-channel free
// list, so steady-state send/recv traffic does not allocate.
type Chan[T any] struct {
	k       *Kernel
	name    string
	buf     ring[T]
	waiters ring[*chanWaiter[T]]
	freeW   *chanWaiter[T]
}

type chanWaiter[T any] struct {
	p       *Proc
	got     bool
	v       T
	expired bool           // timeout fired before a value arrived
	next    *chanWaiter[T] // free-list link
}

// NewChan creates a channel on kernel k. name is for diagnostics.
func NewChan[T any](k *Kernel, name string) *Chan[T] {
	return &Chan[T]{k: k, name: name}
}

// Len reports the number of buffered (undelivered) values.
func (c *Chan[T]) Len() int { return c.buf.len() }

// getWaiter takes a waiter record from the free list (or allocates).
func (c *Chan[T]) getWaiter(p *Proc) *chanWaiter[T] {
	w := c.freeW
	if w == nil {
		w = &chanWaiter[T]{}
	} else {
		c.freeW = w.next
	}
	var zero T
	w.p, w.got, w.v, w.expired, w.next = p, false, zero, false, nil
	return w
}

// putWaiter recycles a waiter that is no longer queued.
func (c *Chan[T]) putWaiter(w *chanWaiter[T]) {
	var zero T
	w.p, w.v = nil, zero
	w.next = c.freeW
	c.freeW = w
}

// Send enqueues v at the current virtual time. Callable from kernel
// callbacks or from the running process.
func (c *Chan[T]) Send(v T) { c.deliver(v) }

// SendAfter enqueues v after a virtual delay of d. This is the primitive
// network links use to model latency without a dedicated process.
func (c *Chan[T]) SendAfter(d Time, v T) {
	c.k.After(d, func() { c.deliver(v) })
}

func (c *Chan[T]) deliver(v T) {
	// Hand to the longest-waiting live receiver, if any.
	for c.waiters.len() > 0 {
		w := c.waiters.pop()
		if w.expired {
			c.putWaiter(w) // its receiver timed out and moved on
			continue
		}
		w.got = true
		w.v = v
		w.p.scheduleWake(0)
		return
	}
	c.buf.push(v)
}

// Recv blocks the process in virtual time until a value is available.
func (c *Chan[T]) Recv(p *Proc) T {
	if c.buf.len() > 0 {
		return c.buf.pop()
	}
	w := c.getWaiter(p)
	c.waiters.push(w)
	p.wakeSeq = 0 // the deliver call will arm the wake
	p.park()
	v := w.v
	c.putWaiter(w) // deliver already dequeued it
	return v
}

// TryRecv returns a buffered value without blocking.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if c.buf.len() == 0 {
		return zero, false
	}
	return c.buf.pop(), true
}

// RecvTimeout waits up to d for a value. ok is false on timeout.
func (c *Chan[T]) RecvTimeout(p *Proc, d Time) (v T, ok bool) {
	if c.buf.len() > 0 {
		return c.buf.pop(), true
	}
	w := c.getWaiter(p)
	c.waiters.push(w)
	p.scheduleWake(d) // timeout wake; a deliver overrides it via scheduleWake(0)
	p.park()
	if !w.got {
		// Still queued: mark it stale so a later deliver skips (and
		// recycles) it instead of waking a process that moved on.
		w.expired = true
		var zero T
		return zero, false
	}
	v = w.v
	c.putWaiter(w)
	return v, true
}
