// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel multiplexes cooperative processes (goroutines that hold a
// scheduler token one at a time) over a virtual clock. Exactly one
// goroutine — either the kernel itself or a single process — runs at any
// moment, so simulation state needs no locking and runs are bit-for-bit
// reproducible for a given spawn order and seed.
//
// Processes advance virtual time with Proc.Sleep and communicate through
// virtual-time channels (Chan). Network links, switches, and training
// workers in the iSwitch reproduction are all sim processes.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is virtual time measured as an offset from the start of the run.
type Time = time.Duration

// event is a scheduled occurrence: at time t, run fn (kernel context)
// and/or resume proc. seq breaks ties so ordering is deterministic.
type event struct {
	t    Time
	seq  uint64
	fn   func()
	proc *Proc
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}
func (q eventQueue) peek() *event { return q[0] }

// Kernel owns the virtual clock and the event queue.
//
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now      Time
	seq      uint64
	queue    eventQueue
	parkCh   chan struct{} // processes signal "parked or finished"
	stopped  bool
	panicVal any
	procs    int // live (spawned, unfinished) processes
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{parkCh: make(chan struct{})}
}

// Now reports the current virtual time. Valid from kernel callbacks and
// between Run calls; processes should use Proc.Now.
func (k *Kernel) Now() Time { return k.now }

// Stop halts the run loop after the current event completes. Pending
// events are retained, so a later Run resumes where the clock stopped.
func (k *Kernel) Stop() { k.stopped = true }

// Procs reports the number of live (spawned, unfinished) processes.
func (k *Kernel) Procs() int { return k.procs }

// After schedules fn to run in kernel context d from now. fn must not
// block; it may schedule further events and send on channels.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.seq++
	heap.Push(&k.queue, &event{t: k.now + d, seq: k.seq, fn: fn})
}

// Spawn creates a process named name running fn, starting at the current
// virtual time. It may be called before Run or from kernel callbacks and
// other processes.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{k: k, name: name, resumeCh: make(chan struct{})}
	k.procs++
	go func() {
		<-p.resumeCh // wait for the start event
		defer func() {
			if r := recover(); r != nil {
				p.k.panicVal = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
			}
			p.done = true
			p.k.procs--
			p.k.parkCh <- struct{}{}
		}()
		fn(p)
	}()
	k.seq++
	heap.Push(&k.queue, &event{t: k.now, seq: k.seq, proc: p})
	p.wakeSeq = k.seq
	return p
}

// Run processes events until the queue is empty or Stop is called.
// Processes still parked on channels when the queue drains simply never
// resume (this is how long-lived server loops end a simulation).
func (k *Kernel) Run() { k.run(-1) }

// RunUntil processes events with timestamps <= t, then sets the clock to
// t. Events after t stay queued for a subsequent Run/RunUntil.
func (k *Kernel) RunUntil(t Time) { k.run(t) }

func (k *Kernel) run(limit Time) {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		if limit >= 0 && k.queue.peek().t > limit {
			k.now = limit
			return
		}
		ev := heap.Pop(&k.queue).(*event)
		if ev.t > k.now {
			k.now = ev.t
		}
		if ev.fn != nil {
			ev.fn()
		}
		if ev.proc != nil && !ev.proc.done && !ev.proc.cancelWake(ev.seq) {
			ev.proc.resumeCh <- struct{}{}
			<-k.parkCh
		}
		if k.panicVal != nil {
			panic(k.panicVal)
		}
	}
	if limit >= 0 && limit > k.now {
		k.now = limit
	}
}

// Proc is a simulated process. All methods must be called from the
// process's own goroutine while it holds the scheduler token (i.e., from
// inside the fn passed to Spawn).
type Proc struct {
	k        *Kernel
	name     string
	resumeCh chan struct{}
	done     bool

	// wakeSeq, when nonzero, identifies the single event allowed to wake
	// this proc; events carrying any other seq are stale (for example a
	// timeout that lost the race against a channel delivery).
	wakeSeq uint64
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Kernel returns the kernel this process runs under.
func (p *Proc) Kernel() *Kernel { return p.k }

// Spawn starts a sibling process at the current virtual time.
func (p *Proc) Spawn(name string, fn func(*Proc)) *Proc { return p.k.Spawn(name, fn) }

// park yields the token to the kernel and blocks until resumed.
func (p *Proc) park() {
	p.k.parkCh <- struct{}{}
	<-p.resumeCh
}

// scheduleWake arranges for this proc to resume at now+d and records the
// event's seq so stale wakes can be cancelled.
func (p *Proc) scheduleWake(d Time) uint64 {
	if d < 0 {
		d = 0
	}
	p.k.seq++
	seq := p.k.seq
	heap.Push(&p.k.queue, &event{t: p.k.now + d, seq: seq, proc: p})
	p.wakeSeq = seq
	return seq
}

// cancelWake reports whether the wake identified by seq is stale. Only
// the most recently armed wake may resume the process.
func (p *Proc) cancelWake(seq uint64) bool {
	if p.wakeSeq == seq && seq != 0 {
		p.wakeSeq = 0
		return false
	}
	return true
}

// Sleep advances this process's local time by d.
func (p *Proc) Sleep(d Time) {
	p.scheduleWake(d)
	p.park()
}

// Chan is an unbounded virtual-time channel. Senders never block;
// receivers block in virtual time until a value is available. Delivery
// order is FIFO and deterministic.
type Chan[T any] struct {
	k       *Kernel
	name    string
	buf     []T
	waiters []*chanWaiter[T]
}

type chanWaiter[T any] struct {
	p       *Proc
	got     bool
	v       T
	expired bool // timeout fired before a value arrived
}

// NewChan creates a channel on kernel k. name is for diagnostics.
func NewChan[T any](k *Kernel, name string) *Chan[T] {
	return &Chan[T]{k: k, name: name}
}

// Len reports the number of buffered (undelivered) values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Send enqueues v at the current virtual time. Callable from kernel
// callbacks or from the running process.
func (c *Chan[T]) Send(v T) { c.deliver(v) }

// SendAfter enqueues v after a virtual delay of d. This is the primitive
// network links use to model latency without a dedicated process.
func (c *Chan[T]) SendAfter(d Time, v T) {
	c.k.After(d, func() { c.deliver(v) })
}

func (c *Chan[T]) deliver(v T) {
	// Hand to the longest-waiting live receiver, if any.
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if w.expired {
			continue
		}
		w.got = true
		w.v = v
		w.p.scheduleWake(0)
		return
	}
	c.buf = append(c.buf, v)
}

// Recv blocks the process in virtual time until a value is available.
func (c *Chan[T]) Recv(p *Proc) T {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		return v
	}
	w := &chanWaiter[T]{p: p}
	c.waiters = append(c.waiters, w)
	p.wakeSeq = 0 // the deliver call will arm the wake
	p.park()
	return w.v
}

// TryRecv returns a buffered value without blocking.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.buf) == 0 {
		return zero, false
	}
	v := c.buf[0]
	c.buf = c.buf[1:]
	return v, true
}

// RecvTimeout waits up to d for a value. ok is false on timeout.
func (c *Chan[T]) RecvTimeout(p *Proc, d Time) (v T, ok bool) {
	if len(c.buf) > 0 {
		v := c.buf[0]
		c.buf = c.buf[1:]
		return v, true
	}
	w := &chanWaiter[T]{p: p}
	c.waiters = append(c.waiters, w)
	p.scheduleWake(d) // timeout wake; a deliver overrides it via scheduleWake(0)
	p.park()
	if !w.got {
		w.expired = true
		var zero T
		return zero, false
	}
	return w.v, true
}
