package sim

import (
	"testing"
	"time"
)

func TestRunOnEmptyKernel(t *testing.T) {
	k := NewKernel()
	k.Run() // must return immediately
	if k.Now() != 0 {
		t.Fatalf("clock moved to %v", k.Now())
	}
	k.RunUntil(time.Second)
	if k.Now() != time.Second {
		t.Fatalf("RunUntil did not advance idle clock: %v", k.Now())
	}
}

func TestStopBeforeRunIsHarmless(t *testing.T) {
	k := NewKernel()
	k.Stop()
	ran := false
	k.Spawn("p", func(p *Proc) { ran = true })
	k.Run() // Run clears the stop flag on entry
	if !ran {
		t.Fatal("pre-Run Stop leaked into Run")
	}
}

func TestBarrierOfOneNeverBlocks(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, 1)
	count := 0
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			b.Wait(p)
			count++
		}
	})
	k.Run()
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
	if b.Round() != 5 {
		t.Fatalf("rounds = %d", b.Round())
	}
}

func TestBarrierInvalidN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 barrier accepted")
		}
	}()
	NewBarrier(NewKernel(), 0)
}

func TestNegativeWaitGroupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter accepted")
		}
	}()
	wg := NewWaitGroup(NewKernel())
	wg.Done()
}

func TestProcsCount(t *testing.T) {
	k := NewKernel()
	if k.Procs() != 0 {
		t.Fatalf("initial procs = %d", k.Procs())
	}
	k.Spawn("a", func(p *Proc) { p.Sleep(time.Millisecond) })
	k.Spawn("b", func(p *Proc) { p.Sleep(2 * time.Millisecond) })
	if k.Procs() != 2 {
		t.Fatalf("spawned procs = %d", k.Procs())
	}
	k.Run()
	if k.Procs() != 0 {
		t.Fatalf("procs after run = %d", k.Procs())
	}
}

func TestInterleavedRunUntilAndSpawn(t *testing.T) {
	k := NewKernel()
	events := 0
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(time.Millisecond)
			events++
		}
	})
	k.RunUntil(5 * time.Millisecond)
	if events != 5 {
		t.Fatalf("events = %d at 5ms", events)
	}
	// Spawning mid-run starts at the current clock.
	var startedAt Time
	k.Spawn("late", func(p *Proc) { startedAt = p.Now() })
	k.Run()
	if startedAt != 5*time.Millisecond {
		t.Fatalf("late proc started at %v", startedAt)
	}
	if events != 10 {
		t.Fatalf("events = %d at end", events)
	}
}

func TestChanLenAndOrderAfterPartialDrain(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "ch")
	for i := 0; i < 5; i++ {
		ch.Send(i)
	}
	if ch.Len() != 5 {
		t.Fatalf("len = %d", ch.Len())
	}
	v, _ := ch.TryRecv()
	if v != 0 || ch.Len() != 4 {
		t.Fatalf("drain order broken: %d, len %d", v, ch.Len())
	}
}
