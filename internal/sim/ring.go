package sim

// ring is a growable power-of-two circular buffer. It replaces the
// `s = s[1:]` slice-shift queues the kernel used to keep for channel
// buffers and waiter lists: shifting a slice head retains the whole
// backing array (the garbage collector sees the popped prefix as live)
// and re-appending after a shift degrades quadratically under bursty
// senders. A ring reuses its backing array forever, pops in O(1), and
// zeroes each vacated slot so popped values are collectable.
type ring[T any] struct {
	elems []T // len(elems) is always 0 or a power of two
	head  int
	n     int
}

// len reports the number of queued values.
func (r *ring[T]) len() int { return r.n }

// push appends v at the tail, growing the ring when full.
func (r *ring[T]) push(v T) {
	if r.n == len(r.elems) {
		r.grow()
	}
	r.elems[(r.head+r.n)&(len(r.elems)-1)] = v
	r.n++
}

// pop removes and returns the head value, clearing its slot.
func (r *ring[T]) pop() T {
	if r.n == 0 {
		panic("sim: pop from empty ring")
	}
	var zero T
	v := r.elems[r.head]
	r.elems[r.head] = zero
	r.head = (r.head + 1) & (len(r.elems) - 1)
	r.n--
	return v
}

// peek returns the head value without removing it.
func (r *ring[T]) peek() T {
	if r.n == 0 {
		panic("sim: peek at empty ring")
	}
	return r.elems[r.head]
}

// grow doubles capacity (minimum 8), compacting the live window to the
// front of the new array.
func (r *ring[T]) grow() {
	newCap := 2 * len(r.elems)
	if newCap == 0 {
		newCap = 8
	}
	elems := make([]T, newCap)
	for i := 0; i < r.n; i++ {
		elems[i] = r.elems[(r.head+i)&(len(r.elems)-1)]
	}
	r.elems = elems
	r.head = 0
}
