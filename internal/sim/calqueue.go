package sim

import "math/bits"

// calQueue is an O(1) calendar-queue event scheduler (Brown 1988): an
// array of day buckets, each holding a (t, seq)-sorted intrusive list
// of events whose timestamp falls on that day (day = t / width, mapped
// onto the array modulo its length). Dequeue scans forward from the
// day of the last popped event; because every bucket-resident event
// lies within the current "year" (one full rotation of the array), the
// first head found inside its day window is the global minimum.
//
// Two mechanisms keep the common operations O(1):
//
//   - Automatic resize: when bucket occupancy drifts outside [1/4, 2]
//     events per bucket, the array is rebuilt at the new size and the
//     day width re-estimated from sampled inter-event gaps, keeping
//     roughly one event per day for any event density.
//
//   - Binary-heap overflow: events scheduled beyond the current year
//     (t >= yearEnd) would alias onto near-future days, so they go to
//     a far-future heap instead. Each peek migrates newly in-year
//     overflow events back into the calendar, so the heap only ever
//     holds genuinely far-future work (timers, long timeouts).
//
// Pop order is exactly (t, seq) — byte-identical to the reference
// binary heap (heapQueue), which the differential suite enforces.
type calQueue struct {
	buckets []calBucket
	mask    int64 // len(buckets)-1; bucket count is a power of two
	shift   uint  // day width is 1<<shift nanoseconds (a power of two)
	last    Time  // floor: every queued event has t >= last
	bn      int   // events resident in buckets (excludes overflow)

	overflow heapQueue // far-future events (t >= yearEnd at push time)

	// peeked caches the event located by peek until the matching pop or
	// an intervening push invalidates it.
	peeked       *event
	peekOverflow bool
}

const (
	// calMinBuckets is the smallest bucket array (shrink floor).
	calMinBuckets = 16
	// calSampleCap bounds the gap sample taken when re-estimating the
	// day width during a resize.
	calSampleCap = 32
)

func newCalQueue() *calQueue {
	return &calQueue{
		buckets: make([]calBucket, calMinBuckets),
		mask:    calMinBuckets - 1,
		shift:   10, // ~1us days until the first resize re-estimates
	}
}

// calBucket is one day's sorted event chain.
type calBucket struct {
	head, tail *event
}

func (q *calQueue) pooled() bool { return true }

func (q *calQueue) len() int { return q.bn + q.overflow.len() }

// day maps a timestamp to its day index. Day widths are powers of two
// so this is a shift, not a division — it runs on every push and pop.
func (q *calQueue) day(t Time) int64 { return int64(t) >> q.shift }

// yearEnd is the first timestamp beyond the current rotation window:
// events at or past it must live in the overflow heap.
func (q *calQueue) yearEnd() Time {
	return Time((q.day(q.last) + int64(len(q.buckets))) << q.shift)
}

func (q *calQueue) push(e *event) {
	q.peeked = nil
	if e.t >= q.yearEnd() {
		q.overflow.push(e)
		return
	}
	q.bucketInsert(e)
	if q.bn > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// bucketInsert chains e into its day bucket in (t, seq) order. The
// tail fast path covers the dominant DES pattern — events scheduled at
// the current timestamp in ascending seq order — in O(1).
func (q *calQueue) bucketInsert(e *event) {
	b := &q.buckets[q.day(e.t)&q.mask]
	switch {
	case b.head == nil:
		e.next = nil
		b.head, b.tail = e, e
	case b.tail.before(e):
		e.next = nil
		b.tail.next = e
		b.tail = e
	case e.before(b.head):
		e.next = b.head
		b.head = e
	default:
		cur := b.head
		for cur.next != nil && cur.next.before(e) {
			cur = cur.next
		}
		e.next = cur.next
		cur.next = e
	}
	q.bn++
}

func (q *calQueue) peek() *event {
	if q.peeked != nil {
		return q.peeked
	}
	q.migrate()
	if q.bn == 0 {
		q.peeked = q.overflow.peek()
		q.peekOverflow = q.peeked != nil
		return q.peeked
	}
	q.peeked = q.scanMin()
	q.peekOverflow = false
	return q.peeked
}

func (q *calQueue) pop() *event {
	e := q.peek()
	if e == nil {
		return nil
	}
	q.peeked = nil
	if q.peekOverflow {
		q.overflow.pop()
		q.last = e.t
		return e
	}
	b := &q.buckets[q.day(e.t)&q.mask]
	b.head = e.next
	if b.head == nil {
		b.tail = nil
	}
	e.next = nil
	q.bn--
	q.last = e.t
	if len(q.buckets) > calMinBuckets && q.bn < len(q.buckets)/4 {
		q.resize(len(q.buckets) / 2)
	}
	return e
}

// migrate moves overflow events that now fall inside the current year
// into their day buckets. Amortized O(1): each event migrates at most
// once per resize.
func (q *calQueue) migrate() {
	for {
		top := q.overflow.peek()
		if top == nil || top.t >= q.yearEnd() {
			return
		}
		q.overflow.pop()
		q.bucketInsert(top)
		if q.bn > 2*len(q.buckets) {
			q.resize(2 * len(q.buckets))
		}
	}
}

// scanMin walks day windows forward from the day of the last popped
// event. Every bucket-resident event satisfies last <= t < yearEnd, so
// one rotation is guaranteed to visit each event's day exactly once,
// and the first head inside its window is the (t, seq) minimum.
func (q *calQueue) scanMin() *event {
	d := q.day(q.last)
	idx := d & q.mask
	top := Time((d + 1) << q.shift)
	for i := 0; i < len(q.buckets); i++ {
		if h := q.buckets[idx].head; h != nil && h.t < top {
			return h
		}
		idx = (idx + 1) & q.mask
		top += Time(1) << q.shift
	}
	// Defensive direct search: unreachable while the year invariant
	// holds, but a linear min over bucket heads keeps pop order correct
	// even if it ever slips.
	var best *event
	for i := range q.buckets {
		if h := q.buckets[i].head; h != nil && (best == nil || h.before(best)) {
			best = h
		}
	}
	return best
}

// resize rebuilds the bucket array at newLen and re-estimates the day
// width, redistributing every resident event (events that no longer
// fit the new year fall through to the overflow heap).
func (q *calQueue) resize(newLen int) {
	events := make([]*event, 0, q.bn)
	for i := range q.buckets {
		for e := q.buckets[i].head; e != nil; {
			next := e.next
			e.next = nil
			events = append(events, e)
			e = next
		}
		q.buckets[i] = calBucket{}
	}
	q.shift = q.estimateShift(events)
	if newLen != len(q.buckets) {
		q.buckets = make([]calBucket, newLen)
		q.mask = int64(newLen - 1)
	}
	q.bn = 0
	ye := q.yearEnd()
	for _, e := range events {
		if e.t >= ye {
			q.overflow.push(e)
		} else {
			q.bucketInsert(e)
		}
	}
}

// estimateShift picks the day span as 3x the mean gap between the
// earliest sampled event timestamps (Brown's original heuristic, which
// samples the queue front rather than the whole population). Sampling
// the front matters under skew: dequeue activity happens in the dense
// near-now cluster, and a handful of far-future outliers must not
// inflate the width — with a front-derived width those outliers simply
// fall past the year boundary into the overflow heap. Zero gaps —
// bursts of events on the same timestamp — are excluded so a same-time
// flood cannot collapse the width.
func (q *calQueue) estimateShift(events []*event) uint {
	if len(events) < 2 {
		return q.shift
	}
	// Select the calSampleCap smallest timestamps into a sorted array
	// (bounded insertion; one pass over the events).
	var sample [calSampleCap]Time
	n := 0
	for _, e := range events {
		t := e.t
		if n == len(sample) {
			if t >= sample[n-1] {
				continue
			}
			n--
		}
		j := n
		for j > 0 && sample[j-1] > t {
			sample[j] = sample[j-1]
			j--
		}
		sample[j] = t
		n++
	}
	ts := sample[:n]
	span := ts[n-1] - ts[0]
	if span == 0 {
		return q.shift // all sampled events share one timestamp
	}
	// 3x the mean separation, zero separations included, rounded down
	// to a power of two. Including zeros matters: when several events
	// share each timestamp this drives the width to the 1ns floor,
	// which makes every day a single-timestamp chain — and
	// same-timestamp events always arrive in increasing seq, so inserts
	// hit the O(1) tail fast path.
	w := 3 * span / Time(n)
	if w < 1 {
		w = 1
	}
	return uint(bits.Len64(uint64(w)) - 1)
}
