package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// The differential suite pins the calendar-queue scheduler
// byte-identical to the reference binary heap: the same workload run on
// both kernels must produce the same trace (every observable action in
// order, with its virtual timestamp), the same final clock, and the
// same event count. Workloads are generated from a seeded PRNG mixing
// every kernel primitive: After chains, Sleep, Chan send/recv,
// RecvTimeout races, mid-run Spawn, barriers, and far-future timers
// that exercise the overflow heap.

// diffRNG is a tiny deterministic generator (xorshift64*).
type diffRNG uint64

func newDiffRNG(seed int64) *diffRNG {
	r := diffRNG(uint64(seed)*2862933555777941757 + 3037000493)
	return &r
}

func (r *diffRNG) next() uint64 {
	s := uint64(*r)
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	*r = diffRNG(s)
	return s * 2685821657736338717
}

func (r *diffRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// delay draws from a mix of zero, microsecond-scale, and far-future
// delays (the last forces overflow-heap traffic).
func (r *diffRNG) delay() Time {
	switch r.intn(10) {
	case 0:
		return 0
	case 1:
		return Time(1+r.intn(20)) * time.Millisecond
	default:
		return Time(r.next() % uint64(5*time.Microsecond))
	}
}

// runDiffWorkload executes one randomized workload on k and returns its
// trace.
func runDiffWorkload(k *Kernel, seed int64) string {
	var b strings.Builder
	logf := func(format string, args ...any) {
		fmt.Fprintf(&b, "%d ", k.Now())
		fmt.Fprintf(&b, format, args...)
		b.WriteByte('\n')
	}

	rng := newDiffRNG(seed)
	nProcs := 2 + rng.intn(6)
	nChans := 1 + rng.intn(3)
	chans := make([]*Chan[int], nChans)
	for i := range chans {
		chans[i] = NewChan[int](k, fmt.Sprintf("ch%d", i))
	}
	bar := NewBarrier(k, nProcs)
	useBarrier := rng.intn(2) == 0

	// Each process gets its own deterministic op stream.
	for pi := 0; pi < nProcs; pi++ {
		pi := pi
		prng := newDiffRNG(seed*31 + int64(pi))
		k.Spawn(fmt.Sprintf("p%d", pi), func(p *Proc) {
			ops := 12 + prng.intn(12)
			for op := 0; op < ops; op++ {
				switch prng.intn(6) {
				case 0:
					d := prng.delay()
					p.Sleep(d)
					logf("p%d slept %d", pi, d)
				case 1:
					ch := chans[prng.intn(nChans)]
					v := prng.intn(1000)
					ch.Send(v)
					logf("p%d sent %d", pi, v)
				case 2:
					ch := chans[prng.intn(nChans)]
					if ch.Len() > 0 {
						logf("p%d recv %d", pi, ch.Recv(p))
					} else {
						// Avoid deadlock: only block when a timeout
						// bounds the wait.
						v, ok := ch.RecvTimeout(p, prng.delay()+time.Microsecond)
						logf("p%d recvTimeout %d %v", pi, v, ok)
					}
				case 3:
					seq := op
					p.Kernel().After(prng.delay(), func() {
						logf("p%d after-cb %d", pi, seq)
					})
					logf("p%d scheduled %d", pi, seq)
				case 4:
					if prng.intn(4) == 0 {
						child := op
						p.Spawn(fmt.Sprintf("p%d.%d", pi, child), func(cp *Proc) {
							cp.Sleep(prng.delay())
							logf("p%d.%d child done", pi, child)
						})
					} else {
						p.Sleep(prng.delay())
						logf("p%d slept(alt)", pi)
					}
				case 5:
					if useBarrier && op < 10 {
						bar.Wait(p)
						logf("p%d barrier round %d", pi, bar.Round())
					} else {
						logf("p%d noop", pi)
					}
				}
			}
			logf("p%d exit", pi)
		})
	}
	k.Run()
	fmt.Fprintf(&b, "final clock %d, events %d, procs %d\n", k.Now(), k.Events(), k.Procs())
	k.Shutdown()
	return b.String()
}

// TestCalendarHeapDifferential runs many randomized workloads on both
// schedulers and requires identical traces.
func TestCalendarHeapDifferential(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		heapTrace := runDiffWorkload(NewHeapKernel(), seed)
		calTrace := runDiffWorkload(NewKernel(), seed)
		if heapTrace != calTrace {
			t.Fatalf("seed %d: schedulers diverge\n--- heap ---\n%s\n--- calendar ---\n%s",
				seed, firstDiff(heapTrace, calTrace), firstDiff(calTrace, heapTrace))
		}
	}
}

// firstDiff returns the few lines around the first divergence, to keep
// failure output readable.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := range la {
		if i >= len(lb) || la[i] != lb[i] {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			hi := i + 3
			if hi > len(la) {
				hi = len(la)
			}
			return fmt.Sprintf("(line %d) %s", i, strings.Join(la[lo:hi], "\n"))
		}
	}
	return "(prefix equal; lengths differ)"
}

// TestCalendarHeapDifferentialHeavy pushes a dense event population
// (thousands of pending events, forcing several calendar resizes and
// overflow migrations) through both schedulers via pure After chains.
func TestCalendarHeapDifferentialHeavy(t *testing.T) {
	run := func(k *Kernel) string {
		var b strings.Builder
		rng := newDiffRNG(99)
		var chain func(id, depth int) func()
		chain = func(id, depth int) func() {
			return func() {
				fmt.Fprintf(&b, "%d cb %d.%d\n", k.Now(), id, depth)
				if depth < 6 {
					k.After(rng.delay(), chain(id, depth+1))
				}
			}
		}
		for id := 0; id < 700; id++ {
			k.After(rng.delay(), chain(id, 0))
		}
		k.Run()
		fmt.Fprintf(&b, "final %d events %d\n", k.Now(), k.Events())
		return b.String()
	}
	// Note: rng streams must match, so build two identical workloads.
	heapTrace := run(NewHeapKernel())
	calTrace := run(NewKernel())
	if heapTrace != calTrace {
		t.Fatalf("heavy workload diverges:\n%s", firstDiff(heapTrace, calTrace))
	}
}

// TestUseHeapSchedulerToggle pins the NewKernel override used by the
// cross-package differential tests.
func TestUseHeapSchedulerToggle(t *testing.T) {
	UseHeapScheduler(true)
	k := NewKernel()
	UseHeapScheduler(false)
	if k.sched.pooled() {
		t.Fatal("UseHeapScheduler(true) did not select the heap scheduler")
	}
	if !NewKernel().sched.pooled() {
		t.Fatal("UseHeapScheduler(false) did not restore the calendar scheduler")
	}
}
