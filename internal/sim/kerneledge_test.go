package sim

import (
	"testing"
	"time"
)

// Edge cases called out by the calendar-queue rework: behaviors that
// must hold identically on both schedulers. Each test runs against
// NewKernel (calendar) and NewHeapKernel (reference heap).

func onBothKernels(t *testing.T, f func(t *testing.T, k *Kernel)) {
	t.Helper()
	t.Run("calendar", func(t *testing.T) { f(t, NewKernel()) })
	t.Run("heap", func(t *testing.T) { f(t, NewHeapKernel()) })
}

// TestRunUntilExactlyOnEventTimestamp: an event scheduled exactly at
// the RunUntil limit fires during that call (limit is inclusive), and
// the next event after the limit stays queued.
func TestRunUntilExactlyOnEventTimestamp(t *testing.T) {
	onBothKernels(t, func(t *testing.T, k *Kernel) {
		var fired []int
		k.After(10*time.Microsecond, func() { fired = append(fired, 10) })
		k.After(20*time.Microsecond, func() { fired = append(fired, 20) })
		k.After(20*time.Microsecond, func() { fired = append(fired, 21) })
		k.After(30*time.Microsecond, func() { fired = append(fired, 30) })

		k.RunUntil(20 * time.Microsecond)
		if len(fired) != 3 || fired[0] != 10 || fired[1] != 20 || fired[2] != 21 {
			t.Fatalf("fired = %v, want [10 20 21] (limit is inclusive, ties in seq order)", fired)
		}
		if k.Now() != 20*time.Microsecond {
			t.Fatalf("Now() = %v, want 20µs", k.Now())
		}
		if k.QueueLen() != 1 {
			t.Fatalf("QueueLen() = %d, want 1 (the 30µs event)", k.QueueLen())
		}
		k.Run()
		if len(fired) != 4 || fired[3] != 30 {
			t.Fatalf("fired = %v after final Run, want trailing 30", fired)
		}
	})
}

// TestStopFromInsideCallback: Stop called by a running callback halts
// the loop after that callback; queued events survive and a later Run
// resumes exactly where the clock stopped.
func TestStopFromInsideCallback(t *testing.T) {
	onBothKernels(t, func(t *testing.T, k *Kernel) {
		var order []string
		k.After(time.Microsecond, func() {
			order = append(order, "first")
			k.Stop()
		})
		k.After(time.Microsecond, func() { order = append(order, "second") })
		k.After(2*time.Microsecond, func() { order = append(order, "third") })

		k.Run()
		if len(order) != 1 || order[0] != "first" {
			t.Fatalf("order = %v after Stop, want [first]", order)
		}
		if k.QueueLen() != 2 {
			t.Fatalf("QueueLen() = %d, want 2 retained events", k.QueueLen())
		}
		k.Run()
		if len(order) != 3 || order[1] != "second" || order[2] != "third" {
			t.Fatalf("order = %v after resume, want [first second third]", order)
		}
	})
}

// TestRecvTimeoutStaleWakeCancelled: when a value arrives in the same
// virtual instant the timeout would fire but earlier in seq order, the
// delivery wins and the already-queued timeout event must not wake the
// process a second time (stale-wake cancellation).
func TestRecvTimeoutStaleWakeCancelled(t *testing.T) {
	onBothKernels(t, func(t *testing.T, k *Kernel) {
		ch := NewChan[int](k, "ch")
		var got int
		var ok bool
		wakes := 0
		k.Spawn("receiver", func(p *Proc) {
			got, ok = ch.RecvTimeout(p, 5*time.Microsecond)
			wakes++
			// Park once more: if the stale timeout event were still
			// live it would wake us here instead of the 10µs sleep.
			p.Sleep(10 * time.Microsecond)
			if p.Now() != 15*time.Microsecond {
				t.Errorf("second wake at %v, want 15µs (stale timeout leaked)", p.Now())
			}
			wakes++
		})
		// Deliver at exactly the timeout instant; the send is scheduled
		// before the timeout seq-wise, so delivery must win.
		ch.SendAfter(5*time.Microsecond, 42)
		k.Run()
		if !ok || got != 42 {
			t.Fatalf("RecvTimeout = (%d, %v), want (42, true)", got, ok)
		}
		if wakes != 2 {
			t.Fatalf("wakes = %d, want 2", wakes)
		}
	})
}

// TestRecvTimeoutExpiryThenTraffic: after a timeout expires, later
// channel traffic must not be misdelivered to the expired waiter.
func TestRecvTimeoutExpiryThenTraffic(t *testing.T) {
	onBothKernels(t, func(t *testing.T, k *Kernel) {
		ch := NewChan[int](k, "ch")
		var timedOut, delivered bool
		k.Spawn("receiver", func(p *Proc) {
			if _, ok := ch.RecvTimeout(p, time.Microsecond); !ok {
				timedOut = true
			}
			// Second receive must get the late value.
			if v := ch.Recv(p); v == 7 {
				delivered = true
			}
		})
		ch.SendAfter(3*time.Microsecond, 7)
		k.Run()
		if !timedOut || !delivered {
			t.Fatalf("timedOut=%v delivered=%v, want both true", timedOut, delivered)
		}
	})
}

// TestSpawnFromDyingProcess: a process may spawn a sibling as its last
// action (even from a defer); the child starts at the parent's death
// time and runs to completion.
func TestSpawnFromDyingProcess(t *testing.T) {
	onBothKernels(t, func(t *testing.T, k *Kernel) {
		var childRan bool
		var childStart Time
		k.Spawn("parent", func(p *Proc) {
			p.Sleep(4 * time.Microsecond)
			defer p.Spawn("child", func(c *Proc) {
				childStart = c.Now()
				c.Sleep(time.Microsecond)
				childRan = true
			})
		})
		k.Run()
		if !childRan {
			t.Fatal("child spawned from dying parent never ran")
		}
		if childStart != 4*time.Microsecond {
			t.Fatalf("child started at %v, want 4µs (parent's death time)", childStart)
		}
		if k.Procs() != 0 {
			t.Fatalf("Procs() = %d, want 0", k.Procs())
		}
	})
}
