package sim

import (
	"runtime"
	"testing"
	"time"
)

// TestShutdownReleasesParkedProcs pins the goroutine-leak fix: a kernel
// whose queue drains while server-loop processes are still parked on
// channels must release those goroutines on Shutdown.
func TestShutdownReleasesParkedProcs(t *testing.T) {
	before := runtime.NumGoroutine()
	const kernels = 20
	for i := 0; i < kernels; i++ {
		k := NewKernel()
		ch := NewChan[int](k, "rx")
		for s := 0; s < 8; s++ {
			k.Spawn("server", func(p *Proc) {
				for { // server loop: parks forever once the queue drains
					ch.Recv(p)
				}
			})
		}
		k.Spawn("client", func(p *Proc) {
			ch.Send(1)
			p.Sleep(time.Microsecond)
		})
		k.Run()
		if k.Procs() == 0 {
			t.Fatal("expected parked server procs after Run")
		}
		k.Shutdown()
		if k.Procs() != 0 {
			t.Fatalf("Procs() = %d after Shutdown, want 0", k.Procs())
		}
	}
	// Goroutines exit asynchronously after the final parkCh handshake;
	// give the runtime a moment before counting.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.Gosched()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutting down %d kernels",
				before, after, kernels)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownRunsDefers verifies a parked process's deferred functions
// run during Shutdown (the sentinel panic unwinds the stack normally).
func TestShutdownRunsDefers(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "rx")
	cleaned := false
	k.Spawn("server", func(p *Proc) {
		defer func() { cleaned = true }()
		ch.Recv(p)
	})
	k.Run()
	k.Shutdown()
	if !cleaned {
		t.Fatal("deferred cleanup did not run during Shutdown")
	}
}

// TestShutdownWithBlockingDefer: a defer that itself blocks (sends on a
// channel nobody reads) must not hang Shutdown — the re-park panics
// again and the unwind continues.
func TestShutdownWithBlockingDefer(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "rx")
	done := make(chan struct{})
	go func() {
		defer close(done)
		k.Spawn("server", func(p *Proc) {
			defer func() {
				// Recv parks again mid-shutdown; the kernel re-panics it.
				defer func() { recover() }()
				ch.Recv(p)
			}()
			ch.Recv(p)
		})
		k.Run()
		k.Shutdown()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on a blocking defer")
	}
}

// TestShutdownIdempotent: calling Shutdown twice (or on a never-run
// kernel) is harmless.
func TestShutdownIdempotent(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) { p.Sleep(time.Microsecond) })
	k.Run()
	k.Shutdown()
	k.Shutdown()

	k2 := NewKernel()
	k2.Shutdown() // never ran; start events still queued
	if k2.QueueLen() != 0 {
		t.Fatalf("QueueLen() = %d after Shutdown, want 0", k2.QueueLen())
	}
}

// TestSpawnAfterShutdownIsInert: processes spawned after Shutdown must
// not run their body (the kernel is dead), and must not leak.
func TestSpawnAfterShutdownIsInert(t *testing.T) {
	k := NewKernel()
	k.Shutdown()
	ran := false
	k.Spawn("late", func(p *Proc) { ran = true })
	k.Shutdown() // release the late goroutine too
	if ran {
		t.Fatal("process spawned after Shutdown ran its body")
	}
}
