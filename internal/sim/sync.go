package sim

// Barrier blocks N processes until all have arrived, then releases them
// simultaneously (same virtual timestamp). It is reusable across rounds,
// mirroring the global barrier placed after gradient aggregation in
// synchronous distributed training.
type Barrier struct {
	k       *Kernel
	n       int
	arrived int
	waiting []*Proc
	round   uint64
}

// NewBarrier creates a barrier for n parties.
func NewBarrier(k *Kernel, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier requires n >= 1")
	}
	return &Barrier{k: k, n: n}
}

// Round reports how many times the barrier has released.
func (b *Barrier) Round() uint64 { return b.round }

// Wait blocks p until n processes (including p) have called Wait.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.round++
		for _, w := range b.waiting {
			w.scheduleWake(0)
		}
		b.waiting = b.waiting[:0]
		return
	}
	b.waiting = append(b.waiting, p)
	p.wakeSeq = 0 // release arms the wake
	p.park()
}

// WaitGroup counts outstanding work in virtual time.
type WaitGroup struct {
	k       *Kernel
	count   int
	waiting []*Proc
}

// NewWaitGroup creates an empty wait group.
func NewWaitGroup(k *Kernel) *WaitGroup { return &WaitGroup{k: k} }

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.count += delta
	if wg.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if wg.count == 0 {
		for _, w := range wg.waiting {
			w.scheduleWake(0)
		}
		wg.waiting = wg.waiting[:0]
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	wg.waiting = append(wg.waiting, p)
	p.wakeSeq = 0
	p.park()
}
