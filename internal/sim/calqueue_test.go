package sim

import (
	"testing"
	"time"
)

// White-box tests for the calendar queue's internal mechanics: resize,
// overflow migration, and the bucket-year invariant.

func calPushAt(q *calQueue, t Time, seq uint64) *event {
	e := &event{t: t, seq: seq}
	q.push(e)
	return e
}

// TestCalQueueGrowsAndShrinks drives occupancy through both resize
// thresholds and checks pop order is preserved across rebuilds.
func TestCalQueueGrowsAndShrinks(t *testing.T) {
	q := newCalQueue()
	const n = 1000
	for i := 0; i < n; i++ {
		calPushAt(q, Time(i%257)*time.Nanosecond, uint64(i+1))
	}
	if len(q.buckets) <= calMinBuckets {
		t.Fatalf("bucket array did not grow: %d buckets for %d events", len(q.buckets), n)
	}
	var prev *event
	for i := 0; i < n; i++ {
		e := q.pop()
		if e == nil {
			t.Fatalf("pop %d returned nil", i)
		}
		if prev != nil && !prev.before(e) {
			t.Fatalf("pop order violated: (%v,%d) after (%v,%d)", e.t, e.seq, prev.t, prev.seq)
		}
		prev = e
	}
	if q.pop() != nil {
		t.Fatal("queue not empty after draining")
	}
	if len(q.buckets) != calMinBuckets {
		t.Fatalf("bucket array did not shrink back to %d: %d", calMinBuckets, len(q.buckets))
	}
}

// TestCalQueueOverflowMigration pushes far-future events (beyond the
// year), verifies they land in the overflow heap, then pops forward and
// checks they migrate into buckets and emerge in order.
func TestCalQueueOverflowMigration(t *testing.T) {
	q := newCalQueue()
	// Near-term cluster.
	for i := 0; i < 8; i++ {
		calPushAt(q, Time(i)*time.Microsecond, uint64(i+1))
	}
	// Far future: with 16 buckets of ~1µs the year ends at 16µs, so
	// these must overflow.
	calPushAt(q, time.Second, 100)
	calPushAt(q, 2*time.Second, 101)
	if q.overflow.len() != 2 {
		t.Fatalf("overflow.len() = %d, want 2", q.overflow.len())
	}
	if q.len() != 10 {
		t.Fatalf("len() = %d, want 10", q.len())
	}
	var prev *event
	for i := 0; i < 10; i++ {
		e := q.pop()
		if e == nil {
			t.Fatalf("pop %d returned nil", i)
		}
		if prev != nil && !prev.before(e) {
			t.Fatalf("pop order violated at %d: (%v,%d) after (%v,%d)", i, e.t, e.seq, prev.t, prev.seq)
		}
		prev = e
	}
	if prev.t != 2*time.Second {
		t.Fatalf("last pop at %v, want 2s", prev.t)
	}
}

// TestCalQueueSameTimestampFlood: thousands of events on one timestamp
// must keep seq order and must not collapse the width estimate (the
// resize samples ignore an all-equal cluster).
func TestCalQueueSameTimestampFlood(t *testing.T) {
	q := newCalQueue()
	const n = 500
	for i := 0; i < n; i++ {
		calPushAt(q, time.Millisecond, uint64(i+1))
	}
	for i := 0; i < n; i++ {
		e := q.pop()
		if e.seq != uint64(i+1) {
			t.Fatalf("pop %d has seq %d, want %d", i, e.seq, i+1)
		}
	}
}

// TestCalQueuePeekStableAcrossPushes: a push invalidates the peek cache;
// peek must re-find the minimum if the new event precedes it.
func TestCalQueuePeekStableAcrossPushes(t *testing.T) {
	q := newCalQueue()
	calPushAt(q, 10*time.Microsecond, 1)
	if e := q.peek(); e.seq != 1 {
		t.Fatalf("peek seq = %d, want 1", e.seq)
	}
	calPushAt(q, time.Microsecond, 2)
	if e := q.peek(); e.seq != 2 {
		t.Fatalf("peek after earlier push = seq %d, want 2", e.seq)
	}
	if e := q.pop(); e.seq != 2 {
		t.Fatalf("pop = seq %d, want 2", e.seq)
	}
	if e := q.pop(); e.seq != 1 {
		t.Fatalf("pop = seq %d, want 1", e.seq)
	}
}

// TestCalQueueInterleavedHold exercises the steady-state hold pattern
// (pop one, push one ahead of it) across enough iterations to cross
// year boundaries repeatedly.
func TestCalQueueInterleavedHold(t *testing.T) {
	q := newCalQueue()
	seq := uint64(0)
	for i := 0; i < 64; i++ {
		seq++
		calPushAt(q, Time(i)*100*time.Nanosecond, seq)
	}
	prevT := Time(-1)
	for i := 0; i < 20000; i++ {
		e := q.pop()
		if e.t < prevT {
			t.Fatalf("time went backwards: %v after %v", e.t, prevT)
		}
		prevT = e.t
		seq++
		calPushAt(q, e.t+Time(1+i%7)*time.Microsecond, seq)
	}
	if q.len() != 64 {
		t.Fatalf("len() = %d, want steady-state 64", q.len())
	}
}
