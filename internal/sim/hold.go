package sim

import (
	"runtime"
	"time"
)

// The hold model is the standard priority-queue benchmark for
// discrete-event simulators (and the workload calendar queues were
// designed around): keep a queue at steady-state size N, and repeatedly
// pop the earliest event and push a replacement a random increment into
// the future. Every pop+push pair is one "hold". The kernel runs it as
// a pure-callback event chain — no processes, no goroutine handoffs —
// so the measurement isolates scheduler and allocator cost.

// HoldResult is one hold-model measurement.
type HoldResult struct {
	// QueueSize is the steady-state event-queue population.
	QueueSize int
	// Events is the number of events the kernel processed.
	Events uint64
	// Wall is the elapsed wall-clock time.
	Wall time.Duration
	// EventsPerSec is Events / Wall.
	EventsPerSec float64
	// AllocsPerEvent is heap allocations per processed event (mallocs
	// delta / Events), the pooling regression metric.
	AllocsPerEvent float64
}

// holdDelays is a fixed table of pseudo-random hold increments, mixing
// a uniform microsecond-scale spread with same-timestamp bursts (delay
// zero) and occasional far-future outliers that must take the calendar
// queue's overflow-heap path. Precomputed so the RNG is off the
// measured path and every scheduler sees the identical sequence.
func holdDelays(seed int64) []Time {
	const n = 4096
	delays := make([]Time, n)
	s := uint64(seed)*2862933555777941757 + 3037000493
	for i := range delays {
		// xorshift64* — deterministic, dependency-free.
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		r := s * 2685821657736338717
		switch {
		case r%16 == 0:
			delays[i] = 0 // same-time burst
		case r%101 == 0:
			delays[i] = Time(1+r%8) * time.Millisecond // far-future outlier
		default:
			delays[i] = Time(r % uint64(4*time.Microsecond))
		}
	}
	return delays
}

// RunHold primes k's queue with queueSize self-rescheduling events and
// processes approximately `events` holds, measuring throughput and
// allocation rate. The callback closures are created once and reused,
// so a pooling scheduler runs the steady state allocation-free.
func RunHold(k *Kernel, queueSize, events int, seed int64) HoldResult {
	delays := holdDelays(seed)
	mask := len(delays) - 1
	di := 0
	remaining := events
	fns := make([]func(), queueSize)
	for i := range fns {
		fn := new(func())
		*fn = func() {
			if remaining <= 0 {
				return // stop rescheduling; the queue drains
			}
			remaining--
			k.After(delays[di&mask], *fn)
			di++
		}
		fns[i] = *fn
	}
	for _, fn := range fns {
		k.After(delays[di&mask], fn)
		di++
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	k.Run()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	res := HoldResult{
		QueueSize: queueSize,
		Events:    k.Events(),
		Wall:      wall,
	}
	if wall > 0 {
		res.EventsPerSec = float64(res.Events) / wall.Seconds()
	}
	if res.Events > 0 {
		res.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(res.Events)
	}
	return res
}
