package sim

import (
	"fmt"
	"testing"
	"time"
)

func TestSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var woke Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(50 * time.Millisecond)
		woke = p.Now()
	})
	k.Run()
	if woke != 50*time.Millisecond {
		t.Fatalf("woke at %v, want 50ms", woke)
	}
	if k.Now() != 50*time.Millisecond {
		t.Fatalf("kernel clock %v, want 50ms", k.Now())
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	k := NewKernel()
	steps := 0
	k.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		steps++
		p.Sleep(-time.Second) // clamped to 0
		steps++
	})
	k.Run()
	if steps != 2 {
		t.Fatalf("steps = %d, want 2", steps)
	}
	if k.Now() != 0 {
		t.Fatalf("clock moved to %v on zero sleeps", k.Now())
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var order []string
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("p%d", i)
			k.Spawn(name, func(p *Proc) {
				p.Sleep(10 * time.Millisecond) // all wake at the same instant
				order = append(order, p.Name())
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 5 {
		t.Fatalf("got %d wakeups, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic order: %v vs %v", a, b)
		}
		if a[i] != fmt.Sprintf("p%d", i) {
			t.Fatalf("tie-break not in spawn order: %v", a)
		}
	}
}

func TestChanSendRecv(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "ch")
	var got int
	var at Time
	k.Spawn("recv", func(p *Proc) {
		got = ch.Recv(p)
		at = p.Now()
	})
	k.Spawn("send", func(p *Proc) {
		p.Sleep(time.Millisecond)
		ch.Send(42)
	})
	k.Run()
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
	if at != time.Millisecond {
		t.Fatalf("received at %v, want 1ms", at)
	}
}

func TestChanBufferedBeforeRecv(t *testing.T) {
	k := NewKernel()
	ch := NewChan[string](k, "ch")
	ch.Send("early")
	var got string
	k.Spawn("recv", func(p *Proc) { got = ch.Recv(p) })
	k.Run()
	if got != "early" {
		t.Fatalf("got %q", got)
	}
}

func TestChanFIFOAcrossManyValues(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "ch")
	var got []int
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 100; i++ {
			got = append(got, ch.Recv(p))
		}
	})
	k.Spawn("send", func(p *Proc) {
		for i := 0; i < 100; i++ {
			ch.Send(i)
			if i%10 == 0 {
				p.Sleep(time.Microsecond)
			}
		}
	})
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestSendAfterModelsLatency(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "link")
	var at Time
	k.Spawn("recv", func(p *Proc) {
		ch.Recv(p)
		at = p.Now()
	})
	k.After(0, func() { ch.SendAfter(3*time.Millisecond, 1) })
	k.Run()
	if at != 3*time.Millisecond {
		t.Fatalf("delivered at %v, want 3ms", at)
	}
}

func TestRecvTimeoutExpires(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "ch")
	var ok bool
	var at Time
	k.Spawn("recv", func(p *Proc) {
		_, ok = ch.RecvTimeout(p, 5*time.Millisecond)
		at = p.Now()
	})
	k.Run()
	if ok {
		t.Fatal("expected timeout")
	}
	if at != 5*time.Millisecond {
		t.Fatalf("timed out at %v, want 5ms", at)
	}
}

func TestRecvTimeoutDeliveryWins(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "ch")
	var got int
	var ok bool
	k.Spawn("recv", func(p *Proc) {
		got, ok = ch.RecvTimeout(p, 10*time.Millisecond)
		// The stale timeout event must not wake a later Recv.
		ch2 := NewChan[int](k, "ch2")
		ch2.SendAfter(20*time.Millisecond, 7)
		v := ch2.Recv(p)
		if v != 7 {
			t.Errorf("stale timer corrupted later recv: got %d", v)
		}
	})
	k.Spawn("send", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		ch.Send(9)
	})
	k.Run()
	if !ok || got != 9 {
		t.Fatalf("got %d ok=%v, want 9 true", got, ok)
	}
}

func TestTryRecv(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k, "ch")
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("TryRecv on empty channel succeeded")
	}
	ch.Send(5)
	v, ok := ch.TryRecv()
	if !ok || v != 5 {
		t.Fatalf("got %d ok=%v", v, ok)
	}
	if ch.Len() != 0 {
		t.Fatalf("len = %d after drain", ch.Len())
	}
}

func TestRunUntilStopsAtBoundary(t *testing.T) {
	k := NewKernel()
	ticks := 0
	k.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(time.Second)
			ticks++
		}
	})
	k.RunUntil(3500 * time.Millisecond)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	if k.Now() != 3500*time.Millisecond {
		t.Fatalf("clock = %v, want 3.5s", k.Now())
	}
	k.RunUntil(5 * time.Second)
	if ticks != 5 {
		t.Fatalf("ticks after resume = %d, want 5", ticks)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			n++
			if n == 10 {
				k.Stop()
			}
		}
	})
	k.Run()
	if n != 10 {
		t.Fatalf("n = %d, want 10 (Stop ignored?)", n)
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var childAt Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		p.Spawn("child", func(c *Proc) { childAt = c.Now() })
		p.Sleep(time.Millisecond)
	})
	k.Run()
	if childAt != 7*time.Millisecond {
		t.Fatalf("child started at %v, want 7ms", childAt)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate out of Run")
		}
	}()
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) { panic("boom") })
	k.Run()
}

func TestBarrierReleasesTogether(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, 3)
	var times []Time
	for i := 0; i < 3; i++ {
		d := time.Duration(i+1) * time.Millisecond
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
			times = append(times, p.Now())
		})
	}
	k.Run()
	if len(times) != 3 {
		t.Fatalf("released %d, want 3", len(times))
	}
	for _, ts := range times {
		if ts != 3*time.Millisecond {
			t.Fatalf("release times %v, want all 3ms (slowest arrival)", times)
		}
	}
	if b.Round() != 1 {
		t.Fatalf("round = %d, want 1", b.Round())
	}
}

func TestBarrierReusableAcrossRounds(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, 2)
	rounds := [2]int{}
	for i := 0; i < 2; i++ {
		idx := i
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			for r := 0; r < 5; r++ {
				p.Sleep(time.Duration(idx+1) * time.Millisecond)
				b.Wait(p)
				rounds[idx]++
			}
		})
	}
	k.Run()
	if rounds[0] != 5 || rounds[1] != 5 {
		t.Fatalf("rounds = %v, want [5 5]", rounds)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	wg.Add(3)
	var doneAt Time
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	for i := 0; i < 3; i++ {
		d := time.Duration(i+1) * time.Millisecond
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	k.Run()
	if doneAt != 3*time.Millisecond {
		t.Fatalf("waiter released at %v, want 3ms", doneAt)
	}
}

func TestWaitGroupZeroCountNoBlock(t *testing.T) {
	k := NewKernel()
	wg := NewWaitGroup(k)
	ran := false
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	k.Run()
	if !ran {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestAfterCallbackOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	k.After(2*time.Millisecond, func() { order = append(order, 2) })
	k.After(time.Millisecond, func() { order = append(order, 1) })
	k.After(2*time.Millisecond, func() { order = append(order, 3) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestManyProcessesManyEvents(t *testing.T) {
	k := NewKernel()
	total := 0
	for i := 0; i < 50; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < 200; j++ {
				p.Sleep(time.Duration(j%7+1) * time.Microsecond)
				total++
			}
		})
	}
	k.Run()
	if total != 50*200 {
		t.Fatalf("total = %d, want %d", total, 50*200)
	}
}
