package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw sleep-event processing.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkChanPingPong measures two processes exchanging values.
func BenchmarkChanPingPong(b *testing.B) {
	k := NewKernel()
	a := NewChan[int](k, "a")
	c := NewChan[int](k, "b")
	k.Spawn("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			a.Send(i)
			c.Recv(p)
		}
	})
	k.Spawn("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			v := a.Recv(p)
			c.Send(v)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkManyProcs measures scheduling across 64 concurrent processes.
func BenchmarkManyProcs(b *testing.B) {
	k := NewKernel()
	per := b.N/64 + 1
	for i := 0; i < 64; i++ {
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(time.Duration(j%5+1) * time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	k.Run()
}
