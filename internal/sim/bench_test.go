package sim

import (
	"testing"
	"time"
)

// BenchmarkEventThroughput measures raw sleep-event processing.
func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkChanPingPong measures two processes exchanging values.
func BenchmarkChanPingPong(b *testing.B) {
	k := NewKernel()
	a := NewChan[int](k, "a")
	c := NewChan[int](k, "b")
	k.Spawn("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			a.Send(i)
			c.Recv(p)
		}
	})
	k.Spawn("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			v := a.Recv(p)
			c.Send(v)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkManyProcs measures scheduling across 64 concurrent processes.
func BenchmarkManyProcs(b *testing.B) {
	k := NewKernel()
	per := b.N/64 + 1
	for i := 0; i < 64; i++ {
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(time.Duration(j%5+1) * time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	k.Run()
}

// benchHold runs the hold model (pop one, reschedule one — the standard
// DES scheduler benchmark) at a fixed steady-state queue size.
func benchHold(b *testing.B, mk func() *Kernel, queueSize int) {
	b.ReportAllocs()
	b.ResetTimer()
	res := RunHold(mk(), queueSize, b.N, 7)
	b.StopTimer()
	b.ReportMetric(res.EventsPerSec, "events/sec")
	b.ReportMetric(res.AllocsPerEvent, "allocs/event")
}

func BenchmarkHoldCalendar64(b *testing.B)    { benchHold(b, NewKernel, 64) }
func BenchmarkHoldCalendar1024(b *testing.B)  { benchHold(b, NewKernel, 1024) }
func BenchmarkHoldCalendar16384(b *testing.B) { benchHold(b, NewKernel, 16384) }
func BenchmarkHoldHeap64(b *testing.B)        { benchHold(b, NewHeapKernel, 64) }
func BenchmarkHoldHeap1024(b *testing.B)      { benchHold(b, NewHeapKernel, 1024) }
func BenchmarkHoldHeap16384(b *testing.B)     { benchHold(b, NewHeapKernel, 16384) }

// BenchmarkChanSteadyState pins the ring-buffer rework: a
// send-then-receive cycle at steady state must not allocate (waiter
// records and buffer slots are recycled), and must not retain the
// O(n) slid-off prefix the old slice-shift buffers kept alive.
func BenchmarkChanSteadyState(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	ch := NewChan[int](k, "ch")
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ch.Recv(p)
		}
	})
	k.Spawn("send", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ch.Send(i)
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	k.Run()
}

// TestChanSteadyStateAllocFree is the allocation-regression gate for
// the Chan ring buffers: after warm-up, a send/recv/timeout mix must
// average well under one allocation per operation.
func TestChanSteadyStateAllocFree(t *testing.T) {
	const ops = 20000
	allocs := testing.AllocsPerRun(1, func() {
		k := NewKernel()
		ch := NewChan[int](k, "ch")
		k.Spawn("recv", func(p *Proc) {
			for i := 0; i < ops; i++ {
				if i%7 == 0 {
					ch.RecvTimeout(p, 500*time.Nanosecond)
				} else {
					ch.Recv(p)
				}
			}
		})
		k.Spawn("send", func(p *Proc) {
			for i := 0; i < ops; i++ {
				ch.Send(i)
				p.Sleep(time.Microsecond)
			}
		})
		k.Run()
		k.Shutdown()
	})
	// Fixed costs (kernel, channel, goroutines, ring growth) amortize
	// over 2*ops operations; the steady state itself must be
	// allocation-free. 0.05 allocs/op gives headroom for the fixed part
	// while catching any per-operation regression.
	if perOp := allocs / (2 * ops); perOp > 0.05 {
		t.Fatalf("chan steady state allocates %.3f allocs/op (total %.0f); ring buffers should be allocation-free", perOp, allocs)
	}
}
