package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestMLPShapes(t *testing.T) {
	m := NewMLP([]int{4, 8, 3}, ActReLU, ActNone, 1)
	if m.InDim() != 4 || m.OutDim() != 3 {
		t.Fatalf("dims %d/%d", m.InDim(), m.OutDim())
	}
	want := 8*4 + 8 + 3*8 + 3
	if m.ParamCount() != want {
		t.Fatalf("params = %d, want %d", m.ParamCount(), want)
	}
	out := m.Forward([]float32{1, 0, -1, 0.5})
	if len(out) != 3 {
		t.Fatalf("out len %d", len(out))
	}
}

func TestMLPDeterministicInit(t *testing.T) {
	a := NewMLP([]int{3, 5, 2}, ActTanh, ActNone, 42)
	b := NewMLP([]int{3, 5, 2}, ActTanh, ActNone, 42)
	for i := range a.Params() {
		if a.Params()[i] != b.Params()[i] {
			t.Fatal("same seed gave different init")
		}
	}
	c := NewMLP([]int{3, 5, 2}, ActTanh, ActNone, 43)
	same := true
	for i := range a.Params() {
		if a.Params()[i] != c.Params()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical init")
	}
}

// Numerical gradient check: the backward pass must match finite
// differences of a scalar loss for every parameter.
func TestMLPGradCheck(t *testing.T) {
	for _, tc := range []struct {
		name   string
		hidden Activation
		out    Activation
	}{
		{"tanh-linear", ActTanh, ActNone},
		{"relu-linear", ActReLU, ActNone},
		{"tanh-tanh", ActTanh, ActTanh},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := NewMLP([]int{3, 6, 4, 2}, tc.hidden, tc.out, 7)
			rng := rand.New(rand.NewSource(9))
			x := []float32{0.3, -0.7, 0.5}
			target := []float32{0.2, -0.4}

			loss := func() float64 {
				out := m.Forward(x)
				var l float64
				for i := range out {
					d := float64(out[i] - target[i])
					l += 0.5 * d * d
				}
				return l
			}

			m.ZeroGrads()
			out := m.Forward(x)
			dout := make([]float32, len(out))
			MSE(out, target, dout)
			m.Backward(dout)
			analytic := append([]float32(nil), m.Grads()...)

			const eps = 1e-3
			checks := 0
			for trial := 0; trial < 40; trial++ {
				i := rng.Intn(m.ParamCount())
				orig := m.Params()[i]
				m.Params()[i] = orig + eps
				lp := loss()
				m.Params()[i] = orig - eps
				lm := loss()
				m.Params()[i] = orig
				numeric := (lp - lm) / (2 * eps)
				if math.Abs(numeric-float64(analytic[i])) > 1e-2*(1+math.Abs(numeric)) {
					t.Fatalf("param %d: analytic %v vs numeric %v", i, analytic[i], numeric)
				}
				checks++
			}
			if checks == 0 {
				t.Fatal("no gradient checks ran")
			}
		})
	}
}

func TestBackwardReturnsInputGrad(t *testing.T) {
	m := NewMLP([]int{2, 4, 1}, ActTanh, ActNone, 3)
	x := []float32{0.5, -0.25}
	out := m.Forward(x)
	dx := m.Backward([]float32{1})
	if len(dx) != 2 {
		t.Fatalf("dx len %d", len(dx))
	}
	// Finite-difference check on the input gradient.
	const eps = 1e-3
	base := float64(out[0])
	_ = base
	for i := range x {
		xp := append([]float32(nil), x...)
		xp[i] += eps
		up := float64(m.Forward(xp)[0])
		xm := append([]float32(nil), x...)
		xm[i] -= eps
		um := float64(m.Forward(xm)[0])
		numeric := (up - um) / (2 * eps)
		if math.Abs(numeric-float64(dx[i])) > 1e-2*(1+math.Abs(numeric)) {
			t.Fatalf("dx[%d]: analytic %v vs numeric %v", i, dx[i], numeric)
		}
	}
}

func TestGradAccumulation(t *testing.T) {
	m := NewMLP([]int{2, 3, 1}, ActTanh, ActNone, 5)
	x1 := []float32{1, 0}
	x2 := []float32{0, 1}

	m.ZeroGrads()
	m.Forward(x1)
	m.Backward([]float32{1})
	g1 := append([]float32(nil), m.Grads()...)

	m.ZeroGrads()
	m.Forward(x2)
	m.Backward([]float32{1})
	g2 := append([]float32(nil), m.Grads()...)

	m.ZeroGrads()
	m.Forward(x1)
	m.Backward([]float32{1})
	m.Forward(x2)
	m.Backward([]float32{1})
	for i := range g1 {
		want := g1[i] + g2[i]
		if math.Abs(float64(m.Grads()[i]-want)) > 1e-5 {
			t.Fatalf("grad %d: %v, want %v", i, m.Grads()[i], want)
		}
	}
}

func TestCopyFromAndSoftUpdate(t *testing.T) {
	a := NewMLP([]int{2, 3, 1}, ActTanh, ActNone, 1)
	b := NewMLP([]int{2, 3, 1}, ActTanh, ActNone, 2)
	b.CopyFrom(a)
	for i := range a.Params() {
		if a.Params()[i] != b.Params()[i] {
			t.Fatal("CopyFrom incomplete")
		}
	}
	c := NewMLP([]int{2, 3, 1}, ActTanh, ActNone, 3)
	orig := append([]float32(nil), c.Params()...)
	c.SoftUpdate(a, 0.1)
	for i := range c.Params() {
		want := 0.1*a.Params()[i] + 0.9*orig[i]
		if math.Abs(float64(c.Params()[i]-want)) > 1e-6 {
			t.Fatalf("soft update param %d: %v, want %v", i, c.Params()[i], want)
		}
	}
}

func TestSGDStep(t *testing.T) {
	params := []float32{1, 2}
	grads := []float32{0.5, -0.5}
	NewSGD(0.1, 0).Step(params, grads)
	if params[0] != 0.95 || params[1] != 2.05 {
		t.Fatalf("params = %v", params)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	s := NewSGD(0.1, 0.9)
	params := []float32{0}
	s.Step(params, []float32{1}) // vel=1, p=-0.1
	s.Step(params, []float32{1}) // vel=1.9, p=-0.29
	if math.Abs(float64(params[0])+0.29) > 1e-6 {
		t.Fatalf("params = %v", params)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// minimize (p-3)^2 from p=0
	params := []float32{0}
	a := NewAdam(0.05)
	for i := 0; i < 2000; i++ {
		g := []float32{2 * (params[0] - 3)}
		a.Step(params, g)
	}
	if math.Abs(float64(params[0])-3) > 0.05 {
		t.Fatalf("Adam converged to %v, want 3", params[0])
	}
}

func TestParamSetRoundTrip(t *testing.T) {
	n1 := NewMLP([]int{2, 3, 1}, ActTanh, ActNone, 1)
	n2 := NewMLP([]int{3, 2}, ActNone, ActNone, 2)
	ps := NewParamSet([]*MLP{n1, n2}, []Optimizer{NewSGD(0.1, 0), NewSGD(0.1, 0)})
	if ps.Len() != n1.ParamCount()+n2.ParamCount() {
		t.Fatalf("len = %d", ps.Len())
	}
	buf := make([]float32, ps.Len())
	ps.ReadParams(buf)
	if buf[0] != n1.Params()[0] || buf[ps.Len()-1] != n2.Params()[n2.ParamCount()-1] {
		t.Fatal("ReadParams ordering wrong")
	}
	buf[0] = 99
	ps.WriteParams(buf)
	if n1.Params()[0] != 99 {
		t.Fatal("WriteParams did not land")
	}
}

func TestParamSetStepAppliesAveragedGrad(t *testing.T) {
	n := NewMLP([]int{1, 1}, ActNone, ActNone, 1)
	ps := NewParamSet([]*MLP{n}, []Optimizer{NewSGD(1, 0)})
	before := append([]float32(nil), n.Params()...)
	avg := make([]float32, ps.Len())
	for i := range avg {
		avg[i] = 0.5
	}
	ps.Step(avg)
	for i := range before {
		if math.Abs(float64(n.Params()[i]-(before[i]-0.5))) > 1e-6 {
			t.Fatalf("param %d: %v, want %v", i, n.Params()[i], before[i]-0.5)
		}
	}
}

func TestHuberLoss(t *testing.T) {
	pred := []float32{0, 3, -3}
	target := []float32{0, 0, 0}
	dgrad := make([]float32, 3)
	loss := Huber(pred, target, dgrad, 1)
	if dgrad[0] != 0 || dgrad[1] != 1 || dgrad[2] != -1 {
		t.Fatalf("dgrad = %v", dgrad)
	}
	want := float32(0 + 2.5 + 2.5)
	if math.Abs(float64(loss-want)) > 1e-6 {
		t.Fatalf("loss = %v, want %v", loss, want)
	}
	// quadratic region matches MSE
	d2 := make([]float32, 1)
	l2 := Huber([]float32{0.5}, []float32{0}, d2, 1)
	if math.Abs(float64(l2)-0.125) > 1e-6 || math.Abs(float64(d2[0])-0.5) > 1e-6 {
		t.Fatalf("quadratic region: loss=%v d=%v", l2, d2[0])
	}
}

func TestSoftmaxCEGradient(t *testing.T) {
	logits := []float32{0.2, -0.1, 0.7}
	dgrad := make([]float32, 3)
	lp := SoftmaxCE(logits, 2, 1, dgrad)
	if lp >= 0 {
		t.Fatalf("log prob = %v, want negative", lp)
	}
	// Gradient sums to zero and is negative for the target class.
	var sum float32
	for _, g := range dgrad {
		sum += g
	}
	if math.Abs(float64(sum)) > 1e-5 {
		t.Fatalf("grad sum = %v", sum)
	}
	if dgrad[2] >= 0 {
		t.Fatalf("target grad %v should be negative", dgrad[2])
	}
	// Numerical check against finite differences of −log p(class).
	const eps = 1e-3
	for i := range logits {
		lp := func(l []float32) float64 {
			probs := make([]float32, 3)
			copyL := append([]float32(nil), l...)
			maxv := copyL[0]
			for _, v := range copyL {
				if v > maxv {
					maxv = v
				}
			}
			var s float64
			for j, v := range copyL {
				probs[j] = float32(math.Exp(float64(v - maxv)))
				s += float64(probs[j])
			}
			return -math.Log(float64(probs[2])/s + 1e-12)
		}
		up := append([]float32(nil), logits...)
		up[i] += eps
		dn := append([]float32(nil), logits...)
		dn[i] -= eps
		numeric := (lp(up) - lp(dn)) / (2 * eps)
		if math.Abs(numeric-float64(dgrad[i])) > 1e-3 {
			t.Fatalf("dgrad[%d] = %v, numeric %v", i, dgrad[i], numeric)
		}
	}
}

func TestEntropyBonus(t *testing.T) {
	logits := []float32{0, 0, 0}
	dgrad := make([]float32, 3)
	h := Entropy(logits, 0.01, dgrad)
	if math.Abs(float64(h)-math.Log(3)) > 1e-5 {
		t.Fatalf("uniform entropy = %v, want ln3", h)
	}
	// Uniform distribution is the entropy maximum: gradient ~ 0.
	for _, g := range dgrad {
		if math.Abs(float64(g)) > 1e-6 {
			t.Fatalf("entropy grad at maximum = %v", dgrad)
		}
	}
	// Peaked logits: bonus should push the peak down.
	logits = []float32{2, 0, 0}
	dgrad = make([]float32, 3)
	Entropy(logits, 1, dgrad)
	if dgrad[0] <= 0 {
		t.Fatalf("entropy bonus should lower the peaked logit, grad %v", dgrad)
	}
}

func TestGaussianLogProb(t *testing.T) {
	mean := []float32{0}
	logStd := []float32{0} // std = 1
	dMean := make([]float32, 1)
	dLogStd := make([]float32, 1)
	lp := GaussianLogProb([]float32{0}, mean, logStd, dMean, dLogStd)
	want := -0.5 * math.Log(2*math.Pi)
	if math.Abs(float64(lp)-want) > 1e-5 {
		t.Fatalf("logprob = %v, want %v", lp, want)
	}
	if dMean[0] != 0 {
		t.Fatalf("dMean at mean = %v", dMean[0])
	}
	if dLogStd[0] != -1 {
		t.Fatalf("dLogStd = %v, want -1", dLogStd[0])
	}
	// At a = mean + std the logStd gradient flips sign to 0.
	GaussianLogProb([]float32{1}, mean, logStd, dMean, dLogStd)
	if math.Abs(float64(dLogStd[0])) > 1e-6 {
		t.Fatalf("dLogStd at 1σ = %v, want 0", dLogStd[0])
	}
	if dMean[0] != 1 {
		t.Fatalf("dMean at 1σ = %v, want 1", dMean[0])
	}
}

func TestInvalidConstruction(t *testing.T) {
	for _, dims := range [][]int{{3}, {0, 2}, {2, -1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dims %v accepted", dims)
				}
			}()
			NewMLP(dims, ActNone, ActNone, 1)
		}()
	}
}
