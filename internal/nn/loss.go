package nn

import (
	"math"

	"iswitch/internal/tensor"
)

// Loss helpers. Each returns the scalar loss and writes dL/d(pred)
// into dgrad, ready to feed MLP.Backward.

// MSE computes 0.5·(pred−target)² summed over elements; dgrad gets
// (pred−target).
func MSE(pred, target, dgrad []float32) float32 {
	var loss float32
	for i := range pred {
		d := pred[i] - target[i]
		dgrad[i] = d
		loss += 0.5 * d * d
	}
	return loss
}

// Huber computes the Huber (smooth-L1) loss with threshold delta, the
// standard DQN temporal-difference loss.
func Huber(pred, target, dgrad []float32, delta float32) float32 {
	var loss float32
	for i := range pred {
		d := pred[i] - target[i]
		if d > delta {
			loss += delta * (d - 0.5*delta)
			dgrad[i] = delta
		} else if d < -delta {
			loss += delta * (-d - 0.5*delta)
			dgrad[i] = -delta
		} else {
			loss += 0.5 * d * d
			dgrad[i] = d
		}
	}
	return loss
}

// SoftmaxCE computes softmax cross-entropy against a one-hot target
// class, weighted by w (policy-gradient advantage weighting uses w =
// −advantage to ascend). It returns the (unweighted) log-probability of
// the class and writes w·(softmax(logits) − onehot) into dgrad.
func SoftmaxCE(logits []float32, class int, w float32, dgrad []float32) float32 {
	probs := make([]float32, len(logits))
	tensor.Softmax(probs, logits)
	for i := range logits {
		t := float32(0)
		if i == class {
			t = 1
		}
		dgrad[i] = w * (probs[i] - t)
	}
	return float32(math.Log(float64(probs[class]) + 1e-12))
}

// Entropy returns the entropy of softmax(logits) and accumulates
// −β·d(entropy)/d(logits) into dgrad (maximizing entropy with weight β,
// the standard A2C/PPO exploration bonus).
func Entropy(logits []float32, beta float32, dgrad []float32) float32 {
	probs := make([]float32, len(logits))
	tensor.Softmax(probs, logits)
	var h float64
	for _, p := range probs {
		if p > 0 {
			h -= float64(p) * math.Log(float64(p))
		}
	}
	// dH/dlogit_i = −p_i·(log p_i + H)
	for i, p := range probs {
		dH := -p * (float32(math.Log(float64(p)+1e-12)) + float32(h))
		dgrad[i] -= beta * dH
	}
	return float32(h)
}

// GaussianLogProb returns log N(a; mean, exp(logStd)²) summed over
// dims and writes the gradients w.r.t. mean and logStd.
func GaussianLogProb(a, mean, logStd []float32, dMean, dLogStd []float32) float32 {
	var lp float32
	for i := range a {
		std := float32(math.Exp(float64(logStd[i])))
		z := (a[i] - mean[i]) / std
		lp += -0.5*z*z - logStd[i] - 0.5*float32(math.Log(2*math.Pi))
		if dMean != nil {
			dMean[i] = z / std // d logp / d mean
		}
		if dLogStd != nil {
			dLogStd[i] = z*z - 1 // d logp / d logStd
		}
	}
	return lp
}
