package nn

import (
	"math/rand"
	"testing"
)

// TestBatchForwardMatchesSingle pins the batched path bit-identical to
// the single-sample Forward: same MatVec dispatch, same activation
// order, so every row must agree exactly.
func TestBatchForwardMatchesSingle(t *testing.T) {
	m := NewMLP([]int{6, 16, 16, 3}, ActTanh, ActNone, 1)
	bf := NewBatchForwarder(m, 5)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(bf.MaxBatch())
		inputs := make([][]float32, n)
		for i := range inputs {
			inputs[i] = make([]float32, m.InDim())
			for j := range inputs[i] {
				inputs[i][j] = float32(rng.NormFloat64())
			}
			copy(bf.In(i), inputs[i])
		}
		out := bf.Forward(n)
		if len(out) != n*m.OutDim() {
			t.Fatalf("output plane %d, want %d", len(out), n*m.OutDim())
		}
		for i := 0; i < n; i++ {
			want := m.Forward(inputs[i])
			row := bf.Out(i)
			for j := range want {
				if row[j] != want[j] {
					t.Fatalf("trial %d sample %d[%d]: batched %v != single %v",
						trial, i, j, row[j], want[j])
				}
			}
		}
	}
}

// TestBatchForwardLiveParams pins that the forwarder serves parameter
// updates made after construction (live view, not a snapshot).
func TestBatchForwardLiveParams(t *testing.T) {
	m := NewMLP([]int{2, 4, 1}, ActReLU, ActNone, 3)
	bf := NewBatchForwarder(m, 2)
	copy(bf.In(0), []float32{1, -1})
	before := append([]float32(nil), bf.Forward(1)...)
	for i, p := range m.Params() {
		m.Params()[i] = p * 2
	}
	copy(bf.In(0), []float32{1, -1})
	after := bf.Forward(1)
	same := true
	for i := range before {
		if before[i] != after[i] {
			same = false
		}
	}
	if same {
		t.Fatal("forwarder ignored an in-place parameter update")
	}
}

// TestBatchForwardZeroAlloc is the alloc-regression pin: the batched
// forward pass must allocate nothing per request in steady state.
func TestBatchForwardZeroAlloc(t *testing.T) {
	m := NewMLP([]int{8, 32, 32, 4}, ActTanh, ActNone, 4)
	bf := NewBatchForwarder(m, 8)
	for i := 0; i < bf.MaxBatch(); i++ {
		row := bf.In(i)
		for j := range row {
			row[j] = float32(i + j)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		bf.Forward(bf.MaxBatch())
	})
	if allocs != 0 {
		t.Fatalf("batched forward allocated %.3f times per batch, want 0", allocs)
	}
}

func TestBatchForwardBounds(t *testing.T) {
	m := NewMLP([]int{2, 2}, ActNone, ActNone, 5)
	bf := NewBatchForwarder(m, 2)
	for _, n := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Forward(%d) must panic", n)
				}
			}()
			bf.Forward(n)
		}()
	}
}

// BenchmarkBatchForward measures the batched inference hot path (run
// with -benchmem; the steady state is pinned at 0 allocs by
// TestBatchForwardZeroAlloc).
func BenchmarkBatchForward(b *testing.B) {
	m := NewMLP([]int{16, 64, 64, 8}, ActTanh, ActNone, 6)
	bf := NewBatchForwarder(m, 8)
	for i := 0; i < bf.MaxBatch(); i++ {
		row := bf.In(i)
		for j := range row {
			row[j] = float32(j) * 0.01
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bf.Forward(bf.MaxBatch())
	}
}
