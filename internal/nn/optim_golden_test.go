package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Scalar reference optimizers: the seed's original loops, kept
// verbatim. The golden tests pin the unrolled Step implementations to
// these bit-for-bit, so distributed replicas stay bit-identical across
// the optimization.

type refSGD struct {
	lr, momentum float32
	vel          []float32
}

func (s *refSGD) Step(params, grads []float32) {
	if s.momentum == 0 {
		for i := range params {
			params[i] -= s.lr * grads[i]
		}
		return
	}
	if s.vel == nil {
		s.vel = make([]float32, len(params))
	}
	for i := range params {
		s.vel[i] = s.momentum*s.vel[i] + grads[i]
		params[i] -= s.lr * s.vel[i]
	}
}

type refAdam struct {
	lr, beta1, beta2, eps float32
	m, v                  []float32
	t                     int
}

func (a *refAdam) Step(params, grads []float32) {
	if a.m == nil {
		a.m = make([]float32, len(params))
		a.v = make([]float32, len(params))
	}
	a.t++
	b1c := 1 - float32(math.Pow(float64(a.beta1), float64(a.t)))
	b2c := 1 - float32(math.Pow(float64(a.beta2), float64(a.t)))
	for i := range params {
		g := grads[i]
		a.m[i] = a.beta1*a.m[i] + (1-a.beta1)*g
		a.v[i] = a.beta2*a.v[i] + (1-a.beta2)*g*g
		mHat := a.m[i] / b1c
		vHat := a.v[i] / b2c
		params[i] -= a.lr * mHat / (float32(math.Sqrt(float64(vHat))) + a.eps)
	}
}

// goldenVectors builds params/grads with awkward values (NaN, ±Inf,
// signed zero, denormals) up front and pseudorandom tails.
func goldenVectors(n int, seed int64) (params, grads []float32) {
	specials := []float32{
		float32(math.NaN()), float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.Copysign(0, -1)), 0,
		math.SmallestNonzeroFloat32, -math.SmallestNonzeroFloat32,
	}
	rng := rand.New(rand.NewSource(seed))
	params = make([]float32, n)
	grads = make([]float32, n)
	for i := range params {
		if i < len(specials) {
			grads[i] = specials[i]
		} else {
			grads[i] = (rng.Float32() - 0.5) * 2
		}
		params[i] = rng.Float32() - 0.5
	}
	return params, grads
}

func bitsEqual(t *testing.T, name string, n int, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s len=%d step: element %d = %v (%x), reference %v (%x)",
				name, n, i, got[i], math.Float32bits(got[i]),
				want[i], math.Float32bits(want[i]))
		}
	}
}

func TestSGDStepBitIdenticalToReference(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 64, 367, 1025} {
		for _, mom := range []float32{0, 0.9} {
			opt := NewSGD(0.05, mom)
			ref := &refSGD{lr: 0.05, momentum: mom}
			p1, g := goldenVectors(n, 11)
			p2 := append([]float32(nil), p1...)
			for step := 0; step < 3; step++ {
				opt.Step(p1, g)
				ref.Step(p2, g)
				bitsEqual(t, "SGD", n, p1, p2)
				if mom != 0 {
					bitsEqual(t, "SGD.vel", n, opt.vel, ref.vel)
				}
			}
		}
	}
}

func TestAdamStepBitIdenticalToReference(t *testing.T) {
	for _, n := range []int{0, 1, 3, 4, 7, 64, 367, 1025} {
		opt := NewAdam(1e-3)
		ref := &refAdam{lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8}
		p1, g := goldenVectors(n, 13)
		p2 := append([]float32(nil), p1...)
		for step := 0; step < 3; step++ {
			opt.Step(p1, g)
			ref.Step(p2, g)
			bitsEqual(t, "Adam", n, p1, p2)
			bitsEqual(t, "Adam.m", n, opt.m, ref.m)
			bitsEqual(t, "Adam.v", n, opt.v, ref.v)
		}
	}
}

// TestAdamStepSteadyStateAllocFree pins the zero-alloc expectation on
// the optimizer hot path: after the first call sizes m/v, Step must not
// allocate.
func TestAdamStepSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	opt := NewAdam(1e-3)
	p, g := goldenVectors(1024, 17)
	opt.Step(p, g) // size optimizer state
	if n := testing.AllocsPerRun(50, func() { opt.Step(p, g) }); n != 0 {
		t.Fatalf("Adam.Step steady state allocates %v allocs/op, want 0", n)
	}
}
