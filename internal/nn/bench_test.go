package nn

import "testing"

// benchNet matches the RL agents' 2×64 hidden-layer policy networks.
func benchNet() *MLP { return NewMLP([]int{8, 64, 64, 4}, ActTanh, ActNone, 1) }

func BenchmarkMLPForward(b *testing.B) {
	m := benchNet()
	x := make([]float32, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkMLPForwardBackward(b *testing.B) {
	m := benchNet()
	x := make([]float32, 8)
	dout := make([]float32, 4)
	dout[0] = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
		m.Backward(dout)
	}
}

func BenchmarkAdamStep(b *testing.B) {
	m := benchNet()
	opt := NewAdam(1e-3)
	grads := make([]float32, m.ParamCount())
	for i := range grads {
		grads[i] = 0.01
	}
	opt.Step(m.Params(), grads) // size optimizer state before timing
	b.SetBytes(int64(4 * m.ParamCount()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Step(m.Params(), grads)
	}
}

func BenchmarkParamSetRoundTrip(b *testing.B) {
	n1 := benchNet()
	n2 := NewMLP([]int{8, 64, 64, 1}, ActTanh, ActNone, 2)
	ps := NewParamSet([]*MLP{n1, n2}, []Optimizer{NewAdam(1e-3), NewAdam(1e-3)})
	buf := make([]float32, ps.Len())
	b.SetBytes(int64(4 * ps.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.ReadGrads(buf)
		ps.WriteGrads(buf)
	}
}
