package nn

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Checkpointing: flat-parameter snapshots with a small self-describing
// header, so workers can persist and resume models (and operators can
// ship identical initial weights to a job's workers out of band).
//
// Layout (little-endian):
//
//	magic "ISWC" | version u16 | count u64 | crc32(payload) u32 | payload
//
// where payload is count float32 values.

const (
	ckptMagic   = "ISWC"
	ckptVersion = 1
)

// SaveParams writes a parameter vector as a checkpoint stream.
func SaveParams(w io.Writer, params []float32) error {
	hdr := make([]byte, 4+2+8+4)
	copy(hdr[0:4], ckptMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], ckptVersion)
	binary.LittleEndian.PutUint64(hdr[6:14], uint64(len(params)))

	payload := make([]byte, 4*len(params))
	for i, f := range params {
		binary.LittleEndian.PutUint32(payload[4*i:], math.Float32bits(f))
	}
	binary.LittleEndian.PutUint32(hdr[14:18], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("nn: checkpoint header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("nn: checkpoint payload: %w", err)
	}
	return nil
}

// LoadParams reads a checkpoint stream, validating magic, version,
// length, and checksum.
func LoadParams(r io.Reader) ([]float32, error) {
	hdr := make([]byte, 4+2+8+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("nn: checkpoint header: %w", err)
	}
	if string(hdr[0:4]) != ckptMagic {
		return nil, fmt.Errorf("nn: not a checkpoint (magic %q)", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != ckptVersion {
		return nil, fmt.Errorf("nn: unsupported checkpoint version %d", v)
	}
	count := binary.LittleEndian.Uint64(hdr[6:14])
	const maxParams = 1 << 30 // 4 GiB of float32; far above any RL model
	if count > maxParams {
		return nil, fmt.Errorf("nn: implausible parameter count %d", count)
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[14:18])
	payload := make([]byte, 4*count)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("nn: checkpoint payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("nn: checkpoint corrupt (crc %#x, want %#x)", got, wantCRC)
	}
	params := make([]float32, count)
	for i := range params {
		params[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
	}
	return params, nil
}

// Save writes this network's parameters as a checkpoint.
func (m *MLP) Save(w io.Writer) error { return SaveParams(w, m.params) }

// Load restores parameters from a checkpoint; the vector length must
// match this architecture.
func (m *MLP) Load(r io.Reader) error {
	params, err := LoadParams(r)
	if err != nil {
		return err
	}
	if len(params) != len(m.params) {
		return fmt.Errorf("nn: checkpoint has %d params, network needs %d",
			len(params), len(m.params))
	}
	copy(m.params, params)
	return nil
}

// Save writes the combined parameter vector of all networks.
func (ps *ParamSet) Save(w io.Writer) error {
	buf := make([]float32, ps.Len())
	ps.ReadParams(buf)
	return SaveParams(w, buf)
}

// Load restores the combined parameter vector into all networks.
func (ps *ParamSet) Load(r io.Reader) error {
	params, err := LoadParams(r)
	if err != nil {
		return err
	}
	if len(params) != ps.Len() {
		return fmt.Errorf("nn: checkpoint has %d params, set needs %d", len(params), ps.Len())
	}
	ps.WriteParams(params)
	return nil
}
