// Package nn implements the small neural networks the RL algorithms
// train: multi-layer perceptrons with explicit backward passes, flat
// float32 parameter/gradient storage (the vectors that get packetized
// and aggregated in-switch), and SGD/Adam optimizers.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"iswitch/internal/tensor"
)

// Activation selects a layer nonlinearity.
type Activation int

const (
	// ActNone is the identity (linear output layers).
	ActNone Activation = iota
	// ActReLU is max(0, x).
	ActReLU
	// ActTanh is the hyperbolic tangent.
	ActTanh
)

func (a Activation) apply(z float32) float32 {
	switch a {
	case ActReLU:
		if z < 0 {
			return 0
		}
		return z
	case ActTanh:
		return float32(math.Tanh(float64(z)))
	default:
		return z
	}
}

// derivFromOutput returns dσ/dz expressed via the activation output y.
func (a Activation) derivFromOutput(y float32) float32 {
	switch a {
	case ActReLU:
		if y > 0 {
			return 1
		}
		return 0
	case ActTanh:
		return 1 - y*y
	default:
		return 1
	}
}

// MLP is a fully connected network with one activation on hidden layers
// and an optional activation on the output. All weights and biases live
// in a single contiguous params slice (and gradients in a parallel
// grads slice), so distributing the model is a straight memcpy.
type MLP struct {
	dims   []int
	hidden Activation
	out    Activation

	params []float32
	grads  []float32
	ws     []*tensor.Mat // views into params
	bs     []tensor.Vec
	dws    []*tensor.Mat // views into grads
	dbs    []tensor.Vec

	// Forward caches for the most recent sample.
	acts [][]float32 // acts[0] = input, acts[l+1] = output of layer l
}

// NewMLP builds a network with the given layer dims (dims[0] inputs,
// dims[len-1] outputs), hidden activation, output activation, and
// Xavier-initialized weights from seed.
func NewMLP(dims []int, hidden, out Activation, seed int64) *MLP {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	for _, d := range dims {
		if d < 1 {
			panic(fmt.Sprintf("nn: invalid layer dim %d", d))
		}
	}
	total := 0
	for l := 0; l+1 < len(dims); l++ {
		total += dims[l+1]*dims[l] + dims[l+1]
	}
	m := &MLP{
		dims:   append([]int(nil), dims...),
		hidden: hidden,
		out:    out,
		params: make([]float32, total),
		grads:  make([]float32, total),
	}
	off := 0
	rng := rand.New(rand.NewSource(seed))
	for l := 0; l+1 < len(dims); l++ {
		in, outDim := dims[l], dims[l+1]
		w := tensor.MatFrom(outDim, in, m.params[off:off+outDim*in])
		dw := tensor.MatFrom(outDim, in, m.grads[off:off+outDim*in])
		off += outDim * in
		b := tensor.Vec(m.params[off : off+outDim])
		db := tensor.Vec(m.grads[off : off+outDim])
		off += outDim
		w.XavierInit(rng)
		m.ws = append(m.ws, w)
		m.bs = append(m.bs, b)
		m.dws = append(m.dws, dw)
		m.dbs = append(m.dbs, db)
	}
	m.acts = make([][]float32, len(dims))
	for i, d := range dims {
		m.acts[i] = make([]float32, d)
	}
	return m
}

// InDim and OutDim report the network's interface sizes.
func (m *MLP) InDim() int  { return m.dims[0] }
func (m *MLP) OutDim() int { return m.dims[len(m.dims)-1] }

// ParamCount returns the number of trainable scalars.
func (m *MLP) ParamCount() int { return len(m.params) }

// Params returns the flat parameter storage (a live view).
func (m *MLP) Params() []float32 { return m.params }

// Grads returns the flat gradient storage (a live view).
func (m *MLP) Grads() []float32 { return m.grads }

// ZeroGrads clears accumulated gradients.
func (m *MLP) ZeroGrads() { tensor.Vec(m.grads).Zero() }

// Forward runs one sample through the network, caching activations for
// Backward, and returns the output (a live view; copy to retain).
func (m *MLP) Forward(x []float32) []float32 {
	if len(x) != m.dims[0] {
		panic(fmt.Sprintf("nn: input dim %d, want %d", len(x), m.dims[0]))
	}
	copy(m.acts[0], x)
	for l := range m.ws {
		in := tensor.Vec(m.acts[l])
		z := tensor.Vec(m.acts[l+1])
		m.ws[l].MatVec(z, in)
		z.Add(m.bs[l])
		act := m.hidden
		if l == len(m.ws)-1 {
			act = m.out
		}
		if act != ActNone {
			for i := range z {
				z[i] = act.apply(z[i])
			}
		}
	}
	return m.acts[len(m.acts)-1]
}

// Backward accumulates parameter gradients for the most recent Forward
// given dL/d(output), and returns dL/d(input) as a fresh slice.
func (m *MLP) Backward(dout []float32) []float32 {
	if len(dout) != m.OutDim() {
		panic(fmt.Sprintf("nn: dout dim %d, want %d", len(dout), m.OutDim()))
	}
	delta := append([]float32(nil), dout...)
	for l := len(m.ws) - 1; l >= 0; l-- {
		act := m.hidden
		if l == len(m.ws)-1 {
			act = m.out
		}
		y := m.acts[l+1]
		if act != ActNone {
			for i := range delta {
				delta[i] *= act.derivFromOutput(y[i])
			}
		}
		// dW += delta · xᵀ; db += delta; dx = Wᵀ · delta.
		x := tensor.Vec(m.acts[l])
		m.dws[l].AddOuter(1, delta, x)
		tensor.Vec(m.dbs[l]).Add(delta)
		dx := make([]float32, m.dims[l])
		m.ws[l].MatTVec(dx, delta)
		delta = dx
	}
	return delta
}

// CopyFrom overwrites this network's parameters with src's (target
// network hard update). Architectures must match.
func (m *MLP) CopyFrom(src *MLP) {
	if len(m.params) != len(src.params) {
		panic("nn: CopyFrom architecture mismatch")
	}
	copy(m.params, src.params)
}

// SoftUpdate blends θ ← τ·θ_src + (1−τ)·θ (DDPG-style Polyak target
// update).
func (m *MLP) SoftUpdate(src *MLP, tau float32) {
	if len(m.params) != len(src.params) {
		panic("nn: SoftUpdate architecture mismatch")
	}
	for i := range m.params {
		m.params[i] = tau*src.params[i] + (1-tau)*m.params[i]
	}
}
