package nn

import (
	"fmt"

	"iswitch/internal/tensor"
)

// BatchForwarder runs inference-only forward passes over batches of
// samples with zero steady-state allocation: all per-layer activation
// planes are preallocated for the maximum batch size, and each row runs
// through the same tensor/kernels MatVec dispatch as the single-sample
// path. It shares the MLP's parameters by reference (a live view), so a
// policy updated in place serves the new weights on the next batch, and
// it never touches the MLP's own single-sample activation caches — a
// replica can serve while the owning trainer keeps using Forward/
// Backward on the same network.
type BatchForwarder struct {
	m   *MLP
	max int
	// acts[l] holds max rows of dims[l] activations, row-major.
	// acts[0] is the staging area callers fill via In.
	acts [][]float32
}

// NewBatchForwarder preallocates a forwarder for batches of up to
// maxBatch samples through m.
func NewBatchForwarder(m *MLP, maxBatch int) *BatchForwarder {
	if maxBatch < 1 {
		panic(fmt.Sprintf("nn: batch size %d", maxBatch))
	}
	b := &BatchForwarder{m: m, max: maxBatch, acts: make([][]float32, len(m.dims))}
	for l, d := range m.dims {
		b.acts[l] = make([]float32, maxBatch*d)
	}
	return b
}

// MaxBatch returns the preallocated batch capacity.
func (b *BatchForwarder) MaxBatch() int { return b.max }

// Model returns the served network (a live view).
func (b *BatchForwarder) Model() *MLP { return b.m }

// In returns the staging row for sample i: copy the observation into it
// before calling Forward.
func (b *BatchForwarder) In(i int) []float32 {
	d := b.m.dims[0]
	return b.acts[0][i*d : (i+1)*d]
}

// Out returns sample i's output row from the most recent Forward.
func (b *BatchForwarder) Out(i int) []float32 {
	d := b.m.OutDim()
	last := b.acts[len(b.acts)-1]
	return last[i*d : (i+1)*d]
}

// Forward runs the first n staged samples through the network and
// returns the flat n×OutDim output plane (a live view into the
// forwarder; valid until the next Forward). It allocates nothing.
func (b *BatchForwarder) Forward(n int) []float32 {
	if n < 1 || n > b.max {
		panic(fmt.Sprintf("nn: batch of %d exceeds forwarder capacity %d", n, b.max))
	}
	m := b.m
	for l := range m.ws {
		din, dout := m.dims[l], m.dims[l+1]
		act := m.hidden
		if l == len(m.ws)-1 {
			act = m.out
		}
		in, out := b.acts[l], b.acts[l+1]
		for r := 0; r < n; r++ {
			x := tensor.Vec(in[r*din : (r+1)*din])
			z := tensor.Vec(out[r*dout : (r+1)*dout])
			m.ws[l].MatVec(z, x)
			z.Add(m.bs[l])
			if act != ActNone {
				for i := range z {
					z[i] = act.apply(z[i])
				}
			}
		}
	}
	return b.acts[len(b.acts)-1][:n*m.OutDim()]
}
