package nn

import (
	"fmt"
	"math"

	"iswitch/internal/tensor"
)

// ParamSet groups the networks an agent trains (e.g. DDPG's actor and
// critic) behind one flat view — the gradient vector a worker ships to
// the switch and the weight vector every replica keeps in lockstep.
// Target networks are excluded: they are derived state, not trained
// parameters, and the paper's gradient traffic does not include them.
type ParamSet struct {
	nets  []*MLP
	opts  []Optimizer
	total int
}

// NewParamSet pairs each network with its optimizer.
func NewParamSet(nets []*MLP, opts []Optimizer) *ParamSet {
	if len(nets) != len(opts) {
		panic("nn: nets/opts length mismatch")
	}
	ps := &ParamSet{nets: nets, opts: opts}
	for _, n := range nets {
		ps.total += n.ParamCount()
	}
	return ps
}

// Len returns the combined number of trainable scalars.
func (ps *ParamSet) Len() int { return ps.total }

// ZeroGrads clears every network's gradient accumulator.
func (ps *ParamSet) ZeroGrads() {
	for _, n := range ps.nets {
		n.ZeroGrads()
	}
}

// ReadGrads concatenates all gradients into dst (len must equal Len).
func (ps *ParamSet) ReadGrads(dst []float32) {
	ps.scatterGather(dst, true, false)
}

// WriteGrads splits src back into each network's gradient storage.
func (ps *ParamSet) WriteGrads(src []float32) {
	ps.scatterGather(src, true, true)
}

// ReadParams concatenates all parameters into dst.
func (ps *ParamSet) ReadParams(dst []float32) {
	ps.scatterGather(dst, false, false)
}

// WriteParams overwrites each network's parameters from src.
func (ps *ParamSet) WriteParams(src []float32) {
	ps.scatterGather(src, false, true)
}

func (ps *ParamSet) scatterGather(buf []float32, grads, write bool) {
	if len(buf) != ps.total {
		panic(fmt.Sprintf("nn: buffer len %d, want %d", len(buf), ps.total))
	}
	off := 0
	for _, n := range ps.nets {
		var view []float32
		if grads {
			view = n.Grads()
		} else {
			view = n.Params()
		}
		if write {
			copy(view, buf[off:off+len(view)])
		} else {
			copy(buf[off:off+len(view)], view)
		}
		off += len(view)
	}
}

// Step writes the (already averaged) gradient into the networks and
// applies each network's optimizer.
func (ps *ParamSet) Step(avgGrad []float32) {
	ps.WriteGrads(avgGrad)
	for i, n := range ps.nets {
		ps.opts[i].Step(n.Params(), n.Grads())
	}
}

// ClipEachNorm rescales each network's segment of the flat gradient
// buffer independently so its Euclidean norm is at most c. Separate
// clipping keeps a large critic gradient from drowning out the policy
// gradient when both travel in one aggregated vector.
func (ps *ParamSet) ClipEachNorm(buf []float32, c float32) {
	if len(buf) != ps.total {
		panic(fmt.Sprintf("nn: buffer len %d, want %d", len(buf), ps.total))
	}
	off := 0
	for _, n := range ps.nets {
		seg := buf[off : off+n.ParamCount()]
		var s float64
		for _, x := range seg {
			s += float64(x) * float64(x)
		}
		norm := float32(math.Sqrt(s))
		if norm > c && norm > 0 {
			tensor.Scale(c/norm, seg)
		}
		off += n.ParamCount()
	}
}

// StepLocal applies each optimizer to the gradients currently held in
// the networks (single-node training without aggregation).
func (ps *ParamSet) StepLocal() {
	for i, n := range ps.nets {
		ps.opts[i].Step(n.Params(), n.Grads())
	}
}
