package nn

import (
	"math"

	"iswitch/internal/tensor"
	"iswitch/internal/tensor/kernels"
)

// Optimizer updates a flat parameter vector from a flat gradient
// vector. Implementations are deterministic: in synchronous distributed
// training every worker applies the same aggregated gradient, so every
// replica's parameters stay bit-identical (the decentralized weight
// storage argument of paper §4.1).
//
// Step implementations run on the training hot path: after the first
// call (which sizes optimizer state) they allocate nothing, and the
// fused kernels they dispatch to perform exactly the same per-element
// float32 operations as the straightforward scalar form on every
// backend, keeping replicas bit-identical (enforced by
// optim_golden_test.go and the kernels package's parity fuzz).
type Optimizer interface {
	// Step applies one update in place. len(params) == len(grads).
	Step(params, grads []float32)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
	vel      []float32
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []float32) {
	if s.Momentum == 0 {
		// params[i] -= LR*grads[i] is bit-identical to
		// params[i] += (-LR)*grads[i]: negation is exact and
		// x - y == x + (-y) in IEEE-754.
		tensor.Axpy(-s.LR, params, grads)
		return
	}
	if s.vel == nil {
		s.vel = make([]float32, len(params))
	}
	kernels.SGDMomentum(params, s.vel, grads, s.LR, s.Momentum)
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	m, v                  []float32
	t                     int
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer. The per-step bias corrections are computed
// here; the per-element update is the kernels.AdamStep fused kernel.
func (a *Adam) Step(params, grads []float32) {
	if a.m == nil {
		a.m = make([]float32, len(params))
		a.v = make([]float32, len(params))
	}
	a.t++
	b1c := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	b2c := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	kernels.AdamStep(params, a.m, a.v, grads,
		a.Beta1, a.Beta2, 1-a.Beta1, 1-a.Beta2, b1c, b2c, a.LR, a.Eps)
}
