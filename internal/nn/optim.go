package nn

import (
	"math"

	"iswitch/internal/tensor"
)

// Optimizer updates a flat parameter vector from a flat gradient
// vector. Implementations are deterministic: in synchronous distributed
// training every worker applies the same aggregated gradient, so every
// replica's parameters stay bit-identical (the decentralized weight
// storage argument of paper §4.1).
//
// Step implementations run on the training hot path: after the first
// call (which sizes optimizer state) they allocate nothing, and their
// unrolled loops perform exactly the same per-element float32
// operations as the straightforward scalar form, keeping replicas
// bit-identical (enforced by optim_golden_test.go).
type Optimizer interface {
	// Step applies one update in place. len(params) == len(grads).
	Step(params, grads []float32)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
	vel      []float32
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []float32) {
	if s.Momentum == 0 {
		// params[i] -= LR*grads[i] is bit-identical to
		// params[i] += (-LR)*grads[i]: negation is exact and
		// x - y == x + (-y) in IEEE-754.
		tensor.Axpy(-s.LR, params, grads)
		return
	}
	if s.vel == nil {
		s.vel = make([]float32, len(params))
	}
	mom, lr := s.Momentum, s.LR
	p, g, v := params, grads[:len(params)], s.vel[:len(params)]
	for len(p) >= 4 && len(g) >= 4 && len(v) >= 4 {
		v[0] = mom*v[0] + g[0]
		p[0] -= lr * v[0]
		v[1] = mom*v[1] + g[1]
		p[1] -= lr * v[1]
		v[2] = mom*v[2] + g[2]
		p[2] -= lr * v[2]
		v[3] = mom*v[3] + g[3]
		p[3] -= lr * v[3]
		p, g, v = p[4:], g[4:], v[4:]
	}
	for i := range p {
		v[i] = mom*v[i] + g[i]
		p[i] -= lr * v[i]
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	m, v                  []float32
	t                     int
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// adamElem is one element's Adam update; the unrolled Step body inlines
// it four times per iteration. The expression order matches the scalar
// reference exactly.
func adamElem(p, m, v *float32, g, b1, b2, ob1, ob2, b1c, b2c, lr, eps float32) {
	mi := b1**m + ob1*g
	vi := b2**v + ob2*g*g
	*m, *v = mi, vi
	*p -= lr * (mi / b1c) / (float32(math.Sqrt(float64(vi/b2c))) + eps)
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []float32) {
	if a.m == nil {
		a.m = make([]float32, len(params))
		a.v = make([]float32, len(params))
	}
	a.t++
	b1c := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	b2c := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	b1, b2 := a.Beta1, a.Beta2
	ob1, ob2 := 1-b1, 1-b2
	lr, eps := a.LR, a.Eps
	p, g := params, grads[:len(params)]
	m, v := a.m[:len(params)], a.v[:len(params)]
	for len(p) >= 4 && len(g) >= 4 && len(m) >= 4 && len(v) >= 4 {
		adamElem(&p[0], &m[0], &v[0], g[0], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
		adamElem(&p[1], &m[1], &v[1], g[1], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
		adamElem(&p[2], &m[2], &v[2], g[2], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
		adamElem(&p[3], &m[3], &v[3], g[3], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
		p, g, m, v = p[4:], g[4:], m[4:], v[4:]
	}
	for i := range p {
		adamElem(&p[i], &m[i], &v[i], g[i], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
	}
}
