package nn

import "math"

// Optimizer updates a flat parameter vector from a flat gradient
// vector. Implementations are deterministic: in synchronous distributed
// training every worker applies the same aggregated gradient, so every
// replica's parameters stay bit-identical (the decentralized weight
// storage argument of paper §4.1).
type Optimizer interface {
	// Step applies one update in place. len(params) == len(grads).
	Step(params, grads []float32)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
	vel      []float32
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []float32) {
	if s.Momentum == 0 {
		for i := range params {
			params[i] -= s.LR * grads[i]
		}
		return
	}
	if s.vel == nil {
		s.vel = make([]float32, len(params))
	}
	for i := range params {
		s.vel[i] = s.Momentum*s.vel[i] + grads[i]
		params[i] -= s.LR * s.vel[i]
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float32
	m, v                  []float32
	t                     int
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []float32) {
	if a.m == nil {
		a.m = make([]float32, len(params))
		a.v = make([]float32, len(params))
	}
	a.t++
	b1c := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	b2c := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for i := range params {
		g := grads[i]
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mHat := a.m[i] / b1c
		vHat := a.v[i] / b2c
		params[i] -= a.LR * mHat / (float32(math.Sqrt(float64(vHat))) + a.Eps)
	}
}
