package nn

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	m := NewMLP([]int{4, 16, 2}, ActTanh, ActNone, 7)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewMLP([]int{4, 16, 2}, ActTanh, ActNone, 99) // different init
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	for i := range m.Params() {
		if m.Params()[i] != m2.Params()[i] {
			t.Fatalf("param %d differs after load", i)
		}
	}
}

func TestCheckpointParamSetRoundTrip(t *testing.T) {
	a := NewMLP([]int{2, 3, 1}, ActTanh, ActNone, 1)
	b := NewMLP([]int{3, 2}, ActNone, ActNone, 2)
	ps := NewParamSet([]*MLP{a, b}, []Optimizer{NewSGD(0.1, 0), NewSGD(0.1, 0)})
	var buf bytes.Buffer
	if err := ps.Save(&buf); err != nil {
		t.Fatal(err)
	}
	a2 := NewMLP([]int{2, 3, 1}, ActTanh, ActNone, 8)
	b2 := NewMLP([]int{3, 2}, ActNone, ActNone, 9)
	ps2 := NewParamSet([]*MLP{a2, b2}, []Optimizer{NewSGD(0.1, 0), NewSGD(0.1, 0)})
	if err := ps2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if a.Params()[0] != a2.Params()[0] || b.Params()[1] != b2.Params()[1] {
		t.Fatal("param set not restored")
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	m := NewMLP([]int{2, 2}, ActNone, ActNone, 1)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Corrupt payload → CRC failure.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0xff
	if err := m.Load(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("corrupt payload accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if err := m.Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Wrong architecture.
	other := NewMLP([]int{3, 3}, ActNone, ActNone, 1)
	if err := other.Load(bytes.NewReader(data)); err == nil {
		t.Fatal("architecture mismatch accepted")
	}
	// Truncated stream.
	if err := m.Load(bytes.NewReader(data[:8])); err == nil {
		t.Fatal("truncated header accepted")
	}
	if err := m.Load(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Implausible count.
	huge := append([]byte(nil), data...)
	for i := 6; i < 14; i++ {
		huge[i] = 0xff
	}
	if _, err := LoadParams(bytes.NewReader(huge)); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestCheckpointEmptyVector(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveParams(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := LoadParams(&buf)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty round-trip: %v %v", out, err)
	}
}
