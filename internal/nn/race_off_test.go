//go:build !race

package nn

// raceEnabled reports whether the race detector is active (allocation
// counts are unreliable under -race, so alloc tests skip).
const raceEnabled = false
