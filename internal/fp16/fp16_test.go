package fp16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // max finite half
		{float32(math.Inf(1)), 0x7c00},  // +inf
		{float32(math.Inf(-1)), 0xfc00}, // -inf
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.h {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := ToFloat32(c.h); got != c.f {
			t.Errorf("ToFloat32(%#04x) = %v, want %v", c.h, got, c.f)
		}
	}
}

func TestOverflowToInf(t *testing.T) {
	if got := ToFloat32(FromFloat32(1e6)); !math.IsInf(float64(got), 1) {
		t.Fatalf("1e6 → %v, want +inf (beyond half range)", got)
	}
}

func TestNaNPreserved(t *testing.T) {
	nan := float32(math.NaN())
	got := ToFloat32(FromFloat32(nan))
	if !math.IsNaN(float64(got)) {
		t.Fatalf("NaN → %v", got)
	}
}

func TestSubnormals(t *testing.T) {
	// Smallest positive half subnormal: 2^-24.
	tiny := float32(math.Ldexp(1, -24))
	h := FromFloat32(tiny)
	if h != 0x0001 {
		t.Fatalf("2^-24 → %#04x, want 0x0001", h)
	}
	if got := ToFloat32(h); got != tiny {
		t.Fatalf("round-trip 2^-24 = %v, want %v", got, tiny)
	}
	// Below half's range underflows to zero.
	if got := FromFloat32(float32(math.Ldexp(1, -26))); got != 0 {
		t.Fatalf("2^-26 → %#04x, want 0", got)
	}
}

// Property: every half-precision bit pattern survives the
// half→float32→half round trip (except NaN payload normalization).
func TestHalfRoundTripQuick(t *testing.T) {
	f := func(h uint16) bool {
		if h>>10&0x1f == 0x1f && h&0x3ff != 0 {
			return true // NaN payloads may normalize
		}
		return FromFloat32(ToFloat32(h)) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantization error of in-range values is within half's
// relative precision (2^-11).
func TestQuantizationErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		f := (rng.Float32()*2 - 1) * 100
		q := ToFloat32(FromFloat32(f))
		if f == 0 {
			continue
		}
		rel := math.Abs(float64(q-f)) / math.Abs(float64(f))
		if rel > 1.0/2048+1e-7 {
			t.Fatalf("relative error %v for %v → %v", rel, f, q)
		}
	}
}

func TestPackUnpack(t *testing.T) {
	src := []float32{0, 1, -2.5, 0.333, 1000}
	buf := Pack(src)
	if len(buf) != 2*len(src) {
		t.Fatalf("packed %d bytes", len(buf))
	}
	out := Unpack(buf)
	for i := range src {
		want := ToFloat32(FromFloat32(src[i]))
		if out[i] != want {
			t.Fatalf("elem %d: %v, want %v", i, out[i], want)
		}
	}
}

func TestQuantizeInPlace(t *testing.T) {
	v := []float32{0.1, 0.2, 0.3}
	QuantizeInPlace(v)
	for _, x := range v {
		if FromFloat32(x) != FromFloat32(ToFloat32(FromFloat32(x))) {
			t.Fatalf("not idempotent at %v", x)
		}
	}
}
