// Package fp16 implements IEEE 754 half-precision conversion.
//
// The paper transmits and sums gradients "in a raw float-point format"
// (float32) for efficiency of the in-switch datapath. This package
// exists to quantify that design choice: the fp16 ablation experiment
// measures what halving the wire bytes would save in aggregation time
// and what it would cost in gradient precision (see
// experiments.AblationFP16), and the CompFP16 compression scheme uses
// the same conversion on the live wire.
//
// The conversion and bulk pack/unpack loops live in tensor/kernels
// (F16FromF32 and friends) so they share the backend dispatch table
// with the quantization kernels; this package is the stable façade the
// rest of the tree imports.
package fp16

import "iswitch/internal/tensor/kernels"

// FromFloat32 converts a float32 to its nearest half-precision bit
// pattern (round-to-nearest-even), handling subnormals, infinities and
// NaN.
func FromFloat32(f float32) uint16 { return kernels.F16FromF32(f) }

// ToFloat32 expands a half-precision bit pattern to float32.
func ToFloat32(h uint16) float32 { return kernels.F16ToF32(h) }

// AppendPack appends the packed half-precision encoding of src
// (little-endian, 2 bytes per element) to dst and returns the extended
// slice. With a pre-sized dst it allocates nothing, so hot paths can
// reuse one buffer across rounds: buf = fp16.AppendPack(buf[:0], grads).
func AppendPack(dst []byte, src []float32) []byte {
	return kernels.F16AppendPack(dst, src)
}

// UnpackInto expands packed half-precision bytes into dst, which must
// hold len(src)/2 elements. It allocates nothing.
func UnpackInto(dst []float32, src []byte) {
	if len(dst) != len(src)/2 {
		panic("fp16: UnpackInto length mismatch")
	}
	kernels.F16UnpackInto(dst, src)
}

// Pack converts a float32 vector to packed half-precision bytes
// (little-endian). Allocating form of AppendPack.
func Pack(src []float32) []byte {
	return AppendPack(make([]byte, 0, 2*len(src)), src)
}

// Unpack expands packed half-precision bytes back to float32.
// Allocating form of UnpackInto.
func Unpack(src []byte) []float32 {
	out := make([]float32, len(src)/2)
	UnpackInto(out, src)
	return out
}

// QuantizeInPlace rounds every element of v through half precision —
// what a worker would observe after an fp16 wire round trip.
func QuantizeInPlace(v []float32) { kernels.F16RoundInPlace(v) }
