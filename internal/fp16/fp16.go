// Package fp16 implements IEEE 754 half-precision conversion.
//
// The paper transmits and sums gradients "in a raw float-point format"
// (float32) for efficiency of the in-switch datapath. This package
// exists to quantify that design choice: the fp16 ablation experiment
// measures what halving the wire bytes would save in aggregation time
// and what it would cost in gradient precision (see
// experiments.AblationFP16).
package fp16

import (
	"encoding/binary"
	"math"
)

// FromFloat32 converts a float32 to its nearest half-precision bit
// pattern (round-to-nearest-even), handling subnormals, infinities and
// NaN.
func FromFloat32(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f: // overflow → inf; NaN preserved
		if int32(bits>>23&0xff) == 0xff && mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp <= 0:
		if exp < -10 {
			return sign // underflow to zero
		}
		// Subnormal: shift mantissa (with implicit leading 1).
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half) >> shift
		// Round-to-nearest-even on ties.
		if mant&(half<<1-1) == half && rounded&1 == 1 {
			rounded--
		}
		return sign | uint16(rounded)
	default:
		// Normal: round mantissa from 23 to 10 bits.
		rounded := mant + 0xfff + (mant>>13)&1
		if rounded&0x800000 != 0 {
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7c00
			}
		}
		return sign | uint16(exp)<<10 | uint16(rounded>>13)
	}
}

// ToFloat32 expands a half-precision bit pattern to float32.
func ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)

	switch {
	case exp == 0x1f: // inf / NaN
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// AppendPack appends the packed half-precision encoding of src
// (little-endian, 2 bytes per element) to dst and returns the extended
// slice. With a pre-sized dst it allocates nothing, so hot paths can
// reuse one buffer across rounds: buf = fp16.AppendPack(buf[:0], grads).
// Four halves are assembled into one uint64 word per store.
func AppendPack(dst []byte, src []float32) []byte {
	need := 2 * len(src)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	out := dst[len(dst) : len(dst)+need]
	for len(src) >= 4 {
		w := uint64(FromFloat32(src[0])) |
			uint64(FromFloat32(src[1]))<<16 |
			uint64(FromFloat32(src[2]))<<32 |
			uint64(FromFloat32(src[3]))<<48
		binary.LittleEndian.PutUint64(out, w)
		src, out = src[4:], out[8:]
	}
	for i, f := range src {
		binary.LittleEndian.PutUint16(out[2*i:], FromFloat32(f))
	}
	return dst[:len(dst)+need]
}

// UnpackInto expands packed half-precision bytes into dst, which must
// hold len(src)/2 elements. It allocates nothing; src is consumed four
// halves (one uint64 load) at a time.
func UnpackInto(dst []float32, src []byte) {
	n := len(src) / 2
	if len(dst) != n {
		panic("fp16: UnpackInto length mismatch")
	}
	for len(src) >= 8 {
		w := binary.LittleEndian.Uint64(src)
		dst[0] = ToFloat32(uint16(w))
		dst[1] = ToFloat32(uint16(w >> 16))
		dst[2] = ToFloat32(uint16(w >> 32))
		dst[3] = ToFloat32(uint16(w >> 48))
		dst, src = dst[4:], src[8:]
	}
	for i := range dst {
		dst[i] = ToFloat32(binary.LittleEndian.Uint16(src[2*i:]))
	}
}

// Pack converts a float32 vector to packed half-precision bytes
// (little-endian). Allocating form of AppendPack.
func Pack(src []float32) []byte {
	return AppendPack(make([]byte, 0, 2*len(src)), src)
}

// Unpack expands packed half-precision bytes back to float32.
// Allocating form of UnpackInto.
func Unpack(src []byte) []float32 {
	out := make([]float32, len(src)/2)
	UnpackInto(out, src)
	return out
}

// QuantizeInPlace rounds every element of v through half precision —
// what a worker would observe after an fp16 wire round trip. Four
// elements per iteration; round-tripping is element-independent so the
// results are unchanged.
func QuantizeInPlace(v []float32) {
	for len(v) >= 4 {
		v[0] = ToFloat32(FromFloat32(v[0]))
		v[1] = ToFloat32(FromFloat32(v[1]))
		v[2] = ToFloat32(FromFloat32(v[2]))
		v[3] = ToFloat32(FromFloat32(v[3]))
		v = v[4:]
	}
	for i, f := range v {
		v[i] = ToFloat32(FromFloat32(f))
	}
}
