package fp16

import (
	"math"
	"math/rand"
	"testing"
)

// TestRoundTripExhaustive pins the conversion now hosted in
// tensor/kernels against the full half-precision domain: every one of
// the 65536 bit patterns must survive ToFloat32 → FromFloat32 (NaN
// payloads excepted — they canonicalize to 0x7e00, which must then be
// a fixed point).
func TestRoundTripExhaustive(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		bits := uint16(h)
		f := ToFloat32(bits)
		back := FromFloat32(f)
		if exp, mant := bits>>10&0x1f, bits&0x3ff; exp == 0x1f && mant != 0 {
			want := bits&0x8000 | 0x7e00
			if back != want {
				t.Fatalf("NaN %#04x round-tripped to %#04x, want canonical %#04x", bits, back, want)
			}
			continue
		}
		if back != bits {
			t.Fatalf("%#04x (%v) round-tripped to %#04x", bits, f, back)
		}
	}
}

// TestFromFloat32Reference checks rounding against an independent
// float64-based reference on random float32s: the nearest representable
// half (ties to even) measured in exact float64 arithmetic.
func TestFromFloat32Reference(t *testing.T) {
	refNearest := func(f float32) uint16 {
		f64 := float64(f)
		if math.IsNaN(f64) {
			return uint16(math.Float32bits(f)>>16)&0x8000 | 0x7e00
		}
		sign := uint16(0)
		if math.Signbit(f64) {
			sign = 0x8000
			f64 = -f64
		}
		best, bestErr := uint16(0), math.Inf(1)
		lo, hi := uint16(0), uint16(0x7c00) // scan normals+subnormals+inf
		for h := lo; ; h++ {
			v := float64(ToFloat32(h &^ 0x8000))
			if h == 0x7c00 {
				// IEEE RNE rounds as if the exponent range were
				// unbounded, so infinity competes as the next grid
				// point (65536), not as an infinitely distant value.
				v = 65536
			}
			err := math.Abs(v - f64)
			if err < bestErr || (err == bestErr && h&1 == 0) {
				best, bestErr = h, err
			}
			if h == hi {
				break
			}
		}
		return sign | best
	}
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 300; i++ {
		var f float32
		switch i % 4 {
		case 0:
			f = (rng.Float32() - 0.5) * 4 // normal half range
		case 1:
			f = (rng.Float32() - 0.5) * 1e-4 // subnormal halves
		case 2:
			f = (rng.Float32() - 0.5) * 1e6 // overflow to inf
		default:
			f = (rng.Float32() - 0.5) * 1e-9 // underflow to zero
		}
		if got, want := FromFloat32(f), refNearest(f); got != want {
			t.Fatalf("FromFloat32(%g) = %#04x, want %#04x (%v)", f, got, want, ToFloat32(want))
		}
	}
}
