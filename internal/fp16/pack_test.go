package fp16

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// randomVec mixes ordinary values with the specials the converter has
// explicit branches for.
func randomVec(rng *rand.Rand, n int) []float32 {
	specials := []float32{
		0, float32(math.Copysign(0, -1)),
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		65504, -65504, 1e6, float32(math.Ldexp(1, -24)), float32(math.Ldexp(1, -26)),
	}
	v := make([]float32, n)
	for i := range v {
		if rng.Intn(5) == 0 {
			v[i] = specials[rng.Intn(len(specials))]
		} else {
			v[i] = (rng.Float32()*2 - 1) * 100
		}
	}
	return v
}

// TestAppendPackMatchesScalar pins the 4-wide word-assembly path
// against element-at-a-time FromFloat32 across lengths that cover the
// unrolled body, the tail, and both at once.
func TestAppendPackMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 366, 1025} {
		src := randomVec(rng, n)
		got := AppendPack(nil, src)
		want := make([]byte, 0, 2*n)
		for _, f := range src {
			h := FromFloat32(f)
			want = append(want, byte(h), byte(h>>8))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("n=%d: AppendPack diverges from scalar packing", n)
		}

		// Round trip through UnpackInto must equal the quantized source
		// bit-for-bit (NaN payloads normalize identically on both paths).
		dst := make([]float32, n)
		UnpackInto(dst, got)
		for i := range src {
			want := ToFloat32(FromFloat32(src[i]))
			if math.Float32bits(dst[i]) != math.Float32bits(want) {
				t.Fatalf("n=%d elem %d: %v, want %v", n, i, dst[i], want)
			}
		}
	}
}

func TestAppendPackAppends(t *testing.T) {
	prefix := []byte{0xde, 0xad}
	out := AppendPack(prefix, []float32{1, 2, 3})
	if len(out) != 2+6 || out[0] != 0xde || out[1] != 0xad {
		t.Fatalf("AppendPack clobbered prefix: % x", out)
	}
	if h := uint16(out[2]) | uint16(out[3])<<8; h != FromFloat32(1) {
		t.Fatalf("first packed half = %#04x", h)
	}
}

func TestAppendPackReusesCapacity(t *testing.T) {
	buf := make([]byte, 0, 2048)
	src := randomVec(rand.New(rand.NewSource(13)), 1024)
	out := AppendPack(buf, src)
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendPack reallocated despite sufficient capacity")
	}
	allocs := testing.AllocsPerRun(100, func() {
		out = AppendPack(buf[:0], src)
		UnpackInto(src, out)
	})
	if allocs != 0 {
		t.Fatalf("pack/unpack round trip allocates %v per run, want 0", allocs)
	}
}

func TestUnpackIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UnpackInto length mismatch did not panic")
		}
	}()
	UnpackInto(make([]float32, 3), make([]byte, 8))
}

func BenchmarkAppendPack(b *testing.B) {
	src := randomVec(rand.New(rand.NewSource(17)), 4096)
	dst := make([]byte, 0, 2*len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = AppendPack(dst[:0], src)
	}
}

func BenchmarkUnpackInto(b *testing.B) {
	src := randomVec(rand.New(rand.NewSource(19)), 4096)
	wire := AppendPack(nil, src)
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		UnpackInto(dst, wire)
	}
}

func BenchmarkQuantizeInPlace(b *testing.B) {
	src := randomVec(rand.New(rand.NewSource(23)), 4096)
	v := make([]float32, len(src))
	b.SetBytes(int64(4 * len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(v, src)
		QuantizeInPlace(v)
	}
}
