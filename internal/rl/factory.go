package rl

import (
	"fmt"

	"iswitch/internal/envs"
)

// Workload names match the paper's four benchmarks.
const (
	WorkloadDQN  = "DQN"
	WorkloadA2C  = "A2C"
	WorkloadPPO  = "PPO"
	WorkloadDDPG = "DDPG"
)

// Workloads lists the benchmark names in the paper's order.
func Workloads() []string {
	return []string{WorkloadDQN, WorkloadA2C, WorkloadPPO, WorkloadDDPG}
}

// NewWorkloadAgent builds the stand-in agent for a paper benchmark:
// DQN on GridPong (paper: Atari Pong), A2C on CartPole (paper: Atari
// Qbert), PPO on Pendulum (paper: MuJoCo Hopper), DDPG on PlanarCheetah
// (paper: MuJoCo HalfCheetah). modelSeed must be shared by all workers
// of a job; expSeed must differ per worker.
func NewWorkloadAgent(name string, modelSeed, expSeed int64) (Agent, error) {
	switch name {
	case WorkloadDQN:
		return NewDQN(envs.NewGridPong(expSeed), DefaultDQNConfig(), modelSeed, expSeed), nil
	case WorkloadA2C:
		return NewA2C(envs.NewCartPole(expSeed), DefaultA2CConfig(), modelSeed, expSeed), nil
	case WorkloadPPO:
		return NewPPO(envs.NewPendulum(expSeed), DefaultPPOConfig(), modelSeed, expSeed), nil
	case WorkloadDDPG:
		return NewDDPG(envs.NewPlanarCheetah(expSeed), DefaultDDPGConfig(), modelSeed, expSeed), nil
	default:
		return nil, fmt.Errorf("rl: unknown workload %q", name)
	}
}
