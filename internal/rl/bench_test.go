package rl

import "testing"

// BenchmarkComputeGradient measures one local-gradient-computing
// iteration per algorithm — the LGC stage the paper's LocalCompute
// calibration stands in for.
func BenchmarkComputeGradient(b *testing.B) {
	for _, name := range Workloads() {
		b.Run(name, func(b *testing.B) {
			a, err := NewWorkloadAgent(name, 1, 2)
			if err != nil {
				b.Fatal(err)
			}
			g := make([]float32, a.GradLen())
			// Warm the replay buffers past their learning threshold.
			for i := 0; i < 300; i++ {
				a.ComputeGradient(g)
				a.ApplyAggregated(g, 1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.ComputeGradient(g)
				a.ApplyAggregated(g, 1)
			}
		})
	}
}

// BenchmarkReplaySample measures replay-buffer sampling.
func BenchmarkReplaySample(b *testing.B) {
	r := NewReplay(20000, 1)
	for i := 0; i < 20000; i++ {
		r.Add(Transition{Obs: make([]float32, 8), Next: make([]float32, 8)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Sample(32)
	}
}
