package rl

import (
	"math/rand"

	"iswitch/internal/envs"
	"iswitch/internal/nn"
	"iswitch/internal/tensor"
)

// A2CConfig parameterizes an advantage actor-critic agent (the
// synchronous variant of Mnih et al. 2016, as in OpenAI Baselines).
type A2CConfig struct {
	Hidden      []int
	Gamma       float32
	LR          float32
	ValueLR     float32
	NSteps      int     // rollout length per iteration
	EntropyBeta float32 // entropy-bonus weight
	ValueCoef   float32 // critic loss weight
	GradClip    float32
}

// DefaultA2CConfig returns settings tuned for the stand-in workloads.
func DefaultA2CConfig() A2CConfig {
	return A2CConfig{
		Hidden: []int{64, 64}, Gamma: 0.99, LR: 7e-4, ValueLR: 7e-4,
		NSteps: 8, EntropyBeta: 0.01, ValueCoef: 0.5, GradClip: 5,
	}
}

// A2C is a synchronous advantage actor-critic with separate policy and
// value networks and an entropy bonus.
type A2C struct {
	cfg    A2CConfig
	env    envs.Discrete
	policy *nn.MLP
	value  *nn.MLP
	ps     *nn.ParamSet
	rng    *rand.Rand

	obs   []float32
	track episodeTracker
	grad  []float32
}

// NewA2C builds an A2C agent; modelSeed fixes initial weights across
// workers, expSeed decorrelates exploration.
func NewA2C(env envs.Discrete, cfg A2CConfig, modelSeed, expSeed int64) *A2C {
	pDims := append(append([]int{env.ObsDim()}, cfg.Hidden...), env.NumActions())
	vDims := append(append([]int{env.ObsDim()}, cfg.Hidden...), 1)
	p := nn.NewMLP(pDims, nn.ActTanh, nn.ActNone, modelSeed)
	v := nn.NewMLP(vDims, nn.ActTanh, nn.ActNone, modelSeed+1)
	a := &A2C{
		cfg: cfg, env: env, policy: p, value: v,
		ps: nn.NewParamSet([]*nn.MLP{p, v},
			[]nn.Optimizer{nn.NewAdam(cfg.LR), nn.NewAdam(cfg.ValueLR)}),
		rng: rand.New(rand.NewSource(expSeed)),
	}
	a.grad = make([]float32, a.ps.Len())
	a.obs = env.Reset()
	return a
}

// Name implements Agent.
func (a *A2C) Name() string { return "A2C" }

// GradLen implements Agent.
func (a *A2C) GradLen() int { return a.ps.Len() }

// ReadParams implements Agent.
func (a *A2C) ReadParams(dst []float32) { a.ps.ReadParams(dst) }

// WriteParams implements Agent.
func (a *A2C) WriteParams(src []float32) { a.ps.WriteParams(src) }

// DrainEpisodes implements Agent.
func (a *A2C) DrainEpisodes() []float64 { return a.track.drain() }

// sampleAction draws from the softmax policy.
func (a *A2C) sampleAction(obs []float32) int {
	logits := a.policy.Forward(obs)
	probs := make([]float32, len(logits))
	tensor.Softmax(probs, logits)
	u := a.rng.Float32()
	var cum float32
	for i, p := range probs {
		cum += p
		if u <= cum {
			return i
		}
	}
	return len(probs) - 1
}

// ComputeGradient implements Agent: roll out NSteps with the current
// policy, compute n-step advantages, and accumulate actor and critic
// gradients.
func (a *A2C) ComputeGradient(dst []float32) {
	n := a.cfg.NSteps
	obsBuf := make([][]float32, 0, n)
	acts := make([]int, 0, n)
	rewards := make([]float32, 0, n)
	dones := make([]bool, 0, n)

	for s := 0; s < n; s++ {
		act := a.sampleAction(a.obs)
		next, r, done := a.env.Step(act)
		a.track.add(r, done)
		obsBuf = append(obsBuf, append([]float32(nil), a.obs...))
		acts = append(acts, act)
		rewards = append(rewards, float32(r))
		dones = append(dones, done)
		if done {
			a.obs = a.env.Reset()
		} else {
			a.obs = next
		}
	}
	// Values for GAE: V(s_0..s_{n-1}) plus bootstrap V(s_n).
	values := make([]float32, n+1)
	for i, o := range obsBuf {
		values[i] = a.value.Forward(o)[0]
	}
	values[n] = a.value.Forward(a.obs)[0]
	adv, ret := GAE(rewards, values, dones, a.cfg.Gamma, 1.0) // λ=1: n-step returns

	a.ps.ZeroGrads()
	inv := 1 / float32(n)
	for i := range obsBuf {
		// Actor: ∇(−logπ(a|s)·A) plus entropy bonus.
		logits := a.policy.Forward(obsBuf[i])
		dlogits := make([]float32, len(logits))
		nn.SoftmaxCE(logits, acts[i], adv[i]*inv, dlogits)
		nn.Entropy(logits, a.cfg.EntropyBeta*inv, dlogits)
		a.policy.Backward(dlogits)
		// Critic: MSE toward the n-step return.
		v := a.value.Forward(obsBuf[i])
		dv := []float32{0}
		nn.MSE(v, []float32{ret[i]}, dv)
		dv[0] *= a.cfg.ValueCoef * inv
		a.value.Backward(dv)
	}
	a.ps.ReadGrads(dst)
	a.ps.ClipEachNorm(dst, a.cfg.GradClip)
}

// ApplyAggregated implements Agent.
func (a *A2C) ApplyAggregated(sum []float32, h int) {
	scaleInto(a.grad, sum, h)
	a.ps.Step(a.grad)
}
