package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: with λ=1 and no terminals, GAE's returns equal the plain
// discounted n-step returns with bootstrap, and adv = ret − V.
func TestGAELambdaOneEqualsNStepQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		gamma := 0.9 + rng.Float32()*0.099
		rewards := make([]float32, n)
		values := make([]float32, n+1)
		dones := make([]bool, n)
		for i := range rewards {
			rewards[i] = rng.Float32()*2 - 1
			values[i] = rng.Float32()
		}
		values[n] = rng.Float32()

		adv, ret := GAE(rewards, values, dones, gamma, 1)

		// Reference discounted returns.
		ref := make([]float64, n+1)
		ref[n] = float64(values[n])
		for i := n - 1; i >= 0; i-- {
			ref[i] = float64(rewards[i]) + float64(gamma)*ref[i+1]
		}
		for i := 0; i < n; i++ {
			if math.Abs(ref[i]-float64(ret[i])) > 1e-3 {
				return false
			}
			if math.Abs(float64(adv[i])-(ref[i]-float64(values[i]))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: GAE with λ=0 gives one-step TD errors as advantages.
func TestGAELambdaZeroIsTDErrorQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		gamma := float32(0.95)
		rewards := make([]float32, n)
		values := make([]float32, n+1)
		dones := make([]bool, n)
		for i := range rewards {
			rewards[i] = rng.Float32()
			values[i] = rng.Float32()
			dones[i] = rng.Intn(4) == 0
		}
		values[n] = rng.Float32()
		adv, _ := GAE(rewards, values, dones, gamma, 0)
		for i := 0; i < n; i++ {
			mask := float32(1)
			if dones[i] {
				mask = 0
			}
			td := rewards[i] + gamma*values[i+1]*mask - values[i]
			if math.Abs(float64(adv[i]-td)) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Replay sampling must cover the buffer (uniform with replacement).
func TestReplaySamplingCoverage(t *testing.T) {
	r := NewReplay(50, 3)
	for i := 0; i < 50; i++ {
		r.Add(Transition{ActD: i})
	}
	seen := map[int]int{}
	for _, tr := range r.Sample(5000) {
		seen[tr.ActD]++
	}
	if len(seen) < 45 {
		t.Fatalf("sampling covered only %d of 50 entries", len(seen))
	}
	for a, c := range seen {
		if c > 400 { // expected 100, allow wide slack
			t.Fatalf("entry %d sampled %d times (biased)", a, c)
		}
	}
}

// OU noise must have approximately the configured stationary spread.
func TestOUNoiseStationaryStats(t *testing.T) {
	n := NewOUNoise(1, 0.15, 0.2, 11)
	var sum, sq float64
	const steps = 200000
	for i := 0; i < steps; i++ {
		v := float64(n.Sample()[0])
		sum += v
		sq += v * v
	}
	mean := sum / steps
	sd := math.Sqrt(sq/steps - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Fatalf("OU mean %v, want ~0", mean)
	}
	// Stationary sd of OU with this discretization ≈ σ/√(2θ−θ²) ≈ 0.38.
	want := 0.2 / math.Sqrt(2*0.15-0.15*0.15)
	if math.Abs(sd-want) > 0.1 {
		t.Fatalf("OU sd %v, want ≈ %v", sd, want)
	}
}
