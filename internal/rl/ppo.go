package rl

import (
	"math"
	"math/rand"

	"iswitch/internal/envs"
	"iswitch/internal/nn"
)

// PPOConfig parameterizes a PPO-Clip agent (Schulman et al. 2017) with
// a diagonal-Gaussian policy for continuous control.
type PPOConfig struct {
	Hidden        []int
	Gamma, Lambda float32
	LR, ValueLR   float32
	Horizon       int // rollout length collected before updating
	MinibatchSize int
	Epochs        int
	ClipEps       float32
	EntropyBeta   float32
	GradClip      float32
	InitLogStd    float32
	// RewardScale multiplies rewards before GAE so the critic's targets
	// stay O(1) on tasks with large negative returns (Pendulum's raw
	// returns are ≈ −1500); advantage normalization makes the policy
	// gradient invariant to it.
	RewardScale float32
}

// DefaultPPOConfig returns settings tuned for the stand-in workloads.
func DefaultPPOConfig() PPOConfig {
	return PPOConfig{
		Hidden: []int{64, 64}, Gamma: 0.99, Lambda: 0.95,
		LR: 3e-4, ValueLR: 1e-3, Horizon: 128, MinibatchSize: 32,
		Epochs: 4, ClipEps: 0.2, EntropyBeta: 0.001, GradClip: 5,
		InitLogStd: -0.3, RewardScale: 0.05,
	}
}

// ppoSample is one stored rollout step.
type ppoSample struct {
	obs     []float32
	act     []float32
	oldLogp float32
	adv     float32
	ret     float32
}

// PPO is a clipped-surrogate policy-gradient agent. One training
// iteration (one gradient aggregation) consumes one minibatch of the
// current rollout's epoch schedule; when the schedule is exhausted a
// fresh on-policy rollout is collected — so distributed PPO aggregates
// minibatch gradients exactly as the PS/AllReduce reference designs do.
type PPO struct {
	cfg    PPOConfig
	env    envs.Continuous
	mean   *nn.MLP // obs → action mean (tanh, scaled by env bound)
	logStd *nn.MLP // [1] → per-dim log stddev (input-free parameter head)
	value  *nn.MLP
	ps     *nn.ParamSet
	rng    *rand.Rand

	obs     []float32
	samples []ppoSample
	queue   [][]int // minibatch index batches remaining
	track   episodeTracker
	grad    []float32
	one     []float32
}

// NewPPO builds a PPO agent; modelSeed fixes initial weights, expSeed
// decorrelates exploration.
func NewPPO(env envs.Continuous, cfg PPOConfig, modelSeed, expSeed int64) *PPO {
	mDims := append(append([]int{env.ObsDim()}, cfg.Hidden...), env.ActionDim())
	vDims := append(append([]int{env.ObsDim()}, cfg.Hidden...), 1)
	mean := nn.NewMLP(mDims, nn.ActTanh, nn.ActTanh, modelSeed)
	logStd := nn.NewMLP([]int{1, env.ActionDim()}, nn.ActNone, nn.ActNone, modelSeed+1)
	value := nn.NewMLP(vDims, nn.ActTanh, nn.ActNone, modelSeed+2)
	p := &PPO{
		cfg: cfg, env: env, mean: mean, logStd: logStd, value: value,
		ps: nn.NewParamSet([]*nn.MLP{mean, logStd, value},
			[]nn.Optimizer{nn.NewAdam(cfg.LR), nn.NewAdam(cfg.LR), nn.NewAdam(cfg.ValueLR)}),
		rng: rand.New(rand.NewSource(expSeed)),
		one: []float32{1},
	}
	// Initialize the log-std head so its output is InitLogStd: zero the
	// weight, set the bias.
	for i := range logStd.Params() {
		logStd.Params()[i] = 0
	}
	for i := 0; i < env.ActionDim(); i++ {
		logStd.Params()[env.ActionDim()+i] = cfg.InitLogStd
	}
	p.grad = make([]float32, p.ps.Len())
	p.obs = env.Reset()
	return p
}

// Name implements Agent.
func (p *PPO) Name() string { return "PPO" }

// GradLen implements Agent.
func (p *PPO) GradLen() int { return p.ps.Len() }

// ReadParams implements Agent.
func (p *PPO) ReadParams(dst []float32) { p.ps.ReadParams(dst) }

// WriteParams implements Agent.
func (p *PPO) WriteParams(src []float32) { p.ps.WriteParams(src) }

// DrainEpisodes implements Agent.
func (p *PPO) DrainEpisodes() []float64 { return p.track.drain() }

// policyDist evaluates the Gaussian policy at obs, returning the scaled
// mean and the per-dimension stddevs.
func (p *PPO) policyDist(obs []float32) (mean, std, logStd []float32) {
	bound := float32(p.env.Bound())
	raw := p.mean.Forward(obs)
	mean = make([]float32, len(raw))
	for i, m := range raw {
		mean[i] = m * bound
	}
	logStd = append([]float32(nil), p.logStd.Forward(p.one)...)
	std = make([]float32, len(logStd))
	for i, ls := range logStd {
		// Clamp to keep the policy from collapsing to a deterministic
		// spike (ratio blow-ups) or diverging to pure noise.
		if ls < -2 {
			ls = -2
		} else if ls > 0.5 {
			ls = 0.5
		}
		logStd[i] = ls
		std[i] = float32(math.Exp(float64(ls)))
	}
	return mean, std, logStd
}

// collectRollout gathers Horizon on-policy steps and builds the
// epoch/minibatch schedule.
func (p *PPO) collectRollout() {
	T := p.cfg.Horizon
	p.samples = make([]ppoSample, 0, T)
	rewards := make([]float32, 0, T)
	dones := make([]bool, 0, T)
	values := make([]float32, 0, T+1)

	for t := 0; t < T; t++ {
		mean, std, logStd := p.policyDist(p.obs)
		act := make([]float32, len(mean))
		for i := range act {
			act[i] = mean[i] + std[i]*float32(p.rng.NormFloat64())
		}
		logp := nn.GaussianLogProb(act, mean, logStd, nil, nil)
		values = append(values, p.value.Forward(p.obs)[0])

		next, r, done := p.env.Step(act)
		p.track.add(r, done)
		p.samples = append(p.samples, ppoSample{
			obs: append([]float32(nil), p.obs...), act: act, oldLogp: logp,
		})
		rewards = append(rewards, float32(r)*p.cfg.RewardScale)
		dones = append(dones, done)
		if done {
			p.obs = p.env.Reset()
		} else {
			p.obs = next
		}
	}
	values = append(values, p.value.Forward(p.obs)[0])
	adv, ret := GAE(rewards, values, dones, p.cfg.Gamma, p.cfg.Lambda)
	// Normalize advantages over the rollout.
	var sum, sq float64
	for _, a := range adv {
		sum += float64(a)
	}
	m := sum / float64(len(adv))
	for _, a := range adv {
		d := float64(a) - m
		sq += d * d
	}
	sd := float32(math.Sqrt(sq/float64(len(adv)))) + 1e-6
	for i := range p.samples {
		p.samples[i].adv = (adv[i] - float32(m)) / sd
		p.samples[i].ret = ret[i]
	}
	// Epoch/minibatch schedule.
	p.queue = p.queue[:0]
	for e := 0; e < p.cfg.Epochs; e++ {
		perm := p.rng.Perm(T)
		for i := 0; i < T; i += p.cfg.MinibatchSize {
			end := i + p.cfg.MinibatchSize
			if end > T {
				end = T
			}
			p.queue = append(p.queue, perm[i:end])
		}
	}
}

// ComputeGradient implements Agent: one clipped-surrogate minibatch
// gradient (collecting a fresh rollout when the schedule is empty).
func (p *PPO) ComputeGradient(dst []float32) {
	if len(p.queue) == 0 {
		p.collectRollout()
	}
	batch := p.queue[0]
	p.queue = p.queue[1:]

	p.ps.ZeroGrads()
	bound := float32(p.env.Bound())
	inv := 1 / float32(len(batch))
	for _, idx := range batch {
		s := p.samples[idx]
		mean, _, logStd := p.policyDist(s.obs)
		dMean := make([]float32, len(mean))
		dLogStd := make([]float32, len(mean))
		logp := nn.GaussianLogProb(s.act, mean, logStd, dMean, dLogStd)

		ratio := float32(math.Exp(float64(logp - s.oldLogp)))
		// Clipped surrogate: gradient flows only when the unclipped
		// term is the active minimum.
		var w float32
		lo, hi := 1-p.cfg.ClipEps, 1+p.cfg.ClipEps
		unclipped := ratio * s.adv
		clipped := s.adv * clampRatio(ratio, lo, hi)
		if unclipped <= clipped {
			w = ratio * s.adv // d(ratio·A)/dlogp = ratio·A
		}
		// Loss = −surrogate − β·H; H for a Gaussian is Σ logStd + const.
		for i := range dMean {
			dMean[i] *= -w * inv
			dLogStd[i] = -w*inv*dLogStd[i] - p.cfg.EntropyBeta*inv
		}
		// Chain through the mean scaling a = bound·tanh-out.
		for i := range dMean {
			dMean[i] *= bound
		}
		p.mean.Forward(s.obs) // refresh caches for backward
		p.mean.Backward(dMean)
		p.logStd.Forward(p.one)
		p.logStd.Backward(dLogStd)

		v := p.value.Forward(s.obs)
		dv := []float32{0}
		nn.MSE(v, []float32{s.ret}, dv)
		dv[0] *= inv
		p.value.Backward(dv)
	}
	p.ps.ReadGrads(dst)
	p.ps.ClipEachNorm(dst, p.cfg.GradClip)
}

// ApplyAggregated implements Agent.
func (p *PPO) ApplyAggregated(sum []float32, h int) {
	scaleInto(p.grad, sum, h)
	p.ps.Step(p.grad)
}

func clampRatio(r, lo, hi float32) float32 {
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}
