package rl

import (
	"math"
	"testing"
)

func TestReplayEviction(t *testing.T) {
	r := NewReplay(3, 1)
	for i := 0; i < 5; i++ {
		r.Add(Transition{ActD: i})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	seen := map[int]bool{}
	for _, tr := range r.Sample(100) {
		seen[tr.ActD] = true
	}
	for a := range seen {
		if a < 2 {
			t.Fatalf("evicted transition %d sampled", a)
		}
	}
}

func TestReplaySampleEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewReplay(2, 1).Sample(1)
}

func TestGAEHandComputed(t *testing.T) {
	// Two steps, no terminals, gamma=0.5, lambda=1 → n-step returns.
	rewards := []float32{1, 2}
	values := []float32{0.5, 1, 2}
	dones := []bool{false, false}
	adv, ret := GAE(rewards, values, dones, 0.5, 1)
	// ret[1] = 2 + 0.5*2 = 3; adv[1] = 3 - 1 = 2
	// ret[0] = 1 + 0.5*ret[1] = 2.5; adv[0] = 2.5 - 0.5 = 2
	if math.Abs(float64(ret[1]-3)) > 1e-6 || math.Abs(float64(adv[1]-2)) > 1e-6 {
		t.Fatalf("step1 adv=%v ret=%v", adv[1], ret[1])
	}
	if math.Abs(float64(ret[0]-2.5)) > 1e-6 || math.Abs(float64(adv[0]-2)) > 1e-6 {
		t.Fatalf("step0 adv=%v ret=%v", adv[0], ret[0])
	}
}

func TestGAETerminalMasksBootstrap(t *testing.T) {
	rewards := []float32{1, 1}
	values := []float32{0, 5, 100} // large bootstrap must be masked
	dones := []bool{true, true}
	adv, ret := GAE(rewards, values, dones, 0.99, 0.95)
	if math.Abs(float64(ret[0]-1)) > 1e-6 || math.Abs(float64(ret[1]-1)) > 1e-6 {
		t.Fatalf("terminal returns %v", ret)
	}
	if math.Abs(float64(adv[0]-1)) > 1e-6 {
		t.Fatalf("adv[0] = %v", adv[0])
	}
}

func TestGAELengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GAE([]float32{1}, []float32{1}, []bool{false}, 0.9, 0.9)
}

func TestOUNoiseMeanReverts(t *testing.T) {
	n := NewOUNoise(1, 0.5, 0.0, 7) // zero sigma: pure decay
	n.state[0] = 10
	for i := 0; i < 50; i++ {
		n.Sample()
	}
	if math.Abs(float64(n.state[0])) > 0.1 {
		t.Fatalf("OU did not revert: %v", n.state[0])
	}
	n2 := NewOUNoise(2, 0.15, 0.2, 8)
	s := n2.Sample()
	if len(s) != 2 {
		t.Fatalf("dim = %d", len(s))
	}
	n2.Reset()
	if n2.state[0] != 0 || n2.state[1] != 0 {
		t.Fatal("reset failed")
	}
}

func TestEpisodeTracker(t *testing.T) {
	var tr episodeTracker
	tr.add(1, false)
	tr.add(2, true)
	tr.add(5, true)
	got := tr.drain()
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("drain = %v", got)
	}
	if len(tr.drain()) != 0 {
		t.Fatal("second drain not empty")
	}
}

func TestWorkloadFactory(t *testing.T) {
	for _, name := range Workloads() {
		a, err := NewWorkloadAgent(name, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("agent name %s, want %s", a.Name(), name)
		}
		if a.GradLen() <= 0 {
			t.Fatalf("%s: grad len %d", name, a.GradLen())
		}
	}
	if _, err := NewWorkloadAgent("nope", 1, 2); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// finite checks a gradient for NaN/Inf.
func finite(t *testing.T, name string, g []float32) {
	t.Helper()
	for i, x := range g {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			t.Fatalf("%s: grad[%d] = %v", name, i, x)
		}
	}
}

func TestAgentsProduceFiniteGradients(t *testing.T) {
	for _, name := range Workloads() {
		a, err := NewWorkloadAgent(name, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		g := make([]float32, a.GradLen())
		for it := 0; it < 30; it++ {
			a.ComputeGradient(g)
			finite(t, name, g)
			a.ApplyAggregated(g, 1)
		}
		params := make([]float32, a.GradLen())
		a.ReadParams(params)
		finite(t, name+" params", params)
	}
}

// The paper's decentralized-weight-storage invariant (§4.1): replicas
// with the same initial weights that apply the same aggregated gradient
// stay bit-identical, even with different local experience.
func TestReplicasStayInLockstep(t *testing.T) {
	for _, name := range Workloads() {
		const workers = 3
		agents := make([]Agent, workers)
		for w := range agents {
			a, err := NewWorkloadAgent(name, 42, int64(100+w))
			if err != nil {
				t.Fatal(err)
			}
			agents[w] = a
		}
		gl := agents[0].GradLen()
		sum := make([]float32, gl)
		g := make([]float32, gl)
		for iter := 0; iter < 5; iter++ {
			for i := range sum {
				sum[i] = 0
			}
			for _, a := range agents {
				a.ComputeGradient(g)
				for i := range sum {
					sum[i] += g[i]
				}
			}
			for _, a := range agents {
				a.ApplyAggregated(sum, workers)
			}
			ref := make([]float32, gl)
			cmp := make([]float32, gl)
			agents[0].ReadParams(ref)
			for w := 1; w < workers; w++ {
				agents[w].ReadParams(cmp)
				for i := range ref {
					if ref[i] != cmp[i] {
						t.Fatalf("%s iter %d: worker %d param %d diverged (%v vs %v)",
							name, iter, w, i, cmp[i], ref[i])
					}
				}
			}
		}
	}
}

func TestWriteParamsSyncsReplica(t *testing.T) {
	a, _ := NewWorkloadAgent(WorkloadDQN, 1, 2)
	b, _ := NewWorkloadAgent(WorkloadDQN, 9, 3) // different init
	p := make([]float32, a.GradLen())
	a.ReadParams(p)
	b.WriteParams(p)
	q := make([]float32, b.GradLen())
	b.ReadParams(q)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("WriteParams did not sync")
		}
	}
}

func TestDQNEpsilonAnneals(t *testing.T) {
	d := NewDQN(newTestEnvD(), DefaultDQNConfig(), 1, 2)
	g := make([]float32, d.GradLen())
	start := d.Epsilon()
	for i := 0; i < 500; i++ {
		d.ComputeGradient(g)
	}
	if d.Epsilon() >= start {
		t.Fatalf("epsilon did not anneal: %v → %v", start, d.Epsilon())
	}
}

// avgReturn runs training and reports mean episode reward over a window.
func avgReturn(t *testing.T, a Agent, iters int) (early, late float64) {
	t.Helper()
	g := make([]float32, a.GradLen())
	var rewards []float64
	for i := 0; i < iters; i++ {
		a.ComputeGradient(g)
		a.ApplyAggregated(g, 1)
		rewards = append(rewards, a.DrainEpisodes()...)
	}
	if len(rewards) < 10 {
		t.Fatalf("%s: only %d episodes in %d iters", a.Name(), len(rewards), iters)
	}
	k := len(rewards) / 5
	if k == 0 {
		k = 1
	}
	for _, r := range rewards[:k] {
		early += r
	}
	early /= float64(k)
	for _, r := range rewards[len(rewards)-k:] {
		late += r
	}
	late /= float64(k)
	return early, late
}

func TestA2CLearnsCartPole(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test")
	}
	a, _ := NewWorkloadAgent(WorkloadA2C, 5, 6)
	early, late := avgReturn(t, a, 12000)
	if late < early+50 || late < 150 {
		t.Fatalf("A2C did not learn: early %.1f late %.1f", early, late)
	}
}

func TestDQNLearnsCartPole(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test")
	}
	cfg := DefaultDQNConfig()
	d := NewDQN(newCartPole(7), cfg, 7, 8)
	early, late := avgReturn(t, d, 3000)
	if late < early+20 || late < 60 {
		t.Fatalf("DQN did not learn: early %.1f late %.1f", early, late)
	}
}

func TestPPOLearnsPendulum(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test")
	}
	p, _ := NewWorkloadAgent(WorkloadPPO, 9, 10)
	early, late := avgReturn(t, p, 9000)
	if late < early+100 {
		t.Fatalf("PPO did not improve: early %.1f late %.1f", early, late)
	}
}

func TestDDPGLearnsCheetah(t *testing.T) {
	if testing.Short() {
		t.Skip("learning test")
	}
	d, _ := NewWorkloadAgent(WorkloadDDPG, 11, 12)
	early, late := avgReturn(t, d, 4000)
	if late < early+50 {
		t.Fatalf("DDPG did not improve: early %.1f late %.1f", early, late)
	}
}

func TestDoubleDQNDiffersFromVanilla(t *testing.T) {
	// With identical seeds, Double DQN must eventually choose a
	// different bootstrap value than vanilla DQN, producing diverging
	// gradients — but both stay finite and learn-shaped.
	cfgV := DefaultDQNConfig()
	cfgD := DefaultDQNConfig()
	cfgD.Double = true
	v := NewDQN(newCartPole(31), cfgV, 5, 6)
	d := NewDQN(newCartPole(31), cfgD, 5, 6)
	gv := make([]float32, v.GradLen())
	gd := make([]float32, d.GradLen())
	diverged := false
	for i := 0; i < 400; i++ {
		v.ComputeGradient(gv)
		d.ComputeGradient(gd)
		for j := range gv {
			if gv[j] != gd[j] {
				diverged = true
			}
		}
		v.ApplyAggregated(gv, 1)
		d.ApplyAggregated(gd, 1)
	}
	if !diverged {
		t.Fatal("Double DQN produced identical gradients to vanilla for 400 iterations")
	}
	finite(t, "double-dqn", gd)
}
