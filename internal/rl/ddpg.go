package rl

import (
	"math/rand"

	"iswitch/internal/envs"
	"iswitch/internal/nn"
)

// DDPGConfig parameterizes a DDPG agent (Lillicrap et al. 2015).
type DDPGConfig struct {
	ActorHidden  []int
	CriticHidden []int
	Gamma        float32
	ActorLR      float32
	CriticLR     float32
	Tau          float32 // Polyak target blend
	BatchSize    int
	ReplayCap    int
	WarmupSteps  int
	EnvSteps     int // env steps per training iteration
	OUTheta      float32
	OUSigma      float32
	GradClip     float32
}

// DefaultDDPGConfig returns settings tuned for the stand-in workloads.
func DefaultDDPGConfig() DDPGConfig {
	return DDPGConfig{
		ActorHidden: []int{64, 64}, CriticHidden: []int{64, 64},
		Gamma: 0.99, ActorLR: 1e-4, CriticLR: 1e-3, Tau: 0.005,
		BatchSize: 64, ReplayCap: 50000, WarmupSteps: 500, EnvSteps: 1,
		OUTheta: 0.15, OUSigma: 0.2, GradClip: 5,
	}
}

// DDPG is a deterministic-policy-gradient agent: an actor maps states
// to actions, a critic estimates Q(s, a), and slow-moving target copies
// of both stabilize the TD targets. The actor and critic gradients
// travel as one concatenated vector (the paper's "dual model",
// 157.52 KB for HalfCheetah).
type DDPG struct {
	cfg          DDPGConfig
	env          envs.Continuous
	actor        *nn.MLP
	critic       *nn.MLP
	targetActor  *nn.MLP
	targetCritic *nn.MLP
	ps           *nn.ParamSet
	replay       *Replay
	noise        *OUNoise
	rng          *rand.Rand

	obs      []float32
	envSteps int
	track    episodeTracker
	grad     []float32
	scratch  []float32
}

// NewDDPG builds a DDPG agent; modelSeed fixes initial weights across
// workers, expSeed decorrelates exploration.
func NewDDPG(env envs.Continuous, cfg DDPGConfig, modelSeed, expSeed int64) *DDPG {
	aDims := append(append([]int{env.ObsDim()}, cfg.ActorHidden...), env.ActionDim())
	cDims := append(append([]int{env.ObsDim() + env.ActionDim()}, cfg.CriticHidden...), 1)
	actor := nn.NewMLP(aDims, nn.ActReLU, nn.ActTanh, modelSeed)
	critic := nn.NewMLP(cDims, nn.ActReLU, nn.ActNone, modelSeed+1)
	tActor := nn.NewMLP(aDims, nn.ActReLU, nn.ActTanh, modelSeed)
	tCritic := nn.NewMLP(cDims, nn.ActReLU, nn.ActNone, modelSeed+1)
	tActor.CopyFrom(actor)
	tCritic.CopyFrom(critic)
	d := &DDPG{
		cfg: cfg, env: env,
		actor: actor, critic: critic, targetActor: tActor, targetCritic: tCritic,
		ps: nn.NewParamSet([]*nn.MLP{actor, critic},
			[]nn.Optimizer{nn.NewAdam(cfg.ActorLR), nn.NewAdam(cfg.CriticLR)}),
		replay: NewReplay(cfg.ReplayCap, expSeed),
		noise:  NewOUNoise(env.ActionDim(), cfg.OUTheta, cfg.OUSigma, expSeed+1),
		rng:    rand.New(rand.NewSource(expSeed + 2)),
	}
	d.grad = make([]float32, d.ps.Len())
	d.scratch = make([]float32, env.ObsDim()+env.ActionDim())
	d.obs = env.Reset()
	return d
}

// Name implements Agent.
func (d *DDPG) Name() string { return "DDPG" }

// GradLen implements Agent.
func (d *DDPG) GradLen() int { return d.ps.Len() }

// ReadParams implements Agent.
func (d *DDPG) ReadParams(dst []float32) { d.ps.ReadParams(dst) }

// WriteParams implements Agent: targets re-sync so replicas agree.
func (d *DDPG) WriteParams(src []float32) {
	d.ps.WriteParams(src)
	d.targetActor.CopyFrom(d.actor)
	d.targetCritic.CopyFrom(d.critic)
}

// DrainEpisodes implements Agent.
func (d *DDPG) DrainEpisodes() []float64 { return d.track.drain() }

// policyAction runs the deterministic policy, scaled to env bounds.
func (d *DDPG) policyAction(net *nn.MLP, obs []float32) []float32 {
	raw := net.Forward(obs)
	out := make([]float32, len(raw))
	for i, x := range raw {
		out[i] = x * d.env.Bound()
	}
	return out
}

// ComputeGradient implements Agent.
func (d *DDPG) ComputeGradient(dst []float32) {
	bound := d.env.Bound()
	for s := 0; s < d.cfg.EnvSteps; s++ {
		act := d.policyAction(d.actor, d.obs)
		for i, n := range d.noise.Sample() {
			act[i] = clampA(act[i]+n*bound, -bound, bound)
		}
		next, r, done := d.env.Step(act)
		d.track.add(r, done)
		d.replay.Add(Transition{
			Obs: append([]float32(nil), d.obs...), ActC: act,
			Reward: float32(r), Next: append([]float32(nil), next...), Done: done,
		})
		if done {
			d.obs = d.env.Reset()
			d.noise.Reset()
		} else {
			d.obs = next
		}
		d.envSteps++
	}

	d.ps.ZeroGrads()
	if d.replay.Len() >= d.cfg.WarmupSteps {
		batch := d.replay.Sample(d.cfg.BatchSize)
		inv := 1 / float32(d.cfg.BatchSize)
		for _, tr := range batch {
			// Critic: MSE toward r + γ·Q'(s', μ'(s')).
			y := tr.Reward
			if !tr.Done {
				na := d.policyAction(d.targetActor, tr.Next)
				q := d.targetCritic.Forward(catInto(d.scratch, tr.Next, na))
				y += d.cfg.Gamma * q[0]
			}
			q := d.critic.Forward(catInto(d.scratch, tr.Obs, tr.ActC))
			dq := []float32{0}
			nn.MSE(q, []float32{y}, dq)
			dq[0] *= inv
			d.critic.Backward(dq)
		}
		// Actor: ascend Q(s, μ(s)) — gradient of −Q through the critic
		// into the action input, then through the actor. The critic
		// weight gradients from this pass must not leak into the critic
		// update, so stash and restore them.
		criticGrads := append([]float32(nil), d.critic.Grads()...)
		for _, tr := range batch {
			a := d.policyAction(d.actor, tr.Obs)
			d.critic.Forward(catInto(d.scratch, tr.Obs, a))
			dIn := d.critic.Backward([]float32{-inv})
			dAct := dIn[len(tr.Obs):]
			// Chain through action scaling a = bound·tanh-out.
			for i := range dAct {
				dAct[i] *= bound
			}
			d.actor.Forward(tr.Obs)
			d.actor.Backward(dAct)
		}
		copy(d.critic.Grads(), criticGrads)
	}
	d.ps.ReadGrads(dst)
	d.ps.ClipEachNorm(dst, d.cfg.GradClip)
}

// ApplyAggregated implements Agent: optimizer step plus Polyak target
// updates (identical on every replica).
func (d *DDPG) ApplyAggregated(sum []float32, h int) {
	scaleInto(d.grad, sum, h)
	d.ps.Step(d.grad)
	d.targetActor.SoftUpdate(d.actor, d.cfg.Tau)
	d.targetCritic.SoftUpdate(d.critic, d.cfg.Tau)
}

// catInto concatenates a and b into dst and returns it.
func catInto(dst, a, b []float32) []float32 {
	copy(dst, a)
	copy(dst[len(a):], b)
	return dst[:len(a)+len(b)]
}

func clampA(x, lo, hi float32) float32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
