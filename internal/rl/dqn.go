package rl

import (
	"math/rand"

	"iswitch/internal/envs"
	"iswitch/internal/nn"
	"iswitch/internal/tensor"
)

// DQNConfig parameterizes a DQN agent (Mnih et al. 2013/2015).
type DQNConfig struct {
	Hidden       []int   // hidden layer sizes
	Gamma        float32 // discount
	LR           float32
	BatchSize    int
	ReplayCap    int
	WarmupSteps  int // env steps before learning starts
	EnvSteps     int // env steps per training iteration
	TargetSync   int // iterations between target-network hard updates
	EpsStart     float32
	EpsEnd       float32
	EpsDecayIter int // iterations to anneal epsilon over
	GradClip     float32
	// Double enables Double DQN (van Hasselt et al. 2016): the online
	// network selects the bootstrap action, the target network evaluates
	// it, reducing the max-operator's overestimation bias.
	Double bool
}

// DefaultDQNConfig returns settings tuned for the classic-control
// stand-in environments.
func DefaultDQNConfig() DQNConfig {
	return DQNConfig{
		Hidden: []int{64, 64}, Gamma: 0.99, LR: 1e-3,
		BatchSize: 32, ReplayCap: 20000, WarmupSteps: 200, EnvSteps: 4,
		TargetSync: 200, EpsStart: 1.0, EpsEnd: 0.05, EpsDecayIter: 2000,
		GradClip: 10,
	}
}

// DQN is a deep Q-learning agent with experience replay, a target
// network, and ε-greedy exploration.
type DQN struct {
	cfg    DQNConfig
	env    envs.Discrete
	q      *nn.MLP
	target *nn.MLP
	ps     *nn.ParamSet
	replay *Replay
	rng    *rand.Rand

	obs      []float32
	iter     int
	envSteps int
	eps      float32
	track    episodeTracker
	grad     []float32 // scratch for ApplyAggregated
}

// NewDQN builds a DQN agent. modelSeed determines the initial weights —
// every worker in a synchronous job must share it. expSeed decorrelates
// exploration across workers.
func NewDQN(env envs.Discrete, cfg DQNConfig, modelSeed, expSeed int64) *DQN {
	dims := append(append([]int{env.ObsDim()}, cfg.Hidden...), env.NumActions())
	q := nn.NewMLP(dims, nn.ActReLU, nn.ActNone, modelSeed)
	target := nn.NewMLP(dims, nn.ActReLU, nn.ActNone, modelSeed)
	target.CopyFrom(q)
	d := &DQN{
		cfg: cfg, env: env, q: q, target: target,
		ps:     nn.NewParamSet([]*nn.MLP{q}, []nn.Optimizer{nn.NewAdam(cfg.LR)}),
		replay: NewReplay(cfg.ReplayCap, expSeed),
		rng:    rand.New(rand.NewSource(expSeed + 1)),
		eps:    cfg.EpsStart,
	}
	d.grad = make([]float32, d.ps.Len())
	d.obs = env.Reset()
	return d
}

// Name implements Agent.
func (d *DQN) Name() string { return "DQN" }

// GradLen implements Agent.
func (d *DQN) GradLen() int { return d.ps.Len() }

// ReadParams implements Agent.
func (d *DQN) ReadParams(dst []float32) { d.ps.ReadParams(dst) }

// WriteParams implements Agent. The target network follows so replicas
// stay consistent.
func (d *DQN) WriteParams(src []float32) {
	d.ps.WriteParams(src)
	d.target.CopyFrom(d.q)
}

// DrainEpisodes implements Agent.
func (d *DQN) DrainEpisodes() []float64 { return d.track.drain() }

// Epsilon reports the current exploration rate (for tests).
func (d *DQN) Epsilon() float32 { return d.eps }

func (d *DQN) act(obs []float32) int {
	if d.rng.Float32() < d.eps {
		return d.rng.Intn(d.env.NumActions())
	}
	return tensor.Vec(d.q.Forward(obs)).ArgMax()
}

// ComputeGradient implements Agent: act in the environment for
// cfg.EnvSteps steps, then compute a replay-batch TD gradient.
func (d *DQN) ComputeGradient(dst []float32) {
	for s := 0; s < d.cfg.EnvSteps; s++ {
		a := d.act(d.obs)
		next, r, done := d.env.Step(a)
		d.track.add(r, done)
		d.replay.Add(Transition{
			Obs: append([]float32(nil), d.obs...), ActD: a,
			Reward: float32(r), Next: append([]float32(nil), next...), Done: done,
		})
		if done {
			d.obs = d.env.Reset()
		} else {
			d.obs = next
		}
		d.envSteps++
	}
	d.iter++
	// Anneal epsilon linearly over EpsDecayIter iterations.
	if d.iter < d.cfg.EpsDecayIter {
		frac := float32(d.iter) / float32(d.cfg.EpsDecayIter)
		d.eps = d.cfg.EpsStart + frac*(d.cfg.EpsEnd-d.cfg.EpsStart)
	} else {
		d.eps = d.cfg.EpsEnd
	}

	d.ps.ZeroGrads()
	if d.replay.Len() >= d.cfg.WarmupSteps {
		batch := d.replay.Sample(d.cfg.BatchSize)
		for _, tr := range batch {
			// TD target: r + γ·max_a' Q_target(s', a') (0 on terminal);
			// Double DQN picks a' with the online net instead.
			y := tr.Reward
			if !tr.Done {
				if d.cfg.Double {
					aStar := tensor.Vec(d.q.Forward(tr.Next)).ArgMax()
					y += d.cfg.Gamma * d.target.Forward(tr.Next)[aStar]
				} else {
					tq := d.target.Forward(tr.Next)
					y += d.cfg.Gamma * tensor.Vec(tq).Max()
				}
			}
			qv := d.q.Forward(tr.Obs)
			dout := make([]float32, len(qv))
			pred := []float32{qv[tr.ActD]}
			dsel := []float32{0}
			nn.Huber(pred, []float32{y}, dsel, 1)
			dout[tr.ActD] = dsel[0] / float32(d.cfg.BatchSize)
			d.q.Backward(dout)
		}
	}
	d.ps.ReadGrads(dst)
	tensor.Vec(dst).ClipNorm(d.cfg.GradClip)
	if d.iter%d.cfg.TargetSync == 0 {
		d.target.CopyFrom(d.q)
	}
}

// ApplyAggregated implements Agent.
func (d *DQN) ApplyAggregated(sum []float32, h int) {
	scaleInto(d.grad, sum, h)
	d.ps.Step(d.grad)
}
