package rl

import "iswitch/internal/envs"

// newTestEnvD returns a small discrete env for fast unit tests.
func newTestEnvD() envs.Discrete { return envs.NewGridPong(99) }

// newCartPole returns a seeded CartPole.
func newCartPole(seed int64) envs.Discrete { return envs.NewCartPole(seed) }
