// Package rl provides the reinforcement-learning algorithms the paper
// trains — DQN, A2C, PPO, DDPG — behind one Agent interface shaped for
// distributed training: each iteration a worker computes a flat local
// gradient (Local Gradient Computing), the gradients are aggregated
// elsewhere (parameter server, AllReduce ring, or in-switch), and the
// averaged gradient is applied to the local weight replica (Local
// Weight Update).
package rl

import (
	"math/rand"
)

// Agent is one worker's training logic.
//
// Invariant relied on by synchronous distributed training: two agents
// constructed with the same model seed hold identical parameters, and
// applying the same aggregated gradient keeps them identical — the
// paper's decentralized-weight-storage argument (§4.1).
type Agent interface {
	// Name identifies the algorithm.
	Name() string
	// GradLen is the flat gradient length in float32 elements.
	GradLen() int
	// ComputeGradient performs one iteration of local gradient
	// computing — environment interaction, experience handling, and the
	// backward pass — and writes the flat gradient into dst.
	ComputeGradient(dst []float32)
	// ApplyAggregated applies one optimizer step using the element-wise
	// sum of h workers' gradients (the switch's aggregate). The agent
	// divides by h, matching Algorithm 1's w ← w − γ·g_sum/H.
	ApplyAggregated(sum []float32, h int)
	// ReadParams copies the flat parameter vector into dst.
	ReadParams(dst []float32)
	// WriteParams overwrites the parameters from src (initial sync).
	WriteParams(src []float32)
	// DrainEpisodes returns the rewards of episodes completed since the
	// last call.
	DrainEpisodes() []float64
}

// Transition is one replay-buffer entry. Discrete algorithms use ActD;
// continuous ones use ActC.
type Transition struct {
	Obs    []float32
	ActD   int
	ActC   []float32
	Reward float32
	Next   []float32
	Done   bool
}

// Replay is a fixed-capacity ring-buffer experience replay.
type Replay struct {
	buf  []Transition
	next int
	full bool
	rng  *rand.Rand
}

// NewReplay creates a replay buffer holding up to capacity transitions.
func NewReplay(capacity int, seed int64) *Replay {
	if capacity < 1 {
		panic("rl: replay capacity must be >= 1")
	}
	return &Replay{buf: make([]Transition, 0, capacity), rng: rand.New(rand.NewSource(seed))}
}

// Add appends a transition, evicting the oldest once full.
func (r *Replay) Add(t Transition) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, t)
		return
	}
	r.full = true
	r.buf[r.next] = t
	r.next = (r.next + 1) % cap(r.buf)
}

// Len reports the number of stored transitions.
func (r *Replay) Len() int { return len(r.buf) }

// Sample draws n transitions uniformly with replacement.
func (r *Replay) Sample(n int) []Transition {
	if len(r.buf) == 0 {
		panic("rl: sampling from empty replay")
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[r.rng.Intn(len(r.buf))]
	}
	return out
}

// GAE computes generalized advantage estimates and discounted returns
// for a rollout. values has len(rewards)+1 entries (bootstrap last);
// dones[i] marks terminal transitions (no bootstrap across them).
func GAE(rewards []float32, values []float32, dones []bool, gamma, lambda float32) (adv, ret []float32) {
	n := len(rewards)
	if len(values) != n+1 || len(dones) != n {
		panic("rl: GAE input length mismatch")
	}
	adv = make([]float32, n)
	ret = make([]float32, n)
	var lastAdv float32
	for i := n - 1; i >= 0; i-- {
		mask := float32(1)
		if dones[i] {
			mask = 0
		}
		delta := rewards[i] + gamma*values[i+1]*mask - values[i]
		lastAdv = delta + gamma*lambda*mask*lastAdv
		adv[i] = lastAdv
		ret[i] = adv[i] + values[i]
	}
	return adv, ret
}

// OUNoise is an Ornstein-Uhlenbeck process, the temporally correlated
// exploration noise DDPG uses on continuous actions.
type OUNoise struct {
	theta, sigma, mu float32
	state            []float32
	rng              *rand.Rand
}

// NewOUNoise creates an OU process of dimension dim.
func NewOUNoise(dim int, theta, sigma float32, seed int64) *OUNoise {
	return &OUNoise{theta: theta, sigma: sigma,
		state: make([]float32, dim), rng: rand.New(rand.NewSource(seed))}
}

// Reset returns the process to its mean.
func (o *OUNoise) Reset() {
	for i := range o.state {
		o.state[i] = o.mu
	}
}

// Sample advances the process one step and returns the noise vector
// (a live view; copy to retain).
func (o *OUNoise) Sample() []float32 {
	for i := range o.state {
		o.state[i] += o.theta*(o.mu-o.state[i]) + o.sigma*float32(o.rng.NormFloat64())
	}
	return o.state
}

// episodeTracker accumulates per-episode rewards for DrainEpisodes.
type episodeTracker struct {
	cur  float64
	done []float64
}

func (e *episodeTracker) add(r float64, done bool) {
	e.cur += r
	if done {
		e.done = append(e.done, e.cur)
		e.cur = 0
	}
}

func (e *episodeTracker) drain() []float64 {
	out := e.done
	e.done = nil
	return out
}

// scaleInto writes src/h into dst.
func scaleInto(dst, src []float32, h int) {
	inv := 1 / float32(h)
	for i := range src {
		dst[i] = src[i] * inv
	}
}
