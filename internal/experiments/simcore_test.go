package experiments

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"iswitch/internal/sim"
)

// TestExperimentsSchedulerDifferential runs unmodified experiment code
// on both schedulers and requires byte-identical report text — the
// end-to-end leg of the calendar-queue equivalence proof (the sim
// package's differential suite pins kernel semantics; this pins that
// nothing above the kernel observes the swap either). The subset spans
// the three simulation styles: host-model sync training (figure4,
// figure8), in-switch aggregation sweeps (ablation-h), and the
// multi-tenant fabric scheduler (job-sweep).
func TestExperimentsSchedulerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments twice")
	}
	ids := []string{"figure4", "figure8", "ablation-h", "job-sweep"}
	defer sim.UseHeapScheduler(false)
	for _, id := range ids {
		spec, ok := ByID(id, QuickCurveOpts())
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		sim.UseHeapScheduler(false)
		cal := spec.Run().Text
		sim.UseHeapScheduler(true)
		heap := spec.Run().Text
		if cal != heap {
			t.Errorf("%s: calendar and heap schedulers disagree\ncalendar:\n%s\nheap:\n%s",
				id, cal, heap)
		}
	}
}

// TestRenderSimCore pins the report layout without paying for a real
// measurement.
func TestRenderSimCore(t *testing.T) {
	d := SimCoreData{
		Hold: []SimCoreHoldRow{{
			QueueSize: 16384,
			Heap:      sim.HoldResult{EventsPerSec: 1e6, AllocsPerEvent: 1.0},
			Cal:       sim.HoldResult{EventsPerSec: 5.5e6, AllocsPerEvent: 0.0},
			Speedup:   5.5,
		}},
		FatTree: SimCoreFatTree{
			K: 8, HostsPerEdge: 32, Hosts: 1024, Jobs: 64,
			Makespan: 42 * time.Millisecond, Wall: 60 * time.Millisecond,
			Events: 1_000_000, EventsPerSec: 16.7e6,
		},
	}
	text := renderSimCore(d).Text
	for _, want := range []string{"16384", "5.50x", "k=8", "1024 workers", "64 sync jobs"} {
		if !strings.Contains(text, want) {
			t.Fatalf("simcore report missing %q:\n%s", want, text)
		}
	}
}

// --- BENCH_simcore.json ------------------------------------------------

type simCoreHoldJSON struct {
	QueueSize          int     `json:"queue_size"`
	HeapEventsPerSec   float64 `json:"heap_events_per_sec"`
	HeapAllocsPerEvent float64 `json:"heap_allocs_per_event"`
	CalEventsPerSec    float64 `json:"cal_events_per_sec"`
	CalAllocsPerEvent  float64 `json:"cal_allocs_per_event"`
	Speedup            float64 `json:"speedup"`
}

type simCoreFatTreeJSON struct {
	K            int     `json:"k"`
	HostsPerEdge int     `json:"hosts_per_edge"`
	Hosts        int     `json:"hosts"`
	Jobs         int     `json:"jobs"`
	MakespanMs   float64 `json:"makespan_ms"`
	WallMs       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type simCoreDoc struct {
	GOARCH  string             `json:"goarch"`
	NumCPU  int                `json:"num_cpu"`
	Hold    []simCoreHoldJSON  `json:"hold"`
	FatTree simCoreFatTreeJSON `json:"fattree"`
}

func simCoreToDoc(d SimCoreData) simCoreDoc {
	doc := simCoreDoc{GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	for _, r := range d.Hold {
		doc.Hold = append(doc.Hold, simCoreHoldJSON{
			QueueSize:          r.QueueSize,
			HeapEventsPerSec:   r.Heap.EventsPerSec,
			HeapAllocsPerEvent: r.Heap.AllocsPerEvent,
			CalEventsPerSec:    r.Cal.EventsPerSec,
			CalAllocsPerEvent:  r.Cal.AllocsPerEvent,
			Speedup:            r.Speedup,
		})
	}
	ft := d.FatTree
	doc.FatTree = simCoreFatTreeJSON{
		K: ft.K, HostsPerEdge: ft.HostsPerEdge, Hosts: ft.Hosts, Jobs: ft.Jobs,
		MakespanMs:   float64(ft.Makespan) / 1e6,
		WallMs:       float64(ft.Wall.Nanoseconds()) / 1e6,
		Events:       ft.Events,
		EventsPerSec: ft.EventsPerSec,
	}
	return doc
}

// TestWriteSimCoreJSON records the scheduler baseline to the file named
// by BENCH_SIMCORE_JSON (skipped when unset, so a plain `go test ./...`
// never writes files). CI uses:
//
//	BENCH_SIMCORE_JSON=BENCH_simcore.json go test -run WriteSimCoreJSON ./internal/experiments
func TestWriteSimCoreJSON(t *testing.T) {
	out := os.Getenv("BENCH_SIMCORE_JSON")
	if out == "" {
		t.Skip("BENCH_SIMCORE_JSON not set")
	}
	data, err := json.MarshalIndent(simCoreToDoc(RunSimCore()), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestSimCoreRegression is the CI bench smoke: re-measure the hold
// model and fail if the calendar queue's advantage over the heap fell
// more than 20% below the committed BENCH_simcore.json baseline, or if
// event pooling started allocating. Comparing speedup ratios (not raw
// events/sec) keeps the gate portable across CI hardware. Gated on
// BENCH_SIMCORE_CHECK because wall-clock ratios are too noisy to sit in
// every local `go test ./...` run.
func TestSimCoreRegression(t *testing.T) {
	if os.Getenv("BENCH_SIMCORE_CHECK") == "" {
		t.Skip("BENCH_SIMCORE_CHECK not set")
	}
	raw, err := os.ReadFile("../../BENCH_simcore.json")
	if err != nil {
		t.Fatalf("baseline missing (regenerate with BENCH_SIMCORE_JSON): %v", err)
	}
	var base simCoreDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("corrupt baseline: %v", err)
	}
	for _, b := range base.Hold {
		row := simCoreHold(b.QueueSize, simCoreHoldEvents)
		if row.Cal.AllocsPerEvent > 0.1 {
			t.Errorf("queue %d: calendar path allocates %.3f/event, want <= 0.1 (pooling regression)",
				b.QueueSize, row.Cal.AllocsPerEvent)
		}
		if floor := 0.8 * b.Speedup; row.Speedup < floor {
			t.Errorf("queue %d: calendar/heap speedup %.2fx fell below 80%% of the %.2fx baseline",
				b.QueueSize, row.Speedup, b.Speedup)
		} else {
			t.Logf("queue %d: %.2fx (baseline %.2fx)", b.QueueSize, row.Speedup, b.Speedup)
		}
	}
}
