package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// Shard-count sweep for the sharded parameter-server baseline: how far
// does partitioning the model across S server hosts close the gap to
// in-switch aggregation? S=1 is bit-identical to the single-server
// baseline (the equivalence the core tests pin down), so the first
// column doubles as a cross-check against Table 4/5.

// shardSweepCounts is the sweep grid.
func shardSweepCounts() []int { return []int{1, 2, 4, 8} }

// shardSweepWorkloads picks the extremes: DQN (largest model, sync
// bottleneck dominated by the server link) and PPO (smallest model,
// dominated by per-message software cost).
func shardSweepWorkloads() []perfmodel.Workload {
	var out []perfmodel.Workload
	for _, w := range perfmodel.Workloads() {
		if w.Name == "DQN" || w.Name == "PPO" {
			out = append(out, w)
		}
	}
	return out
}

// simSyncShardedPS runs the synchronous sharded-PS timing simulation.
func simSyncShardedPS(w perfmodel.Workload, nWorkers, shards, iters int) *core.RunStats {
	k := sim.NewKernel()
	defer k.Shutdown()
	cfg := core.PSConfigFor(w)
	c := core.Build(k, core.ClusterSpec{
		Topology: core.TopoStar, Mode: core.ModeShardedPS,
		Workers: nWorkers, Shards: shards,
		ModelFloats: w.Floats(), Link: netsim.TenGbE(), PS: &cfg,
	}).Sharded
	agents := make([]rl.Agent, nWorkers)
	services := make([]core.Service, nWorkers)
	for i := range agents {
		agents[i] = core.NewSyntheticAgent(w.Floats())
		services[i] = c.Client(i)
	}
	return core.RunSync(k, agents, services, core.SyncConfig{
		Iterations:   iters,
		LocalCompute: w.LocalCompute,
		WeightUpdate: w.WeightUpdate,
	})
}

// simAsyncShardedPS runs the asynchronous sharded-PS timing simulation.
func simAsyncShardedPS(w perfmodel.Workload, nWorkers, shards int, updates, staleness int64) *core.AsyncStats {
	k := sim.NewKernel()
	defer k.Shutdown()
	cfg := core.PSConfigFor(w)
	c := core.Build(k, core.ClusterSpec{
		Topology: core.TopoStar, Mode: core.ModeAsyncShardedPS,
		Workers: nWorkers, Shards: shards,
		ModelFloats: w.Floats(), Link: netsim.TenGbE(), PS: &cfg,
	}).Sharded
	agents := make([]rl.Agent, nWorkers)
	for i := range agents {
		agents[i] = core.NewSyntheticAgent(w.Floats())
	}
	return core.RunAsyncShardedPS(k, agents, core.NewSyntheticAgent(w.Floats()), c, core.AsyncConfig{
		Updates: updates, StalenessBound: staleness,
		LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate,
	})
}

// ShardSweepRow is one workload's shard-count sweep.
type ShardSweepRow struct {
	Workload perfmodel.Workload
	Shards   []int
	// SyncPerIter and AsyncPerIter map shard count -> per-iteration /
	// per-update round time.
	SyncPerIter  map[int]time.Duration
	AsyncPerIter map[int]time.Duration
	// AsyncStaleness maps shard count -> mean committed staleness.
	AsyncStaleness map[int]float64
}

// shardSweepRows runs the sweep grid (4 workers; async: 40 updates at
// staleness bound 3), one pooled cell per workload × shard count ×
// mode. The experiment text and the monotonicity regression test both
// consume these rows.
func shardSweepRows() []ShardSweepRow {
	ws := shardSweepWorkloads()
	counts := shardSweepCounts()
	type cell struct {
		sync  *core.RunStats
		async *core.AsyncStats
	}
	cells := parMap(len(ws)*len(counts), func(i int) cell {
		w, s := ws[i/len(counts)], counts[i%len(counts)]
		return cell{
			sync:  simSyncShardedPS(w, 4, s, 2),
			async: simAsyncShardedPS(w, 4, s, 40, 3),
		}
	})
	var rows []ShardSweepRow
	for wi, w := range ws {
		row := ShardSweepRow{Workload: w, Shards: counts,
			SyncPerIter:    map[int]time.Duration{},
			AsyncPerIter:   map[int]time.Duration{},
			AsyncStaleness: map[int]float64{}}
		for si, s := range counts {
			c := cells[wi*len(counts)+si]
			row.SyncPerIter[s] = c.sync.MeanIter()
			row.AsyncPerIter[s] = asyncPerIter(c.async)
			row.AsyncStaleness[s] = c.async.MeanStaleness()
		}
		rows = append(rows, row)
	}
	return rows
}

// ShardSweep runs and renders the sharded-PS shard-count sweep table.
func ShardSweep() Result { return renderShardSweep(shardSweepRows()) }

// renderShardSweep formats sweep rows (split from the runs so tests can
// render the same rows they assert on without a second sweep).
func renderShardSweep(rows []ShardSweepRow) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded parameter server, 4 workers, 10GbE star (ms/iteration).\n")
	fmt.Fprintf(&b, "S=1 is the single-server PS baseline (bit-identical by construction).\n\n")
	fmt.Fprintf(&b, "%-9s %-7s", "Workload", "Mode")
	for _, s := range shardSweepCounts() {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("S=%d", s))
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-9s %-7s", row.Workload.Name, "sync")
		for _, s := range row.Shards {
			fmt.Fprintf(&b, " %9s", ms(row.SyncPerIter[s]))
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "%-9s %-7s", "", "async")
		for _, s := range row.Shards {
			fmt.Fprintf(&b, " %9s", ms(row.AsyncPerIter[s]))
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "%-9s %-7s", "", "stale")
		for _, s := range row.Shards {
			fmt.Fprintf(&b, " %9.2f", row.AsyncStaleness[s])
		}
		b.WriteString("\n")
	}
	return Result{ID: "shard-sweep",
		Title: "Sharded parameter-server shard-count sweep", Text: b.String()}
}
