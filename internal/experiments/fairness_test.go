package experiments

import (
	"math"
	"testing"
)

// The isolation claim, gated: with the adversary flooding, weighted-fair
// admission plus egress policing holds every compliant tenant inside
// fixed floors — Jain fairness, round-time inflation, and egress share
// all bounded regardless of what the adversary offers. The raw cell
// proves the adversary actually bites without enforcement, so the fair
// cell's floors are not vacuously met.
func TestFairnessIsolationGates(t *testing.T) {
	off, raw, fair := FairnessCells()

	// The adversary must genuinely hurt without enforcement, or the
	// isolation gates below test nothing.
	if raw.RoundMs["c"] < 2*off.RoundMs["c"] {
		t.Errorf("raw cell: adversary barely hurts (c round %.3f ms vs %.3f ms unimpeded)",
			raw.RoundMs["c"], off.RoundMs["c"])
	}

	// Floor 1: compliant Jain fairness with the adversary active.
	if fair.CompliantJain < fairJainMin {
		t.Errorf("fair cell: compliant Jain = %.3f, want >= %.2f",
			fair.CompliantJain, fairJainMin)
	}

	// Floor 2: compliant round time within a fixed factor of the
	// unimpeded baseline.
	if fair.RoundMs["c"] > fairRoundCap*off.RoundMs["c"] {
		t.Errorf("fair cell: c round %.3f ms exceeds %.1fx the unimpeded %.3f ms",
			fair.RoundMs["c"], fairRoundCap, off.RoundMs["c"])
	}

	// Floor 3: egress shares track weights. The two identical rack-0
	// tenants split their uplink evenly, and the adversary's uplink
	// throughput is clamped to its weight share of the line (half of
	// the rack-1 uplink, both tenants weight 1) plus its amortized
	// bucket burst — within the share tolerance.
	if math.Abs(fair.Rack0Share-0.5) > fairShareTol {
		t.Errorf("fair cell: rack-0 share a:b = %.3f, want 0.5 +/- %.2f",
			fair.Rack0Share, fairShareTol)
	}
	advRes := fair.Results[len(fair.Results)-1]
	if !advRes.Adversary {
		t.Fatal("fair cell: last result is not the adversary")
	}
	window := (advRes.Finished - advRes.Started).Seconds()
	if window <= 0 {
		t.Fatal("fair cell: adversary has no active window")
	}
	burstBits := float64(2*fairFloats*4) * 8
	advCap := 0.5*fairUplinkBps*(1+fairShareTol) + burstBits/window
	if got := fair.UplinkTputBps["adv"]; got > advCap {
		t.Errorf("fair cell: adversary uplink %.3f Gb/s exceeds entitlement cap %.3f Gb/s",
			got/1e9, advCap/1e9)
	}

	// Floor 4: enforcement never taxes a compliant tenant — the
	// policers drop adversary frames only.
	if fair.CompliantPoliced != 0 {
		t.Errorf("fair cell: %d compliant frames policed, want 0", fair.CompliantPoliced)
	}
	if fair.AdvPoliced == 0 {
		t.Error("fair cell: adversary never policed — enforcement inactive")
	}

	// Compliant tenants keep (at least most of) their unimpeded
	// throughput: the adversary cannot push c's achieved uplink rate
	// below 90% of the off cell's.
	if got, want := fair.UplinkTputBps["c"], off.UplinkTputBps["c"]; got < 0.9*want {
		t.Errorf("fair cell: c uplink %.3f Gb/s, want >= 90%% of unimpeded %.3f Gb/s",
			got/1e9, want/1e9)
	}
}
