package experiments

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestTable1ContainsPaperNumbers(t *testing.T) {
	text := Table1().Text
	for _, want := range []string{"6.41 MB", "3.31 MB", "40.02 KB", "157.52 KB",
		"200.00M", "2.00M", "0.15M", "2.50M"} {
		if !strings.Contains(text, want) {
			t.Errorf("table1 missing %q:\n%s", want, text)
		}
	}
}

func TestTable2ListsAllActions(t *testing.T) {
	text := Table2().Text
	for _, a := range []string{"Join", "Leave", "Reset", "SetH", "FBcast", "Help", "Halt", "Ack"} {
		if !strings.Contains(text, a) {
			t.Errorf("table2 missing %s", a)
		}
	}
}

func TestFigure5ShowsFormats(t *testing.T) {
	text := Figure5().Text
	if !strings.Contains(text, "Seg[8]") || !strings.Contains(text, "Action[1]") {
		t.Fatalf("figure5 malformed:\n%s", text)
	}
	if !strings.Contains(text, "366 float32") {
		t.Fatalf("figure5 missing packet capacity:\n%s", text)
	}
}

func TestFigure7DatapathNumbers(t *testing.T) {
	text := Figure7().Text
	if !strings.Contains(text, "256 bits/cycle (8 float32 adders") {
		t.Fatalf("figure7 wrong datapath:\n%s", text)
	}
	if !strings.Contains(text, "200 MHz") {
		t.Fatalf("figure7 wrong clock:\n%s", text)
	}
}

func TestFigure4AggregationDominates(t *testing.T) {
	text := Figure4().Text
	re := regexp.MustCompile(`aggregation share: ([0-9.]+)% – ([0-9.]+)%`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("figure4 missing share summary:\n%s", text)
	}
	lo, _ := strconv.ParseFloat(m[1], 64)
	hi, _ := strconv.ParseFloat(m[2], 64)
	// The paper reports 49.9–83.2%; require the same regime.
	if lo < 30 || hi > 95 || hi < 60 {
		t.Fatalf("aggregation share %v–%v%% out of the paper's regime", lo, hi)
	}
}

func TestFigure8OnTheFlyWins(t *testing.T) {
	text := Figure8().Text
	if !strings.Contains(text, "x") {
		t.Fatalf("figure8 missing saving column:\n%s", text)
	}
	// Every row's saving factor must exceed 1 (on-the-fly is faster).
	re := regexp.MustCompile(`([0-9.]+)x`)
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		f, _ := strconv.ParseFloat(m[1], 64)
		if f <= 1 {
			t.Fatalf("on-the-fly saving %v <= 1:\n%s", f, text)
		}
	}
}

// Table 3 is the headline claim: verify the directions.
func TestTable3SpeedupDirections(t *testing.T) {
	text := Table3().Text
	lines := strings.Split(text, "\n")
	get := func(prefix string) []float64 {
		for _, l := range lines {
			if strings.HasPrefix(l, prefix) {
				fs := strings.Fields(l)
				var out []float64
				for _, f := range fs[len(fs)-4:] {
					v, err := strconv.ParseFloat(f, 64)
					if err != nil {
						t.Fatalf("bad speedup %q in %q", f, l)
					}
					out = append(out, v)
				}
				return out
			}
		}
		t.Fatalf("row %q missing:\n%s", prefix, text)
		return nil
	}
	syncAR := get("Sync  AR")
	syncISW := get("Sync  iSW")
	asyncISW := get("Async iSW")

	// iSwitch beats the PS baseline everywhere, by a healthy factor on
	// the big models.
	for i, v := range syncISW {
		if v <= 1.2 {
			t.Errorf("sync iSW speedup[%d] = %v, want > 1.2", i, v)
		}
	}
	if syncISW[0] < 2.5 { // DQN
		t.Errorf("sync iSW DQN speedup %v, paper 3.66", syncISW[0])
	}
	// AllReduce helps the large models (DQN, A2C)...
	if syncAR[0] <= 1 || syncAR[1] <= 1 {
		t.Errorf("sync AR should beat PS on large models: %v", syncAR)
	}
	// ...but not the small ones (PPO, DDPG) — the crossover.
	if syncAR[2] >= 1 || syncAR[3] >= 1 {
		t.Errorf("sync AR should lose to PS on small models: %v", syncAR)
	}
	// Async iSwitch wins end-to-end on every benchmark.
	for i, v := range asyncISW {
		if v <= 1 {
			t.Errorf("async iSW speedup[%d] = %v, want > 1", i, v)
		}
	}
}

func TestFigure12NormalizedAgainstPS(t *testing.T) {
	text := Figure12().Text
	if !strings.Contains(text, "PS   norm 1.00") {
		t.Fatalf("figure12 PS not normalized to 1:\n%s", text)
	}
	for _, bench := range []string{"DQN", "A2C", "PPO", "DDPG"} {
		if !strings.Contains(text, bench+":") {
			t.Fatalf("figure12 missing %s", bench)
		}
	}
}

func TestTable5StalenessDirection(t *testing.T) {
	rows := asyncRows()
	for _, r := range rows {
		if r.Staleness[StratISW] > r.Staleness[StratPS]+0.5 {
			t.Errorf("%s: iSW staleness %v should not exceed PS %v",
				r.Workload.Name, r.Staleness[StratISW], r.Staleness[StratPS])
		}
	}
}

func TestFigure15Shapes(t *testing.T) {
	text := Figure15().Text
	// Parse the last column (12 nodes) of each strategy row per section.
	re := regexp.MustCompile(`(?m)^\s+(PS|AR|iSW)\s+([0-9. ]+)$`)
	section := 0
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		fields := strings.Fields(m[2])
		last, _ := strconv.ParseFloat(fields[len(fields)-1], 64)
		first, _ := strconv.ParseFloat(fields[0], 64)
		if first != 1.00 {
			t.Errorf("section %d %s: 4-node speedup %v != 1", section, m[1], first)
		}
		if m[1] == "iSW" && last < 1.8 {
			t.Errorf("iSW 12-node speedup %v too low (near-linear expected):\n%s", last, text)
		}
		if m[1] == "AR" && last > 2.5 {
			t.Errorf("AR 12-node speedup %v should degrade:\n%s", last, text)
		}
	}
	if !strings.Contains(text, "Ideal") {
		t.Fatalf("figure15 missing ideal line")
	}
}

func TestAblationStaleness(t *testing.T) {
	text := AblationStaleness().Text
	if !strings.Contains(text, "S=3 is the paper's setting") {
		t.Fatalf("staleness ablation malformed:\n%s", text)
	}
}

func TestAblationH(t *testing.T) {
	text := AblationH().Text
	for _, h := range []string{"1 ", "2 ", "4 "} {
		if !strings.Contains(text, "\n"+h) {
			t.Fatalf("H ablation missing row %q:\n%s", h, text)
		}
	}
}

func TestAblationHierarchical(t *testing.T) {
	text := AblationHierarchical().Text
	for _, want := range []string{"flat single iSwitch", "two-level", "three-tier"} {
		if !strings.Contains(text, want) {
			t.Fatalf("hierarchical ablation missing %q:\n%s", want, text)
		}
	}
}

func TestAblationMTUMonotone(t *testing.T) {
	text := AblationMTU().Text
	re := regexp.MustCompile(`(?m)^(\d+)\s+([0-9.]+)`)
	var aggs []float64
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		v, _ := strconv.ParseFloat(m[2], 64)
		aggs = append(aggs, v)
	}
	if len(aggs) != 4 {
		t.Fatalf("MTU ablation rows = %d:\n%s", len(aggs), text)
	}
	// Full MTU (first row) must be fastest.
	for _, v := range aggs[1:] {
		if v < aggs[0] {
			t.Fatalf("smaller packets were faster (%v < %v):\n%s", v, aggs[0], text)
		}
	}
}

func TestAblationFP16(t *testing.T) {
	text := AblationFP16().Text
	if !strings.Contains(text, "relative error") {
		t.Fatalf("fp16 ablation missing fidelity result:\n%s", text)
	}
	// The DQN (largest-model) row must show a saving above 1.5x, the
	// PPO (smallest) row little benefit.
	re := regexp.MustCompile(`(?m)^(DQN|PPO)\s+\S+\s+\S+\s+([0-9.]+)x`)
	found := map[string]float64{}
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		v, _ := strconv.ParseFloat(m[2], 64)
		found[m[1]] = v
	}
	if found["DQN"] < 1.5 {
		t.Errorf("DQN fp16 saving %v, want > 1.5x:\n%s", found["DQN"], text)
	}
	if found["PPO"] > 1.3 {
		t.Errorf("PPO fp16 saving %v should be marginal:\n%s", found["PPO"], text)
	}
}

func TestRegistryComplete(t *testing.T) {
	specs := Specs(QuickCurveOpts())
	want := []string{"table1", "table2", "table3", "table4", "table5",
		"figure4", "figure5", "figure7", "figure8", "figure12",
		"figure13", "figure14", "figure15"}
	have := map[string]bool{}
	for _, s := range specs {
		have[s.ID] = true
		if s.Run == nil || s.Title == "" {
			t.Errorf("spec %s incomplete", s.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("registry missing %s", id)
		}
	}
	if _, ok := ByID("table4", QuickCurveOpts()); !ok {
		t.Error("ByID failed")
	}
	if _, ok := ByID("nope", QuickCurveOpts()); ok {
		t.Error("ByID found nonexistent id")
	}
}

func TestCurveExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("functional training")
	}
	opts := QuickCurveOpts()
	f13 := Figure13(opts)
	if !strings.Contains(f13.Text, "iSW time") || !strings.Contains(f13.Text, "sooner") {
		t.Fatalf("figure13 malformed:\n%s", f13.Text)
	}
	f14 := Figure14(opts)
	if !strings.Contains(f14.Text, "staleness") {
		t.Fatalf("figure14 malformed:\n%s", f14.Text)
	}
}
