package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/serve"
)

// Inference-serving experiment (beyond the paper): the trained-policy
// fleet the ROADMAP's production story needs. Two sections:
//
//  1. Latency vs offered load on a star fleet, walked geometrically
//     until saturation (p99 through the SLO or goodput collapse) — the
//     run_until_saturation shape.
//  2. Training co-residency on a multi-tenant tree: inference and a
//     wire-bound gradient job share one oversubscribed ToR↔root link,
//     FIFO vs WeightedFair + egress policing (serve.RunCoResidency).
//
// Both sections are deterministic (isolated kernels, fixed seeds).

const (
	serveSweepReplicas   = 3
	serveSweepGenerators = 2
	serveSweepStartRate  = 50_000
	serveSweepGrowth     = 2.0
	serveSweepMaxSteps   = 8
	serveSweepSLO        = 400 * time.Microsecond
	serveSweepFloor      = 0.85
	serveSeed            = 1
	// serveFairP99Cap is the isolation claim the CI gate enforces:
	// under weighted-fair + policing, compliant inference p99 stays
	// within this factor of the unimpeded cell while training runs
	// (measured ~1.6x; FIFO shows ~4x).
	serveFairP99Cap = 2.5
	// serveFIFOP99Floor is the contention floor: the FIFO cell must
	// show at least this much p99 inflation, or there is nothing to
	// isolate.
	serveFIFOP99Floor = 2.0
)

// ServeData bundles both sections for rendering and the JSON baseline.
type ServeData struct {
	Curve []serve.SweepPoint
	CoRes serve.CoResResult
}

// RunServe produces the serving dataset (sweep cells in parallel with
// the co-residency cells; all kernels isolated).
func RunServe() ServeData {
	parts := parMap(2, func(i int) ServeData {
		if i == 0 {
			return ServeData{Curve: RunServeSweep()}
		}
		return ServeData{CoRes: serve.RunCoResidency(serve.CoResConfig{Seed: serveSeed})}
	})
	return ServeData{Curve: parts[0].Curve, CoRes: parts[1].CoRes}
}

// RunServeSweep walks the star fleet to saturation.
func RunServeSweep() []serve.SweepPoint {
	base := serve.StarConfig{
		Replicas:   serveSweepReplicas,
		Generators: serveSweepGenerators,
		Seed:       serveSeed,
		Gen:        serve.GenConfig{Arrival: serve.ArrivalPoisson, Select: serve.SelectLeastOutstanding},
	}
	return serve.RunUntilSaturation(base, serve.SweepConfig{
		Start: serveSweepStartRate, Growth: serveSweepGrowth,
		MaxSteps: serveSweepMaxSteps, P99SLO: serveSweepSLO,
		GoodputFloor: serveSweepFloor,
	})
}

// Serve runs and renders the inference-serving experiment.
func Serve() Result { return renderServe(RunServe()) }

func renderServe(d ServeData) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "Inference fleet: %d replicas, %d open-loop Poisson generators\n",
		serveSweepReplicas, serveSweepGenerators)
	fmt.Fprintf(&b, "(least-outstanding selection), batched policy forward passes\n")
	fmt.Fprintf(&b, "(adaptive window). Arrival rate x%.0f per step until p99 > %v\n",
		serveSweepGrowth, serveSweepSLO)
	fmt.Fprintf(&b, "or goodput < %.0f%% of offered.\n\n", 100*serveSweepFloor)
	fmt.Fprintf(&b, "%10s %10s %9s %9s %9s %6s %6s %s\n",
		"offered/s", "achieved/s", "p50(us)", "p99(us)", "max(us)", "occ", "batch", "")
	for _, pt := range d.Curve {
		note := ""
		if pt.Saturated {
			note = "<- saturated (" + pt.Reason + ")"
		}
		fmt.Fprintf(&b, "%10.0f %10.0f %9.1f %9.1f %9.1f %6.2f %6d %s\n",
			pt.M.Offered, pt.M.Achieved,
			us(pt.M.P50), us(pt.M.P99), us(pt.M.Max),
			pt.M.Occupancy, pt.M.MaxBatch, note)
	}

	cfg := d.CoRes.Cfg
	fmt.Fprintf(&b, "\nTraining co-residency: 3 racks of 4 on a %.1f Gb/s ToR-root link;\n",
		cfg.UplinkBps/1e9)
	fmt.Fprintf(&b, "a 6-worker sync job (%d KB wire-bound gradients) straddles the\n",
		cfg.TrainFloats*4/1024)
	fmt.Fprintf(&b, "replica rack while %0.0fk req/s of inference crosses the same link.\n\n",
		cfg.Rate/1e3)
	fmt.Fprintf(&b, "%-5s %9s %9s %9s %12s %9s %9s\n",
		"cell", "p50(us)", "p99(us)", "max(us)", "train(ms)", "policedT", "policedS")
	for _, c := range []serve.CoResCell{d.CoRes.Off, d.CoRes.FIFO, d.CoRes.Fair} {
		train := "-"
		if c.TrainRound > 0 {
			train = fmt.Sprintf("%.3f", float64(c.TrainRound)/1e6)
		}
		fmt.Fprintf(&b, "%-5s %9.1f %9.1f %9.1f %12s %9d %9d\n",
			c.Label, us(c.Serve.P50), us(c.Serve.P99), us(c.Serve.Max),
			train, c.TrainPoliced, c.ServePoliced)
	}
	off, fifo, fair := d.CoRes.Off, d.CoRes.FIFO, d.CoRes.Fair
	fmt.Fprintf(&b, "\nfifo: each training round parks a full gradient burst in the shared\n")
	fmt.Fprintf(&b, "port FIFO and inference p99 inflates %.1fx over the unimpeded cell;\n",
		ratio(fifo.Serve.P99, off.Serve.P99))
	fmt.Fprintf(&b, "fair: egress policing caps the backlog at the token burst, holding\n")
	fmt.Fprintf(&b, "p99 to %.1fx (gate: <= %.1fx, zero inference frames policed or lost).\n",
		ratio(fair.Serve.P99, off.Serve.P99), serveFairP99Cap)
	fmt.Fprintf(&b, "The refused training frames ride the Help/shadow recovery path:\n")
	fmt.Fprintf(&b, "training still completes, paying %.1fx round inflation — the measured\n",
		ratio(fair.TrainRound, fifo.TrainRound))
	fmt.Fprintf(&b, "price of latency isolation.\n")
	return Result{ID: "serve",
		Title: "Inference serving: saturation sweep + training co-residency", Text: b.String()}
}

func us(d time.Duration) float64 { return float64(d) / 1e3 }

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
