package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/perfmodel"
)

// stageBreakdown converts a simulated iteration into the Figure 4 /
// Figure 12 stage percentages.
type stageBreakdown struct {
	names  []string
	shares []float64 // fractions of the iteration
	total  time.Duration
}

func breakdownFor(w perfmodel.Workload, compute, agg, update, total time.Duration) stageBreakdown {
	cs := w.ComputeShares
	frac := func(share float64) float64 {
		return share * float64(compute) / float64(total)
	}
	return stageBreakdown{
		names: perfmodel.StageNames(),
		shares: []float64{
			frac(cs.AgentAction), frac(cs.EnvReact), frac(cs.BufferSampling),
			frac(cs.MemAlloc), frac(cs.ForwardPass), frac(cs.BackwardPass),
			frac(cs.GPUCopy),
			float64(update) / float64(total),
			float64(agg) / float64(total),
			frac(cs.Others),
		},
		total: total,
	}
}

func (sb stageBreakdown) aggPercent() float64 { return sb.shares[8] * 100 }

func (sb stageBreakdown) render(b *strings.Builder, label string) {
	fmt.Fprintf(b, "  %-8s total %8s ms |", label, ms(sb.total))
	for i, name := range sb.names {
		fmt.Fprintf(b, " %s %4.1f%%", abbrevStage(name), sb.shares[i]*100)
	}
	b.WriteByte('\n')
}

func abbrevStage(name string) string {
	switch name {
	case "Agent Action":
		return "Act"
	case "Environ React":
		return "Env"
	case "Buffer Sampling":
		return "Buf"
	case "Memory Alloc":
		return "Mem"
	case "Forward Pass":
		return "Fwd"
	case "Backward Pass":
		return "Bwd"
	case "GPU Copy":
		return "Cpy"
	case "Weight Update":
		return "Upd"
	case "Grad Aggregation":
		return "Agg"
	case "Others":
		return "Oth"
	}
	return name
}

// Figure4 reproduces the per-iteration breakdown of PS and AllReduce
// training: gradient aggregation must occupy roughly 49.9–83.2% of each
// iteration across the four benchmarks.
func Figure4() Result {
	var b strings.Builder
	lo, hi := 100.0, 0.0
	strats := []string{StratPS, StratAR}
	ws := perfmodel.Workloads()
	cells := parMap(len(strats)*len(ws), func(i int) *core.RunStats {
		return simSync(ws[i%len(ws)], strats[i/len(ws)], 4, 0, 3)
	})
	for si, strategy := range strats {
		fmt.Fprintf(&b, "(%s)\n", strategy)
		for wi, w := range ws {
			stats := cells[si*len(ws)+wi]
			sb := breakdownFor(w, w.LocalCompute, stats.MeanAgg(), w.WeightUpdate, stats.MeanIter())
			sb.render(&b, w.Name)
			if p := sb.aggPercent(); p < lo {
				lo = p
			} else if p > hi {
				hi = p
			}
			if p := sb.aggPercent(); p > hi {
				hi = p
			}
		}
	}
	fmt.Fprintf(&b, "gradient aggregation share: %.1f%% – %.1f%% (paper: 49.9%% – 83.2%%)\n", lo, hi)
	return Result{ID: "figure4", Title: "Performance breakdown of each iteration (PS, AllReduce)", Text: b.String()}
}

// Figure12 reproduces the synchronous per-iteration comparison with
// breakdown: for each benchmark, PS/AR/iSW per-iteration times
// normalized to PS.
func Figure12() Result {
	var b strings.Builder
	ws := perfmodel.Workloads()
	strats := SyncStrategies()
	cells := parMap(len(ws)*len(strats), func(i int) *core.RunStats {
		return simSync(ws[i/len(strats)], strats[i%len(strats)], 4, 0, 3)
	})
	for wi, w := range ws {
		fmt.Fprintf(&b, "%s:\n", w.Name)
		var psIter time.Duration
		for si, strategy := range strats {
			stats := cells[wi*len(strats)+si]
			if strategy == StratPS {
				psIter = stats.MeanIter()
			}
			sb := breakdownFor(w, w.LocalCompute, stats.MeanAgg(), w.WeightUpdate, stats.MeanIter())
			norm := float64(stats.MeanIter()) / float64(psIter)
			fmt.Fprintf(&b, "  %-4s norm %.2f |", strategy, norm)
			fmt.Fprintf(&b, " iter %8s ms, agg %8s ms (%4.1f%%)\n",
				ms(stats.MeanIter()), ms(stats.MeanAgg()), sb.aggPercent())
		}
	}
	b.WriteString("(normalized against PS per benchmark, as in the paper's Figure 12)\n")
	return Result{ID: "figure12", Title: "Per-iteration time of synchronous approaches with breakdown", Text: b.String()}
}
