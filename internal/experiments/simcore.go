package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/multijob"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/sim"
)

// Simulation-core benchmark: the calendar-queue scheduler against the
// reference binary heap on the hold model (the standard DES scheduler
// workload — pop the earliest event, push a replacement a random
// increment ahead), plus the rack-scale capacity probe the rework was
// sized for: a k=8 fat-tree carrying 1024 workers across 64 concurrent
// jobs. The same measurements feed `iswitch-bench -simcore` and the
// BENCH_simcore.json regression baseline.

// simCoreQueueSizes is the steady-state hold-model grid. 16384 is the
// motivating regime — the event population of the 1024-worker fat-tree
// — where the heap's O(log n) comparisons and per-event allocation
// dominate; the small sizes document that the calendar queue does not
// regress cache-resident workloads.
func simCoreQueueSizes() []int { return []int{64, 1024, 16384} }

// simCoreHoldEvents is the number of holds measured per cell — enough
// for the steady state to dominate priming even at the 16384 queue
// size, small enough that the whole grid stays in tier-1 test time.
const simCoreHoldEvents = 1_000_000

// SimCoreHoldRow is one queue size's heap-vs-calendar measurement.
type SimCoreHoldRow struct {
	QueueSize int
	Heap, Cal sim.HoldResult
	// Speedup is calendar events/sec over heap events/sec.
	Speedup float64
}

// SimCoreFatTree is the rack-scale scenario measurement: virtual
// makespan and real wall clock for 64 concurrent 16-worker jobs on a
// k=8 fat-tree (1024 hosts, every host busy).
type SimCoreFatTree struct {
	K, HostsPerEdge, Hosts, Jobs int

	Makespan     time.Duration // virtual time
	Wall         time.Duration // wall clock
	Events       uint64
	EventsPerSec float64
}

// SimCoreData aggregates everything the simcore report and JSON
// baseline record.
type SimCoreData struct {
	Hold    []SimCoreHoldRow
	FatTree SimCoreFatTree
}

// simCoreHold measures one hold-model cell on both schedulers.
func simCoreHold(queueSize, events int) SimCoreHoldRow {
	row := SimCoreHoldRow{QueueSize: queueSize}
	row.Heap = sim.RunHold(sim.NewHeapKernel(), queueSize, events, 7)
	row.Cal = sim.RunHold(sim.NewKernel(), queueSize, events, 7)
	if row.Heap.EventsPerSec > 0 {
		row.Speedup = row.Cal.EventsPerSec / row.Heap.EventsPerSec
	}
	return row
}

// simCoreFatTreeSpecs builds the 64-job load: 16 sync workers each,
// cycling the paper workloads with small model overrides so the
// scenario measures scheduler capacity, not gradient arithmetic.
func simCoreFatTreeSpecs(jobs int) []multijob.JobSpec {
	wls := perfmodel.Workloads()
	specs := make([]multijob.JobSpec, jobs)
	for i := range specs {
		wl := wls[i%len(wls)]
		specs[i] = multijob.JobSpec{
			Name:     fmt.Sprintf("%s/%02d", wl.Name, i),
			Workload: wl, Workers: 16, Mode: multijob.ModeSync,
			Iterations: 2, ModelFloats: 400,
		}
	}
	return specs
}

// simCoreFatTree runs the 1024-worker scenario once and reports its
// cost. Panics on scheduler errors — an experiment cell, like the
// other sweeps.
func simCoreFatTree() SimCoreFatTree {
	const kAry, hostsPerEdge, jobs = 8, 32, 64
	k := sim.NewKernel()
	f := multijob.NewFatTreeFabric(k, kAry, hostsPerEdge,
		netsim.TenGbE(), netsim.FortyGbE(), netsim.FortyGbE(), multijob.FabricConfig{})

	start := time.Now()
	res, err := multijob.Run(f, simCoreFatTreeSpecs(jobs))
	wall := time.Since(start)
	if err != nil {
		panic(fmt.Sprintf("experiments: simcore fat-tree: %v", err))
	}
	out := SimCoreFatTree{
		K: kAry, HostsPerEdge: hostsPerEdge, Hosts: len(f.Hosts), Jobs: jobs,
		Makespan: multijob.Summarize(res).Makespan,
		Wall:     wall, Events: k.Events(),
	}
	if wall > 0 {
		out.EventsPerSec = float64(out.Events) / wall.Seconds()
	}
	return out
}

// RunSimCore runs the full simulation-core measurement suite.
func RunSimCore() SimCoreData {
	data := SimCoreData{FatTree: simCoreFatTree()}
	for _, qs := range simCoreQueueSizes() {
		data.Hold = append(data.Hold, simCoreHold(qs, simCoreHoldEvents))
	}
	return data
}

// SimCore renders the scheduler benchmark as an experiment result.
// Unlike the paper reproductions its numbers are wall-clock (hardware-
// dependent), so it rides behind `iswitch-bench -simcore` rather than
// the deterministic-stdout registry — same split as -kernels.
func SimCore() Result { return renderSimCore(RunSimCore()) }

func renderSimCore(d SimCoreData) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "Hold model (%d holds/cell, seed 7): reference binary heap vs calendar queue.\n",
		simCoreHoldEvents)
	fmt.Fprintf(&b, "%9s %15s %13s %15s %13s %9s\n",
		"queue", "heap ev/s", "allocs/ev", "cal ev/s", "allocs/ev", "speedup")
	for _, r := range d.Hold {
		fmt.Fprintf(&b, "%9d %15.0f %13.3f %15.0f %13.3f %8.2fx\n",
			r.QueueSize, r.Heap.EventsPerSec, r.Heap.AllocsPerEvent,
			r.Cal.EventsPerSec, r.Cal.AllocsPerEvent, r.Speedup)
	}
	ft := d.FatTree
	fmt.Fprintf(&b, "\nFat-tree rackscale scenario: k=%d, %d hosts/edge (%d workers), %d sync jobs.\n",
		ft.K, ft.HostsPerEdge, ft.Hosts, ft.Jobs)
	fmt.Fprintf(&b, "virtual makespan %s, %d events in %v wall (%.0f events/sec)\n",
		ms(ft.Makespan), ft.Events, ft.Wall.Round(time.Millisecond), ft.EventsPerSec)
	return Result{ID: "simcore",
		Title: "Simulation core: calendar queue vs reference heap", Text: b.String()}
}
