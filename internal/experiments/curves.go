package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/envs"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
	"iswitch/internal/tensor"
)

// Training-curve experiments (Figures 13 and 14): reward versus
// wall-clock time. Convergence trajectories come from real RL training
// on the stand-in environments; wall-clock scaling comes from the
// packet-level timing simulation at the paper's full model sizes
// (DESIGN.md records this composition).

// CurveOpts sizes the functional runs.
type CurveOpts struct {
	// SyncIters is the functional iteration count for Figure 13.
	SyncIters int
	// AsyncUpdatesISW / AsyncUpdatesPS are the Figure 14 update targets
	// (PS applies one gradient per update, iSwitch H per update, so PS
	// needs proportionally more updates for the same sample count).
	AsyncUpdatesISW, AsyncUpdatesPS int64
	// Points is how many checkpoints each curve prints.
	Points int
}

// DefaultCurveOpts is sized for minutes-scale runs; QuickCurveOpts for
// unit tests.
func DefaultCurveOpts() CurveOpts {
	return CurveOpts{SyncIters: 6000, AsyncUpdatesISW: 1500, AsyncUpdatesPS: 6000, Points: 12}
}

// QuickCurveOpts keeps CI runs short.
func QuickCurveOpts() CurveOpts {
	return CurveOpts{SyncIters: 1200, AsyncUpdatesISW: 300, AsyncUpdatesPS: 1200, Points: 6}
}

// movingAvg returns the mean of the last k values (or all, if fewer).
func movingAvg(xs []float64, k int) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo := len(xs) - k
	if lo < 0 {
		lo = 0
	}
	var s float64
	for _, x := range xs[lo:] {
		s += x
	}
	return s / float64(len(xs)-lo)
}

// Figure13 reproduces the synchronous DQN training curves: the same
// reward trajectory (sync PS, AR, and iSwitch are mathematically
// equivalent — proven by core's equivalence tests) reached at each
// strategy's own wall-clock rate. The trajectory is trained for real on
// GridPong with 4 distributed workers; per-iteration times come from
// the DQN-sized timing simulation.
func Figure13(opts CurveOpts) Result {
	const workers = 4
	agents := make([]*rl.DQN, workers)
	for i := range agents {
		agents[i] = rl.NewDQN(newGridPong(int64(200+i)), rl.DefaultDQNConfig(), 42, int64(300+i))
	}
	gl := agents[0].GradLen()
	sum := make([]float32, gl)
	g := make([]float32, gl)

	type point struct {
		iter   int
		reward float64
	}
	var curve []point
	var rewards []float64
	step := opts.SyncIters / opts.Points
	for it := 1; it <= opts.SyncIters; it++ {
		tensor.Zero(sum)
		for _, a := range agents {
			a.ComputeGradient(g)
			tensor.Add(sum, g)
		}
		for _, a := range agents {
			a.ApplyAggregated(sum, workers)
			rewards = append(rewards, a.DrainEpisodes()...)
		}
		if it%step == 0 {
			curve = append(curve, point{iter: it, reward: movingAvg(rewards, 40)})
		}
	}

	// Wall-clock scale per strategy from the timing simulation, one
	// pooled cell per strategy.
	w, _ := perfmodel.WorkloadByName("DQN")
	strats := SyncStrategies()
	iters := parMap(len(strats), func(i int) time.Duration {
		return simSync(w, strats[i], workers, 0, 3).MeanIter()
	})
	perIter := map[string]time.Duration{}
	for i, s := range strats {
		perIter[s] = iters[i]
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-10s | %-12s %-12s %-12s\n",
		"iter", "avg reward", "PS time", "AR time", "iSW time")
	for _, pt := range curve {
		fmt.Fprintf(&b, "%-8d %-10.2f | %9.1f s  %9.1f s  %9.1f s\n",
			pt.iter, pt.reward,
			float64(pt.iter)*perIter[StratPS].Seconds(),
			float64(pt.iter)*perIter[StratAR].Seconds(),
			float64(pt.iter)*perIter[StratISW].Seconds())
	}
	fmt.Fprintf(&b, "(same reward level reached %.2fx sooner with iSW than PS, %.2fx vs AR)\n",
		perIter[StratPS].Seconds()/perIter[StratISW].Seconds(),
		perIter[StratAR].Seconds()/perIter[StratISW].Seconds())
	return Result{ID: "figure13", Title: "Training curves of DQN, synchronous approaches", Text: b.String()}
}

// Figure14 reproduces the asynchronous DQN training curves. Both runs
// train for real through the simulated network (4 workers, S=3); the
// convergence gap comes from measured gradient staleness, and the time
// axis is scaled to the full-model per-iteration times from Table 5's
// simulation.
func Figure14(opts CurveOpts) Result {
	const workers = 4
	w, _ := perfmodel.WorkloadByName("DQN")

	run := func(strategy string, updates int64) (*core.AsyncStats, time.Duration) {
		k := sim.NewKernel()
		defer k.Shutdown()
		agents := make([]rl.Agent, workers)
		for i := range agents {
			agents[i] = rl.NewDQN(newGridPong(int64(400+i)), rl.DefaultDQNConfig(), 42, int64(500+i))
		}
		cfg := core.AsyncConfig{
			Updates: updates, StalenessBound: 3,
			LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate,
		}
		var stats *core.AsyncStats
		spec := strategySpec(w, strategy, workers, 0, true)
		spec.ModelFloats = agents[0].GradLen()
		if strategy == StratISW {
			stats = core.RunAsyncISW(k, agents, core.Build(k, spec).ISW, cfg)
		} else {
			master := rl.NewDQN(newGridPong(999), rl.DefaultDQNConfig(), 42, 999)
			stats = core.RunAsyncPS(k, agents, master, core.Build(k, spec).PS, cfg)
		}
		// Full-model per-update time from the synthetic timing run.
		full := simAsync(w, strategy, workers, 0, 40, 3)
		return stats, asyncPerIter(full)
	}

	// The PS and iSwitch runs are fully independent (separate kernels,
	// separate seeds); run both on the worker pool.
	type asyncRun struct {
		stats   *core.AsyncStats
		perIter time.Duration
	}
	runs := parMap(2, func(i int) asyncRun {
		if i == 0 {
			s, d := run(StratPS, opts.AsyncUpdatesPS)
			return asyncRun{s, d}
		}
		s, d := run(StratISW, opts.AsyncUpdatesISW)
		return asyncRun{s, d}
	})
	psStats, psIter := runs[0].stats, runs[0].perIter
	iswStats, iswIter := runs[1].stats, runs[1].perIter

	var b strings.Builder
	fmt.Fprintf(&b, "%-10s | %-26s | %-26s\n", "", "Async PS", "Async iSW")
	fmt.Fprintf(&b, "%-10s | per-iter %6s ms, staleness %.2f | per-iter %6s ms, staleness %.2f\n", "",
		ms(psIter), psStats.MeanStaleness(), ms(iswIter), iswStats.MeanStaleness())

	render := func(stats *core.AsyncStats, perIter time.Duration, updates int64) []string {
		rewards := stats.AllRewards()
		var lines []string
		for p := 1; p <= opts.Points; p++ {
			cut := int64(p) * updates / int64(opts.Points)
			cutTime := stats.Total * time.Duration(cut) / time.Duration(updates)
			var upTo []float64
			for _, r := range rewards {
				if r.Time <= cutTime {
					upTo = append(upTo, r.Reward)
				}
			}
			wall := float64(cut) * perIter.Seconds()
			lines = append(lines, fmt.Sprintf("%8.1f s  reward %7.2f", wall, movingAvg(upTo, 40)))
		}
		return lines
	}
	psC := render(psStats, psIter, opts.AsyncUpdatesPS)
	iswC := render(iswStats, iswIter, opts.AsyncUpdatesISW)
	for i := range psC {
		fmt.Fprintf(&b, "checkpoint %2d | %s | %s\n", i+1, psC[i], iswC[i])
	}
	fmt.Fprintf(&b, "(staleness PS %.2f vs iSW %.2f explains the paper's %.1fx iteration gap direction)\n",
		psStats.MeanStaleness(), iswStats.MeanStaleness(),
		float64(w.AsyncItersPS)/float64(w.AsyncItersISW))
	return Result{ID: "figure14", Title: "Training curves of DQN, asynchronous approaches", Text: b.String()}
}

// newGridPong builds the DQN stand-in environment.
func newGridPong(seed int64) *envs.GridPong { return envs.NewGridPong(seed) }
