package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// Loss/failure sweep: the reliability layer (paper §3.3 plus the
// crash/rejoin and switch-failover extensions) measured across loss
// rate × topology × training mode, with dedicated fault cells for
// worker crash (rejoin and permanent/evicted) and whole-plane switch
// failover. Every number is virtual-time and therefore deterministic;
// the same measurements feed `iswitch-bench -lossy` and the
// BENCH_lossy.json regression baseline.

// LossyCell is one sweep cell's measurement.
type LossyCell struct {
	Topology string  // star | tree | fattree
	Mode     string  // sync | async
	Fault    string  // "" | crash-rejoin | crash-evict | failover
	Loss     float64 // i.i.d. per-packet drop probability on every access link
	Workers  int

	Iterations int
	Total      time.Duration // virtual makespan
	MeanIter   time.Duration // mean per-iteration time across workers
	MaxIter    time.Duration // slowest single iteration — the recovery latency
	// Goodput is completed updates per virtual second.
	Goodput float64
	// Overhead is MeanIter relative to the same topology/mode at zero
	// loss and no faults (1.0 = free recovery).
	Overhead float64

	// Fabric and recovery accounting.
	Drops       uint64
	HelpsSent   uint64
	Retransmits uint64
	ShadowHits  uint64
	Targeted    uint64
	Evicted     uint64
	Rejoins     uint64
	Failovers   uint64
}

// LossyData is the full sweep.
type LossyData struct {
	Cells []LossyCell
}

// lossyModelFloats keeps each gradient a handful of segments so Help
// traffic exercises per-segment recovery without dominating runtime.
const lossyModelFloats = 2000

const lossyWorkers = 8
const lossyIterations = 40

// lossyWorkload is the synthetic per-iteration cost model for the
// sweep; RecoveryTimeoutFor derives the Help timer from it.
func lossyWorkload() perfmodel.Workload {
	return perfmodel.Workload{
		ModelBytes:   lossyModelFloats * 4,
		LocalCompute: 500 * time.Microsecond,
		WeightUpdate: 100 * time.Microsecond,
	}
}

// lossySpec assembles the ClusterSpec for one cell.
func lossySpec(topo string, cfg core.ISWConfig, plan *netsim.FaultPlan, horizon sim.Time) core.ClusterSpec {
	spec := core.ClusterSpec{
		Mode:            core.ModeISW,
		ModelFloats:     lossyModelFloats,
		Link:            netsim.TenGbE(),
		Uplink:          netsim.FortyGbE(),
		ISW:             &cfg,
		Dedup:           true,
		LivenessHorizon: horizon,
		Faults:          plan,
	}
	switch topo {
	case "star":
		spec.Topology = core.TopoStar
		spec.Workers = lossyWorkers
	case "tree":
		spec.Topology = core.TopoTree
		spec.Workers = lossyWorkers
		spec.PerRack = lossyWorkers / 2
	case "fattree":
		spec.Topology = core.TopoFatTree
		spec.KAry = 4
		spec.HostsPerEdge = 1 // 4 pods × 2 edge switches × 1 host = 8 workers
	default:
		panic("experiments: unknown lossy topology " + topo)
	}
	return spec
}

// lossPlan applies rate to both directions of every worker access link.
func lossPlan(rate float64, workers int) *netsim.FaultPlan {
	if rate <= 0 {
		return nil
	}
	plan := &netsim.FaultPlan{Seed: 1009}
	for w := 0; w < workers; w++ {
		plan.Links = append(plan.Links, netsim.LinkFault{Worker: w, Dir: netsim.DirBoth, Loss: rate})
	}
	return plan
}

// runLossyCell builds, trains, and measures one cell.
func runLossyCell(topo, mode, fault string, loss float64) LossyCell {
	wl := lossyWorkload()
	link := netsim.TenGbE()

	cfg := core.DefaultISWConfig()
	cfg.RecoveryTimeout = core.RecoveryTimeoutFor(wl, link)

	var horizon sim.Time
	var plan *netsim.FaultPlan
	switch fault {
	case "":
		// pure loss sweep
	case "crash-rejoin":
		plan = &netsim.FaultPlan{Crashes: []netsim.CrashFault{
			{Worker: 2, AtRound: lossyIterations / 2, PartialSegs: 2, Rejoin: true, Outage: 10 * time.Millisecond},
		}}
	case "crash-evict":
		horizon = 4 * cfg.RecoveryTimeout
		plan = &netsim.FaultPlan{Crashes: []netsim.CrashFault{
			{Worker: 2, AtRound: lossyIterations / 2, PartialSegs: 0},
		}}
	case "failover":
		cfg.FailoverAfter = 3
		// Fail the whole plane mid-run: roughly half the clean makespan in.
		at := sim.Time(lossyIterations/2) * perfmodel.ExpectedSyncRound(wl, link.BitsPerSecond)
		plan = &netsim.FaultPlan{Switches: []netsim.SwitchFault{{Switch: -1, At: at}}}
	default:
		panic("experiments: unknown lossy fault " + fault)
	}
	if loss > 0 {
		lp := lossPlan(loss, lossyWorkers)
		if plan == nil {
			plan = lp
		} else {
			plan.Seed = lp.Seed
			plan.Links = lp.Links
		}
	}

	k := sim.NewKernel()
	cluster := core.Build(k, lossySpec(topo, cfg, plan, horizon))
	workers := cluster.Workers()

	agents := make([]rl.Agent, len(workers))
	services := make([]core.Service, len(workers))
	for i := range workers {
		agents[i] = core.NewSyntheticAgent(lossyModelFloats)
		services[i] = cluster.Client(i)
	}

	cell := LossyCell{
		Topology: topo, Mode: mode, Fault: fault, Loss: loss,
		Workers: len(workers), Iterations: lossyIterations,
	}

	var stats *core.RunStats
	switch mode {
	case "sync":
		stats = core.RunSync(k, agents, services, core.SyncConfig{
			Iterations:   lossyIterations,
			LocalCompute: wl.LocalCompute,
			WeightUpdate: wl.WeightUpdate,
		})
	case "async":
		as := core.RunAsyncISW(k, agents, cluster.ISW, core.AsyncConfig{
			Updates:        lossyIterations,
			StalenessBound: 4,
			LocalCompute:   wl.LocalCompute,
			WeightUpdate:   wl.WeightUpdate,
		})
		stats = &as.RunStats
	default:
		panic("experiments: unknown lossy mode " + mode)
	}

	cell.Total = stats.Total
	cell.MeanIter = stats.MeanIter()
	for _, w := range stats.Workers {
		for _, it := range w.Iters {
			if t := it.Total(); t > cell.MaxIter {
				cell.MaxIter = t
			}
		}
	}
	if stats.Total > 0 {
		cell.Goodput = float64(lossyIterations) / stats.Total.Seconds()
	}

	for _, h := range workers {
		cell.Drops += h.Port().Dropped + h.Port().Peer().Dropped
	}
	isw := cluster.ISW
	cell.HelpsSent = isw.HelpsSent
	cell.Retransmits = isw.Retransmits
	cell.Rejoins = isw.Rejoins
	cell.Failovers = isw.Failovers
	for _, is := range cluster.Switches() {
		cell.ShadowHits += is.HelpServed
		cell.Targeted += is.HelpTargeted
		cell.Evicted += is.Evicted
	}
	return cell
}

// lossyRates is the loss-rate axis of the sweep.
func lossyRates() []float64 { return []float64{0, 0.005, 0.02} }

// RunLossy runs the full sweep: loss rates × topologies × modes, plus
// the crash and failover fault cells on every topology (synchronous —
// rounds are the unit the crash/failover machinery is defined over).
func RunLossy() LossyData {
	var d LossyData
	baseline := map[string]time.Duration{}
	for _, topo := range []string{"star", "tree", "fattree"} {
		for _, mode := range []string{"sync", "async"} {
			for _, loss := range lossyRates() {
				c := runLossyCell(topo, mode, "", loss)
				key := topo + "/" + mode
				if loss == 0 {
					baseline[key] = c.MeanIter
				}
				if b := baseline[key]; b > 0 {
					c.Overhead = float64(c.MeanIter) / float64(b)
				}
				d.Cells = append(d.Cells, c)
			}
		}
		for _, fault := range []string{"crash-rejoin", "crash-evict", "failover"} {
			c := runLossyCell(topo, "sync", fault, 0)
			if b := baseline[topo+"/sync"]; b > 0 {
				c.Overhead = float64(c.MeanIter) / float64(b)
			}
			d.Cells = append(d.Cells, c)
		}
	}
	return d
}

// Lossy renders the sweep as an experiment result.
func Lossy() Result { return renderLossy(RunLossy()) }

func renderLossy(d LossyData) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "Reliability sweep: %d workers, %d iterations/cell, %d-float model.\n",
		lossyWorkers, lossyIterations, lossyModelFloats)
	fmt.Fprintf(&b, "Recovery latency = slowest single iteration; overhead vs clean cell.\n\n")
	fmt.Fprintf(&b, "%8s %6s %13s %6s %10s %10s %9s %7s %6s %6s %5s %5s\n",
		"topo", "mode", "fault", "loss", "mean iter", "max iter", "goodput", "ovh", "drops", "helps", "evict", "fail")
	for _, c := range d.Cells {
		fault := c.Fault
		if fault == "" {
			fault = "-"
		}
		fmt.Fprintf(&b, "%8s %6s %13s %5.1f%% %10s %10s %8.1f/s %6.2fx %6d %6d %5d %5d\n",
			c.Topology, c.Mode, fault, c.Loss*100,
			ms(c.MeanIter), ms(c.MaxIter), c.Goodput, c.Overhead,
			c.Drops, c.HelpsSent, c.Evicted, c.Failovers)
	}
	b.WriteString("\nRecovery is exact: every surviving replica applies identical sums\n")
	b.WriteString("(shadow slots + contributor bitmap keep retransmission idempotent).\n")
	return Result{ID: "lossy",
		Title: "Reliability: loss, crash/rejoin, and switch-failover sweep", Text: b.String()}
}
