package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"iswitch/internal/fp16"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
)

// AblationFP16 quantifies the paper's raw-float32 wire format choice
// (§3.2: "all gradient data are transmitted and computed in a raw
// float-point format"): what would half-precision transport save in
// aggregation latency, and what would it cost in gradient fidelity?
//
// Latency: an fp16 payload halves the wire bytes, so the simulation is
// re-run with half-sized vectors (the accelerator's burst count and the
// links' serialization both scale with bytes). Fidelity: real A2C
// gradients from four workers are quantized through fp16, summed, and
// compared with the float32 aggregate.
func AblationFP16() Result {
	var b strings.Builder

	// Latency side, per workload: the full- and half-width runs of every
	// workload are independent cells for the worker pool.
	fmt.Fprintf(&b, "%-6s %-16s %-16s %-8s\n", "Bench", "fp32 agg ms", "fp16 agg ms", "saving")
	ws := perfmodel.Workloads()
	aggs := parMap(2*len(ws), func(i int) time.Duration {
		w := ws[i/2]
		if i%2 == 1 {
			w.ModelBytes = w.ModelBytes / 2
		}
		return simSync(w, StratISW, 4, 0, 2).MeanAgg()
	})
	for wi, w := range ws {
		full, half := aggs[2*wi], aggs[2*wi+1]
		fmt.Fprintf(&b, "%-6s %-16s %-16s %6.2fx\n",
			w.Name, ms(full), ms(half), float64(full)/float64(half))
	}

	// Fidelity side, real gradients.
	const workers = 4
	agents := make([]rl.Agent, workers)
	for i := range agents {
		a, err := rl.NewWorkloadAgent(rl.WorkloadA2C, 42, int64(900+i))
		if err != nil {
			panic(err)
		}
		agents[i] = a
	}
	n := agents[0].GradLen()
	exact := make([]float64, n)
	quant := make([]float32, n)
	g := make([]float32, n)
	// One wire buffer and one decode buffer, reused across workers: the
	// pack/unpack round trip is the thing being modeled, and the
	// zero-alloc AppendPack/UnpackInto forms keep the loop allocation-free
	// after setup.
	q := make([]float32, n)
	wire := make([]byte, 0, 2*n)
	for _, a := range agents {
		a.ComputeGradient(g)
		for i, v := range g {
			exact[i] += float64(v)
		}
		wire = fp16.AppendPack(wire[:0], g)
		fp16.UnpackInto(q, wire)
		for i, v := range q {
			quant[i] += v
		}
	}
	var errNorm, refNorm float64
	for i := range exact {
		d := float64(quant[i]) - exact[i]
		errNorm += d * d
		refNorm += exact[i] * exact[i]
	}
	rel := math.Sqrt(errNorm) / (math.Sqrt(refNorm) + 1e-30)
	fmt.Fprintf(&b, "\nfp16 aggregate relative error on real A2C gradients: %.2e\n", rel)
	fmt.Fprintf(&b, "(the paper keeps fp32: the FPGA adders are native float32 and the\n")
	fmt.Fprintf(&b, " latency win only matters for the largest models, where accuracy is\n")
	fmt.Fprintf(&b, " also most sensitive to quantized aggregation)\n")
	return Result{ID: "ablation-fp16", Title: "Half-precision wire format (design-choice ablation)", Text: b.String()}
}
