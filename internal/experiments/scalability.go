package experiments

import (
	"fmt"
	"strings"

	"iswitch/internal/core"
	"iswitch/internal/perfmodel"
)

// Figure15 reproduces the scalability study: end-to-end training
// speedup of each approach at 4, 6, 9 and 12 worker nodes, normalized
// to its own 4-node time, for PPO and DDPG, sync and async. Workers sit
// in racks of three (the paper's NetFPGA port limit) under a two-level
// switch hierarchy; iSwitch aggregates hierarchically (ToR then root).
//
// Speedup model (documented in DESIGN.md): the total sample budget is
// fixed, so synchronous runs need iterations ∝ 1/N (each iteration
// consumes N workers' samples) and the speedup at N nodes is
// (N/4) · perIter(4)/perIter(N) — the paper's "Ideal" line is N/4 with
// perIter constant. Asynchronously, a PS update consumes one gradient
// (updates needed ≈ constant × staleness inflation) while an iSwitch
// update consumes H = N gradients (updates ∝ 1/N), with measured mean
// staleness inflating iterations per stale-synchronous-parallel theory.
func Figure15() Result {
	nodes := []int{4, 6, 9, 12}
	const perRack = 3
	var b strings.Builder

	for _, name := range []string{"PPO", "DDPG"} {
		w, _ := perfmodel.WorkloadByName(name)

		// Synchronous speedups.
		fmt.Fprintf(&b, "(%s-Sync)   %-6s", name, "nodes")
		for _, n := range nodes {
			fmt.Fprintf(&b, " %6d", n)
		}
		b.WriteByte('\n')
		// All strategy × node-count cells run on the worker pool;
		// normalization against each strategy's own 4-node time happens
		// afterwards, in deterministic order.
		strats := SyncStrategies()
		perIters := parMap(len(strats)*len(nodes), func(i int) float64 {
			return simSync(w, strats[i/len(nodes)], nodes[i%len(nodes)], perRack, 2).MeanIter().Seconds()
		})
		cells := map[string][]float64{}
		for si, s := range strats {
			base := perIters[si*len(nodes)]
			for ni, n := range nodes {
				perIter := perIters[si*len(nodes)+ni]
				cells[s] = append(cells[s], float64(n)/4*base/perIter)
			}
		}
		for _, s := range SyncStrategies() {
			fmt.Fprintf(&b, "            %-6s", s)
			for _, v := range cells[s] {
				fmt.Fprintf(&b, " %6.2f", v)
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "            %-6s", "Ideal")
		for _, n := range nodes {
			fmt.Fprintf(&b, " %6.2f", float64(n)/4)
		}
		b.WriteString("\n")

		// Asynchronous speedups.
		fmt.Fprintf(&b, "(%s-Async)  %-6s", name, "nodes")
		for _, n := range nodes {
			fmt.Fprintf(&b, " %6d", n)
		}
		b.WriteByte('\n')
		asyncStrats := []string{StratPS, StratISW}
		asyncCells := parMap(len(asyncStrats)*len(nodes), func(i int) *core.AsyncStats {
			return simAsync(w, asyncStrats[i/len(nodes)], nodes[i%len(nodes)], perRack, 50, 3)
		})
		for si, s := range asyncStrats {
			var base float64
			fmt.Fprintf(&b, "            %-6s", s)
			for ni, n := range nodes {
				stats := asyncCells[si*len(nodes)+ni]
				cost := asyncPerIter(stats).Seconds() * (1 + stats.MeanStaleness())
				if s == StratISW {
					cost /= float64(n) // each update consumes N gradients
				}
				if n == nodes[0] {
					base = cost
				}
				fmt.Fprintf(&b, " %6.2f", base/cost)
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	b.WriteString("(speedups normalized against each approach's own 4-node end-to-end time)\n")
	return Result{ID: "figure15", Title: "Scalability comparison of all training approaches", Text: b.String()}
}
