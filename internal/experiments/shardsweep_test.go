package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The sweep is the heaviest generator in the package (8 async cells,
// two of them DQN-sized); run it once and share the rows between tests.
var sweepOnce = sync.Once{}
var sweepRows []ShardSweepRow

func sweepRowsCached() []ShardSweepRow {
	sweepOnce.Do(func() {
		SetParallelism(0)
		defer SetParallelism(1)
		sweepRows = shardSweepRows()
	})
	return sweepRows
}

// The sweep's headline claim: partitioning the async PS across more
// shards strictly reduces the per-update round time for both the
// largest (DQN) and smallest (PPO) paper model — the regression guard
// for the sharded baseline's cost model.
func TestShardSweepAsyncStrictlyDecreasing(t *testing.T) {
	if raceEnabled {
		// The DQN async cells alone run minutes under the race detector;
		// monotonicity is a deterministic cost-model property, not a race
		// property, and the non-race CI legs run this test at full
		// strength (the sharded runtime itself is raced in internal/core).
		t.Skip("sweep generators too slow under -race; covered by non-race legs")
	}
	for _, row := range sweepRowsCached() {
		for i := 1; i < len(row.Shards); i++ {
			prev, cur := row.Shards[i-1], row.Shards[i]
			if row.AsyncPerIter[cur] >= row.AsyncPerIter[prev] {
				t.Errorf("%s: async round time not strictly decreasing: S=%d %v vs S=%d %v",
					row.Workload.Name, cur, row.AsyncPerIter[cur], prev, row.AsyncPerIter[prev])
			}
			if row.SyncPerIter[cur] >= row.SyncPerIter[prev] {
				t.Errorf("%s: sync per-iteration not strictly decreasing: S=%d %v vs S=%d %v",
					row.Workload.Name, cur, row.SyncPerIter[cur], prev, row.SyncPerIter[prev])
			}
		}
		// Sharding must not break the staleness bound used by the sweep.
		for _, s := range row.Shards {
			if row.AsyncStaleness[s] > 3 {
				t.Errorf("%s S=%d: mean staleness %v exceeds bound 3",
					row.Workload.Name, s, row.AsyncStaleness[s])
			}
		}
	}
}

func TestShardSweepRendersAllColumns(t *testing.T) {
	if raceEnabled {
		t.Skip("sweep generators too slow under -race; covered by non-race legs")
	}
	rows := sweepRowsCached()
	if len(rows) != 2 {
		t.Fatalf("sweep has %d rows, want 2 (DQN, PPO)", len(rows))
	}
	text := renderShardSweep(rows).Text
	for _, want := range []string{"S=1", "S=2", "S=4", "S=8", "DQN", "PPO", "sync", "async"} {
		if !strings.Contains(text, want) {
			t.Fatalf("shard-sweep missing %q:\n%s", want, text)
		}
	}
}
