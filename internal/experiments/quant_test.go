package experiments

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"iswitch/internal/protocol"
	"iswitch/internal/rl"
)

// TestRenderQuant pins the report layout without running the sweep.
func TestRenderQuant(t *testing.T) {
	d := QuantData{
		Cells: []QuantCell{
			{Scheme: "none", Workers: 16, Iterations: 8, MeanIter: 7190 * time.Microsecond,
				AccessBytes: 1694_000_000, Speedup: 1.0, ByteRatio: 1.0},
			{Scheme: "int32block", Workers: 16, Iterations: 8, MeanIter: 4630 * time.Microsecond,
				AccessBytes: 876_000_000, Speedup: 1.55, ByteRatio: 1.93},
		},
		Ablation: []QuantAblationRow{
			{Workload: "A2C", Scheme: "int32block", RelErr: 2.7e-4, UploadBytes: 19600, ParamDrift: 3.2e-3},
		},
	}
	text := renderQuant(d).Text
	for _, want := range []string{"int32block", "1.55x", "1.93x", "A2C", "fat-tree", "order-invariance"} {
		if !strings.Contains(text, want) {
			t.Fatalf("quant report missing %q:\n%s", want, text)
		}
	}
}

// TestQuantConvergenceGate is the tier-1 convergence regression gate:
// every paper workload trained through every lossy scheme must stay
// within fixed accuracy envelopes. fp16 and int32block are
// near-lossless (the int32block grid adapts within the first rounds);
// top-k is biased by design but must still carry a usable fraction of
// the gradient (relative error strictly below 1.0 — the error of
// sending nothing — with headroom). Bounds are generous multiples of
// the observed values so the gate trips on regressions, not noise.
func TestQuantConvergenceGate(t *testing.T) {
	for _, name := range rl.Workloads() {
		t.Run(name, func(t *testing.T) {
			ref, _, _ := quantTrainRun(name, protocol.CompNone)
			for _, tc := range []struct {
				scheme           protocol.Compression
				maxErr, maxDrift float64
			}{
				{protocol.CompFP16, 5e-3, 1e-2},
				{protocol.CompInt32Block, 1e-2, 5e-2},
				{protocol.CompTopK, 0.8, 0.5},
			} {
				params, relErr, _ := quantTrainRun(name, tc.scheme)
				if relErr > tc.maxErr {
					t.Errorf("%v: final-round aggregate error %.3e exceeds %.1e", tc.scheme, relErr, tc.maxErr)
				}
				var dN, rN float64
				for i := range params {
					d := float64(params[i] - ref[i])
					dN += d * d
					rN += float64(ref[i]) * float64(ref[i])
				}
				drift := dN
				if rN > 0 {
					drift = dN / rN
				}
				if drift > tc.maxDrift*tc.maxDrift { // compare squared norms
					t.Errorf("%v: param drift %.3e exceeds %.1e", tc.scheme, drift, tc.maxDrift*tc.maxDrift)
				}
			}
		})
	}
}

// --- BENCH_quant.json --------------------------------------------------

type quantCellJSON struct {
	Scheme      string  `json:"scheme"`
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	TotalMs     float64 `json:"total_ms"`
	MeanIterMs  float64 `json:"mean_iter_ms"`
	AccessBytes uint64  `json:"access_bytes"`
	Speedup     float64 `json:"speedup_vs_fp32"`
	ByteRatio   float64 `json:"byte_ratio_vs_fp32"`
}

type quantAblJSON struct {
	Workload    string  `json:"workload"`
	Scheme      string  `json:"scheme"`
	RelErr      float64 `json:"rel_err"`
	UploadBytes uint64  `json:"upload_bytes"`
	ParamDrift  float64 `json:"param_drift"`
}

type quantDoc struct {
	ModelFloats int             `json:"model_floats"`
	KAry        int             `json:"k_ary"`
	HostsPer    int             `json:"hosts_per_edge"`
	Cells       []quantCellJSON `json:"cells"`
	Ablation    []quantAblJSON  `json:"ablation"`
}

func quantToDoc(d QuantData) quantDoc {
	doc := quantDoc{ModelFloats: quantModelFloats, KAry: quantKAry, HostsPer: quantHostsPer}
	for _, c := range d.Cells {
		doc.Cells = append(doc.Cells, quantCellJSON{
			Scheme: c.Scheme, Workers: c.Workers, Iterations: c.Iterations,
			TotalMs: float64(c.Total) / 1e6, MeanIterMs: float64(c.MeanIter) / 1e6,
			AccessBytes: c.AccessBytes, Speedup: c.Speedup, ByteRatio: c.ByteRatio,
		})
	}
	for _, r := range d.Ablation {
		doc.Ablation = append(doc.Ablation, quantAblJSON{
			Workload: r.Workload, Scheme: r.Scheme, RelErr: r.RelErr,
			UploadBytes: r.UploadBytes, ParamDrift: r.ParamDrift,
		})
	}
	return doc
}

// TestWriteQuantJSON records the compression baseline to the file named
// by BENCH_QUANT_JSON (skipped when unset, so a plain `go test ./...`
// never writes files). CI uses:
//
//	BENCH_QUANT_JSON=BENCH_quant.json go test -run WriteQuantJSON ./internal/experiments
func TestWriteQuantJSON(t *testing.T) {
	out := os.Getenv("BENCH_QUANT_JSON")
	if out == "" {
		t.Skip("BENCH_QUANT_JSON not set")
	}
	data, err := json.MarshalIndent(quantToDoc(RunQuant()), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestQuantRegression is the CI compression gate: re-run the DES sweep
// and hold the int32block cell to the acceptance floors — ≥1.5× round
// speedup and ≥1.9× access-link byte cut over raw float32 — and every
// cell to within 25% of the committed BENCH_quant.json baseline. The
// sweep is virtual-time and fully deterministic, so drift only comes
// from code changes. Gated on BENCH_QUANT_CHECK so the sweep runs once
// in CI, not in every local `go test ./...`.
func TestQuantRegression(t *testing.T) {
	if os.Getenv("BENCH_QUANT_CHECK") == "" {
		t.Skip("BENCH_QUANT_CHECK not set")
	}
	raw, err := os.ReadFile("../../BENCH_quant.json")
	if err != nil {
		t.Fatalf("missing committed baseline: %v", err)
	}
	var base quantDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatal(err)
	}
	baseBy := map[string]quantCellJSON{}
	for _, c := range base.Cells {
		baseBy[c.Scheme] = c
	}

	cur := quantToDoc(RunQuant())

	var q16 *quantCellJSON
	for i := range cur.Cells {
		c := &cur.Cells[i]
		if c.Scheme == protocol.CompInt32Block.String() {
			q16 = c
		}
		b, ok := baseBy[c.Scheme]
		if !ok {
			t.Errorf("scheme %s missing from baseline", c.Scheme)
			continue
		}
		if c.MeanIterMs > b.MeanIterMs*1.25 {
			t.Errorf("%s: mean iter %.3f ms regressed over baseline %.3f ms",
				c.Scheme, c.MeanIterMs, b.MeanIterMs)
		}
		if float64(c.AccessBytes) > float64(b.AccessBytes)*1.25 {
			t.Errorf("%s: access bytes %d regressed over baseline %d",
				c.Scheme, c.AccessBytes, b.AccessBytes)
		}
	}
	if q16 == nil {
		t.Fatal("int32block cell missing from sweep")
	}
	if q16.Speedup < 1.5 {
		t.Errorf("int32block speedup %.2fx below the 1.5x acceptance floor", q16.Speedup)
	}
	if q16.ByteRatio < 1.9 {
		t.Errorf("int32block byte ratio %.2fx below the 1.9x acceptance floor", q16.ByteRatio)
	}
}
