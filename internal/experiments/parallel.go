package experiments

import (
	"runtime"

	"iswitch/internal/parallel"
)

// maxWorkers bounds how many simulation cells one experiment generator
// runs concurrently. The default of 1 keeps generators sequential (the
// seed behaviour); SetParallelism raises it. Every cell is an isolated
// sim.Kernel with its own seeded RNGs, so concurrency cannot change a
// single output byte — results are always assembled in submission order.
var maxWorkers = 1

// SetParallelism sets the per-experiment worker bound. Values below 1
// select GOMAXPROCS. Not safe to call while experiments are running.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
}

// Parallelism reports the current per-experiment worker bound.
func Parallelism() int { return maxWorkers }

// parMap evaluates fn(0..n-1) across the experiment worker pool and
// returns the results in index order, re-panicking on worker panics so
// generators keep the seed's panic semantics.
func parMap[T any](n int, fn func(int) T) []T {
	return parallel.MustMap(maxWorkers, n, fn)
}
