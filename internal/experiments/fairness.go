package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/multijob"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/sim"
)

// Fairness isolation experiment: an adversarial tenant floods a shared
// iSwitch rack while compliant training jobs run beside it. Three
// cells on the same two-rack fabric (racks of 4 on a 10GbE uplink):
//
//	off   — compliant tenants only (a, b in rack 0; c in rack 1): the
//	        unimpeded baseline.
//	raw   — plus the adversary (rack 1), FIFO admission, no shaping:
//	        the flood owns rack 1's uplink and job c crawls.
//	fair  — same tenants under weighted-fair admission with per-job
//	        egress policing: every weighted job draws frames from a
//	        token bucket refilling at its weight share of each contended
//	        port, and over-rate frames drop at egress, so the
//	        adversary's flood is clamped and c's throughput and round
//	        time return to within a fixed floor of the unimpeded
//	        baseline. Compliant tenants burst inside their buckets and
//	        are never policed.
//
// The tenants are deliberately wire-bound (small local compute, ~80 KB
// gradients) so rack uplinks are genuinely oversubscribed and the
// shares the gates check are bandwidth shares, not compute artifacts.

const (
	fairFloats   = 20000 // 80 KB gradient: serialization dominates
	fairIters    = 12
	fairWorkers  = 2
	fairPerRack  = 4
	fairAdvMs    = 10 // adversary flood duration, ms (spans the tenants' runs)
	fairJainMin  = 0.90
	fairShareTol = 0.10
	// fairRoundCap bounds fair-cell compliant round inflation over the
	// unimpeded cell (the "fixed floor" of the isolation claim).
	fairRoundCap = 1.5
	// fairUplinkBps oversubscribes the rack uplinks (hosts have 10GbE
	// NICs): without it the adversary's flood fits beside the tenants
	// and there is nothing to isolate.
	fairUplinkBps = 2.5e9
)

// fairWorkload is the wire-bound compliant tenant.
func fairWorkload() perfmodel.Workload {
	return perfmodel.Workload{
		Name:         "wire",
		LocalCompute: 100 * time.Microsecond,
		WeightUpdate: 20 * time.Microsecond,
	}
}

// FairnessCell is one cell's outcome.
type FairnessCell struct {
	Label   string
	Results []*multijob.JobResult
	Summary multijob.Summary

	// CompliantJain is Jain's index over the compliant jobs' achieved
	// wire throughput (adversary excluded).
	CompliantJain float64
	// Rack0Share is job a's share of the bytes the rack-0 uplink
	// carried for {a, b} (two identical co-active tenants: fair = 0.5).
	Rack0Share float64
	// UplinkTputBps maps job name to its achieved transmit throughput
	// on its rack's uplink port (bytes over the job's active window).
	UplinkTputBps map[string]float64
	// RoundMs maps job name to its mean round time.
	RoundMs map[string]float64
	// CompliantPoliced / AdvPoliced count frames the egress policers
	// refused, split by tenant class. The isolation gate requires the
	// compliant count to be zero: weight enforcement must never tax a
	// tenant that stays inside its share.
	CompliantPoliced, AdvPoliced uint64
}

func fairnessSpecs(withAdv, weighted bool) []multijob.JobSpec {
	wl := fairWorkload()
	weight := func() float64 {
		if weighted {
			return 1
		}
		return 0
	}
	specs := []multijob.JobSpec{
		{Name: "a", Workload: wl, Workers: fairWorkers, Mode: multijob.ModeSync,
			Iterations: fairIters, ModelFloats: fairFloats, Weight: weight()},
		{Name: "b", Workload: wl, Workers: fairWorkers, Mode: multijob.ModeSync,
			Iterations: fairIters, ModelFloats: fairFloats, Weight: weight()},
		{Name: "c", Workload: wl, Workers: fairWorkers, Mode: multijob.ModeSync,
			Iterations: fairIters, ModelFloats: fairFloats, Weight: weight()},
	}
	if withAdv {
		specs = append(specs, multijob.JobSpec{
			Name: "adv", Workload: wl, Workers: fairWorkers,
			ModelFloats: fairFloats, Weight: weight(),
			Adversary: &multijob.AdversaryPlan{Duration: fairAdvMs * time.Millisecond},
		})
	}
	return specs
}

// uplinkOf finds the transmit port from a ToR toward the root.
func uplinkOf(f *multijob.Fabric, tor, root int) *netsim.Port {
	rootPorts := make(map[*netsim.Port]bool)
	for _, p := range f.Switches[root].Switch().Ports() {
		rootPorts[p] = true
	}
	for _, p := range f.Switches[tor].Switch().Ports() {
		if rootPorts[p.Peer()] {
			return p
		}
	}
	panic("experiments: fairness fabric has no ToR→root uplink")
}

func fairnessCell(label string, withAdv, weighted bool) FairnessCell {
	cfg := multijob.FabricConfig{}
	if weighted {
		cfg.Admission = multijob.WeightedFair(0)
	}
	k := sim.NewKernel()
	uplink := netsim.TenGbE()
	uplink.BitsPerSecond = fairUplinkBps
	// Hosts 0..3 under ToR0 (jobs a, b), 4..7 under ToR1 (c, adv).
	f := multijob.NewTreeFabric(k, 2*fairPerRack, fairPerRack,
		netsim.TenGbE(), uplink, cfg)
	res, err := multijob.Run(f, fairnessSpecs(withAdv, weighted))
	if err != nil {
		panic(fmt.Sprintf("experiments: fairness cell %s: %v", label, err))
	}
	cell := FairnessCell{
		Label: label, Results: res, Summary: multijob.Summarize(res),
		CompliantJain: multijob.JainOver(res, func(r *multijob.JobResult) bool { return !r.Adversary }),
		UplinkTputBps: make(map[string]float64),
		RoundMs:       make(map[string]float64),
	}
	// Switches[0] is the root, [1] ToR0, [2] ToR1 (NewTreeFabric order).
	up0, up1 := uplinkOf(f, 1, 0), uplinkOf(f, 2, 0)
	byName := make(map[string]*multijob.JobResult)
	tx := func(p *netsim.Port, r *multijob.JobResult) uint64 { return p.TxBytesByJob(r.Job) }
	for _, r := range res {
		byName[r.Name] = r
		up := up0
		if r.Name == "c" || r.Name == "adv" {
			up = up1
		}
		if active := (r.Finished - r.Started).Seconds(); active > 0 {
			cell.UplinkTputBps[r.Name] = float64(tx(up, r)) * 8 / active
		}
		cell.RoundMs[r.Name] = float64(r.MeanRound) / 1e6
	}
	a, b := tx(up0, byName["a"]), tx(up0, byName["b"])
	if a+b > 0 {
		cell.Rack0Share = float64(a) / float64(a+b)
	}
	for _, is := range f.Switches {
		for _, p := range is.Switch().Ports() {
			sh := is.ShaperOn(p)
			if sh == nil {
				continue
			}
			for _, r := range res {
				n := sh.PolicedByJob[uint16(r.Job)]
				if r.Adversary {
					cell.AdvPoliced += n
				} else {
					cell.CompliantPoliced += n
				}
			}
		}
	}
	return cell
}

// FairnessCells runs the three isolation cells (the experiment text
// and the gate tests both consume them).
func FairnessCells() (off, raw, fair FairnessCell) {
	cells := parMap(3, func(i int) FairnessCell {
		switch i {
		case 0:
			return fairnessCell("off", false, false)
		case 1:
			return fairnessCell("raw", true, false)
		default:
			return fairnessCell("fair", true, true)
		}
	})
	return cells[0], cells[1], cells[2]
}

// Fairness runs and renders the adversarial-isolation experiment.
func Fairness() Result { return renderFairness(FairnessCells()) }

func renderFairness(off, raw, fair FairnessCell) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "Adversarial multi-tenant isolation: racks of %d on 10GbE uplinks;\n", fairPerRack)
	fmt.Fprintf(&b, "compliant jobs a,b (rack 0) and c (rack 1), open-loop flood adversary\n")
	fmt.Fprintf(&b, "beside c in rack 1. All jobs weight 1 in the fair cell.\n\n")
	fmt.Fprintf(&b, "%-5s %9s %11s %11s %12s %12s %9s\n",
		"cell", "cJain", "a:b share", "c round(ms)", "c up(Gb/s)", "adv up(Gb/s)", "policed")
	for _, c := range []FairnessCell{off, raw, fair} {
		fmt.Fprintf(&b, "%-5s %9.3f %11.3f %11.3f %12.3f %12.3f %9d\n",
			c.Label, c.CompliantJain, c.Rack0Share, c.RoundMs["c"],
			c.UplinkTputBps["c"]/1e9, c.UplinkTputBps["adv"]/1e9, c.AdvPoliced)
	}
	fmt.Fprintf(&b, "\nraw: the flood takes rack 1's uplink and c's round inflates %.1fx;\n",
		raw.RoundMs["c"]/off.RoundMs["c"])
	fmt.Fprintf(&b, "fair: egress policing clamps the adversary to its weight share\n")
	fmt.Fprintf(&b, "(%d flood frames dropped, %d compliant frames dropped), compliant\n",
		fair.AdvPoliced, fair.CompliantPoliced)
	fmt.Fprintf(&b, "Jain >= %.2f and c's round within %.1fx of the unimpeded cell\n",
		fairJainMin, fairRoundCap)
	fmt.Fprintf(&b, "(gated in CI; the adversary cannot move a compliant tenant past those floors).\n")
	return Result{ID: "fair",
		Title: "Weighted-fair isolation under an adversarial tenant", Text: b.String()}
}
