package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/perfmodel"
)

// SyncRow is one benchmark's synchronous comparison (Table 4).
type SyncRow struct {
	Workload  perfmodel.Workload
	PerIter   map[string]time.Duration // strategy -> simulated per-iteration
	EndToEndH map[string]float64       // strategy -> derived hours
}

// syncRows runs the Table 4 simulations once; Table3, Table4 and
// EXPERIMENTS.md reuse them. The workload × strategy grid is flattened
// so every cell (an isolated kernel) can run on the worker pool.
func syncRows() []SyncRow {
	ws := perfmodel.Workloads()
	strats := SyncStrategies()
	perIter := parMap(len(ws)*len(strats), func(i int) time.Duration {
		return simSync(ws[i/len(strats)], strats[i%len(strats)], 4, 0, 3).MeanIter()
	})
	var rows []SyncRow
	for wi, w := range ws {
		row := SyncRow{Workload: w,
			PerIter:   map[string]time.Duration{},
			EndToEndH: map[string]float64{}}
		for si, s := range strats {
			mi := perIter[wi*len(strats)+si]
			row.PerIter[s] = mi
			row.EndToEndH[s] = hours(w.SyncIters, mi)
		}
		rows = append(rows, row)
	}
	return rows
}

// AsyncRow is one benchmark's asynchronous comparison (Table 5).
type AsyncRow struct {
	Workload  perfmodel.Workload
	PerIter   map[string]time.Duration
	EndToEndH map[string]float64
	Staleness map[string]float64
}

// asyncRows runs the Table 5 simulations (4 workers, S=3), one pooled
// cell per workload × strategy.
func asyncRows() []AsyncRow {
	ws := perfmodel.Workloads()
	strats := []string{StratPS, StratISW}
	cells := parMap(len(ws)*len(strats), func(i int) *core.AsyncStats {
		return simAsync(ws[i/len(strats)], strats[i%len(strats)], 4, 0, 60, 3)
	})
	var rows []AsyncRow
	for wi, w := range ws {
		row := AsyncRow{Workload: w,
			PerIter:   map[string]time.Duration{},
			EndToEndH: map[string]float64{},
			Staleness: map[string]float64{}}
		for si, s := range strats {
			stats := cells[wi*len(strats)+si]
			row.PerIter[s] = asyncPerIter(stats)
			row.Staleness[s] = stats.MeanStaleness()
			iters := w.AsyncItersPS
			if s == StratISW {
				iters = w.AsyncItersISW
			}
			row.EndToEndH[s] = hours(iters, row.PerIter[s])
		}
		rows = append(rows, row)
	}
	return rows
}

// Table4 reproduces the synchronous comparison: iterations, end-to-end
// training time, and final average reward per strategy.
//
// Iteration counts are the paper's (all three strategies are
// mathematically equivalent, so they share one count — verified by the
// core package's equivalence tests). Per-iteration times are simulated;
// end-to-end time is their product. Rewards shown are the paper's
// (trained on Atari/MuJoCo); the stand-in environments' achievable
// rewards are reported by the training-curve experiments instead.
func Table4() Result {
	var b strings.Builder
	rows := syncRows()
	fmt.Fprintf(&b, "%-6s %-12s | %-10s %-10s %-10s | %-28s\n",
		"Bench", "Iterations", "PS", "AR", "iSW", "paper end-to-end (PS/AR/iSW)")
	for _, r := range rows {
		w := r.Workload
		fmt.Fprintf(&b, "%-6s %-12.2e | %7.2f h  %7.2f h  %7.2f h | %.2f / %.2f / %.2f h\n",
			w.Name, float64(w.SyncIters),
			r.EndToEndH[StratPS], r.EndToEndH[StratAR], r.EndToEndH[StratISW],
			hours(w.SyncIters, w.PaperSyncPerIterPS),
			hours(w.SyncIters, w.PaperSyncPerIterAR),
			hours(w.SyncIters, w.PaperSyncPerIterISW))
	}
	b.WriteString("\nper-iteration (simulated vs paper, ms):\n")
	for _, r := range rows {
		w := r.Workload
		fmt.Fprintf(&b, "%-6s PS %8s (%6s)  AR %8s (%6s)  iSW %8s (%6s)\n", w.Name,
			ms(r.PerIter[StratPS]), ms(w.PaperSyncPerIterPS),
			ms(r.PerIter[StratAR]), ms(w.PaperSyncPerIterAR),
			ms(r.PerIter[StratISW]), ms(w.PaperSyncPerIterISW))
	}
	fmt.Fprintf(&b, "\nfinal average reward (paper, identical across sync strategies): ")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s %.2f  ", r.Workload.Name, r.Workload.FinalReward)
	}
	b.WriteByte('\n')
	return Result{ID: "table4", Title: "Performance comparison of synchronous distributed training", Text: b.String()}
}

// Table5 reproduces the asynchronous comparison (4 workers, S=3):
// iterations (paper), per-iteration time (simulated), end-to-end time,
// plus the measured gradient staleness explaining the iteration gap.
func Table5() Result {
	var b strings.Builder
	rows := asyncRows()
	fmt.Fprintf(&b, "%-6s | %-22s | %-26s | %-22s | %-18s\n",
		"Bench", "Iterations (PS/iSW)", "Per-iter ms sim (paper)", "End-to-end h (paper)", "mean staleness")
	for _, r := range rows {
		w := r.Workload
		fmt.Fprintf(&b, "%-6s | %9.2e/%9.2e | PS %6s(%6s) iSW %6s(%6s) | %6.2f/%6.2f (%5.2f/%5.2f) | PS %.2f iSW %.2f\n",
			w.Name, float64(w.AsyncItersPS), float64(w.AsyncItersISW),
			ms(r.PerIter[StratPS]), ms(w.PaperAsyncPerIterPS),
			ms(r.PerIter[StratISW]), ms(w.PaperAsyncPerIterISW),
			r.EndToEndH[StratPS], r.EndToEndH[StratISW],
			hours(w.AsyncItersPS, w.PaperAsyncPerIterPS),
			hours(w.AsyncItersISW, w.PaperAsyncPerIterISW),
			r.Staleness[StratPS], r.Staleness[StratISW])
	}
	b.WriteString("(iteration counts from the paper; iSwitch's lower staleness is what cuts them — see figure14)\n")
	return Result{ID: "table5", Title: "Performance comparison of asynchronous distributed training", Text: b.String()}
}

// Table3 reproduces the headline speedup summary: end-to-end speedup
// over the PS baseline for each benchmark, sync and async.
func Table3() Result {
	var b strings.Builder
	sync := syncRows()
	async := asyncRows()
	fmt.Fprintf(&b, "%-28s %-8s %-8s %-8s %-8s\n", "Speedup vs PS baseline", "DQN", "A2C", "PPO", "DDPG")

	line := func(label string, f func(i int) float64, paper []float64) {
		fmt.Fprintf(&b, "%-28s", label)
		for i := range sync {
			fmt.Fprintf(&b, " %-8.2f", f(i))
		}
		b.WriteString("\n")
		fmt.Fprintf(&b, "%-28s", "  (paper)")
		for _, p := range paper {
			fmt.Fprintf(&b, " %-8.2f", p)
		}
		b.WriteString("\n")
	}
	line("Sync  AR", func(i int) float64 {
		return sync[i].EndToEndH[StratPS] / sync[i].EndToEndH[StratAR]
	}, []float64{1.97, 1.62, 0.91, 0.90})
	line("Sync  iSW", func(i int) float64 {
		return sync[i].EndToEndH[StratPS] / sync[i].EndToEndH[StratISW]
	}, []float64{3.66, 2.55, 1.72, 1.83})
	line("Async iSW", func(i int) float64 {
		return async[i].EndToEndH[StratPS] / async[i].EndToEndH[StratISW]
	}, []float64{3.71, 3.14, 1.92, 1.56})
	return Result{ID: "table3", Title: "Summary of performance speedups in end-to-end training time", Text: b.String()}
}
