// Package experiments regenerates every table and figure of the
// paper's evaluation (§5–6). Each generator returns a Result whose text
// has the same rows/series the paper reports, produced by running the
// packet-level simulation (timing), the real RL stack (convergence), or
// both. DESIGN.md §4 maps each experiment to the modules involved.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment identifier (e.g. "table4", "figure12").
	ID string
	// Title matches the paper's caption.
	Title string
	// Text is the formatted reproduction output.
	Text string
}

// String renders the result with a header.
func (r Result) String() string {
	return fmt.Sprintf("=== %s: %s ===\n%s", strings.ToUpper(r.ID), r.Title, r.Text)
}

// Strategy names used across experiments.
const (
	StratPS  = "PS"
	StratAR  = "AR"
	StratISW = "iSW"
)

// SyncStrategies lists the synchronous comparison set in paper order.
func SyncStrategies() []string { return []string{StratPS, StratAR, StratISW} }

// ms formats a duration in milliseconds.
func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/1e6) }

// hours converts an iteration count × per-iteration time to hours.
func hours(iters int64, perIter time.Duration) float64 {
	return float64(iters) * perIter.Seconds() / 3600
}

// strategySpec maps a comparison strategy and rack shape onto a
// ClusterSpec: perRack <= 0 selects the flat single-switch testbed,
// otherwise the two-level rack topology; async picks the asynchronous
// flavor of the parameter server.
func strategySpec(w perfmodel.Workload, strategy string, nWorkers, perRack int, async bool) core.ClusterSpec {
	spec := core.ClusterSpec{
		Topology:    core.TopoStar,
		Workers:     nWorkers,
		ModelFloats: w.Floats(),
		Link:        netsim.TenGbE(),
		Uplink:      netsim.FortyGbE(),
	}
	if perRack > 0 {
		spec.Topology = core.TopoTree
		spec.PerRack = perRack
	}
	switch strategy {
	case StratPS:
		spec.Mode = core.ModePS
		if async {
			spec.Mode = core.ModeAsyncPS
		}
		cfg := core.PSConfigFor(w)
		spec.PS = &cfg
	case StratAR:
		spec.Mode = core.ModeAllReduce
		cfg := core.ARConfigFor(w)
		spec.AR = &cfg
	case StratISW:
		spec.Mode = core.ModeISW
		cfg := core.ISWConfigFor(w)
		spec.ISW = &cfg
	default:
		panic("experiments: unknown strategy " + strategy)
	}
	return spec
}

// simSync runs a synchronous timing simulation: nWorkers synthetic
// agents carrying workload w's exact model size, under the given
// strategy, measuring per-iteration time. perRack <= 0 selects the flat
// single-switch testbed; otherwise the two-level rack topology.
func simSync(w perfmodel.Workload, strategy string, nWorkers, perRack, iters int) *core.RunStats {
	k := sim.NewKernel()
	defer k.Shutdown() // release parked server loops (goroutine leak fix)
	agents := make([]rl.Agent, nWorkers)
	services := make([]core.Service, nWorkers)

	c := core.Build(k, strategySpec(w, strategy, nWorkers, perRack, false))
	for i := range agents {
		agents[i], services[i] = core.NewSyntheticAgent(w.Floats()), c.Client(i)
	}
	return core.RunSync(k, agents, services, core.SyncConfig{
		Iterations:   iters,
		LocalCompute: w.LocalCompute,
		WeightUpdate: w.WeightUpdate,
	})
}

// simAsync runs an asynchronous timing simulation and returns the
// stats; strategy is PS or iSW. updates is the number of weight
// updates to simulate.
func simAsync(w perfmodel.Workload, strategy string, nWorkers, perRack int, updates int64, staleness int64) *core.AsyncStats {
	k := sim.NewKernel()
	defer k.Shutdown()
	cfg := core.AsyncConfig{
		Updates: updates, StalenessBound: staleness,
		LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate,
	}
	agents := make([]rl.Agent, nWorkers)
	for i := range agents {
		agents[i] = core.NewSyntheticAgent(w.Floats())
	}
	spec := strategySpec(w, strategy, nWorkers, perRack, true)
	switch strategy {
	case StratPS:
		return core.RunAsyncPS(k, agents, core.NewSyntheticAgent(w.Floats()), core.Build(k, spec).PS, cfg)
	case StratISW:
		return core.RunAsyncISW(k, agents, core.Build(k, spec).ISW, cfg)
	}
	panic("experiments: unknown async strategy " + strategy)
}

// asyncPerIter extracts the per-iteration (inter-update) time from an
// async run: the PS server's update interval, or the mean across
// workers' LWU threads for iSwitch.
func asyncPerIter(s *core.AsyncStats) time.Duration { return s.MeanIter() }
