package experiments

import (
	"strings"
	"testing"
)

// TestJobSweepContentionRegression pins the multi-tenant sweep's shape:
// a lone job sets the contention-free baseline; co-tenants on the same
// rack uplink push per-job round time up (never down); fabric-wide
// aggregated throughput climbs with J and then saturates; and past the
// SRAM budget admission control starts queueing jobs.
func TestJobSweepContentionRegression(t *testing.T) {
	rows := jobSweepRows()
	counts := jobSweepCounts()
	if len(rows) != len(counts) {
		t.Fatalf("got %d rows for %d counts", len(rows), len(counts))
	}

	base := rows[0]
	if base.Jobs != 1 || base.Summary.Queued != 0 || base.Summary.Rejected != 0 {
		t.Fatalf("J=1 row malformed: %+v", base.Summary)
	}
	if base.Summary.Fairness != 1 {
		t.Fatalf("a lone job must have fairness 1, got %v", base.Summary.Fairness)
	}

	// Job 0 (the first DQN job) exists at every J: its round time is the
	// cross-J contention probe and must never improve as tenants arrive.
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1].PerJobRound[0], rows[i].PerJobRound[0]
		if cur < prev-prev/100 {
			t.Fatalf("job 0 round time improved with more tenants: J=%d %v -> J=%d %v",
				rows[i-1].Jobs, prev, rows[i].Jobs, cur)
		}
	}
	if shared := rows[1].PerJobRound[0]; shared <= base.PerJobRound[0] {
		t.Fatalf("rack-uplink contention should slow job 0: alone %v, shared %v",
			base.PerJobRound[0], shared)
	}

	// Aggregate throughput: strict gain from multi-tenancy at first,
	// then at worst a saturation plateau (admission-control tails may
	// cost a little, never a collapse).
	thr := func(i int) float64 { return rows[i].Summary.AggThroughputBps }
	if thr(1) <= thr(0) {
		t.Fatalf("two tenants should out-aggregate one: %v vs %v", thr(1), thr(0))
	}
	for i := 2; i < len(rows); i++ {
		if thr(i) < 0.85*thr(i-1) {
			t.Fatalf("throughput collapsed J=%d→J=%d: %v -> %v",
				rows[i-1].Jobs, rows[i].Jobs, thr(i-1), thr(i))
		}
	}
	if thr(len(rows)-1) <= thr(0) {
		t.Fatal("saturated fabric should still beat the single-tenant baseline")
	}

	// SRAM admission pressure: the cycled contexts exceed the root's
	// 16 MiB pool by the sixth job, and the FIFO defers more at J=8.
	byJ := map[int]int{}
	for _, row := range rows {
		byJ[row.Jobs] = row.Summary.Queued
	}
	if byJ[4] != 0 {
		t.Fatalf("J=4 fits the SRAM pool, yet %d jobs queued", byJ[4])
	}
	if byJ[6] == 0 {
		t.Fatal("J=6 exceeds the SRAM pool; expected queued jobs")
	}
	if byJ[8] <= byJ[6] {
		t.Fatalf("queueing should grow with J: J=6 %d, J=8 %d", byJ[6], byJ[8])
	}

	// Makespan never shrinks as jobs are added.
	for i := 1; i < len(rows); i++ {
		if rows[i].Summary.Makespan < rows[i-1].Summary.Makespan {
			t.Fatalf("makespan shrank J=%d→J=%d", rows[i-1].Jobs, rows[i].Jobs)
		}
	}

	text := renderJobSweep(rows).Text
	for _, want := range []string{"fairness", "DQN/0", "queued"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered sweep missing %q:\n%s", want, text)
		}
	}
}
