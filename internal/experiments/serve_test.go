package experiments

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"iswitch/internal/serve"
)

// TestRenderServe pins the report layout without running the cells.
func TestRenderServe(t *testing.T) {
	mk := func(p50, p99, max time.Duration) serve.Metrics {
		return serve.Metrics{Offered: 150_000, Achieved: 149_000,
			Sent: 600, Done: 600, P50: p50, P99: p99, Max: max,
			Occupancy: 0.42, MaxBatch: 3}
	}
	d := ServeData{
		Curve: []serve.SweepPoint{
			{Rate: 50_000, M: mk(22*time.Microsecond, 35*time.Microsecond, 60*time.Microsecond)},
			{Rate: 100_000, M: mk(25*time.Microsecond, 1646*time.Microsecond, 3*time.Millisecond),
				Saturated: true, Reason: "p99"},
		},
		CoRes: serve.CoResResult{
			Cfg: serve.CoResConfig{Rate: 150_000, TrainFloats: 20_000,
				UplinkBps: 2.5e9},
			Off: serve.CoResCell{Label: "off",
				Serve: mk(24*time.Microsecond, 59*time.Microsecond, 100*time.Microsecond)},
			FIFO: serve.CoResCell{Label: "fifo", TrainRound: 924 * time.Microsecond,
				Serve: mk(30*time.Microsecond, 244*time.Microsecond, 400*time.Microsecond)},
			Fair: serve.CoResCell{Label: "fair", TrainRound: 5774 * time.Microsecond,
				TrainPoliced: 429,
				Serve:        mk(26*time.Microsecond, 94*time.Microsecond, 200*time.Microsecond)},
		},
	}
	text := renderServe(d).Text
	for _, want := range []string{
		"saturated (p99)", "off", "fifo", "fair", "429",
		"4.1x", "1.6x", "price of latency isolation",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("serve report missing %q:\n%s", want, text)
		}
	}
}

// --- BENCH_serve.json --------------------------------------------------

type serveSweepJSON struct {
	Rate       float64 `json:"rate_per_sec"`
	AchievedPS float64 `json:"achieved_per_sec"`
	P50Us      float64 `json:"p50_us"`
	P99Us      float64 `json:"p99_us"`
	MaxUs      float64 `json:"max_us"`
	Occupancy  float64 `json:"occupancy"`
	MaxBatch   int     `json:"max_batch"`
	Saturated  bool    `json:"saturated"`
	Reason     string  `json:"reason,omitempty"`
}

type serveCellJSON struct {
	Label        string  `json:"label"`
	P50Us        float64 `json:"p50_us"`
	P99Us        float64 `json:"p99_us"`
	MaxUs        float64 `json:"max_us"`
	Sent         uint64  `json:"sent"`
	Done         uint64  `json:"done"`
	Lost         uint64  `json:"lost"`
	TrainRoundMs float64 `json:"train_round_ms"`
	TrainPoliced uint64  `json:"train_policed"`
	ServePoliced uint64  `json:"serve_policed"`
}

type serveDoc struct {
	Replicas    int              `json:"replicas"`
	Generators  int              `json:"generators"`
	P99SLOUs    float64          `json:"p99_slo_us"`
	Curve       []serveSweepJSON `json:"curve"`
	CoResRatePS float64          `json:"cores_rate_per_sec"`
	Off         serveCellJSON    `json:"cores_off"`
	FIFO        serveCellJSON    `json:"cores_fifo"`
	Fair        serveCellJSON    `json:"cores_fair"`
	FairOverOff float64          `json:"fair_p99_over_off"`
	FIFOOverOff float64          `json:"fifo_p99_over_off"`
}

func serveCellToJSON(c serve.CoResCell) serveCellJSON {
	return serveCellJSON{
		Label: c.Label,
		P50Us: us(c.Serve.P50), P99Us: us(c.Serve.P99), MaxUs: us(c.Serve.Max),
		Sent: c.Serve.Sent, Done: c.Serve.Done, Lost: c.Serve.Lost,
		TrainRoundMs: float64(c.TrainRound) / 1e6,
		TrainPoliced: c.TrainPoliced, ServePoliced: c.ServePoliced,
	}
}

func serveToDoc(d ServeData) serveDoc {
	doc := serveDoc{
		Replicas: serveSweepReplicas, Generators: serveSweepGenerators,
		P99SLOUs:    us(serveSweepSLO),
		CoResRatePS: d.CoRes.Cfg.Rate,
		Off:         serveCellToJSON(d.CoRes.Off),
		FIFO:        serveCellToJSON(d.CoRes.FIFO),
		Fair:        serveCellToJSON(d.CoRes.Fair),
		FairOverOff: ratio(d.CoRes.Fair.Serve.P99, d.CoRes.Off.Serve.P99),
		FIFOOverOff: ratio(d.CoRes.FIFO.Serve.P99, d.CoRes.Off.Serve.P99),
	}
	for _, pt := range d.Curve {
		doc.Curve = append(doc.Curve, serveSweepJSON{
			Rate: pt.Rate, AchievedPS: pt.M.Achieved,
			P50Us: us(pt.M.P50), P99Us: us(pt.M.P99), MaxUs: us(pt.M.Max),
			Occupancy: pt.M.Occupancy, MaxBatch: pt.M.MaxBatch,
			Saturated: pt.Saturated, Reason: pt.Reason,
		})
	}
	return doc
}

// TestWriteServeJSON records the serving baseline to the file named by
// BENCH_SERVE_JSON (skipped when unset). CI regenerates with:
//
//	BENCH_SERVE_JSON=BENCH_serve.json go test -run WriteServeJSON ./internal/experiments
func TestWriteServeJSON(t *testing.T) {
	out := os.Getenv("BENCH_SERVE_JSON")
	if out == "" {
		t.Skip("BENCH_SERVE_JSON not set")
	}
	data, err := json.MarshalIndent(serveToDoc(RunServe()), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestServeRegression is the CI serving smoke: re-run the sweep and the
// co-residency cells and gate them two ways against the committed
// BENCH_serve.json baseline. Relative gates (generous ratios, since the
// run is deterministic and drift only comes from code changes): the
// saturation rate must not shrink, matching pre-saturation points must
// not inflate p99 more than 1.5x, and train rounds must stay within
// 1.5x. Absolute gates restate the isolation claim itself: under
// weighted-fair + policing the compliant inference tenant's p99 stays
// within serveFairP99Cap of the unimpeded cell while FIFO shows at
// least serveFIFOP99Floor of inflation, zero inference frames are
// policed or lost anywhere, and the fair cell actually policed the
// training tenant. Gated on BENCH_SERVE_CHECK so the run happens once
// in CI, not in every local `go test ./...`.
func TestServeRegression(t *testing.T) {
	if os.Getenv("BENCH_SERVE_CHECK") == "" {
		t.Skip("BENCH_SERVE_CHECK not set")
	}
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatalf("baseline missing (regenerate with BENCH_SERVE_JSON): %v", err)
	}
	var base serveDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("corrupt baseline: %v", err)
	}

	cur := serveToDoc(RunServe())

	// Relative: saturation must not come earlier than the baseline.
	satRate := func(d serveDoc) float64 {
		for _, pt := range d.Curve {
			if pt.Saturated {
				return pt.Rate
			}
		}
		return 0
	}
	if b, c := satRate(base), satRate(cur); b > 0 && c > 0 && c < b {
		t.Errorf("fleet saturates at %.0f req/s, earlier than the %.0f baseline", c, b)
	}
	basePts := map[float64]serveSweepJSON{}
	for _, pt := range base.Curve {
		basePts[pt.Rate] = pt
	}
	for _, pt := range cur.Curve {
		b, ok := basePts[pt.Rate]
		if !ok || pt.Saturated || b.Saturated {
			continue
		}
		if b.P99Us > 0 && pt.P99Us > 1.5*b.P99Us {
			t.Errorf("rate %.0f: p99 %.1fus exceeds 1.5x the %.1fus baseline", pt.Rate, pt.P99Us, b.P99Us)
		}
	}
	for _, pair := range []struct {
		name string
		b, c serveCellJSON
	}{{"fifo", base.FIFO, cur.FIFO}, {"fair", base.Fair, cur.Fair}} {
		if pair.b.TrainRoundMs > 0 && pair.c.TrainRoundMs > 1.5*pair.b.TrainRoundMs {
			t.Errorf("%s train round %.3fms exceeds 1.5x the %.3fms baseline",
				pair.name, pair.c.TrainRoundMs, pair.b.TrainRoundMs)
		}
	}

	// Absolute: the isolation claim itself.
	for _, c := range []serveCellJSON{cur.Off, cur.FIFO, cur.Fair} {
		if c.Lost != 0 {
			t.Errorf("cell %s lost %d inference requests", c.Label, c.Lost)
		}
		if c.ServePoliced != 0 {
			t.Errorf("cell %s policed %d compliant inference frames", c.Label, c.ServePoliced)
		}
	}
	if cur.FIFOOverOff < serveFIFOP99Floor {
		t.Errorf("fifo p99 only %.2fx the unimpeded cell (< %.1fx): no contention to isolate",
			cur.FIFOOverOff, serveFIFOP99Floor)
	}
	if cur.FairOverOff > serveFairP99Cap {
		t.Errorf("fair p99 %.2fx the unimpeded cell exceeds the %.1fx isolation gate",
			cur.FairOverOff, serveFairP99Cap)
	}
	if cur.Fair.P99Us >= cur.FIFO.P99Us {
		t.Errorf("fair p99 %.1fus not below fifo %.1fus", cur.Fair.P99Us, cur.FIFO.P99Us)
	}
	if cur.Fair.TrainPoliced == 0 {
		t.Error("fair cell never policed the training tenant (policer not engaged)")
	}
}
