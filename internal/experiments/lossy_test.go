package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// TestRenderLossy pins the report layout without running the sweep.
func TestRenderLossy(t *testing.T) {
	d := LossyData{Cells: []LossyCell{
		{Topology: "star", Mode: "sync", Loss: 0, Workers: 8, Iterations: 40,
			MeanIter: 1111 * time.Microsecond, MaxIter: 1111 * time.Microsecond,
			Goodput: 899.0, Overhead: 1.0},
		{Topology: "fattree", Mode: "sync", Fault: "failover", Workers: 8,
			Iterations: 40, MeanIter: 2388 * time.Microsecond,
			MaxIter: 49730 * time.Microsecond, Goodput: 419.9, Overhead: 2.14,
			HelpsSent: 222, Failovers: 8},
	}}
	text := renderLossy(d).Text
	for _, want := range []string{"star", "fattree", "failover", "2.14x", "49.73", "Recovery is exact"} {
		if !strings.Contains(text, want) {
			t.Fatalf("lossy report missing %q:\n%s", want, text)
		}
	}
}

// --- BENCH_lossy.json --------------------------------------------------

type lossyCellJSON struct {
	Topology   string  `json:"topology"`
	Mode       string  `json:"mode"`
	Fault      string  `json:"fault"`
	Loss       float64 `json:"loss"`
	Workers    int     `json:"workers"`
	Iterations int     `json:"iterations"`
	TotalMs    float64 `json:"total_ms"`
	MeanIterMs float64 `json:"mean_iter_ms"`
	// MaxIterMs is the slowest single iteration — the recovery latency.
	MaxIterMs   float64 `json:"max_iter_ms"`
	Goodput     float64 `json:"goodput_updates_per_sec"`
	Overhead    float64 `json:"overhead_vs_clean"`
	Drops       uint64  `json:"drops"`
	HelpsSent   uint64  `json:"helps_sent"`
	Retransmits uint64  `json:"retransmits"`
	ShadowHits  uint64  `json:"shadow_hits"`
	Targeted    uint64  `json:"targeted_relays"`
	Evicted     uint64  `json:"evicted"`
	Rejoins     uint64  `json:"rejoins"`
	Failovers   uint64  `json:"failovers"`
}

type lossyDoc struct {
	Workers     int             `json:"workers"`
	Iterations  int             `json:"iterations"`
	ModelFloats int             `json:"model_floats"`
	Cells       []lossyCellJSON `json:"cells"`
}

func lossyCellKey(topo, mode, fault string, loss float64) string {
	return fmt.Sprintf("%s/%s/%s/%.4f", topo, mode, fault, loss)
}

func lossyToDoc(d LossyData) lossyDoc {
	doc := lossyDoc{Workers: lossyWorkers, Iterations: lossyIterations, ModelFloats: lossyModelFloats}
	for _, c := range d.Cells {
		doc.Cells = append(doc.Cells, lossyCellJSON{
			Topology: c.Topology, Mode: c.Mode, Fault: c.Fault, Loss: c.Loss,
			Workers: c.Workers, Iterations: c.Iterations,
			TotalMs:    float64(c.Total) / 1e6,
			MeanIterMs: float64(c.MeanIter) / 1e6,
			MaxIterMs:  float64(c.MaxIter) / 1e6,
			Goodput:    c.Goodput, Overhead: c.Overhead,
			Drops: c.Drops, HelpsSent: c.HelpsSent, Retransmits: c.Retransmits,
			ShadowHits: c.ShadowHits, Targeted: c.Targeted,
			Evicted: c.Evicted, Rejoins: c.Rejoins, Failovers: c.Failovers,
		})
	}
	return doc
}

// TestWriteLossyJSON records the reliability baseline to the file named
// by BENCH_LOSSY_JSON (skipped when unset, so a plain `go test ./...`
// never writes files). CI uses:
//
//	BENCH_LOSSY_JSON=BENCH_lossy.json go test -run WriteLossyJSON ./internal/experiments
func TestWriteLossyJSON(t *testing.T) {
	out := os.Getenv("BENCH_LOSSY_JSON")
	if out == "" {
		t.Skip("BENCH_LOSSY_JSON not set")
	}
	data, err := json.MarshalIndent(lossyToDoc(RunLossy()), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}

// TestLossyRegression is the CI reliability smoke: re-run the sweep and
// fail if any cell's recovery latency (slowest iteration) grew more than
// 50% over the committed BENCH_lossy.json baseline, or its goodput fell
// below 75% of it. The sweep is virtual-time and fully deterministic, so
// drift only comes from code changes; the generous ratios leave room for
// deliberate protocol tuning without churning the baseline on every
// timing-neutral refactor. Fault cells must also still exercise their
// machinery (rejoin/eviction/failover counters stay nonzero). Gated on
// BENCH_LOSSY_CHECK so the ~1s sweep runs once in CI, not in every local
// `go test ./...`.
func TestLossyRegression(t *testing.T) {
	if os.Getenv("BENCH_LOSSY_CHECK") == "" {
		t.Skip("BENCH_LOSSY_CHECK not set")
	}
	raw, err := os.ReadFile("../../BENCH_lossy.json")
	if err != nil {
		t.Fatalf("baseline missing (regenerate with BENCH_LOSSY_JSON): %v", err)
	}
	var base lossyDoc
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("corrupt baseline: %v", err)
	}
	baseCells := map[string]lossyCellJSON{}
	for _, c := range base.Cells {
		baseCells[lossyCellKey(c.Topology, c.Mode, c.Fault, c.Loss)] = c
	}

	cur := lossyToDoc(RunLossy())
	if len(cur.Cells) != len(base.Cells) {
		t.Logf("sweep grew from %d to %d cells; only common cells are gated (regenerate the baseline to cover the rest)",
			len(base.Cells), len(cur.Cells))
	}
	for _, c := range cur.Cells {
		key := lossyCellKey(c.Topology, c.Mode, c.Fault, c.Loss)
		b, ok := baseCells[key]
		if !ok {
			continue
		}
		if b.MaxIterMs > 0 && c.MaxIterMs > 1.5*b.MaxIterMs {
			t.Errorf("%s: recovery latency %.2fms exceeds 1.5x the %.2fms baseline", key, c.MaxIterMs, b.MaxIterMs)
		}
		if b.Goodput > 0 && c.Goodput < 0.75*b.Goodput {
			t.Errorf("%s: goodput %.1f/s fell below 75%% of the %.1f/s baseline", key, c.Goodput, b.Goodput)
		}
		switch c.Fault {
		case "crash-rejoin":
			if c.Rejoins == 0 {
				t.Errorf("%s: crash-rejoin cell completed without a rejoin", key)
			}
		case "crash-evict":
			if c.Evicted == 0 {
				t.Errorf("%s: crash-evict cell completed without an eviction", key)
			}
		case "failover":
			if c.Failovers == 0 {
				t.Errorf("%s: failover cell completed without any worker failing over", key)
			}
		}
		if c.Fault == "" && c.Loss == 0 && c.HelpsSent != 0 {
			t.Errorf("%s: %d spurious Helps at zero loss (timeout miscalibrated)", key, c.HelpsSent)
		}
	}
}
