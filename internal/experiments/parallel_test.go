package experiments

import (
	"runtime"
	"testing"
)

// TestParallelOutputByteIdentical is the harness's determinism
// guarantee: running a generator's cells concurrently must produce
// byte-identical Result text to the sequential run, because every cell
// is an isolated kernel with fixed seeds and results are assembled in
// submission order. One sync-path and one async-path generator cover
// both simulation drivers.
func TestParallelOutputByteIdentical(t *testing.T) {
	if raceEnabled {
		// The generators run ~10x slower under the race detector and this
		// test runs each one twice; on small machines that pushes the
		// package past go test's default timeout. Determinism is not a
		// race property — the pool's concurrency is still exercised under
		// -race by the other generator tests (which run with the default
		// sequential parallelism) and by internal/parallel's own suite.
		t.Skip("byte-identity check skipped under -race; see comment")
	}
	old := Parallelism()
	defer SetParallelism(old)

	gens := []func() Result{AblationMTU, AblationStaleness}
	SetParallelism(1)
	var seq []Result
	for _, g := range gens {
		seq = append(seq, g())
	}
	SetParallelism(4)
	for i, g := range gens {
		got := g()
		if got.Text != seq[i].Text {
			t.Errorf("%s: parallel output differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				got.ID, seq[i].Text, got.Text)
		}
		if got.String() != seq[i].String() {
			t.Errorf("%s: rendered Result differs between parallelism levels", got.ID)
		}
	}
}

func TestSetParallelismClamp(t *testing.T) {
	old := Parallelism()
	defer SetParallelism(old)
	SetParallelism(0)
	if got, want := Parallelism(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("SetParallelism(0) = %d, want GOMAXPROCS %d", got, want)
	}
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("SetParallelism(3) = %d", Parallelism())
	}
}
