package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"iswitch/internal/compress"
	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
	"iswitch/internal/tensor/kernels"
)

// Quantized/sparse aggregation sweep: the compression tentpole measured
// two ways. The DES side runs an oversubscribed fat-tree under every
// wire scheme and records round time and access-link bytes (the ≥1.5×
// speedup / ≥1.9× byte-cut acceptance gates live on the int32block
// cell). The ablation side aggregates real RL gradients (DQN, A2C,
// PPO, DDPG) through each codec offline and records accuracy against
// the exact float32 sum, modeled wire bytes, and the drift a short
// training trajectory accumulates versus the uncompressed run.

// QuantCell is one DES sweep cell.
type QuantCell struct {
	Scheme     string
	Workers    int
	Iterations int

	Total    time.Duration // virtual makespan
	MeanIter time.Duration
	// AccessBytes counts both directions of every worker access link —
	// where the per-element wire format shows up undiluted.
	AccessBytes uint64

	// Speedup and ByteRatio are relative to the CompNone cell.
	Speedup   float64
	ByteRatio float64
}

// QuantAblationRow is one workload×scheme accuracy measurement.
type QuantAblationRow struct {
	Workload string
	Scheme   string
	// RelErr is the final-round aggregate's relative L2 error against
	// the exact float32 sum (after the int32block grid has adapted).
	RelErr float64
	// UploadBytes is the modeled bytes one worker sends per round.
	UploadBytes uint64
	// ParamDrift is the relative L2 distance between the final
	// parameters of a short training run under this scheme and the
	// uncompressed run's.
	ParamDrift float64
}

// QuantData is the full sweep.
type QuantData struct {
	Cells    []QuantCell
	Ablation []QuantAblationRow
}

// DES sweep shape: a KAry=4 fat-tree with 2 hosts per edge switch (16
// workers) over a uniform 10 GbE fabric, carrying a DQN-scale model
// (6.4 MB) — the shape where wire bytes dominate the round and the
// calibrated 500 µs per-round client cost (perfmodel.ISWWorkerBase)
// no longer hides the transport.
const (
	quantModelFloats = 1_600_000
	quantIterations  = 8
	quantKAry        = 4
	quantHostsPer    = 2
)

func quantWorkload() (localCompute, weightUpdate time.Duration) {
	return 50 * time.Microsecond, 20 * time.Microsecond
}

// runQuantCell measures one scheme on the fat-tree.
func runQuantCell(scheme protocol.Compression) QuantCell {
	k := sim.NewKernel()
	spec := core.ClusterSpec{
		Topology:     core.TopoFatTree,
		Mode:         core.ModeISW,
		KAry:         quantKAry,
		HostsPerEdge: quantHostsPer,
		ModelFloats:  quantModelFloats,
		Link:         netsim.TenGbE(),
		Compression:  scheme,
	}
	cluster := core.Build(k, spec)
	workers := cluster.Workers()

	agents := make([]rl.Agent, len(workers))
	services := make([]core.Service, len(workers))
	for i := range workers {
		agents[i] = core.NewSyntheticAgent(quantModelFloats)
		services[i] = cluster.Client(i)
	}
	lc, wu := quantWorkload()
	stats := core.RunSync(k, agents, services, core.SyncConfig{
		Iterations: quantIterations, LocalCompute: lc, WeightUpdate: wu})

	cell := QuantCell{Scheme: scheme.String(), Workers: len(workers), Iterations: quantIterations,
		Total: stats.Total, MeanIter: stats.MeanIter()}
	for _, h := range workers {
		cell.AccessBytes += h.Port().TxBytes + h.Port().Peer().TxBytes
	}
	return cell
}

// --- Offline accuracy ablation on real RL gradients -------------------

const (
	quantAblWorkers = 4
	quantAblRounds  = 6
)

// quantHdr is the fixed per-packet wire overhead before the payload.
const quantHdr = protocol.EthernetHeaderLen + protocol.IPv4HeaderLen +
	protocol.UDPHeaderLen + protocol.SegFieldLen

// quantTrainRun trains quantAblWorkers copies of a workload agent for
// quantAblRounds synchronous rounds, aggregating through scheme, and
// returns worker 0's final parameters plus the final round's aggregate
// error and one worker's upload bytes.
func quantTrainRun(name string, scheme protocol.Compression) (params []float32, relErr float64, upload uint64) {
	agents := make([]rl.Agent, quantAblWorkers)
	for i := range agents {
		a, err := rl.NewWorkloadAgent(name, 42, int64(900+i))
		if err != nil {
			panic(err)
		}
		agents[i] = a
	}
	n := agents[0].GradLen()
	per := protocol.FloatsPerPacket
	segs := protocol.SegmentCountWith(n, per)
	codec := compress.NewCodec(compress.Config{Scheme: scheme}, n, per)

	grads := make([][]float32, quantAblWorkers)
	for w := range grads {
		grads[w] = make([]float32, n)
	}
	sum := make([]float32, n)
	exact := make([]float64, n)
	qsum := make([][]int32, segs)
	var sel []int32
	var keys []uint64
	topk := int(compress.DefaultTopKFrac * float64(n))
	if topk < 1 {
		topk = 1
	}

	for r := 0; r < quantAblRounds; r++ {
		for i := range exact {
			exact[i] = 0
		}
		for i := range sum {
			sum[i] = 0
		}
		upload = 0
		for w, a := range agents {
			a.ComputeGradient(grads[w])
			for i, v := range grads[w] {
				exact[i] += float64(v)
			}
		}
		switch scheme {
		case protocol.CompNone:
			for w := range agents {
				for i, v := range grads[w] {
					sum[i] += v
				}
			}
			for s := 0; s < segs; s++ {
				lo, hi := protocol.SegmentRangeWith(n, uint64(s), per)
				upload += uint64(quantHdr + 4*(hi-lo))
			}
		case protocol.CompFP16:
			// Workers round through the wire precision; the switch sums
			// float32 and rounds the emission once.
			for w := range agents {
				g := append([]float32(nil), grads[w]...)
				kernels.F16RoundInPlace(g)
				for i, v := range g {
					sum[i] += v
				}
			}
			kernels.F16RoundInPlace(sum)
			for s := 0; s < segs; s++ {
				lo, hi := protocol.SegmentRangeWith(n, uint64(s), per)
				upload += uint64(quantHdr + 2*(hi-lo))
			}
		case protocol.CompInt32Block:
			// All workers share one grid timeline, so one codec encodes
			// for everybody; the switch-side saturating accumulation and
			// emission narrowing run through the same kernels the
			// accelerator uses.
			for s := 0; s < segs; s++ {
				lo, hi := protocol.SegmentRangeWith(n, uint64(s), per)
				if qsum[s] == nil {
					qsum[s] = make([]int32, hi-lo)
				}
				for i := range qsum[s] {
					qsum[s][i] = 0
				}
				for w := range agents {
					q := codec.EncodeQ(uint64(s), grads[w][lo:hi])
					kernels.AddSatInt32(qsum[s], q)
				}
				upload += uint64(quantHdr + protocol.ShiftFieldLen + 2*(hi-lo))
				shift := kernels.NarrowShift(kernels.MaxAbsI32(qsum[s]))
				kernels.ShrI32(qsum[s], shift)
				codec.DecodeQ(uint64(s), qsum[s], shift, sum[lo:hi])
			}
			codec.Advance()
		case protocol.CompTopK:
			counts := make([]int, segs)
			for w := range agents {
				sel, keys = kernels.TopKSelect(sel[:0], keys, grads[w], topk)
				for _, gi := range sel {
					sum[gi] += grads[w][gi]
					if w == 0 {
						counts[int(gi)/per]++
					}
				}
			}
			for s := 0; s < segs; s++ {
				upload += uint64(quantHdr + protocol.CountFieldLen + protocol.SparseEntryLen*counts[s])
			}
		}
		var errN, refN float64
		for i := range exact {
			d := float64(sum[i]) - exact[i]
			errN += d * d
			refN += exact[i] * exact[i]
		}
		relErr = math.Sqrt(errN) / (math.Sqrt(refN) + 1e-30)
		for _, a := range agents {
			a.ApplyAggregated(sum, quantAblWorkers)
		}
	}
	params = make([]float32, n)
	agents[0].ReadParams(params)
	return params, relErr, upload
}

// quantAblation measures every workload×scheme pair.
func quantAblation() []QuantAblationRow {
	var rows []QuantAblationRow
	for _, name := range rl.Workloads() {
		ref, _, refBytes := quantTrainRun(name, protocol.CompNone)
		rows = append(rows, QuantAblationRow{Workload: name, Scheme: "none", UploadBytes: refBytes})
		for _, scheme := range []protocol.Compression{protocol.CompFP16, protocol.CompInt32Block, protocol.CompTopK} {
			params, relErr, upload := quantTrainRun(name, scheme)
			var dN, rN float64
			for i := range params {
				d := float64(params[i] - ref[i])
				dN += d * d
				rN += float64(ref[i]) * float64(ref[i])
			}
			rows = append(rows, QuantAblationRow{
				Workload: name, Scheme: scheme.String(), RelErr: relErr,
				UploadBytes: upload, ParamDrift: math.Sqrt(dN) / (math.Sqrt(rN) + 1e-30),
			})
		}
	}
	return rows
}

// RunQuant runs the full sweep.
func RunQuant() QuantData {
	var d QuantData
	schemes := []protocol.Compression{protocol.CompNone, protocol.CompFP16,
		protocol.CompInt32Block, protocol.CompTopK}
	cells := parMap(len(schemes), func(i int) QuantCell { return runQuantCell(schemes[i]) })
	base := cells[0]
	for i := range cells {
		if base.MeanIter > 0 {
			cells[i].Speedup = float64(base.MeanIter) / float64(cells[i].MeanIter)
		}
		if cells[i].AccessBytes > 0 {
			cells[i].ByteRatio = float64(base.AccessBytes) / float64(cells[i].AccessBytes)
		}
	}
	d.Cells = cells
	d.Ablation = quantAblation()
	return d
}

// Quant renders the sweep as an experiment result.
func Quant() Result { return renderQuant(RunQuant()) }

func renderQuant(d QuantData) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "Compressed aggregation on a k=%d fat-tree, %d hosts/edge (%d workers),\n",
		quantKAry, quantHostsPer, quantKAry*(quantKAry/2)*quantHostsPer)
	fmt.Fprintf(&b, "uniform 10 GbE, %d-float model, %d iterations.\n\n", quantModelFloats, quantIterations)
	fmt.Fprintf(&b, "%-11s %12s %14s %8s %7s\n", "Scheme", "mean iter ms", "access MB", "speedup", "bytes")
	for _, c := range d.Cells {
		fmt.Fprintf(&b, "%-11s %12s %14.2f %7.2fx %6.2fx\n",
			c.Scheme, ms(c.MeanIter), float64(c.AccessBytes)/1e6, c.Speedup, c.ByteRatio)
	}
	b.WriteString("\nAccuracy on real RL gradients (4 workers, final of 6 rounds):\n")
	fmt.Fprintf(&b, "%-6s %-11s %12s %12s %12s\n", "Bench", "scheme", "rel err", "upload KB", "param drift")
	for _, r := range d.Ablation {
		fmt.Fprintf(&b, "%-6s %-11s %12.3e %12.1f %12.3e\n",
			r.Workload, r.Scheme, r.RelErr, float64(r.UploadBytes)/1e3, r.ParamDrift)
	}
	b.WriteString("\nint32block is exactly associative on the switch: the speedup column is\n")
	b.WriteString("bit-reproducible under any arrival order (see core's order-invariance test).\n")
	b.WriteString("topk cuts upload bytes only — switch emissions are dense raw float32, and\n")
	b.WriteString("the broadcast leg is the round's bottleneck, so its round time matches none.\n")
	return Result{ID: "quant",
		Title: "Quantized and sparse in-switch aggregation sweep", Text: b.String()}
}
