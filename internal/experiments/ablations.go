package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/accel"
	"iswitch/internal/core"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
	"iswitch/internal/rl"
	"iswitch/internal/sim"
)

// Ablations for the design choices DESIGN.md calls out. These go beyond
// the paper's figures: each isolates one mechanism's contribution.

// AblationStaleness sweeps Algorithm 1's staleness bound S and reports
// commit/discard behaviour and mean staleness (async iSwitch, DQN-sized
// gradients, 4 workers).
func AblationStaleness() Result {
	w, _ := perfmodel.WorkloadByName("DQN")
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-12s %-12s %-16s %-14s\n", "S", "committed", "discarded", "mean staleness", "per-iter ms")
	bounds := []int64{0, 1, 3, 8}
	cells := parMap(len(bounds), func(i int) *core.AsyncStats {
		return simAsync(w, StratISW, 4, 0, 40, bounds[i])
	})
	for i, s := range bounds {
		stats := cells[i]
		fmt.Fprintf(&b, "%-4d %-12d %-12d %-16.2f %-14s\n",
			s, stats.Committed, stats.Discarded, stats.MeanStaleness(), ms(stats.MeanIter()))
	}
	b.WriteString("(larger S commits more but staler gradients; S=3 is the paper's setting)\n")
	return Result{ID: "ablation-staleness", Title: "Staleness bound sweep (async iSwitch)", Text: b.String()}
}

// AblationHierarchical compares hierarchical iSwitch aggregation
// (two-level ToR+root and the full three-tier ToR+AGG+core fabric)
// against a hypothetical flat 12-port accelerator switch, isolating
// what the hierarchy costs. DQN-sized gradients make the uplink hops
// visible.
func AblationHierarchical() Result {
	w, _ := perfmodel.WorkloadByName("DQN")
	var b strings.Builder
	sims := parMap(3, func(i int) *core.RunStats {
		switch i {
		case 0:
			return simSync(w, StratISW, 12, 0, 2)
		case 1:
			return simSync(w, StratISW, 12, 3, 2)
		default:
			return simSyncThreeTier(w, 2, 2, 3, 2)
		}
	})
	flat, tree, three := sims[0], sims[1], sims[2]
	fmt.Fprintf(&b, "12 workers, %s-sized gradients (%.2f MB):\n", w.Name, float64(w.ModelBytes)/1e6)
	fmt.Fprintf(&b, "  flat single iSwitch (hypothetical 12-port)  per-iter %8s ms (agg %8s ms)\n",
		ms(flat.MeanIter()), ms(flat.MeanAgg()))
	fmt.Fprintf(&b, "  two-level: 4 racks x 3 + root               per-iter %8s ms (agg %8s ms)\n",
		ms(tree.MeanIter()), ms(tree.MeanAgg()))
	fmt.Fprintf(&b, "  three-tier: 2 AGGs x 2 ToRs x 3 + core      per-iter %8s ms (agg %8s ms)\n",
		ms(three.MeanIter()), ms(three.MeanAgg()))
	b.WriteString("(finding: the hierarchy is essentially free — on-the-fly partial\n" +
		" aggregation keeps each uplink at 1x gradient of traffic and pipelining\n" +
		" hides the extra hops behind the edge-link serialization, which is why\n" +
		" the paper can scale with the existing rack network, §3.4)\n")
	return Result{ID: "ablation-hierarchical", Title: "Hierarchical vs flat iSwitch aggregation", Text: b.String()}
}

// simSyncThreeTier runs a sync timing simulation on the three-tier
// fabric.
func simSyncThreeTier(w perfmodel.Workload, nAGGs, torsPerAGG, hostsPerToR, iters int) *core.RunStats {
	k := sim.NewKernel()
	defer k.Shutdown()
	edge, aggL, coreL := netsim.DefaultThreeTierLinks()
	cfg := core.ISWConfigFor(w)
	c := core.Build(k, core.ClusterSpec{
		Topology: core.TopoThreeTier, Mode: core.ModeISW,
		AGGs: nAGGs, ToRsPerAGG: torsPerAGG, HostsPerToR: hostsPerToR,
		ModelFloats: w.Floats(),
		Link:        edge, Uplink: aggL, CoreLink: coreL,
		ISW: &cfg,
	}).ISW
	n := nAGGs * torsPerAGG * hostsPerToR
	agents := make([]rl.Agent, n)
	services := make([]core.Service, n)
	for i := range agents {
		agents[i], services[i] = core.NewSyntheticAgent(w.Floats()), c.Client(i)
	}
	return core.RunSync(k, agents, services, core.SyncConfig{
		Iterations: iters, LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate})
}

// AblationH sweeps the aggregation threshold H below the worker count
// (the SetH control knob) at the accelerator level, where its effect is
// directly observable: with 4 workers streaming one contribution each,
// H determines how many broadcasts fire per segment, how many
// contributions each carries, and how long the first aggregate takes to
// become available.
func AblationH() Result {
	var b strings.Builder
	const workers = 4
	fmt.Fprintf(&b, "%-4s %-22s %-24s %-24s\n",
		"H", "emissions (4 inputs)", "contributions/emission", "first-emission latency")
	for _, h := range []uint32{1, 2, 4} {
		cfg := accel.DefaultConfig()
		cfg.Threshold = h
		a := accel.New(cfg)
		data := make([]float32, protocol.FloatsPerPacket)
		for i := range data {
			data[i] = 1
		}
		var emissions int
		var firstAt time.Duration
		var elapsed time.Duration
		var firstSum float32
		for w := 0; w < workers; w++ {
			sum, done, lat := a.Ingest(0, data)
			elapsed += lat
			if done {
				emissions++
				if emissions == 1 {
					firstAt = elapsed
					firstSum = sum[0]
				}
			}
		}
		fmt.Fprintf(&b, "%-4d %-22d %-24.0f %-24s\n",
			h, emissions, firstSum, firstAt)
	}
	b.WriteString("(H=workers gives one full aggregate; smaller H trades aggregate\n" +
		" completeness for earlier availability — the SetH escape hatch the\n" +
		" control plane uses with FBcast when a worker goes missing)\n")
	return Result{ID: "ablation-h", Title: "Aggregation threshold (SetH) sweep", Text: b.String()}
}

// AblationMTU sweeps the gradient payload per packet, showing why
// packet-granular aggregation wants full-MTU packets.
func AblationMTU() Result {
	var b strings.Builder
	w, _ := perfmodel.WorkloadByName("A2C")
	fmt.Fprintf(&b, "%-18s %-14s\n", "floats/packet", "iSW agg ms")
	fracs := []int{1, 2, 4, 8}
	cells := parMap(len(fracs), func(fi int) *core.RunStats {
		k := sim.NewKernel()
		defer k.Shutdown()
		cfg := core.DefaultISWConfig()
		cfg.FloatsPerPacket = protocol.FloatsPerPacket / fracs[fi]
		c := core.Build(k, core.ClusterSpec{
			Topology: core.TopoStar, Mode: core.ModeISW, Workers: 4,
			ModelFloats: w.Floats(), Link: netsim.TenGbE(), ISW: &cfg,
		}).ISW
		agents := make([]rl.Agent, 4)
		services := make([]core.Service, 4)
		for i := range agents {
			agents[i], services[i] = core.NewSyntheticAgent(w.Floats()), c.Client(i)
		}
		return core.RunSync(k, agents, services, core.SyncConfig{Iterations: 2,
			LocalCompute: w.LocalCompute, WeightUpdate: w.WeightUpdate})
	})
	for fi, frac := range fracs {
		fmt.Fprintf(&b, "%-18d %-14s\n", protocol.FloatsPerPacket/frac, ms(cells[fi].MeanAgg()))
	}
	b.WriteString("(smaller packets pay per-packet overheads more often; the paper fills MTU frames)\n")
	return Result{ID: "ablation-mtu", Title: "Packet payload size sweep", Text: b.String()}
}
