package experiments

import (
	"fmt"
	"strings"
	"time"

	"iswitch/internal/multijob"
	"iswitch/internal/netsim"
	"iswitch/internal/perfmodel"
	"iswitch/internal/sim"
)

// Multi-tenant job-count sweep: J co-running training jobs share one
// iSwitch hierarchy (per-job SRAM contexts, shared accelerator buses,
// FIFO admission). The paper evaluates a single job owning the switch;
// this sweep measures what sharing costs. Topology: racks of 4 hosts
// under ToR iSwitches with a 10GbE uplink to a root iSwitch — two
// 2-worker jobs share each rack, so co-tenants contend on the
// oversubscribed uplink and per-job round time rises with J, while
// fabric-wide aggregated throughput climbs until the hierarchy
// saturates. Beyond the root's SRAM budget (its default 16 MiB pool
// holds five of the cycled contexts; the sixth queues) admission
// control serializes the excess.

// jobSweepCounts is the co-running job grid.
func jobSweepCounts() []int { return []int{1, 2, 4, 6, 8} }

const (
	jobSweepWorkersPerJob = 2
	jobSweepPerRack       = 4
	jobSweepIters         = 2
)

// jobSweepSpecs builds J synchronous jobs cycling the four paper
// workloads at full model size (DQN and A2C contexts are megabytes, so
// the default SRAM pool genuinely fills up around J=6).
func jobSweepSpecs(j int) []multijob.JobSpec {
	wls := perfmodel.Workloads()
	specs := make([]multijob.JobSpec, j)
	for i := range specs {
		wl := wls[i%len(wls)]
		specs[i] = multijob.JobSpec{
			Name:     fmt.Sprintf("%s/%d", wl.Name, i),
			Workload: wl, Workers: jobSweepWorkersPerJob,
			Mode: multijob.ModeSync, Iterations: jobSweepIters,
		}
	}
	return specs
}

// JobSweepRow is one J's outcome.
type JobSweepRow struct {
	Jobs int
	// Names and PerJobRound hold each job's label and mean round time
	// in submission order (PerJobRound[0] is always the first DQN job,
	// the cross-J contention probe).
	Names       []string
	PerJobRound []time.Duration
	Summary     multijob.Summary
}

// jobSweepRows runs the sweep grid, one kernel per J (cells are
// independent simulations, so they run through the parallel harness).
// The experiment text and the contention regression test both consume
// these rows.
func jobSweepRows() []JobSweepRow {
	counts := jobSweepCounts()
	return parMap(len(counts), func(i int) JobSweepRow {
		j := counts[i]
		k := sim.NewKernel()
		f := multijob.NewTreeFabric(k, jobSweepWorkersPerJob*j, jobSweepPerRack,
			netsim.TenGbE(), netsim.TenGbE(), multijob.FabricConfig{})
		res, err := multijob.Run(f, jobSweepSpecs(j))
		if err != nil {
			panic(fmt.Sprintf("experiments: job-sweep J=%d: %v", j, err))
		}
		row := JobSweepRow{Jobs: j, Summary: multijob.Summarize(res)}
		for _, r := range res {
			row.Names = append(row.Names, r.Name)
			row.PerJobRound = append(row.PerJobRound, r.MeanRound)
		}
		return row
	})
}

// JobSweep runs and renders the multi-tenant job-count sweep.
func JobSweep() Result { return renderJobSweep(jobSweepRows()) }

// renderJobSweep formats sweep rows (split from the runs so tests can
// render the rows they assert on without a second sweep).
func renderJobSweep(rows []JobSweepRow) Result {
	var b strings.Builder
	fmt.Fprintf(&b, "J co-running jobs (sync, %d workers each, workloads cycled), "+
		"iSwitch racks of %d on a 10GbE uplink.\n", jobSweepWorkersPerJob, jobSweepPerRack)
	fmt.Fprintf(&b, "queued = jobs deferred by SRAM admission control; round = per-job mean, ms;\n")
	fmt.Fprintf(&b, "agg thr = switch-aggregated gradient throughput; fairness = Jain over wire bytes.\n\n")
	fmt.Fprintf(&b, "%4s %7s %13s %12s %13s %9s\n",
		"J", "queued", "makespan(ms)", "round(ms)", "agg thr(Gb/s)", "fairness")
	for _, row := range rows {
		s := row.Summary
		fmt.Fprintf(&b, "%4d %7d %13s %12s %13.3f %9.3f\n",
			row.Jobs, s.Queued, ms(s.Makespan), ms(s.MeanRound),
			s.AggThroughputBps/1e9, s.Fairness)
	}
	b.WriteString("\nPer-job round time (ms), submission order:\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "J=%d:", row.Jobs)
		for i, d := range row.PerJobRound {
			fmt.Fprintf(&b, " %s=%s", row.Names[i], ms(d))
		}
		b.WriteString("\n")
	}
	return Result{ID: "job-sweep",
		Title: "Multi-tenant in-switch aggregation job-count sweep", Text: b.String()}
}
