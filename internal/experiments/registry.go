package experiments

// Spec describes one runnable experiment for the CLI and docs.
type Spec struct {
	ID        string
	Title     string
	Expensive bool // involves functional RL training (seconds–minutes)
	Run       func() Result
}

// Specs lists every reproduction in paper order. opts sizes the
// functional (training-curve) runs.
func Specs(opts CurveOpts) []Spec {
	return []Spec{
		{ID: "table1", Title: "RL algorithm study", Run: Table1},
		{ID: "figure4", Title: "Per-iteration breakdown (PS, AR)", Run: Figure4},
		{ID: "table2", Title: "iSwitch control messages", Run: Table2},
		{ID: "figure5", Title: "Packet formats", Run: Figure5},
		{ID: "figure7", Title: "Accelerator datapath", Run: Figure7},
		{ID: "figure8", Title: "On-the-fly vs whole-vector aggregation", Run: Figure8},
		{ID: "table3", Title: "End-to-end speedup summary", Run: Table3},
		{ID: "figure12", Title: "Sync per-iteration comparison", Run: Figure12},
		{ID: "figure13", Title: "Sync DQN training curves", Expensive: true,
			Run: func() Result { return Figure13(opts) }},
		{ID: "table4", Title: "Sync comparison", Run: Table4},
		{ID: "table5", Title: "Async comparison", Run: Table5},
		{ID: "figure14", Title: "Async DQN training curves", Expensive: true,
			Run: func() Result { return Figure14(opts) }},
		{ID: "figure15", Title: "Scalability", Run: Figure15},
		{ID: "shard-sweep", Title: "Sharded-PS shard-count sweep", Run: ShardSweep},
		{ID: "job-sweep", Title: "Multi-tenant job-count sweep", Run: JobSweep},
		{ID: "lossy", Title: "Reliability: loss, crash, failover sweep", Run: Lossy},
		{ID: "ablation-staleness", Title: "Staleness bound sweep", Run: AblationStaleness},
		{ID: "ablation-h", Title: "Aggregation threshold sweep", Run: AblationH},
		{ID: "ablation-hierarchical", Title: "Hierarchical vs flat", Run: AblationHierarchical},
		{ID: "ablation-mtu", Title: "Packet payload sweep", Run: AblationMTU},
		{ID: "ablation-fp16", Title: "Half-precision wire format", Run: AblationFP16},
		{ID: "quant", Title: "Quantized and sparse aggregation sweep", Run: Quant},
		{ID: "fair", Title: "Adversarial-tenant fairness isolation", Run: Fairness},
		{ID: "serve", Title: "Inference serving: saturation sweep + training co-residency", Run: Serve},
	}
}

// ByID finds an experiment spec.
func ByID(id string, opts CurveOpts) (Spec, bool) {
	for _, s := range Specs(opts) {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}
