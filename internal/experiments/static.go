package experiments

import (
	"fmt"
	"strings"

	"iswitch/internal/accel"
	"iswitch/internal/perfmodel"
	"iswitch/internal/protocol"
)

// Table1 reproduces the RL-algorithm study: model size and training
// iterations per benchmark.
func Table1() Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-12s %-12s %-12s %-12s\n", "RL Algorithm",
		"DQN", "A2C", "PPO", "DDPG")
	row := func(label string, f func(perfmodel.Workload) string) {
		fmt.Fprintf(&b, "%-12s", label)
		for _, w := range perfmodel.Workloads() {
			fmt.Fprintf(&b, " %-12s", f(w))
		}
		b.WriteByte('\n')
	}
	row("Environment", func(w perfmodel.Workload) string {
		return strings.Fields(w.PaperEnv)[0]
	})
	row("Model Size", func(w perfmodel.Workload) string {
		if w.ModelBytes >= 1_000_000 {
			return fmt.Sprintf("%.2f MB", float64(w.ModelBytes)/1e6)
		}
		return fmt.Sprintf("%.2f KB", float64(w.ModelBytes)/1e3)
	})
	row("Train Iter", func(w perfmodel.Workload) string {
		return fmt.Sprintf("%.2fM", float64(w.TableIters)/1e6)
	})
	row("Stand-in", func(w perfmodel.Workload) string { return w.StandInEnv })
	return Result{ID: "table1", Title: "A study of popular RL algorithms", Text: b.String()}
}

// Table2 reproduces the control-message table of the iSwitch protocol.
func Table2() Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %s\n", "Name", "Description")
	for _, a := range protocol.Actions() {
		fmt.Fprintf(&b, "%-8s %s\n", a.String(), a.Describe())
	}
	return Result{ID: "table2", Title: "Control messages in iSwitch protocol", Text: b.String()}
}

// Figure5 reproduces the control/data packet formats by building and
// dissecting real frames.
func Figure5() Result {
	var b strings.Builder
	src := protocol.AddrFrom(10, 0, 0, 2, 9999)
	dst := protocol.AddrFrom(10, 0, 0, 1, 9990)

	ctl := protocol.NewControl(src, dst, protocol.ActionSetH, protocol.SetHValue(4))
	cf, _ := protocol.Marshal(ctl)
	fmt.Fprintf(&b, "(a) Control packet (%d bytes on the wire)\n", len(cf))
	fmt.Fprintf(&b, "    ETH[14] | IP[20, ToS=%#02x] | UDP[8] | Action[1]=%s | Value[%d]\n",
		protocol.ToSControl, ctl.Action, len(ctl.Value))

	data := protocol.NewData(src, dst, 7, make([]float32, protocol.FloatsPerPacket))
	df, _ := protocol.Marshal(data)
	fmt.Fprintf(&b, "(b) Data packet (%d bytes on the wire, max frame %d)\n",
		len(df), protocol.MaxFrameLen)
	fmt.Fprintf(&b, "    ETH[14] | IP[20, ToS=%#02x] | UDP[8] | Seg[8]=%d | Data[%d floats = %d bytes]\n",
		protocol.ToSData, data.Seg, len(data.Data), 4*len(data.Data))
	fmt.Fprintf(&b, "    gradient capacity: %d float32 per packet (IP MTU %d)\n",
		protocol.FloatsPerPacket, protocol.IPMTU)
	return Result{ID: "figure5", Title: "Format of the control/data packet in iSwitch", Text: b.String()}
}

// Figure7 reports the in-switch accelerator datapath parameters and its
// per-packet latency, mirroring the architecture figure's numbers.
func Figure7() Result {
	var b strings.Builder
	cfg := accel.DefaultConfig()
	a := accel.New(cfg)
	fmt.Fprintf(&b, "bus width: %d bits/cycle (%d float32 adders in parallel)\n",
		cfg.BusWidthBits, cfg.AddersPerCycle())
	fmt.Fprintf(&b, "clock: %.0f MHz, pipeline depth: %d cycles\n", cfg.ClockHz/1e6, cfg.PipelineDepth)
	fmt.Fprintf(&b, "full-MTU packet (%d floats) datapath latency: %v\n",
		protocol.FloatsPerPacket, a.PacketLatency(protocol.FloatsPerPacket))
	fmt.Fprintf(&b, "per-segment state: %d-float buffer + aggregation counter (threshold H)\n",
		protocol.FloatsPerPacket)
	return Result{ID: "figure7", Title: "In-switch accelerator architecture", Text: b.String()}
}

// Figure8 is the on-the-fly vs whole-vector aggregation ablation: time
// from first packet arrival to aggregate availability for each model,
// with N=4 senders whose packets interleave.
func Figure8() Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-12s %-22s %-22s %-8s\n",
		"Bench", "Model", "Whole-vector (Fig 8a)", "On-the-fly (Fig 8b)", "Saving")
	for _, w := range perfmodel.Workloads() {
		const workers = 4
		// Whole-vector (parameter-server style): wait for all vectors
		// (serialized on the central link) then sum.
		link := float64(w.ModelBytes*8) / 10e9 // one vector's wire time at 10GbE
		recvAll := 4 * link                    // N vectors share the server link
		sum := accel.SumLatency(w.Floats(), workers, perfmodel.PSSumRate)
		whole := secondsToMS(recvAll) + float64(sum)/1e6

		// On-the-fly: aggregation overlaps reception; each worker has a
		// dedicated link, so the last packet's arrival dominates, plus
		// one accelerator packet latency.
		a := accel.New(accel.DefaultConfig())
		fly := secondsToMS(link) + float64(a.PacketLatency(protocol.FloatsPerPacket))/1e6

		fmt.Fprintf(&b, "%-6s %-12s %18.3fms %18.3fms %7.1fx\n",
			w.Name, byteSize(w.ModelBytes), whole, fly, whole/fly)
	}
	b.WriteString("(time from first gradient packet arrival to aggregate availability, 4 workers)\n")
	return Result{ID: "figure8", Title: "Conventional vs on-the-fly aggregation", Text: b.String()}
}

func secondsToMS(s float64) float64 { return s * 1e3 }

func byteSize(n int) string {
	if n >= 1_000_000 {
		return fmt.Sprintf("%.2fMB", float64(n)/1e6)
	}
	return fmt.Sprintf("%.2fKB", float64(n)/1e3)
}
