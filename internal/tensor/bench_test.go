package tensor

import (
	"math/rand"
	"testing"
)

func benchMat(rows, cols int) (*Mat, Vec, Vec) {
	rng := rand.New(rand.NewSource(1))
	m := NewMat(rows, cols)
	m.XavierInit(rng)
	x := NewVec(cols)
	y := NewVec(rows)
	for i := range x {
		x[i] = rng.Float32()
	}
	return m, x, y
}

func BenchmarkMatVec64x64(b *testing.B) {
	m, x, y := benchMat(64, 64)
	b.SetBytes(int64(4 * 64 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(y, x)
	}
}

func BenchmarkMatTVec64x64(b *testing.B) {
	m, x, _ := benchMat(64, 64)
	dst := NewVec(64)
	b.SetBytes(int64(4 * 64 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatTVec(dst, x)
	}
}

func BenchmarkAddOuter64x64(b *testing.B) {
	m, x, y := benchMat(64, 64)
	b.SetBytes(int64(4 * 64 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AddOuter(1, y, x)
	}
}

func BenchmarkAxpyLarge(b *testing.B) {
	v := NewVec(1 << 16)
	w := NewVec(1 << 16)
	b.SetBytes(int64(4 * len(v)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Axpy(0.5, w)
	}
}

// Kernel benchmarks at the 1024-float size the transport's payload
// pooling targets; all must report 0 allocs/op.

func benchPair(n int) (dst, src []float32) {
	rng := rand.New(rand.NewSource(2))
	dst = make([]float32, n)
	src = make([]float32, n)
	for i := range dst {
		dst[i], src[i] = rng.Float32(), rng.Float32()
	}
	return dst, src
}

func BenchmarkAdd1024(b *testing.B) {
	dst, src := benchPair(1024)
	b.SetBytes(int64(4 * len(dst)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add(dst, src)
	}
}

func BenchmarkAxpy1024(b *testing.B) {
	dst, src := benchPair(1024)
	b.SetBytes(int64(4 * len(dst)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(0.5, dst, src)
	}
}

func BenchmarkScale1024(b *testing.B) {
	dst, _ := benchPair(1024)
	b.SetBytes(int64(4 * len(dst)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// -1 keeps magnitudes stable across iterations; a shrinking
		// factor would drive values denormal and skew the timing.
		Scale(-1, dst)
	}
}

func BenchmarkZero1024(b *testing.B) {
	dst, _ := benchPair(1024)
	b.SetBytes(int64(4 * len(dst)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Zero(dst)
	}
}
