package tensor

import (
	"math/rand"
	"testing"
)

func benchMat(rows, cols int) (*Mat, Vec, Vec) {
	rng := rand.New(rand.NewSource(1))
	m := NewMat(rows, cols)
	m.XavierInit(rng)
	x := NewVec(cols)
	y := NewVec(rows)
	for i := range x {
		x[i] = rng.Float32()
	}
	return m, x, y
}

func BenchmarkMatVec64x64(b *testing.B) {
	m, x, y := benchMat(64, 64)
	b.SetBytes(int64(4 * 64 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatVec(y, x)
	}
}

func BenchmarkMatTVec64x64(b *testing.B) {
	m, x, _ := benchMat(64, 64)
	dst := NewVec(64)
	b.SetBytes(int64(4 * 64 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatTVec(dst, x)
	}
}

func BenchmarkAddOuter64x64(b *testing.B) {
	m, x, y := benchMat(64, 64)
	b.SetBytes(int64(4 * 64 * 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AddOuter(1, y, x)
	}
}

func BenchmarkAxpyLarge(b *testing.B) {
	v := NewVec(1 << 16)
	w := NewVec(1 << 16)
	b.SetBytes(int64(4 * len(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Axpy(0.5, w)
	}
}
