package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Scalar reference implementations: the seed's original loops, kept
// verbatim so the golden tests pin the unrolled kernels to them
// bit-for-bit.

func addScalar(dst, src []float32) {
	for i := range dst {
		dst[i] += src[i]
	}
}

func axpyScalar(a float32, dst, src []float32) {
	for i := range dst {
		dst[i] += a * src[i]
	}
}

func scaleScalar(a float32, dst []float32) {
	for i := range dst {
		dst[i] *= a
	}
}

// testVector builds a length-n vector whose head cycles through the
// awkward IEEE-754 cases (NaN, ±Inf, signed zero, denormals) and whose
// tail is pseudorandom.
func testVector(n int, seed int64) []float32 {
	specials := []float32{
		float32(math.NaN()),
		float32(math.Inf(1)),
		float32(math.Inf(-1)),
		float32(math.Copysign(0, -1)), // -0
		0,
		math.SmallestNonzeroFloat32, // denormal
		-math.SmallestNonzeroFloat32,
		math.MaxFloat32,
		-math.MaxFloat32,
		1.5, -2.25, 3e-20,
	}
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, n)
	for i := range v {
		if i < len(specials) && i < n {
			v[i] = specials[i]
		} else {
			v[i] = (rng.Float32() - 0.5) * float32(math.Exp(float64(rng.Intn(40)-20)))
		}
	}
	return v
}

// kernelLens covers empty, sub-unroll, exact multiples of 4, every
// non-multiple-of-4 remainder, and large sizes.
var kernelLens = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 15, 16, 17, 31, 64, 255, 366, 1023, 1024, 1025}

// expectBitIdentical fails unless got and want match bit-for-bit
// (distinguishing -0 from +0 and comparing NaN payloads).
func expectBitIdentical(t *testing.T, kernel string, n int, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s len=%d: element %d = %x (%v), scalar reference %x (%v)",
				kernel, n, i, math.Float32bits(got[i]), got[i],
				math.Float32bits(want[i]), want[i])
		}
	}
}

func TestAddBitIdenticalToScalar(t *testing.T) {
	for _, n := range kernelLens {
		dst := testVector(n, 1)
		src := testVector(n, 2)
		want := append([]float32(nil), dst...)
		addScalar(want, src)
		Add(dst, src)
		expectBitIdentical(t, "Add", n, dst, want)
	}
}

func TestAxpyBitIdenticalToScalar(t *testing.T) {
	for _, n := range kernelLens {
		for _, a := range []float32{0, 1, -1, 0.37, float32(math.NaN()), float32(math.Inf(1))} {
			dst := testVector(n, 3)
			src := testVector(n, 4)
			want := append([]float32(nil), dst...)
			axpyScalar(a, want, src)
			Axpy(a, dst, src)
			expectBitIdentical(t, "Axpy", n, dst, want)
		}
	}
}

func TestScaleBitIdenticalToScalar(t *testing.T) {
	for _, n := range kernelLens {
		for _, a := range []float32{0, -1, 2.5, float32(math.NaN()), float32(math.Inf(-1))} {
			dst := testVector(n, 5)
			want := append([]float32(nil), dst...)
			scaleScalar(a, want)
			Scale(a, dst)
			expectBitIdentical(t, "Scale", n, dst, want)
		}
	}
}

func TestZeroClears(t *testing.T) {
	for _, n := range kernelLens {
		dst := testVector(n, 6)
		Zero(dst)
		for i, x := range dst {
			if math.Float32bits(x) != 0 {
				t.Fatalf("Zero len=%d: element %d = %v, want +0", n, i, x)
			}
		}
	}
}

// TestAddAliased pins the self-aliasing case (v.Add(v)) to the scalar
// semantics: each element doubles.
func TestAddAliased(t *testing.T) {
	for _, n := range kernelLens {
		dst := testVector(n, 7)
		want := append([]float32(nil), dst...)
		addScalar(want, want)
		Add(dst, dst)
		expectBitIdentical(t, "Add(aliased)", n, dst, want)
	}
}

// TestVecMethodsUseKernels sanity-checks that the Vec wrappers produce
// the kernel results (they now delegate).
func TestVecMethodsUseKernels(t *testing.T) {
	v := Vec(testVector(37, 8))
	w := Vec(testVector(37, 9))
	ref := append(Vec(nil), v...)
	addScalar(ref, w)
	axpyScalar(0.25, ref, w)
	scaleScalar(-3, ref)

	v.Add(w)
	v.Axpy(0.25, w)
	v.Scale(-3)
	expectBitIdentical(t, "Vec methods", len(v), v, ref)

	v.Zero()
	for i := range v {
		if v[i] != 0 {
			t.Fatalf("Vec.Zero left element %d = %v", i, v[i])
		}
	}
}

func TestKernelLengthMismatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Add(make([]float32, 3), make([]float32, 4)) },
		func() { Axpy(1, make([]float32, 5), make([]float32, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("length mismatch did not panic")
				}
			}()
			f()
		}()
	}
}
