// The scalar backend: portable 4×-unrolled pure-Go loops, compiled on
// every platform. These are the golden reference the SIMD backends are
// pinned against — each loop performs exactly the same per-element
// operations in exactly the same order as the width-1 form (the
// slice-reslicing idiom only drops bounds checks, it never reorders
// float arithmetic), so results are bit-identical to naive loops.

package kernels

import "math"

func addScalar(dst, src []float32) {
	for len(dst) >= 4 && len(src) >= 4 {
		dst[0] += src[0]
		dst[1] += src[1]
		dst[2] += src[2]
		dst[3] += src[3]
		dst = dst[4:]
		src = src[4:]
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

func subScalar(dst, src []float32) {
	for len(dst) >= 4 && len(src) >= 4 {
		dst[0] -= src[0]
		dst[1] -= src[1]
		dst[2] -= src[2]
		dst[3] -= src[3]
		dst = dst[4:]
		src = src[4:]
	}
	for i := range dst {
		dst[i] -= src[i]
	}
}

func axpyScalar(a float32, dst, src []float32) {
	for len(dst) >= 4 && len(src) >= 4 {
		dst[0] += a * src[0]
		dst[1] += a * src[1]
		dst[2] += a * src[2]
		dst[3] += a * src[3]
		dst = dst[4:]
		src = src[4:]
	}
	for i := range dst {
		dst[i] += a * src[i]
	}
}

func scaleScalar(a float32, dst []float32) {
	for len(dst) >= 4 {
		dst[0] *= a
		dst[1] *= a
		dst[2] *= a
		dst[3] *= a
		dst = dst[4:]
	}
	for i := range dst {
		dst[i] *= a
	}
}

func fillScalar(a float32, dst []float32) {
	for i := range dst {
		dst[i] = a
	}
}

// dotScalar keeps a single accumulator — the same additions in the same
// order as the width-1 loop, so scalar dot products (and MatVec rows
// built on them) are bit-stable.
func dotScalar(a, b []float32) float32 {
	var s float32
	for len(a) >= 4 && len(b) >= 4 {
		s += a[0] * b[0]
		s += a[1] * b[1]
		s += a[2] * b[2]
		s += a[3] * b[3]
		a, b = a[4:], b[4:]
	}
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// sumSquaresScalar accumulates in float64: each float32 widens exactly
// and the 48-bit product of two 24-bit mantissas is exact in binary64,
// so only the summation order distinguishes backends.
func sumSquaresScalar(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return s
}

func sgdMomentumScalar(p, vel, g []float32, lr, mom float32) {
	v := vel[:len(p)]
	gr := g[:len(p)]
	for len(p) >= 4 && len(gr) >= 4 && len(v) >= 4 {
		v[0] = mom*v[0] + gr[0]
		p[0] -= lr * v[0]
		v[1] = mom*v[1] + gr[1]
		p[1] -= lr * v[1]
		v[2] = mom*v[2] + gr[2]
		p[2] -= lr * v[2]
		v[3] = mom*v[3] + gr[3]
		p[3] -= lr * v[3]
		p, gr, v = p[4:], gr[4:], v[4:]
	}
	for i := range p {
		v[i] = mom*v[i] + gr[i]
		p[i] -= lr * v[i]
	}
}

// adamElem is one element's Adam update; the unrolled step body inlines
// it four times per iteration. The expression order is the contract
// every backend reproduces.
func adamElem(p, m, v *float32, g, b1, b2, ob1, ob2, b1c, b2c, lr, eps float32) {
	mi := b1**m + ob1*g
	vi := b2**v + ob2*g*g
	*m, *v = mi, vi
	*p -= lr * (mi / b1c) / (float32(math.Sqrt(float64(vi/b2c))) + eps)
}

func adamStepScalar(p, m, v, g []float32, b1, b2, ob1, ob2, b1c, b2c, lr, eps float32) {
	gr := g[:len(p)]
	mm, vv := m[:len(p)], v[:len(p)]
	for len(p) >= 4 && len(gr) >= 4 && len(mm) >= 4 && len(vv) >= 4 {
		adamElem(&p[0], &mm[0], &vv[0], gr[0], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
		adamElem(&p[1], &mm[1], &vv[1], gr[1], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
		adamElem(&p[2], &mm[2], &vv[2], gr[2], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
		adamElem(&p[3], &mm[3], &vv[3], gr[3], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
		p, gr, mm, vv = p[4:], gr[4:], mm[4:], vv[4:]
	}
	for i := range p {
		adamElem(&p[i], &mm[i], &vv[i], gr[i], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
	}
}
