//go:build arm64 && !noasm

package kernels

// Advanced SIMD (NEON) is architecturally baseline on AArch64 — every
// arm64 CPU the Go toolchain targets has it — so unlike amd64 there is
// no feature probe.
//
// The table covers the element-wise kernels plus dot; sumSquares and
// the fused optimizer steps stay nil and backfill() routes them to the
// unrolled scalar code. Their mix of float64 accumulation, sqrt and
// division doesn't map onto the VFMLA-only vector surface the Go
// assembler exposes, and the scalar forms are what the bit-identity
// contract is defined against.
func archInit() *funcs {
	return &funcs{
		name:       "neon",
		add:        addNEON,
		sub:        subNEON,
		axpy:       axpyNEON,
		scale:      scaleNEON,
		fill:       fillNEON,
		dot:        dotNEON,
		maxAbsBits: maxAbsBitsNEON,
	}
}
