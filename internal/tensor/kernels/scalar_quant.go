package kernels

import "math"

// Scalar oracles for the quantized-aggregation kernels. Unlike the
// float kernels in scalar.go, whose contract is "same IEEE ops in the
// same order", these four are *exact* on every backend: maxAbsBits and
// addSatI32 are pure integer functions, and quantize/dequantize pin the
// hardware conversion semantics (CVTPS2DQ / CVTDQ2PS round to nearest
// even) that the scalar expressions below reproduce. parity_quant_test.go
// enforces bit-identity across backends over fuzzed adversarial inputs.

// quantMax is the widest magnitude a quantized element may take: the
// int16-representable interval the wire format carries (±2¹⁵−1; the
// asymmetric -32768 is excluded so negation never overflows and the
// saturating accumulator bound H·quantMax < 2³¹ holds for H ≤ 65536).
const quantMax = 32767

func maxAbsBitsScalar(v []float32) uint32 {
	var m uint32
	for _, x := range v {
		if b := math.Float32bits(x) &^ (1 << 31); b > m {
			m = b
		}
	}
	return m
}

// quantElem mirrors the AVX2 sequence VMULPS + VMINPS + VMAXPS +
// VCVTPS2DQ exactly: the product rounds to float32 nearest-even, the
// float clamp happens *before* the convert — MINPS returns its second
// source when the first is NaN, so NaN collapses to +quantMax, and a
// product beyond ±quantMax saturates with the correct sign instead of
// falling into CVTPS2DQ's integer indefinite — then the conversion
// rounds to nearest even (exact on the clamped range, so no indefinite
// can occur). The expression order is the contract.
func quantElem(v, scale float32) int32 {
	p := v * scale
	if !(p < quantMax) {
		p = quantMax
	}
	if !(p > -quantMax) {
		p = -quantMax
	}
	return int32(math.RoundToEven(float64(p)))
}

func quantizeScalar(dst []int32, src []float32, scale float32) {
	for len(src) >= 4 {
		d, s := dst[:4], src[:4]
		d[0] = quantElem(s[0], scale)
		d[1] = quantElem(s[1], scale)
		d[2] = quantElem(s[2], scale)
		d[3] = quantElem(s[3], scale)
		dst, src = dst[4:], src[4:]
	}
	for i, v := range src {
		dst[i] = quantElem(v, scale)
	}
}

// dequantElem: int32→float32 conversion in Go rounds to nearest even,
// exactly like CVTDQ2PS, and the multiply is the same single rounding
// as VMULPS — bit-identical by construction.
func dequantElem(q int32, scale float32) float32 { return float32(q) * scale }

func dequantizeScalar(dst []float32, src []int32, scale float32) {
	for len(src) >= 4 {
		d, s := dst[:4], src[:4]
		d[0] = dequantElem(s[0], scale)
		d[1] = dequantElem(s[1], scale)
		d[2] = dequantElem(s[2], scale)
		d[3] = dequantElem(s[3], scale)
		dst, src = dst[4:], src[4:]
	}
	for i, q := range src {
		dst[i] = dequantElem(q, scale)
	}
}

// addSatI32Elem mirrors the AVX2 sequence VPADDD + overflow mask
// ((a^r)&(b^r), sign bit set iff the signed add wrapped) + VBLENDVPS
// against the saturation value (a>>31)^0x7FFFFFFF.
func addSatI32Elem(a, b int32) int32 {
	r := a + b
	if (a^r)&(b^r) < 0 {
		if a < 0 {
			return math.MinInt32
		}
		return math.MaxInt32
	}
	return r
}

func addSatI32Scalar(dst, src []int32) {
	for len(src) >= 4 {
		d, s := dst[:4], src[:4]
		d[0] = addSatI32Elem(d[0], s[0])
		d[1] = addSatI32Elem(d[1], s[1])
		d[2] = addSatI32Elem(d[2], s[2])
		d[3] = addSatI32Elem(d[3], s[3])
		dst, src = dst[4:], src[4:]
	}
	for i, b := range src {
		dst[i] = addSatI32Elem(dst[i], b)
	}
}
