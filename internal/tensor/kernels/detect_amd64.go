//go:build amd64 && !noasm

package kernels

// Hand-rolled CPUID feature detection (the repo carries no external
// dependencies, so no golang.org/x/sys/cpu). The AVX2 backend needs
// three things: AVX2 itself (CPUID.7.0:EBX[5]), FMA for the reduction
// kernels (CPUID.1:ECX[12]), and — crucially — the OS to have enabled
// YMM state saving (OSXSAVE, then XCR0[2:1] == 11b via XGETBV);
// executing VEX-encoded instructions without OS support faults.

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

func detectAVX2() (avx2, fma bool) {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false, false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return false, false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be set by the OS.
	xeax, _ := xgetbv()
	if xeax&0x6 != 0x6 {
		return false, false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const cpuidAVX2 = 1 << 5
	return ebx7&cpuidAVX2 != 0, ecx1&cpuidFMA != 0
}

// archInit registers the AVX2 backend when the host supports it. The
// reduction kernels (dot, sumSquares) use FMA; on the rare AVX2-but-
// no-FMA host they stay scalar while the element-wise kernels still
// run 8 lanes wide.
func archInit() *funcs {
	avx2, fma := detectAVX2()
	if !avx2 {
		return nil
	}
	f := &funcs{
		name:        "avx2",
		add:         addAVX2,
		sub:         subAVX2,
		axpy:        axpyAVX2,
		scale:       scaleAVX2,
		fill:        fillAVX2,
		sgdMomentum: sgdMomentumAVX2,
		adamStep:    adamStepAVX2,
		maxAbsBits:  maxAbsBitsAVX2,
		quantize:    quantizeAVX2,
		dequantize:  dequantizeAVX2,
		addSatI32:   addSatI32AVX2,
	}
	if fma {
		f.dot = dotAVX2
		f.sumSquares = sumSquaresAVX2
	}
	return f
}
