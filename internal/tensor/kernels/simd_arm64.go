//go:build arm64 && !noasm

package kernels

// Go wrappers for the NEON block kernels in simd_arm64.s. Each kernel
// consumes the largest multiple-of-8 prefix in assembly and peels the
// tail with the exact scalar-backend expressions, so head-then-tail
// preserves element order and bit-identity with the scalar oracle.

//go:noescape
func addBlocks8(dst, src *float32, n int)

//go:noescape
func subBlocks8(dst, src *float32, n int)

//go:noescape
func axpyBlocks8(a float32, dst, src *float32, n int)

//go:noescape
func scaleBlocks8(a float32, dst *float32, n int)

//go:noescape
func fillBlocks8(a float32, dst *float32, n int)

//go:noescape
func dotBlocks8(a, b *float32, n int, out *[8]float32)

func addNEON(dst, src []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		addBlocks8(&dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

func subNEON(dst, src []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		subBlocks8(&dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] -= src[i]
	}
}

func axpyNEON(a float32, dst, src []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		axpyBlocks8(a, &dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] += a * src[i]
	}
}

func scaleNEON(a float32, dst []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		scaleBlocks8(a, &dst[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] *= a
	}
}

func fillNEON(a float32, dst []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		fillBlocks8(a, &dst[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a
	}
}

func dotNEON(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("kernels: length mismatch")
	}
	n := len(a) &^ 7
	var s float32
	if n > 0 {
		var part [8]float32
		dotBlocks8(&a[0], &b[0], n, &part)
		for _, p := range part {
			s += p
		}
	}
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}
