package kernels

import (
	"encoding/binary"
	"math"
)

// IEEE 754 half-precision conversion, hoisted here from internal/fp16
// so the wire pack/unpack/round loops dispatch through the backend
// table like every other element-wise kernel (internal/fp16 is now a
// thin veneer over these). No architecture currently registers an
// assembly form — the scalar word-assembly loops below saturate the
// conversion at wire-buffer sizes — but the dispatch seam means an
// F16C/NEON-FP16 backend drops in without touching callers, and the
// cross-backend parity tests already cover it.

// F16FromF32 converts a float32 to its nearest half-precision bit
// pattern (round-to-nearest-even), handling subnormals, infinities and
// NaN (canonicalized to sign|0x7e00).
func F16FromF32(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f: // overflow → inf; NaN preserved
		if int32(bits>>23&0xff) == 0xff && mant != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00
	case exp <= 0:
		if exp < -10 {
			return sign // underflow to zero
		}
		// Subnormal: shift mantissa (with implicit leading 1).
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half) >> shift
		// Round-to-nearest-even on ties.
		if mant&(half<<1-1) == half && rounded&1 == 1 {
			rounded--
		}
		return sign | uint16(rounded)
	default:
		// Normal: round mantissa from 23 to 10 bits.
		rounded := mant + 0xfff + (mant>>13)&1
		if rounded&0x800000 != 0 {
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7c00
			}
		}
		return sign | uint16(exp)<<10 | uint16(rounded>>13)
	}
}

// F16ToF32 expands a half-precision bit pattern to float32.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)

	switch {
	case exp == 0x1f: // inf / NaN
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// f16PackScalar packs src into dst (exactly 2·len(src) bytes,
// little-endian), assembling four halves into one uint64 word per store.
func f16PackScalar(dst []byte, src []float32) {
	for len(src) >= 4 {
		w := uint64(F16FromF32(src[0])) |
			uint64(F16FromF32(src[1]))<<16 |
			uint64(F16FromF32(src[2]))<<32 |
			uint64(F16FromF32(src[3]))<<48
		binary.LittleEndian.PutUint64(dst, w)
		src, dst = src[4:], dst[8:]
	}
	for i, f := range src {
		binary.LittleEndian.PutUint16(dst[2*i:], F16FromF32(f))
	}
}

// f16UnpackScalar expands packed halves into dst (exactly len(src)/2
// elements), four halves per uint64 load.
func f16UnpackScalar(dst []float32, src []byte) {
	for len(src) >= 8 {
		w := binary.LittleEndian.Uint64(src)
		dst[0] = F16ToF32(uint16(w))
		dst[1] = F16ToF32(uint16(w >> 16))
		dst[2] = F16ToF32(uint16(w >> 32))
		dst[3] = F16ToF32(uint16(w >> 48))
		dst, src = dst[4:], src[8:]
	}
	for i := range dst {
		dst[i] = F16ToF32(binary.LittleEndian.Uint16(src[2*i:]))
	}
}

// f16RoundScalar rounds every element through half precision in place —
// what a worker observes after an fp16 wire round trip.
func f16RoundScalar(v []float32) {
	for len(v) >= 4 {
		v[0] = F16ToF32(F16FromF32(v[0]))
		v[1] = F16ToF32(F16FromF32(v[1]))
		v[2] = F16ToF32(F16FromF32(v[2]))
		v[3] = F16ToF32(F16FromF32(v[3]))
		v = v[4:]
	}
	for i, f := range v {
		v[i] = F16ToF32(F16FromF32(f))
	}
}

// F16AppendPack appends the packed half-precision encoding of src
// (little-endian, 2 bytes per element) to dst and returns the extended
// slice. With a pre-sized dst it allocates nothing.
func F16AppendPack(dst []byte, src []float32) []byte {
	need := 2 * len(src)
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	active.f16Pack(dst[len(dst):len(dst)+need], src)
	return dst[:len(dst)+need]
}

// F16UnpackInto expands packed half-precision bytes into dst, which
// must hold len(src)/2 elements. Allocates nothing.
func F16UnpackInto(dst []float32, src []byte) {
	if len(dst) != len(src)/2 {
		panic("kernels: F16UnpackInto length mismatch")
	}
	active.f16Unpack(dst, src)
}

// F16RoundInPlace rounds every element of v through half precision.
func F16RoundInPlace(v []float32) { active.f16Round(v) }
