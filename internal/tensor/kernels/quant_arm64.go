//go:build arm64 && !noasm

package kernels

import "math"

// NEON coverage for the quantization surface is max-abs only: the Go
// arm64 assembler exposes integer VAND/VUMAX but no vector float
// convert (SCVTF/FCVTNS) and no vector saturating add (SQADD), so
// quantize/dequantize/addSatI32 backfill to the scalar oracle on arm64
// — the same trade the optimizer kernels already make there.

//go:noescape
func maxAbsBlocks8NEON(v *float32, n int, part *[8]uint32)

func maxAbsBitsNEON(v []float32) uint32 {
	n := len(v) &^ 7
	var m uint32
	if n > 0 {
		var part [8]uint32
		maxAbsBlocks8NEON(&v[0], n, &part)
		for _, b := range part {
			if b > m {
				m = b
			}
		}
	}
	for i := n; i < len(v); i++ {
		if b := math.Float32bits(v[i]) &^ (1 << 31); b > m {
			m = b
		}
	}
	return m
}
