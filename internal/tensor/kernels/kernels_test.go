package kernels

import (
	"math"
	"math/rand"
	"testing"
)

// withBackend runs f once per available backend, restoring the original
// selection afterwards.
func withBackend(t *testing.T, f func(t *testing.T, backend string)) {
	t.Helper()
	orig := Backend()
	defer func() {
		if err := SetBackend(orig); err != nil {
			t.Fatalf("restoring backend %q: %v", orig, err)
		}
	}()
	for _, b := range Backends() {
		if err := SetBackend(b); err != nil {
			t.Fatalf("SetBackend(%q): %v", b, err)
		}
		t.Run(b, func(t *testing.T) { f(t, b) })
	}
}

func TestBackendSelection(t *testing.T) {
	orig := Backend()
	defer SetBackend(orig)

	if err := SetBackend("scalar"); err != nil {
		t.Fatalf("scalar backend must always exist: %v", err)
	}
	if got := Backend(); got != "scalar" {
		t.Fatalf("Backend() = %q after SetBackend(scalar)", got)
	}
	if err := SetBackend("no-such-backend"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if got := Backend(); got != "scalar" {
		t.Fatalf("failed SetBackend changed selection to %q", got)
	}
	if simdFuncs != nil {
		if err := SetBackend("simd"); err != nil {
			t.Fatalf("simd alias: %v", err)
		}
		if got := Backend(); got != simdFuncs.name {
			t.Fatalf("Backend() = %q, want %q", got, simdFuncs.name)
		}
	} else if err := SetBackend("simd"); err == nil {
		t.Fatal("simd alias accepted with no SIMD table registered")
	}
	bs := Backends()
	if len(bs) == 0 || bs[0] > bs[len(bs)-1] {
		t.Fatalf("Backends() = %v, want non-empty sorted", bs)
	}
	t.Logf("available backends: %v (default %s)", bs, orig)
}

func TestBasicResults(t *testing.T) {
	withBackend(t, func(t *testing.T, backend string) {
		dst := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
		Add(dst, []float32{1, 1, 1, 1, 1, 1, 1, 1, 1})
		for i, want := range []float32{2, 3, 4, 5, 6, 7, 8, 9, 10} {
			if dst[i] != want {
				t.Fatalf("Add[%d] = %v, want %v", i, dst[i], want)
			}
		}
		Sub(dst, []float32{1, 1, 1, 1, 1, 1, 1, 1, 1})
		if dst[0] != 1 || dst[8] != 9 {
			t.Fatalf("Sub = %v", dst)
		}
		Axpy(2, dst, []float32{1, 1, 1, 1, 1, 1, 1, 1, 1})
		if dst[0] != 3 || dst[8] != 11 {
			t.Fatalf("Axpy = %v", dst)
		}
		Scale(2, dst)
		if dst[0] != 6 || dst[8] != 22 {
			t.Fatalf("Scale = %v", dst)
		}
		Fill(7, dst)
		Zero(dst[:4])
		if dst[0] != 0 || dst[3] != 0 || dst[4] != 7 || dst[8] != 7 {
			t.Fatalf("Fill/Zero = %v", dst)
		}

		a := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
		b := []float32{9, 8, 7, 6, 5, 4, 3, 2, 1}
		if got, want := Dot(a, b), float32(165); got != want {
			t.Fatalf("Dot = %v, want %v", got, want)
		}
		if got := SumSquares([]float32{3, 4}); got != 25 {
			t.Fatalf("SumSquares = %v, want 25", got)
		}
	})
}

func TestLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Add":  func() { Add(make([]float32, 3), make([]float32, 4)) },
		"Sub":  func() { Sub(make([]float32, 3), make([]float32, 4)) },
		"Axpy": func() { Axpy(1, make([]float32, 5), make([]float32, 4)) },
		"Dot":  func() { Dot(make([]float32, 5), make([]float32, 4)) },
		"SGD":  func() { SGDMomentum(make([]float32, 4), make([]float32, 3), make([]float32, 4), 1, 1) },
		"Adam": func() {
			AdamStep(make([]float32, 4), make([]float32, 4), make([]float32, 2), make([]float32, 4), 1, 1, 1, 1, 1, 1, 1, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s length mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestEmptyAndTiny pins the degenerate sizes every wrapper must handle
// without touching the assembly (n < 8 never reaches the block kernels).
func TestEmptyAndTiny(t *testing.T) {
	withBackend(t, func(t *testing.T, backend string) {
		for n := 0; n < 9; n++ {
			dst := make([]float32, n)
			src := make([]float32, n)
			for i := range dst {
				dst[i] = float32(i + 1)
				src[i] = float32(2 * (i + 1))
			}
			Add(dst, src)
			Sub(dst, src)
			Axpy(0.5, dst, src)
			Scale(2, dst)
			Fill(1, dst)
			Zero(dst)
			_ = Dot(dst, src)
			_ = SumSquares(src)
			for i := range dst {
				if dst[i] != 0 {
					t.Fatalf("n=%d: dst[%d] = %v after Zero", n, i, dst[i])
				}
			}
		}
	})
}

// TestDotMatchesFloat64Reference bounds every backend's Dot against an
// exact-order float64 reference.
func TestDotMatchesFloat64Reference(t *testing.T) {
	withBackend(t, func(t *testing.T, backend string) {
		rng := rand.New(rand.NewSource(7))
		for _, n := range []int{0, 1, 7, 8, 9, 31, 32, 33, 255, 1024, 4097} {
			a := make([]float32, n)
			b := make([]float32, n)
			var ref, mag float64
			for i := range a {
				a[i] = rng.Float32()*2 - 1
				b[i] = rng.Float32()*2 - 1
				p := float64(a[i]) * float64(b[i])
				ref += p
				mag += math.Abs(p)
			}
			got := float64(Dot(a, b))
			tol := (float64(n) + 8) * (1.0 / (1 << 23)) * (mag + 1e-30)
			if math.Abs(got-ref) > tol {
				t.Fatalf("%s Dot n=%d: got %v, float64 ref %v (|Δ|=%g > tol %g)",
					backend, n, got, ref, math.Abs(got-ref), tol)
			}
		}
	})
}
