//go:build amd64 && !noasm

package kernels

import "math"

// Go wrappers around the AVX2 quantization kernels, following the
// simd_amd64.go pattern: the assembly consumes the longest
// multiple-of-8 prefix, the wrapper finishes the tail with exactly the
// scalar backend's per-element expressions. These four are bit-exact
// (not merely bit-identical-by-ordering): max is order-free over
// sign-cleared bit patterns, the integer add is associative-exact, and
// the convert sequences pin the same CVTPS2DQ/CVTDQ2PS semantics the
// scalar oracle reproduces.

//go:noescape
func maxAbsBlocks8(v *float32, n int, part *[8]uint32)

//go:noescape
func quantBlocks8(dst *int32, src *float32, n int, scale float32)

//go:noescape
func dequantBlocks8(dst *float32, src *int32, n int, scale float32)

//go:noescape
func addSatBlocks8(dst, src *int32, n int)

func maxAbsBitsAVX2(v []float32) uint32 {
	n := len(v) &^ 7
	var m uint32
	if n > 0 {
		var part [8]uint32
		maxAbsBlocks8(&v[0], n, &part)
		for _, b := range part {
			if b > m {
				m = b
			}
		}
	}
	for i := n; i < len(v); i++ {
		if b := math.Float32bits(v[i]) &^ (1 << 31); b > m {
			m = b
		}
	}
	return m
}

func quantizeAVX2(dst []int32, src []float32, scale float32) {
	n := len(src) &^ 7
	if n > 0 {
		quantBlocks8(&dst[0], &src[0], n, scale)
	}
	for i := n; i < len(src); i++ {
		dst[i] = quantElem(src[i], scale)
	}
}

func dequantizeAVX2(dst []float32, src []int32, scale float32) {
	n := len(src) &^ 7
	if n > 0 {
		dequantBlocks8(&dst[0], &src[0], n, scale)
	}
	for i := n; i < len(src); i++ {
		dst[i] = dequantElem(src[i], scale)
	}
}

func addSatI32AVX2(dst, src []int32) {
	n := len(dst) &^ 7
	if n > 0 {
		addSatBlocks8(&dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = addSatI32Elem(dst[i], src[i])
	}
}
