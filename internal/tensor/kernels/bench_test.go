package kernels

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"
)

// Benchmarks run every kernel on every available backend at the sizes
// the acceptance bar names (4 KiB, 64 KiB, 1 MiB of float32s) plus the
// 1464-byte wire-payload size (366 floats per iSwitch data packet).
// All hot loops must report 0 allocs/op.
//
// go test -bench . ./internal/tensor/kernels
//
// TestWriteBenchJSON (env-gated, see below) renders the scalar-vs-SIMD
// comparison into BENCH_kernels.json so the perf trajectory is recorded
// in-repo.

var benchSizes = []struct {
	name string
	n    int
}{
	{"366f", 366},      // one wire packet payload
	{"4KiB", 1 << 10},  // 1024 floats
	{"64KiB", 1 << 14}, // 16384 floats
	{"1MiB", 1 << 18},  // 262144 floats
}

func benchVec(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, n)
	for i := range v {
		v[i] = rng.Float32() - 0.5
	}
	return v
}

// benchBackends runs fn once per (backend, size) pair as sub-benchmarks.
func benchBackends(b *testing.B, fn func(b *testing.B, n int)) {
	b.Helper()
	orig := Backend()
	defer SetBackend(orig)
	for _, backend := range Backends() {
		for _, sz := range benchSizes {
			b.Run(fmt.Sprintf("%s/%s", backend, sz.name), func(b *testing.B) {
				if err := SetBackend(backend); err != nil {
					b.Fatal(err)
				}
				fn(b, sz.n)
			})
		}
	}
}

func BenchmarkKernelAdd(b *testing.B) {
	benchBackends(b, func(b *testing.B, n int) {
		dst, src := benchVec(n, 1), benchVec(n, 2)
		b.SetBytes(int64(4 * n))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Add(dst, src)
		}
	})
}

func BenchmarkKernelAxpy(b *testing.B) {
	benchBackends(b, func(b *testing.B, n int) {
		dst, src := benchVec(n, 3), benchVec(n, 4)
		b.SetBytes(int64(4 * n))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			Axpy(0.5, dst, src)
		}
	})
}

func BenchmarkKernelScale(b *testing.B) {
	benchBackends(b, func(b *testing.B, n int) {
		dst := benchVec(n, 5)
		b.SetBytes(int64(4 * n))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// -1 keeps magnitudes stable; a shrinking factor would
			// drive values denormal and skew the timing.
			Scale(-1, dst)
		}
	})
}

func BenchmarkKernelDot(b *testing.B) {
	benchBackends(b, func(b *testing.B, n int) {
		x, y := benchVec(n, 6), benchVec(n, 7)
		b.SetBytes(int64(4 * n))
		b.ReportAllocs()
		b.ResetTimer()
		var s float32
		for i := 0; i < b.N; i++ {
			s += Dot(x, y)
		}
		_ = s
	})
}

func BenchmarkKernelSumSquares(b *testing.B) {
	benchBackends(b, func(b *testing.B, n int) {
		x := benchVec(n, 8)
		b.SetBytes(int64(4 * n))
		b.ReportAllocs()
		b.ResetTimer()
		var s float64
		for i := 0; i < b.N; i++ {
			s += SumSquares(x)
		}
		_ = s
	})
}

func BenchmarkKernelAdam(b *testing.B) {
	benchBackends(b, func(b *testing.B, n int) {
		p, m, v, g := benchVec(n, 9), benchVec(n, 10), benchVec(n, 11), benchVec(n, 12)
		for i := range v {
			if v[i] < 0 {
				v[i] = -v[i]
			}
		}
		b.SetBytes(int64(4 * n))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			AdamStep(p, m, v, g, 0.9, 0.999, 0.1, 0.001, 0.1, 0.001, 1e-3, 1e-8)
		}
	})
}

// --- BENCH_kernels.json emission ---------------------------------------

type benchEntry struct {
	Kernel      string  `json:"kernel"`
	SizeBytes   int     `json:"size_bytes"`
	ScalarGBps  float64 `json:"scalar_GBps"`
	SimdGBps    float64 `json:"simd_GBps"`
	Speedup     float64 `json:"speedup"`
	SimdBackend string  `json:"simd_backend"`
}

type benchReport struct {
	GOARCH   string       `json:"goarch"`
	NumCPU   int          `json:"num_cpu"`
	Backends []string     `json:"backends"`
	Default  string       `json:"default_backend"`
	Kernels  []benchEntry `json:"kernels"`
}

// timeKernel measures steady-state ns/op for fn over vectors of n
// floats with a self-calibrating iteration count.
func timeKernel(n int, fn func()) float64 {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		el := time.Since(start)
		if el > 20*time.Millisecond {
			return float64(el.Nanoseconds()) / float64(iters)
		}
		iters *= 4
	}
}

// TestWriteBenchJSON records the scalar-vs-SIMD throughput table to the
// file named by BENCH_KERNELS_JSON (skipped when unset, so a plain
// `go test ./...` never writes files). CI and the Makefile-free local
// flow both use:
//
//	BENCH_KERNELS_JSON=BENCH_kernels.json go test -run WriteBenchJSON ./internal/tensor/kernels
func TestWriteBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_KERNELS_JSON")
	if out == "" {
		t.Skip("BENCH_KERNELS_JSON not set")
	}
	orig := Backend()
	defer SetBackend(orig)

	rep := benchReport{
		GOARCH:   runtime.GOARCH,
		NumCPU:   runtime.NumCPU(),
		Backends: Backends(),
		Default:  orig,
	}
	simd := ""
	for _, b := range Backends() {
		if b != "scalar" {
			simd = b
		}
	}

	for _, k := range []struct {
		name string
		run  func(n int) func()
	}{
		{"Add", func(n int) func() {
			dst, src := benchVec(n, 1), benchVec(n, 2)
			return func() { Add(dst, src) }
		}},
		{"Axpy", func(n int) func() {
			dst, src := benchVec(n, 3), benchVec(n, 4)
			return func() { Axpy(0.5, dst, src) }
		}},
		{"Scale", func(n int) func() {
			dst := benchVec(n, 5)
			return func() { Scale(-1, dst) }
		}},
		{"Dot", func(n int) func() {
			x, y := benchVec(n, 6), benchVec(n, 7)
			return func() { Dot(x, y) }
		}},
		{"Adam", func(n int) func() {
			p, m, v, g := benchVec(n, 9), benchVec(n, 10), benchVec(n, 11), benchVec(n, 12)
			for i := range v {
				if v[i] < 0 {
					v[i] = -v[i]
				}
			}
			return func() { AdamStep(p, m, v, g, 0.9, 0.999, 0.1, 0.001, 0.1, 0.001, 1e-3, 1e-8) }
		}},
	} {
		for _, sz := range benchSizes {
			fn := k.run(sz.n)
			gbps := func(backend string) float64 {
				if err := SetBackend(backend); err != nil {
					t.Fatal(err)
				}
				ns := timeKernel(sz.n, fn)
				return float64(4*sz.n) / ns // bytes/ns == GB/s
			}
			e := benchEntry{
				Kernel:      k.name,
				SizeBytes:   4 * sz.n,
				ScalarGBps:  gbps("scalar"),
				SimdBackend: simd,
			}
			if simd != "" {
				e.SimdGBps = gbps(simd)
				e.Speedup = e.SimdGBps / e.ScalarGBps
			}
			rep.Kernels = append(rep.Kernels, e)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (backends %v)", out, rep.Backends)
}
