// Package kernels is the runtime-dispatched float32 kernel backend for
// the gradient datapath.
//
// The paper's accelerator sums gradients with eight parallel FP32
// adders consuming one 256-bit bus burst per cycle (§3.3, Figure 7).
// This package is the software stand-in for that datapath width: every
// element-wise primitive the simulation funnels through — the
// accelerator's adder array, the optimizers, backward-pass
// accumulation, AllReduce's reduce-scatter — dispatches at runtime to
// the widest implementation the host CPU offers:
//
//   - scalar: portable 4×-unrolled pure-Go loops, the golden reference.
//     Compiled and tested on every platform (and the only backend under
//     the `noasm` build tag).
//   - avx2: hand-written AVX2 assembly on amd64, 8 float32 lanes per
//     instruction, selected when CPUID reports AVX2 (+FMA for the
//     reduction kernels) and the OS enables YMM state.
//   - neon: ARMv8 NEON assembly on arm64, 4 lanes per instruction,
//     always available (ASIMD is baseline on arm64).
//
// Order-preserving kernels (Add, Sub, Axpy, Scale, Fill, Zero,
// SGDMomentum, AdamStep) perform exactly the same per-element IEEE-754
// operations in exactly the same order on every backend, so aggregation
// sums and optimizer steps stay bit-identical to the scalar oracle —
// NaN, ±Inf and signed-zero propagation included (parity_test.go
// enforces this bit-for-bit over fuzzed inputs). Reduction kernels
// (Dot, SumSquares) use multiple SIMD accumulators, which reassociates
// the sum; their parity is tolerance-checked at ≤1 ulp per element.
//
// Backend selection happens once at init. The TENSOR_BACKEND
// environment variable (`scalar`, `simd`, or an exact backend name)
// overrides the automatic choice; SetBackend does the same
// programmatically, and Backend reports the active choice for
// introspection (surfaced by `iswitch-bench`).
package kernels

import (
	"fmt"
	"os"
	"sort"
)

// funcs is one backend's kernel table. Entries left nil by an
// architecture init are backfilled with the scalar implementation, so a
// backend may accelerate any subset of the surface.
type funcs struct {
	name string

	// Order-preserving element-wise kernels: bit-identical to scalar.
	add   func(dst, src []float32)
	sub   func(dst, src []float32)
	axpy  func(a float32, dst, src []float32)
	scale func(a float32, dst []float32)
	fill  func(a float32, dst []float32)

	// Reassociating reductions: ≤1 ulp/element from scalar.
	dot        func(a, b []float32) float32
	sumSquares func(v []float32) float64

	// Fused optimizer steps: bit-identical to scalar.
	sgdMomentum func(p, vel, g []float32, lr, mom float32)
	adamStep    func(p, m, v, g []float32, b1, b2, ob1, ob2, b1c, b2c, lr, eps float32)

	// Quantized-aggregation kernels (quant.go): bit-identical to scalar.
	// maxAbsBits is an unsigned max over sign-cleared IEEE bit patterns
	// (exact for every input including NaN), quantize/dequantize perform
	// identical per-element multiply+convert sequences, and addSatI32 is
	// a pure integer function — so all four stay bit-exact across
	// backends by construction.
	maxAbsBits func(v []float32) uint32
	quantize   func(dst []int32, src []float32, scale float32)
	dequantize func(dst []float32, src []int32, scale float32)
	addSatI32  func(dst, src []int32)

	// Half-precision wire conversion (f16.go): bit-identical to scalar.
	f16Pack   func(dst []byte, src []float32)
	f16Unpack func(dst []float32, src []byte)
	f16Round  func(v []float32)
}

var scalarFuncs = funcs{
	name:        "scalar",
	add:         addScalar,
	sub:         subScalar,
	axpy:        axpyScalar,
	scale:       scaleScalar,
	fill:        fillScalar,
	dot:         dotScalar,
	sumSquares:  sumSquaresScalar,
	sgdMomentum: sgdMomentumScalar,
	adamStep:    adamStepScalar,
	maxAbsBits:  maxAbsBitsScalar,
	quantize:    quantizeScalar,
	dequantize:  dequantizeScalar,
	addSatI32:   addSatI32Scalar,
	f16Pack:     f16PackScalar,
	f16Unpack:   f16UnpackScalar,
	f16Round:    f16RoundScalar,
}

// simdFuncs is the architecture-specific table registered by
// archInit (nil when the build or the host offers none).
var simdFuncs *funcs

// active is the dispatch table every exported kernel routes through.
// It is chosen at init and only changed by SetBackend, which is not
// safe to call concurrently with kernel use (it exists for init-time
// overrides, tests and benchmarks).
var active = &scalarFuncs

func init() {
	if f := archInit(); f != nil {
		backfill(f)
		simdFuncs = f
		active = simdFuncs
	}
	if env := os.Getenv("TENSOR_BACKEND"); env != "" {
		if err := SetBackend(env); err != nil {
			fmt.Fprintf(os.Stderr, "kernels: ignoring TENSOR_BACKEND=%q: %v\n", env, err)
		}
	}
}

// backfill completes a partial backend table with scalar fallbacks.
func backfill(f *funcs) {
	if f.add == nil {
		f.add = addScalar
	}
	if f.sub == nil {
		f.sub = subScalar
	}
	if f.axpy == nil {
		f.axpy = axpyScalar
	}
	if f.scale == nil {
		f.scale = scaleScalar
	}
	if f.fill == nil {
		f.fill = fillScalar
	}
	if f.dot == nil {
		f.dot = dotScalar
	}
	if f.sumSquares == nil {
		f.sumSquares = sumSquaresScalar
	}
	if f.sgdMomentum == nil {
		f.sgdMomentum = sgdMomentumScalar
	}
	if f.adamStep == nil {
		f.adamStep = adamStepScalar
	}
	if f.maxAbsBits == nil {
		f.maxAbsBits = maxAbsBitsScalar
	}
	if f.quantize == nil {
		f.quantize = quantizeScalar
	}
	if f.dequantize == nil {
		f.dequantize = dequantizeScalar
	}
	if f.addSatI32 == nil {
		f.addSatI32 = addSatI32Scalar
	}
	if f.f16Pack == nil {
		f.f16Pack = f16PackScalar
	}
	if f.f16Unpack == nil {
		f.f16Unpack = f16UnpackScalar
	}
	if f.f16Round == nil {
		f.f16Round = f16RoundScalar
	}
}

// Backend returns the name of the active kernel backend ("scalar",
// "avx2", "neon", ...).
func Backend() string { return active.name }

// Backends lists the backends available on this host, sorted.
func Backends() []string {
	bs := []string{scalarFuncs.name}
	if simdFuncs != nil {
		bs = append(bs, simdFuncs.name)
	}
	sort.Strings(bs)
	return bs
}

// SetBackend selects the kernel backend by name: "scalar", the generic
// alias "simd" (whatever SIMD table this host registered), or an exact
// backend name such as "avx2" or "neon". It returns an error when the
// requested backend is unavailable, leaving the selection unchanged.
// Not safe for concurrent use with running kernels; intended for
// init-time overrides, tests and benchmarks.
func SetBackend(name string) error {
	switch {
	case name == "scalar":
		active = &scalarFuncs
	case name == "simd":
		if simdFuncs == nil {
			return fmt.Errorf("no SIMD backend available on this host (have %v)", Backends())
		}
		active = simdFuncs
	case simdFuncs != nil && name == simdFuncs.name:
		active = simdFuncs
	default:
		return fmt.Errorf("unknown backend %q (have %v)", name, Backends())
	}
	return nil
}

// Add accumulates src into dst element-wise: dst[i] += src[i].
// Lengths must match.
func Add(dst, src []float32) {
	assertLen(len(dst), len(src))
	active.add(dst, src)
}

// Sub subtracts src from dst element-wise: dst[i] -= src[i].
// Lengths must match.
func Sub(dst, src []float32) {
	assertLen(len(dst), len(src))
	active.sub(dst, src)
}

// Axpy computes dst[i] += a * src[i]. Lengths must match.
func Axpy(a float32, dst, src []float32) {
	assertLen(len(dst), len(src))
	active.axpy(a, dst, src)
}

// Scale multiplies every element of dst by a.
func Scale(a float32, dst []float32) { active.scale(a, dst) }

// Fill sets every element of dst to a.
func Fill(a float32, dst []float32) { active.fill(a, dst) }

// Zero clears dst. The clear builtin compiles to the runtime's bulk
// memclr on every architecture, which outruns explicit vector stores,
// so Zero has no per-backend variant.
func Zero(dst []float32) { clear(dst) }

// Dot returns the inner product of a and b. SIMD backends accumulate in
// parallel lanes, so the result may differ from the scalar reference by
// up to ~1 ulp per element (reassociation); callers needing bit-stable
// sums must use the scalar backend. Lengths must match.
func Dot(a, b []float32) float32 {
	assertLen(len(a), len(b))
	return active.dot(a, b)
}

// SumSquares returns Σ v[i]² accumulated in float64 (each squared term
// is exact in float64, so backends differ only in summation order).
func SumSquares(v []float32) float64 { return active.sumSquares(v) }

// SGDMomentum applies one momentum-SGD step in place:
//
//	vel[i] = mom*vel[i] + g[i]
//	p[i]  -= lr*vel[i]
//
// Bit-identical across backends. Lengths must match.
func SGDMomentum(p, vel, g []float32, lr, mom float32) {
	assertLen(len(vel), len(p))
	assertLen(len(g), len(p))
	active.sgdMomentum(p, vel, g, lr, mom)
}

// AdamStep applies one Adam step in place with precomputed
// coefficients (b1c/b2c are the bias-correction denominators
// 1-β₁ᵗ and 1-β₂ᵗ; ob1/ob2 are 1-β₁ and 1-β₂):
//
//	m[i] = b1*m[i] + ob1*g[i]
//	v[i] = b2*v[i] + ob2*g[i]*g[i]
//	p[i] -= lr*(m[i]/b1c) / (sqrt(v[i]/b2c) + eps)
//
// Bit-identical across backends (hardware VSQRTPS matches Go's
// float32(math.Sqrt(float64(x))): double rounding through binary64 is
// innocuous for square root since 2·24+2 ≤ 53). Lengths must match.
func AdamStep(p, m, v, g []float32, b1, b2, ob1, ob2, b1c, b2c, lr, eps float32) {
	assertLen(len(m), len(p))
	assertLen(len(v), len(p))
	assertLen(len(g), len(p))
	active.adamStep(p, m, v, g, b1, b2, ob1, ob2, b1c, b2c, lr, eps)
}

func assertLen(got, want int) {
	if got != want {
		panic(fmt.Sprintf("kernels: length mismatch %d != %d", got, want))
	}
}
