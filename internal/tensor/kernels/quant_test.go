package kernels

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Cross-backend parity for the quantization surface. Unlike the float
// kernels, these must match the scalar oracle bit-for-bit with NO NaN
// carve-out: maxAbsBits and addSatI32 are integer functions, and
// quantize collapses NaN deterministically (to +QuantMax) before any
// payload can leak through.

func requireIdenticalI32(t *testing.T, kernel, backend string, n int, got, want []int32) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s backend=%s len=%d: element %d = %d, scalar oracle %d",
				kernel, backend, n, i, got[i], want[i])
		}
	}
}

func TestParityQuantize(t *testing.T) {
	orig := Backend()
	defer SetBackend(orig)
	rng := rand.New(rand.NewSource(211))

	scales := []float32{0, 1, -1, 0.125, 1 << 14, 1e-20, 3e38,
		float32(math.NaN()), float32(math.Inf(1))}
	for _, backend := range simdBackends() {
		for _, n := range fuzzLens(rng) {
			src := fuzzVector(rng, n)
			scale := scales[rng.Intn(len(scales))]
			want := make([]int32, n)
			got := make([]int32, n)

			if err := SetBackend("scalar"); err != nil {
				t.Fatal(err)
			}
			Quantize(want, src, scale)
			wantMax := MaxAbs(src)
			if err := SetBackend(backend); err != nil {
				t.Fatal(err)
			}
			Quantize(got, src, scale)
			gotMax := MaxAbs(src)

			requireIdenticalI32(t, "Quantize", backend, n, got, want)
			if math.Float32bits(gotMax) != math.Float32bits(wantMax) {
				t.Fatalf("MaxAbs backend=%s len=%d: %x vs scalar %x",
					backend, n, math.Float32bits(gotMax), math.Float32bits(wantMax))
			}
			for i, q := range got {
				if q > QuantMax || q < -QuantMax {
					t.Fatalf("Quantize backend=%s: element %d = %d outside ±%d", backend, i, q, QuantMax)
				}
			}
		}
	}
}

func TestParityDequantize(t *testing.T) {
	orig := Backend()
	defer SetBackend(orig)
	rng := rand.New(rand.NewSource(223))

	for _, backend := range simdBackends() {
		for _, n := range fuzzLens(rng) {
			src := make([]int32, n)
			for i := range src {
				// Full int32 range: Dequantize must also be exact on
				// re-widened partial sums (|q| up to H·QuantMax).
				src[i] = int32(rng.Uint32())
			}
			scale := []float32{1, 0.5, 1e-7, float32(math.Ldexp(1, -24)), 3e38}[rng.Intn(5)]
			want := make([]float32, n)
			got := make([]float32, n)

			if err := SetBackend("scalar"); err != nil {
				t.Fatal(err)
			}
			Dequantize(want, src, scale)
			if err := SetBackend(backend); err != nil {
				t.Fatal(err)
			}
			Dequantize(got, src, scale)
			requireBitIdentical(t, "Dequantize", backend, n, got, want)
		}
	}
}

func TestParityAddSatInt32(t *testing.T) {
	orig := Backend()
	defer SetBackend(orig)
	rng := rand.New(rand.NewSource(227))

	for _, backend := range simdBackends() {
		for _, n := range fuzzLens(rng) {
			dst0 := make([]int32, n)
			src := make([]int32, n)
			for i := range dst0 {
				// Bias toward the overflow boundary so saturation lanes
				// actually fire.
				switch rng.Intn(3) {
				case 0:
					dst0[i] = int32(rng.Uint32())
					src[i] = int32(rng.Uint32())
				case 1:
					dst0[i] = math.MaxInt32 - int32(rng.Intn(64))
					src[i] = int32(rng.Intn(128))
				default:
					dst0[i] = math.MinInt32 + int32(rng.Intn(64))
					src[i] = -int32(rng.Intn(128))
				}
			}
			want := append([]int32(nil), dst0...)
			got := append([]int32(nil), dst0...)

			if err := SetBackend("scalar"); err != nil {
				t.Fatal(err)
			}
			AddSatInt32(want, src)
			if err := SetBackend(backend); err != nil {
				t.Fatal(err)
			}
			AddSatInt32(got, src)
			requireIdenticalI32(t, "AddSatInt32", backend, n, got, want)
		}
	}
}

// TestQuantizeSemantics pins the saturation and special-value contract
// against hand-computed expectations on the scalar oracle (the parity
// tests above then extend it to every backend).
func TestQuantizeSemantics(t *testing.T) {
	orig := Backend()
	defer SetBackend(orig)
	if err := SetBackend("scalar"); err != nil {
		t.Fatal(err)
	}
	src := []float32{
		0, 1, -1, 0.5, -0.5, 1.5, 2.5, -2.5,
		40000, -40000, float32(math.Inf(1)), float32(math.Inf(-1)),
		float32(math.NaN()), 3e38, -3e38,
	}
	want := []int32{
		0, 1, -1, 0 /* 0.5 → even */, 0, 2, 2 /* 2.5 → even */, -2,
		32767, -32767, 32767, -32767,
		32767 /* NaN → +QuantMax via MINPS */, 32767, -32767,
	}
	got := make([]int32, len(src))
	Quantize(got, src, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Quantize(%v) = %d, want %d", src[i], got[i], want[i])
		}
	}

	// Saturating add: both directions, and the non-overflow fast path.
	d := []int32{math.MaxInt32, math.MinInt32, 100, math.MaxInt32 - 1}
	s := []int32{1, -1, -250, math.MinInt32}
	AddSatInt32(d, s)
	for i, want := range []int32{math.MaxInt32, math.MinInt32, -150, -2} {
		if d[i] != want {
			t.Fatalf("AddSatInt32 element %d = %d, want %d", i, d[i], want)
		}
	}
}

// TestAddSatInt32Associativity is the exactness property the whole
// int32 aggregation path rests on: with addends bounded by ±QuantMax
// (the wire range), sums over any H ≤ 65536 contributions never
// saturate, so any association and any order produce identical bits.
func TestAddSatInt32Associativity(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	const n, workers = 513, 64
	contribs := make([][]int32, workers)
	for w := range contribs {
		contribs[w] = make([]int32, n)
		for i := range contribs[w] {
			contribs[w][i] = int32(rng.Intn(2*QuantMax+1)) - QuantMax
		}
	}
	sum := func(order []int) []int32 {
		acc := make([]int32, n)
		for _, w := range order {
			AddSatInt32(acc, contribs[w])
		}
		return acc
	}
	base := make([]int, workers)
	for i := range base {
		base[i] = i
	}
	want := sum(base)
	for trial := 0; trial < 20; trial++ {
		order := append([]int(nil), base...)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		got := sum(order)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: element %d differs across arrival orders: %d vs %d",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestTopKSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	var keys []uint64
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		v := fuzzVector(rng, n)
		k := rng.Intn(n + 4)
		var got []int32
		got, keys = TopKSelect(got[:0], keys, v, k)

		wantLen := k
		if wantLen > n {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("n=%d k=%d: selected %d indices", n, k, len(got))
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("indices not ascending: %v", got)
		}

		// Reference: full stable sort by (magnitude bits desc, index asc).
		ref := make([]int32, n)
		for i := range ref {
			ref[i] = int32(i)
		}
		sort.SliceStable(ref, func(a, b int) bool {
			ka := math.Float32bits(v[ref[a]]) &^ (1 << 31)
			kb := math.Float32bits(v[ref[b]]) &^ (1 << 31)
			if ka != kb {
				return ka > kb
			}
			return ref[a] < ref[b]
		})
		want := append([]int32(nil), ref[:wantLen]...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d: selection differs from reference\ngot  %v\nwant %v", n, k, got, want)
			}
		}
	}
}

func TestScatterAddAndShifts(t *testing.T) {
	dst := make([]float32, 8)
	ScatterAdd(dst, []uint16{1, 3, 1}, []float32{2, 5, 0.5})
	if dst[1] != 2.5 || dst[3] != 5 || dst[0] != 0 {
		t.Fatalf("ScatterAdd: %v", dst)
	}

	v := []int32{3, -3, QuantMax}
	ShlI32(v, 4)
	if v[0] != 48 || v[1] != -48 || v[2] != QuantMax<<4 {
		t.Fatalf("ShlI32: %v", v)
	}
	ShrI32(v, 4)
	if v[0] != 3 || v[1] != -3 || v[2] != QuantMax {
		t.Fatalf("ShrI32: %v", v)
	}
	ShrI32([]int32{}, 2) // empty is fine
	ShlI32(v, 0)         // zero shift is the identity
	if v[0] != 3 {
		t.Fatalf("ShlI32(0): %v", v)
	}

	if m := MaxAbsI32([]int32{3, -7, 5}); m != 7 {
		t.Fatalf("MaxAbsI32 = %d", m)
	}
	if m := MaxAbsI32([]int32{math.MinInt32, 1}); m != math.MaxInt32 {
		t.Fatalf("MaxAbsI32(MinInt32) = %d", m)
	}
	if m := MaxAbsI32(nil); m != 0 {
		t.Fatalf("MaxAbsI32(nil) = %d", m)
	}
}

// FuzzQuantParity is the CI fuzz entry for the pack/quantize kernels:
// every backend must agree with the scalar oracle bit-for-bit on the
// quantize→saturating-add→dequantize pipeline and on the fp16 wire
// round trip.
func FuzzQuantParity(f *testing.F) {
	f.Add(int64(1), 17, float32(256))
	f.Add(int64(2), 4096, float32(1e-3))
	f.Add(int64(3), 0, float32(math.Inf(1)))
	f.Add(int64(4), 366, float32(math.NaN()))
	f.Fuzz(func(t *testing.T, seed int64, n int, scale float32) {
		if n < 0 || n > 4097 {
			t.Skip()
		}
		orig := Backend()
		defer SetBackend(orig)
		rng := rand.New(rand.NewSource(seed))
		src := fuzzVector(rng, n)
		acc0 := make([]int32, n)
		for i := range acc0 {
			acc0[i] = int32(rng.Uint32())
		}

		if err := SetBackend("scalar"); err != nil {
			t.Fatal(err)
		}
		wantQ := make([]int32, n)
		Quantize(wantQ, src, scale)
		wantAcc := append([]int32(nil), acc0...)
		AddSatInt32(wantAcc, wantQ)
		wantD := make([]float32, n)
		Dequantize(wantD, wantAcc, 0.25)
		wantMax := MaxAbs(src)
		wantWire := F16AppendPack(nil, src)
		wantF16 := make([]float32, n)
		F16UnpackInto(wantF16, wantWire)

		for _, backend := range simdBackends() {
			if err := SetBackend(backend); err != nil {
				t.Fatal(err)
			}
			gotQ := make([]int32, n)
			Quantize(gotQ, src, scale)
			requireIdenticalI32(t, "Quantize", backend, n, gotQ, wantQ)
			gotAcc := append([]int32(nil), acc0...)
			AddSatInt32(gotAcc, gotQ)
			requireIdenticalI32(t, "AddSatInt32", backend, n, gotAcc, wantAcc)
			gotD := make([]float32, n)
			Dequantize(gotD, gotAcc, 0.25)
			requireBitIdentical(t, "Dequantize", backend, n, gotD, wantD)
			if got := MaxAbs(src); math.Float32bits(got) != math.Float32bits(wantMax) {
				t.Fatalf("MaxAbs backend=%s: %x vs %x", backend, math.Float32bits(got), math.Float32bits(wantMax))
			}
			gotWire := F16AppendPack(nil, src)
			if len(gotWire) != len(wantWire) {
				t.Fatalf("F16AppendPack backend=%s: length %d vs %d", backend, len(gotWire), len(wantWire))
			}
			for i := range wantWire {
				if gotWire[i] != wantWire[i] {
					t.Fatalf("F16AppendPack backend=%s: byte %d differs", backend, i)
				}
			}
			gotF16 := make([]float32, n)
			F16UnpackInto(gotF16, gotWire)
			requireBitIdentical(t, "F16UnpackInto", backend, n, gotF16, wantF16)
		}
	})
}
