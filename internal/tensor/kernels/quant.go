package kernels

import (
	"math"
	"math/bits"
	"slices"
)

// Quantized-aggregation kernel surface: block max-abs scan, float↔int32
// scale conversion, saturating integer accumulation, top-k magnitude
// selection and sparse scatter-add. The first four dispatch through the
// backend table (AVX2 on amd64; max-abs also has a NEON form — the Go
// arm64 assembler exposes no vector float convert or saturating add, so
// the rest backfill to scalar there, like the optimizer kernels). All
// dispatched entries are bit-identical across backends; see
// scalar_quant.go for why that holds exactly rather than approximately.

// QuantMax is the largest magnitude Quantize emits: the wire format
// carries int16-representable values, and excluding -32768 keeps
// H·QuantMax < 2³¹ for any aggregation fan-in H ≤ 65536 — the bound
// that makes saturating accumulation provably saturation-free, hence
// exactly associative, in every supported cluster.
const QuantMax = quantMax

// MaxAbs returns max(|v[i]|) computed on sign-cleared IEEE bit
// patterns: exact for every input, with NaN ordering above +Inf (bit
// patterns compare unsigned), so the result is independent of element
// order on every backend. Returns 0 for an empty slice.
func MaxAbs(v []float32) float32 {
	return math.Float32frombits(active.maxAbsBits(v))
}

// Quantize converts src to the block-scaled integer grid:
// dst[i] = rne(clamp(src[i]*scale, ±QuantMax)), with NaN collapsing to
// +QuantMax (deterministically, on every backend). Lengths must match.
func Quantize(dst []int32, src []float32, scale float32) {
	assertLen(len(dst), len(src))
	active.quantize(dst, src, scale)
}

// Dequantize converts integers back to floats: dst[i] = float32(src[i])
// * scale. Lengths must match.
func Dequantize(dst []float32, src []int32, scale float32) {
	assertLen(len(dst), len(src))
	active.dequantize(dst, src, scale)
}

// AddSatInt32 accumulates src into dst with signed saturation:
// dst[i] = sat32(dst[i] + src[i]). On quantized gradient traffic the
// saturation never fires (see QuantMax), so the sum is exactly
// associative — but the kernel saturates anyway, matching what the
// switch hardware would do. Lengths must match.
func AddSatInt32(dst, src []int32) {
	assertLen(len(dst), len(src))
	active.addSatI32(dst, src)
}

// MaxAbsI32 returns max(|v[i]|), saturating |math.MinInt32| to
// math.MaxInt32. Scalar on every backend (it runs once per emitted
// segment, off the element hot path).
func MaxAbsI32(v []int32) int32 {
	var m int32
	for _, x := range v {
		if x == math.MinInt32 {
			return math.MaxInt32
		}
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// ShlI32 shifts every element left in place (exact re-widening of a
// narrowed partial sum).
func ShlI32(v []int32, s uint8) {
	if s == 0 {
		return
	}
	for i := range v {
		v[i] <<= s
	}
}

// ShrI32 shifts every element right in place (arithmetic), the
// emission-narrowing step applied only to completed segment sums.
func ShrI32(v []int32, s uint8) {
	if s == 0 {
		return
	}
	for i := range v {
		v[i] >>= s
	}
}

// NarrowShift returns the emission-narrowing shift applied to a
// completed int32 segment sum so it fits back into the int16 wire
// range: the smallest k with maxq>>k < 2^15 (maxq = MaxAbsI32 of the
// sum). The shift travels on the wire, and re-widening by q<<k is exact
// with respect to the narrowed value, so narrowing stays deterministic
// and order-independent — it runs once, on the completed sum.
func NarrowShift(maxq int32) uint8 {
	if maxq <= 0 {
		return 0
	}
	if k := 31 - bits.LeadingZeros32(uint32(maxq)); k > 14 {
		return uint8(k - 14)
	}
	return 0
}

// topKKey packs one element for selection: magnitude bits in the high
// word so larger magnitudes order first, bit-inverted index in the low
// word so equal magnitudes prefer the *smaller* index — one total,
// deterministic order with no float comparisons (NaN sorts above +Inf).
func topKKey(i int, x float32) uint64 {
	return uint64(math.Float32bits(x)&^(1<<31))<<32 | uint64(^uint32(i))
}

// TopKSelect returns the indices of the k largest-magnitude elements of
// v, ascending, appended to dst. keys is caller-owned scratch grown to
// len(v) and returned for reuse; selection is a deterministic
// median-of-three quickselect, so the chosen set depends only on v and
// k (ties broken toward the smaller index). k ≥ len(v) selects all.
func TopKSelect(dst []int32, keys []uint64, v []float32, k int) ([]int32, []uint64) {
	if k >= len(v) {
		for i := range v {
			dst = append(dst, int32(i))
		}
		return dst, keys
	}
	if k <= 0 {
		return dst, keys
	}
	keys = keys[:0]
	for i, x := range v {
		keys = append(keys, topKKey(i, x))
	}
	quickselectTop(keys, k)
	for _, key := range keys[:k] {
		dst = append(dst, int32(^uint32(key)))
	}
	slices.Sort(dst[len(dst)-k:])
	return dst, keys
}

// quickselectTop partitions keys so the k largest occupy keys[:k]
// (unordered). Median-of-three pivots keep the recursion deterministic
// and safe on adversarial (e.g. all-equal) inputs.
func quickselectTop(keys []uint64, k int) {
	lo, hi := 0, len(keys)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		a, b, c := keys[lo], keys[mid], keys[hi-1]
		pivot := max(min(a, b), min(max(a, b), c))
		// Three-way partition, descending: [lo,i) > pivot, [i,j) == pivot.
		i, j, p := lo, lo, hi
		for j < p {
			switch {
			case keys[j] > pivot:
				keys[i], keys[j] = keys[j], keys[i]
				i++
				j++
			case keys[j] < pivot:
				p--
				keys[j], keys[p] = keys[p], keys[j]
			default:
				j++
			}
		}
		switch {
		case k <= i:
			hi = i
		case k >= j:
			lo = j
		default:
			return // boundary falls inside the pivot-equal run
		}
	}
}

// ScatterAdd accumulates sparse values into a dense block:
// dst[idx[i]] += vals[i]. Indices are block-local (the wire carries
// them as uint16, so blocks hold at most 65536 elements). idx and vals
// lengths must match; out-of-range indices panic via the bounds check.
func ScatterAdd(dst []float32, idx []uint16, vals []float32) {
	assertLen(len(idx), len(vals))
	for i, ix := range idx {
		dst[ix] += vals[i]
	}
}
