//go:build arm64 && !noasm

#include "textflag.h"

// NEON (Advanced SIMD) kernels, 8 floats (two 4-lane vectors) per
// iteration. Every function takes n = a positive multiple of 8; the Go
// wrappers peel the remainder with scalar code.
//
// The Go assembler exposes no vector FADD/FSUB/FMUL mnemonics on arm64
// — only the fused VFMLA/VFMLS — so each kernel is phrased as a fused
// multiply-add with a constant operand chosen to keep the result
// bit-identical to the plain operation:
//
//   add:   dst = dst + src*1.0    x*1.0 is exact, so the single FMLA
//   sub:   dst = dst + (-1.0)*src rounding equals FADD/FSUB rounding.
//   scale: dst = -0.0 + dst*a     adding -0.0 is the identity for every
//                                 float (including +0: +0 + -0 = +0),
//                                 so this rounds exactly like FMUL.
//
// Operand order matters for NaN signs: in Go syntax
// `VFMLA/VFMLS Vm, Vn, Vd` computes Vd += (±Vn)*Vm, and FMLS negates
// the *Vn* element before the multiply. The constant (never NaN) always
// rides in the Vn slot so a NaN flowing through dst or src is never
// sign-flipped by that negation. Input NaN payload selection is not
// otherwise constrained: the parity fuzz feeds only the canonical quiet
// NaN 0x7FC00000, and AArch64 generates the (positive) default NaN for
// invalid ops, so FMLA and the scalar FADD/FSUB/FMUL agree bit-for-bit.
//
// axpy uses a genuine fused multiply-add on purpose: the compiler fuses
// the scalar loop's `dst[i] += a*src[i]` into FMADDS on arm64, so FMLA
// is the bit-identical vector form (an unfused mul+add would NOT be).

// func addBlocks8(dst, src *float32, n int)
TEXT ·addBlocks8(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2
	MOVD $0x3F800000, R3 // 1.0f
	VMOV R3, V30.S4
addloop:
	VLD1   (R0), [V0.S4, V1.S4]
	VLD1.P 32(R1), [V2.S4, V3.S4]
	VFMLA  V2.S4, V30.S4, V0.S4 // dst += 1.0*src
	VFMLA  V3.S4, V30.S4, V1.S4
	VST1.P [V0.S4, V1.S4], 32(R0)
	SUBS   $8, R2, R2
	BNE    addloop
	RET

// func subBlocks8(dst, src *float32, n int)
TEXT ·subBlocks8(SB), NOSPLIT, $0-24
	MOVD dst+0(FP), R0
	MOVD src+8(FP), R1
	MOVD n+16(FP), R2
	MOVD $0x3F800000, R3 // 1.0f
	VMOV R3, V30.S4
subloop:
	VLD1   (R0), [V0.S4, V1.S4]
	VLD1.P 32(R1), [V2.S4, V3.S4]
	VFMLS  V2.S4, V30.S4, V0.S4 // dst += (-1.0)*src; the 1.0 is the negated operand
	VFMLS  V3.S4, V30.S4, V1.S4
	VST1.P [V0.S4, V1.S4], 32(R0)
	SUBS   $8, R2, R2
	BNE    subloop
	RET

// func axpyBlocks8(a float32, dst, src *float32, n int)
TEXT ·axpyBlocks8(SB), NOSPLIT, $0-32
	MOVWU a+0(FP), R3
	VMOV  R3, V30.S4
	MOVD  dst+8(FP), R0
	MOVD  src+16(FP), R1
	MOVD  n+24(FP), R2
axpyloop:
	VLD1   (R0), [V0.S4, V1.S4]
	VLD1.P 32(R1), [V2.S4, V3.S4]
	VFMLA  V2.S4, V30.S4, V0.S4 // dst += a*src, fused like the scalar loop's FMADDS
	VFMLA  V3.S4, V30.S4, V1.S4
	VST1.P [V0.S4, V1.S4], 32(R0)
	SUBS   $8, R2, R2
	BNE    axpyloop
	RET

// func scaleBlocks8(a float32, dst *float32, n int)
TEXT ·scaleBlocks8(SB), NOSPLIT, $0-24
	MOVWU a+0(FP), R3
	VMOV  R3, V30.S4
	MOVD  dst+8(FP), R0
	MOVD  n+16(FP), R2
	MOVD  $0x80000000, R3 // -0.0f accumulator seed
	VMOV  R3, V29.S4
scaleloop:
	VLD1   (R0), [V0.S4, V1.S4]
	VMOV   V29.B16, V2.B16
	VMOV   V29.B16, V3.B16
	VFMLA  V0.S4, V30.S4, V2.S4 // -0.0 + a*dst == round(a*dst), signed zeros included
	VFMLA  V1.S4, V30.S4, V3.S4
	VST1.P [V2.S4, V3.S4], 32(R0)
	SUBS   $8, R2, R2
	BNE    scaleloop
	RET

// func fillBlocks8(a float32, dst *float32, n int)
TEXT ·fillBlocks8(SB), NOSPLIT, $0-24
	MOVWU a+0(FP), R3
	VMOV  R3, V0.S4
	VMOV  V0.B16, V1.B16
	MOVD  dst+8(FP), R0
	MOVD  n+16(FP), R2
fillloop:
	VST1.P [V0.S4, V1.S4], 32(R0)
	SUBS   $8, R2, R2
	BNE    fillloop
	RET

// func dotBlocks8(a, b *float32, n int, out *[8]float32)
//
// Accumulates into 8 independent FMLA lanes and stores the partial sums
// to out; the Go wrapper finishes the reduction. Reassociates relative
// to the scalar single-accumulator loop — Dot is tolerance-checked, not
// bit-checked, across backends.
TEXT ·dotBlocks8(SB), NOSPLIT, $0-32
	MOVD a+0(FP), R0
	MOVD b+8(FP), R1
	MOVD n+16(FP), R2
	MOVD out+24(FP), R3
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16
dotloop:
	VLD1.P 32(R0), [V0.S4, V1.S4]
	VLD1.P 32(R1), [V2.S4, V3.S4]
	VFMLA  V2.S4, V0.S4, V16.S4
	VFMLA  V3.S4, V1.S4, V17.S4
	SUBS   $8, R2, R2
	BNE    dotloop
	VST1   [V16.S4, V17.S4], (R3)
	RET
