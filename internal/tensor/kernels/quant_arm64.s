//go:build arm64 && !noasm

#include "textflag.h"

// func maxAbsBlocks8NEON(v *float32, n int, part *[8]uint32)
//
// part[j] = unsigned max over the j-th lane of bits(v[i]) &^ signbit.
// Pure integer dataflow (VAND + VUMAX on the raw IEEE bit patterns):
// unsigned bit-pattern order is exact magnitude order once the sign is
// cleared, NaNs included, so the result matches the scalar oracle
// bit-for-bit and is independent of the lane split (max is order-free).
// n is a positive multiple of 8; the Go wrapper peels the tail and
// reduces the 8 partial lanes.
TEXT ·maxAbsBlocks8NEON(SB), NOSPLIT, $0-24
	MOVD v+0(FP), R0
	MOVD n+8(FP), R1
	MOVD part+16(FP), R2
	MOVD $0x7FFFFFFF, R3
	VMOV R3, V30.S4
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16
maxabsloop:
	VLD1.P 32(R0), [V0.S4, V1.S4]
	VAND   V30.B16, V0.B16, V0.B16
	VAND   V30.B16, V1.B16, V1.B16
	VUMAX  V0.S4, V16.S4, V16.S4
	VUMAX  V1.S4, V17.S4, V17.S4
	SUBS   $8, R1, R1
	BNE    maxabsloop
	VST1   [V16.S4, V17.S4], (R2)
	RET
