//go:build noasm || (!amd64 && !arm64)

package kernels

// archInit is the fallback for platforms without an assembly backend
// and for `-tags noasm` builds (the CI leg that proves the scalar
// reference stands alone): no SIMD table is registered and every kernel
// dispatches to the portable scalar loops.
func archInit() *funcs { return nil }
