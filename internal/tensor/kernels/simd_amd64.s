//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 kernels. Every function takes a count n that is a positive
// multiple of 8 (the Go wrappers in simd_amd64.go peel the tail), and
// processes elements in strictly ascending index order so results of
// the element-wise kernels are bit-identical to the scalar loops.
//
// Operand-order note: Go assembler VEX operands are reversed from
// Intel syntax — `VADDPS Yb, Ya, Yd` computes Yd = Ya + Yb with Ya as
// the *first* source. x86 returns the first source's payload when both
// operands are NaN, so each instruction below keeps the same operand
// roles as the compiled scalar expression it mirrors.

// func addBlocks8(dst, src *float32, n int)
TEXT ·addBlocks8(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

add32:
	CMPQ CX, $32
	JL   add8
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
	VADDPS  (SI), Y0, Y0
	VADDPS  32(SI), Y1, Y1
	VADDPS  64(SI), Y2, Y2
	VADDPS  96(SI), Y3, Y3
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	ADDQ $128, DI
	ADDQ $128, SI
	SUBQ $32, CX
	JMP  add32

add8:
	CMPQ CX, $8
	JL   adddone
	VMOVUPS (DI), Y0
	VADDPS  (SI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	SUBQ $8, CX
	JMP  add8

adddone:
	VZEROUPPER
	RET

// func subBlocks8(dst, src *float32, n int)
TEXT ·subBlocks8(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

sub32:
	CMPQ CX, $32
	JL   sub8
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
	VSUBPS  (SI), Y0, Y0
	VSUBPS  32(SI), Y1, Y1
	VSUBPS  64(SI), Y2, Y2
	VSUBPS  96(SI), Y3, Y3
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	ADDQ $128, DI
	ADDQ $128, SI
	SUBQ $32, CX
	JMP  sub32

sub8:
	CMPQ CX, $8
	JL   subdone
	VMOVUPS (DI), Y0
	VSUBPS  (SI), Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	SUBQ $8, CX
	JMP  sub8

subdone:
	VZEROUPPER
	RET

// func axpyBlocks8(a float32, dst, src *float32, n int)
TEXT ·axpyBlocks8(SB), NOSPLIT, $0-32
	VBROADCASTSS a+0(FP), Y7
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX

axpy32:
	CMPQ CX, $32
	JL   axpy8
	// t = a*src (a is the first source, as in the scalar MULSS),
	// then dst = t + dst with t first: the compiled scalar form adds
	// dst onto the product register, so when both are NaN the result
	// carries the product's payload (e.g. the -NaN from Inf*0).
	VMULPS  (SI), Y7, Y0
	VMULPS  32(SI), Y7, Y1
	VMULPS  64(SI), Y7, Y2
	VMULPS  96(SI), Y7, Y3
	VMOVUPS (DI), Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS Y0, (DI)
	VMOVUPS 32(DI), Y5
	VADDPS  Y5, Y1, Y1
	VMOVUPS Y1, 32(DI)
	VMOVUPS 64(DI), Y4
	VADDPS  Y4, Y2, Y2
	VMOVUPS Y2, 64(DI)
	VMOVUPS 96(DI), Y5
	VADDPS  Y5, Y3, Y3
	VMOVUPS Y3, 96(DI)
	ADDQ $128, DI
	ADDQ $128, SI
	SUBQ $32, CX
	JMP  axpy32

axpy8:
	CMPQ CX, $8
	JL   axpydone
	VMULPS  (SI), Y7, Y0
	VMOVUPS (DI), Y1
	VADDPS  Y1, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	SUBQ $8, CX
	JMP  axpy8

axpydone:
	VZEROUPPER
	RET

// func scaleBlocks8(a float32, dst *float32, n int)
TEXT ·scaleBlocks8(SB), NOSPLIT, $0-24
	VBROADCASTSS a+0(FP), Y7
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX

scale32:
	CMPQ CX, $32
	JL   scale8
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
	VMULPS  Y7, Y0, Y0
	VMULPS  Y7, Y1, Y1
	VMULPS  Y7, Y2, Y2
	VMULPS  Y7, Y3, Y3
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	ADDQ $128, DI
	SUBQ $32, CX
	JMP  scale32

scale8:
	CMPQ CX, $8
	JL   scaledone
	VMOVUPS (DI), Y0
	VMULPS  Y7, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  scale8

scaledone:
	VZEROUPPER
	RET

// func fillBlocks8(a float32, dst *float32, n int)
TEXT ·fillBlocks8(SB), NOSPLIT, $0-24
	VBROADCASTSS a+0(FP), Y0
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX

fill8:
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  fill8
	VZEROUPPER
	RET

// func dotBlocks8(a, b *float32, n int) float32
//
// Four independent FMA accumulators — this reassociates the sum, so
// dot products are tolerance-checked (not bit-pinned) against scalar.
TEXT ·dotBlocks8(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

dot32:
	CMPQ CX, $32
	JL   dot8
	VMOVUPS (DI), Y4
	VMOVUPS 32(DI), Y5
	VMOVUPS 64(DI), Y6
	VMOVUPS 96(DI), Y7
	VFMADD231PS (SI), Y4, Y0
	VFMADD231PS 32(SI), Y5, Y1
	VFMADD231PS 64(SI), Y6, Y2
	VFMADD231PS 96(SI), Y7, Y3
	ADDQ $128, DI
	ADDQ $128, SI
	SUBQ $32, CX
	JMP  dot32

dot8:
	CMPQ CX, $8
	JL   dotreduce
	VMOVUPS (DI), Y4
	VFMADD231PS (SI), Y4, Y0
	ADDQ $32, DI
	ADDQ $32, SI
	SUBQ $8, CX
	JMP  dot8

dotreduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func sumsqBlocks8(v *float32, n int) float64
//
// Widens four lanes at a time to float64 (VCVTPS2PD) and accumulates
// squares in two double-precision FMA accumulators: each squared term
// is exact in binary64, so backends differ only in summation order.
TEXT ·sumsqBlocks8(SB), NOSPLIT, $0-24
	MOVQ v+0(FP), SI
	MOVQ n+8(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

sumsq8:
	VCVTPS2PD (SI), Y2
	VCVTPS2PD 16(SI), Y3
	VFMADD231PD Y2, Y2, Y0
	VFMADD231PD Y3, Y3, Y1
	ADDQ $32, SI
	SUBQ $8, CX
	JNZ  sumsq8

	VADDPD Y1, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPD X1, X0, X0
	VHADDPD X0, X0, X0
	VZEROUPPER
	MOVSD X0, ret+16(FP)
	RET

// func sgdMomentumBlocks8(p, vel, grad *float32, n int, lr, mom float32)
TEXT ·sgdMomentumBlocks8(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), DI
	MOVQ vel+8(FP), SI
	MOVQ grad+16(FP), DX
	MOVQ n+24(FP), CX
	VBROADCASTSS lr+32(FP), Y6
	VBROADCASTSS mom+36(FP), Y7

sgd8:
	VMOVUPS (SI), Y0       // v
	VMULPS  Y7, Y0, Y0     // t  = v*mom
	VADDPS  (DX), Y0, Y0   // v' = t + g   (t is the first source)
	VMOVUPS Y0, (SI)
	VMULPS  Y6, Y0, Y1     // u  = v'*lr
	VMOVUPS (DI), Y2
	VSUBPS  Y1, Y2, Y2     // p - u
	VMOVUPS Y2, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	SUBQ $8, CX
	JNZ  sgd8
	VZEROUPPER
	RET

// func adamBlocks8(p, m, v, grad *float32, n int, b1, b2, ob1, ob2, b1c, b2c, lr, eps float32)
//
// Mirrors adamElem's expression order exactly. VSQRTPS bit-matches the
// scalar float32(math.Sqrt(float64(x))) path: double rounding through
// binary64 is innocuous for sqrt (2·24+2 ≤ 53), and both routes quiet
// NaNs and produce the x86 default QNaN for negative inputs.
TEXT ·adamBlocks8(SB), NOSPLIT, $0-72
	MOVQ p+0(FP), DI
	MOVQ m+8(FP), R8
	MOVQ v+16(FP), R9
	MOVQ grad+24(FP), SI
	MOVQ n+32(FP), CX
	VBROADCASTSS b1+40(FP), Y8
	VBROADCASTSS b2+44(FP), Y9
	VBROADCASTSS ob1+48(FP), Y10
	VBROADCASTSS ob2+52(FP), Y11
	VBROADCASTSS b1c+56(FP), Y12
	VBROADCASTSS b2c+60(FP), Y13
	VBROADCASTSS lr+64(FP), Y14
	VBROADCASTSS eps+68(FP), Y15

adam8:
	VMOVUPS (R8), Y0       // m
	VMOVUPS (SI), Y1       // g
	VMOVUPS (R9), Y2       // v
	VMULPS  Y8, Y0, Y0     // t0 = m*b1
	VMULPS  Y1, Y10, Y3    // t1 = ob1*g
	VADDPS  Y3, Y0, Y0     // mi = t0 + t1
	VMULPS  Y1, Y11, Y4    // t2 = ob2*g
	VMULPS  Y1, Y4, Y4     // t2 = t2*g
	VMULPS  Y9, Y2, Y2     // t3 = v*b2
	VADDPS  Y4, Y2, Y2     // vi = t3 + t2
	VMOVUPS Y0, (R8)
	VMOVUPS Y2, (R9)
	VDIVPS  Y12, Y0, Y5    // mhat = mi/b1c
	VMULPS  Y5, Y14, Y5    // num  = lr*mhat
	VDIVPS  Y13, Y2, Y6    // vhat = vi/b2c
	VSQRTPS Y6, Y6
	VADDPS  Y15, Y6, Y6    // den  = sqrt + eps
	VDIVPS  Y6, Y5, Y5     // upd  = num/den
	VMOVUPS (DI), Y7
	VSUBPS  Y5, Y7, Y7     // p - upd
	VMOVUPS Y7, (DI)
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, SI
	SUBQ $8, CX
	JNZ  adam8
	VZEROUPPER
	RET
