//go:build amd64 && !noasm

package kernels

// Go wrappers around the AVX2 block kernels: the assembly consumes the
// longest multiple-of-8 prefix, the wrapper finishes the <8-element
// tail with exactly the per-element expressions of the scalar backend.
// Head-then-tail preserves strict index order, so the element-wise
// kernels stay bit-identical to scalar end to end.

//go:noescape
func addBlocks8(dst, src *float32, n int)

//go:noescape
func subBlocks8(dst, src *float32, n int)

//go:noescape
func axpyBlocks8(a float32, dst, src *float32, n int)

//go:noescape
func scaleBlocks8(a float32, dst *float32, n int)

//go:noescape
func fillBlocks8(a float32, dst *float32, n int)

//go:noescape
func dotBlocks8(a, b *float32, n int) float32

//go:noescape
func sumsqBlocks8(v *float32, n int) float64

//go:noescape
func sgdMomentumBlocks8(p, vel, grad *float32, n int, lr, mom float32)

//go:noescape
func adamBlocks8(p, m, v, grad *float32, n int, b1, b2, ob1, ob2, b1c, b2c, lr, eps float32)

func addAVX2(dst, src []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		addBlocks8(&dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] += src[i]
	}
}

func subAVX2(dst, src []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		subBlocks8(&dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] -= src[i]
	}
}

func axpyAVX2(a float32, dst, src []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		axpyBlocks8(a, &dst[0], &src[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] += a * src[i]
	}
}

func scaleAVX2(a float32, dst []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		scaleBlocks8(a, &dst[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] *= a
	}
}

func fillAVX2(a float32, dst []float32) {
	n := len(dst) &^ 7
	if n > 0 {
		fillBlocks8(a, &dst[0], n)
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a
	}
}

func dotAVX2(a, b []float32) float32 {
	n := len(a) &^ 7
	var s float32
	if n > 0 {
		s = dotBlocks8(&a[0], &b[0], n)
	}
	for i := n; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

func sumSquaresAVX2(v []float32) float64 {
	n := len(v) &^ 7
	var s float64
	if n > 0 {
		s = sumsqBlocks8(&v[0], n)
	}
	for i := n; i < len(v); i++ {
		s += float64(v[i]) * float64(v[i])
	}
	return s
}

func sgdMomentumAVX2(p, vel, g []float32, lr, mom float32) {
	n := len(p) &^ 7
	if n > 0 {
		sgdMomentumBlocks8(&p[0], &vel[0], &g[0], n, lr, mom)
	}
	for i := n; i < len(p); i++ {
		vel[i] = mom*vel[i] + g[i]
		p[i] -= lr * vel[i]
	}
}

func adamStepAVX2(p, m, v, g []float32, b1, b2, ob1, ob2, b1c, b2c, lr, eps float32) {
	n := len(p) &^ 7
	if n > 0 {
		adamBlocks8(&p[0], &m[0], &v[0], &g[0], n, b1, b2, ob1, ob2, b1c, b2c, lr, eps)
	}
	for i := n; i < len(p); i++ {
		adamElem(&p[i], &m[i], &v[i], g[i], b1, b2, ob1, ob2, b1c, b2c, lr, eps)
	}
}
